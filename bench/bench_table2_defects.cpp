// TAB2: reproduces paper Table II — for every DRF-causing resistive-open
// defect of the voltage regulator (17 of 32) and every case study CS1..CS5,
// the minimal defect resistance that causes a data retention fault in
// deep-sleep mode, with the PVT condition that requires it.
//
// Usage: bench_table2_defects [--full] [--threads N]
//   default: a 9-point PVT subgrid (fs/sf/typical corners x 3 VDD at 125 C
//            plus the hot/cold extremes) — minutes-scale accurate shape;
//   --full:  the paper's complete 45-point grid;
//   --threads N: sweep-executor worker count (default: LPSRAM_THREADS env,
//            else hardware concurrency). Results are bit-identical at any N.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "lpsram/testflow/report.hpp"
#include "lpsram/util/units.hpp"

using namespace lpsram;

int main(int argc, char** argv) {
  bool full = false;
  int threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0)
      full = true;
    else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads = std::atoi(argv[++i]);
  }

  const Technology tech = Technology::lp40nm();

  DefectCharacterizationOptions options;
  options.threads = threads;
  if (!full) {
    for (const Corner corner :
         {Corner::FastNSlowP, Corner::SlowNFastP, Corner::Typical}) {
      for (const double vdd : tech.vdd_levels()) {
        options.pvt.push_back(PvtPoint{corner, vdd, 125.0});
      }
    }
    // Cold extremes, in case a defect's worst case is not hot.
    options.pvt.push_back(PvtPoint{Corner::FastNSlowP, 1.0, -30.0});
    options.pvt.push_back(PvtPoint{Corner::SlowNFastP, 1.2, -30.0});
  }

  const DefectCharacterizer characterizer(tech, options);

  std::printf(
      "TAB2 — minimal defect resistance causing DRF_DS per defect x case "
      "study\n(PVT grid: %zu points%s; DS time %.0f ms; worst-case DRV %s "
      "mV)\n",
      characterizer.options().pvt.size(), full ? " = paper's full grid" : "",
      options.ds_time * 1e3,
      millivolt_format(characterizer.worst_drv()).c_str());
  std::printf(
      "paper shape: Rmin grows CS1 -> CS4 (CS4 often open); CS5 < CS2; "
      "worst PVT mostly fs/125C;\nDf16/Df19/Df29 the most critical "
      "error-amplifier defects.\n\n");

  const auto& defects = table2_defects();
  const auto case_studies = table2_case_studies();
  SweepTelemetry telemetry;
  const auto rows = characterizer.table(defects, case_studies, &telemetry);
  std::fputs(table2_report(rows, case_studies).c_str(), stdout);
  std::printf("\nsweep: %s\n", telemetry.summary().c_str());

  // The paper's cross-check: CS5 requires lower Rmin than CS2 everywhere.
  std::size_t cs5_tighter = 0, comparable = 0;
  for (const auto& row : rows) {
    const DefectCsResult& cs2 = row[1];
    const DefectCsResult& cs5 = row[4];
    if (cs2.open_only || cs5.open_only) continue;
    ++comparable;
    if (cs5.min_resistance <= cs2.min_resistance * 1.0001) ++cs5_tighter;
  }
  std::printf("\nCS5 Rmin <= CS2 Rmin for %zu/%zu comparable defects (paper: "
              "all)\n",
              cs5_tighter, comparable);
  return 0;
}
