// Journal throughput microbenchmark: append (the per-task durability cost a
// campaign pays while sweeping), replay (the resume cost), and compaction.
//
// The append path fsyncs every record by contract, so the append number is
// dominated by the storage stack, not the framing — which is the point: it
// bounds how much sweep throughput journaling can cost. Record shape mimics
// a real campaign mix (task_done payloads with telemetry plus op_point
// records carrying a ~40-node operating point).
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <vector>

#include "build_type_warning.hpp"
#include "lpsram/runtime/campaign.hpp"
#include "lpsram/runtime/journal.hpp"

using namespace lpsram;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::vector<std::uint8_t> task_done_payload(std::uint64_t key) {
  PayloadWriter out;
  out.u64(key);
  out.u8(1);
  out.f64(1.234e6);
  out.u8(2);
  SolveTelemetry telemetry;
  telemetry.solves = 37;
  telemetry.cache_hits = 21;
  telemetry.cache_misses = 16;
  encode_telemetry(out, telemetry);
  return out.take();
}

std::vector<std::uint8_t> op_point_payload(std::uint64_t key, double r) {
  PayloadWriter out;
  out.u64(0x1122334455667788ULL);  // circuit
  out.u64(key);
  out.u32(16);
  out.f64(r);
  std::vector<double> x(40);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = 0.7 + 1e-3 * static_cast<double>(i);
  out.vec_f64(x);
  return out.take();
}

}  // namespace

int main() {
  lpsram::bench::warn_if_debug_build();
  const std::string path =
      (std::filesystem::temp_directory_path() / "lpsram_bench.journal")
          .string();
  std::filesystem::remove(path);

  constexpr int kTasks = 200;
  constexpr int kOpPointsPerTask = 8;
  constexpr int kRecords = kTasks * (1 + kOpPointsPerTask);

  // Append: the campaign-mix record stream, every record flushed + fsync'd.
  std::uint64_t bytes = 0;
  {
    JournalWriter writer;
    writer.open(path, 0);
    const auto start = std::chrono::steady_clock::now();
    for (int t = 0; t < kTasks; ++t) {
      const std::uint64_t key = 0x1000 + static_cast<std::uint64_t>(t);
      for (int p = 0; p < kOpPointsPerTask; ++p) {
        const auto payload = op_point_payload(key, 1e4 * (p + 1));
        bytes += payload.size() + 9;
        writer.append(3, payload);
      }
      const auto payload = task_done_payload(key);
      bytes += payload.size() + 9;
      writer.append(2, payload);
    }
    const double elapsed = seconds_since(start);
    std::printf("append : %6d records, %7.2f MB in %6.3f s  -> %8.0f rec/s, "
                "%6.1f MB/s (fsync per record)\n",
                kRecords, bytes / 1e6, elapsed, kRecords / elapsed,
                bytes / 1e6 / elapsed);
  }

  // Replay: full-file validation + decode, the fixed cost of a resume.
  {
    const auto start = std::chrono::steady_clock::now();
    const JournalReplay replay = replay_journal(path);
    const double elapsed = seconds_since(start);
    std::printf("replay : %6zu records, %7.2f MB in %6.3f s  -> %8.0f rec/s, "
                "%6.1f MB/s%s\n",
                replay.records.size(), replay.valid_bytes / 1e6, elapsed,
                replay.records.size() / elapsed,
                replay.valid_bytes / 1e6 / elapsed,
                replay.torn_tail ? " (torn tail)" : "");
  }

  // Compaction: atomic snapshot rewrite of the whole record set.
  {
    const JournalReplay replay = replay_journal(path);
    JournalWriter writer;
    writer.open(path, replay.valid_bytes);
    const auto start = std::chrono::steady_clock::now();
    writer.compact(replay.records);
    const double elapsed = seconds_since(start);
    std::printf("compact: %6zu records rewritten in %6.3f s\n",
                replay.records.size(), elapsed);
  }

  std::filesystem::remove(path);
  return 0;
}
