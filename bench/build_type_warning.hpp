// Bench hygiene shared by every timing binary: a compile-time flag saying
// whether the *benchmark binary itself* was built with NDEBUG, and a loud
// stderr warning when it was not. This is distinct from google-benchmark's
// own "Library was built as DEBUG" banner, which describes the installed
// benchmark library — numbers from a debug-built harness around a release
// repo are noisy; numbers from a debug-built repo are meaningless.
#pragma once

#include <cstdio>

namespace lpsram::bench {

#ifdef NDEBUG
inline constexpr bool kReleaseBuild = true;
#else
inline constexpr bool kReleaseBuild = false;
#endif

// Warn (stderr, once per call) when the binary was compiled without NDEBUG:
// assertions are on and optimization is likely off, so timings must never be
// recorded into BENCH_solver.json or compared against recorded numbers.
inline void warn_if_debug_build() {
  if (!kReleaseBuild) {
    std::fprintf(stderr,
                 "*** WARNING: benchmark binary built without NDEBUG (debug "
                 "build); timings are not comparable. Rebuild with "
                 "-DCMAKE_BUILD_TYPE=Release before recording. ***\n");
  }
}

}  // namespace lpsram::bench
