// TAB3: reproduces paper Table III — the optimized test flow. Builds the
// 12-condition detection matrix for the 17 DRF-causing defects, runs the
// greedy cover, prints the chosen iterations and the test-time reduction,
// then validates the flow against defective SRAM instances (Section V).
//
// Usage: bench_table3_flow [--threads N]
//   --threads N: sweep-executor worker count for the matrix build (the
//   methodology reads it via LPSRAM_THREADS; default hardware concurrency).
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "lpsram/core/methodology.hpp"
#include "lpsram/testflow/report.hpp"
#include "lpsram/util/units.hpp"
#include "lpsram/util/table.hpp"

using namespace lpsram;

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      // The methodology facade owns its FlowOptimizer options; the executor's
      // automatic worker count (threads = 0) reads this variable.
      ::setenv("LPSRAM_THREADS", argv[++i], 1);
    }
  }

  const Technology tech = Technology::lp40nm();

  std::printf(
      "TAB3 — optimized test flow (paper Table III)\n"
      "paper result: 3 iterations {(1.0V, 0.74*VDD), (1.1V, 0.70*VDD), "
      "(1.2V, 0.64*VDD)},\nall at Vreg just above the worst-case DRV, 1 ms "
      "DS time, 75%% test-time reduction vs 12 naive runs.\n\n");

  const Methodology methodology(tech);
  const MethodologyReport report = methodology.run();

  std::printf("worst-case DRV_DS from Table I analysis: %s mV (paper: 730)\n\n",
              millivolt_format(report.worst_drv).c_str());

  std::fputs(table3_report(report.generated.flow, report.generated.test, 4096,
                           10e-9)
                 .c_str(),
             stdout);

  // What an unconstrained set-cover optimizer finds on the same matrix:
  // when defect optima coincide, it can beat the paper's iteration count.
  {
    FlowOptimizer::Options greedy_options;
    greedy_options.worst_drv = report.worst_drv;
    greedy_options.strategy = FlowStrategy::GreedyMinimal;
    const FlowOptimizer greedy(tech, greedy_options);
    const OptimizedFlow minimal = greedy.optimize(report.generated.matrix);
    std::printf("\nunconstrained greedy cover (ablation):\n");
    std::fputs(
        table3_report(minimal, report.generated.test, 4096, 10e-9).c_str(),
        stdout);
  }

  // The detection matrix behind the flow (Rmin per condition x defect).
  std::printf("\ndetection matrix (min DRF-causing resistance; '-' = invalid "
              "condition or undetectable):\n");
  {
    std::vector<std::string> header = {"condition \\ defect"};
    for (const DefectId id : report.generated.matrix.defects)
      header.push_back(defect_name(id));
    AsciiTable table(std::move(header));
    for (std::size_t ci = 0; ci < report.generated.matrix.conditions.size();
         ++ci) {
      const TestCondition& tc = report.generated.matrix.conditions[ci];
      char label[48];
      std::snprintf(label, sizeof(label), "%.1fV %s", tc.vdd,
                    vref_name(tc.vref).c_str());
      std::vector<std::string> cells = {label};
      for (std::size_t di = 0; di < report.generated.matrix.defects.size();
           ++di) {
        const double r = report.generated.matrix.rmin[ci][di];
        cells.push_back(r > report.generated.matrix.r_high ? "-"
                                                           : eng_format(r, 1));
      }
      table.add_row(std::move(cells));
    }
    std::fputs(table.str().c_str(), stdout);
    std::printf("matrix build: %s\n",
                report.generated.matrix.telemetry.summary().c_str());
  }

  // Section V validation: the flow must fail every injected DRF defect and
  // pass the healthy device.
  std::printf("\nflow validation on 4Kx64 instances (defect at 4x its minimal "
              "resistance):\n");
  std::printf("  healthy device: %s\n",
              report.healthy_passes ? "PASS (as required)" : "FAIL (BUG)");
  for (const DefectValidation& v : report.validations) {
    std::printf("  %-5s at %9s: %s (iteration %d)\n",
                defect_name(v.id).c_str(),
                eng_format(v.injected_resistance, 1).c_str(),
                v.detected ? "detected" : "MISSED", v.failing_iteration);
  }
  std::printf("validation coverage: %.1f%% of detectable defects\n",
              100.0 * report.validation_coverage());
  return 0;
}
