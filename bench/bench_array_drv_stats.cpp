// EXT1 (extension figure): statistical DRV_DS of an SRAM array vs capacity.
//
// The paper pins its test flow to the deterministic 6-sigma worst case
// (Table I CS1, ~730 mV). Its reference [6] frames DRV_DS statistically:
// the array's retention voltage is the max DRV over all cells — an extreme
// value that grows with capacity. This bench runs the statistical yield
// engine in blockade mode per capacity: every cell is classified by the
// trained surrogate, candidates near the tail get an exact lane-kernel
// solve, and the per-trial array maxima (exact for the gate-passing
// extremes) feed the Gumbel fit. Alongside the distribution it reports the
// engine's per-cell tail estimate P(DRV_DS > 0.40 V) with its 95% CI.
//
// Writes BENCH_array_drv.json stamped with `lpsram_build_type` so
// tools/check_bench_solver.py-style validation can refuse debug-build
// reports instead of silently accepting them.
//
// Usage: bench_array_drv_stats [--full]
//   --full: adds the 1M-cell row (a few extra minutes single-threaded).
#include <cstdio>
#include <cstring>

#include "build_type_warning.hpp"
#include "lpsram/stats/yield/engine.hpp"
#include "lpsram/util/table.hpp"

using namespace lpsram;

int main(int argc, char** argv) {
  lpsram::bench::warn_if_debug_build();
  bool full = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--full") == 0) full = true;

  const Technology tech = Technology::lp40nm();

  std::printf("EXT1 — statistical array DRV_DS vs capacity (yield engine, "
              "blockade mode)\n");
  std::printf("lpsram_build_type: %s\n\n",
              lpsram::bench::kReleaseBuild ? "release" : "debug");

  const DrvSurrogate surrogate = DrvSurrogate::train(tech);
  std::printf("surrogate: holdout RMS %.1f mV, max %.1f mV; weights:",
              surrogate.rms_error() * 1e3, surrogate.max_error() * 1e3);
  for (std::size_t i = 0; i < kAllCellTransistors.size(); ++i) {
    std::printf(" %s=%+.4f",
                cell_transistor_name(kAllCellTransistors[i]).c_str(),
                surrogate.weights()[i]);
  }
  std::printf("\n(weight signs = the paper's Fig. 4 adverse directions)\n\n");

  constexpr double kTailVreg = 0.40;  // per-cell tail grid point [V]

  struct Row {
    std::size_t cells;
    int trials;
    ArrayDrvDistribution dist;
    TailEstimate tail;
    std::uint64_t exact_solves;
  };
  std::vector<Row> rows;

  AsciiTable table({"cells", "trials", "mean (mV)", "p50", "p99 (Gumbel)",
                    "max seen", "P(cell>400mV)", "exact solves",
                    "yield @740mV"});
  for (const std::size_t cells :
       {std::size_t{1} << 10, std::size_t{1} << 14, std::size_t{1} << 16,
        std::size_t{1} << 18, std::size_t{1} << 20}) {
    if (cells > (std::size_t{1} << 18) && !full) continue;
    YieldEngineOptions options;
    options.rows = cells / 64;
    options.cols = 64;
    options.trials = cells >= (std::size_t{1} << 18) ? 20 : 60;
    options.mode = YieldMode::Blockade;
    options.vreg_grid = {kTailVreg};
    const YieldPlan plan(tech, surrogate, options);
    const YieldResult result = run_yield(plan);

    const ArrayDrvDistribution& d = result.array_dist;
    const TailEstimate& tail = result.points.front().tail;
    rows.push_back({cells, options.trials, d, tail, result.exact_solves});

    char mean[16], p50[16], p99[16], mx[16], pt[32], solves[16], y[16];
    std::snprintf(mean, sizeof(mean), "%.0f", d.mean * 1e3);
    std::snprintf(p50, sizeof(p50), "%.0f", d.percentile(0.5) * 1e3);
    std::snprintf(p99, sizeof(p99), "%.0f", d.gumbel_quantile(0.99) * 1e3);
    std::snprintf(mx, sizeof(mx), "%.0f", d.samples.back() * 1e3);
    std::snprintf(pt, sizeof(pt), "%.2e +/- %.1e", tail.p, tail.ci95);
    std::snprintf(solves, sizeof(solves), "%llu",
                  static_cast<unsigned long long>(result.exact_solves));
    std::snprintf(y, sizeof(y), "%.3f", d.yield_at(0.740));
    table.add_row({std::to_string(cells), std::to_string(options.trials),
                   mean, p50, p99, mx, pt, solves, y});
  }
  std::fputs(table.str().c_str(), stdout);

  std::printf(
      "\ninterpretation: the array DRV_DS grows ~logarithmically with "
      "capacity (extreme-value\nstatistics) but stays far below the "
      "deterministic 6-sigma corner the paper tests against\n(719 mV here / "
      "730 mV in the paper) — the corner-based flow is conservative, which "
      "is the\nright direction for a production screen. The per-cell tail "
      "column is capacity-independent\n(same cell distribution); only its CI "
      "tightens with the sample count.\n");

  FILE* json = std::fopen("BENCH_array_drv.json", "w");
  if (json) {
    std::fprintf(json,
                 "{\n"
                 "  \"context\": {\n"
                 "    \"lpsram_build_type\": \"%s\"\n"
                 "  },\n"
                 "  \"tail_vreg\": %.2f,\n"
                 "  \"rows\": [\n",
                 lpsram::bench::kReleaseBuild ? "release" : "debug",
                 kTailVreg);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(json,
                   "    {\"cells\": %zu, \"trials\": %d, \"mean_v\": %.9f, "
                   "\"gumbel_mu\": %.9f, \"gumbel_beta\": %.9f, "
                   "\"tail_p\": %.6e, \"tail_ci95\": %.6e, "
                   "\"exact_solves\": %llu}%s\n",
                   r.cells, r.trials, r.dist.mean, r.dist.gumbel_mu,
                   r.dist.gumbel_beta, r.tail.p, r.tail.ci95,
                   static_cast<unsigned long long>(r.exact_solves),
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("\nwrote BENCH_array_drv.json\n");
  }
  return 0;
}
