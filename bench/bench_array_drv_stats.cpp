// EXT1 (extension figure): statistical DRV_DS of an SRAM array vs capacity.
//
// The paper pins its test flow to the deterministic 6-sigma worst case
// (Table I CS1, ~730 mV). Its reference [6] frames DRV_DS statistically:
// the array's retention voltage is the max DRV over all cells — an extreme
// value that grows with capacity. This bench trains the DRV surrogate,
// Monte-Carlo samples arrays from 1K to 1M cells, and reports the
// distribution, the Gumbel extrapolation, and the retention yield at the
// optimized flow's Vreg settings.
#include <cstdio>

#include "lpsram/stats/array_stats.hpp"
#include "lpsram/util/table.hpp"

using namespace lpsram;

int main() {
  const Technology tech = Technology::lp40nm();

  std::printf("EXT1 — statistical array DRV_DS vs capacity (Monte Carlo over "
              "the trained surrogate)\n\n");

  const DrvSurrogate surrogate = DrvSurrogate::train(tech);
  std::printf("surrogate: holdout RMS %.1f mV, max %.1f mV; weights:",
              surrogate.rms_error() * 1e3, surrogate.max_error() * 1e3);
  for (std::size_t i = 0; i < kAllCellTransistors.size(); ++i) {
    std::printf(" %s=%+.4f",
                cell_transistor_name(kAllCellTransistors[i]).c_str(),
                surrogate.weights()[i]);
  }
  std::printf("\n(weight signs = the paper's Fig. 4 adverse directions)\n\n");

  AsciiTable table({"cells", "mean (mV)", "p50", "p95", "p99 (Gumbel)",
                    "max seen", "yield @740mV"});
  for (const std::size_t cells :
       {std::size_t{1} << 10, std::size_t{1} << 14, std::size_t{1} << 16,
        std::size_t{1} << 18, std::size_t{1} << 20}) {
    ArrayDrvOptions options;
    options.cells = cells;
    options.trials = cells > (1u << 18) ? 30 : 80;
    const ArrayDrvDistribution d = simulate_array_drv(surrogate, options);
    char mean[16], p50[16], p95[16], p99[16], mx[16], y[16];
    std::snprintf(mean, sizeof(mean), "%.0f", d.mean * 1e3);
    std::snprintf(p50, sizeof(p50), "%.0f", d.percentile(0.5) * 1e3);
    std::snprintf(p95, sizeof(p95), "%.0f", d.percentile(0.95) * 1e3);
    std::snprintf(p99, sizeof(p99), "%.0f", d.gumbel_quantile(0.99) * 1e3);
    std::snprintf(mx, sizeof(mx), "%.0f", d.samples.back() * 1e3);
    std::snprintf(y, sizeof(y), "%.3f", d.yield_at(0.740));
    table.add_row({std::to_string(cells), mean, p50, p95, p99, mx, y});
  }
  std::fputs(table.str().c_str(), stdout);

  std::printf(
      "\ninterpretation: the array DRV_DS grows ~logarithmically with "
      "capacity (extreme-value\nstatistics) but stays far below the "
      "deterministic 6-sigma corner the paper tests against\n(719 mV here / "
      "730 mV in the paper) — the corner-based flow is conservative, which "
      "is the\nright direction for a production screen.\n");
  return 0;
}
