// SEC4B: reproduces the Section IV.B defect classification — negligible
// gate defects, defects that increase static power, defects that cause
// DRFs, and the dual-behaviour divider defects — plus the ">30% static
// power saving even when Vreg = VDD" observation.
#include <cmath>
#include <cstdio>

#include "lpsram/core/drf_ds.hpp"
#include "lpsram/sram/energy.hpp"
#include "lpsram/sram/static_power.hpp"
#include "lpsram/util/table.hpp"
#include "lpsram/util/units.hpp"

using namespace lpsram;

int main() {
  const Technology tech = Technology::lp40nm();

  DsCondition condition;
  condition.vdd = 1.0;
  condition.vref = VrefLevel::V074;
  condition.temp_c = 125.0;
  condition.corner = Corner::FastNSlowP;
  const double drv = 0.70;

  std::printf(
      "SEC4B — defect classification at %s, Vref=%s, DRV=%s mV\n"
      "paper: Df14/17/18/21/24/25 negligible (gate lines); divider defects "
      "below the selected tap\nincrease power; Df2..Df5 dual-behaviour; the "
      "rest cause DRFs.\n\n",
      ds_condition_name(condition).c_str(), vref_name(condition.vref).c_str(),
      millivolt_format(drv).c_str());

  const auto classes = DrfDsFaultModel::classify(tech, condition, drv);

  AsciiTable table({"Defect", "Impact", "Vreg min", "Vreg max", "Site"});
  for (const DefectClassification& c : classes) {
    table.add_row({defect_name(c.id), defect_impact_name(c.impact),
                   millivolt_format(c.vreg_min) + " mV",
                   millivolt_format(c.vreg_max) + " mV",
                   defect_site(c.id).description});
  }
  std::fputs(table.str().c_str(), stdout);

  // Category counts.
  int counts[4] = {0, 0, 0, 0};
  for (const DefectClassification& c : classes)
    ++counts[static_cast<int>(c.impact)];
  std::printf(
      "\ncategories: %d negligible, %d power-only, %d DRF-only, %d both "
      "(paper: 6 negligible; Df2..Df5 dual)\n",
      counts[0], counts[1], counts[2], counts[3]);

  // The worst-case power observation: even with Vreg pinned at VDD, gating
  // the peripheral circuitry alone saves >30% vs idle ACT mode.
  const StaticPowerModel power(tech, Corner::FastNSlowP);
  const double vdd = 1.1;
  for (const double temp : {25.0, 125.0}) {
    const double p_act = power.active_idle_power(vdd, temp);
    const double p_ds_worst = power.array_power(vdd, temp);  // Vreg = VDD
    const double p_ds_healthy = power.array_power(0.77, temp);
    std::printf(
        "\n@%3.0fC: ACT idle %.3e W | DS worst-defect (Vreg=VDD) %.3e W "
        "(-%.0f%%) | DS healthy %.3e W (-%.0f%%)",
        temp, p_act, p_ds_worst, 100.0 * (1.0 - p_ds_worst / p_act),
        p_ds_healthy, 100.0 * (1.0 - p_ds_healthy / p_act));
  }
  std::printf("\n(paper: static power still reduced over 30%% in the worst "
              "case)\n");

  // Deep-sleep energy economics: how long must the SRAM idle before the
  // mode-transition round trip pays for itself?
  std::printf("\ndeep-sleep break-even idle time (healthy regulator, "
              "0.70*VDD):\n");
  {
    const DsEnergyModel model(tech, Corner::Typical);
    AsciiTable table({"temp", "ACT idle power", "DS power", "saving",
                      "break-even idle"});
    for (const double temp : {-30.0, 25.0, 125.0}) {
      const EnergyBreakdown e = model.analyze(1.1, VrefLevel::V070, temp);
      char t[16], pa[24], pd[24], sv[16], be[24];
      std::snprintf(t, sizeof(t), "%.0fC", temp);
      std::snprintf(pa, sizeof(pa), "%s W", eng_format(e.act_power, 2).c_str());
      std::snprintf(pd, sizeof(pd), "%s W", eng_format(e.ds_power, 2).c_str());
      std::snprintf(sv, sizeof(sv), "%.0f%%",
                    100.0 * (1.0 - e.ds_power / e.act_power));
      if (std::isfinite(e.break_even())) {
        std::snprintf(be, sizeof(be), "%ss",
                      eng_format(e.break_even(), 2).c_str());
      } else {
        std::snprintf(be, sizeof(be), "never (stay in ACT)");
      }
      table.add_row({t, pa, pd, sv, be});
    }
    std::fputs(table.str().c_str(), stdout);
  }
  return 0;
}
