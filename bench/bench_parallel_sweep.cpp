// PAR: serial-vs-parallel comparison of the Table II sweep executor, plus
// the warm-start solve cache's effect — the machinery behind every sweep
// driver (DefectCharacterizer, FlowOptimizer, RetentionAnalyzer, regulator
// characterization).
//
// Three runs of the same reduced-grid Table II slice:
//   1. serial, cache off   (baseline);
//   2. serial, cache on    (cache effect in isolation);
//   3. parallel, cache on  (the production configuration).
// Verifies runs 1/3 produce bit-identical minimal resistances (the executor's
// determinism contract), then writes the measurements to BENCH_parallel.json.
//
// Usage: bench_parallel_sweep [--threads N] [--full]
//   --threads N: worker count of the parallel run (default: LPSRAM_THREADS
//                env, else hardware concurrency — on a 1-CPU host the
//                "parallel" run degenerates to serial and speedup ~1).
//   --full:      all 17 DRF-causing defects on a 9-point grid instead of the
//                5-defect 2-point slice.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "build_type_warning.hpp"
#include "lpsram/runtime/parallel.hpp"
#include "lpsram/testflow/defect_characterization.hpp"
#include "lpsram/util/units.hpp"

using namespace lpsram;

namespace {

struct RunResult {
  std::vector<std::vector<DefectCsResult>> rows;
  SweepTelemetry telemetry;
};

RunResult run(const Technology& tech, const DefectCharacterizationOptions& base,
              std::span<const DefectId> defects,
              std::span<const CaseStudy> case_studies, int threads,
              bool cache) {
  DefectCharacterizationOptions options = base;
  options.threads = threads;
  options.solve_cache = cache;
  const DefectCharacterizer characterizer(tech, options);
  RunResult result;
  result.rows = characterizer.table(defects, case_studies, &result.telemetry);
  return result;
}

bool bit_identical(const RunResult& a, const RunResult& b) {
  if (a.rows.size() != b.rows.size()) return false;
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    for (std::size_t j = 0; j < a.rows[i].size(); ++j) {
      const DefectCsResult& x = a.rows[i][j];
      const DefectCsResult& y = b.rows[i][j];
      if (x.min_resistance != y.min_resistance || x.open_only != y.open_only ||
          x.vref_at_worst != y.vref_at_worst ||
          x.worst_pvt.corner != y.worst_pvt.corner ||
          x.worst_pvt.vdd != y.worst_pvt.vdd ||
          x.sweep.completed() != y.sweep.completed())
        return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  lpsram::bench::warn_if_debug_build();
  bool full = false;
  int threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0)
      full = true;
    else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads = std::atoi(argv[++i]);
  }
  if (threads == 0) threads = SweepExecutor::default_threads();

  const Technology tech = Technology::lp40nm();

  DefectCharacterizationOptions options;
  options.rel_tolerance = 1.10;
  if (full) {
    for (const Corner corner :
         {Corner::FastNSlowP, Corner::SlowNFastP, Corner::Typical})
      for (const double vdd : tech.vdd_levels())
        options.pvt.push_back(PvtPoint{corner, vdd, 125.0});
  } else {
    options.pvt = {PvtPoint{Corner::FastNSlowP, 1.0, 125.0},
                   PvtPoint{Corner::Typical, 1.1, 125.0}};
  }

  std::vector<DefectId> defects;
  if (full)
    defects.assign(table2_defects().begin(), table2_defects().end());
  else
    defects = {7, 16, 19, 23, 29};
  const std::vector<CaseStudy> case_studies = {case_study(1, true)};

  std::printf("PAR — sweep executor + solve cache on the Table II slice "
              "(%zu defects x %zu PVT points, %d workers)\n\n",
              defects.size(), options.pvt.size(), threads);

  const RunResult serial = run(tech, options, defects, case_studies, 1, false);
  std::printf("serial, cache off : %s\n", serial.telemetry.summary().c_str());

  const RunResult cached = run(tech, options, defects, case_studies, 1, true);
  std::printf("serial, cache on  : %s\n", cached.telemetry.summary().c_str());

  const RunResult parallel =
      run(tech, options, defects, case_studies, threads, true);
  std::printf("parallel, cache on: %s\n", parallel.telemetry.summary().c_str());

  const bool identical = bit_identical(serial, parallel);
  const double speedup = parallel.telemetry.wall_s > 0.0
                             ? serial.telemetry.wall_s / parallel.telemetry.wall_s
                             : 0.0;
  const double cache_speedup =
      cached.telemetry.wall_s > 0.0
          ? serial.telemetry.wall_s / cached.telemetry.wall_s
          : 0.0;

  std::printf("\nserial -> parallel speedup: %.2fx at %d workers\n", speedup,
              threads);
  std::printf("serial -> cached speedup:   %.2fx\n", cache_speedup);
  std::printf("cache hit rate:             %.1f%%\n",
              100.0 * parallel.telemetry.cache_hit_rate());
  std::printf("parallel bit-identical to serial: %s\n",
              identical ? "yes" : "NO (BUG)");

  FILE* json = std::fopen("BENCH_parallel.json", "w");
  if (json) {
    std::fprintf(json,
                 "{\n"
                 "  \"tasks\": %zu,\n"
                 "  \"threads\": %d,\n"
                 "  \"serial_wall_s\": %.6f,\n"
                 "  \"cached_wall_s\": %.6f,\n"
                 "  \"parallel_wall_s\": %.6f,\n"
                 "  \"speedup\": %.4f,\n"
                 "  \"cache_speedup\": %.4f,\n"
                 "  \"cache_hit_rate\": %.4f,\n"
                 "  \"solves\": %llu,\n"
                 "  \"bit_identical\": %s\n"
                 "}\n",
                 parallel.telemetry.tasks, threads, serial.telemetry.wall_s,
                 cached.telemetry.wall_s, parallel.telemetry.wall_s, speedup,
                 cache_speedup, parallel.telemetry.cache_hit_rate(),
                 static_cast<unsigned long long>(
                     parallel.telemetry.solves.solves),
                 identical ? "true" : "false");
    std::fclose(json);
    std::printf("\nwrote BENCH_parallel.json\n");
  }
  return identical ? 0 : 1;
}
