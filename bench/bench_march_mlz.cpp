// SEC5: March m-LZ on the reference 4Kx64 SRAM — complexity accounting,
// DRF_DS detection vs classic March tests, DS-time sensitivity, and the
// 75% test-time arithmetic.
#include <cmath>
#include <cstdio>

#include "lpsram/march/executor.hpp"
#include "lpsram/march/library.hpp"
#include "lpsram/util/table.hpp"
#include "lpsram/util/units.hpp"

using namespace lpsram;

namespace {

SramConfig reference_config() {
  SramConfig config;
  config.words = 4096;
  config.bits = 64;
  config.corner = Corner::FastNSlowP;
  config.vdd = 1.0;
  config.vref = VrefLevel::V074;
  config.temp_c = 125.0;
  config.baseline_drv = DrvResult{0.20, 0.20};
  return config;
}

DrvResult weak_cell_drv(const Technology& tech) {
  CellVariation v;
  v.mpcc1 = -6;
  v.mncc1 = -6;
  v.mpcc2 = +6;
  v.mncc2 = +6;
  v.mncc3 = -6;
  v.mncc4 = +6;
  return drv_ds(CoreCell(tech, v, Corner::FastNSlowP), 125.0);
}

}  // namespace

int main() {
  const Technology tech = Technology::lp40nm();

  std::printf("SEC5 — March m-LZ on the 4Kx64 reference block\n\n");

  // Complexity table.
  {
    AsciiTable table({"Test", "Notation", "Complexity", "Test time @10ns, "
                      "1ms DS"});
    for (const MarchTest& t : march::all_tests()) {
      const double time = march_test_time(t, 4096, 10e-9, 1e-3);
      table.add_row({t.name, t.notation(), t.complexity(),
                     eng_format(time, 2) + "s"});
    }
    std::fputs(table.str().c_str(), stdout);
  }
  std::printf("(paper: March m-LZ length 5N+4)\n\n");

  // Detection: defective device (Df7, Vreg ~30 mV under the weak DRV).
  std::printf("DRF_DS detection on a defective device (Df7 = 3 MOhm, one "
              "CS1 weak cell):\n");
  {
    AsciiTable table({"Test", "Verdict", "Failures", "First failing element"});
    for (const MarchTest& t : march::all_tests()) {
      LowPowerSram sram(reference_config());
      sram.add_weak_cell(1234, 17, weak_cell_drv(tech));
      sram.inject_regulator_defect(7, 3e6);
      MarchExecutorOptions options;
      options.ds_time = 1e-3;
      MarchExecutor executor(sram, options);
      const MarchRunResult run = executor.run(t);
      table.add_row({t.name, run.passed ? "PASS (fault escaped)" : "FAIL",
                     std::to_string(run.total_failures),
                     run.failures.empty()
                         ? "-"
                         : t.elements[run.failures[0].element].str()});
    }
    std::fputs(table.str().c_str(), stdout);
  }
  std::printf("(paper: only DSM-bearing tests can sensitize DRF_DS)\n\n");

  // DS-time sensitivity for a shallow defect.
  std::printf("DS-time sensitivity (Df7 tuned just below the weak DRV):\n");
  {
    LowPowerSram sram(reference_config());
    const DrvResult weak = weak_cell_drv(tech);
    sram.add_weak_cell(100, 5, weak);
    // Tune the defect for a ~3 mV deficit.
    double lo = 1e3, hi = 500e6;
    for (int i = 0; i < 40; ++i) {
      const double mid = lo * std::sqrt(hi / lo);
      sram.inject_regulator_defect(7, mid);
      if (sram.vreg_ds() < weak.drv1 - 0.003) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    sram.inject_regulator_defect(7, hi);
    std::printf("  deficit below DRV: %s mV\n",
                millivolt_format(weak.drv1 - sram.vreg_ds(), 1).c_str());
    AsciiTable table({"DS time", "March m-LZ verdict"});
    for (const double ds : {1e-6, 1e-5, 1e-4, 1e-3, 1e-2}) {
      MarchExecutorOptions options;
      options.ds_time = ds;
      MarchExecutor executor(sram, options);
      const MarchRunResult run = executor.run(march::march_m_lz());
      table.add_row({eng_format(ds, 0) + "s",
                     run.passed ? "PASS (escape)" : "FAIL (detected)"});
    }
    std::fputs(table.str().c_str(), stdout);
  }
  std::printf("(paper: keep the SRAM in DS mode for at least 1 ms)\n\n");

  // Test-time arithmetic.
  const double one = march_test_time(march::march_m_lz(), 4096, 10e-9, 1e-3);
  std::printf(
      "test time: 1 iteration %.3f ms; 12 naive iterations %.2f ms; 3 "
      "optimized %.2f ms -> %.0f%% reduction (paper: 75%%)\n",
      one * 1e3, 12 * one * 1e3, 3 * one * 1e3,
      100.0 * (1.0 - 3.0 / 12.0));
  return 0;
}
