// Resilience demonstration: a miniature Table II sweep run clean and then
// under chaos fault injection, side by side.
//
//  A. Clean sweep: every PVT point solves, full coverage.
//  B. Recoverable chaos: 30% of first-attempt solves are sabotaged (NaN
//     residuals / singular Jacobians); the retry ladder recovers every
//     point and the classifications match the clean run exactly.
//  C. Unrecoverable chaos: retries are sabotaged too; points are
//     quarantined with their error taxonomy and the coverage report flags
//     the partial cells instead of the sweep aborting.
#include <cstdio>
#include <vector>

#include "build_type_warning.hpp"
#include "lpsram/runtime/chaos.hpp"
#include "lpsram/testflow/report.hpp"
#include "lpsram/util/units.hpp"

using namespace lpsram;

namespace {

DefectCharacterizationOptions fast_options() {
  DefectCharacterizationOptions o;
  o.pvt = {PvtPoint{Corner::FastNSlowP, 1.0, 125.0},
           PvtPoint{Corner::SlowNFastP, 1.0, 125.0},
           PvtPoint{Corner::Typical, 1.1, 125.0}};
  o.rel_tolerance = 1.10;
  return o;
}

std::vector<std::vector<DefectCsResult>> run_sweep(const Technology& tech) {
  const DefectCharacterizer ch(tech, fast_options());
  const std::vector<DefectId> defects = {1, 16, 19};
  const std::vector<CaseStudy> cs = {case_study(1, true)};
  return ch.table(defects, cs);
}

void print_sweep(const char* title,
                 const std::vector<std::vector<DefectCsResult>>& rows) {
  std::printf("%s\n", title);
  for (const auto& row : rows)
    for (const DefectCsResult& r : row)
      std::printf("  Df%-2d x %s: Rmin %s%s\n", r.id, r.cs_name.c_str(),
                  r.open_only ? "> " : "",
                  eng_format(r.min_resistance, 2).c_str());
  const SweepReport total = table2_coverage(rows);
  std::printf("  coverage: %s\n\n", total.summary().c_str());
}

void print_chaos(const ChaosEngine& chaos) {
  std::printf("  chaos: %llu/%llu solves sabotaged (%.0f%% of %llu first "
              "attempts)\n",
              static_cast<unsigned long long>(chaos.solves_sabotaged()),
              static_cast<unsigned long long>(chaos.solves_seen()),
              chaos.first_attempt_sabotage_fraction() * 100.0,
              static_cast<unsigned long long>(chaos.first_attempts_seen()));
}

}  // namespace

int main() {
  lpsram::bench::warn_if_debug_build();
  const Technology tech = Technology::lp40nm();
  std::printf("Resilient solve engine under numerical fault injection\n\n");

  // ---- A: clean baseline --------------------------------------------------
  const auto clean = run_sweep(tech);
  print_sweep("A. clean sweep:", clean);

  // ---- B: first attempts sabotaged, retries recover -----------------------
  ChaosPolicy recoverable;
  recoverable.seed = 7;
  recoverable.first_attempt_failure_rate = 0.3;
  recoverable.faults = {ChaosFault::NanResidual, ChaosFault::SingularJacobian};
  ChaosEngine chaos_b(recoverable);
  {
    ChaosScope scope(chaos_b);
    const auto rows = run_sweep(tech);
    print_sweep("B. 30% first-attempt failures, retry ladder recovers:", rows);
  }
  print_chaos(chaos_b);

  // ---- C: retries sabotaged too -> quarantine -----------------------------
  ChaosPolicy fatal;
  fatal.seed = 3;
  fatal.first_attempt_failure_rate = 0.4;
  fatal.retry_failure_rate = 1.0;
  fatal.faults = {ChaosFault::NanResidual};
  ChaosEngine chaos_c(fatal);
  {
    ChaosScope scope(chaos_c);
    const auto rows = run_sweep(tech);
    std::printf("\nC. retries sabotaged too — partial results, quarantine "
                "accounting:\n");
    std::fputs(coverage_report(rows).c_str(), stdout);
  }
  print_chaos(chaos_c);
  return 0;
}
