// FIG4: reproduces paper Fig. 4 — worst-case DRV_DS1 (4.a) and DRV_DS0 (4.b)
// versus Vth variation injected into each single transistor of one core
// cell, maximized over process corners and temperatures.
//
// Usage: bench_fig4_drv_vth [--fast] [--threads N]
//   --fast restricts the PVT grid (typical/fs corners, 25/125 C) for a quick
//   look; the default sweeps all 5 corners x 3 temperatures like the paper.
//   --threads N picks the sweep-executor worker count (default: LPSRAM_THREADS
//   env, else hardware concurrency); the points are bit-identical at any N.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "lpsram/core/retention_analyzer.hpp"
#include "lpsram/util/units.hpp"

using namespace lpsram;

int main(int argc, char** argv) {
  bool fast = false;
  int threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0)
      fast = true;
    else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads = std::atoi(argv[++i]);
  }

  const Technology tech = Technology::lp40nm();
  const RetentionAnalyzer analyzer(tech);

  const std::vector<double> sigmas = {-6.0, -4.5, -3.0, -1.5, -0.5, 0.0,
                                      0.5,  1.5,  3.0,  4.5,  6.0};
  std::vector<Corner> corners(kAllCorners.begin(), kAllCorners.end());
  std::vector<double> temps(tech.temperatures().begin(),
                            tech.temperatures().end());
  if (fast) {
    corners = {Corner::Typical, Corner::FastNSlowP};
    temps = {25.0, 125.0};
  }

  std::printf(
      "FIG4 — DRV_DS vs per-transistor Vth variation (max over %zu corners x "
      "%zu temperatures)\n",
      corners.size(), temps.size());
  std::printf(
      "paper shape: adverse directions (MPcc1/MNcc1/MNcc3 negative, "
      "MPcc2/MNcc2/MNcc4 positive)\n"
      "raise DRV_DS1; pass-gate impact second-order; symmetric cell well "
      "above 60 mV.\n\n");

  SweepTelemetry telemetry;
  const auto points =
      analyzer.fig4_sweep(sigmas, corners, temps, nullptr, &telemetry, threads);
  std::fputs(fig4_report(points).c_str(), stdout);
  std::printf("\nsweep: %s\n", telemetry.summary().c_str());

  // Headline numbers the paper quotes around Fig. 4.
  CellVariation none;
  const PvtDrvResult sym = drv_ds_worst(tech, none, corners, temps);
  std::printf(
      "\nsymmetric cell worst-case DRV_DS: %s mV (paper: 'over 60 mV')\n",
      millivolt_format(sym.drv.drv()).c_str());
  return 0;
}
