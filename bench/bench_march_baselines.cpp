// BASE: classic fault coverage of the March library — the sanity baseline
// underneath the paper's retention extension. Serial fault simulation of
// SAF/TF/CFin/CFid/CFst/retention-decay lists against every library test.
#include <cstdio>

#include "lpsram/faults/coverage.hpp"
#include "lpsram/march/executor.hpp"
#include "lpsram/march/library.hpp"
#include "lpsram/util/table.hpp"

using namespace lpsram;

int main() {
  SramConfig config;
  config.words = 128;
  config.bits = 16;
  config.baseline_drv = DrvResult{0.12, 0.12};

  FaultListOptions list_options;
  list_options.max_cells = 24;
  list_options.retention_time = 1e-5;

  std::printf(
      "BASE — classic fault coverage per March test (%zu-cell samples, "
      "aggressor = adjacent bit line)\n\n",
      list_options.max_cells);

  LowPowerSram sram(config);
  const auto stuck = generate_stuck_at(sram, list_options);
  const auto transition = generate_transition(sram, list_options);
  const auto coupling = generate_coupling(sram, list_options);
  const auto retention = generate_retention(sram, list_options);

  AsciiTable table({"Test", "Complexity", "SAF", "TF", "CF*", "DRF(decay)",
                    "overall"});
  for (const MarchTest& t : march::all_tests()) {
    MarchExecutorOptions options;
    options.ds_time = 1e-4;
    FaultSimulator sim(sram, options);
    auto pct = [&](const std::vector<FaultDescriptor>& faults) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%.0f%%",
                    100.0 * sim.simulate(t, faults).coverage());
      return std::string(buf);
    };
    auto all = generate_all(sram, list_options);
    table.add_row({t.name, t.complexity(), pct(stuck), pct(transition),
                   pct(coupling), pct(retention), pct(all)});
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf(
      "\nexpected: MATS+ 100%% SAF only; March C- adds TF/CF; March SS "
      "super-set; only DSM-bearing\ntests (March LZ / m-LZ) catch "
      "retention decay.\n");
  return 0;
}
