// YIELD: the acceptance benchmark for the statistical yield engine.
//
// Two estimates of the same 4Kx64 sigma-to-yield curve:
//   * reference — statistical blockade over `--trials` full array instances
//     (tens of millions of nominal samples, exact solves only for the
//     surrogate-gated tail candidates). At the gate point its failure count
//     is large enough to serve as ground truth.
//   * importance — the mean-shifted defensive-mixture importance sampler
//     with a few thousand samples.
//
// The headline claim (gated by tools/check_bench_yield.py): at the gate
// point Vreg = 0.40 V the per-cell tail is so rare that a naive brute-force
// Monte Carlo would need >= 10^7 exact DRV solves to pin it to the
// importance sampler's reported relative CI — and the importance sampler
// reaches a statistically indistinguishable estimate (95% CIs overlap)
// with <= 1/20 of that exact-solve budget.
//
// A second gated claim covers the candidate exact-solve path
// (BM_CandidateExact): the same Blockade curve is timed under both exact-
// batch kinds — OneAtATime (the scalar oracle loop) and LaneBatch (cross-cell
// SoA lanes through drv_hold_cross_batched) — at two candidate densities. At
// heavy density (the gate swallows every sampled cell) the lane batch must be
// >= 2x faster; at sparse density (surrogate evaluation dominates, few exact
// solves) it must at least not regress. Both runs must produce bit-identical
// curves, or the speedup is meaningless.
//
// Writes BENCH_yield.json with the `lpsram_build_type` stamp; the check
// script refuses debug-build reports.
//
// Usage: bench_yield [--trials N] [--samples N] [--threads N]
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "build_type_warning.hpp"
#include "lpsram/stats/yield/engine.hpp"

using namespace lpsram;

namespace {

double wall_seconds(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void print_curve(const char* label, const YieldResult& r) {
  std::printf("%s: %llu samples, %llu exact solves\n", label,
              static_cast<unsigned long long>(r.samples),
              static_cast<unsigned long long>(r.exact_solves));
  for (const YieldPoint& pt : r.points) {
    std::printf(
        "  vreg %.2f V: p %.3e +/- %.3e (rel %.3f, ess %.0f, sigma %.2f, "
        "failures %llu)\n",
        pt.vreg, pt.tail.p, pt.tail.ci95, pt.tail.rel_ci, pt.tail.ess,
        pt.sigma, static_cast<unsigned long long>(pt.failures));
  }
}

bool curves_bit_identical(const YieldResult& a, const YieldResult& b) {
  if (a.points.size() != b.points.size() || a.exact_solves != b.exact_solves)
    return false;
  for (std::size_t k = 0; k < a.points.size(); ++k) {
    if (a.points[k].failures != b.points[k].failures) return false;
    if (std::memcmp(&a.points[k].tail.p, &b.points[k].tail.p,
                    sizeof(double)) != 0)
      return false;
  }
  return true;
}

// BM_CandidateExact{Scalar,LaneBatch}: one Blockade configuration timed under
// both exact-batch kinds on one worker thread (kernel speedup, not executor
// scaling), plus the bit-identity cross-check the speedup is conditional on.
struct CandidateExactSection {
  double margin = 0.0;
  std::uint64_t samples = 0;
  std::uint64_t candidates = 0;
  std::uint64_t exact_solves = 0;
  double one_wall = 0.0;   // BM_CandidateExactScalar
  double lane_wall = 0.0;  // BM_CandidateExactLaneBatch
  double speedup = 0.0;
  bool identical = false;
};

CandidateExactSection bench_candidate_exact(const Technology& tech,
                                            const DrvSurrogate& surrogate,
                                            const YieldEngineOptions& opts) {
  CandidateExactSection s;
  s.margin = opts.blockade_margin;
  YieldResult one, lane;
  {
    ScopedYieldExactBatchDefault scoped(YieldExactBatchKind::OneAtATime);
    const YieldPlan plan(tech, surrogate, opts);
    const auto t0 = std::chrono::steady_clock::now();
    one = run_yield(plan);
    s.one_wall = wall_seconds(t0);
  }
  {
    ScopedYieldExactBatchDefault scoped(YieldExactBatchKind::LaneBatch);
    const YieldPlan plan(tech, surrogate, opts);
    const auto t0 = std::chrono::steady_clock::now();
    lane = run_yield(plan);
    s.lane_wall = wall_seconds(t0);
  }
  s.samples = lane.samples;
  s.candidates = lane.candidates;
  s.exact_solves = lane.exact_solves;
  s.speedup = s.lane_wall > 0.0 ? s.one_wall / s.lane_wall : 0.0;
  s.identical = curves_bit_identical(one, lane);
  return s;
}

void print_candidate_exact(const char* label, const CandidateExactSection& s) {
  std::printf("BM_CandidateExact (%s, margin %.2f V): %llu of %llu cells "
              "gated, %llu exact solves\n",
              label, s.margin, static_cast<unsigned long long>(s.candidates),
              static_cast<unsigned long long>(s.samples),
              static_cast<unsigned long long>(s.exact_solves));
  std::printf("  one-at-a-time %.3f s, lane-batch %.3f s -> %.2fx, curves %s\n",
              s.one_wall, s.lane_wall, s.speedup,
              s.identical ? "bit-identical" : "DIVERGED (BUG?)");
}

}  // namespace

int main(int argc, char** argv) {
  lpsram::bench::warn_if_debug_build();
  int trials = 128;
  std::size_t samples = 20000;
  int threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc)
      trials = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--samples") == 0 && i + 1 < argc)
      samples = static_cast<std::size_t>(std::atoll(argv[++i]));
    else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads = std::atoi(argv[++i]);
  }

  const Technology tech = Technology::lp40nm();
  const DrvSurrogate surrogate = DrvSurrogate::train(tech);

  YieldEngineOptions base;
  base.rows = 4096;
  base.cols = 64;
  base.vreg_grid = {0.38, 0.40, 0.42};
  base.threads = threads;
  const double gate_vreg = base.vreg_grid[1];
  const std::size_t gate_k = 1;

  std::printf("YIELD — blockade reference vs importance-sampled tails on a "
              "%zux%zu array\n",
              base.rows, base.cols);
  std::printf("lpsram_build_type: %s\n\n",
              lpsram::bench::kReleaseBuild ? "release" : "debug");

  YieldEngineOptions ref_options = base;
  ref_options.mode = YieldMode::Blockade;
  ref_options.trials = trials;
  const YieldPlan ref_plan(tech, surrogate, ref_options);
  auto t0 = std::chrono::steady_clock::now();
  const YieldResult reference = run_yield(ref_plan);
  const double ref_wall = wall_seconds(t0);
  print_curve("reference (blockade)", reference);

  YieldEngineOptions is_options = base;
  is_options.mode = YieldMode::ImportanceSampled;
  is_options.is_samples = samples;
  is_options.is_shift = 4.5;
  const YieldPlan is_plan(tech, surrogate, is_options);
  t0 = std::chrono::steady_clock::now();
  const YieldResult importance = run_yield(is_plan);
  const double is_wall = wall_seconds(t0);
  print_curve("importance (shifted mixture)", importance);

  const TailEstimate& ref_tail = reference.points[gate_k].tail;
  const TailEstimate& is_tail = importance.points[gate_k].tail;
  // Exact solves a naive brute-force Monte Carlo would need to pin the gate
  // point to the importance sampler's achieved relative CI.
  const double bf_needed =
      brute_force_solves_needed(is_tail.p, is_tail.rel_ci);
  const double combined_ci =
      std::sqrt(ref_tail.ci95 * ref_tail.ci95 + is_tail.ci95 * is_tail.ci95);
  const bool ci_overlap = std::fabs(is_tail.p - ref_tail.p) <= combined_ci;
  const double solve_ratio =
      bf_needed > 0.0
          ? static_cast<double>(importance.exact_solves) / bf_needed
          : 1.0;

  std::printf("\nat the gate point vreg %.2f V:\n", gate_vreg);
  std::printf("  brute force would need %.3e exact solves for rel CI %.3f\n",
              bf_needed, is_tail.rel_ci);
  std::printf("  importance sampler spent %llu (%.5f of brute force)\n",
              static_cast<unsigned long long>(importance.exact_solves),
              solve_ratio);
  std::printf("  |p_is - p_ref| = %.3e vs combined CI %.3e: %s\n",
              std::fabs(is_tail.p - ref_tail.p), combined_ci,
              ci_overlap ? "OVERLAP" : "DISJOINT (BUG?)");
  std::printf("  wall: reference %.1f s, importance %.1f s\n", ref_wall,
              is_wall);

  // Candidate exact-solve batching at two densities, one worker thread.
  // Sparse: the default gate margin — surrogate evaluation dominates, exact
  // solves are rare; lane batching must simply not regress. Heavy: the gate
  // sits below 0 V so every sampled cell takes an exact solve — this is the
  // configuration the cross-cell lane kernel exists for.
  std::printf("\n");
  YieldEngineOptions ce = base;
  ce.mode = YieldMode::Blockade;
  ce.rows = 256;
  ce.cols = 64;
  ce.trials = 8;
  ce.threads = 1;
  const CandidateExactSection sparse =
      bench_candidate_exact(tech, surrogate, ce);
  print_candidate_exact("sparse", sparse);
  ce.rows = 64;
  ce.cols = 64;
  ce.trials = 2;
  ce.blockade_margin = 0.40;  // gate < 0 V: every cell is a candidate
  const CandidateExactSection heavy =
      bench_candidate_exact(tech, surrogate, ce);
  print_candidate_exact("heavy", heavy);
  const bool batch_sound = sparse.identical && heavy.identical;

  FILE* json = std::fopen("BENCH_yield.json", "w");
  if (json) {
    std::fprintf(
        json,
        "{\n"
        "  \"context\": {\n"
        "    \"lpsram_build_type\": \"%s\",\n"
        "    \"threads\": %d\n"
        "  },\n"
        "  \"rows\": %zu,\n"
        "  \"cols\": %zu,\n"
        "  \"gate_vreg\": %.2f,\n"
        "  \"reference\": {\"mode\": \"blockade\", \"trials\": %d, "
        "\"samples\": %llu, \"exact_solves\": %llu, \"p\": %.9e, "
        "\"ci95\": %.9e, \"rel_ci\": %.6f, \"ess\": %.1f, "
        "\"failures\": %llu, \"wall_s\": %.3f},\n"
        "  \"importance\": {\"mode\": \"importance\", \"shift\": %.2f, "
        "\"samples\": %llu, \"exact_solves\": %llu, \"p\": %.9e, "
        "\"ci95\": %.9e, \"rel_ci\": %.6f, \"ess\": %.1f, "
        "\"failures\": %llu, \"wall_s\": %.3f},\n"
        "  \"bf_solves_needed\": %.6e,\n"
        "  \"solve_ratio\": %.8f,\n"
        "  \"ci_overlap\": %s,\n"
        "  \"candidate_exact\": {\n"
        "    \"sparse\": {\"blockade_margin\": %.3f, \"samples\": %llu, "
        "\"candidates\": %llu, \"exact_solves\": %llu, "
        "\"one_at_a_time_wall_s\": %.6f, \"lane_batch_wall_s\": %.6f, "
        "\"speedup\": %.4f, \"curves_identical\": %s},\n"
        "    \"heavy\": {\"blockade_margin\": %.3f, \"samples\": %llu, "
        "\"candidates\": %llu, \"exact_solves\": %llu, "
        "\"one_at_a_time_wall_s\": %.6f, \"lane_batch_wall_s\": %.6f, "
        "\"speedup\": %.4f, \"curves_identical\": %s}\n"
        "  }\n"
        "}\n",
        lpsram::bench::kReleaseBuild ? "release" : "debug", threads,
        base.rows, base.cols, gate_vreg, trials,
        static_cast<unsigned long long>(reference.samples),
        static_cast<unsigned long long>(reference.exact_solves), ref_tail.p,
        ref_tail.ci95, ref_tail.rel_ci, ref_tail.ess,
        static_cast<unsigned long long>(reference.points[gate_k].failures),
        ref_wall, is_options.is_shift,
        static_cast<unsigned long long>(importance.samples),
        static_cast<unsigned long long>(importance.exact_solves), is_tail.p,
        is_tail.ci95, is_tail.rel_ci, is_tail.ess,
        static_cast<unsigned long long>(importance.points[gate_k].failures),
        is_wall, bf_needed, solve_ratio, ci_overlap ? "true" : "false",
        sparse.margin, static_cast<unsigned long long>(sparse.samples),
        static_cast<unsigned long long>(sparse.candidates),
        static_cast<unsigned long long>(sparse.exact_solves), sparse.one_wall,
        sparse.lane_wall, sparse.speedup, sparse.identical ? "true" : "false",
        heavy.margin, static_cast<unsigned long long>(heavy.samples),
        static_cast<unsigned long long>(heavy.candidates),
        static_cast<unsigned long long>(heavy.exact_solves), heavy.one_wall,
        heavy.lane_wall, heavy.speedup, heavy.identical ? "true" : "false");
    std::fclose(json);
    std::printf("\nwrote BENCH_yield.json\n");
  }
  return ci_overlap && batch_sound ? 0 : 1;
}
