// YIELD: the acceptance benchmark for the statistical yield engine.
//
// Two estimates of the same 4Kx64 sigma-to-yield curve:
//   * reference — statistical blockade over `--trials` full array instances
//     (tens of millions of nominal samples, exact solves only for the
//     surrogate-gated tail candidates). At the gate point its failure count
//     is large enough to serve as ground truth.
//   * importance — the mean-shifted defensive-mixture importance sampler
//     with a few thousand samples.
//
// The headline claim (gated by tools/check_bench_yield.py): at the gate
// point Vreg = 0.40 V the per-cell tail is so rare that a naive brute-force
// Monte Carlo would need >= 10^7 exact DRV solves to pin it to the
// importance sampler's reported relative CI — and the importance sampler
// reaches a statistically indistinguishable estimate (95% CIs overlap)
// with <= 1/20 of that exact-solve budget.
//
// Writes BENCH_yield.json with the `lpsram_build_type` stamp; the check
// script refuses debug-build reports.
//
// Usage: bench_yield [--trials N] [--samples N] [--threads N]
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "build_type_warning.hpp"
#include "lpsram/stats/yield/engine.hpp"

using namespace lpsram;

namespace {

double wall_seconds(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void print_curve(const char* label, const YieldResult& r) {
  std::printf("%s: %llu samples, %llu exact solves\n", label,
              static_cast<unsigned long long>(r.samples),
              static_cast<unsigned long long>(r.exact_solves));
  for (const YieldPoint& pt : r.points) {
    std::printf(
        "  vreg %.2f V: p %.3e +/- %.3e (rel %.3f, ess %.0f, sigma %.2f, "
        "failures %llu)\n",
        pt.vreg, pt.tail.p, pt.tail.ci95, pt.tail.rel_ci, pt.tail.ess,
        pt.sigma, static_cast<unsigned long long>(pt.failures));
  }
}

}  // namespace

int main(int argc, char** argv) {
  lpsram::bench::warn_if_debug_build();
  int trials = 128;
  std::size_t samples = 20000;
  int threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc)
      trials = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--samples") == 0 && i + 1 < argc)
      samples = static_cast<std::size_t>(std::atoll(argv[++i]));
    else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads = std::atoi(argv[++i]);
  }

  const Technology tech = Technology::lp40nm();
  const DrvSurrogate surrogate = DrvSurrogate::train(tech);

  YieldEngineOptions base;
  base.rows = 4096;
  base.cols = 64;
  base.vreg_grid = {0.38, 0.40, 0.42};
  base.threads = threads;
  const double gate_vreg = base.vreg_grid[1];
  const std::size_t gate_k = 1;

  std::printf("YIELD — blockade reference vs importance-sampled tails on a "
              "%zux%zu array\n",
              base.rows, base.cols);
  std::printf("lpsram_build_type: %s\n\n",
              lpsram::bench::kReleaseBuild ? "release" : "debug");

  YieldEngineOptions ref_options = base;
  ref_options.mode = YieldMode::Blockade;
  ref_options.trials = trials;
  const YieldPlan ref_plan(tech, surrogate, ref_options);
  auto t0 = std::chrono::steady_clock::now();
  const YieldResult reference = run_yield(ref_plan);
  const double ref_wall = wall_seconds(t0);
  print_curve("reference (blockade)", reference);

  YieldEngineOptions is_options = base;
  is_options.mode = YieldMode::ImportanceSampled;
  is_options.is_samples = samples;
  is_options.is_shift = 4.5;
  const YieldPlan is_plan(tech, surrogate, is_options);
  t0 = std::chrono::steady_clock::now();
  const YieldResult importance = run_yield(is_plan);
  const double is_wall = wall_seconds(t0);
  print_curve("importance (shifted mixture)", importance);

  const TailEstimate& ref_tail = reference.points[gate_k].tail;
  const TailEstimate& is_tail = importance.points[gate_k].tail;
  // Exact solves a naive brute-force Monte Carlo would need to pin the gate
  // point to the importance sampler's achieved relative CI.
  const double bf_needed =
      brute_force_solves_needed(is_tail.p, is_tail.rel_ci);
  const double combined_ci =
      std::sqrt(ref_tail.ci95 * ref_tail.ci95 + is_tail.ci95 * is_tail.ci95);
  const bool ci_overlap = std::fabs(is_tail.p - ref_tail.p) <= combined_ci;
  const double solve_ratio =
      bf_needed > 0.0
          ? static_cast<double>(importance.exact_solves) / bf_needed
          : 1.0;

  std::printf("\nat the gate point vreg %.2f V:\n", gate_vreg);
  std::printf("  brute force would need %.3e exact solves for rel CI %.3f\n",
              bf_needed, is_tail.rel_ci);
  std::printf("  importance sampler spent %llu (%.5f of brute force)\n",
              static_cast<unsigned long long>(importance.exact_solves),
              solve_ratio);
  std::printf("  |p_is - p_ref| = %.3e vs combined CI %.3e: %s\n",
              std::fabs(is_tail.p - ref_tail.p), combined_ci,
              ci_overlap ? "OVERLAP" : "DISJOINT (BUG?)");
  std::printf("  wall: reference %.1f s, importance %.1f s\n", ref_wall,
              is_wall);

  FILE* json = std::fopen("BENCH_yield.json", "w");
  if (json) {
    std::fprintf(
        json,
        "{\n"
        "  \"context\": {\n"
        "    \"lpsram_build_type\": \"%s\",\n"
        "    \"threads\": %d\n"
        "  },\n"
        "  \"rows\": %zu,\n"
        "  \"cols\": %zu,\n"
        "  \"gate_vreg\": %.2f,\n"
        "  \"reference\": {\"mode\": \"blockade\", \"trials\": %d, "
        "\"samples\": %llu, \"exact_solves\": %llu, \"p\": %.9e, "
        "\"ci95\": %.9e, \"rel_ci\": %.6f, \"ess\": %.1f, "
        "\"failures\": %llu, \"wall_s\": %.3f},\n"
        "  \"importance\": {\"mode\": \"importance\", \"shift\": %.2f, "
        "\"samples\": %llu, \"exact_solves\": %llu, \"p\": %.9e, "
        "\"ci95\": %.9e, \"rel_ci\": %.6f, \"ess\": %.1f, "
        "\"failures\": %llu, \"wall_s\": %.3f},\n"
        "  \"bf_solves_needed\": %.6e,\n"
        "  \"solve_ratio\": %.8f,\n"
        "  \"ci_overlap\": %s\n"
        "}\n",
        lpsram::bench::kReleaseBuild ? "release" : "debug", threads,
        base.rows, base.cols, gate_vreg, trials,
        static_cast<unsigned long long>(reference.samples),
        static_cast<unsigned long long>(reference.exact_solves), ref_tail.p,
        ref_tail.ci95, ref_tail.rel_ci, ref_tail.ess,
        static_cast<unsigned long long>(reference.points[gate_k].failures),
        ref_wall, is_options.is_shift,
        static_cast<unsigned long long>(importance.samples),
        static_cast<unsigned long long>(importance.exact_solves), is_tail.p,
        is_tail.ci95, is_tail.rel_ci, is_tail.ess,
        static_cast<unsigned long long>(importance.points[gate_k].failures),
        is_wall, bf_needed, solve_ratio, ci_overlap ? "true" : "false");
    std::fclose(json);
    std::printf("\nwrote BENCH_yield.json\n");
  }
  return ci_overlap ? 0 : 1;
}
