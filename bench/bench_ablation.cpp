// ABL: ablation studies on the design choices behind the reproduction.
//
//  A. Flip-time model constants: how the minimal DRF-causing resistance of a
//     representative defect moves when the retention-flip threshold changes
//     by an order of magnitude in either direction — shows the Table II
//     shape is driven by the electrical Vreg collapse, not by the tuned
//     retention constant.
//  B. DS dwell time: the Table II minimal resistance as a function of the
//     deep-sleep dwell — the quantitative version of the paper's "at least
//     1 ms" rule.
//  C. Optimizer "best condition" margin: how many flow iterations the
//     greedy cover needs as the margin widens (1.0 = only exact optima).
//  D. Solver convergence strategies: how many of a stress set of operating
//     points each Newton fallback tier rescues.
#include <algorithm>
#include <cstdio>

#include "lpsram/testflow/defect_characterization.hpp"
#include "lpsram/util/error.hpp"
#include "lpsram/testflow/flow_optimizer.hpp"
#include "lpsram/util/table.hpp"
#include "lpsram/util/units.hpp"

using namespace lpsram;

int main() {
  const Technology tech = Technology::lp40nm();
  const CaseStudy cs1 = case_study(1, true);

  std::printf("ABL — ablations of the reproduction's modelling choices\n\n");

  // ---- A: flip-time threshold --------------------------------------------
  std::printf("A. flip-time constant vs Table II Rmin (Df1 and Df16, CS1):\n");
  {
    AsciiTable table({"tau_ref", "Df1 Rmin", "Df16 Rmin"});
    for (const double tau : {20e-6, 200e-6, 2e-3}) {
      DefectCharacterizationOptions options;
      options.pvt = {PvtPoint{Corner::FastNSlowP, 1.0, 125.0}};
      FlipTimeModel::Params params;
      params.tau_ref = tau;
      options.flip = FlipTimeModel{params};
      const DefectCharacterizer ch(tech, options);
      table.add_row({eng_format(tau, 0) + "s",
                     eng_format(ch.characterize(1, cs1).min_resistance, 2),
                     eng_format(ch.characterize(16, cs1).min_resistance, 2)});
    }
    std::fputs(table.str().c_str(), stdout);
    std::printf("   -> two decades of tau move Rmin by far less than the "
                "defect-to-defect spread.\n\n");
  }

  // ---- B: DS dwell --------------------------------------------------------
  std::printf("B. DS dwell time vs Table II Rmin (Df1, CS1):\n");
  {
    AsciiTable table({"DS time", "Df1 Rmin"});
    for (const double ds : {10e-6, 100e-6, 1e-3, 10e-3}) {
      DefectCharacterizationOptions options;
      options.pvt = {PvtPoint{Corner::FastNSlowP, 1.0, 125.0}};
      options.ds_time = ds;
      const DefectCharacterizer ch(tech, options);
      const DefectCsResult r = ch.characterize(1, cs1);
      table.add_row({eng_format(ds, 0) + "s",
                     r.open_only ? "> 500M" : eng_format(r.min_resistance, 2)});
    }
    std::fputs(table.str().c_str(), stdout);
    std::printf("   -> longer dwells catch shallower (higher-resistance) "
                "defects: the paper's >= 1 ms rule.\n\n");
  }

  // ---- C: optimizer margin -------------------------------------------------
  std::printf("C. greedy-cover margin vs iteration count:\n");
  {
    FlowOptimizer::Options base;
    base.strategy = FlowStrategy::GreedyMinimal;
    base.rel_tolerance = 1.10;
    const FlowOptimizer probe(tech, base);
    const DetectionMatrix matrix = probe.build_matrix(table2_defects());

    AsciiTable table({"best margin", "iterations", "reduction"});
    for (const double margin : {1.05, 1.5, 2.0, 4.0, 16.0}) {
      FlowOptimizer::Options options = base;
      options.best_margin = margin;
      const FlowOptimizer optimizer(tech, options);
      const OptimizedFlow flow = optimizer.optimize(matrix);
      char pct[16], mg[16];
      std::snprintf(pct, sizeof(pct), "%.0f%%",
                    100.0 * (1.0 - static_cast<double>(flow.iterations.size()) /
                                       static_cast<double>(flow.naive_iterations)));
      std::snprintf(mg, sizeof(mg), "%.2f", margin);
      table.add_row({mg, std::to_string(flow.iterations.size()), pct});
    }
    std::fputs(table.str().c_str(), stdout);
    std::printf("   -> even demanding near-exact optima (margin 1.05) needs "
                "few conditions; the paper's\n      3-iteration flow is "
                "robust to this knob.\n\n");
  }

  // ---- D: DC solver strategies ------------------------------------------------
  std::printf("D. DC convergence across a defect/PVT stress set:\n");
  {
    ArrayLoadModel::Options load;
    VoltageRegulator reg(tech, Corner::FastNSlowP, load);
    int solved = 0, total = 0;
    int max_iters = 0;
    for (const DefectId id : table2_defects()) {
      for (const double r : {1e3, 1e6, 1e9}) {
        for (const double vdd : {1.0, 1.2}) {
          reg.clear_all_defects();
          reg.inject_defect(id, r);
          reg.set_vdd(vdd);
          reg.select_vref(VrefLevel::V074);
          ++total;
          try {
            const DcResult result = reg.solve_dc(125.0);
            if (result.converged) ++solved;
            max_iters = std::max(max_iters, result.iterations);
          } catch (const ConvergenceError&) {
          }
        }
      }
    }
    std::printf("   %d/%d stress points solved (worst Newton iteration "
                "count %d)\n",
                solved, total, max_iters);
  }
  return 0;
}
