// PERF: google-benchmark microbenchmarks of the numerical substrates — the
// cost centers behind every table: MNA DC solves (cold/warm), transient
// steps, SNM and DRV extraction, and March execution throughput.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "build_type_warning.hpp"
#include "lpsram/cell/batch_vtc.hpp"
#include "lpsram/cell/drv.hpp"
#include "lpsram/cell/snm.hpp"
#include "lpsram/device/mosfet_lanes.hpp"
#include "lpsram/march/executor.hpp"
#include "lpsram/march/library.hpp"
#include "lpsram/regulator/regulator.hpp"
#include "lpsram/spice/batch_transient.hpp"
#include "lpsram/spice/dc_solver.hpp"
#include "lpsram/util/simd.hpp"
#include "lpsram/util/sparse.hpp"

namespace lpsram {
namespace {

const Technology& tech() {
  static const Technology t = Technology::lp40nm();
  return t;
}

void BM_MosfetEval(benchmark::State& state) {
  const Mosfet m{tech().cell_pulldown()};
  double vg = 0.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.eval(vg, 1.1, 0.0, 25.0));
    vg = vg < 1.0 ? vg + 1e-6 : 0.3;
  }
}
BENCHMARK(BM_MosfetEval);

// Cold/warm regulator DC solves on a pinned kernel. BM_RegulatorDcCold /
// BM_RegulatorDcWarm (no suffix) measure the production default (sparse);
// the Sparse/Dense-suffixed variants are the head-to-head comparison
// tools/check_bench_solver.py gates CI on.
void regulator_dc_cold(benchmark::State& state, LinearSolverKind kind) {
  const ScopedLinearSolverDefault kernel(kind);
  VoltageRegulator reg(tech(), Corner::Typical);
  reg.set_vdd(1.1);
  reg.select_vref(VrefLevel::V070);
  for (auto _ : state) {
    reg.clear_all_defects();  // invalidates the warm start
    benchmark::DoNotOptimize(reg.vreg_dc(25.0));
  }
}

void regulator_dc_warm(benchmark::State& state, LinearSolverKind kind) {
  const ScopedLinearSolverDefault kernel(kind);
  VoltageRegulator reg(tech(), Corner::Typical);
  reg.set_vdd(1.1);
  reg.select_vref(VrefLevel::V070);
  benchmark::DoNotOptimize(reg.vreg_dc(25.0));  // prime the warm start
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.vreg_dc(25.0));
  }
}

void BM_RegulatorDcCold(benchmark::State& state) {
  regulator_dc_cold(state, default_linear_solver());
}
BENCHMARK(BM_RegulatorDcCold);

void BM_RegulatorDcColdSparse(benchmark::State& state) {
  regulator_dc_cold(state, LinearSolverKind::Sparse);
}
BENCHMARK(BM_RegulatorDcColdSparse);

void BM_RegulatorDcColdDense(benchmark::State& state) {
  regulator_dc_cold(state, LinearSolverKind::Dense);
}
BENCHMARK(BM_RegulatorDcColdDense);

void BM_RegulatorDcWarm(benchmark::State& state) {
  regulator_dc_warm(state, default_linear_solver());
}
BENCHMARK(BM_RegulatorDcWarm);

void BM_RegulatorDcWarmSparse(benchmark::State& state) {
  regulator_dc_warm(state, LinearSolverKind::Sparse);
}
BENCHMARK(BM_RegulatorDcWarmSparse);

void BM_RegulatorDcWarmDense(benchmark::State& state) {
  regulator_dc_warm(state, LinearSolverKind::Dense);
}
BENCHMARK(BM_RegulatorDcWarmDense);

void BM_DsEntryTransient(benchmark::State& state) {
  VoltageRegulator reg(tech(), Corner::Typical);
  reg.set_vdd(1.0);
  reg.select_vref(VrefLevel::V074);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.simulate_ds_entry(30e-6, 25.0));
  }
}
BENCHMARK(BM_DsEntryTransient);

// SNM / DRV extraction on a pinned cell-analysis kernel. The no-suffix
// variants measure the production default (batched); the Scalar/Batched
// pair is the head-to-head comparison tools/check_bench_solver.py gates CI
// on (batched must stay >= 3x faster than the scalar oracle).
void hold_snm_bench(benchmark::State& state, CellKernelKind kind) {
  const ScopedCellKernelDefault kernel(kind);
  const CoreCell cell(tech());
  for (auto _ : state) {
    benchmark::DoNotOptimize(hold_snm(cell, StoredBit::One, 0.8, 25.0));
  }
}

void drv_extraction_bench(benchmark::State& state, CellKernelKind kind) {
  const ScopedCellKernelDefault kernel(kind);
  CellVariation v;
  v.mpcc1 = -3;
  v.mncc1 = -3;
  const CoreCell cell(tech(), v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(drv_hold(cell, StoredBit::One, 25.0));
  }
}

void BM_HoldSnm(benchmark::State& state) {
  hold_snm_bench(state, default_cell_kernel());
}
BENCHMARK(BM_HoldSnm);

void BM_HoldSnmScalar(benchmark::State& state) {
  hold_snm_bench(state, CellKernelKind::Scalar);
}
BENCHMARK(BM_HoldSnmScalar);

void BM_HoldSnmBatched(benchmark::State& state) {
  hold_snm_bench(state, CellKernelKind::Batched);
}
BENCHMARK(BM_HoldSnmBatched);

void BM_DrvExtraction(benchmark::State& state) {
  drv_extraction_bench(state, default_cell_kernel());
}
BENCHMARK(BM_DrvExtraction);

void BM_DrvExtractionScalar(benchmark::State& state) {
  drv_extraction_bench(state, CellKernelKind::Scalar);
}
BENCHMARK(BM_DrvExtractionScalar);

void BM_DrvExtractionBatched(benchmark::State& state) {
  drv_extraction_bench(state, CellKernelKind::Batched);
}
BENCHMARK(BM_DrvExtractionBatched);

// Lane-parallel MOSFET evaluation on a pinned SIMD kind: the Scalar/Simd
// pair is the head-to-head comparison tools/check_bench_solver.py gates CI
// on (the vectorized lanes must stay >= 2x the scalar-lane throughput).
// Items processed = device evaluations, so the JSON carries items/sec.
void mosfet_eval_lanes_bench(benchmark::State& state, SimdKind kind) {
  const ScopedSimdDefault scope(kind);
  const Mosfet m{tech().cell_pulldown()};
  const MosfetLaneConsts c = mosfet_lane_consts(m, 25.0);
  constexpr std::size_t kLanes = 256;  // multiple of every native width
  std::vector<double> vg(kLanes), vd(kLanes), vs(kLanes, 0.0);
  std::vector<double> id(kLanes), gm(kLanes), gds(kLanes), gms(kLanes);
  for (std::size_t i = 0; i < kLanes; ++i) {
    vg[i] = 0.25 + 0.85 * static_cast<double>(i) / (kLanes - 1);
    vd[i] = 1.1 - 0.9 * static_cast<double>(i) / (kLanes - 1);
  }
  for (auto _ : state) {
    if (resolved_simd_kind() == SimdKind::Simd) {
      using V = simd::Vec;
      for (std::size_t i = 0; i < kLanes; i += simd::kNativeWidth) {
        const MosEvalV<V> e =
            lane_eval_v(c, V::load(&vg[i]), V::load(&vd[i]), V::load(&vs[i]));
        e.id.store(&id[i]);
        e.gm.store(&gm[i]);
        e.gds.store(&gds[i]);
        e.gms.store(&gms[i]);
      }
    } else {
      for (std::size_t i = 0; i < kLanes; ++i) {
        const MosEval e = lane_eval(c, vg[i], vd[i], vs[i]);
        id[i] = e.id;
        gm[i] = e.gm;
        gds[i] = e.gds;
        gms[i] = e.gms;
      }
    }
    benchmark::DoNotOptimize(id.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kLanes);
}

void BM_MosfetEvalLanesScalar(benchmark::State& state) {
  mosfet_eval_lanes_bench(state, SimdKind::Scalar);
}
BENCHMARK(BM_MosfetEvalLanesScalar);

void BM_MosfetEvalLanesSimd(benchmark::State& state) {
  mosfet_eval_lanes_bench(state, SimdKind::Simd);
}
BENCHMARK(BM_MosfetEvalLanesSimd);

// Numeric refactor throughput of the compiled sparse-LU program (the
// multiply-subtract runs that dominate every Newton iteration) on a banded,
// diagonally dominant matrix. The band is wide enough (mean mul run well
// past the analyze-time profitability floor) that the vector MAC path is
// actually exercised — narrow bands fall back to the scalar program by
// design and would make the two variants measure the same code. Reported
// for both SIMD kinds; items processed = multiply-subtract ops per refactor.
SparseMatrix banded_matrix(std::size_t n, int half_band) {
  std::vector<int> row_ptr(n + 1, 0);
  std::vector<int> cols;
  for (std::size_t r = 0; r < n; ++r) {
    const int lo = std::max(0, static_cast<int>(r) - half_band);
    const int hi = std::min(static_cast<int>(n) - 1,
                            static_cast<int>(r) + half_band);
    for (int ccol = lo; ccol <= hi; ++ccol) cols.push_back(ccol);
    row_ptr[r + 1] = static_cast<int>(cols.size());
  }
  SparseMatrix a(n, std::move(row_ptr), std::move(cols));
  for (std::size_t r = 0; r < n; ++r)
    for (int s = a.row_ptr()[r]; s < a.row_ptr()[r + 1]; ++s) {
      const int ccol = a.cols()[s];
      a.values()[s] =
          static_cast<int>(r) == ccol
              ? 12.0 + 0.03 * static_cast<double>(r)
              : -1.0 / (1.0 + std::abs(static_cast<int>(r) - ccol));
    }
  return a;
}

void sparse_lu_mac_bench(benchmark::State& state, SimdKind kind) {
  const ScopedSimdDefault scope(kind);
  const SparseMatrix a = banded_matrix(192, 24);
  SparseLu lu;
  lu.factor(a);  // analysis pass; the timed loop is numeric-only refactors
  for (auto _ : state) {
    lu.factor(a);
    benchmark::DoNotOptimize(&lu);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(lu.refactor_ops()));
}

void BM_SparseLuMacScalar(benchmark::State& state) {
  sparse_lu_mac_bench(state, SimdKind::Scalar);
}
BENCHMARK(BM_SparseLuMacScalar);

void BM_SparseLuMacSimd(benchmark::State& state) {
  sparse_lu_mac_bench(state, SimdKind::Simd);
}
BENCHMARK(BM_SparseLuMacSimd);

// Df-battery transient characterization workload: one gate-line defect of
// the regulator (the transient DRF mechanism) swept over 32 log-spaced
// resistances, each lane a full DS-entry transient — the exact hot path
// retention-deficit characterization runs per defect. Serial replays the
// per-defect oracle (one TransientSolver per lane); Lockstep marches all 32
// through spice/batch_transient. The pair is gated in CI (lockstep must
// stay >= 3x). Items processed = lane transients.
void defect_transients_bench(benchmark::State& state,
                             TransientBatchKind kind) {
  const ScopedTransientBatchDefault scope(kind);
  constexpr DefectId kDf = 8;  // MPreg1 gate line
  constexpr std::size_t kDefects = 32;
  std::vector<double> ohms(kDefects);
  for (std::size_t l = 0; l < kDefects; ++l)
    ohms[l] =
        1e3 * std::pow(10.0, 5.0 * static_cast<double>(l) / (kDefects - 1));
  TransientOptions topts;
  topts.dt_max = 30e-6 / 100.0;
  VoltageRegulator reg(tech(), Corner::Typical);
  reg.set_vdd(1.1);
  reg.select_vref(VrefLevel::V070);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        reg.simulate_ds_entry_lanes(kDf, ohms, 30e-6, 25.0, &topts));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kDefects);
}

void BM_DefectTransientsSerial(benchmark::State& state) {
  defect_transients_bench(state, TransientBatchKind::Serial);
}
BENCHMARK(BM_DefectTransientsSerial);

void BM_DefectTransientsLockstep(benchmark::State& state) {
  defect_transients_bench(state, TransientBatchKind::Lockstep);
}
BENCHMARK(BM_DefectTransientsLockstep);

void BM_MarchMlz4Kx64(benchmark::State& state) {
  SramConfig config;
  config.words = 4096;
  config.bits = 64;
  config.baseline_drv = DrvResult{0.15, 0.15};
  LowPowerSram sram(config);
  MarchExecutorOptions options;
  options.ds_time = 1e-3;
  MarchExecutor executor(sram, options);
  const MarchTest test = march::march_m_lz();
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.run(test));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 5 * 4096);
}
BENCHMARK(BM_MarchMlz4Kx64);

}  // namespace
}  // namespace lpsram

// Custom main instead of BENCHMARK_MAIN(): stamp the *binary's* build type
// into the JSON context (the stock `library_build_type` field describes the
// installed benchmark library, not this repo) so tools/check_bench_solver.py
// can refuse to gate on numbers from a debug build.
int main(int argc, char** argv) {
  lpsram::bench::warn_if_debug_build();
  benchmark::AddCustomContext(
      "lpsram_build_type", lpsram::bench::kReleaseBuild ? "release" : "debug");
  benchmark::AddCustomContext("lpsram_simd_backend",
                              lpsram::simd_backend_name());
  benchmark::AddCustomContext("lpsram_simd_width",
                              std::to_string(lpsram::simd_width()));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
