// PERF: google-benchmark microbenchmarks of the numerical substrates — the
// cost centers behind every table: MNA DC solves (cold/warm), transient
// steps, SNM and DRV extraction, and March execution throughput.
#include <benchmark/benchmark.h>

#include "build_type_warning.hpp"
#include "lpsram/cell/batch_vtc.hpp"
#include "lpsram/cell/drv.hpp"
#include "lpsram/cell/snm.hpp"
#include "lpsram/march/executor.hpp"
#include "lpsram/march/library.hpp"
#include "lpsram/regulator/regulator.hpp"

namespace lpsram {
namespace {

const Technology& tech() {
  static const Technology t = Technology::lp40nm();
  return t;
}

void BM_MosfetEval(benchmark::State& state) {
  const Mosfet m{tech().cell_pulldown()};
  double vg = 0.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.eval(vg, 1.1, 0.0, 25.0));
    vg = vg < 1.0 ? vg + 1e-6 : 0.3;
  }
}
BENCHMARK(BM_MosfetEval);

// Cold/warm regulator DC solves on a pinned kernel. BM_RegulatorDcCold /
// BM_RegulatorDcWarm (no suffix) measure the production default (sparse);
// the Sparse/Dense-suffixed variants are the head-to-head comparison
// tools/check_bench_solver.py gates CI on.
void regulator_dc_cold(benchmark::State& state, LinearSolverKind kind) {
  const ScopedLinearSolverDefault kernel(kind);
  VoltageRegulator reg(tech(), Corner::Typical);
  reg.set_vdd(1.1);
  reg.select_vref(VrefLevel::V070);
  for (auto _ : state) {
    reg.clear_all_defects();  // invalidates the warm start
    benchmark::DoNotOptimize(reg.vreg_dc(25.0));
  }
}

void regulator_dc_warm(benchmark::State& state, LinearSolverKind kind) {
  const ScopedLinearSolverDefault kernel(kind);
  VoltageRegulator reg(tech(), Corner::Typical);
  reg.set_vdd(1.1);
  reg.select_vref(VrefLevel::V070);
  benchmark::DoNotOptimize(reg.vreg_dc(25.0));  // prime the warm start
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.vreg_dc(25.0));
  }
}

void BM_RegulatorDcCold(benchmark::State& state) {
  regulator_dc_cold(state, default_linear_solver());
}
BENCHMARK(BM_RegulatorDcCold);

void BM_RegulatorDcColdSparse(benchmark::State& state) {
  regulator_dc_cold(state, LinearSolverKind::Sparse);
}
BENCHMARK(BM_RegulatorDcColdSparse);

void BM_RegulatorDcColdDense(benchmark::State& state) {
  regulator_dc_cold(state, LinearSolverKind::Dense);
}
BENCHMARK(BM_RegulatorDcColdDense);

void BM_RegulatorDcWarm(benchmark::State& state) {
  regulator_dc_warm(state, default_linear_solver());
}
BENCHMARK(BM_RegulatorDcWarm);

void BM_RegulatorDcWarmSparse(benchmark::State& state) {
  regulator_dc_warm(state, LinearSolverKind::Sparse);
}
BENCHMARK(BM_RegulatorDcWarmSparse);

void BM_RegulatorDcWarmDense(benchmark::State& state) {
  regulator_dc_warm(state, LinearSolverKind::Dense);
}
BENCHMARK(BM_RegulatorDcWarmDense);

void BM_DsEntryTransient(benchmark::State& state) {
  VoltageRegulator reg(tech(), Corner::Typical);
  reg.set_vdd(1.0);
  reg.select_vref(VrefLevel::V074);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.simulate_ds_entry(30e-6, 25.0));
  }
}
BENCHMARK(BM_DsEntryTransient);

// SNM / DRV extraction on a pinned cell-analysis kernel. The no-suffix
// variants measure the production default (batched); the Scalar/Batched
// pair is the head-to-head comparison tools/check_bench_solver.py gates CI
// on (batched must stay >= 3x faster than the scalar oracle).
void hold_snm_bench(benchmark::State& state, CellKernelKind kind) {
  const ScopedCellKernelDefault kernel(kind);
  const CoreCell cell(tech());
  for (auto _ : state) {
    benchmark::DoNotOptimize(hold_snm(cell, StoredBit::One, 0.8, 25.0));
  }
}

void drv_extraction_bench(benchmark::State& state, CellKernelKind kind) {
  const ScopedCellKernelDefault kernel(kind);
  CellVariation v;
  v.mpcc1 = -3;
  v.mncc1 = -3;
  const CoreCell cell(tech(), v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(drv_hold(cell, StoredBit::One, 25.0));
  }
}

void BM_HoldSnm(benchmark::State& state) {
  hold_snm_bench(state, default_cell_kernel());
}
BENCHMARK(BM_HoldSnm);

void BM_HoldSnmScalar(benchmark::State& state) {
  hold_snm_bench(state, CellKernelKind::Scalar);
}
BENCHMARK(BM_HoldSnmScalar);

void BM_HoldSnmBatched(benchmark::State& state) {
  hold_snm_bench(state, CellKernelKind::Batched);
}
BENCHMARK(BM_HoldSnmBatched);

void BM_DrvExtraction(benchmark::State& state) {
  drv_extraction_bench(state, default_cell_kernel());
}
BENCHMARK(BM_DrvExtraction);

void BM_DrvExtractionScalar(benchmark::State& state) {
  drv_extraction_bench(state, CellKernelKind::Scalar);
}
BENCHMARK(BM_DrvExtractionScalar);

void BM_DrvExtractionBatched(benchmark::State& state) {
  drv_extraction_bench(state, CellKernelKind::Batched);
}
BENCHMARK(BM_DrvExtractionBatched);

void BM_MarchMlz4Kx64(benchmark::State& state) {
  SramConfig config;
  config.words = 4096;
  config.bits = 64;
  config.baseline_drv = DrvResult{0.15, 0.15};
  LowPowerSram sram(config);
  MarchExecutorOptions options;
  options.ds_time = 1e-3;
  MarchExecutor executor(sram, options);
  const MarchTest test = march::march_m_lz();
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.run(test));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 5 * 4096);
}
BENCHMARK(BM_MarchMlz4Kx64);

}  // namespace
}  // namespace lpsram

// Custom main instead of BENCHMARK_MAIN(): stamp the *binary's* build type
// into the JSON context (the stock `library_build_type` field describes the
// installed benchmark library, not this repo) so tools/check_bench_solver.py
// can refuse to gate on numbers from a debug build.
int main(int argc, char** argv) {
  lpsram::bench::warn_if_debug_build();
  benchmark::AddCustomContext(
      "lpsram_build_type", lpsram::bench::kReleaseBuild ? "release" : "debug");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
