// TAB1: reproduces paper Table I — the ten case studies of Vth variation
// (CS1-1 .. CS5-0) with their DRV_DS0 / DRV_DS1 / DRV_DS, each maximized
// over the full corner x temperature grid.
#include <algorithm>
#include <cstdio>

#include "lpsram/testflow/report.hpp"
#include "lpsram/util/units.hpp"

using namespace lpsram;

int main() {
  const Technology tech = Technology::lp40nm();

  std::printf(
      "TAB1 — case studies for Vth variations inside core-cells (paper "
      "Table I)\n"
      "paper values (mV): CS1 730, CS2 686, CS3 570, CS4 110, CS5 686; each "
      "CSx-1 set by DRV_DS1,\neach CSx-0 by DRV_DS0; favoured side ~60 mV.\n\n");

  std::vector<CaseStudyDrv> rows;
  for (const CaseStudy& cs : paper_case_studies())
    rows.push_back(characterize_case_study(tech, cs));
  std::fputs(table1_report(rows).c_str(), stdout);

  double worst = 0.0;
  for (const CaseStudyDrv& row : rows) worst = std::max(worst, row.drv_ds());
  std::printf("\nworst-case DRV_DS: %s mV (paper: 730 mV) — argmax %s, %.0fC\n",
              millivolt_format(worst).c_str(),
              corner_name(rows[0].worst.corner1).c_str(), rows[0].worst.temp1);
  return 0;
}
