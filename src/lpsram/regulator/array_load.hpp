// Aggregate electrical load the core-cell array presents to the regulated
// VDD_CC line in deep-sleep mode.
//
// Two components, both derived from the cell model rather than fitted:
//  * baseline leakage: N_cells x per-cell hold-state supply current, computed
//    from the 6T equilibrium at each supply voltage (weak-inversion EKV, so
//    the strong temperature dependence the paper leans on — "minimal
//    resistance values of defects occur always at high temperatures" — comes
//    out naturally);
//  * weak-cell flip current: when Vreg approaches the DRV of cells weakened
//    by variation, those cells ride through their metastable region and draw
//    crossover current. This is the CS5 mechanism: with 64 weak cells the
//    extra demand degrades Vreg further, so smaller defect resistances
//    already cause retention faults (paper Section IV.B, last paragraph).
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "lpsram/cell/core_cell.hpp"
#include "lpsram/spice/netlist.hpp"

namespace lpsram {

class ArrayLoadModel {
 public:
  struct Options {
    std::size_t total_cells = 256 * 1024;  // 4Kx64 reference block
    std::size_t weak_cells = 0;            // cells affected by variation
    double weak_drv = 0.0;                 // DRV of the weak cells [V]
    // Width of the supply band just above DRV in which weak cells start to
    // ride their metastable region [V].
    double flip_band = 0.05;
  };

  ArrayLoadModel(const Technology& tech, Corner corner, const Options& options);

  // Aggregate current drawn from VDD_CC at voltage v [A].
  double current(double v, double temp_c) const;
  // Derivative d(current)/dv [A/V] (from the interpolation grid).
  double conductance(double v, double temp_c) const;

  // Per-cell hold leakage [A] (diagnostic).
  double cell_leakage(double v, double temp_c) const;
  // Crossover current of one cell riding its metastable point [A].
  double cell_crossover(double v, double temp_c) const;

  // Netlist hook: nonlinear grounded load evaluating {I, dI/dV}.
  CurrentLoadFn load_function() const;

  const Options& options() const noexcept { return options_; }

 private:
  struct Table {
    std::vector<double> v;       // grid
    std::vector<double> i_leak;  // per-cell leakage on grid
    std::vector<double> i_meta;  // per-cell crossover current on grid
  };
  const Table& table_for(double temp_c) const;

  Technology tech_;
  Corner corner_;
  Options options_;
  CoreCell cell_;
  // Lazily built per-temperature grids (keyed by rounded temperature).
  mutable std::map<int, Table> tables_;
};

}  // namespace lpsram
