// Electrical model of the embedded voltage regulator (paper Fig. 2 / Fig. 5)
// plus its load: the core-cell array hanging on VDD_CC.
//
// Structure reproduced from the paper:
//  * voltage source: polysilicon divider R1..R6 producing taps at
//    0.78/0.74/0.70/0.64 * VDD (Vref candidates) and 0.52 * VDD (Vbias);
//  * Vref/Vbias selector driven by VrefSel<1:0> and REGON: when the regulator
//    is on, Vref = selected tap and Vbias = Vbias52; when off, Vref = VDD and
//    Vbias = 0 V;
//  * error amplifier: PMOS current mirror MPreg3/MPreg4 over NMOS
//    differential pair MNreg2 (gate = Vref) / MNreg3 (gate = Vreg feedback),
//    biased by tail transistor MNreg1 (gate = Vbias);
//  * output stage MPreg1 driving Vreg, with pull-up MPreg2 that parks the
//    MPreg1 gate at VDD when the regulator is off;
//  * all 32 resistive-open defect sites of defects.hpp, instantiated as
//    series resistors (1 ohm when healthy).
//
// A power-switch shunt from VDD to VDD_CC stands in for the PS network so the
// deep-sleep *entry* transient (PS off + REGON on at t=0) can be simulated
// end-to-end, including the Df8 delayed-activation droop.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <span>
#include <string>

#include "lpsram/regulator/array_load.hpp"
#include "lpsram/regulator/defects.hpp"
#include "lpsram/runtime/retry_ladder.hpp"
#include "lpsram/spice/transient.hpp"

namespace lpsram {

class SolveCache;  // runtime/parallel.hpp

// The four selectable reference levels (paper Section II.B).
enum class VrefLevel { V078, V074, V070, V064 };

inline constexpr std::array<VrefLevel, 4> kAllVrefLevels = {
    VrefLevel::V078, VrefLevel::V074, VrefLevel::V070, VrefLevel::V064};

// Fraction of VDD the level denotes (0.78, 0.74, 0.70, 0.64).
double vref_fraction(VrefLevel level) noexcept;
// Display name, e.g. "0.74*VDD".
std::string vref_name(VrefLevel level);

// Not thread-safe: a VoltageRegulator carries mutable solve state (netlist
// element values, warm start, telemetry) and must be driven by one thread at
// a time. Parallel sweeps use one instance per executor worker slot; a
// release-mode guard in solve_dc_outcome() throws on concurrent entry rather
// than corrupting the solve.
class VoltageRegulator {
 public:
  VoltageRegulator(const Technology& tech, Corner corner,
                   const ArrayLoadModel::Options& load_options = {});

  // --- configuration ------------------------------------------------------
  void set_vdd(double vdd);
  double vdd() const noexcept { return vdd_; }
  void select_vref(VrefLevel level);
  VrefLevel vref_level() const noexcept { return vref_level_; }
  // REGON: true = regulator active (deep-sleep), false = off.
  void set_regon(bool on);
  bool regon() const noexcept { return regon_; }
  // Power-switch network between VDD and VDD_CC (on in ACT mode).
  void set_power_switch(bool on);
  bool power_switch() const noexcept { return ps_on_; }

  // --- defect injection ----------------------------------------------------
  void inject_defect(DefectId id, double ohms);
  void clear_defect(DefectId id);
  void clear_all_defects();
  // Currently injected defect resistance (healthy short value if none).
  double defect_resistance(DefectId id) const;

  // --- analyses ------------------------------------------------------------
  // DC operating point in the current configuration. Warm-started across
  // calls, which makes resistance sweeps cheap. Runs the resilient retry
  // ladder; throws RetryExhausted / SolveTimeout (both ConvergenceError)
  // when every rung fails. Every solve — including warm-start fallbacks
  // that used to be swallowed silently — is recorded in solve_telemetry().
  DcResult solve_dc(double temp_c) const;
  // Structured variant: never throws for convergence trouble; inspect
  // outcome.status. Telemetry is recorded either way.
  SolveOutcome solve_dc_outcome(double temp_c) const;

  // Retry-ladder policy for this regulator's solves (deadline, budgets,
  // strategy order).
  void set_solve_policy(RetryLadderOptions policy) {
    solve_policy_ = std::move(policy);
  }
  const RetryLadderOptions& solve_policy() const noexcept {
    return solve_policy_;
  }
  // Running solve counters: warm hits, fallbacks, degradations, failures,
  // per-rung attempts and (when a cache is attached) cache traffic.
  const SolveTelemetry& solve_telemetry() const noexcept { return telemetry_; }
  void reset_solve_telemetry() { telemetry_.reset(); }

  // Attaches a shared operating-point cache (nullptr detaches). When the
  // regulator would otherwise cold-start a solve, it seeds the warm-start
  // rung from the nearest cached neighbour instead — during a defect
  // bisection every probe after the first finds a nearby point. `task_key`
  // scopes this regulator's lookups to one sweep task so parallel sweeps
  // stay deterministic (see runtime/parallel.hpp). The cache itself is
  // thread-safe; this setter is not.
  void set_solve_cache(SolveCache* cache, std::uint64_t task_key = 0) {
    solve_cache_ = cache;
    cache_task_key_ = task_key;
  }
  SolveCache* solve_cache() const noexcept { return solve_cache_; }
  // Regulated output voltage (VDD_CC) at DC.
  double vreg_dc(double temp_c) const;
  // Current drawn from the main VDD rail at DC [A].
  double supply_current_dc(double temp_c) const;
  // Static power consumption at DC [W].
  double static_power_dc(double temp_c) const;

  // Deep-sleep entry transient: starts from the ACT operating point
  // (PS on, REGON off), then at t=0 opens the power switch and asserts
  // REGON. Returns the VDD_CC waveform (probe 0) and the MPreg1 gate
  // waveform (probe 1). Leaves the regulator configured in DS mode.
  Waveform simulate_ds_entry(double duration, double temp_c,
                             const TransientOptions* options = nullptr);

  // Lane-batched DS-entry: one transient per resistance value of the same
  // defect site, marched together by the lockstep batch engine
  // (spice/batch_transient.hpp) — the ACT operating points are solved
  // serially per lane, the DS transients share assembly and factorization.
  // Waveforms are returned in `ohms` order with the same probes as
  // simulate_ds_entry. Under TransientBatchKind::Serial (or for a single
  // lane under SimdKind::Scalar) each waveform is the serial path's,
  // bit-for-bit. Leaves the regulator in DS mode with the *last* lane's
  // resistance injected and no warm start.
  std::vector<Waveform> simulate_ds_entry_lanes(
      DefectId id, std::span<const double> ohms, double duration,
      double temp_c, const TransientOptions* options = nullptr);

  // Expected (defect-free, ideal) Vreg for a configuration.
  double expected_vreg() const noexcept { return vdd_ * vref_fraction(vref_level_); }

  Netlist& netlist() noexcept { return netlist_; }
  const Netlist& netlist() const noexcept { return netlist_; }
  NodeId vddcc_node() const noexcept { return n_vddcc_; }
  NodeId gate_node() const noexcept { return n_mpreg1_gate_; }

  // Extra DC test load drawn from VDD_CC (load-regulation measurements) [A].
  void set_test_load(double amps);
  double test_load() const noexcept;

  // Healthy (non-injected) series resistance of a defect site [ohm].
  static constexpr double healthy_resistance() noexcept { return 1.0; }

 private:
  void build(const Technology& tech, Corner corner,
             const ArrayLoadModel::Options& load_options);
  void apply_mode();

  Netlist netlist_;
  double vdd_ = 1.1;
  VrefLevel vref_level_ = VrefLevel::V070;
  bool regon_ = true;
  bool ps_on_ = false;

  // Element handles.
  ElementId e_vdd_src_ = -1;
  ElementId e_regonb_src_ = -1;
  ElementId e_ps_ = -1;
  // Test-load magnitude, shared with the netlist's saturating load element.
  std::shared_ptr<double> test_load_amps_;
  std::array<ElementId, 4> e_sel_sw_{};  // tap switches, index = VrefLevel
  ElementId e_sel_vdd_sw_ = -1;          // Vref-to-VDD switch (REGON = 0)
  ElementId e_bias_on_sw_ = -1;          // Vbias-to-tap switch (REGON = 1)
  ElementId e_bias_gnd_sw_ = -1;         // Vbias-to-ground switch (REGON = 0)
  std::array<ElementId, kDefectCount> e_defect_{};

  NodeId n_vddcc_ = kGround;
  NodeId n_mpreg1_gate_ = kGround;

  mutable std::vector<double> warm_start_;
  // Long-lived sparse-kernel workspace handed to every DC solve via
  // DcOptions::shared_workspace: the stamp-plan binding and the sparse LU's
  // pivot order survive across solves (and across the whole defect ladder
  // of a sweep task), so only the first solve of a regulator's life pays
  // the symbolic analysis. Guarded by the same single-thread contract as
  // the rest of the mutable solve state.
  mutable NewtonWorkspace newton_ws_;
  RetryLadderOptions solve_policy_;
  mutable SolveTelemetry telemetry_;

  // Operating-point cache plumbing (see set_solve_cache). The injected
  // defect is tracked so cache keys can exclude the swept resistance from
  // the circuit signature and use it as the nearest-neighbour axis instead.
  SolveCache* solve_cache_ = nullptr;
  std::uint64_t cache_task_key_ = 0;
  DefectId cache_defect_id_ = 0;    // 0 = no defect injected
  double cache_defect_ohms_ = 1.0;  // resistance of the tracked defect

  // Concurrent-entry guard (cheap enough for release builds): set for the
  // duration of solve_dc_outcome, throws instead of racing.
  mutable std::atomic<bool> solving_{false};

  static constexpr double kSwitchOn = 2e3;    // selector on-resistance [ohm]
  static constexpr double kSwitchOff = 1e12;  // selector off-resistance [ohm]
};

}  // namespace lpsram
