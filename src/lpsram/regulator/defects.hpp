// The 32 resistive-open defect sites of the voltage regulator (paper Fig. 5).
//
// The paper injects one resistive open at a time: in series with each segment
// of the polysilicon voltage divider (Df1..Df6 + divider ground return), with
// every terminal of the seven transistors of the error amplifier / output
// stage, and with the supply and VDD_CC distribution lines. Site ids follow
// the paper's numbering wherever Table II pins the behaviour down
// (Df1..Df5 divider, Df7/Df9 bias path, Df8 MNreg1 gate, Df10/Df12 amplifier
// output branches, Df11 MNreg2 gate, Df16/Df19 output-stage source/drain,
// Df23/Df26 mirror diode branches, Df29 supply line, Df32 VDD_CC line, and
// the six no-DC-current gate sites Df14/Df17/Df18/Df21/Df24/Df25).
#pragma once

#include <array>
#include <string>

namespace lpsram {

// Defect identifier: 1..32, matching the paper's Df1..Df32.
using DefectId = int;

inline constexpr int kDefectCount = 32;

// What kind of line the defect interrupts — decides which analysis the
// characterization engine must run (DC for current-carrying paths, transient
// for gate lines whose only effect is delay/undershoot).
enum class DefectSiteKind {
  DividerSegment,   // in series with the reference voltage divider
  CurrentPath,      // in series with a DC-current-carrying branch
  GateLine,         // in series with a MOS gate (no DC current)
  SupplyLine,       // in series with VDD distribution
  VddCcLine,        // in series with the regulated VDD_CC output line
};

struct DefectSite {
  DefectId id = 0;
  const char* netlist_name = "";  // resistor name inside the regulator netlist
  DefectSiteKind kind = DefectSiteKind::CurrentPath;
  const char* description = "";
};

// Full site table, index 0 <-> Df1.
const std::array<DefectSite, kDefectCount>& defect_sites();

// Lookup by id (throws InvalidArgument for ids outside 1..32).
const DefectSite& defect_site(DefectId id);

// Short display name "Df7".
std::string defect_name(DefectId id);

// True if the site carries no DC current (pure gate line): its static effect
// is negligible and only transient analysis can reveal an impact.
bool is_gate_site(DefectId id);

// The defects the paper's Table II characterizes as able to cause data
// retention faults (categories 2 and 3 of Section IV.B).
const std::array<DefectId, 17>& table2_defects();

}  // namespace lpsram
