#include "lpsram/regulator/defects.hpp"

#include "lpsram/util/error.hpp"

namespace lpsram {

const std::array<DefectSite, kDefectCount>& defect_sites() {
  using K = DefectSiteKind;
  static const std::array<DefectSite, kDefectCount> kSites = {{
      {1, "Df1", K::DividerSegment,
       "VDD to R1: reduces all reference taps and Vbias52"},
      {2, "Df2", K::DividerSegment,
       "Vref78 tap to R2: raises Vref78, reduces Vref74/70/64 and Vbias52"},
      {3, "Df3", K::DividerSegment,
       "Vref74 tap to R3: raises Vref78/74, reduces Vref70/64 and Vbias52"},
      {4, "Df4", K::DividerSegment,
       "Vref70 tap to R4: raises Vref78/74/70, reduces Vref64 and Vbias52"},
      {5, "Df5", K::DividerSegment,
       "Vref64 tap to R5: raises all reference taps, reduces Vbias52"},
      {6, "Df6", K::DividerSegment,
       "Vbias52 tap to R6: raises all taps including Vbias52"},
      {7, "Df7", K::CurrentPath,
       "MNreg1 drain to differential-pair tail: reduces amplifier bias"},
      {8, "Df8", K::GateLine,
       "Vbias to MNreg1 gate: delays regulator activation (RC)"},
      {9, "Df9", K::CurrentPath,
       "MNreg1 source to ground: reduces amplifier bias"},
      {10, "Df10", K::CurrentPath,
       "amplifier output to MNreg3 drain: starves the output pull-down, "
       "raising the MPreg1 gate level"},
      {11, "Df11", K::GateLine,
       "Vreg sense line to MNreg2 gate: the feedback input lags the falling "
       "Vreg at DS entry (undershoot, RC)"},
      {12, "Df12", K::CurrentPath,
       "MNreg3 source to tail: weakens the output pull-down branch "
       "(similar to Df10)"},
      {13, "Df13", K::CurrentPath,
       "MNreg2 source to tail: weakens the feedback-side branch"},
      {14, "Df14", K::GateLine, "mirror gate line to MPreg4 gate (no current)"},
      {15, "Df15", K::CurrentPath,
       "VDD_amp to MPreg4 source: weakens the output pull-up branch"},
      {16, "Df16", K::CurrentPath,
       "VDD_amp to MPreg1 source: voltage drop across the output stage"},
      {17, "Df17", K::GateLine,
       "amplifier output to MPreg1 gate (no current)"},
      {18, "Df18", K::GateLine, "REGON_b line to MPreg2 gate (no current)"},
      {19, "Df19", K::CurrentPath,
       "MPreg1 drain to Vreg node: voltage drop across the output stage"},
      {20, "Df20", K::CurrentPath, "VDD to MPreg2 source (deactivation path)"},
      {21, "Df21", K::GateLine, "mirror gate line to MPreg3 gate (no current)"},
      {22, "Df22", K::CurrentPath,
       "MPreg2 drain to amplifier output (deactivation path)"},
      {23, "Df23", K::CurrentPath,
       "MPreg3 drain to mirror diode node: lowers mirror gate level"},
      {24, "Df24", K::GateLine, "Vref to MNreg3 gate (no current)"},
      {25, "Df25", K::GateLine,
       "MNreg2 drain to mirror gate line (no current)"},
      {26, "Df26", K::CurrentPath,
       "mirror diode node to MNreg2 drain: lowers mirror gate level "
       "(similar to Df23)"},
      {27, "Df27", K::CurrentPath,
       "MPreg4 drain to amplifier output: starves the output pull-up"},
      {28, "Df28", K::CurrentPath,
       "VDD_amp to MPreg3 source: perturbs the mirror reference branch"},
      {29, "Df29", K::SupplyLine,
       "VDD to VDD_amp: starves the amplifier and the output stage"},
      {30, "Df30", K::GateLine,
       "selected reference tap to Vref selector output (no current)"},
      {31, "Df31", K::DividerSegment,
       "R6 to ground: raises all taps including Vbias52"},
      {32, "Df32", K::VddCcLine,
       "Vreg node to VDD_CC line: drop driven by core-cell array leakage"},
  }};
  return kSites;
}

const DefectSite& defect_site(DefectId id) {
  if (id < 1 || id > kDefectCount)
    throw InvalidArgument("defect_site: id must be in 1..32");
  return defect_sites()[static_cast<std::size_t>(id - 1)];
}

std::string defect_name(DefectId id) { return defect_site(id).netlist_name; }

bool is_gate_site(DefectId id) {
  return defect_site(id).kind == DefectSiteKind::GateLine;
}

const std::array<DefectId, 17>& table2_defects() {
  static const std::array<DefectId, 17> kIds = {
      1, 2, 3, 4, 5, 7, 8, 9, 10, 11, 12, 16, 19, 23, 26, 29, 32};
  return kIds;
}

}  // namespace lpsram
