#include "lpsram/regulator/regulator.hpp"

#include <cmath>
#include <cstring>
#include <utility>

#include "lpsram/runtime/parallel.hpp"
#include "lpsram/spice/batch_transient.hpp"
#include "lpsram/util/error.hpp"

namespace lpsram {
namespace {

std::uint64_t double_bits(double v) noexcept {
  std::uint64_t out;
  static_assert(sizeof(out) == sizeof(v));
  std::memcpy(&out, &v, sizeof(out));
  return out;
}

// RAII over the concurrent-entry guard.
class SolveGuard {
 public:
  explicit SolveGuard(std::atomic<bool>& flag) : flag_(flag) {
    bool expected = false;
    if (!flag_.compare_exchange_strong(expected, true,
                                       std::memory_order_acquire))
      throw Error(
          "VoltageRegulator: concurrent solve detected — instances are not "
          "thread-safe; use one regulator per sweep worker");
  }
  ~SolveGuard() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool>& flag_;
};

}  // namespace

double vref_fraction(VrefLevel level) noexcept {
  switch (level) {
    case VrefLevel::V078: return 0.78;
    case VrefLevel::V074: return 0.74;
    case VrefLevel::V070: return 0.70;
    case VrefLevel::V064: return 0.64;
  }
  return 0.0;
}

std::string vref_name(VrefLevel level) {
  switch (level) {
    case VrefLevel::V078: return "0.78*VDD";
    case VrefLevel::V074: return "0.74*VDD";
    case VrefLevel::V070: return "0.70*VDD";
    case VrefLevel::V064: return "0.64*VDD";
  }
  return "?";
}

VoltageRegulator::VoltageRegulator(const Technology& tech, Corner corner,
                                   const ArrayLoadModel::Options& load_options) {
  build(tech, corner, load_options);
  apply_mode();
}

void VoltageRegulator::build(const Technology& tech, Corner corner,
                             const ArrayLoadModel::Options& load_options) {
  Netlist& nl = netlist_;

  // ---- nodes --------------------------------------------------------------
  const NodeId vdd = nl.add_node("vdd");
  // Divider chain nodes: defect entry points (div_*) and taps.
  const NodeId div_a = nl.add_node("div_a");
  const NodeId vref78 = nl.add_node("vref78");
  const NodeId div_b = nl.add_node("div_b");
  const NodeId vref74 = nl.add_node("vref74");
  const NodeId div_c = nl.add_node("div_c");
  const NodeId vref70 = nl.add_node("vref70");
  const NodeId div_d = nl.add_node("div_d");
  const NodeId vref64 = nl.add_node("vref64");
  const NodeId div_e = nl.add_node("div_e");
  const NodeId vbias52 = nl.add_node("vbias52");
  const NodeId div_f = nl.add_node("div_f");
  const NodeId div_gnd = nl.add_node("div_gnd");
  // Selector outputs and gate lines.
  const NodeId vref_sel = nl.add_node("vref_sel");
  const NodeId vref = nl.add_node("vref");
  const NodeId mnreg2_gate = nl.add_node("mnreg2_gate");
  const NodeId vbias_sel = nl.add_node("vbias_sel");
  const NodeId mnreg1_gate = nl.add_node("mnreg1_gate");
  const NodeId regon_b = nl.add_node("regon_b");
  const NodeId mpreg2_gate = nl.add_node("mpreg2_gate");
  // Amplifier internals.
  const NodeId vdd_amp = nl.add_node("vdd_amp");
  const NodeId mpreg3_src = nl.add_node("mpreg3_src");
  const NodeId mpreg4_src = nl.add_node("mpreg4_src");
  const NodeId mpreg1_src = nl.add_node("mpreg1_src");
  const NodeId mpreg2_src = nl.add_node("mpreg2_src");
  const NodeId mpreg3_drn = nl.add_node("mpreg3_drn");
  const NodeId mnreg3_drn = nl.add_node("mnreg3_drn");
  const NodeId mirror_diode = nl.add_node("mirror_diode");
  const NodeId mirror_gate = nl.add_node("mirror_gate");
  const NodeId mpreg3_gate = nl.add_node("mpreg3_gate");
  const NodeId mpreg4_gate = nl.add_node("mpreg4_gate");
  const NodeId mpreg4_drn = nl.add_node("mpreg4_drn");
  const NodeId mnreg2_drn = nl.add_node("mnreg2_drn");
  const NodeId mnreg2_src = nl.add_node("mnreg2_src");
  const NodeId mnreg3_src = nl.add_node("mnreg3_src");
  const NodeId mnreg3_gate = nl.add_node("mnreg3_gate");
  const NodeId tail = nl.add_node("tail");
  const NodeId mnreg1_drn = nl.add_node("mnreg1_drn");
  const NodeId mnreg1_src = nl.add_node("mnreg1_src");
  const NodeId amp_out = nl.add_node("amp_out");
  const NodeId mpreg1_gate = nl.add_node("mpreg1_gate");
  const NodeId mpreg2_drn = nl.add_node("mpreg2_drn");
  const NodeId mpreg1_drn = nl.add_node("mpreg1_drn");
  const NodeId vregi = nl.add_node("vregi");
  const NodeId vddcc = nl.add_node("vddcc");

  n_vddcc_ = vddcc;
  n_mpreg1_gate_ = mpreg1_gate;

  // ---- sources ------------------------------------------------------------
  e_vdd_src_ = nl.add_vsource("Vdd", vdd, kGround, vdd_);
  e_regonb_src_ = nl.add_vsource("Vregonb", regon_b, kGround, 0.0);

  // ---- defect sites (healthy = 1 ohm shorts) -------------------------------
  auto df = [&](DefectId id, NodeId a, NodeId b) {
    e_defect_[static_cast<std::size_t>(id - 1)] =
        nl.add_resistor(defect_name(id), a, b, healthy_resistance());
  };

  // ---- voltage divider ------------------------------------------------------
  const double r_total = tech.divider_total_resistance();
  df(1, vdd, div_a);
  nl.add_resistor("R1", div_a, vref78, 0.22 * r_total);
  df(2, vref78, div_b);
  nl.add_resistor("R2", div_b, vref74, 0.04 * r_total);
  df(3, vref74, div_c);
  nl.add_resistor("R3", div_c, vref70, 0.04 * r_total);
  df(4, vref70, div_d);
  nl.add_resistor("R4", div_d, vref64, 0.06 * r_total);
  df(5, vref64, div_e);
  nl.add_resistor("R5", div_e, vbias52, 0.12 * r_total);
  df(6, vbias52, div_f);
  nl.add_resistor("R6", div_f, div_gnd, 0.52 * r_total);
  df(31, div_gnd, kGround);

  // ---- Vref / Vbias selector -------------------------------------------------
  e_sel_sw_[0] = nl.add_resistor("SW78", vref78, vref_sel, kSwitchOff);
  e_sel_sw_[1] = nl.add_resistor("SW74", vref74, vref_sel, kSwitchOff);
  e_sel_sw_[2] = nl.add_resistor("SW70", vref70, vref_sel, kSwitchOff);
  e_sel_sw_[3] = nl.add_resistor("SW64", vref64, vref_sel, kSwitchOff);
  e_sel_vdd_sw_ = nl.add_resistor("SWvdd", vdd, vref_sel, kSwitchOff);
  df(30, vref_sel, vref);
  // Selector routing + switch junction capacitance on the reference line.
  nl.add_capacitor("Cvref", vref, kGround, 200e-15);
  // Feedback-sense gate capacitance: with a series open (Df11) the MNreg2
  // gate lags the falling Vreg at DS entry, the amplifier sees a stale high
  // reading and under-drives the output stage — the paper's "undershoot ...
  // stabilizes at Vref after a time interval" behaviour.
  nl.add_capacitor("Cg_mnreg2", mnreg2_gate, kGround, 200e-15);

  e_bias_on_sw_ = nl.add_resistor("SWbias", vbias52, vbias_sel, kSwitchOff);
  e_bias_gnd_sw_ = nl.add_resistor("SWbias0", vbias_sel, kGround, kSwitchOn);
  df(8, vbias_sel, mnreg1_gate);
  nl.add_capacitor("Cvbias", vbias_sel, kGround, 100e-15);
  nl.add_capacitor("Cg_mnreg1", mnreg1_gate, kGround, 300e-15);

  df(18, regon_b, mpreg2_gate);
  nl.add_capacitor("Cg_mpreg2", mpreg2_gate, kGround, 2e-15);

  // ---- supply distribution ----------------------------------------------------
  df(29, vdd, vdd_amp);
  df(28, vdd_amp, mpreg3_src);
  df(15, vdd_amp, mpreg4_src);
  df(16, vdd_amp, mpreg1_src);
  df(20, vdd, mpreg2_src);

  // ---- error amplifier ---------------------------------------------------------
  auto corner_params = [&](MosfetParams p) {
    return Technology::apply_corner(std::move(p), corner);
  };
  nl.add_mosfet("MPreg3", corner_params(tech.reg_mirror_pmos()), mpreg3_gate,
                mpreg3_drn, mpreg3_src);
  nl.add_mosfet("MPreg4", corner_params(tech.reg_mirror_pmos()), mpreg4_gate,
                mpreg4_drn, mpreg4_src);
  // Mirror diode chain: the gate line taps at the MNreg2 drain, so a
  // resistive open anywhere along the diode branch (Df23 or Df26) lowers the
  // mirror gate level by the branch current times the defect resistance —
  // the paper's "increases the conductivity of MPreg3/MPreg4" mechanism.
  df(23, mpreg3_drn, mirror_diode);
  df(26, mirror_diode, mnreg2_drn);
  df(25, mnreg2_drn, mirror_gate);
  df(21, mirror_gate, mpreg3_gate);
  df(14, mirror_gate, mpreg4_gate);
  nl.add_capacitor("Cmirror", mirror_gate, kGround, 8e-15);

  // MNreg2 is the feedback input (gate senses Vreg, drain feeds the mirror
  // diode); MNreg3 is the reference input (gate at Vref, drain at the
  // amplifier output). With the inverting MPreg1 stage this closes the loop
  // with negative feedback: Vreg up -> diode node down -> mirror gate down ->
  // MPreg4 stronger -> MPreg1 gate up -> Vreg down.
  nl.add_mosfet("MNreg2", corner_params(tech.reg_diffpair_nmos()), mnreg2_gate,
                mnreg2_drn, mnreg2_src);
  nl.add_mosfet("MNreg3", corner_params(tech.reg_diffpair_nmos()), mnreg3_gate,
                mnreg3_drn, mnreg3_src);
  df(27, mpreg4_drn, amp_out);
  df(10, amp_out, mnreg3_drn);
  df(12, mnreg3_src, tail);
  df(13, mnreg2_src, tail);
  df(11, vregi, mnreg2_gate);
  df(24, vref, mnreg3_gate);
  nl.add_capacitor("Cg_mnreg3", mnreg3_gate, kGround, 20e-15);

  nl.add_mosfet("MNreg1", corner_params(tech.reg_tail_nmos()), mnreg1_gate,
                mnreg1_drn, mnreg1_src);
  df(7, mnreg1_drn, tail);
  df(9, mnreg1_src, kGround);

  // ---- output stage --------------------------------------------------------------
  nl.add_mosfet("MPreg1", corner_params(tech.reg_output_pmos()), mpreg1_gate,
                mpreg1_drn, mpreg1_src);
  nl.add_mosfet("MPreg2", corner_params(tech.reg_pullup_pmos()), mpreg2_gate,
                mpreg2_drn, mpreg2_src);
  df(17, amp_out, mpreg1_gate);
  df(22, mpreg2_drn, amp_out);
  nl.add_capacitor("Cout", mpreg1_gate, kGround, 60e-15);
  df(19, mpreg1_drn, vregi);
  df(32, vregi, vddcc);

  // ---- VDD_CC load and power switch -----------------------------------------------
  const ArrayLoadModel load(tech, corner, load_options);
  nl.add_current_load("ArrayLoad", vddcc, load.load_function());
  nl.add_capacitor("Cvddcc", vddcc, kGround, tech.vddcc_capacitance());
  e_ps_ = nl.add_resistor("PS", vdd, vddcc, kSwitchOff);
  // Load-regulation test sink: behaves as a current source above ~50 mV and
  // collapses linearly to zero at the rail (a physical sink cannot pull the
  // node below ground, and an ideal source would wreck DC homotopy).
  test_load_amps_ = std::make_shared<double>(0.0);
  {
    auto amps = test_load_amps_;
    nl.add_current_load("Itest", vddcc, [amps](double v, double) {
      constexpr double kKnee = 0.05;
      if (v <= 0.0) return std::make_pair(0.0, *amps / kKnee);
      if (v >= kKnee) return std::make_pair(*amps, 0.0);
      return std::make_pair(*amps * v / kKnee, *amps / kKnee);
    });
  }
}

void VoltageRegulator::apply_mode() {
  Netlist& nl = netlist_;
  nl.set_source_voltage(e_vdd_src_, vdd_);
  // MPreg2 gate: VDD when the regulator runs (pull-up off), 0 when idle.
  nl.set_source_voltage(e_regonb_src_, regon_ ? vdd_ : 0.0);

  for (std::size_t i = 0; i < e_sel_sw_.size(); ++i) {
    const bool selected =
        regon_ && static_cast<std::size_t>(vref_level_) == i;
    nl.set_resistance(e_sel_sw_[i], selected ? kSwitchOn : kSwitchOff);
  }
  nl.set_resistance(e_sel_vdd_sw_, regon_ ? kSwitchOff : kSwitchOn);
  nl.set_resistance(e_bias_on_sw_, regon_ ? kSwitchOn : kSwitchOff);
  nl.set_resistance(e_bias_gnd_sw_, regon_ ? kSwitchOff : kSwitchOn);
  nl.set_resistance(e_ps_, ps_on_ ? 10.0 : kSwitchOff);

  warm_start_.clear();  // configuration changed; old solution may mislead
}

void VoltageRegulator::set_vdd(double vdd) {
  if (!(vdd > 0.0)) throw InvalidArgument("VoltageRegulator: vdd must be > 0");
  vdd_ = vdd;
  apply_mode();
}

void VoltageRegulator::select_vref(VrefLevel level) {
  vref_level_ = level;
  apply_mode();
}

void VoltageRegulator::set_regon(bool on) {
  regon_ = on;
  apply_mode();
}

void VoltageRegulator::set_power_switch(bool on) {
  ps_on_ = on;
  apply_mode();
}

void VoltageRegulator::inject_defect(DefectId id, double ohms) {
  if (!(ohms >= healthy_resistance()))
    throw InvalidArgument("inject_defect: resistance below healthy value");
  netlist_.set_resistance(e_defect_[static_cast<std::size_t>(
                              defect_site(id).id - 1)],
                          ohms);
  cache_defect_id_ = defect_site(id).id;
  cache_defect_ohms_ = ohms;
  warm_start_.clear();
}

void VoltageRegulator::clear_defect(DefectId id) {
  netlist_.set_resistance(
      e_defect_[static_cast<std::size_t>(defect_site(id).id - 1)],
      healthy_resistance());
  if (cache_defect_id_ == defect_site(id).id) {
    cache_defect_id_ = 0;
    cache_defect_ohms_ = healthy_resistance();
  }
  warm_start_.clear();
}

void VoltageRegulator::clear_all_defects() {
  for (ElementId e : e_defect_) netlist_.set_resistance(e, healthy_resistance());
  cache_defect_id_ = 0;
  cache_defect_ohms_ = healthy_resistance();
  warm_start_.clear();
}

void VoltageRegulator::set_test_load(double amps) {
  *test_load_amps_ = amps;
  warm_start_.clear();
}

double VoltageRegulator::test_load() const noexcept {
  return *test_load_amps_;
}

double VoltageRegulator::defect_resistance(DefectId id) const {
  return netlist_.resistance(
      e_defect_[static_cast<std::size_t>(defect_site(id).id - 1)]);
}

SolveOutcome VoltageRegulator::solve_dc_outcome(double temp_c) const {
  const SolveGuard guard(solving_);
  // Hand the ladder the regulator's long-lived sparse workspace so repeated
  // solves (defect ladders, PVT grids, warm restarts) reuse one symbolic
  // analysis instead of redoing it per DcSolver.
  DcOptions dc_options;
  dc_options.shared_workspace = &newton_ws_;
  const ResilientDcSolver solver(netlist_, temp_c, dc_options, solve_policy_);

  // Cold start with a cache attached: seed the warm-start rung from the
  // nearest cached neighbour along the defect-resistance axis. The key
  // fingerprints everything else that shapes the operating point — netlist
  // state minus the swept resistance, temperature, test load — plus the
  // sweep task key, so lookups never cross task boundaries.
  SolveCacheKey cache_key;
  std::vector<double> cached_seed;
  if (solve_cache_ != nullptr) {
    const ElementId exclude =
        cache_defect_id_ > 0
            ? e_defect_[static_cast<std::size_t>(cache_defect_id_ - 1)]
            : -1;
    cache_key.circuit =
        fold_key(fold_key(netlist_.state_signature(exclude), double_bits(temp_c)),
                 double_bits(*test_load_amps_));
    cache_key.task = cache_task_key_;
    cache_key.defect = static_cast<std::int32_t>(cache_defect_id_);
    if (warm_start_.empty()) {
      if (solve_cache_->lookup_nearest(cache_key, cache_defect_ohms_,
                                       &cached_seed)) {
        ++telemetry_.cache_hits;
        warm_start_ = std::move(cached_seed);
      } else {
        ++telemetry_.cache_misses;
      }
    }
  }

  const std::vector<double>* warm = warm_start_.empty() ? nullptr : &warm_start_;
  SolveOutcome outcome = solver.solve(warm);
  // Every fallback (a warm start that failed and was rescued by a later
  // rung) is now visible in the telemetry instead of being swallowed.
  telemetry_.record(outcome);
  if (outcome.ok()) {
    warm_start_ = outcome.result.x;
    if (solve_cache_ != nullptr) {
      solve_cache_->store(cache_key, cache_defect_ohms_, outcome.result.x);
      ++telemetry_.cache_stores;
    }
  } else {
    warm_start_.clear();  // a stale guess near a failure point misleads
  }
  return outcome;
}

DcResult VoltageRegulator::solve_dc(double temp_c) const {
  SolveOutcome outcome = solve_dc_outcome(temp_c);
  if (!outcome.ok()) {
    const ResilientDcSolver solver(netlist_, temp_c, DcOptions{}, solve_policy_);
    solver.throw_outcome(outcome);
  }
  return std::move(outcome.result);
}

double VoltageRegulator::vreg_dc(double temp_c) const {
  return solve_dc(temp_c).node_v[static_cast<std::size_t>(n_vddcc_)];
}

double VoltageRegulator::supply_current_dc(double temp_c) const {
  const DcResult result = solve_dc(temp_c);
  const DcSolver solver(netlist_, temp_c);
  // Positive current delivered by the source into the circuit is -i_branch
  // in the MNA convention used by the assembler.
  return -solver.source_current(result, e_vdd_src_);
}

double VoltageRegulator::static_power_dc(double temp_c) const {
  return vdd_ * supply_current_dc(temp_c);
}

namespace {

// The segmented power switch network releases progressively at DS entry
// (its effective resistance ramps geometrically over ~8 us) so the rail
// hands over to the regulator without the instantaneous droop an ideal
// cut-off would cause — the sequencing real PM control logic implements.
Stimulus staged_release_stimulus(ElementId ps, double switch_off) {
  return [ps, switch_off](double t, Netlist& nl) {
    constexpr double kRonStart = 10.0;      // all segments on
    constexpr double kDecadeTime = 0.8e-6;  // one decade of R per 0.8 us
    const double r =
        std::min(kRonStart * std::pow(10.0, t / kDecadeTime), switch_off);
    nl.set_resistance(ps, r);
  };
}

}  // namespace

Waveform VoltageRegulator::simulate_ds_entry(double duration, double temp_c,
                                             const TransientOptions* options) {
  // Initial state: ACT mode (power switch closed, regulator off).
  set_power_switch(true);
  set_regon(false);
  const DcResult act = solve_dc(temp_c);

  // Switch to DS at t = 0: REGON asserts immediately; the PS network
  // releases through the staged ramp.
  set_power_switch(false);
  set_regon(true);
  const Stimulus staged_release = staged_release_stimulus(e_ps_, kSwitchOff);

  TransientOptions opts;
  if (options) opts = *options;
  opts.t_stop = duration;

  TransientSolver solver(netlist_, temp_c, opts);
  Waveform wave =
      solver.run({n_vddcc_, n_mpreg1_gate_}, staged_release, &act.x);
  warm_start_ = solver.final_state();
  return wave;
}

std::vector<Waveform> VoltageRegulator::simulate_ds_entry_lanes(
    DefectId id, std::span<const double> ohms, double duration, double temp_c,
    const TransientOptions* options) {
  const std::size_t site = static_cast<std::size_t>(defect_site(id).id - 1);

  // Per-lane ACT operating points, solved serially: each lane replays the
  // serial recipe (inject the defect, configure ACT, solve DC). Neighbouring
  // lanes of a resistance ladder sit at nearby operating points, so each
  // solve is seeded from the previous lane's solution — the setters clear
  // the warm start as a configuration change, and the seed is re-planted
  // after them. A seed that misleads is rescued by the resilient ladder, so
  // every lane still lands on the same operating point (to Newton tolerance)
  // a cold standalone simulate_ds_entry would reach.
  std::vector<TransientLane> lanes(ohms.size());
  for (std::size_t l = 0; l < ohms.size(); ++l) {
    inject_defect(id, ohms[l]);
    set_power_switch(true);
    set_regon(false);
    if (l > 0) warm_start_ = lanes[l - 1].initial_x;
    DcResult act = solve_dc(temp_c);
    lanes[l].element = e_defect_[site];
    lanes[l].ohms = ohms[l];
    lanes[l].initial_x = std::move(act.x);
  }

  // One shared DS configuration for the transient; the batch engine applies
  // each lane's defect resistance as its override.
  set_power_switch(false);
  set_regon(true);
  const Stimulus staged_release = staged_release_stimulus(e_ps_, kSwitchOff);

  TransientOptions opts;
  if (options) opts = *options;
  opts.t_stop = duration;

  BatchTransientSolver solver(netlist_, temp_c, opts);
  std::vector<Waveform> waves =
      solver.run(lanes, {n_vddcc_, n_mpreg1_gate_}, staged_release);
  // Lane-batched entries do not chain a warm start: the final states belong
  // to different defect values, and the next caller reconfigures anyway.
  warm_start_.clear();
  return waves;
}

}  // namespace lpsram
