#include "lpsram/regulator/array_load.hpp"

#include <algorithm>
#include <cmath>

#include "lpsram/cell/snm.hpp"
#include "lpsram/util/error.hpp"

namespace lpsram {
namespace {

constexpr double kGridMax = 1.35;
// 2.5 mV spacing: fine enough that the piecewise-linear slope changes stay
// below Newton's damping and never cause limit cycling in the DC solver.
constexpr int kGridPoints = 541;

// Piecewise-linear interpolation with clamped ends.
double interp(const std::vector<double>& xs, const std::vector<double>& ys,
              double x) {
  if (x <= xs.front()) return ys.front();
  if (x >= xs.back()) return ys.back();
  const auto it = std::upper_bound(xs.begin(), xs.end(), x);
  const std::size_t hi = static_cast<std::size_t>(it - xs.begin());
  const std::size_t lo = hi - 1;
  const double f = (x - xs[lo]) / (xs[hi] - xs[lo]);
  return ys[lo] + f * (ys[hi] - ys[lo]);
}

double interp_slope(const std::vector<double>& xs,
                    const std::vector<double>& ys, double x) {
  if (x <= xs.front() || x >= xs.back()) return 0.0;
  const auto it = std::upper_bound(xs.begin(), xs.end(), x);
  const std::size_t hi = static_cast<std::size_t>(it - xs.begin());
  const std::size_t lo = hi - 1;
  return (ys[hi] - ys[lo]) / (xs[hi] - xs[lo]);
}

}  // namespace

ArrayLoadModel::ArrayLoadModel(const Technology& tech, Corner corner,
                               const Options& options)
    : tech_(tech),
      corner_(corner),
      options_(options),
      cell_(tech, CellVariation{}, corner) {
  if (options_.weak_cells > 0 && !(options_.weak_drv > 0.0))
    throw InvalidArgument("ArrayLoadModel: weak cells need a positive DRV");
}

const ArrayLoadModel::Table& ArrayLoadModel::table_for(double temp_c) const {
  const int key = static_cast<int>(std::lround(temp_c * 4.0));
  const auto found = tables_.find(key);
  if (found != tables_.end()) return found->second;

  Table table;
  table.v.resize(kGridPoints);
  table.i_leak.resize(kGridPoints);
  table.i_meta.resize(kGridPoints);
  for (int k = 0; k < kGridPoints; ++k) {
    const double v = kGridMax * k / (kGridPoints - 1);
    table.v[k] = v;
    if (v < 1e-6) {
      table.i_leak[k] = 0.0;
      table.i_meta[k] = 0.0;
      continue;
    }
    // Hold-state leakage: solve the equilibrium the cell actually sits in.
    const HoldState state =
        hold_equilibrium(cell_, StoredBit::One, v, temp_c);
    table.i_leak[k] =
        std::max(0.0, cell_.supply_current(state.v_s, state.v_sb, v, temp_c));
    // Crossover current: both inverters at the metastable midpoint.
    table.i_meta[k] = std::max(
        table.i_leak[k],
        cell_.supply_current(0.5 * v, 0.5 * v, v, temp_c));
  }
  return tables_.emplace(key, std::move(table)).first->second;
}

double ArrayLoadModel::cell_leakage(double v, double temp_c) const {
  const Table& t = table_for(temp_c);
  return interp(t.v, t.i_leak, v);
}

double ArrayLoadModel::cell_crossover(double v, double temp_c) const {
  const Table& t = table_for(temp_c);
  return interp(t.v, t.i_meta, v);
}

double ArrayLoadModel::current(double v, double temp_c) const {
  const Table& t = table_for(temp_c);
  double i = static_cast<double>(options_.total_cells) * interp(t.v, t.i_leak, v);
  if (options_.weak_cells > 0) {
    // Fraction of weak cells riding the metastable region: ramps up as the
    // supply falls into [drv, drv + flip_band].
    const double x = (options_.weak_drv + options_.flip_band - v) /
                     options_.flip_band;
    const double frac = std::clamp(x, 0.0, 1.0);
    const double extra = interp(t.v, t.i_meta, v) - interp(t.v, t.i_leak, v);
    i += static_cast<double>(options_.weak_cells) * frac * std::max(0.0, extra);
  }
  return i;
}

double ArrayLoadModel::conductance(double v, double temp_c) const {
  const Table& t = table_for(temp_c);
  double g =
      static_cast<double>(options_.total_cells) * interp_slope(t.v, t.i_leak, v);
  if (options_.weak_cells > 0) {
    // Conservative: ignore the (negative) slope of the flip ramp so Newton
    // keeps a positive load conductance.
    g += 0.0;
  }
  return std::max(g, 0.0);
}

CurrentLoadFn ArrayLoadModel::load_function() const {
  // The netlist keeps the load by value; capture a copy of `this` state via
  // shared ownership of a heap clone so the function outlives the model.
  auto model = std::make_shared<ArrayLoadModel>(*this);
  return [model](double v, double temp_c) {
    return std::make_pair(model->current(v, temp_c),
                          model->conductance(v, temp_c));
  };
}

}  // namespace lpsram
