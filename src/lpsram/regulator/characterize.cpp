#include "lpsram/regulator/characterize.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <exception>
#include <vector>

#include "lpsram/spice/batch_transient.hpp"
#include "lpsram/spice/hooks.hpp"
#include "lpsram/util/simd.hpp"
#include "lpsram/util/error.hpp"
#include "lpsram/util/rootfind.hpp"
#include "lpsram/util/units.hpp"

namespace lpsram {
namespace {

// Transient window used to judge gate-line (delay/undershoot) defects. The
// regulator settles well within this at every PVT point; the remaining DS
// time is extrapolated from the final value.
constexpr double kDsEntryWindow = 30e-6;

// Deficit over the full DS window from a DS-entry waveform: the transient
// integral over the simulated window plus the settled tail extrapolated
// from the final value.
double ds_entry_deficit(const Waveform& wave, double ds_time, double drv) {
  const double transient_deficit = wave.deficit_integral(0, drv);
  const double v_end = wave.values[0].back();
  const double remaining =
      std::max(0.0, ds_time - kDsEntryWindow) * std::max(0.0, drv - v_end);
  return transient_deficit + remaining;
}

}  // namespace

std::string ds_condition_name(const DsCondition& condition) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s, %.1fV, %.0fC",
                corner_name(condition.corner).c_str(), condition.vdd,
                condition.temp_c);
  return buf;
}

RegulationMetrics measure_regulation(const Technology& tech, Corner corner,
                                     VrefLevel vref, SweepReport* report,
                                     SweepTelemetry* telemetry, int threads,
                                     Campaign* campaign,
                                     const CancelToken* cancel) {
  // Probe points: one task per supply level (line regulation), one for the
  // load step, one per temperature (drift). Each task builds and configures
  // its own regulator — the executor contract forbids shared mutable solve
  // state — and all reduction happens afterwards in index order, so the
  // metrics are bit-identical at any thread count.
  enum class Kind { Line, Load, Temp };
  struct Probe {
    Kind kind;
    double value = 0.0;  // vdd for Line, temperature for Temp
    std::string context;
  };
  std::vector<Probe> probes;
  for (const double vdd : tech.vdd_levels()) {
    char context[48];
    std::snprintf(context, sizeof(context), "line regulation @ %.1fV", vdd);
    probes.push_back({Kind::Line, vdd, context});
  }
  probes.push_back({Kind::Load, 0.0, "load regulation @ nominal VDD"});
  for (const double temp : tech.temperatures()) {
    char context[48];
    std::snprintf(context, sizeof(context), "temp drift @ %.0fC", temp);
    probes.push_back({Kind::Temp, temp, context});
  }

  struct Slot {
    bool ok = false;
    double measured = 0.0;
    bool failed = false;       // quarantined (q holds the record)
    QuarantinedPoint q;
    SolveTelemetry solves;
    double wall_s = 0.0;
  };
  std::vector<Slot> slots(probes.size());

  // Task identity for chaos forking and cache scoping: a pure function of
  // (sweep, corner, vref, probe index) — never of scheduling.
  const std::uint64_t salt = fold_key(
      fold_key(0x6d656173757265ULL,  // "measure"
               static_cast<std::uint64_t>(corner)),
      static_cast<std::uint64_t>(vref));

  // Campaign manifest: the probe grid is the configuration — resuming
  // against a journal recorded for different supply/temperature lists would
  // silently mis-key tasks.
  if (campaign) {
    std::uint64_t fingerprint = fold_key(salt, probes.size());
    for (const double vdd : tech.vdd_levels())
      fingerprint = fold_key(fingerprint, key_bits(vdd));
    for (const double temp : tech.temperatures())
      fingerprint = fold_key(fingerprint, key_bits(temp));
    // DC solves sit on the SIMD-kind-dependent kernels too (gathered MAC in
    // load_multiply_add); don't blend journals across backends.
    fingerprint =
        fold_key(fingerprint, static_cast<std::uint64_t>(resolved_simd_kind()));
    campaign->bind_sweep(salt, fingerprint);
  }

  SolveCache cache;
  SweepExecutorOptions exec_options;
  exec_options.threads = threads;
  SweepExecutor executor(exec_options);

  const auto key_of = [salt](std::size_t i) { return fold_key(salt, i); };

  const auto started = std::chrono::steady_clock::now();
  const auto body = [&](std::size_t i, int) {
    const Probe& probe = probes[i];
    Slot& slot = slots[i];
    const std::uint64_t task_key = key_of(i);
    const ScopedTaskObserver task_scope(task_key);
    const auto task_started = std::chrono::steady_clock::now();

    VoltageRegulator reg(tech, corner);
    reg.set_solve_cache(&cache, task_key);
    if (cancel) {
      RetryLadderOptions policy = reg.solve_policy();
      policy.cancel = cancel;
      reg.set_solve_policy(std::move(policy));
    }
    reg.select_vref(vref);
    reg.set_regon(true);
    reg.set_power_switch(false);
    try {
      switch (probe.kind) {
        case Kind::Line: {
          reg.set_vdd(probe.value);
          reg.set_regon(true);
          reg.set_power_switch(false);
          slot.measured = std::fabs(reg.vreg_dc(25.0) - reg.expected_vreg());
          break;
        }
        case Kind::Load: {
          reg.set_vdd(tech.vdd_nominal());
          reg.set_regon(true);
          reg.set_power_switch(false);
          const double v0 = reg.vreg_dc(25.0);
          constexpr double kLoadStep = 100e-6;
          reg.set_test_load(kLoadStep);
          const double v1 = reg.vreg_dc(25.0);
          reg.set_test_load(0.0);
          slot.measured = (v0 - v1) / kLoadStep;
          break;
        }
        case Kind::Temp: {
          const double v25 = reg.vreg_dc(25.0);
          slot.measured = std::fabs(reg.vreg_dc(probe.value) - v25);
          break;
        }
      }
      slot.ok = true;
    } catch (const Error& e) {
      if (!report) throw;  // no quarantine collector: fail the sweep
      slot.failed = true;
      slot.q = quarantined_point(probe.context, e);
    }
    slot.solves = reg.solve_telemetry();
    slot.wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - task_started)
                      .count();
  };

  // Slot payload: outcome + deterministic telemetry counters (timings and
  // the `last` snapshot are outside the resume determinism contract).
  CampaignTaskCodec codec;
  codec.encode = [&slots](std::size_t i) {
    const Slot& slot = slots[i];
    PayloadWriter out;
    out.u8(slot.ok ? 1 : 0);
    if (slot.ok)
      out.f64(slot.measured);
    else
      encode_quarantine(out, slot.q);
    encode_telemetry(out, slot.solves);
    return out.take();
  };
  codec.decode = [&slots](std::size_t i, PayloadReader& in) {
    Slot& slot = slots[i];
    slot.ok = in.u8() != 0;
    if (slot.ok) {
      slot.measured = in.f64();
    } else {
      slot.failed = true;
      slot.q = decode_quarantine(in);
    }
    slot.solves = decode_telemetry(in);
  };

  run_campaign(executor, campaign, &cache, probes.size(), key_of, body, codec);

  // Index-ordered reduction.
  RegulationMetrics metrics;
  SweepTelemetry sweep;
  sweep.tasks = probes.size();
  sweep.threads = executor.threads();
  for (std::size_t i = 0; i < probes.size(); ++i) {
    const Slot& slot = slots[i];
    sweep.solves.merge(slot.solves);
    sweep.cpu_s += slot.wall_s;
    if (slot.ok) {
      switch (probes[i].kind) {
        case Kind::Line:
          metrics.line_error = std::max(metrics.line_error, slot.measured);
          break;
        case Kind::Load:
          metrics.load_regulation = slot.measured;
          break;
        case Kind::Temp:
          metrics.temp_drift = std::max(metrics.temp_drift, slot.measured);
          break;
      }
      if (report) report->add_success();
    } else if (report) {
      report->quarantine(slot.q);
    }
  }
  sweep.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  if (telemetry) *telemetry = sweep;
  return metrics;
}

RegulatorCharacterizer::RegulatorCharacterizer(
    const Technology& tech, const ArrayLoadModel::Options& load_options,
    const FlipTimeModel& flip)
    : tech_(tech), load_options_(load_options), flip_(flip) {}

VoltageRegulator& RegulatorCharacterizer::regulator_for(Corner corner) const {
  auto found = regulators_.find(corner);
  if (found == regulators_.end()) {
    found = regulators_
                .emplace(corner, std::make_unique<VoltageRegulator>(
                                     tech_, corner, load_options_))
                .first;
    found->second->set_solve_cache(solve_cache_, cache_task_key_);
    if (has_solve_policy_) found->second->set_solve_policy(solve_policy_);
  }
  return *found->second;
}

void RegulatorCharacterizer::set_solve_policy(const RetryLadderOptions& policy) {
  solve_policy_ = policy;
  has_solve_policy_ = true;
  for (auto& [corner, reg] : regulators_) reg->set_solve_policy(policy);
}

void RegulatorCharacterizer::set_solve_cache(SolveCache* cache,
                                             std::uint64_t task_key) {
  solve_cache_ = cache;
  cache_task_key_ = task_key;
  for (auto& [corner, reg] : regulators_)
    reg->set_solve_cache(cache, task_key);
}

SolveTelemetry RegulatorCharacterizer::solve_telemetry() const {
  SolveTelemetry total;
  for (const auto& [corner, reg] : regulators_)
    total.merge(reg->solve_telemetry());
  return total;
}

double RegulatorCharacterizer::vreg(const DsCondition& condition, DefectId id,
                                    double ohms) const {
  VoltageRegulator& reg = regulator_for(condition.corner);
  reg.clear_all_defects();
  if (id != 0) reg.inject_defect(id, ohms);
  reg.set_vdd(condition.vdd);
  reg.select_vref(condition.vref);
  reg.set_regon(true);
  reg.set_power_switch(false);
  return reg.vreg_dc(condition.temp_c);
}

double RegulatorCharacterizer::vreg_healthy(const DsCondition& condition) const {
  return vreg(condition, 0, VoltageRegulator::healthy_resistance());
}

double RegulatorCharacterizer::static_power(const DsCondition& condition,
                                            DefectId id, double ohms) const {
  VoltageRegulator& reg = regulator_for(condition.corner);
  reg.clear_all_defects();
  if (id != 0) reg.inject_defect(id, ohms);
  reg.set_vdd(condition.vdd);
  reg.select_vref(condition.vref);
  reg.set_regon(true);
  reg.set_power_switch(false);
  return reg.static_power_dc(condition.temp_c);
}

double RegulatorCharacterizer::retention_deficit(const DsCondition& condition,
                                                 DefectId id, double ohms,
                                                 double drv) const {
  VoltageRegulator& reg = regulator_for(condition.corner);
  reg.clear_all_defects();
  if (id != 0) reg.inject_defect(id, ohms);
  reg.set_vdd(condition.vdd);
  reg.select_vref(condition.vref);

  if (id != 0 && is_gate_site(id)) {
    // Delay/undershoot mechanisms: simulate the actual DS entry.
    TransientOptions topts;
    topts.dt_max = kDsEntryWindow / 100.0;
    Waveform wave =
        reg.simulate_ds_entry(kDsEntryWindow, condition.temp_c, &topts);
    return ds_entry_deficit(wave, condition.ds_time, drv);
  }

  reg.set_regon(true);
  reg.set_power_switch(false);
  const double v = reg.vreg_dc(condition.temp_c);
  return condition.ds_time * std::max(0.0, drv - v);
}

std::vector<double> RegulatorCharacterizer::retention_deficits(
    const DsCondition& condition, DefectId id, std::span<const double> ohms,
    double drv) const {
  std::vector<double> out(ohms.size());
  if (id == 0 || !is_gate_site(id) ||
      resolved_transient_batch_kind() == TransientBatchKind::Serial) {
    // Scalar oracle: the exact per-probe path, one at a time.
    for (std::size_t i = 0; i < ohms.size(); ++i)
      out[i] = retention_deficit(condition, id, ohms[i], drv);
    return out;
  }

  VoltageRegulator& reg = regulator_for(condition.corner);
  reg.clear_all_defects();
  reg.set_vdd(condition.vdd);
  reg.select_vref(condition.vref);
  TransientOptions topts;
  topts.dt_max = kDsEntryWindow / 100.0;
  const std::vector<Waveform> waves = reg.simulate_ds_entry_lanes(
      id, ohms, kDsEntryWindow, condition.temp_c, &topts);
  for (std::size_t i = 0; i < ohms.size(); ++i)
    out[i] = ds_entry_deficit(waves[i], condition.ds_time, drv);
  return out;
}

double RegulatorCharacterizer::drf_threshold(const DsCondition& condition,
                                             DefectId id, double r_lo,
                                             double r_hi, double rel_tolerance,
                                             double drv) const {
  if (id == 0 || !is_gate_site(id) ||
      resolved_transient_batch_kind() == TransientBatchKind::Serial) {
    return monotone_threshold_log(
        [&](double ohms) { return causes_drf(condition, id, ohms, drv); },
        r_lo, r_hi, rel_tolerance);
  }

  if (!(r_lo > 0.0) || !(r_hi > r_lo))
    throw InvalidArgument("drf_threshold: need 0 < lo < hi");
  const double flip = flip_.flip_threshold(condition.temp_c);

  // Endpoint probes, batched pairwise.
  {
    const double ends[2] = {r_lo, r_hi};
    const std::vector<double> d = retention_deficits(condition, id, ends, drv);
    if (d[0] >= flip) return r_lo;
    if (!(d[1] >= flip)) return r_hi * 2.0;
  }

  // Invariant: drf(lo) == false, drf(hi) == true — the scalar bisection's.
  double lo = r_lo;
  double hi = r_hi;
  while (hi / lo > rel_tolerance) {
    // Speculative probe tree: the 7 midpoints the scalar schedule could
    // visit over its next three rounds, each computed by the same nested
    // sqrt it would use, evaluated in one lockstep batch. The descent then
    // replays the scalar decisions, so bracket and result match the scalar
    // schedule probe-for-probe (at the cost of evaluating branches not
    // taken, which ride along in the same batch).
    double probes[7];
    probes[3] = std::sqrt(lo * hi);
    probes[1] = std::sqrt(lo * probes[3]);
    probes[5] = std::sqrt(probes[3] * hi);
    probes[0] = std::sqrt(lo * probes[1]);
    probes[2] = std::sqrt(probes[1] * probes[3]);
    probes[4] = std::sqrt(probes[3] * probes[5]);
    probes[6] = std::sqrt(probes[5] * hi);
    const std::vector<double> d =
        retention_deficits(condition, id, probes, drv);
    int idx = 3;
    int step = 2;
    for (int round = 0; round < 3 && hi / lo > rel_tolerance; ++round) {
      if (d[static_cast<std::size_t>(idx)] >= flip) {
        hi = probes[idx];
        idx -= step;
      } else {
        lo = probes[idx];
        idx += step;
      }
      step /= 2;
    }
  }
  return hi;
}

bool RegulatorCharacterizer::causes_drf(const DsCondition& condition,
                                        DefectId id, double ohms,
                                        double drv) const {
  return retention_deficit(condition, id, ohms, drv) >=
         flip_.flip_threshold(condition.temp_c);
}

}  // namespace lpsram
