#include "lpsram/regulator/characterize.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "lpsram/util/error.hpp"
#include "lpsram/util/units.hpp"

namespace lpsram {
namespace {

// Transient window used to judge gate-line (delay/undershoot) defects. The
// regulator settles well within this at every PVT point; the remaining DS
// time is extrapolated from the final value.
constexpr double kDsEntryWindow = 30e-6;

}  // namespace

std::string ds_condition_name(const DsCondition& condition) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s, %.1fV, %.0fC",
                corner_name(condition.corner).c_str(), condition.vdd,
                condition.temp_c);
  return buf;
}

RegulationMetrics measure_regulation(const Technology& tech, Corner corner,
                                     VrefLevel vref, SweepReport* report) {
  RegulationMetrics metrics;
  VoltageRegulator reg(tech, corner);
  reg.select_vref(vref);
  reg.set_regon(true);
  reg.set_power_switch(false);

  // Runs one measurement point; quarantines a solve failure when a report
  // collects partial results, propagates it otherwise.
  const auto probe = [&](const std::string& context, const auto& body) {
    if (!report) {
      body();
      return;
    }
    try {
      body();
      report->add_success();
    } catch (const Error& e) {
      report->quarantine(context, e);
    }
  };

  for (const double vdd : tech.vdd_levels()) {
    char context[48];
    std::snprintf(context, sizeof(context), "line regulation @ %.1fV", vdd);
    probe(context, [&] {
      reg.set_vdd(vdd);
      reg.set_regon(true);
      reg.set_power_switch(false);
      const double error = std::fabs(reg.vreg_dc(25.0) - reg.expected_vreg());
      metrics.line_error = std::max(metrics.line_error, error);
    });
  }

  reg.set_vdd(tech.vdd_nominal());
  reg.set_regon(true);
  reg.set_power_switch(false);
  probe("load regulation @ nominal VDD", [&] {
    const double v0 = reg.vreg_dc(25.0);
    constexpr double kLoadStep = 100e-6;
    reg.set_test_load(kLoadStep);
    const double v1 = reg.vreg_dc(25.0);
    reg.set_test_load(0.0);
    metrics.load_regulation = (v0 - v1) / kLoadStep;
  });

  for (const double temp : tech.temperatures()) {
    char context[48];
    std::snprintf(context, sizeof(context), "temp drift @ %.0fC", temp);
    probe(context, [&] {
      const double v25 = reg.vreg_dc(25.0);
      metrics.temp_drift =
          std::max(metrics.temp_drift, std::fabs(reg.vreg_dc(temp) - v25));
    });
  }
  return metrics;
}

RegulatorCharacterizer::RegulatorCharacterizer(
    const Technology& tech, const ArrayLoadModel::Options& load_options,
    const FlipTimeModel& flip)
    : tech_(tech), load_options_(load_options), flip_(flip) {}

VoltageRegulator& RegulatorCharacterizer::regulator_for(Corner corner) const {
  auto found = regulators_.find(corner);
  if (found == regulators_.end()) {
    found = regulators_
                .emplace(corner, std::make_unique<VoltageRegulator>(
                                     tech_, corner, load_options_))
                .first;
  }
  return *found->second;
}

double RegulatorCharacterizer::vreg(const DsCondition& condition, DefectId id,
                                    double ohms) const {
  VoltageRegulator& reg = regulator_for(condition.corner);
  reg.clear_all_defects();
  if (id != 0) reg.inject_defect(id, ohms);
  reg.set_vdd(condition.vdd);
  reg.select_vref(condition.vref);
  reg.set_regon(true);
  reg.set_power_switch(false);
  return reg.vreg_dc(condition.temp_c);
}

double RegulatorCharacterizer::vreg_healthy(const DsCondition& condition) const {
  return vreg(condition, 0, VoltageRegulator::healthy_resistance());
}

double RegulatorCharacterizer::static_power(const DsCondition& condition,
                                            DefectId id, double ohms) const {
  VoltageRegulator& reg = regulator_for(condition.corner);
  reg.clear_all_defects();
  if (id != 0) reg.inject_defect(id, ohms);
  reg.set_vdd(condition.vdd);
  reg.select_vref(condition.vref);
  reg.set_regon(true);
  reg.set_power_switch(false);
  return reg.static_power_dc(condition.temp_c);
}

double RegulatorCharacterizer::retention_deficit(const DsCondition& condition,
                                                 DefectId id, double ohms,
                                                 double drv) const {
  VoltageRegulator& reg = regulator_for(condition.corner);
  reg.clear_all_defects();
  if (id != 0) reg.inject_defect(id, ohms);
  reg.set_vdd(condition.vdd);
  reg.select_vref(condition.vref);

  if (id != 0 && is_gate_site(id)) {
    // Delay/undershoot mechanisms: simulate the actual DS entry.
    TransientOptions topts;
    topts.dt_max = kDsEntryWindow / 100.0;
    Waveform wave =
        reg.simulate_ds_entry(kDsEntryWindow, condition.temp_c, &topts);
    const double transient_deficit = wave.deficit_integral(0, drv);
    const double v_end = wave.values[0].back();
    const double remaining =
        std::max(0.0, condition.ds_time - kDsEntryWindow) *
        std::max(0.0, drv - v_end);
    return transient_deficit + remaining;
  }

  reg.set_regon(true);
  reg.set_power_switch(false);
  const double v = reg.vreg_dc(condition.temp_c);
  return condition.ds_time * std::max(0.0, drv - v);
}

bool RegulatorCharacterizer::causes_drf(const DsCondition& condition,
                                        DefectId id, double ohms,
                                        double drv) const {
  return retention_deficit(condition, id, ohms, drv) >=
         flip_.flip_threshold(condition.temp_c);
}

}  // namespace lpsram
