// Regulator-level characterization queries: steady-state Vreg, static power
// and the "does this defect cause a retention fault" predicate that the
// Table II engine (testflow/defect_characterization) bisects over.
#pragma once

#include <map>
#include <memory>
#include <span>
#include <vector>

#include "lpsram/cell/flip_time.hpp"
#include "lpsram/regulator/regulator.hpp"
#include "lpsram/runtime/campaign.hpp"
#include "lpsram/runtime/parallel.hpp"
#include "lpsram/runtime/quarantine.hpp"
#include "lpsram/util/cancel.hpp"

namespace lpsram {

// One deep-sleep test condition (what a Table II cell or a Table III test
// iteration fixes).
struct DsCondition {
  Corner corner = Corner::Typical;
  double vdd = 1.1;
  VrefLevel vref = VrefLevel::V070;
  double temp_c = 25.0;
  double ds_time = 1e-3;  // time spent in deep-sleep [s]

  // Ideal regulated voltage for this condition.
  double expected_vreg() const noexcept { return vdd * vref_fraction(vref); }
};

std::string ds_condition_name(const DsCondition& condition);

// Classic analog acceptance metrics of the (healthy) regulator.
struct RegulationMetrics {
  // Worst deviation of Vreg from the ideal fraction*VDD across the supply
  // range [V].
  double line_error = 0.0;
  // Output droop per ampere of extra DC load [V/A] (small-signal, measured
  // with a 100 uA step).
  double load_regulation = 0.0;
  // Vreg drift across the temperature range, relative to 25 C [V].
  double temp_drift = 0.0;
};

// Measures the metrics at one corner / reference setting. When `report` is
// given, individual supply/temperature points that fail to solve are
// quarantined into it (the metrics then cover the surviving points only);
// without it the first failure propagates. The probe points run on the
// parallel sweep executor (`threads` as in SweepExecutorOptions; results are
// bit-identical at any thread count) and aggregate sweep telemetry lands in
// `*telemetry` when given. With a `campaign`, completed probes are journaled
// as they finish and a resumed call skips them (results bit-identical to an
// uninterrupted run); `cancel` threads a CancelToken into every solve.
RegulationMetrics measure_regulation(const Technology& tech, Corner corner,
                                     VrefLevel vref,
                                     SweepReport* report = nullptr,
                                     SweepTelemetry* telemetry = nullptr,
                                     int threads = 1,
                                     Campaign* campaign = nullptr,
                                     const CancelToken* cancel = nullptr);

// Not thread-safe: the characterizer owns per-corner VoltageRegulator
// instances and reconfigures them per query. Parallel sweep drivers create
// one characterizer per executor worker slot (a slot runs one task at a
// time), never sharing an instance across concurrent tasks.
class RegulatorCharacterizer {
 public:
  // `load_options` describes the array hanging on VDD_CC (including the weak
  // cells of the active case study); `flip` is the retention flip model.
  RegulatorCharacterizer(const Technology& tech,
                         const ArrayLoadModel::Options& load_options,
                         const FlipTimeModel& flip = FlipTimeModel{});

  // Steady-state DS-mode Vreg with one defect injected (id may be 0 for the
  // defect-free circuit).
  double vreg(const DsCondition& condition, DefectId id, double ohms) const;

  // Defect-free steady-state Vreg.
  double vreg_healthy(const DsCondition& condition) const;

  // Static power in DS mode with the defect injected [W].
  double static_power(const DsCondition& condition, DefectId id,
                      double ohms) const;

  // True if the defect at this resistance makes cells of the given DRV lose
  // their data during the DS window. Gate-line defects are judged on the
  // DS-entry transient (delay/undershoot mechanisms); all others on the DC
  // operating point held for ds_time.
  bool causes_drf(const DsCondition& condition, DefectId id, double ohms,
                  double drv) const;

  // Retention deficit integral [V*s] accumulated over the DS window for the
  // given DRV (diagnostic / used by causes_drf).
  double retention_deficit(const DsCondition& condition, DefectId id,
                           double ohms, double drv) const;

  // Retention deficits for several resistance values of one defect, in
  // `ohms` order. For gate-site defects under TransientBatchKind::Lockstep
  // the DS-entry transients run as one lane batch
  // (VoltageRegulator::simulate_ds_entry_lanes); otherwise this loops the
  // scalar retention_deficit — the runtime-selectable oracle.
  std::vector<double> retention_deficits(const DsCondition& condition,
                                         DefectId id,
                                         std::span<const double> ohms,
                                         double drv) const;

  // Minimum defect resistance causing a DRF: the monotone_threshold_log
  // bisection over causes_drf. Gate-site defects under
  // TransientBatchKind::Lockstep evaluate each bisection round as a
  // speculative probe tree — the 7 midpoints the scalar schedule could
  // visit over its next three rounds, computed by the same nested-sqrt
  // recipe and batched into one lockstep run — so the probe points (and the
  // returned bracket) are exactly the scalar schedule's.
  double drf_threshold(const DsCondition& condition, DefectId id, double r_lo,
                       double r_hi, double rel_tolerance, double drv) const;

  const FlipTimeModel& flip_model() const noexcept { return flip_; }

  // Attaches a shared operating-point cache, applied to the existing and
  // every future per-corner regulator. `task_key` scopes lookups to one
  // sweep task (see VoltageRegulator::set_solve_cache); sweep drivers call
  // this again with the task's key before each task body.
  void set_solve_cache(SolveCache* cache, std::uint64_t task_key = 0);

  // Applies a retry-ladder policy (deadline, cancel token, ...) to the
  // existing and every future per-corner regulator — how sweep drivers
  // thread a CancelToken down into the Newton loops.
  void set_solve_policy(const RetryLadderOptions& policy);

  // Solve counters summed over the per-corner regulators. Sweep drivers
  // snapshot this before/after a task to attribute solves to it.
  SolveTelemetry solve_telemetry() const;

 private:
  VoltageRegulator& regulator_for(Corner corner) const;

  Technology tech_;
  ArrayLoadModel::Options load_options_;
  FlipTimeModel flip_;
  SolveCache* solve_cache_ = nullptr;
  std::uint64_t cache_task_key_ = 0;
  RetryLadderOptions solve_policy_;
  bool has_solve_policy_ = false;
  // One regulator instance per corner, built lazily and reconfigured per
  // query (warm-started DC solves make sweeps cheap).
  mutable std::map<Corner, std::unique_ptr<VoltageRegulator>> regulators_;
};

}  // namespace lpsram
