// Monte-Carlo array-level DRV statistics.
//
// The paper derives a deterministic worst case (every transistor at 6 sigma,
// Table I CS1) and tests against it. Its reference [6] (Wang et al.) frames
// the same quantity statistically: the minimum standby voltage of an array
// is the maximum DRV over its cells, an extreme-value statistic that grows
// with array size. This module samples per-cell variation, evaluates the
// DRV surrogate, and reports the distribution of the array DRV_DS —
// quantifying how conservative the 6-sigma corner is for a given capacity
// and what retention yield a chosen Vreg buys.
#pragma once

#include <cstdint>

#include "lpsram/stats/drv_surrogate.hpp"

namespace lpsram {

struct ArrayDrvOptions {
  std::size_t cells = 256 * 1024;
  int trials = 200;  // Monte-Carlo array instances
  std::uint64_t seed = 0xA44Au;
};

// NOTE: as of the yield engine, variation fields are drawn from the
// counter-based RNG (stats/yield/counter_rng.hpp) keyed by
// (seed, trial, cell, transistor) — the sample for a coordinate no longer
// depends on how many draws preceded it, so simulate_array_drv and the yield
// engine see the same field for the same (seed, trial, cell) and results are
// reproducible under any evaluation order.

struct ArrayDrvDistribution {
  std::vector<double> samples;  // per-trial array DRV_DS [V], sorted

  double mean = 0.0;
  double stddev = 0.0;
  // Gumbel (extreme value type I) parameters from the method of moments:
  // beta = stddev * sqrt(6)/pi, mu = mean - gamma * beta.
  double gumbel_mu = 0.0;
  double gumbel_beta = 0.0;

  // Empirical quantile (p in [0,1]).
  double percentile(double p) const;
  // Gumbel-model quantile.
  double gumbel_quantile(double p) const;
  // Fraction of arrays whose DRV_DS stays at or below `vreg` — the retention
  // yield at that regulated voltage.
  double yield_at(double vreg) const;
};

// Sorts per-trial array maxima and fits the moments + Gumbel parameters —
// the one place the ArrayDrvDistribution summary statistics are computed
// (shared by simulate_array_drv and the yield engine's reduce()).
ArrayDrvDistribution fit_array_drv_distribution(std::vector<double> maxima);

// Simulates `trials` arrays of `cells` cells each with i.i.d. N(0,1) sigma
// variation per transistor, taking the per-array max of the surrogate DRV.
ArrayDrvDistribution simulate_array_drv(const DrvSurrogate& surrogate,
                                        const ArrayDrvOptions& options = {});

}  // namespace lpsram
