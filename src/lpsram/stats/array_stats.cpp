#include "lpsram/stats/array_stats.hpp"

#include <algorithm>
#include <cmath>

#include "lpsram/stats/yield/counter_rng.hpp"
#include "lpsram/util/error.hpp"

namespace lpsram {
namespace {
constexpr double kEulerGamma = 0.5772156649015329;
}

double ArrayDrvDistribution::percentile(double p) const {
  if (samples.empty()) throw Error("ArrayDrvDistribution: empty");
  if (p <= 0.0) return samples.front();
  if (p >= 1.0) return samples.back();
  const double idx = p * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const double f = idx - static_cast<double>(lo);
  if (lo + 1 >= samples.size()) return samples.back();
  return samples[lo] + f * (samples[lo + 1] - samples[lo]);
}

double ArrayDrvDistribution::gumbel_quantile(double p) const {
  if (p <= 0.0 || p >= 1.0)
    throw InvalidArgument("gumbel_quantile: p must be in (0,1)");
  return gumbel_mu - gumbel_beta * std::log(-std::log(p));
}

double ArrayDrvDistribution::yield_at(double vreg) const {
  if (samples.empty()) throw Error("ArrayDrvDistribution: empty");
  const auto it = std::upper_bound(samples.begin(), samples.end(), vreg);
  return static_cast<double>(it - samples.begin()) /
         static_cast<double>(samples.size());
}

ArrayDrvDistribution fit_array_drv_distribution(std::vector<double> maxima) {
  if (maxima.empty())
    throw InvalidArgument("fit_array_drv_distribution: no samples");

  ArrayDrvDistribution dist;
  dist.samples = std::move(maxima);
  std::sort(dist.samples.begin(), dist.samples.end());

  double sum = 0.0;
  for (const double s : dist.samples) sum += s;
  dist.mean = sum / static_cast<double>(dist.samples.size());
  double sq = 0.0;
  for (const double s : dist.samples) sq += (s - dist.mean) * (s - dist.mean);
  dist.stddev = dist.samples.size() > 1
                    ? std::sqrt(sq / static_cast<double>(dist.samples.size() - 1))
                    : 0.0;
  dist.gumbel_beta = dist.stddev * std::sqrt(6.0) / M_PI;
  dist.gumbel_mu = dist.mean - kEulerGamma * dist.gumbel_beta;
  return dist;
}

ArrayDrvDistribution simulate_array_drv(const DrvSurrogate& surrogate,
                                        const ArrayDrvOptions& options) {
  if (options.trials < 1)
    throw InvalidArgument("simulate_array_drv: trials must be >= 1");

  std::vector<double> maxima;
  maxima.reserve(static_cast<std::size_t>(options.trials));

  for (int trial = 0; trial < options.trials; ++trial) {
    double worst_drv = 0.0;
    for (std::size_t cell = 0; cell < options.cells; ++cell) {
      const CellVariation v = sample_cell_variation(
          options.seed, static_cast<std::uint64_t>(trial), cell);
      worst_drv = std::max(worst_drv, surrogate.predict_drv(v));
    }
    maxima.push_back(worst_drv);
  }
  return fit_array_drv_distribution(std::move(maxima));
}

}  // namespace lpsram
