#include "lpsram/stats/array_stats.hpp"

#include <algorithm>
#include <cmath>
#include <random>

#include "lpsram/util/error.hpp"

namespace lpsram {
namespace {
constexpr double kEulerGamma = 0.5772156649015329;
}

double ArrayDrvDistribution::percentile(double p) const {
  if (samples.empty()) throw Error("ArrayDrvDistribution: empty");
  if (p <= 0.0) return samples.front();
  if (p >= 1.0) return samples.back();
  const double idx = p * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const double f = idx - static_cast<double>(lo);
  if (lo + 1 >= samples.size()) return samples.back();
  return samples[lo] + f * (samples[lo + 1] - samples[lo]);
}

double ArrayDrvDistribution::gumbel_quantile(double p) const {
  if (p <= 0.0 || p >= 1.0)
    throw InvalidArgument("gumbel_quantile: p must be in (0,1)");
  return gumbel_mu - gumbel_beta * std::log(-std::log(p));
}

double ArrayDrvDistribution::yield_at(double vreg) const {
  if (samples.empty()) throw Error("ArrayDrvDistribution: empty");
  const auto it = std::upper_bound(samples.begin(), samples.end(), vreg);
  return static_cast<double>(it - samples.begin()) /
         static_cast<double>(samples.size());
}

ArrayDrvDistribution simulate_array_drv(const DrvSurrogate& surrogate,
                                        const ArrayDrvOptions& options) {
  if (options.trials < 1)
    throw InvalidArgument("simulate_array_drv: trials must be >= 1");

  std::mt19937_64 rng(options.seed);
  std::normal_distribution<double> normal(0.0, 1.0);

  ArrayDrvDistribution dist;
  dist.samples.reserve(static_cast<std::size_t>(options.trials));

  for (int trial = 0; trial < options.trials; ++trial) {
    // The array maximum only depends on the extreme score in each mirror
    // polarity: track max and min of the linear score and evaluate the
    // monotone map once per polarity. (score(mirror(v)) for the sampled
    // i.i.d. population is distributed like -score(v) under the fitted
    // antisymmetric weights, but we evaluate it exactly per cell.)
    double worst_drv = 0.0;
    CellVariation v;
    for (std::size_t cell = 0; cell < options.cells; ++cell) {
      v.mpcc1 = normal(rng);
      v.mncc1 = normal(rng);
      v.mpcc2 = normal(rng);
      v.mncc2 = normal(rng);
      v.mncc3 = normal(rng);
      v.mncc4 = normal(rng);
      worst_drv = std::max(worst_drv, surrogate.predict_drv(v));
    }
    dist.samples.push_back(worst_drv);
  }
  std::sort(dist.samples.begin(), dist.samples.end());

  double sum = 0.0;
  for (const double s : dist.samples) sum += s;
  dist.mean = sum / static_cast<double>(dist.samples.size());
  double sq = 0.0;
  for (const double s : dist.samples) sq += (s - dist.mean) * (s - dist.mean);
  dist.stddev = dist.samples.size() > 1
                    ? std::sqrt(sq / static_cast<double>(dist.samples.size() - 1))
                    : 0.0;
  dist.gumbel_beta = dist.stddev * std::sqrt(6.0) / M_PI;
  dist.gumbel_mu = dist.mean - kEulerGamma * dist.gumbel_beta;
  return dist;
}

}  // namespace lpsram
