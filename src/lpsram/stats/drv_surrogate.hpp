// Fast surrogate for the cell DRV response.
//
// The exact DRV of a variation pattern costs a bisection over supply with a
// butterfly stability check at every step (~ms). Monte-Carlo analysis of a
// 256K-cell array needs ~10^7 DRV evaluations per experiment — so we train
// a surrogate once against the exact model:
//
//   1. draw random variation vectors, evaluate the exact DRV_DS1;
//   2. fit a linear "asymmetry score" u = c . v by least squares — the
//     paper's Fig. 4 observations say exactly which sign each component
//     takes (adverse directions increase DRV);
//   3. fit a monotone 1-D map m(u) -> DRV by isotonic regression (pool
//     adjacent violators) over the training scores;
//   4. predict: DRV_DS1 = m(c . v), DRV_DS0 = m(c . mirror(v)) — the mirror
//     symmetry of the cell is exact, so one map serves both polarities.
//
// Accuracy is reported on a holdout set and asserted in tests.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "lpsram/cell/drv.hpp"

namespace lpsram {

struct DrvSurrogateOptions {
  int training_samples = 240;   // exact-model evaluations for the fit
  double sample_sigma = 2.5;    // stddev of training variation vectors
  double holdout_fraction = 0.25;
  std::uint64_t seed = 0xD5u;
  Corner corner = Corner::Typical;
  double temp_c = 25.0;
};

class DrvSurrogate {
 public:
  // Trains against the exact cell model (seconds).
  static DrvSurrogate train(const Technology& tech,
                            const DrvSurrogateOptions& options = {});

  // Linear asymmetry score of a pattern (positive = '1' retention degraded).
  double score(const CellVariation& variation) const noexcept;

  // Predicted DRV components [V].
  double predict_drv1(const CellVariation& variation) const;
  double predict_drv0(const CellVariation& variation) const;
  double predict_drv(const CellVariation& variation) const;

  // Fitted direction, in kAllCellTransistors order.
  const std::array<double, 6>& weights() const noexcept { return weights_; }

  // Holdout RMS error of predict_drv1 [V].
  double rms_error() const noexcept { return rms_error_; }
  // Holdout worst absolute error [V].
  double max_error() const noexcept { return max_error_; }

  const DrvSurrogateOptions& options() const noexcept { return options_; }

  // Stable fingerprint of the trained model (options, fitted weights, knot
  // tables, holdout errors — raw IEEE-754 bits throughout). The yield engine
  // folds this into its campaign manifest so a resumed or fleet-sharded run
  // refuses to mix estimates produced by differently trained surrogates.
  std::uint64_t fingerprint() const noexcept;

 private:
  DrvSurrogate() = default;
  double map(double score) const;  // monotone score -> DRV

  DrvSurrogateOptions options_;
  std::array<double, 6> weights_{};
  // Monotone piecewise-linear map: knots sorted by score.
  std::vector<double> knot_scores_;
  std::vector<double> knot_drvs_;
  double rms_error_ = 0.0;
  double max_error_ = 0.0;
};

}  // namespace lpsram
