#include "lpsram/stats/yield/engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>

#include "lpsram/cell/batch_vtc.hpp"
#include "lpsram/cell/drv.hpp"
#include "lpsram/spice/dc_solver.hpp"
#include "lpsram/spice/hooks.hpp"
#include "lpsram/stats/yield/counter_rng.hpp"
#include "lpsram/util/error.hpp"
#include "lpsram/util/simd.hpp"

namespace lpsram {
namespace {

// Importance-sampling draws live in their own counter stream so they never
// collide with the nominal (trial, cell) field ("IS").
constexpr std::uint64_t kIsStreamTag = 0x4953ULL;
// Lane 6 picks the mixture component (lanes 0..5 are the six transistors).
constexpr std::uint64_t kComponentLane = 6;
// Pilot shift-tuning draws get their own stream too ("PS"): the pilot must
// not consume — or correlate with — the production sampling field.
constexpr std::uint64_t kPilotStreamTag = 0x5053ULL;

// Cells per cross-batched exact-solve chunk. A multiple of every native
// SIMD width; large enough that per-chunk setup (device-constant hoisting)
// amortizes, small enough that the staging working set stays cache-resident.
constexpr std::size_t kExactBatchLanes = 32;

std::atomic<YieldExactBatchKind> g_default_yield_exact_batch{
    YieldExactBatchKind::LaneBatch};

}  // namespace

std::string yield_mode_name(YieldMode mode) {
  switch (mode) {
    case YieldMode::BruteForceExact: return "brute-force-exact";
    case YieldMode::Blockade: return "blockade";
    case YieldMode::ImportanceSampled: return "importance-sampled";
  }
  return "unknown";
}

std::string yield_exact_batch_name(YieldExactBatchKind kind) {
  switch (kind) {
    case YieldExactBatchKind::Auto: return "auto";
    case YieldExactBatchKind::OneAtATime: return "one-at-a-time";
    case YieldExactBatchKind::LaneBatch: return "lane-batch";
  }
  return "unknown";
}

YieldExactBatchKind default_yield_exact_batch() noexcept {
  return g_default_yield_exact_batch.load(std::memory_order_relaxed);
}

YieldExactBatchKind set_default_yield_exact_batch(
    YieldExactBatchKind kind) noexcept {
  if (kind == YieldExactBatchKind::Auto) kind = YieldExactBatchKind::LaneBatch;
  return g_default_yield_exact_batch.exchange(kind, std::memory_order_relaxed);
}

YieldExactBatchKind resolved_yield_exact_batch() noexcept {
  const YieldExactBatchKind kind = default_yield_exact_batch();
  return kind == YieldExactBatchKind::Auto ? YieldExactBatchKind::LaneBatch
                                           : kind;
}

YieldPlan::YieldPlan(const Technology& tech, const DrvSurrogate& surrogate,
                     YieldEngineOptions options)
    : tech_(&tech), surrogate_(&surrogate), options_(std::move(options)) {
  if (options_.rows < 1 || options_.cols < 1)
    throw InvalidArgument("YieldPlan: array must have >= 1 row and column");
  if (options_.trials < 1)
    throw InvalidArgument("YieldPlan: trials must be >= 1");
  if (options_.block_cells < 1)
    throw InvalidArgument("YieldPlan: block_cells must be >= 1");
  if (options_.vreg_grid.empty())
    throw InvalidArgument("YieldPlan: vreg_grid must not be empty");
  if (!std::is_sorted(options_.vreg_grid.begin(), options_.vreg_grid.end()))
    throw InvalidArgument("YieldPlan: vreg_grid must be ascending");
  for (const double v : options_.vreg_grid)
    if (!(v > 0.0) || !std::isfinite(v))
      throw InvalidArgument("YieldPlan: vreg grid points must be positive");
  if (!(options_.blockade_margin >= 0.0))
    throw InvalidArgument("YieldPlan: blockade_margin must be >= 0");

  gate_ = options_.vreg_grid.front() - options_.blockade_margin;

  if (options_.mode == YieldMode::ImportanceSampled) {
    if (options_.is_samples < 1)
      throw InvalidArgument("YieldPlan: is_samples must be >= 1");
    if (!(options_.is_shift >= 0.0))
      throw InvalidArgument("YieldPlan: is_shift must be >= 0");
    if (!(options_.is_defensive >= 0.0 && options_.is_defensive < 1.0))
      throw InvalidArgument("YieldPlan: is_defensive must be in [0, 1)");
    if (options_.auto_shift) {
      if (options_.pilot_samples < 1)
        throw InvalidArgument("YieldPlan: pilot_samples must be >= 1");
      if (!(options_.pilot_shift_lo >= 0.0) ||
          !(options_.pilot_shift_hi >= options_.pilot_shift_lo))
        throw InvalidArgument(
            "YieldPlan: need 0 <= pilot_shift_lo <= pilot_shift_hi");
      if (options_.pilot_steps < 1)
        throw InvalidArgument("YieldPlan: pilot_steps must be >= 1");
    }
    blocks_per_trial_ =
        (options_.is_samples + options_.block_cells - 1) / options_.block_cells;
    task_count_ = blocks_per_trial_;

    const auto& w = surrogate.weights();
    double norm_sq = 0.0;
    for (const double wi : w) norm_sq += wi * wi;
    if (!(norm_sq > 0.0))
      throw InvalidArgument("YieldPlan: surrogate weights are all zero");

    // Pilot line search first (surrogate-only, deterministic): it may
    // replace options_.is_shift before the shift vectors are derived, so
    // everything downstream — the sampler, the weights, the fingerprint —
    // sees one consistent tuned value.
    pilot_.shift = options_.is_shift;
    if (options_.auto_shift) run_pilot_shift_search();

    // Mean shift along the fitted worst-case direction (unit Euclidean norm
    // of the surrogate weights), mirrored for the opposite polarity.
    const double scale = options_.is_shift / std::sqrt(norm_sq);
    CellVariation mu;
    for (std::size_t i = 0; i < kAllCellTransistors.size(); ++i)
      mu.set(kAllCellTransistors[i], w[i] * scale);
    const CellVariation mu_m = mu.mirrored();
    for (std::size_t i = 0; i < kAllCellTransistors.size(); ++i) {
      shift_[i] = mu.get(kAllCellTransistors[i]);
      shift_mirror_[i] = mu_m.get(kAllCellTransistors[i]);
    }
    shift_sq_half_ = 0.5 * options_.is_shift * options_.is_shift;
    is_seed_ = fold_key(options_.seed, kIsStreamTag);
  } else {
    blocks_per_trial_ =
        (options_.cells_per_trial() + options_.block_cells - 1) /
        options_.block_cells;
    task_count_ =
        blocks_per_trial_ * static_cast<std::size_t>(options_.trials);
  }
}

void YieldPlan::run_pilot_shift_search() {
  // ESS-maximizing line search along the surrogate worst-case direction.
  //
  // Design rules that keep this sound:
  //  * Surrogate-only: the pilot never spends an exact solve — the failure
  //    indicator is predict_drv(v) > vreg, which is what the production
  //    blockade gate keys off anyway.
  //  * Common random numbers: one (component pick, z) draw per pilot sample,
  //    reused for every candidate shift, so the comparison across shifts is
  //    paired and the winner is not a noise artifact of per-shift streams.
  //  * Own counter stream (kPilotStreamTag): pilot draws never collide with
  //    the production sampling field, so tuning cannot bias the estimate.
  //  * Tail ESS, not overall ESS: (sum w*f)^2 / sum w^2*f restricted to the
  //    failure indicator. The overall (sum w)^2 / sum w^2 is maximized by
  //    shift 0 — it measures weight uniformity, not tail evidence — and
  //    would tune every run back to plain Monte Carlo.
  //  * Max-min over grid points: the chosen shift must serve the whole
  //    curve, so the score is the minimum tail ESS over every grid point
  //    that registered at least one pilot hit at any shift; grid points no
  //    shift can reach are excluded rather than zeroing every score. If no
  //    grid point scores at all, the hand shift stays untouched.
  const auto& w = surrogate_->weights();
  double norm_sq = 0.0;
  for (const double wi : w) norm_sq += wi * wi;
  CellVariation u;
  for (std::size_t i = 0; i < kAllCellTransistors.size(); ++i)
    u.set(kAllCellTransistors[i], w[i] / std::sqrt(norm_sq));
  const CellVariation u_m = u.mirrored();

  const std::vector<double>& grid = options_.vreg_grid;
  const std::size_t steps = static_cast<std::size_t>(options_.pilot_steps);
  std::vector<double> shifts(steps);
  for (std::size_t t = 0; t < steps; ++t) {
    shifts[t] = steps > 1
                    ? options_.pilot_shift_lo +
                          (options_.pilot_shift_hi - options_.pilot_shift_lo) *
                              static_cast<double>(t) /
                              static_cast<double>(steps - 1)
                    : options_.pilot_shift_lo;
  }

  // sum_wf / sum_wf2 per (shift, grid point), summed in sample order.
  std::vector<double> sum_wf(steps * grid.size(), 0.0);
  std::vector<double> sum_wf2(steps * grid.size(), 0.0);
  std::vector<char> grid_hit(grid.size(), 0);

  const std::uint64_t pilot_seed = fold_key(options_.seed, kPilotStreamTag);
  const double alpha = options_.is_defensive;
  for (std::size_t j = 0; j < options_.pilot_samples; ++j) {
    const double pick = counter_uniform(pilot_seed, 0, j, kComponentLane);
    // Component selection mirrors the production sampler: nominal with
    // probability alpha, else one of the two shifted halves.
    int component = 0;  // 0 nominal, 1 shifted, 2 mirrored
    if (pick >= alpha)
      component = pick < alpha + 0.5 * (1.0 - alpha) ? 1 : 2;
    std::array<double, 6> z{};
    for (std::size_t lane = 0; lane < kAllCellTransistors.size(); ++lane)
      z[lane] = counter_normal(pilot_seed, 0, j, lane);

    for (std::size_t t = 0; t < steps; ++t) {
      const double c = shifts[t];
      CellVariation v;
      for (std::size_t lane = 0; lane < kAllCellTransistors.size(); ++lane) {
        const double mean =
            component == 1 ? c * u.get(kAllCellTransistors[lane])
            : component == 2 ? c * u_m.get(kAllCellTransistors[lane])
                             : 0.0;
        v.set(kAllCellTransistors[lane], z[lane] + mean);
      }
      // Likelihood ratio of the same defensive mixture at shift c:
      // a_i = c * (u_i . v) - c^2/2, w = 1/(alpha + (1-alpha) e^m s).
      double uv = 0.0, umv = 0.0;
      for (std::size_t lane = 0; lane < kAllCellTransistors.size(); ++lane) {
        const double vl = v.get(kAllCellTransistors[lane]);
        uv += u.get(kAllCellTransistors[lane]) * vl;
        umv += u_m.get(kAllCellTransistors[lane]) * vl;
      }
      const double a1 = c * uv - 0.5 * c * c;
      const double a2 = c * umv - 0.5 * c * c;
      const double m = std::max(a1, a2);
      const double s = 0.5 * (std::exp(a1 - m) + std::exp(a2 - m));
      const double weight =
          alpha > 0.0 ? 1.0 / (alpha + (1.0 - alpha) * std::exp(m) * s)
                      : std::exp(-(m + std::log(s)));

      const double sdrv = surrogate_->predict_drv(v);
      for (std::size_t k = 0; k < grid.size(); ++k) {
        if (sdrv > grid[k]) {
          sum_wf[t * grid.size() + k] += weight;
          sum_wf2[t * grid.size() + k] += weight * weight;
          grid_hit[k] = 1;
        }
      }
    }
  }

  pilot_.samples = options_.pilot_samples;
  for (const char h : grid_hit)
    if (h) ++pilot_.grid_points_scored;
  if (pilot_.grid_points_scored == 0) return;  // tail unreachable: keep hand shift

  double best_score = -1.0;
  double best_shift = options_.is_shift;
  for (std::size_t t = 0; t < steps; ++t) {
    double score = std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < grid.size(); ++k) {
      if (!grid_hit[k]) continue;
      const double wf = sum_wf[t * grid.size() + k];
      const double wf2 = sum_wf2[t * grid.size() + k];
      score = std::min(score, wf2 > 0.0 ? wf * wf / wf2 : 0.0);
    }
    if (score > best_score) {  // strict: ties keep the smaller shift
      best_score = score;
      best_shift = shifts[t];
    }
  }

  options_.is_shift = best_shift;
  pilot_.tuned = true;
  pilot_.shift = best_shift;
  pilot_.objective = best_score;
}

std::uint64_t YieldPlan::key_of(std::size_t index) const noexcept {
  return fold_key(fold_key(kSalt, static_cast<std::uint64_t>(options_.mode)),
                  index);
}

std::uint64_t YieldPlan::fingerprint() const {
  std::uint64_t fp = fold_key(kSalt, task_count_);
  fp = fold_key(fp, options_.rows);
  fp = fold_key(fp, options_.cols);
  fp = fold_key(fp, static_cast<std::uint64_t>(options_.trials));
  fp = fold_key(fp, options_.seed);
  fp = fold_key(fp, static_cast<std::uint64_t>(options_.mode));
  fp = fold_key(fp, key_bits(options_.is_shift));
  fp = fold_key(fp, options_.is_samples);
  fp = fold_key(fp, key_bits(options_.is_defensive));
  // Pilot knobs: is_shift above already carries the *tuned* value (the
  // pilot rewrites it at construction), but folding the pilot configuration
  // too means a hand-shifted run can never alias an auto-shifted one that
  // happened to tune to the same number.
  fp = fold_key(fp, static_cast<std::uint64_t>(options_.auto_shift ? 1 : 0));
  fp = fold_key(fp, options_.pilot_samples);
  fp = fold_key(fp, key_bits(options_.pilot_shift_lo));
  fp = fold_key(fp, key_bits(options_.pilot_shift_hi));
  fp = fold_key(fp, static_cast<std::uint64_t>(options_.pilot_steps));
  fp = fold_key(fp, key_bits(options_.blockade_margin));
  fp = fold_key(fp, options_.block_cells);
  fp = fold_key(fp, static_cast<std::uint64_t>(options_.corner));
  fp = fold_key(fp, key_bits(options_.temp_c));
  fp = fold_key(fp, options_.vreg_grid.size());
  for (const double v : options_.vreg_grid) fp = fold_key(fp, key_bits(v));
  // The trained surrogate defines both the blockade gate and the importance
  // direction; the cell kernel defines the exact solves behind the journaled
  // counts. Either changing silently would blend incompatible estimates.
  fp = fold_key(fp, surrogate_->fingerprint());
  fp = fold_key(fp, static_cast<std::uint64_t>(resolved_cell_kernel()));
  // The SIMD backend kind shifts solver outcomes within ulp-level noise;
  // refuse to resume a journal recorded under the other kind.
  fp = fold_key(fp, static_cast<std::uint64_t>(resolved_simd_kind()));
  // The exact-batch kind is result-neutral by construction, but the folded
  // fingerprint is the *claim* of that neutrality a resumed journal can
  // check: refusing a mixed resume is how the bit-identity contract stays
  // falsifiable instead of assumed.
  fp = fold_key(fp, static_cast<std::uint64_t>(resolved_yield_exact_batch()));
  return fp;
}

double YieldPlan::importance_weight(const CellVariation& v) const {
  // w = phi(v) / q(v) with the defensive mixture proposal
  //   q = alpha * phi + (1-alpha)/2 * (N(mu, I) + N(mirror(mu), I)),
  // so w = 1 / (alpha + (1-alpha)/2 * (e^a1 + e^a2)) where
  //   a_i = log(N(mu_i, I) / phi)(v) = mu_i . v - |mu|^2/2,
  // computed with the max trick so weights stay finite at large shifts.
  // With alpha > 0 every weight is bounded by 1/alpha.
  double a1 = -shift_sq_half_;
  double a2 = -shift_sq_half_;
  for (std::size_t i = 0; i < kAllCellTransistors.size(); ++i) {
    const double vi = v.get(kAllCellTransistors[i]);
    a1 += shift_[i] * vi;
    a2 += shift_mirror_[i] * vi;
  }
  const double alpha = options_.is_defensive;
  const double m = std::max(a1, a2);
  const double s = 0.5 * (std::exp(a1 - m) + std::exp(a2 - m));
  if (alpha > 0.0) {
    // exp(m) may overflow to +inf for a point far along the shift; the
    // weight then correctly collapses to 0.
    return 1.0 / (alpha + (1.0 - alpha) * std::exp(m) * s);
  }
  return std::exp(-(m + std::log(s)));
}

BlockAccum YieldPlan::run_block(std::size_t index,
                                const CancelToken* cancel) const {
  if (index >= task_count_)
    throw InvalidArgument("YieldPlan::run_block: index out of range");
  // Scope any session chaos observer to this task, matching the executor
  // contract that concurrent tasks never share an observer instance.
  const ScopedTaskObserver task_scope(key_of(index));

  const bool importance = options_.mode == YieldMode::ImportanceSampled;
  const std::vector<double>& grid = options_.vreg_grid;

  std::uint64_t trial = 0;
  std::size_t begin = 0, end = 0;
  if (importance) {
    begin = index * options_.block_cells;
    end = std::min(begin + options_.block_cells, options_.is_samples);
  } else {
    trial = index / blocks_per_trial_;
    begin = (index % blocks_per_trial_) * options_.block_cells;
    end = std::min(begin + options_.block_cells, options_.cells_per_trial());
  }

  BlockAccum acc;
  acc.points.resize(grid.size());

  // The block runs in three passes over a staging buffer instead of one
  // fused loop, so the exact solves can batch cross-cell without touching
  // the accumulation order:
  //   1. sample + weight + surrogate-classify every cell, staging the
  //      survivors' variations and positions;
  //   2. exact-solve the staged candidates — per candidate (the oracle) or
  //      in lane-width cross-cell chunks, both walking the same staging
  //      order and writing the same per-sample slots;
  //   3. accumulate every sample in s order, exactly the fused loop's
  //      order, so curves stay bit-identical across batch kinds, thread
  //      counts, resume and fleet merges.
  const std::size_t count = end - begin;
  std::vector<double> weights(count, 1.0);
  std::vector<double> drvs(count, 0.0);
  std::vector<CellVariation> staged_v;
  std::vector<std::size_t> staged_pos;

  // Pass 1 — sampling, weights, surrogate gate.
  for (std::size_t s = begin; s < end; ++s) {
    poll_cancel(cancel, "yield block", 0, 0.0);

    CellVariation v;
    double w = 1.0;
    if (importance) {
      // Component pick: [0, alpha) nominal, then the two shifted halves.
      const double pick = counter_uniform(is_seed_, 0, s, kComponentLane);
      const double alpha = options_.is_defensive;
      const std::array<double, 6>* mean = nullptr;
      if (pick >= alpha)
        mean = pick < alpha + 0.5 * (1.0 - alpha) ? &shift_ : &shift_mirror_;
      for (std::size_t lane = 0; lane < kAllCellTransistors.size(); ++lane) {
        const double z = counter_normal(is_seed_, 0, s, lane);
        v.set(kAllCellTransistors[lane], z + (mean ? (*mean)[lane] : 0.0));
      }
      w = importance_weight(v);
    } else {
      v = sample_cell_variation(options_.seed, trial, s);
    }

    // Cheap pre-filter: the surrogate classifies every cell; only candidates
    // near or past the gate spend an exact lane-kernel solve. Below the gate
    // the surrogate DRV sits at least blockade_margin under every grid
    // point, so the surrogate value classifies identically to the exact one
    // (up to surrogate error — which is what the margin absorbs, and what
    // the equivalence suite bounds).
    const double surrogate_drv = surrogate_->predict_drv(v);
    const bool candidate = surrogate_drv >= gate_;
    const std::size_t pos = s - begin;
    weights[pos] = w;
    drvs[pos] = surrogate_drv;
    if (candidate) ++acc.candidates;
    if (options_.mode == YieldMode::BruteForceExact || candidate) {
      staged_v.push_back(v);
      staged_pos.push_back(pos);
    }
  }

  // Pass 2 — exact solves over the staging buffer. Both kinds visit the
  // staged candidates in the same order and the cross-batched kernel is
  // lane-for-lane identical to the solo path (see cell/batch_vtc.hpp), so
  // the drvs[] array they produce is the same.
  const bool lane_batch =
      resolved_yield_exact_batch() == YieldExactBatchKind::LaneBatch &&
      resolved_cell_kernel() == CellKernelKind::Batched;
  if (lane_batch) {
    CrossDrvOptions cross;
    std::vector<CoreCell> chunk_cells;
    std::vector<const CoreCell*> chunk_ptrs;
    std::vector<DrvResult> chunk_out;
    for (std::size_t i = 0; i < staged_v.size(); i += kExactBatchLanes) {
      poll_cancel(cancel, "yield exact batch", 0, 0.0);
      const std::size_t chunk =
          std::min(kExactBatchLanes, staged_v.size() - i);
      chunk_cells.clear();
      chunk_cells.reserve(chunk);
      chunk_ptrs.clear();
      chunk_out.resize(chunk);
      for (std::size_t j = 0; j < chunk; ++j)
        chunk_cells.emplace_back(*tech_, staged_v[i + j], options_.corner);
      for (const CoreCell& cell : chunk_cells) chunk_ptrs.push_back(&cell);
      drv_ds_cross_batched(chunk_ptrs.data(), chunk, options_.temp_c, cross,
                           chunk_out.data());
      for (std::size_t j = 0; j < chunk; ++j)
        drvs[staged_pos[i + j]] = chunk_out[j].drv();
      acc.exact_solves += chunk;
    }
  } else {
    for (std::size_t i = 0; i < staged_v.size(); ++i) {
      poll_cancel(cancel, "yield exact solve", 0, 0.0);
      const CoreCell cell(*tech_, staged_v[i], options_.corner);
      drvs[staged_pos[i]] = drv_ds(cell, options_.temp_c).drv();
      ++acc.exact_solves;
    }
  }

  // Pass 3 — accumulation, strictly in sample order.
  for (std::size_t pos = 0; pos < count; ++pos) {
    const double w = weights[pos];
    const double drv = drvs[pos];
    for (std::size_t k = 0; k < grid.size(); ++k)
      acc.points[k].add(w, drv > grid[k]);
    acc.sum_w += w;
    acc.sum_w2 += w * w;
    acc.max_drv = std::max(acc.max_drv, drv);
    ++acc.samples;
  }
  return acc;
}

std::vector<std::uint8_t> YieldPlan::encode_block(const BlockAccum& block) const {
  PayloadWriter out;
  out.u64(block.samples);
  out.u64(block.candidates);
  out.u64(block.exact_solves);
  out.f64(block.sum_w);
  out.f64(block.sum_w2);
  out.f64(block.max_drv);
  out.u32(static_cast<std::uint32_t>(block.points.size()));
  for (const TailPointAccum& pt : block.points) {
    out.u64(pt.fail_raw);
    out.f64(pt.sum_wf);
    out.f64(pt.sum_wf2);
  }
  return out.take();
}

BlockAccum YieldPlan::decode_block(PayloadReader& in) const {
  BlockAccum block;
  block.samples = in.u64();
  block.candidates = in.u64();
  block.exact_solves = in.u64();
  block.sum_w = in.f64();
  block.sum_w2 = in.f64();
  block.max_drv = in.f64();
  const std::uint32_t count = in.u32();
  if (count != options_.vreg_grid.size())
    throw InvalidArgument(
        "YieldPlan: journaled block has a different vreg grid");
  block.points.resize(count);
  for (TailPointAccum& pt : block.points) {
    pt.fail_raw = in.u64();
    pt.sum_wf = in.f64();
    pt.sum_wf2 = in.f64();
  }
  return block;
}

YieldResult YieldPlan::reduce(const std::vector<BlockAccum>& blocks) const {
  if (blocks.size() != task_count_)
    throw InvalidArgument("YieldPlan::reduce: wrong block count");

  BlockAccum total;
  total.points.resize(options_.vreg_grid.size());
  for (const BlockAccum& block : blocks) total.merge(block);

  YieldResult result;
  result.samples = total.samples;
  result.candidates = total.candidates;
  result.exact_solves = total.exact_solves;

  const double cells =
      static_cast<double>(options_.cells_per_trial());
  result.points.reserve(options_.vreg_grid.size());
  for (std::size_t k = 0; k < options_.vreg_grid.size(); ++k) {
    YieldPoint point;
    point.vreg = options_.vreg_grid[k];
    point.tail = estimate_tail(total, k);
    point.failures = total.points[k].fail_raw;
    const double p = std::clamp(point.tail.p, 0.0, 1.0);
    point.sigma = (p > 0.0 && p < 1.0) ? sigma_of_tail(p) : 0.0;
    point.array_yield = std::pow(1.0 - p, cells);
    result.points.push_back(point);
  }

  if (options_.mode != YieldMode::ImportanceSampled) {
    // Per-trial array DRV_DS maxima: blocks never span trials, so the trial
    // maximum is the max over its contiguous block range.
    std::vector<double> maxima;
    maxima.reserve(static_cast<std::size_t>(options_.trials));
    for (int t = 0; t < options_.trials; ++t) {
      double worst = 0.0;
      for (std::size_t b = 0; b < blocks_per_trial_; ++b)
        worst = std::max(
            worst,
            blocks[static_cast<std::size_t>(t) * blocks_per_trial_ + b].max_drv);
      maxima.push_back(worst);
    }
    result.array_dist = fit_array_drv_distribution(std::move(maxima));
  }
  return result;
}

YieldResult run_yield(const YieldPlan& plan, Campaign* campaign,
                      const CancelToken* cancel) {
  if (campaign) campaign->bind_sweep(YieldPlan::kSalt, plan.fingerprint());

  struct Slot {
    BlockAccum acc;
    double wall_s = 0.0;
  };
  std::vector<Slot> slots(plan.task_count());

  SweepExecutorOptions exec_options;
  exec_options.threads = plan.options().threads;
  SweepExecutor executor(exec_options);

  const auto key_of = [&plan](std::size_t i) { return plan.key_of(i); };
  const auto body = [&](std::size_t i, int) {
    const auto started = std::chrono::steady_clock::now();
    slots[i].acc = plan.run_block(i, cancel);
    slots[i].wall_s = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - started)
                          .count();
  };

  CampaignTaskCodec codec;
  codec.encode = [&](std::size_t i) { return plan.encode_block(slots[i].acc); };
  codec.decode = [&](std::size_t i, PayloadReader& in) {
    slots[i].acc = plan.decode_block(in);
  };

  const auto sweep_started = std::chrono::steady_clock::now();
  run_campaign(executor, campaign, /*cache=*/nullptr, plan.task_count(),
               key_of, body, codec);

  std::vector<BlockAccum> blocks;
  blocks.reserve(slots.size());
  SweepTelemetry telemetry;
  telemetry.tasks = slots.size();
  telemetry.threads = executor.threads();
  for (Slot& slot : slots) {
    telemetry.cpu_s += slot.wall_s;
    blocks.push_back(std::move(slot.acc));
  }
  telemetry.wall_s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - sweep_started)
                         .count();

  YieldResult result = plan.reduce(blocks);
  result.telemetry = telemetry;
  return result;
}

YieldResult reduce_yield_journal(const YieldPlan& plan,
                                 const std::string& journal_path) {
  const ShardSnapshot snapshot = read_campaign_snapshot(journal_path);
  const auto manifest = snapshot.manifests.find(YieldPlan::kSalt);
  if (manifest == snapshot.manifests.end() ||
      manifest->second != plan.fingerprint())
    throw InvalidArgument(
        "reduce_yield_journal: journal was recorded for a different yield "
        "configuration");

  std::vector<BlockAccum> blocks;
  blocks.reserve(plan.task_count());
  for (std::size_t i = 0; i < plan.task_count(); ++i) {
    const auto task = snapshot.tasks.find(plan.key_of(i));
    if (task == snapshot.tasks.end())
      throw InvalidArgument("reduce_yield_journal: journal is missing task " +
                            std::to_string(i));
    PayloadReader in(task->second.payload);
    blocks.push_back(plan.decode_block(in));
  }
  YieldResult result = plan.reduce(blocks);
  result.telemetry.tasks = plan.task_count();
  return result;
}

std::string yield_summary_line(const YieldPlan& plan,
                               const YieldResult& result) {
  const YieldEngineOptions& opt = plan.options();
  double ess = 0.0;
  double min_tail = std::numeric_limits<double>::infinity();
  for (const YieldPoint& p : result.points) {
    ess = p.tail.ess;  // the overall ESS is shared by every grid point
    if (p.tail.tail_ess > 0.0) min_tail = std::min(min_tail, p.tail.tail_ess);
  }
  if (!std::isfinite(min_tail)) min_tail = 0.0;

  char buf[320];
  const int n = std::snprintf(
      buf, sizeof(buf),
      "mode=%s exact-batch=%s samples=%llu candidates=%llu exact_solves=%llu "
      "ess=%.1f min_tail_ess=%.1f",
      yield_mode_name(opt.mode).c_str(),
      yield_exact_batch_name(resolved_yield_exact_batch()).c_str(),
      static_cast<unsigned long long>(result.samples),
      static_cast<unsigned long long>(result.candidates),
      static_cast<unsigned long long>(result.exact_solves), ess, min_tail);
  std::string line(buf, n > 0 ? static_cast<std::size_t>(n) : 0);
  if (opt.mode == YieldMode::ImportanceSampled) {
    const int m = std::snprintf(buf, sizeof(buf), " shift=%.3f%s",
                                opt.is_shift,
                                plan.pilot().tuned ? " (pilot-tuned)" : "");
    line.append(buf, m > 0 ? static_cast<std::size_t>(m) : 0);
  }
  return line;
}

}  // namespace lpsram
