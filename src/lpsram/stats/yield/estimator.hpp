// Tail-probability estimator accounting for the yield engine.
//
// Every sampling mode of the engine — brute force, surrogate blockade,
// mean-shifted importance sampling — reduces to the same sufficient
// statistics per (vreg) grid point, so one estimator covers all three:
//
//   p_hat = (sum w_i f_i) / (sum w_i)        self-normalized ratio estimate
//   Var   ~ [sum w_i^2 (f_i - p_hat)^2] / (sum w_i)^2     (delta method)
//   ESS   = (sum w_i)^2 / sum w_i^2          effective sample size
//
// where f_i in {0,1} flags DRV_DS > vreg and w_i is the likelihood ratio
// (identically 1 for brute force / blockade, where the formulas collapse to
// the exact binomial p_hat = k/N, Var = p(1-p)/N, ESS = N). Because f is an
// indicator, the variance term needs only three accumulators per grid point
// (raw failure count, sum of w*f, sum of w^2*f) plus two per block (sum of
// w, sum of w^2):
//
//   sum w^2 (f - p)^2 = (1 - 2p) * sum_wf2 + p^2 * sum_w2.
//
// All accumulators are summed in a fixed order (cell order within a block,
// block-index order across blocks), so estimates are bit-identical for any
// thread count and across campaign resumes.
#pragma once

#include <cstdint>
#include <vector>

namespace lpsram {

// Per-(vreg grid point) sufficient statistics of one sample block.
struct TailPointAccum {
  std::uint64_t fail_raw = 0;  // unweighted count of DRV_DS > vreg
  double sum_wf = 0.0;         // sum of w * f
  double sum_wf2 = 0.0;        // sum of w^2 * f

  void add(double w, bool fail) noexcept {
    if (fail) {
      ++fail_raw;
      sum_wf += w;
      sum_wf2 += w * w;
    }
  }
  void merge(const TailPointAccum& other) noexcept {
    fail_raw += other.fail_raw;
    sum_wf += other.sum_wf;
    sum_wf2 += other.sum_wf2;
  }
};

// Sufficient statistics of one sample block across the whole vreg grid.
struct BlockAccum {
  std::uint64_t samples = 0;       // cells sampled in this block
  std::uint64_t candidates = 0;    // cells the surrogate gate flagged
  std::uint64_t exact_solves = 0;  // exact drv_ds evaluations spent
  double sum_w = 0.0;              // sum of importance weights
  double sum_w2 = 0.0;             // sum of squared weights
  double max_drv = 0.0;            // largest DRV_DS seen in the block [V]
  std::vector<TailPointAccum> points;  // one per vreg grid point

  void merge(const BlockAccum& other);
};

// One grid point's estimate, with its variance accounting.
struct TailEstimate {
  double p = 0.0;        // estimated per-cell P(DRV_DS > vreg)
  double ci95 = 0.0;     // 95% CI half-width on p
  double rel_ci = 0.0;   // ci95 / p (0 when p == 0)
  double ess = 0.0;      // effective sample size of the estimator
  // Failure-restricted ESS, (sum w*f)^2 / sum w^2*f: how many equally
  // weighted failure observations the weighted tail evidence is worth. The
  // overall `ess` is maximized by not shifting at all (weights all 1), so it
  // cannot score an importance-sampling shift; this is the quantity the
  // pilot line search maximizes and the one to compare shifts by. 0 with no
  // observed failures.
  double tail_ess = 0.0;
};

// Self-normalized estimate for grid point `k` of the merged accumulator.
// With zero observed failures the CI falls back to the rule of three on the
// effective sample size (p_hat = 0 would otherwise report zero variance).
TailEstimate estimate_tail(const BlockAccum& total, std::size_t k);

// Number of *exact* DRV solves a naive brute-force Monte Carlo (w == 1,
// every sampled cell solved exactly) would need to pin a probability `p`
// down to the same relative 95% CI: N = z^2 (1-p) / (p rel^2).
double brute_force_solves_needed(double p, double rel_ci, double z = 1.96);

// Equivalent one-sided sigma of a tail probability: Phi^-1(1 - p), the
// "sigma" axis of a sigma-to-yield curve. Requires p in (0, 1).
double sigma_of_tail(double p);

}  // namespace lpsram
