#include "lpsram/stats/yield/counter_rng.hpp"

#include <cmath>

#include "lpsram/runtime/parallel.hpp"
#include "lpsram/util/error.hpp"

namespace lpsram {

std::uint64_t counter_u64(std::uint64_t seed, std::uint64_t trial,
                          std::uint64_t cell, std::uint64_t lane) noexcept {
  std::uint64_t h = mix64(seed ^ 0x9e3779b97f4a7c15ULL);
  h = fold_key(h, trial);
  h = fold_key(h, cell);
  h = fold_key(h, lane);
  return mix64(h);
}

double counter_uniform(std::uint64_t seed, std::uint64_t trial,
                       std::uint64_t cell, std::uint64_t lane) noexcept {
  // Top 53 bits, centered on the half-integer grid: (k + 0.5) * 2^-53 lies
  // strictly inside (0, 1) for every k in [0, 2^53).
  const std::uint64_t bits = counter_u64(seed, trial, cell, lane) >> 11;
  return (static_cast<double>(bits) + 0.5) * 0x1p-53;
}

double normal_cdf(double x) noexcept {
  return 0.5 * std::erfc(-x * M_SQRT1_2);
}

double normal_quantile(double p) {
  if (!(p > 0.0 && p < 1.0))
    throw InvalidArgument("normal_quantile: p must be in (0,1)");

  // Acklam's rational approximation (relative error < 1.15e-9 everywhere).
  static constexpr double a[6] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                  -2.759285104469687e+02, 1.383577518672690e+02,
                                  -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[5] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                  -1.556989798598866e+02, 6.680131188771972e+01,
                                  -1.328068155288572e+01};
  static constexpr double c[6] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                  -2.400758277161838e+00, -2.549732539343734e+00,
                                  4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[4] = {7.784695709041462e-03, 3.224671290700398e-01,
                                  2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double plow = 0.02425;

  double x;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - plow) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }

  // One Halley step against the exact CDF pushes the approximation to full
  // double precision: e = Phi(x) - p, u = e / phi(x).
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(0.5 * x * x);
  return x - u / (1.0 + 0.5 * x * u);
}

double counter_normal(std::uint64_t seed, std::uint64_t trial,
                      std::uint64_t cell, std::uint64_t lane) noexcept {
  return normal_quantile(counter_uniform(seed, trial, cell, lane));
}

CellVariation sample_cell_variation(std::uint64_t seed, std::uint64_t trial,
                                    std::uint64_t cell) noexcept {
  CellVariation v;
  for (std::size_t lane = 0; lane < kAllCellTransistors.size(); ++lane)
    v.set(kAllCellTransistors[lane], counter_normal(seed, trial, cell, lane));
  return v;
}

}  // namespace lpsram
