// Array-scale statistical retention-yield engine.
//
// The production question behind the paper's five case-study cells is
// *yield*: P(DRV_DS > Vreg) over millions of variation-sampled cells of a
// 4Kx64 (and beyond) array. A naive Monte Carlo needs ~z^2/(p rel^2) exact
// DRV solves to pin a tail probability p — at p ~ 1e-5 that is >= 10^7
// bisection-with-stability-check solves per grid point, far past what even
// the batched lane kernel can absorb. This engine estimates the same tails
// three runtime-selectable ways, cheapest first:
//
//   * ImportanceSampled — cells are drawn from an equal-weight two-component
//     Gaussian mixture mean-shifted along the surrogate's fitted worst-case
//     direction (and its mirror, covering both stored-bit polarities), with
//     self-normalized likelihood-ratio weights. A few thousand shifted
//     samples resolve tails brute force would need 10^7+ solves for; the
//     estimator reports its effective sample size and 95% CI per grid point.
//   * Blockade — statistical blockade: cells are drawn from the nominal
//     N(0, I) field, the trained DrvSurrogate classifies each one, and only
//     candidates within `blockade_margin` of the lowest grid Vreg get an
//     exact solve. Exact solves scale with the tail mass instead of the
//     array size.
//   * BruteForceExact — every sampled cell is solved exactly through the
//     lane kernel. The oracle the two fast paths are validated against
//     (tests/test_yield.cpp), usable on small arrays only.
//
// All modes share one sampling substrate: the counter-based RNG
// (counter_rng.hpp) keyed by (seed, trial, cell, transistor), so the
// variation field is a pure function of coordinates and results are
// bit-identical at any thread count, across a crash-resumed campaign
// journal, and across a fabric fleet sharding blocks over worker processes.
// The plan exposes exactly the (count, key_of, fingerprint, pure task)
// quadruple that SweepExecutor, run_campaign and fabric::run_fabric consume;
// the manifest fingerprint folds the full configuration, the trained
// surrogate and the resolved cell kernel, so a resumed or fleet-sharded run
// refuses to mix configurations instead of silently blending estimates.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "lpsram/runtime/campaign.hpp"
#include "lpsram/stats/array_stats.hpp"
#include "lpsram/stats/yield/estimator.hpp"
#include "lpsram/util/cancel.hpp"

namespace lpsram {

// Estimator selection; every fast path ships against the brute-force oracle.
enum class YieldMode : std::uint8_t {
  BruteForceExact = 0,
  Blockade = 1,
  ImportanceSampled = 2,
};

std::string yield_mode_name(YieldMode mode);

// ---------------------------------------------------------------------------
// Candidate exact-solve batching (runtime-selectable, per the repo's standing
// oracle pattern): LaneBatch marches surrogate-gated candidates through
// drv_hold_cross_batched in lane-width blocks of *different cells*;
// OneAtATime is the original per-candidate loop, kept as the equivalence
// oracle. The resolved kind is folded into the plan fingerprint so a resumed
// journal or a fabric fleet refuses to mix batch kinds. LaneBatch requires
// the Batched cell kernel — under a Scalar cell-kernel default the engine
// falls back to OneAtATime (the cross engine is built on the batched node
// solver; there is no scalar cross path to be identical to).

enum class YieldExactBatchKind : std::uint8_t {
  Auto = 0,
  OneAtATime = 1,
  LaneBatch = 2,
};

std::string yield_exact_batch_name(YieldExactBatchKind kind);

// Process-wide default; starts as LaneBatch (Auto coerces).
YieldExactBatchKind default_yield_exact_batch() noexcept;
YieldExactBatchKind set_default_yield_exact_batch(
    YieldExactBatchKind kind) noexcept;
// The default with Auto resolved — what run_block will actually do (before
// the cell-kernel fallback above, which is applied per block).
YieldExactBatchKind resolved_yield_exact_batch() noexcept;

class ScopedYieldExactBatchDefault {
 public:
  explicit ScopedYieldExactBatchDefault(YieldExactBatchKind kind)
      : previous_(set_default_yield_exact_batch(kind)) {}
  ~ScopedYieldExactBatchDefault() { set_default_yield_exact_batch(previous_); }

  ScopedYieldExactBatchDefault(const ScopedYieldExactBatchDefault&) = delete;
  ScopedYieldExactBatchDefault& operator=(const ScopedYieldExactBatchDefault&) =
      delete;

 private:
  YieldExactBatchKind previous_;
};

struct YieldEngineOptions {
  // Array geometry: rows x cols cells per sampled array instance.
  std::size_t rows = 4096;
  std::size_t cols = 64;
  // Monte-Carlo array instances (BruteForceExact / Blockade). Total sampled
  // cells = trials * rows * cols; per-trial array maxima feed array_dist.
  int trials = 4;
  // Vreg grid points, ascending [V]. The surrogate gate sits at
  // vreg_grid.front() - blockade_margin.
  std::vector<double> vreg_grid = {0.34, 0.36, 0.38, 0.40};
  std::uint64_t seed = 0x59454C44ULL;  // "YELD"
  YieldMode mode = YieldMode::Blockade;
  // ImportanceSampled: shift magnitude in sigma along the fitted worst-case
  // direction, and the number of shifted cell samples.
  double is_shift = 3.0;
  std::size_t is_samples = 20000;
  // Defensive mixture fraction: the proposal draws this fraction of samples
  // from the *nominal* N(0, I) field, which bounds every likelihood ratio at
  // 1/is_defensive and keeps the self-normalizer (and the effective sample
  // size) stable even at large shifts. 0 disables the defensive component.
  double is_defensive = 0.1;
  // Pilot-tuned shift: when true (ImportanceSampled only), is_shift is
  // replaced at plan-construction time by an ESS-maximizing line search over
  // [pilot_shift_lo, pilot_shift_hi] on a cheap surrogate-only pilot run —
  // common random numbers across candidate shifts, failure-restricted
  // ("tail") ESS per grid point as the score, maximize the minimum over
  // scored grid points. Deterministic: the tuned shift is a pure function of
  // (seed, surrogate, options), so fingerprints, resume and fleet sharding
  // stay sound. All pilot knobs are folded into the fingerprint.
  bool auto_shift = false;
  std::size_t pilot_samples = 4096;
  double pilot_shift_lo = 1.0;
  double pilot_shift_hi = 6.0;
  int pilot_steps = 11;
  // Surrogate safety margin [V]: cells whose surrogate DRV lands within
  // this margin below the lowest grid Vreg (or above it) are solved exactly.
  double blockade_margin = 0.06;
  // Cells per executor task. Blocks never span trials, so per-trial array
  // maxima reduce in index order.
  std::size_t block_cells = 16384;
  Corner corner = Corner::Typical;
  double temp_c = 25.0;
  int threads = 0;  // SweepExecutor worker count (0 = automatic)

  std::size_t cells_per_trial() const noexcept { return rows * cols; }
};

// One sigma-to-yield curve point.
struct YieldPoint {
  double vreg = 0.0;        // grid point [V]
  TailEstimate tail;        // per-cell P(DRV_DS > vreg) with CI + ESS
  double sigma = 0.0;       // equivalent one-sided sigma (0 when p == 0)
  double array_yield = 1.0; // P(no cell fails) = (1 - p)^(rows*cols)
  std::uint64_t failures = 0;  // raw failing samples observed
};

struct YieldResult {
  std::vector<YieldPoint> points;   // one per vreg grid point, in grid order
  std::uint64_t samples = 0;        // cells sampled
  std::uint64_t candidates = 0;     // surrogate-gate hits
  std::uint64_t exact_solves = 0;   // exact drv_ds evaluations spent
  // Distribution of per-trial array DRV_DS maxima (empty in
  // ImportanceSampled mode, where maxima of shifted samples are biased).
  ArrayDrvDistribution array_dist;
  SweepTelemetry telemetry;
};

// Outcome of the constructor-time pilot shift search (auto_shift).
struct PilotShiftResult {
  bool tuned = false;       // false: auto_shift off, or no grid point scored
  double shift = 0.0;       // the shift the plan will run with
  double objective = 0.0;   // min-over-scored-grid-points pilot tail ESS
  std::size_t samples = 0;  // pilot samples drawn
  std::size_t grid_points_scored = 0;  // grid points with >= 1 pilot hit
};

// The deterministic sweep plan: task decomposition, stable keys, manifest
// fingerprint, and the pure per-block sampler. One instance serves the
// single-process runner, the campaign journal and a fabric fleet alike.
class YieldPlan {
 public:
  // Campaign/fabric manifest salt ("YIELD").
  static constexpr std::uint64_t kSalt = 0x5949454C44ULL;

  // `tech` and `surrogate` must outlive the plan. The surrogate must be the
  // same instance (same training options) on every process of a fleet — its
  // fingerprint is folded into the manifest to enforce exactly that.
  YieldPlan(const Technology& tech, const DrvSurrogate& surrogate,
            YieldEngineOptions options);

  std::size_t task_count() const noexcept { return task_count_; }
  std::uint64_t key_of(std::size_t index) const noexcept;
  // Folds options, vreg grid, surrogate and the resolved cell kernel.
  std::uint64_t fingerprint() const;

  // Samples one block of cells and returns its sufficient statistics. Pure:
  // depends only on (index, plan configuration), never on execution order —
  // safe to run on any executor slot, worker process, or replay path.
  BlockAccum run_block(std::size_t index,
                       const CancelToken* cancel = nullptr) const;

  // Journal codec for one block (raw IEEE-754 bits: replay is bit-identical).
  std::vector<std::uint8_t> encode_block(const BlockAccum& block) const;
  BlockAccum decode_block(PayloadReader& in) const;

  // Index-ordered reduction of every block into the final curve.
  YieldResult reduce(const std::vector<BlockAccum>& blocks) const;

  const YieldEngineOptions& options() const noexcept { return options_; }
  // Surrogate-DRV threshold above which a cell gets an exact solve.
  double gate_threshold() const noexcept { return gate_; }
  // Importance-sampling mean shift (and its mirror), in kAllCellTransistors
  // order; zero vectors outside ImportanceSampled mode.
  const std::array<double, 6>& shift() const noexcept { return shift_; }
  // Likelihood ratio phi(v) / q(v) of the two-component mixture proposal at
  // a sampled point (exposed for the estimator property tests).
  double importance_weight(const CellVariation& v) const;
  std::size_t blocks_per_trial() const noexcept { return blocks_per_trial_; }
  // The pilot search outcome ({} unless options.auto_shift tuned the shift).
  const PilotShiftResult& pilot() const noexcept { return pilot_; }

 private:
  void run_pilot_shift_search();
  const Technology* tech_;
  const DrvSurrogate* surrogate_;
  YieldEngineOptions options_;
  std::size_t task_count_ = 0;
  std::size_t blocks_per_trial_ = 0;
  double gate_ = 0.0;
  std::array<double, 6> shift_{};         // mu
  std::array<double, 6> shift_mirror_{};  // mirror(mu)
  double shift_sq_half_ = 0.0;            // |mu|^2 / 2
  std::uint64_t is_seed_ = 0;             // importance-sampling stream seed
  PilotShiftResult pilot_;
};

// Runs the plan through a SweepExecutor (plan.options().threads workers),
// optionally journaled through `campaign` (bit-identical crash resume).
YieldResult run_yield(const YieldPlan& plan, Campaign* campaign = nullptr,
                      const CancelToken* cancel = nullptr);

// Folds a completed campaign/fabric-merged journal into the final result
// without re-running anything (read-only snapshot; every task of the plan
// must be present). This is how a coordinator reduces the merged journal a
// fabric fleet produced with plan.run_block as its task function.
YieldResult reduce_yield_journal(const YieldPlan& plan,
                                 const std::string& journal_path);

// Operator-facing one-line summary: mode, exact-batch kind, samples /
// candidates / exact solves, overall and worst per-point tail ESS, and the
// pilot-tuned shift when one was used. Shared by the yield_analysis example
// and the smoke assertions in tests, so the printed accounting can't drift
// from what the engine measured.
std::string yield_summary_line(const YieldPlan& plan, const YieldResult& result);

}  // namespace lpsram
