#include "lpsram/stats/yield/estimator.hpp"

#include <algorithm>
#include <cmath>

#include "lpsram/stats/yield/counter_rng.hpp"
#include "lpsram/util/error.hpp"

namespace lpsram {

void BlockAccum::merge(const BlockAccum& other) {
  if (points.empty()) points.resize(other.points.size());
  if (points.size() != other.points.size())
    throw InvalidArgument("BlockAccum::merge: mismatched vreg grids");
  samples += other.samples;
  candidates += other.candidates;
  exact_solves += other.exact_solves;
  sum_w += other.sum_w;
  sum_w2 += other.sum_w2;
  max_drv = std::max(max_drv, other.max_drv);
  for (std::size_t k = 0; k < points.size(); ++k) points[k].merge(other.points[k]);
}

TailEstimate estimate_tail(const BlockAccum& total, std::size_t k) {
  if (k >= total.points.size())
    throw InvalidArgument("estimate_tail: grid index out of range");
  if (total.samples == 0 || total.sum_w <= 0.0)
    throw InvalidArgument("estimate_tail: empty accumulator");

  const TailPointAccum& pt = total.points[k];
  TailEstimate est;
  est.ess = total.sum_w * total.sum_w / total.sum_w2;
  est.p = pt.sum_wf / total.sum_w;

  if (pt.fail_raw == 0) {
    // Rule of three on the effective sample size: with zero observed
    // failures, p <= 3/ESS at ~95% confidence.
    est.p = 0.0;
    est.ci95 = 3.0 / est.ess;
    est.rel_ci = 0.0;
    return est;
  }
  est.tail_ess = pt.sum_wf2 > 0.0 ? pt.sum_wf * pt.sum_wf / pt.sum_wf2 : 0.0;

  // Delta-method variance of the self-normalized ratio estimator; the
  // indicator structure reduces sum w^2 (f - p)^2 to two stored sums.
  const double sq_dev =
      (1.0 - 2.0 * est.p) * pt.sum_wf2 + est.p * est.p * total.sum_w2;
  const double var = std::max(0.0, sq_dev) / (total.sum_w * total.sum_w);
  est.ci95 = 1.96 * std::sqrt(var);
  est.rel_ci = est.p > 0.0 ? est.ci95 / est.p : 0.0;
  return est;
}

double brute_force_solves_needed(double p, double rel_ci, double z) {
  if (!(p > 0.0 && p < 1.0))
    throw InvalidArgument("brute_force_solves_needed: p must be in (0,1)");
  if (!(rel_ci > 0.0))
    throw InvalidArgument("brute_force_solves_needed: rel_ci must be > 0");
  return z * z * (1.0 - p) / (p * rel_ci * rel_ci);
}

double sigma_of_tail(double p) {
  if (!(p > 0.0 && p < 1.0))
    throw InvalidArgument("sigma_of_tail: p must be in (0,1)");
  return -normal_quantile(p);
}

}  // namespace lpsram
