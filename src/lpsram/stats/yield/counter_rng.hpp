// Counter-based (stateless) random sampling for the yield engine.
//
// The Monte-Carlo loops in stats/array_stats.cpp originally pulled a
// sequential mt19937_64 stream, which welds the sampled variation field to
// one traversal order: a parallel executor, a resumed campaign, or a fabric
// fleet that visits cells in any other order would silently sample a
// different array. Here every random draw is instead a *pure function* of
// its coordinates,
//
//     u64  = g(seed, trial, cell, lane)
//
// built from the runtime's standard splitmix64 finalizer chain (mix64 /
// fold_key, runtime/parallel.hpp). Lanes 0..5 are the six core-cell
// transistors in kAllCellTransistors order; higher lanes are free for
// auxiliary draws (the importance sampler burns lane 6 on its mixture
// component pick). Gaussians come from a single uniform through the inverse
// normal CDF — no rejection, no paired Box-Muller state — so any subset of
// cells can be sampled in any order, on any worker, and the field is
// bit-identical to a serial sweep. That property is what makes the yield
// engine's thread-count/resume/fabric determinism contracts possible at all.
#pragma once

#include <cstdint>

#include "lpsram/cell/core_cell.hpp"

namespace lpsram {

// Raw 64-bit counter draw: splitmix-mixed fold of (seed, trial, cell, lane).
std::uint64_t counter_u64(std::uint64_t seed, std::uint64_t trial,
                          std::uint64_t cell, std::uint64_t lane) noexcept;

// Uniform draw strictly inside (0, 1) — never 0 or 1, so the inverse-CDF
// transform below is always finite.
double counter_uniform(std::uint64_t seed, std::uint64_t trial,
                       std::uint64_t cell, std::uint64_t lane) noexcept;

// Standard normal CDF, Phi(x) = erfc(-x / sqrt(2)) / 2.
double normal_cdf(double x) noexcept;

// Inverse standard normal CDF on (0, 1): Acklam's rational approximation
// polished with one Halley step against the exact erfc-based CDF (~1 ulp).
// Throws InvalidArgument outside (0, 1).
double normal_quantile(double p);

// N(0, 1) draw at the given counter coordinates.
double counter_normal(std::uint64_t seed, std::uint64_t trial,
                      std::uint64_t cell, std::uint64_t lane) noexcept;

// The six-transistor variation field of one cell, lanes 0..5 in
// kAllCellTransistors order (sigma units, i.i.d. N(0, 1)).
CellVariation sample_cell_variation(std::uint64_t seed, std::uint64_t trial,
                                    std::uint64_t cell) noexcept;

}  // namespace lpsram
