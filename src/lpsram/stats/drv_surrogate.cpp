#include "lpsram/stats/drv_surrogate.hpp"

#include <algorithm>
#include <cmath>
#include <random>

#include "lpsram/runtime/parallel.hpp"
#include "lpsram/util/error.hpp"
#include "lpsram/util/matrix.hpp"

namespace lpsram {
namespace {

std::array<double, 6> to_array(const CellVariation& v) {
  return {v.mpcc1, v.mncc1, v.mpcc2, v.mncc2, v.mncc3, v.mncc4};
}

// Pool-adjacent-violators: least-squares monotone (non-decreasing) fit of
// y over pre-sorted x.
std::vector<double> pava(const std::vector<double>& y) {
  struct Block {
    double sum;
    std::size_t count;
    double mean() const { return sum / static_cast<double>(count); }
  };
  std::vector<Block> blocks;
  for (const double value : y) {
    blocks.push_back({value, 1});
    while (blocks.size() > 1 &&
           blocks[blocks.size() - 2].mean() > blocks.back().mean()) {
      blocks[blocks.size() - 2].sum += blocks.back().sum;
      blocks[blocks.size() - 2].count += blocks.back().count;
      blocks.pop_back();
    }
  }
  std::vector<double> fitted;
  fitted.reserve(y.size());
  for (const Block& b : blocks)
    fitted.insert(fitted.end(), b.count, b.mean());
  return fitted;
}

}  // namespace

DrvSurrogate DrvSurrogate::train(const Technology& tech,
                                 const DrvSurrogateOptions& options) {
  if (options.training_samples < 40)
    throw InvalidArgument("DrvSurrogate: need at least 40 training samples");

  std::mt19937_64 rng(options.seed);
  std::normal_distribution<double> normal(0.0, options.sample_sigma);

  // Training data: random patterns plus the axes (Fig. 4 points) so the
  // per-transistor structure is always represented.
  std::vector<CellVariation> patterns;
  for (const CellTransistor t : kAllCellTransistors) {
    for (const double s : {-6.0, -3.0, 3.0, 6.0}) {
      CellVariation v;
      v.set(t, s);
      patterns.push_back(v);
    }
  }
  // Every fifth random pattern is drawn at double spread so the monotone map
  // has support out to the scores a 256K-cell extreme can reach.
  std::size_t draw = 0;
  while (patterns.size() < static_cast<std::size_t>(options.training_samples)) {
    const double scale = (draw++ % 5 == 4) ? 2.0 : 1.0;
    CellVariation v;
    for (const CellTransistor t : kAllCellTransistors)
      v.set(t, scale * normal(rng));
    patterns.push_back(v);
  }

  std::vector<double> drv1(patterns.size());
  for (std::size_t k = 0; k < patterns.size(); ++k) {
    const CoreCell cell(tech, patterns[k], options.corner);
    drv1[k] = drv_hold(cell, StoredBit::One, options.temp_c);
    // Clamp unretainable sentinels so the regression is not dominated by
    // the (arbitrary) sentinel magnitude.
    drv1[k] = std::min(drv1[k], 1.3);
  }

  // Split train/holdout deterministically.
  const std::size_t holdout =
      static_cast<std::size_t>(patterns.size() * options.holdout_fraction);
  const std::size_t fit_count = patterns.size() - holdout;

  // Least squares: drv ~= b0 + c . v  over the fit subset.
  Matrix normal_eq(7, 7);
  std::vector<double> rhs(7, 0.0);
  for (std::size_t k = 0; k < fit_count; ++k) {
    std::array<double, 7> x{1.0};
    const auto v = to_array(patterns[k]);
    std::copy(v.begin(), v.end(), x.begin() + 1);
    for (int i = 0; i < 7; ++i) {
      for (int j = 0; j < 7; ++j) normal_eq(i, j) += x[i] * x[j];
      rhs[static_cast<std::size_t>(i)] += x[static_cast<std::size_t>(i)] * drv1[k];
    }
  }
  const std::vector<double> beta = solve_linear_system(normal_eq, rhs);

  DrvSurrogate s;
  s.options_ = options;
  for (int i = 0; i < 6; ++i)
    s.weights_[static_cast<std::size_t>(i)] = beta[static_cast<std::size_t>(i + 1)];

  // Isotonic map over the fit subset: sort by score, PAVA the DRVs.
  std::vector<std::size_t> order(fit_count);
  for (std::size_t k = 0; k < fit_count; ++k) order[k] = k;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return s.score(patterns[a]) < s.score(patterns[b]);
  });
  std::vector<double> sorted_scores(fit_count), sorted_drvs(fit_count);
  for (std::size_t k = 0; k < fit_count; ++k) {
    sorted_scores[k] = s.score(patterns[order[k]]);
    sorted_drvs[k] = drv1[order[k]];
  }
  const std::vector<double> monotone = pava(sorted_drvs);
  s.knot_scores_ = std::move(sorted_scores);
  s.knot_drvs_ = monotone;

  // Holdout accuracy.
  double sq = 0.0;
  double worst = 0.0;
  for (std::size_t k = fit_count; k < patterns.size(); ++k) {
    const double err = s.predict_drv1(patterns[k]) - drv1[k];
    sq += err * err;
    worst = std::max(worst, std::fabs(err));
  }
  s.rms_error_ = holdout ? std::sqrt(sq / static_cast<double>(holdout)) : 0.0;
  s.max_error_ = worst;
  return s;
}

std::uint64_t DrvSurrogate::fingerprint() const noexcept {
  std::uint64_t fp = fold_key(0x53555247ULL,  // "SURG"
                              static_cast<std::uint64_t>(options_.training_samples));
  fp = fold_key(fp, key_bits(options_.sample_sigma));
  fp = fold_key(fp, key_bits(options_.holdout_fraction));
  fp = fold_key(fp, options_.seed);
  fp = fold_key(fp, static_cast<std::uint64_t>(options_.corner));
  fp = fold_key(fp, key_bits(options_.temp_c));
  for (const double w : weights_) fp = fold_key(fp, key_bits(w));
  fp = fold_key(fp, knot_scores_.size());
  for (const double k : knot_scores_) fp = fold_key(fp, key_bits(k));
  for (const double k : knot_drvs_) fp = fold_key(fp, key_bits(k));
  fp = fold_key(fp, key_bits(rms_error_));
  fp = fold_key(fp, key_bits(max_error_));
  return fp;
}

double DrvSurrogate::score(const CellVariation& variation) const noexcept {
  const auto v = to_array(variation);
  double u = 0.0;
  for (std::size_t i = 0; i < 6; ++i) u += weights_[i] * v[i];
  return u;
}

double DrvSurrogate::map(double score) const {
  if (knot_scores_.empty()) throw Error("DrvSurrogate: not trained");
  if (score <= knot_scores_.front()) return knot_drvs_.front();
  if (score >= knot_scores_.back()) return knot_drvs_.back();
  const auto it =
      std::upper_bound(knot_scores_.begin(), knot_scores_.end(), score);
  const std::size_t hi = static_cast<std::size_t>(it - knot_scores_.begin());
  const std::size_t lo = hi - 1;
  const double span = knot_scores_[hi] - knot_scores_[lo];
  const double f = span > 0.0 ? (score - knot_scores_[lo]) / span : 0.0;
  return knot_drvs_[lo] + f * (knot_drvs_[hi] - knot_drvs_[lo]);
}

double DrvSurrogate::predict_drv1(const CellVariation& variation) const {
  return map(score(variation));
}

double DrvSurrogate::predict_drv0(const CellVariation& variation) const {
  return map(score(variation.mirrored()));
}

double DrvSurrogate::predict_drv(const CellVariation& variation) const {
  return std::max(predict_drv1(variation), predict_drv0(variation));
}

}  // namespace lpsram
