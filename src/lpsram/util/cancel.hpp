// Cooperative cancellation primitive shared by the solve stack. A watchdog
// (or an operator) flips the token; Newton loops in DcSolver/TransientSolver
// poll it once per iteration and abort the solve as a SolveTimeout, so a
// wedged point is quarantined instead of pinning a worker thread forever.
#pragma once

#include <atomic>

namespace lpsram {

// Thread-safe latch: any thread may call cancel(); solvers poll cancelled().
// Once set it stays set — a token guards one logical unit of work (a solve,
// a task, a campaign slice) and is discarded afterwards.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

}  // namespace lpsram
