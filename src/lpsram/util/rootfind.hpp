// Scalar root finding and bracketing searches used throughout the library:
// DRV bisection (supply voltage where SNM reaches zero), minimal defect
// resistance searches, and VTC node solves.
#pragma once

#include <functional>

namespace lpsram {

// Options shared by the scalar root finders.
struct RootFindOptions {
  double x_tolerance = 1e-9;   // absolute tolerance on the argument
  double f_tolerance = 1e-12;  // absolute tolerance on the function value
  int max_iterations = 200;
};

// Result of a root search.
struct RootResult {
  double x = 0.0;       // argument where the root was found
  double f = 0.0;       // residual function value at x
  int iterations = 0;   // iterations used
  bool converged = false;
};

// Classic bisection on [lo, hi]; requires f(lo) and f(hi) of opposite sign
// (throws InvalidArgument otherwise).
RootResult bisect(const std::function<double(double)>& f, double lo, double hi,
                  const RootFindOptions& opts = {});

// Brent's method: bisection robustness with superlinear convergence.
// Requires a sign change on [lo, hi].
RootResult brent(const std::function<double(double)>& f, double lo, double hi,
                 const RootFindOptions& opts = {});

// Finds the smallest x in [lo, hi] (searched on a log scale) for which
// `predicate(x)` is true, assuming the predicate is monotone (false below some
// threshold, true above). Returns hi * 2 if the predicate is false over the
// whole range (caller treats that as "not found"), and lo if it is true
// everywhere. `rel_tolerance` bounds the ratio hi/lo of the final bracket.
double monotone_threshold_log(const std::function<bool(double)>& predicate,
                              double lo, double hi,
                              double rel_tolerance = 1.02);

}  // namespace lpsram
