#include "lpsram/util/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "lpsram/util/error.hpp"

namespace lpsram {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

void Matrix::set_zero() noexcept {
  std::fill(data_.begin(), data_.end(), 0.0);
}

std::vector<double> Matrix::multiply(const std::vector<double>& x) const {
  if (x.size() != cols_) throw InvalidArgument("Matrix::multiply: size mismatch");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * x[c];
    y[r] = acc;
  }
  return y;
}

namespace {

// Shared LU core: factors `lu` in place with partial pivoting, filling
// `perm`; returns the min/max pivot ratio. Throws ConvergenceError if
// singular. Used by both the owning LuSolver and the borrowing
// solve_linear_system_in_place.
double lu_factor_in_place(Matrix& lu, std::vector<std::size_t>& perm) {
  if (lu.rows() != lu.cols())
    throw InvalidArgument("LuSolver: matrix must be square");
  const std::size_t n = lu.rows();
  perm.resize(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});

  double max_pivot = 0.0;
  double min_pivot = std::numeric_limits<double>::infinity();

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest |a(i,k)| for i >= k.
    std::size_t pivot_row = k;
    double pivot_mag = std::fabs(lu(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double mag = std::fabs(lu(i, k));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = i;
      }
    }
    if (pivot_mag < 1e-300)
      throw ConvergenceError("LuSolver: singular matrix at column " +
                             std::to_string(k));
    if (pivot_row != k) {
      for (std::size_t c = 0; c < n; ++c)
        std::swap(lu(k, c), lu(pivot_row, c));
      std::swap(perm[k], perm[pivot_row]);
    }
    max_pivot = std::max(max_pivot, pivot_mag);
    min_pivot = std::min(min_pivot, pivot_mag);

    const double inv_pivot = 1.0 / lu(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double factor = lu(i, k) * inv_pivot;
      lu(i, k) = factor;
      if (factor == 0.0) continue;
      for (std::size_t c = k + 1; c < n; ++c) lu(i, c) -= factor * lu(k, c);
    }
  }
  return (max_pivot > 0.0) ? min_pivot / max_pivot : 0.0;
}

std::vector<double> lu_substitute(const Matrix& lu,
                                  const std::vector<std::size_t>& perm,
                                  const std::vector<double>& b) {
  const std::size_t n = lu.rows();
  if (b.size() != n) throw InvalidArgument("LuSolver::solve: size mismatch");

  // Apply the row permutation, then forward/backward substitution.
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm[i]];

  for (std::size_t i = 1; i < n; ++i) {
    double acc = x[i];
    for (std::size_t c = 0; c < i; ++c) acc -= lu(i, c) * x[c];
    x[i] = acc;
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t c = ii + 1; c < n; ++c) acc -= lu(ii, c) * x[c];
    x[ii] = acc / lu(ii, ii);
  }
  return x;
}

}  // namespace

LuSolver::LuSolver(Matrix a) : lu_(std::move(a)) {
  pivot_ratio_ = lu_factor_in_place(lu_, perm_);
}

std::vector<double> LuSolver::solve(const std::vector<double>& b) const {
  return lu_substitute(lu_, perm_, b);
}

std::vector<double> solve_linear_system(Matrix a, const std::vector<double>& b) {
  return LuSolver(std::move(a)).solve(b);
}

std::vector<double> solve_linear_system_in_place(Matrix& a,
                                                 const std::vector<double>& b) {
  std::vector<std::size_t> perm;
  lu_factor_in_place(a, perm);
  return lu_substitute(a, perm, b);
}

}  // namespace lpsram
