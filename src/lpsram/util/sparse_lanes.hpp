// Lane-batched sparse LU: K same-pattern factorizations marched in lockstep.
//
// The batched transient engine (spice/batch_transient) solves K defect
// variants of one topology: every lane's Jacobian shares the CSR pattern —
// and hence the pivot order and compiled refactor program — of a single
// analyzed SparseLu. SparseLuLanes adopts that program verbatim and replays
// it over a structure-of-arrays value layout with the *lane* index innermost
// (slot s of lane l lives at s * stride + l), so every program step is a
// unit-stride vector operation across lanes.
//
// Numerics contract: all lane arithmetic is elementwise (multiply then
// subtract, never fused, never reordered within a lane), so each lane's
// factor and solve are bit-identical to running the scalar SparseLu program
// on that lane's values alone — regardless of the SIMD backend or lane
// count. What is shared is the *analysis*: the pivot order comes from the
// representative values the scalar SparseLu was factored with, where a
// standalone solve of some lane might have analyzed (and pivoted) its own
// values. Lanes whose values leave that order's stability region fail the
// same per-lane singularity/drift tests SparseLu::refactor applies and are
// reported for eviction to a scalar fallback rather than re-pivoted in
// place.
#pragma once

#include <cstddef>
#include <vector>

#include "lpsram/util/sparse.hpp"

namespace lpsram {

class SparseLuLanes {
 public:
  SparseLuLanes() = default;

  // Adopts the compiled program of `base` (which must be analyzed — i.e.
  // factor() succeeded at least once) for `lanes` lockstep factorizations.
  // Copies the program, so later re-analysis of `base` does not affect this
  // object; re-bind after any pattern change. Storage is allocated here;
  // refactor()/solve() allocate nothing.
  void bind(const SparseLu& base, std::size_t lanes);

  bool bound() const noexcept { return n_ > 0; }
  std::size_t dimension() const noexcept { return n_; }
  std::size_t lane_count() const noexcept { return lanes_; }
  // Lane stride of every SoA array: lane_count() rounded up to a full
  // native vector width. Callers lay out values as value[slot * stride + l].
  std::size_t stride() const noexcept { return stride_; }
  std::size_t value_slots() const noexcept { return a_nnz_; }

  // Numeric refactor of every lane with active[l] != 0. `avals` holds the
  // A-matrix values SoA (value_slots() * stride() doubles, same slot order
  // as the SparseMatrix the base was analyzed on). On return ok[l] is 1 for
  // active lanes whose factorization passed the scalar acceptance tests
  // (pivot above SparseLu::kSingularFloor and within kPivotDriftLimit of
  // the lane's own first-refactor baseline) and 0 for lanes that must be
  // evicted; inactive lanes keep their previous factor and ok is left
  // untouched. The first successful refactor of each lane records that
  // lane's drift baseline, mirroring SparseLu's analyze-then-refactor
  // baseline capture.
  void refactor(const double* avals, const unsigned char* active,
                unsigned char* ok);

  // Solves A_l x_l = b_l for every lane from the last refactor. `b` and `x`
  // are SoA over the dimension: b[row * stride + l]. Lanes whose last
  // refactor failed produce unspecified (possibly non-finite) values; the
  // caller discards them. When `groups` is non-null it holds stride()/W
  // flags (W = the native vector width) and vector groups whose flag is 0
  // are skipped entirely — their `x` lanes keep whatever they held, also
  // unspecified. Batched callers use this for sparse follow-up solves
  // (iterative refinement) that only a few lanes need.
  void solve(const double* b, double* x,
             const unsigned char* groups = nullptr) const;

  // refactor() fused with the forward (lower-triangular) substitution of
  // the follow-up solve: row i's L entries and pivot are final the moment
  // its elimination finishes, so the forward sweep rides the same
  // register-resident group pass instead of re-traversing L afterwards.
  // Per-lane arithmetic is identical (same ops, same order) to
  // refactor(avals, ...) followed by solve(b, ...), so results stay
  // bit-identical to the unfused pair. Complete with solve_fused_back(x),
  // which finishes the backward substitution from the retained forward
  // state. Lanes and acceptance behave exactly as in refactor().
  void refactor_fused_forward(const double* avals, const double* b,
                              const unsigned char* active, unsigned char* ok);

  // Backward half of the solve started by refactor_fused_forward(); writes
  // the solution SoA into `x` (same contract as solve()'s output). Must be
  // called after refactor_fused_forward and before any other solve() call,
  // which reuses the shared work buffer.
  void solve_fused_back(double* x) const;

 private:
  // Shared elimination body: Fused additionally threads the permuted rhs
  // through the forward substitution as each row's factor completes.
  template <bool Fused>
  void refactor_impl(const double* avals, const double* b,
                     const unsigned char* active, unsigned char* ok);

  std::size_t n_ = 0;
  std::size_t lanes_ = 0;
  std::size_t stride_ = 0;
  std::size_t a_nnz_ = 0;

  // Program copied from the analyzed SparseLu (see sparse.hpp for the op
  // semantics; indices address scalar slots and get scaled by stride_).
  std::vector<std::size_t> perm_;
  std::vector<std::size_t> cperm_;
  std::vector<int> lu_row_ptr_;
  std::vector<int> lu_cols_;
  std::vector<int> diag_slot_;
  std::vector<int> load_run_dst_;
  std::vector<int> load_run_src_;
  std::vector<int> load_run_len_;
  std::vector<int> fill_slots_;
  std::vector<int> row_elim_end_;
  std::vector<int> elim_ls_;
  std::vector<int> elim_k_;
  std::vector<int> elim_mul_end_;
  std::vector<int> mul_dst_;
  std::vector<int> mul_src_;

  // Lane-SoA numeric state.
  std::vector<double> lu_vals_;    // lu slot-major, lane innermost
  std::vector<double> inv_diag_;   // row-major, lane innermost
  mutable std::vector<double> work_;  // solve scratch, row-major SoA
  // Per-lane |pivot| baselines from the lane's first successful refactor.
  std::vector<double> baseline_pivot_mag_;  // row-major, lane innermost
  std::vector<unsigned char> has_baseline_;
  // Vector groups with at least one active lane in the last refactor();
  // wholly-retired groups are skipped by refactor and solve (their values
  // are unspecified per the header contract). Empty until the first
  // refactor, meaning every group is live.
  std::vector<unsigned char> group_active_;
};

}  // namespace lpsram
