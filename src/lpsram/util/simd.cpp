#include "lpsram/util/simd.hpp"

#include <atomic>

namespace lpsram {

namespace {

std::atomic<SimdKind> g_default_simd_kind{SimdKind::Simd};

}  // namespace

SimdKind default_simd_kind() noexcept {
  return g_default_simd_kind.load(std::memory_order_relaxed);
}

SimdKind set_default_simd_kind(SimdKind kind) noexcept {
  if (kind == SimdKind::Auto) kind = SimdKind::Simd;
  return g_default_simd_kind.exchange(kind, std::memory_order_relaxed);
}

SimdKind resolved_simd_kind() noexcept {
  const SimdKind kind = default_simd_kind();
  return kind == SimdKind::Auto ? SimdKind::Simd : kind;
}

std::size_t simd_width() noexcept { return simd::kNativeWidth; }

const char* simd_backend_name() noexcept { return simd::kBackendName; }

}  // namespace lpsram
