#include "lpsram/util/rootfind.hpp"

#include <cmath>

#include "lpsram/util/error.hpp"

namespace lpsram {

RootResult bisect(const std::function<double(double)>& f, double lo, double hi,
                  const RootFindOptions& opts) {
  double flo = f(lo);
  double fhi = f(hi);
  RootResult result;
  if (flo == 0.0) return {lo, 0.0, 0, true};
  if (fhi == 0.0) return {hi, 0.0, 0, true};
  if ((flo > 0) == (fhi > 0))
    throw InvalidArgument("bisect: no sign change on the bracket");

  for (int it = 0; it < opts.max_iterations; ++it) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    result.iterations = it + 1;
    if (std::fabs(fmid) <= opts.f_tolerance || (hi - lo) <= opts.x_tolerance) {
      result.x = mid;
      result.f = fmid;
      result.converged = true;
      return result;
    }
    if ((fmid > 0) == (flo > 0)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
      fhi = fmid;
    }
  }
  result.x = 0.5 * (lo + hi);
  result.f = f(result.x);
  result.converged = false;
  return result;
}

RootResult brent(const std::function<double(double)>& f, double lo, double hi,
                 const RootFindOptions& opts) {
  double a = lo, b = hi;
  double fa = f(a), fb = f(b);
  RootResult result;
  if (fa == 0.0) return {a, 0.0, 0, true};
  if (fb == 0.0) return {b, 0.0, 0, true};
  if ((fa > 0) == (fb > 0))
    throw InvalidArgument("brent: no sign change on the bracket");

  double c = a, fc = fa;
  double d = b - a, e = d;

  for (int it = 0; it < opts.max_iterations; ++it) {
    result.iterations = it + 1;
    if (std::fabs(fc) < std::fabs(fb)) {
      a = b; b = c; c = a;
      fa = fb; fb = fc; fc = fa;
    }
    const double tol = 2.0 * 1e-16 * std::fabs(b) + 0.5 * opts.x_tolerance;
    const double m = 0.5 * (c - b);
    if (std::fabs(m) <= tol || std::fabs(fb) <= opts.f_tolerance) {
      result.x = b;
      result.f = fb;
      result.converged = true;
      return result;
    }
    if (std::fabs(e) < tol || std::fabs(fa) <= std::fabs(fb)) {
      d = m;  // fall back to bisection
      e = m;
    } else {
      double p, q;
      const double s = fb / fa;
      if (a == c) {
        // Secant step.
        p = 2.0 * m * s;
        q = 1.0 - s;
      } else {
        // Inverse quadratic interpolation.
        const double qq = fa / fc;
        const double r = fb / fc;
        p = s * (2.0 * m * qq * (qq - r) - (b - a) * (r - 1.0));
        q = (qq - 1.0) * (r - 1.0) * (s - 1.0);
      }
      if (p > 0) q = -q;
      p = std::fabs(p);
      if (2.0 * p < std::min(3.0 * m * q - std::fabs(tol * q), std::fabs(e * q))) {
        e = d;
        d = p / q;
      } else {
        d = m;
        e = m;
      }
    }
    a = b;
    fa = fb;
    b += (std::fabs(d) > tol) ? d : (m > 0 ? tol : -tol);
    fb = f(b);
    if ((fb > 0) == (fc > 0)) {
      c = a;
      fc = fa;
      d = b - a;
      e = d;
    }
  }
  result.x = b;
  result.f = fb;
  result.converged = false;
  return result;
}

double monotone_threshold_log(const std::function<bool(double)>& predicate,
                              double lo, double hi, double rel_tolerance) {
  if (!(lo > 0.0) || !(hi > lo))
    throw InvalidArgument("monotone_threshold_log: need 0 < lo < hi");
  if (predicate(lo)) return lo;
  if (!predicate(hi)) return hi * 2.0;

  // Invariant: predicate(lo) == false, predicate(hi) == true.
  while (hi / lo > rel_tolerance) {
    const double mid = std::sqrt(lo * hi);
    if (predicate(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace lpsram
