// Portable explicit-SIMD layer: a fixed-width double vector with AVX-512,
// AVX2, NEON and scalar backends selected at compile time, plus the fast
// vectorized exp/log1p pair the device kernels are built on.
//
// Backend selection: AVX-512 (width 8) when the TU is compiled with
// __AVX512F__ && __AVX512DQ__ && __FMA__, else AVX2 (width 4) under
// __AVX2__ && __FMA__ (the root CMakeLists adds the widest flag set a host
// try-run accepts), NEON (width 2) on aarch64, and a plain-array scalar
// backend (width 4) otherwise. -DLPSRAM_SIMD=off defines
// LPSRAM_SIMD_FORCE_SCALAR and pins the scalar backend regardless of the
// ISA, which is how the CI fallback job keeps the portable path honest.
//
// Numerics contract:
//  * vexp / vlog1p are *bit-identical across backends*. Every backend runs
//    the same fma-based expression tree; the scalar backend uses std::fma
//    and std::nearbyint (correctly rounded / round-half-even under the
//    default environment), which is exactly what the AVX2/NEON instructions
//    compute. tests/test_simd.cpp locks both functions to a max-ulp bound
//    against libm (kVexpMaxUlp / kVlog1pMaxUlp below).
//  * vexp clamps its argument to [-700, 700]; outside that range it returns
//    exp(±700) instead of overflowing/underflowing. The device kernels only
//    ever need |u| <= ~45 (softplus switches to its asymptotes at ±35).
//  * vlog / vlog1p require a positive (1 + x) that is a normal double;
//    results outside that domain are unspecified (no traps, no NaN checks).
//  * hsum and gather-based reductions are deterministic per backend but not
//    bit-identical across backends (summation order differs from libm-free
//    lane order only in documentation, not behavior: hsum sums lanes left
//    to right).
//
// The runtime SimdKind switch (Auto/Scalar/Simd, ScopedSimdDefault) follows
// the CellKernelKind pattern from cell/batch_vtc.hpp: kernels that have both
// a scalar-oracle loop and a vectorized path consult resolved_simd_kind()
// so tests and benches can pin either path process-wide.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>

#if !defined(LPSRAM_SIMD_FORCE_SCALAR)
#if defined(__AVX512F__) && defined(__AVX512DQ__) && defined(__FMA__)
#define LPSRAM_SIMD_AVX512 1
#include <immintrin.h>
#elif defined(__AVX2__) && defined(__FMA__)
#define LPSRAM_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__aarch64__) && defined(__ARM_NEON)
#define LPSRAM_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif

namespace lpsram {

// -----------------------------------------------------------------------
// Runtime kernel selection (process-wide default + RAII scope), mirroring
// CellKernelKind / ScopedCellKernelDefault. Simd means "use the vectorized
// expression tree" — on a scalar-backend build that still exercises
// vexp/vlog1p, just one lane at a time semantically.

enum class SimdKind : std::uint8_t {
  Auto = 0,    // resolve to the library default (Simd)
  Scalar = 1,  // force the per-lane scalar oracle (libm exp/log1p)
  Simd = 2,    // force the vectorized kernels
};

SimdKind default_simd_kind() noexcept;
SimdKind set_default_simd_kind(SimdKind kind) noexcept;
// The kind kernels actually dispatch on: Auto resolved to Simd.
SimdKind resolved_simd_kind() noexcept;

class ScopedSimdDefault {
 public:
  explicit ScopedSimdDefault(SimdKind kind) noexcept
      : prev_(set_default_simd_kind(kind)) {}
  ~ScopedSimdDefault() { set_default_simd_kind(prev_); }
  ScopedSimdDefault(const ScopedSimdDefault&) = delete;
  ScopedSimdDefault& operator=(const ScopedSimdDefault&) = delete;

 private:
  SimdKind prev_;
};

// Native vector width / backend name for report contexts and manifests.
std::size_t simd_width() noexcept;
const char* simd_backend_name() noexcept;

namespace simd {

// -----------------------------------------------------------------------
// Generic scalar backend: a plain array of W doubles. Also the portable
// fallback the LPSRAM_SIMD=off build pins for every width.

template <std::size_t W>
struct DoubleVec {
  static constexpr std::size_t kWidth = W;
  double lane[W];

  struct Mask {
    bool lane[W];
  };

  static DoubleVec load(const double* p) noexcept {
    DoubleVec r;
    for (std::size_t i = 0; i < W; ++i) r.lane[i] = p[i];
    return r;
  }
  static DoubleVec broadcast(double v) noexcept {
    DoubleVec r;
    for (std::size_t i = 0; i < W; ++i) r.lane[i] = v;
    return r;
  }
  static DoubleVec zero() noexcept { return broadcast(0.0); }
  void store(double* p) const noexcept {
    for (std::size_t i = 0; i < W; ++i) p[i] = lane[i];
  }
  double extract(std::size_t i) const noexcept { return lane[i]; }

  friend DoubleVec operator+(DoubleVec a, DoubleVec b) noexcept {
    for (std::size_t i = 0; i < W; ++i) a.lane[i] += b.lane[i];
    return a;
  }
  friend DoubleVec operator-(DoubleVec a, DoubleVec b) noexcept {
    for (std::size_t i = 0; i < W; ++i) a.lane[i] -= b.lane[i];
    return a;
  }
  friend DoubleVec operator*(DoubleVec a, DoubleVec b) noexcept {
    for (std::size_t i = 0; i < W; ++i) a.lane[i] *= b.lane[i];
    return a;
  }
  friend DoubleVec operator/(DoubleVec a, DoubleVec b) noexcept {
    for (std::size_t i = 0; i < W; ++i) a.lane[i] /= b.lane[i];
    return a;
  }

  // a * b + c, fused (std::fma is correctly rounded — the same result the
  // AVX2/NEON fused instructions produce).
  static DoubleVec fma(DoubleVec a, DoubleVec b, DoubleVec c) noexcept {
    DoubleVec r;
    for (std::size_t i = 0; i < W; ++i)
      r.lane[i] = std::fma(a.lane[i], b.lane[i], c.lane[i]);
    return r;
  }
  // c - a * b, fused.
  static DoubleVec fnma(DoubleVec a, DoubleVec b, DoubleVec c) noexcept {
    DoubleVec r;
    for (std::size_t i = 0; i < W; ++i)
      r.lane[i] = std::fma(-a.lane[i], b.lane[i], c.lane[i]);
    return r;
  }

  static DoubleVec min(DoubleVec a, DoubleVec b) noexcept {
    for (std::size_t i = 0; i < W; ++i)
      a.lane[i] = b.lane[i] < a.lane[i] ? b.lane[i] : a.lane[i];
    return a;
  }
  static DoubleVec max(DoubleVec a, DoubleVec b) noexcept {
    for (std::size_t i = 0; i < W; ++i)
      a.lane[i] = b.lane[i] > a.lane[i] ? b.lane[i] : a.lane[i];
    return a;
  }
  static DoubleVec abs(DoubleVec a) noexcept {
    for (std::size_t i = 0; i < W; ++i) a.lane[i] = std::fabs(a.lane[i]);
    return a;
  }
  // Exact unary minus (sign-bit flip): neg(+0.0) is -0.0, matching scalar
  // `-x` where `zero() - x` would not.
  static DoubleVec neg(DoubleVec a) noexcept {
    for (std::size_t i = 0; i < W; ++i) a.lane[i] = -a.lane[i];
    return a;
  }
  static DoubleVec sqrt(DoubleVec a) noexcept {
    for (std::size_t i = 0; i < W; ++i) a.lane[i] = std::sqrt(a.lane[i]);
    return a;
  }
  // Round to nearest, ties to even (the default FP environment).
  static DoubleVec round_nearest(DoubleVec a) noexcept {
    for (std::size_t i = 0; i < W; ++i) a.lane[i] = std::nearbyint(a.lane[i]);
    return a;
  }

  static Mask cmp_gt(DoubleVec a, DoubleVec b) noexcept {
    Mask m;
    for (std::size_t i = 0; i < W; ++i) m.lane[i] = a.lane[i] > b.lane[i];
    return m;
  }
  static Mask cmp_lt(DoubleVec a, DoubleVec b) noexcept {
    Mask m;
    for (std::size_t i = 0; i < W; ++i) m.lane[i] = a.lane[i] < b.lane[i];
    return m;
  }
  // m ? a : b per lane.
  static DoubleVec blend(Mask m, DoubleVec a, DoubleVec b) noexcept {
    DoubleVec r;
    for (std::size_t i = 0; i < W; ++i)
      r.lane[i] = m.lane[i] ? a.lane[i] : b.lane[i];
    return r;
  }

  // 2^k for integral-valued k in [-1021, 1023]: exact exponent-field build.
  static DoubleVec exp2i(DoubleVec k) noexcept {
    DoubleVec r;
    for (std::size_t i = 0; i < W; ++i) {
      const std::int64_t ki = static_cast<std::int64_t>(k.lane[i]);
      const std::uint64_t bits = static_cast<std::uint64_t>(ki + 1023) << 52;
      std::memcpy(&r.lane[i], &bits, sizeof(double));
    }
    return r;
  }
  // x = 2^e * m with m in [1, 2), for positive normal x. Exact.
  static void log_split(DoubleVec x, DoubleVec& e, DoubleVec& m) noexcept {
    for (std::size_t i = 0; i < W; ++i) {
      std::uint64_t bits;
      std::memcpy(&bits, &x.lane[i], sizeof(double));
      e.lane[i] =
          static_cast<double>(static_cast<std::int64_t>(bits >> 52) - 1023);
      const std::uint64_t mb =
          (bits & 0x000FFFFFFFFFFFFFULL) | 0x3FF0000000000000ULL;
      std::memcpy(&m.lane[i], &mb, sizeof(double));
    }
  }

  static DoubleVec gather(const double* base, const int* idx) noexcept {
    DoubleVec r;
    for (std::size_t i = 0; i < W; ++i) r.lane[i] = base[idx[i]];
    return r;
  }
  // Left-to-right lane sum (deterministic per backend).
  static double hsum(DoubleVec a) noexcept {
    double s = a.lane[0];
    for (std::size_t i = 1; i < W; ++i) s += a.lane[i];
    return s;
  }
};

#if defined(LPSRAM_SIMD_AVX512)

template <>
struct DoubleVec<8> {
  static constexpr std::size_t kWidth = 8;
  __m512d v;

  using Mask = __mmask8;

  static DoubleVec load(const double* p) noexcept {
    return {_mm512_loadu_pd(p)};
  }
  static DoubleVec broadcast(double x) noexcept { return {_mm512_set1_pd(x)}; }
  static DoubleVec zero() noexcept { return {_mm512_setzero_pd()}; }
  void store(double* p) const noexcept { _mm512_storeu_pd(p, v); }
  double extract(std::size_t i) const noexcept {
    double tmp[8];
    _mm512_storeu_pd(tmp, v);
    return tmp[i];
  }

  friend DoubleVec operator+(DoubleVec a, DoubleVec b) noexcept {
    return {_mm512_add_pd(a.v, b.v)};
  }
  friend DoubleVec operator-(DoubleVec a, DoubleVec b) noexcept {
    return {_mm512_sub_pd(a.v, b.v)};
  }
  friend DoubleVec operator*(DoubleVec a, DoubleVec b) noexcept {
    return {_mm512_mul_pd(a.v, b.v)};
  }
  friend DoubleVec operator/(DoubleVec a, DoubleVec b) noexcept {
    return {_mm512_div_pd(a.v, b.v)};
  }

  static DoubleVec fma(DoubleVec a, DoubleVec b, DoubleVec c) noexcept {
    return {_mm512_fmadd_pd(a.v, b.v, c.v)};
  }
  static DoubleVec fnma(DoubleVec a, DoubleVec b, DoubleVec c) noexcept {
    return {_mm512_fnmadd_pd(a.v, b.v, c.v)};
  }

  static DoubleVec min(DoubleVec a, DoubleVec b) noexcept {
    return {_mm512_min_pd(a.v, b.v)};
  }
  static DoubleVec max(DoubleVec a, DoubleVec b) noexcept {
    return {_mm512_max_pd(a.v, b.v)};
  }
  static DoubleVec abs(DoubleVec a) noexcept {
    return {_mm512_andnot_pd(_mm512_set1_pd(-0.0), a.v)};
  }
  static DoubleVec neg(DoubleVec a) noexcept {
    return {_mm512_xor_pd(_mm512_set1_pd(-0.0), a.v)};
  }
  static DoubleVec sqrt(DoubleVec a) noexcept { return {_mm512_sqrt_pd(a.v)}; }
  static DoubleVec round_nearest(DoubleVec a) noexcept {
    return {_mm512_roundscale_pd(
        a.v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC)};
  }

  static Mask cmp_gt(DoubleVec a, DoubleVec b) noexcept {
    return _mm512_cmp_pd_mask(a.v, b.v, _CMP_GT_OQ);
  }
  static Mask cmp_lt(DoubleVec a, DoubleVec b) noexcept {
    return _mm512_cmp_pd_mask(a.v, b.v, _CMP_LT_OQ);
  }
  static DoubleVec blend(Mask m, DoubleVec a, DoubleVec b) noexcept {
    // mask_blend picks its second vector operand where the mask is set.
    return {_mm512_mask_blend_pd(m, b.v, a.v)};
  }

  static DoubleVec exp2i(DoubleVec k) noexcept {
    // k is integral-valued and small: convert exactly to int64 (AVX-512DQ
    // has the direct conversion AVX2 lacks), then build the exponent field.
    __m512i k64 = _mm512_cvtpd_epi64(k.v);
    k64 = _mm512_add_epi64(k64, _mm512_set1_epi64(1023));
    k64 = _mm512_slli_epi64(k64, 52);
    return {_mm512_castsi512_pd(k64)};
  }
  static void log_split(DoubleVec x, DoubleVec& e, DoubleVec& m) noexcept {
    const __m512i bits = _mm512_castpd_si512(x.v);
    // Positive input contract: the sign bit is clear, so a logical shift
    // isolates the biased exponent.
    const __m512i biased = _mm512_sub_epi64(_mm512_srli_epi64(bits, 52),
                                            _mm512_set1_epi64(1023));
    e.v = _mm512_cvtepi64_pd(biased);
    const __m512i mb = _mm512_or_epi64(
        _mm512_and_epi64(bits, _mm512_set1_epi64(0x000FFFFFFFFFFFFFLL)),
        _mm512_set1_epi64(0x3FF0000000000000LL));
    m.v = _mm512_castsi512_pd(mb);
  }

  static DoubleVec gather(const double* base, const int* idx) noexcept {
    static_assert(sizeof(int) == 4, "i32 gather expects 32-bit int indices");
    const __m256i vi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx));
    return {_mm512_i32gather_pd(vi, base, 8)};
  }
  static double hsum(DoubleVec a) noexcept {
    double tmp[8];
    _mm512_storeu_pd(tmp, a.v);
    double s = tmp[0];
    for (std::size_t i = 1; i < 8; ++i) s += tmp[i];
    return s;
  }
};

inline constexpr std::size_t kNativeWidth = 8;
inline constexpr const char* kBackendName = "avx512";

#elif defined(LPSRAM_SIMD_AVX2)

template <>
struct DoubleVec<4> {
  static constexpr std::size_t kWidth = 4;
  __m256d v;

  using Mask = __m256d;

  static DoubleVec load(const double* p) noexcept {
    return {_mm256_loadu_pd(p)};
  }
  static DoubleVec broadcast(double x) noexcept { return {_mm256_set1_pd(x)}; }
  static DoubleVec zero() noexcept { return {_mm256_setzero_pd()}; }
  void store(double* p) const noexcept { _mm256_storeu_pd(p, v); }
  double extract(std::size_t i) const noexcept {
    double tmp[4];
    _mm256_storeu_pd(tmp, v);
    return tmp[i];
  }

  friend DoubleVec operator+(DoubleVec a, DoubleVec b) noexcept {
    return {_mm256_add_pd(a.v, b.v)};
  }
  friend DoubleVec operator-(DoubleVec a, DoubleVec b) noexcept {
    return {_mm256_sub_pd(a.v, b.v)};
  }
  friend DoubleVec operator*(DoubleVec a, DoubleVec b) noexcept {
    return {_mm256_mul_pd(a.v, b.v)};
  }
  friend DoubleVec operator/(DoubleVec a, DoubleVec b) noexcept {
    return {_mm256_div_pd(a.v, b.v)};
  }

  static DoubleVec fma(DoubleVec a, DoubleVec b, DoubleVec c) noexcept {
    return {_mm256_fmadd_pd(a.v, b.v, c.v)};
  }
  static DoubleVec fnma(DoubleVec a, DoubleVec b, DoubleVec c) noexcept {
    return {_mm256_fnmadd_pd(a.v, b.v, c.v)};
  }

  static DoubleVec min(DoubleVec a, DoubleVec b) noexcept {
    return {_mm256_min_pd(a.v, b.v)};
  }
  static DoubleVec max(DoubleVec a, DoubleVec b) noexcept {
    return {_mm256_max_pd(a.v, b.v)};
  }
  static DoubleVec abs(DoubleVec a) noexcept {
    return {_mm256_andnot_pd(_mm256_set1_pd(-0.0), a.v)};
  }
  static DoubleVec neg(DoubleVec a) noexcept {
    return {_mm256_xor_pd(_mm256_set1_pd(-0.0), a.v)};
  }
  static DoubleVec sqrt(DoubleVec a) noexcept { return {_mm256_sqrt_pd(a.v)}; }
  static DoubleVec round_nearest(DoubleVec a) noexcept {
    return {_mm256_round_pd(a.v,
                            _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC)};
  }

  static Mask cmp_gt(DoubleVec a, DoubleVec b) noexcept {
    return _mm256_cmp_pd(a.v, b.v, _CMP_GT_OQ);
  }
  static Mask cmp_lt(DoubleVec a, DoubleVec b) noexcept {
    return _mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ);
  }
  static DoubleVec blend(Mask m, DoubleVec a, DoubleVec b) noexcept {
    return {_mm256_blendv_pd(b.v, a.v, m)};
  }

  static DoubleVec exp2i(DoubleVec k) noexcept {
    // k is integral-valued and small: narrow through int32 (exact), widen,
    // then build the exponent field directly.
    const __m128i k32 = _mm256_cvtpd_epi32(k.v);
    __m256i k64 = _mm256_cvtepi32_epi64(k32);
    k64 = _mm256_add_epi64(k64, _mm256_set1_epi64x(1023));
    k64 = _mm256_slli_epi64(k64, 52);
    return {_mm256_castsi256_pd(k64)};
  }
  static void log_split(DoubleVec x, DoubleVec& e, DoubleVec& m) noexcept {
    const __m256i bits = _mm256_castpd_si256(x.v);
    // Positive input contract: the sign bit is clear, so a logical shift
    // isolates the biased exponent.
    const __m256i biased = _mm256_sub_epi64(_mm256_srli_epi64(bits, 52),
                                            _mm256_set1_epi64x(1023));
    // int64 -> double via the 1.5*2^52 magic-number trick (AVX2 has no
    // cvtepi64_pd); exact for |value| < 2^51.
    const __m256d magic = _mm256_set1_pd(6755399441055744.0);  // 1.5 * 2^52
    const __m256i shifted =
        _mm256_add_epi64(biased, _mm256_castpd_si256(magic));
    e.v = _mm256_sub_pd(_mm256_castsi256_pd(shifted), magic);
    const __m256i mb = _mm256_or_si256(
        _mm256_and_si256(bits, _mm256_set1_epi64x(0x000FFFFFFFFFFFFFLL)),
        _mm256_set1_epi64x(0x3FF0000000000000LL));
    m.v = _mm256_castsi256_pd(mb);
  }

  static DoubleVec gather(const double* base, const int* idx) noexcept {
    static_assert(sizeof(int) == 4, "i32 gather expects 32-bit int indices");
    const __m128i vi =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx));
    return {_mm256_i32gather_pd(base, vi, 8)};
  }
  static double hsum(DoubleVec a) noexcept {
    double tmp[4];
    _mm256_storeu_pd(tmp, a.v);
    return ((tmp[0] + tmp[1]) + tmp[2]) + tmp[3];
  }
};

inline constexpr std::size_t kNativeWidth = 4;
inline constexpr const char* kBackendName = "avx2";

#elif defined(LPSRAM_SIMD_NEON)

template <>
struct DoubleVec<2> {
  static constexpr std::size_t kWidth = 2;
  float64x2_t v;

  using Mask = uint64x2_t;

  static DoubleVec load(const double* p) noexcept { return {vld1q_f64(p)}; }
  static DoubleVec broadcast(double x) noexcept { return {vdupq_n_f64(x)}; }
  static DoubleVec zero() noexcept { return {vdupq_n_f64(0.0)}; }
  void store(double* p) const noexcept { vst1q_f64(p, v); }
  double extract(std::size_t i) const noexcept {
    double tmp[2];
    vst1q_f64(tmp, v);
    return tmp[i];
  }

  friend DoubleVec operator+(DoubleVec a, DoubleVec b) noexcept {
    return {vaddq_f64(a.v, b.v)};
  }
  friend DoubleVec operator-(DoubleVec a, DoubleVec b) noexcept {
    return {vsubq_f64(a.v, b.v)};
  }
  friend DoubleVec operator*(DoubleVec a, DoubleVec b) noexcept {
    return {vmulq_f64(a.v, b.v)};
  }
  friend DoubleVec operator/(DoubleVec a, DoubleVec b) noexcept {
    return {vdivq_f64(a.v, b.v)};
  }

  static DoubleVec fma(DoubleVec a, DoubleVec b, DoubleVec c) noexcept {
    return {vfmaq_f64(c.v, a.v, b.v)};
  }
  static DoubleVec fnma(DoubleVec a, DoubleVec b, DoubleVec c) noexcept {
    return {vfmsq_f64(c.v, a.v, b.v)};
  }

  static DoubleVec min(DoubleVec a, DoubleVec b) noexcept {
    return {vminq_f64(a.v, b.v)};
  }
  static DoubleVec max(DoubleVec a, DoubleVec b) noexcept {
    return {vmaxq_f64(a.v, b.v)};
  }
  static DoubleVec abs(DoubleVec a) noexcept { return {vabsq_f64(a.v)}; }
  static DoubleVec neg(DoubleVec a) noexcept { return {vnegq_f64(a.v)}; }
  static DoubleVec sqrt(DoubleVec a) noexcept { return {vsqrtq_f64(a.v)}; }
  static DoubleVec round_nearest(DoubleVec a) noexcept {
    return {vrndnq_f64(a.v)};
  }

  static Mask cmp_gt(DoubleVec a, DoubleVec b) noexcept {
    return vcgtq_f64(a.v, b.v);
  }
  static Mask cmp_lt(DoubleVec a, DoubleVec b) noexcept {
    return vcltq_f64(a.v, b.v);
  }
  static DoubleVec blend(Mask m, DoubleVec a, DoubleVec b) noexcept {
    return {vbslq_f64(m, a.v, b.v)};
  }

  static DoubleVec exp2i(DoubleVec k) noexcept {
    int64x2_t k64 = vcvtnq_s64_f64(k.v);
    k64 = vaddq_s64(k64, vdupq_n_s64(1023));
    k64 = vshlq_n_s64(k64, 52);
    return {vreinterpretq_f64_s64(k64)};
  }
  static void log_split(DoubleVec x, DoubleVec& e, DoubleVec& m) noexcept {
    const uint64x2_t bits = vreinterpretq_u64_f64(x.v);
    const int64x2_t biased = vsubq_s64(
        vreinterpretq_s64_u64(vshrq_n_u64(bits, 52)), vdupq_n_s64(1023));
    e.v = vcvtq_f64_s64(biased);
    const uint64x2_t mb =
        vorrq_u64(vandq_u64(bits, vdupq_n_u64(0x000FFFFFFFFFFFFFULL)),
                  vdupq_n_u64(0x3FF0000000000000ULL));
    m.v = vreinterpretq_f64_u64(mb);
  }

  static DoubleVec gather(const double* base, const int* idx) noexcept {
    double tmp[2] = {base[idx[0]], base[idx[1]]};
    return {vld1q_f64(tmp)};
  }
  static double hsum(DoubleVec a) noexcept {
    return vgetq_lane_f64(a.v, 0) + vgetq_lane_f64(a.v, 1);
  }
};

inline constexpr std::size_t kNativeWidth = 2;
inline constexpr const char* kBackendName = "neon";

#else

inline constexpr std::size_t kNativeWidth = 4;
inline constexpr const char* kBackendName = "scalar";

#endif

using Vec = DoubleVec<kNativeWidth>;

// Smallest multiple of the native width >= n — batch padding helper.
constexpr std::size_t round_up_lanes(std::size_t n) noexcept {
  return (n + kNativeWidth - 1) / kNativeWidth * kNativeWidth;
}

// -----------------------------------------------------------------------
// Vectorized exp / log / log1p. One algorithm shared by every backend via
// the DoubleVec interface; all operations are either exact (bit ops,
// multiplies by powers of two) or single-rounded (fma), so results are
// bit-identical across backends.

// Cody–Waite two-part ln(2) split (the cephes pair): kLn2Hi has enough
// trailing mantissa zeros that k * kLn2Hi is exact for |k| < 2^11.
inline constexpr double kLog2E = 1.4426950408889634074;
inline constexpr double kLn2Hi = 6.93145751953125e-1;
inline constexpr double kLn2Lo = 1.42860682030941723212e-6;
inline constexpr double kSqrt2 = 1.41421356237309504880;
// vexp clamps here: keeps 2^k inside the normal exponent range with margin.
inline constexpr double kVexpClamp = 700.0;

// Max-ulp contracts tests pin vexp / vlog1p against libm. Measured on the
// AVX2 and scalar backends (identical bits): vexp <= 1 ulp, vlog1p <= 3 ulp
// over the tested ranges; the contract leaves headroom for other libms.
inline constexpr double kVexpMaxUlp = 4.0;
inline constexpr double kVlog1pMaxUlp = 4.0;

template <class V>
inline V vexp(V x) noexcept {
  const V clamp = V::broadcast(kVexpClamp);
  x = V::min(clamp, V::max(V::broadcast(-kVexpClamp), x));
  // Range reduction: x = k*ln2 + r, r in [-ln2/2, ln2/2].
  const V k = V::round_nearest(x * V::broadcast(kLog2E));
  V r = V::fnma(k, V::broadcast(kLn2Hi), x);
  r = V::fnma(k, V::broadcast(kLn2Lo), r);
  // e^r by degree-13 Taylor (truncation < 2^-52 over the reduced range),
  // Horner with fused steps.
  V p = V::broadcast(1.0 / 6227020800.0);               // 1/13!
  p = V::fma(p, r, V::broadcast(1.0 / 479001600.0));    // 1/12!
  p = V::fma(p, r, V::broadcast(1.0 / 39916800.0));     // 1/11!
  p = V::fma(p, r, V::broadcast(1.0 / 3628800.0));      // 1/10!
  p = V::fma(p, r, V::broadcast(1.0 / 362880.0));       // 1/9!
  p = V::fma(p, r, V::broadcast(1.0 / 40320.0));        // 1/8!
  p = V::fma(p, r, V::broadcast(1.0 / 5040.0));         // 1/7!
  p = V::fma(p, r, V::broadcast(1.0 / 720.0));          // 1/6!
  p = V::fma(p, r, V::broadcast(1.0 / 120.0));          // 1/5!
  p = V::fma(p, r, V::broadcast(1.0 / 24.0));           // 1/4!
  p = V::fma(p, r, V::broadcast(1.0 / 6.0));            // 1/3!
  p = V::fma(p, r, V::broadcast(0.5));                  // 1/2!
  p = V::fma(p, r, V::broadcast(1.0));                  // 1/1!
  p = V::fma(p, r, V::broadcast(1.0));                  // 1/0!
  // Scale by 2^k — exact (no overflow/underflow thanks to the clamp).
  return p * V::exp2i(k);
}

// Natural log of positive normal x. Decompose x = 2^e * m, renormalize m
// into (sqrt2/2, sqrt2], then log(m) = 2 atanh(t) with t = (m-1)/(m+1)
// (|t| <= 0.1716) by an odd series in t^2.
template <class V>
inline V vlog(V x) noexcept {
  V e, m;
  V::log_split(x, e, m);
  const auto big = V::cmp_gt(m, V::broadcast(kSqrt2));
  m = V::blend(big, m * V::broadcast(0.5), m);
  e = V::blend(big, e + V::broadcast(1.0), e);
  const V one = V::broadcast(1.0);
  const V t = (m - one) / (m + one);
  const V t2 = t * t;
  // atanh series: sum t^(2n) / (2n+1), n = 0..10 (truncation < 2^-53
  // relative at |t| = 0.1716).
  V p = V::broadcast(1.0 / 21.0);
  p = V::fma(p, t2, V::broadcast(1.0 / 19.0));
  p = V::fma(p, t2, V::broadcast(1.0 / 17.0));
  p = V::fma(p, t2, V::broadcast(1.0 / 15.0));
  p = V::fma(p, t2, V::broadcast(1.0 / 13.0));
  p = V::fma(p, t2, V::broadcast(1.0 / 11.0));
  p = V::fma(p, t2, V::broadcast(1.0 / 9.0));
  p = V::fma(p, t2, V::broadcast(1.0 / 7.0));
  p = V::fma(p, t2, V::broadcast(1.0 / 5.0));
  p = V::fma(p, t2, V::broadcast(1.0 / 3.0));
  p = V::fma(p, t2, one);
  const V log_m = (t + t) * p;
  // e*ln2_hi is exact; fold the low part into the small term first.
  return V::fma(e, V::broadcast(kLn2Hi),
                V::fma(e, V::broadcast(kLn2Lo), log_m));
}

// log(1 + x) for x > -1 with 1 + x a positive normal: log(z) plus the exact
// additive correction (x - (z - 1)) / z for the rounding in z = 1 + x.
// When z rounds to exactly 1 the correction alone is x and vlog returns 0,
// so the tiny-|x| limit needs no special case.
template <class V>
inline V vlog1p(V x) noexcept {
  const V one = V::broadcast(1.0);
  const V z = x + one;
  const V c = (x - (z - one)) / z;
  return vlog(z) + c;
}

// Vector softplus/sigmoid pair with the exact branch semantics of
// mosfet_math::softplus_eval, expressed as lane blends. The asymptote
// cutoffs (±35) match the scalar kernel so Simd-vs-Scalar differences stay
// at the ulp level of vexp/vlog1p.
template <class V>
struct SoftplusEvalV {
  V f;  // softplus(u)
  V d;  // sigmoid(u)
};

template <class V>
inline SoftplusEvalV<V> softplus_eval_v(V u) noexcept {
  const V one = V::broadcast(1.0);
  const V e = vexp(u);
  const V f_mid = vlog1p(e);
  const V d_mid = e / (one + e);
  const auto hi = V::cmp_gt(u, V::broadcast(35.0));
  const auto lo = V::cmp_lt(u, V::broadcast(-35.0));
  SoftplusEvalV<V> r;
  r.f = V::blend(hi, u, V::blend(lo, e, f_mid));
  r.d = V::blend(hi, one, V::blend(lo, e, d_mid));
  return r;
}

// Vector smooth-|v| pair (mosfet_math::smooth_abs / smooth_abs_d), written
// mul+add (not fused) to match the scalar expression under
// -ffp-contract=off.
template <class V>
inline V smooth_abs_v(V v) noexcept {
  const V eps2 = V::broadcast(1e-3 * 1e-3);
  return V::sqrt(v * v + eps2);
}
template <class V>
inline V smooth_abs_d_v(V v) noexcept {
  return v / smooth_abs_v(v);
}

}  // namespace simd
}  // namespace lpsram
