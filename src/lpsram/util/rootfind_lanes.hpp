// Lockstep multi-root solver: N independent bracketed scalar roots advanced
// together, one batched residual evaluation per round, with converged lanes
// retiring from the active set.
//
// The cell-analysis hot path (cell/batch_vtc) solves many structurally
// identical node inversions whose residuals share expensive subterms; the
// scalar path pays one Brent per root with a std::function call per probe.
// Here the callback is invoked once per *round* over a compacted active-lane
// set, so the per-eval dispatch cost is amortized across lanes and the
// callee can share per-batch constants.
//
// Per lane the iteration is safeguarded Newton (rtsafe): a Newton step from
// the last evaluation is taken when it lands strictly inside the current
// bracket, otherwise the lane bisects; late rounds force bisection so worst-
// case convergence is the bisection bound. Lanes retire when the residual
// magnitude drops below f_tolerance or the bracket collapses below the
// Brent-style tolerance 2*eps*|x| + 0.5*x_tolerance.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace lpsram {

struct LaneRootOptions {
  double x_tolerance = 1e-9;   // absolute tolerance on the argument
  double f_tolerance = 1e-12;  // absolute tolerance on the residual
  int max_rounds = 120;
  // Residual orientation on the bracket: true means f(lo) < 0 < f(hi)
  // (monotone-increasing node residuals), false means f(lo) > 0 > f(hi)
  // (the fixed-point map residual f(x) = T(x) - x through its first
  // crossing). Only the sign convention differs; no monotonicity inside the
  // bracket is assumed.
  bool increasing = true;
};

struct LaneRootStats {
  int rounds = 0;               // batched evaluation rounds
  std::size_t evaluations = 0;  // total per-lane residual evaluations
};

// Batched residual: evaluate f (and df/dx into `df`) at x[i] for the m
// compacted active lanes lanes[0..m), writing position i of f/df for lane
// lanes[i]. `df` entries may be left 0 where no derivative is available —
// such lanes simply bisect.
//
// SIMD padding contract: the solver pads `lanes` and `x` out to
// simd::round_up_lanes(m) by replicating the last active entry, and `f`/`df`
// are writable through that padded length. A vectorized callback can
// therefore march full native-width blocks — reading valid lane indices and
// probe values in the tail — without a scalar remainder loop; the solver
// ignores results at positions >= m.
using LaneResidualFn =
    std::function<void(const std::size_t* lanes, const double* x, double* f,
                       double* df, std::size_t m)>;

// Reusable scratch for solve_bracketed_lanes; a caller solving in a loop
// (every VTC inversion of a sweep) passes the same workspace to keep the
// hot path allocation-free after the first solve.
struct LaneRootWorkspace {
  std::vector<std::size_t> active;
  std::vector<double> a, b, x, f, df;    // per-lane persistent state
  std::vector<double> xc, fc, dfc;       // compacted per-round buffers
  std::vector<char> has_eval;
};

// Solves the n bracketed roots f_i(x) = 0, x in (lo[i], hi[i]), writing
// root[i]. The brackets are trusted (endpoints are not evaluated): callers
// guarantee the sign change, e.g. from residual monotonicity. Lanes that
// exhaust max_rounds keep their last iterate — with the forced-bisection
// safeguard that is within the bisection bound of the root.
LaneRootStats solve_bracketed_lanes(const LaneResidualFn& fn, std::size_t n,
                                    const double* lo, const double* hi,
                                    double* root,
                                    const LaneRootOptions& opts = {},
                                    LaneRootWorkspace* workspace = nullptr);

}  // namespace lpsram
