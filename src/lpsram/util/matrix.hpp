// Small dense linear-algebra kernel used by the MNA circuit solver.
//
// Circuit matrices in this project are tiny (tens of nodes), so a dense LU
// with partial pivoting is both simple and fast; no sparse machinery needed.
#pragma once

#include <cstddef>
#include <vector>

namespace lpsram {

// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  // Sets every entry to zero, keeping the shape.
  void set_zero() noexcept;

  // Matrix-vector product; `x.size()` must equal `cols()`.
  std::vector<double> multiply(const std::vector<double>& x) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// In-place LU factorization with partial pivoting and the solve that uses it.
// Factoring a singular (or numerically singular) matrix throws
// ConvergenceError.
class LuSolver {
 public:
  // Factorizes `a` (copied). Throws ConvergenceError if singular.
  explicit LuSolver(Matrix a);

  // Solves A x = b for x. `b.size()` must equal the matrix dimension.
  std::vector<double> solve(const std::vector<double>& b) const;

  // Reciprocal condition estimate based on pivot magnitudes (cheap heuristic).
  double pivot_ratio() const noexcept { return pivot_ratio_; }

 private:
  Matrix lu_;
  std::vector<std::size_t> perm_;
  double pivot_ratio_ = 0.0;
};

// Convenience wrapper: solves A x = b in one call (copies `a`).
std::vector<double> solve_linear_system(Matrix a, const std::vector<double>& b);

// Borrowing variant: factors `a` in place (destroying its contents) instead
// of copying the full matrix — what the Newton loops use, since they rebuild
// the Jacobian next iteration anyway. Throws ConvergenceError if singular.
std::vector<double> solve_linear_system_in_place(Matrix& a,
                                                 const std::vector<double>& b);

}  // namespace lpsram
