#include "lpsram/util/sparse_lanes.hpp"

#include <cmath>
#include <cstring>

#include "lpsram/util/error.hpp"
#include "lpsram/util/simd.hpp"

namespace lpsram {

void SparseLuLanes::bind(const SparseLu& base, std::size_t lanes) {
  if (!base.analyzed())
    throw InvalidArgument("SparseLuLanes: base SparseLu is not analyzed");
  if (lanes == 0) throw InvalidArgument("SparseLuLanes: zero lanes");

  n_ = base.n_;
  lanes_ = lanes;
  stride_ = simd::round_up_lanes(lanes);
  a_nnz_ = base.a_cols_.size();

  perm_ = base.perm_;
  cperm_ = base.cperm_;
  lu_row_ptr_ = base.lu_row_ptr_;
  lu_cols_ = base.lu_cols_;
  diag_slot_ = base.diag_slot_;
  load_run_dst_ = base.load_run_dst_;
  load_run_src_ = base.load_run_src_;
  load_run_len_ = base.load_run_len_;
  fill_slots_ = base.fill_slots_;
  row_elim_end_ = base.row_elim_end_;
  elim_ls_ = base.elim_ls_;
  elim_k_ = base.elim_k_;
  elim_mul_end_ = base.elim_mul_end_;
  mul_dst_ = base.mul_dst_;
  mul_src_ = base.mul_src_;

  lu_vals_.assign(lu_cols_.size() * stride_, 0.0);
  inv_diag_.assign(n_ * stride_, 0.0);
  work_.assign(n_ * stride_, 0.0);
  baseline_pivot_mag_.assign(n_ * stride_, 0.0);
  has_baseline_.assign(stride_, 0);
}

void SparseLuLanes::refactor(const double* avals, const unsigned char* active,
                             unsigned char* ok) {
  refactor_impl<false>(avals, nullptr, active, ok);
}

void SparseLuLanes::refactor_fused_forward(const double* avals,
                                           const double* b,
                                           const unsigned char* active,
                                           unsigned char* ok) {
  refactor_impl<true>(avals, b, active, ok);
}

template <bool Fused>
void SparseLuLanes::refactor_impl(const double* avals, const double* b,
                                  const unsigned char* active,
                                  unsigned char* ok) {
  using V = simd::Vec;
  constexpr std::size_t W = simd::kNativeWidth;
  const std::size_t st = stride_;

  for (std::size_t l = 0; l < lanes_; ++l)
    if (active[l]) ok[l] = 1;

  // Vector groups with no active lane skip the elimination (and the
  // following solves): their factors are stale either way — the load phase
  // below overwrites every lane — and batched callers retire lanes
  // monotonically, so the saved work is pure tail overhead.
  group_active_.assign(st / W, 0);
  for (std::size_t l = 0; l < lanes_; ++l)
    if (active[l]) group_active_[l / W] = 1;

  // Load phase: a scalar (dst, src, len) run is a contiguous block of
  // len * stride doubles in the SoA layout, so with every group live the
  // whole load stays memcpy. Lanes not being refactored get overwritten too
  // — callers only refactor when every lane they still care about has fresh
  // values, and retired lanes' solves are discarded. Once whole groups have
  // retired, the copy walks slot by slot and moves only the live groups'
  // W-lane chunks: the full-stride memcpy would otherwise keep paying for
  // dead lanes every refactor of the batch's tail.
  bool all_live = true;
  for (std::size_t g = 0; g < st / W; ++g)
    all_live = all_live && group_active_[g] != 0;
  if (all_live) {
    for (std::size_t r = 0; r < load_run_dst_.size(); ++r)
      std::memcpy(&lu_vals_[static_cast<std::size_t>(load_run_dst_[r]) * st],
                  &avals[static_cast<std::size_t>(load_run_src_[r]) * st],
                  static_cast<std::size_t>(load_run_len_[r]) * st *
                      sizeof(double));
    for (const int s : fill_slots_)
      std::memset(&lu_vals_[static_cast<std::size_t>(s) * st], 0,
                  st * sizeof(double));
  } else {
    for (std::size_t r = 0; r < load_run_dst_.size(); ++r) {
      const std::size_t dst0 = static_cast<std::size_t>(load_run_dst_[r]) * st;
      const std::size_t src0 = static_cast<std::size_t>(load_run_src_[r]) * st;
      const std::size_t len = static_cast<std::size_t>(load_run_len_[r]);
      for (std::size_t k = 0; k < len; ++k)
        for (std::size_t g = 0; g < st; g += W)
          if (group_active_[g / W])
            std::memcpy(&lu_vals_[dst0 + k * st + g], &avals[src0 + k * st + g],
                        W * sizeof(double));
    }
    for (const int s : fill_slots_)
      for (std::size_t g = 0; g < st; g += W)
        if (group_active_[g / W])
          std::memset(&lu_vals_[static_cast<std::size_t>(s) * st + g], 0,
                      W * sizeof(double));
  }

  // Elimination, one live vector group at a time: each group replays the
  // entire compiled program with the lane dimension held in registers, so
  // the per-step factor never round-trips through memory and the group
  // liveness branch is hoisted out of the op stream. Lanes are mutually
  // independent and every vector op is elementwise (multiply then subtract,
  // never fused), so per-lane arithmetic order — and hence every lane's
  // factor — is bit-identical to the scalar SparseLu program no matter how
  // groups are ordered. The pivot reciprocal uses vector division, which
  // IEEE 754 requires to be correctly rounded exactly like scalar division.
  for (std::size_t g = 0; g < st; g += W) {
    if (!group_active_[g / W]) continue;
    int e = 0;
    for (std::size_t i = 0; i < n_; ++i) {
      if constexpr (Fused) {
        // Forward substitution for row i - 1: its L entries and the w rows
        // it references are final once that row's elimination is done, so
        // the sweep stays one row behind the elimination. (Row i - 1 is
        // finished here; row n - 1 is handled after the loop.)
        if (i > 0) {
          const std::size_t fr = i - 1;
          double* wi = &work_[fr * st + g];
          V acc = V::load(&b[perm_[fr] * st + g]);
          const int s_end = diag_slot_[fr];
          for (int s = lu_row_ptr_[fr]; s < s_end; ++s)
            acc =
                acc -
                V::load(&lu_vals_[static_cast<std::size_t>(s) * st + g]) *
                    V::load(&work_[static_cast<std::size_t>(lu_cols_[
                                       static_cast<std::size_t>(s)]) *
                                       st +
                                   g]);
          acc.store(wi);
        }
      }
      for (const int e_end = row_elim_end_[i]; e < e_end; ++e) {
        double* ls = &lu_vals_[static_cast<std::size_t>(elim_ls_[e]) * st + g];
        const V f =
            V::load(ls) *
            V::load(&inv_diag_[static_cast<std::size_t>(elim_k_[e]) * st + g]);
        f.store(ls);
        for (int m = e == 0 ? 0 : elim_mul_end_[e - 1]; m < elim_mul_end_[e];
             ++m) {
          double* dst =
              &lu_vals_[static_cast<std::size_t>(mul_dst_[m]) * st + g];
          const V d =
              V::load(dst) -
              f * V::load(
                      &lu_vals_[static_cast<std::size_t>(mul_src_[m]) * st + g]);
          d.store(dst);
        }
      }

      const double* pivot =
          &lu_vals_[static_cast<std::size_t>(diag_slot_[i]) * st + g];
      double* invd = &inv_diag_[i * st + g];
      double* base = &baseline_pivot_mag_[i * st + g];
      (V::broadcast(1.0) / V::load(pivot)).store(invd);
      for (std::size_t l = g; l < g + W; ++l) {
        if (l >= lanes_) {
          // Padding lanes beyond lanes_: keep them finite so vector ops over
          // the full stride never spread NaN into sanitizer traps (the
          // vector divide above may have produced inf/NaN from their
          // unspecified pivots; it is discarded here before any use).
          invd[l - g] = 1.0;
          continue;
        }
        const double mag = std::fabs(pivot[l - g]);
        if (active[l]) {
          // Same acceptance tests as the scalar refactor: hard singularity
          // floor always, drift against the lane's own first-refactor
          // baseline once one exists (SparseLu's strict mode).
          if (!(mag >= SparseLu::kSingularFloor) ||
              (has_baseline_[l] &&
               mag * SparseLu::kPivotDriftLimit < base[l - g]))
            ok[l] = 0;
        }
        if (!has_baseline_[l]) base[l - g] = mag;
      }
    }
    if constexpr (Fused) {
      if (n_ > 0) {
        const std::size_t fr = n_ - 1;
        double* wi = &work_[fr * st + g];
        V acc = V::load(&b[perm_[fr] * st + g]);
        const int s_end = diag_slot_[fr];
        for (int s = lu_row_ptr_[fr]; s < s_end; ++s)
          acc = acc -
                V::load(&lu_vals_[static_cast<std::size_t>(s) * st + g]) *
                    V::load(&work_[static_cast<std::size_t>(
                                       lu_cols_[static_cast<std::size_t>(s)]) *
                                       st +
                                   g]);
        acc.store(wi);
      }
    }
  }
  for (std::size_t l = 0; l < lanes_; ++l)
    if (active[l] && ok[l]) has_baseline_[l] = 1;
}

void SparseLuLanes::solve_fused_back(double* x) const {
  using V = simd::Vec;
  constexpr std::size_t W = simd::kNativeWidth;
  const std::size_t st = stride_;
  std::vector<double>& w = work_;
  // Backward substitution from the forward state refactor_fused_forward
  // left in the work buffer; op-for-op the second half of solve(), so each
  // lane's solution is bit-identical to the unfused pair.
  for (std::size_t g = 0; g < st; g += W) {
    if (!group_active_.empty() && !group_active_[g / W]) continue;
    for (std::size_t ii = n_; ii-- > 0;) {
      double* wi = &w[ii * st + g];
      V acc = V::load(wi);
      const int s_end = lu_row_ptr_[ii + 1];
      for (int s = diag_slot_[ii] + 1; s < s_end; ++s)
        acc = acc -
              V::load(&lu_vals_[static_cast<std::size_t>(s) * st + g]) *
                  V::load(&w[static_cast<std::size_t>(
                                 lu_cols_[static_cast<std::size_t>(s)]) *
                                 st +
                             g]);
      acc = acc * V::load(&inv_diag_[ii * st + g]);
      acc.store(wi);
    }
  }
  bool all_live = true;
  if (!group_active_.empty())
    for (std::size_t g = 0; g < st / W; ++g)
      all_live = all_live && group_active_[g] != 0;
  if (all_live) {
    for (std::size_t j = 0; j < n_; ++j)
      std::memcpy(&x[cperm_[j] * st], &w[j * st], st * sizeof(double));
  } else {
    for (std::size_t j = 0; j < n_; ++j)
      for (std::size_t g = 0; g < st; g += W)
        if (group_active_[g / W])
          std::memcpy(&x[cperm_[j] * st + g], &w[j * st + g],
                      W * sizeof(double));
  }
}

void SparseLuLanes::solve(const double* b, double* x,
                          const unsigned char* groups) const {
  using V = simd::Vec;
  constexpr std::size_t W = simd::kNativeWidth;
  const std::size_t st = stride_;
  std::vector<double>& w = work_;
  // Groups the last refactor() marked inactive produce unspecified values
  // anyway (header contract), so the substitution skips them — as does any
  // group the caller's mask retires; before any refactor every group counts
  // as active.
  const auto live = [&](std::size_t l) {
    return (groups == nullptr || groups[l / W] != 0) &&
           (group_active_.empty() || group_active_[l / W] != 0);
  };
  bool all_live = true;
  for (std::size_t g = 0; g < st; g += W) all_live = all_live && live(g);

  // Permutation copies go through memcpy when every group is live (the
  // common full-batch case); otherwise only live groups are moved.
  if (all_live) {
    for (std::size_t i = 0; i < n_; ++i)
      std::memcpy(&w[i * st], &b[perm_[i] * st], st * sizeof(double));
  } else {
    for (std::size_t i = 0; i < n_; ++i)
      for (std::size_t g = 0; g < st; g += W)
        if (live(g))
          std::memcpy(&w[i * st + g], &b[perm_[i] * st + g],
                      W * sizeof(double));
  }

  // Substitutions run one live group at a time (same rationale as the
  // refactor): each row's partial sum lives in a register across its slots
  // instead of a load/store round-trip per slot, and group liveness is
  // checked once per group rather than once per vector op. Per-lane op
  // order matches the scalar solve exactly.
  for (std::size_t g = 0; g < st; g += W) {
    if (!live(g)) continue;
    for (std::size_t i = 1; i < n_; ++i) {
      double* wi = &w[i * st + g];
      V acc = V::load(wi);
      const int s_end = diag_slot_[i];
      for (int s = lu_row_ptr_[i]; s < s_end; ++s)
        acc = acc -
              V::load(&lu_vals_[static_cast<std::size_t>(s) * st + g]) *
                  V::load(&w[static_cast<std::size_t>(
                                 lu_cols_[static_cast<std::size_t>(s)]) *
                                 st +
                             g]);
      acc.store(wi);
    }
    for (std::size_t ii = n_; ii-- > 0;) {
      double* wi = &w[ii * st + g];
      V acc = V::load(wi);
      const int s_end = lu_row_ptr_[ii + 1];
      for (int s = diag_slot_[ii] + 1; s < s_end; ++s)
        acc = acc -
              V::load(&lu_vals_[static_cast<std::size_t>(s) * st + g]) *
                  V::load(&w[static_cast<std::size_t>(
                                 lu_cols_[static_cast<std::size_t>(s)]) *
                                 st +
                             g]);
      acc = acc * V::load(&inv_diag_[ii * st + g]);
      acc.store(wi);
    }
  }
  if (all_live) {
    for (std::size_t j = 0; j < n_; ++j)
      std::memcpy(&x[cperm_[j] * st], &w[j * st], st * sizeof(double));
  } else {
    for (std::size_t j = 0; j < n_; ++j)
      for (std::size_t g = 0; g < st; g += W)
        if (live(g))
          std::memcpy(&x[cperm_[j] * st + g], &w[j * st + g],
                      W * sizeof(double));
  }
}

}  // namespace lpsram
