#include "lpsram/util/units.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace lpsram {

double thermal_voltage(double temp_c) noexcept {
  return kBoltzmann * celsius_to_kelvin(temp_c) / kElementaryCharge;
}

std::string eng_format(double value, int digits) {
  struct Scale {
    double factor;
    const char* suffix;
  };
  static constexpr std::array<Scale, 7> kScales = {{
      {1e9, "G"},
      {1e6, "M"},
      {1e3, "K"},
      {1.0, ""},
      {1e-3, "m"},
      {1e-6, "u"},
      {1e-9, "n"},
  }};

  if (value == 0.0) return "0";
  const double mag = std::fabs(value);
  const Scale* chosen = &kScales.back();
  for (const Scale& s : kScales) {
    if (mag >= s.factor) {
      chosen = &s;
      break;
    }
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%s", digits, value / chosen->factor,
                chosen->suffix);
  return buf;
}

std::string resistance_format(double ohms, double open_threshold) {
  if (ohms > open_threshold) return "> " + eng_format(open_threshold, 0);
  return eng_format(ohms, 2);
}

std::string millivolt_format(double volts, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, volts * 1e3);
  return buf;
}

}  // namespace lpsram
