// Library error types. All lpsram errors derive from lpsram::Error so callers
// can catch the whole family with one handler.
#pragma once

#include <stdexcept>
#include <string>

namespace lpsram {

// Base class for all errors thrown by the lpsram library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// Thrown when an iterative numerical method fails to converge.
class ConvergenceError : public Error {
 public:
  explicit ConvergenceError(const std::string& what) : Error(what) {}
};

// Thrown when input arguments violate an API precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

// Thrown when a March test string cannot be parsed.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

}  // namespace lpsram
