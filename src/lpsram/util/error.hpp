// Library error types. All lpsram errors derive from lpsram::Error so callers
// can catch the whole family with one handler.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>

namespace lpsram {

// Base class for all errors thrown by the lpsram library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// Thrown when an iterative numerical method fails to converge.
class ConvergenceError : public Error {
 public:
  explicit ConvergenceError(const std::string& what) : Error(what) {}
};

// Diagnostic context attached to solve-layer failures so sweep drivers can
// quarantine a point with an actionable record instead of a bare message.
struct SolveFailureInfo {
  int attempts = 0;           // retry-ladder attempts consumed
  int iterations = 0;         // Newton iterations across all attempts
  double elapsed_s = 0.0;     // wall-clock time spent on this solve [s]
  double deadline_s = 0.0;    // deadline in force (0 = none) [s]
  double worst_residual = 0.0;  // max |KCL residual| at the best estimate [A]
  std::string worst_node;     // node carrying the worst residual
  std::string strategies;     // comma-separated list of strategies tried
  // True when any Newton attempt produced a non-finite residual or step —
  // distinguishes genuine divergence / injected NaN faults from a solve
  // that merely stalled short of tolerance.
  bool non_finite = false;
  // True when the solve was cut off by a CancelToken rather than by its
  // wall-clock deadline (both surface as SolveTimeout).
  bool cancelled = false;
};

// Thrown by DcSolver when every Newton strategy (plain, gmin stepping,
// source stepping, damped) fails at one operating point. Carries the
// failure diagnostics — including the non_finite flag — so the retry
// ladder and quarantine records can tell divergence from a stall.
// Derives from ConvergenceError so legacy catch sites keep working.
class NewtonDivergence : public ConvergenceError {
 public:
  NewtonDivergence(const std::string& what, SolveFailureInfo info)
      : ConvergenceError(what), info_(std::move(info)) {}
  const SolveFailureInfo& info() const noexcept { return info_; }

 private:
  SolveFailureInfo info_;
};

// Thrown when every rung of the resilient solve retry ladder has failed.
// Derives from ConvergenceError so legacy catch sites keep working.
class RetryExhausted : public ConvergenceError {
 public:
  RetryExhausted(const std::string& what, SolveFailureInfo info)
      : ConvergenceError(what), info_(std::move(info)) {}
  const SolveFailureInfo& info() const noexcept { return info_; }

 private:
  SolveFailureInfo info_;
};

// Thrown when a solve is cut off by its wall-clock deadline.
class SolveTimeout : public ConvergenceError {
 public:
  SolveTimeout(const std::string& what, SolveFailureInfo info)
      : ConvergenceError(what), info_(std::move(info)) {}
  const SolveFailureInfo& info() const noexcept { return info_; }

 private:
  SolveFailureInfo info_;
};

// Thrown when input arguments violate an API precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

// Thrown when a March test string cannot be parsed.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

// Thrown when a campaign journal contains a damaged interior record (bad
// checksum, impossible length, or a short payload). A torn *tail* — the
// partial final record left by a crash mid-append — is NOT corruption: replay
// silently truncates it and the campaign resumes. Anything wrong before the
// tail means the file can no longer be trusted and must be repaired or
// discarded by the operator.
class JournalCorrupt : public Error {
 public:
  explicit JournalCorrupt(const std::string& what) : Error(what) {}
};

}  // namespace lpsram
