// Physical constants, unit helpers and engineering-notation formatting.
//
// All quantities in this library are plain doubles in SI units: volts, amps,
// ohms, farads, seconds, watts. Temperatures are degrees Celsius at API
// boundaries (matching how the paper reports PVT conditions) and converted to
// kelvin internally where physics needs it.
#pragma once

#include <string>

namespace lpsram {

// Boltzmann constant [J/K].
inline constexpr double kBoltzmann = 1.380649e-23;
// Elementary charge [C].
inline constexpr double kElementaryCharge = 1.602176634e-19;
// 0 degrees Celsius in kelvin.
inline constexpr double kZeroCelsiusInKelvin = 273.15;
// Reference temperature for device parameters [deg C].
inline constexpr double kReferenceTempC = 25.0;

// Converts a temperature from Celsius to kelvin.
constexpr double celsius_to_kelvin(double temp_c) noexcept {
  return temp_c + kZeroCelsiusInKelvin;
}

// Thermal voltage kT/q [V] at a given temperature in Celsius.
double thermal_voltage(double temp_c) noexcept;

// Formats a value using engineering notation with the scale suffixes the
// paper's Table II uses (e.g. 97.65K, 2.36M, 976.56). `digits` is the number
// of digits after the decimal point.
std::string eng_format(double value, int digits = 2);

// Formats a resistance for table output; values above `open_threshold` are
// rendered as "> 500M" like the paper's Table II.
std::string resistance_format(double ohms, double open_threshold = 500e6);

// Formats a voltage in millivolts (e.g. "730").
std::string millivolt_format(double volts, int digits = 0);

}  // namespace lpsram
