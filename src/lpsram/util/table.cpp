#include "lpsram/util/table.hpp"

#include <algorithm>

#include "lpsram/util/error.hpp"

namespace lpsram {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) throw InvalidArgument("AsciiTable: empty header");
}

void AsciiTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw InvalidArgument("AsciiTable: row arity mismatch");
  rows_.push_back(Row{false, std::move(cells)});
}

void AsciiTable::add_separator() { rows_.push_back(Row{true, {}}); }

std::string AsciiTable::str() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c)
      widths[c] = std::max(widths[c], row.cells[c].size());
  }

  auto hline = [&] {
    std::string line = "+";
    for (std::size_t w : widths) line += std::string(w + 2, '-') + "+";
    line += "\n";
    return line;
  };
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      line += " " + cells[c] + std::string(widths[c] - cells[c].size(), ' ') +
              " |";
    }
    line += "\n";
    return line;
  };

  std::string out = hline();
  out += render_row(header_);
  out += hline();
  for (const Row& row : rows_) {
    out += row.separator ? hline() : render_row(row.cells);
  }
  out += hline();
  return out;
}

}  // namespace lpsram
