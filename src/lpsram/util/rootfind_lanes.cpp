#include "lpsram/util/rootfind_lanes.hpp"

#include <cmath>

#include "lpsram/util/simd.hpp"

namespace lpsram {
namespace {

// Same convergence scale Brent uses: machine-precision floor relative to the
// iterate plus half the requested absolute tolerance.
inline double bracket_tol(double x, double x_tolerance) noexcept {
  return 2.0 * 1e-16 * std::fabs(x) + 0.5 * x_tolerance;
}

// After this many rounds a lane stops trusting Newton and bisects, which
// bounds worst-case convergence by pure bisection on the remaining bracket.
constexpr int kForceBisectAfter = 40;

}  // namespace

LaneRootStats solve_bracketed_lanes(const LaneResidualFn& fn, std::size_t n,
                                    const double* lo, const double* hi,
                                    double* root, const LaneRootOptions& opts,
                                    LaneRootWorkspace* workspace) {
  LaneRootWorkspace local;
  LaneRootWorkspace& ws = workspace ? *workspace : local;

  // Per-lane persistent state (indexed by lane) and compacted per-round
  // buffers (indexed by active position) are distinct arrays: x/f/df hold
  // the lane's last evaluation, xc/fc/dfc carry one batched round.
  ws.active.resize(n);
  ws.a.resize(n);
  ws.b.resize(n);
  ws.x.resize(n);
  ws.f.resize(n);
  ws.df.resize(n);
  ws.has_eval.assign(n, 0);
  // Compacted buffers carry the SIMD padding contract (see the header):
  // sized to a full native-width multiple so vectorized callbacks can read
  // and write whole blocks.
  const std::size_t cap = simd::round_up_lanes(n == 0 ? 1 : n);
  ws.xc.resize(cap);
  ws.fc.resize(cap);
  ws.dfc.resize(cap);

  std::size_t live = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ws.a[i] = lo[i];
    ws.b[i] = hi[i];
    root[i] = 0.5 * (lo[i] + hi[i]);
    // Degenerate bracket: already within tolerance, nothing to solve.
    if (ws.b[i] - ws.a[i] <= 2.0 * bracket_tol(root[i], opts.x_tolerance))
      continue;
    ws.active[live++] = i;
  }
  ws.active.resize(live);

  LaneRootStats stats;
  while (!ws.active.empty() && stats.rounds < opts.max_rounds) {
    const std::size_t m = ws.active.size();

    // Propose one probe per active lane: safeguarded Newton from the lane's
    // last evaluation when it lands strictly inside the bracket, bisection
    // otherwise.
    for (std::size_t i = 0; i < m; ++i) {
      const std::size_t lane = ws.active[i];
      double xn = 0.5 * (ws.a[lane] + ws.b[lane]);
      if (ws.has_eval[lane] && stats.rounds < kForceBisectAfter &&
          ws.df[lane] != 0.0) {
        const double candidate = ws.x[lane] - ws.f[lane] / ws.df[lane];
        if (std::isfinite(candidate) && candidate > ws.a[lane] &&
            candidate < ws.b[lane])
          xn = candidate;
      }
      ws.xc[i] = xn;
    }

    // Pad lanes/probes to a full vector block by replicating the last
    // active entry (valid lane index + probe value; results in the padded
    // tail are discarded).
    const std::size_t padded = simd::round_up_lanes(m);
    ws.active.resize(padded, ws.active[m - 1]);
    for (std::size_t i = m; i < padded; ++i) {
      ws.active[i] = ws.active[m - 1];
      ws.xc[i] = ws.xc[m - 1];
    }

    // One batched residual round over the compacted active set.
    fn(ws.active.data(), ws.xc.data(), ws.fc.data(), ws.dfc.data(), m);
    stats.evaluations += m;
    ++stats.rounds;

    // Update brackets and retire converged lanes by compacting the active
    // list in place (order preserved — determinism).
    std::size_t kept = 0;
    for (std::size_t i = 0; i < m; ++i) {
      const std::size_t lane = ws.active[i];
      const double x = ws.xc[i];
      const double fx = ws.fc[i];

      if (fx == 0.0 || std::fabs(fx) <= opts.f_tolerance) {
        root[lane] = x;
        continue;
      }
      const bool above_root = opts.increasing ? (fx > 0.0) : (fx < 0.0);
      if (above_root) {
        ws.b[lane] = x;
      } else {
        ws.a[lane] = x;
      }
      if (ws.b[lane] - ws.a[lane] <= 2.0 * bracket_tol(x, opts.x_tolerance)) {
        root[lane] = x;
        continue;
      }
      ws.x[lane] = x;
      ws.f[lane] = fx;
      ws.df[lane] = ws.dfc[i];
      ws.has_eval[lane] = 1;
      ws.active[kept++] = lane;
    }
    ws.active.resize(kept);
  }

  // Rounds exhausted: last iterate is the best answer (forced bisection
  // keeps it within the bisection bound).
  for (const std::size_t lane : ws.active) root[lane] = ws.x[lane];
  return stats;
}

}  // namespace lpsram
