#include "lpsram/util/signal_cancel.hpp"

#include <atomic>

#if defined(__unix__) || defined(__APPLE__)
#include <signal.h>
#define LPSRAM_HAVE_SIGACTION 1
#endif

namespace lpsram {

#ifdef LPSRAM_HAVE_SIGACTION

namespace {

// Signal handlers may only touch lock-free state; CancelToken::cancel() is a
// relaxed atomic store, which qualifies.
std::atomic<CancelToken*> g_signal_token{nullptr};

void on_cancel_signal(int) {
  CancelToken* token = g_signal_token.load(std::memory_order_relaxed);
  if (token != nullptr) token->cancel();
}

}  // namespace

bool install_cancel_on_signal(CancelToken& token) {
  g_signal_token.store(&token, std::memory_order_relaxed);
  struct sigaction action {};
  action.sa_handler = on_cancel_signal;
  sigemptyset(&action.sa_mask);
  // First signal drains gracefully; the handler then resets to default so a
  // second signal terminates immediately.
  action.sa_flags = SA_RESETHAND;
  const bool ok_int = ::sigaction(SIGINT, &action, nullptr) == 0;
  const bool ok_term = ::sigaction(SIGTERM, &action, nullptr) == 0;
  return ok_int && ok_term;
}

#else

bool install_cancel_on_signal(CancelToken&) { return false; }

#endif

}  // namespace lpsram
