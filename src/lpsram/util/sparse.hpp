// Sparse linear-algebra kernel for the structure-aware MNA solve path.
//
// Circuit topology is immutable per netlist, so the nonzero pattern of the
// Jacobian is fixed across every Newton iteration of every solve. That lets
// the expensive work happen once: the CSR pattern is built by the stamp plan
// (spice/stamp_plan.hpp), and SparseLu computes its pivot order and fill-in
// pattern on the first factorization, after which each Newton iteration is a
// numeric-only refactor into preallocated storage — zero heap allocations on
// the steady-state path. The dense LU in matrix.hpp remains the fallback and
// the cross-check oracle in tests.
#pragma once

#include <cstddef>
#include <vector>

namespace lpsram {

// Compressed-sparse-row matrix with an immutable nonzero pattern. Values are
// addressed by flat *slot* index (position in the values() array), which is
// what the stamp plans precompute so per-iteration stamping never searches.
class SparseMatrix {
 public:
  SparseMatrix() = default;
  // Pattern: `row_ptr` has dim+1 entries; `cols` holds the column indices of
  // each row's slots in strictly ascending order.
  SparseMatrix(std::size_t dim, std::vector<int> row_ptr, std::vector<int> cols);

  std::size_t dimension() const noexcept { return dim_; }
  std::size_t nnz() const noexcept { return cols_.size(); }

  const std::vector<int>& row_ptr() const noexcept { return row_ptr_; }
  const std::vector<int>& cols() const noexcept { return cols_; }
  std::vector<double>& values() noexcept { return values_; }
  const std::vector<double>& values() const noexcept { return values_; }

  // Flat slot of entry (r, c), or -1 when the entry is structurally absent.
  int find_slot(int r, int c) const noexcept;

  void set_zero() noexcept;
  // Zeroes every stored value in row r (the row becomes numerically zero).
  void zero_row(std::size_t r) noexcept;

  // y = A x + c, with `y` preallocated to dimension(). `c` may alias nothing
  // or be empty (treated as zero).
  void multiply_add(const std::vector<double>& x, const std::vector<double>& c,
                    std::vector<double>& y) const noexcept;

  // values = src, then y = A x + c, in a single pass over the pattern. The
  // sparse assembler's per-iteration hot path: reloading the frozen linear
  // base and evaluating the linear residual touch the same slots, so doing
  // both per slot halves the memory traffic of copy-then-multiply. `src`
  // must have nnz() entries, `y` dimension() entries.
  void load_multiply_add(const std::vector<double>& src,
                         const std::vector<double>& x,
                         const std::vector<double>& c,
                         std::vector<double>& y) noexcept;

 private:
  std::size_t dim_ = 0;
  std::vector<int> row_ptr_;
  std::vector<int> cols_;
  std::vector<double> values_;
};

// Reusable sparse LU (row-permuted Doolittle). The first factor() call runs
// the *analysis*: threshold pivoting with a Markowitz row-count tie-break
// picks the row order, and symbolic elimination computes the fill-in pattern
// of L+U — both a function of the structural pattern plus the first numeric
// values, computed once. Subsequent factor() calls are numeric-only
// refactors into the preallocated pattern with no heap allocation; if a
// pivot degrades numerically (values drifted far from the analyzed point),
// the analysis is redone automatically. Throws ConvergenceError when the
// matrix is singular, matching the dense LuSolver contract.
class SparseLu {
 public:
  // Absolute singularity floor, matching the dense LuSolver, and the
  // staleness limit for a reused pivot order (see refactor()). Public so
  // SparseLuLanes applies the identical per-lane acceptance tests.
  static constexpr double kSingularFloor = 1e-300;
  static constexpr double kPivotDriftLimit = 1e8;

  SparseLu() = default;

  // Factorizes `a`. Cheap numeric refactor when the pattern matches the last
  // analysis; full re-analysis otherwise (first call, new pattern, or pivot
  // breakdown). Throws ConvergenceError if singular.
  void factor(const SparseMatrix& a);

  // Solves A x = b using the last factor(). `x` is resized to the dimension.
  void solve(const std::vector<double>& b, std::vector<double>& x) const;

  // Solves A x = b, then applies one step of iterative refinement against
  // the exact matrix `a` (the one passed to the last factor()): r = b - A x,
  // x += A^{-1} r. On the badly scaled MNA systems this library sees
  // (condition numbers to ~1e12 when a near-open defect meets gmin), the
  // refinement buys back the digits the threshold-Markowitz ordering gives
  // up relative to dense partial pivoting, keeping the Newton dx noise
  // floor below the solver's 1e-9 V convergence tolerance. Zero heap
  // allocations after analysis.
  void solve_refined(const SparseMatrix& a, const std::vector<double>& b,
                     std::vector<double>& x) const;

  // One refinement step applied to an existing solution `x` of A x = b (as
  // produced by solve()): r = b - A x, x += A^{-1} r. Equivalent to
  // solve_refined() when `x` came from solve(b, x), but skips the redundant
  // initial solve — the Newton endgame path already has the plain solution
  // in hand when it decides to polish it.
  void refine_step(const SparseMatrix& a, const std::vector<double>& b,
                   std::vector<double>& x) const;

  bool analyzed() const noexcept { return n_ > 0; }
  // Reciprocal condition estimate from pivot magnitudes (cheap heuristic,
  // same convention as the dense LuSolver).
  double pivot_ratio() const noexcept { return pivot_ratio_; }
  // Fill-in count of L+U (diagnostic; fixed after analysis).
  std::size_t factor_nnz() const noexcept { return lu_cols_.size(); }
  // Multiply-subtract count of the compiled refactor program (diagnostic;
  // the flop cost of one numeric refactor).
  std::size_t refactor_ops() const noexcept { return mul_dst_.size(); }
  // Number of analysis passes run (1 on the happy path; more indicate pivot
  // breakdowns forced re-pivoting).
  int analyses() const noexcept { return analyses_; }

 private:
  // SparseLuLanes (util/sparse_lanes.hpp) adopts the compiled refactor
  // program verbatim to run many same-pattern factorizations in lockstep.
  friend class SparseLuLanes;

  void analyze(const SparseMatrix& a);
  bool refactor(const SparseMatrix& a, bool strict);
  bool pattern_matches(const SparseMatrix& a) const noexcept;

  std::size_t n_ = 0;
  // Row permutation: factored row i comes from original row perm_[i].
  std::vector<std::size_t> perm_;
  // Column permutation: factored column j is original column cperm_[j].
  // Chosen by the full (row and column) threshold-Markowitz analysis; row
  // pivoting alone leaves the MNA branch rows' fixed column positions to
  // generate fill that a column swap avoids entirely.
  std::vector<std::size_t> cperm_;
  // Combined L+U pattern, row-major; cols ascending. diag_slot_[i] indexes
  // the U(i,i) slot inside row i.
  std::vector<int> lu_row_ptr_;
  std::vector<int> lu_cols_;
  std::vector<double> lu_vals_;
  std::vector<int> diag_slot_;
  std::vector<double> inv_diag_;
  // |pivot| per row as recorded by the refactor immediately after analysis —
  // the baseline the strict-mode staleness guard compares against.
  std::vector<double> analyzed_pivot_mag_;
  // Structural fingerprint of the analyzed input pattern.
  std::vector<int> a_row_ptr_;
  std::vector<int> a_cols_;
  // Compiled refactorization program, emitted by analyze(). Because the
  // pivot order and fill pattern are fixed until the next analysis, the
  // entire numeric elimination is a *static* sequence of slot-indexed
  // operations; recording it once turns every refactor into flat walks
  // over these arrays — no scatter/gather through a scratch row, no
  // column searches, no branches beyond the pivot check.
  //   load_src_[s]  : A slot feeding LU slot s, or -1 for a fill slot
  //                   (loaded as zero).
  //   per lower slot e (global order: row-major, columns ascending):
  //     elim_ls_[e] : the L slot being normalized (divided by its pivot),
  //     elim_k_[e]  : the pivot row supplying inv_diag,
  //     mul ops [elim_mul_end_[e-1], elim_mul_end_[e]):
  //       lu_vals_[mul_dst_[m]] -= L * lu_vals_[mul_src_[m]]
  //   row_elim_end_[i] : end of row i's lower slots in the elim arrays.
  std::vector<int> load_src_;
  // load_src_ collapsed into contiguous (dst, src, len) runs plus the list
  // of fill slots to zero — with a fill-free order the load phase is one
  // memcpy per row instead of nnz indexed gathers.
  std::vector<int> load_run_dst_;
  std::vector<int> load_run_src_;
  std::vector<int> load_run_len_;
  std::vector<int> fill_slots_;
  std::vector<int> row_elim_end_;
  std::vector<int> elim_ls_;
  std::vector<int> elim_k_;
  std::vector<int> elim_mul_end_;
  std::vector<int> mul_dst_;
  std::vector<int> mul_src_;
  // The mul ops collapsed into contiguous (dst, src, len) runs, never
  // crossing an elimination step (the factor changes per step). Within one
  // step every dst slot lies in the row being eliminated and every src slot
  // in the (distinct) pivot row, so a run updates disjoint memory and the
  // SIMD MAC can work in place. elim_run_end_[e] bounds step e's runs.
  std::vector<int> mul_run_dst_;
  std::vector<int> mul_run_src_;
  std::vector<int> mul_run_len_;
  std::vector<int> elim_run_end_;
  // Whether the runs are long enough that the vector MAC beats the flat
  // scalar program for this pattern (set by analyze; see the run collapse).
  bool simd_runs_profitable_ = false;
  // Scratch for solve's permuted intermediate (allocated at analysis).
  mutable std::vector<double> work_;
  // Scratch for solve_refined's residual and correction (ditto).
  mutable std::vector<double> refine_r_;
  mutable std::vector<double> refine_e_;
  double pivot_ratio_ = 0.0;
  int analyses_ = 0;
};

}  // namespace lpsram
