// ASCII table formatter used by the bench harnesses to print Table I/II/III
// and the Fig. 4 series in a layout comparable with the paper.
#pragma once

#include <string>
#include <vector>

namespace lpsram {

// Simple column-aligned ASCII table. Usage:
//   AsciiTable t({"Def.", "Min. Res.", "PVT"});
//   t.add_row({"Df1", "9.76K", "fs, 1.0V, 125C"});
//   std::cout << t.str();
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  // Appends one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  // Appends a horizontal separator line at this position.
  void add_separator();

  // Renders the full table.
  std::string str() const;

  std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace lpsram
