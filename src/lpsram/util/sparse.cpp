#include "lpsram/util/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>
#include <string>

#include "lpsram/util/error.hpp"
#include "lpsram/util/simd.hpp"

namespace lpsram {
namespace {

// Relative acceptance band for the threshold pivot choice: any candidate
// within this factor of the column maximum is numerically acceptable, and
// the Markowitz tie-break picks the sparsest acceptable row.
constexpr double kPivotThreshold = 0.1;
// Singularity floor and the pivot-staleness limit live on the class (shared
// with SparseLuLanes). The drift guard is deliberately NOT an intra-row
// growth test — MNA rows legitimately span ~12 decades (gmin diagonals next
// to unit branch couplings), so comparing a pivot against its own row
// re-analyzes on every Newton value swing and costs more than it protects.
constexpr double kSingularFloor = SparseLu::kSingularFloor;
constexpr double kPivotDriftLimit = SparseLu::kPivotDriftLimit;

}  // namespace

SparseMatrix::SparseMatrix(std::size_t dim, std::vector<int> row_ptr,
                           std::vector<int> cols)
    : dim_(dim), row_ptr_(std::move(row_ptr)), cols_(std::move(cols)) {
  if (row_ptr_.size() != dim_ + 1 ||
      static_cast<std::size_t>(row_ptr_.back()) != cols_.size())
    throw InvalidArgument("SparseMatrix: malformed CSR pattern");
  values_.assign(cols_.size(), 0.0);
}

int SparseMatrix::find_slot(int r, int c) const noexcept {
  const auto begin = cols_.begin() + row_ptr_[static_cast<std::size_t>(r)];
  const auto end = cols_.begin() + row_ptr_[static_cast<std::size_t>(r) + 1];
  const auto it = std::lower_bound(begin, end, c);
  if (it == end || *it != c) return -1;
  return static_cast<int>(it - cols_.begin());
}

void SparseMatrix::set_zero() noexcept {
  std::fill(values_.begin(), values_.end(), 0.0);
}

void SparseMatrix::zero_row(std::size_t r) noexcept {
  if (r >= dim_) return;
  for (int s = row_ptr_[r]; s < row_ptr_[r + 1]; ++s)
    values_[static_cast<std::size_t>(s)] = 0.0;
}

void SparseMatrix::multiply_add(const std::vector<double>& x,
                                const std::vector<double>& c,
                                std::vector<double>& y) const noexcept {
  for (std::size_t r = 0; r < dim_; ++r) {
    double acc = c.empty() ? 0.0 : c[r];
    for (int s = row_ptr_[r]; s < row_ptr_[r + 1]; ++s)
      acc += values_[static_cast<std::size_t>(s)] *
             x[static_cast<std::size_t>(cols_[static_cast<std::size_t>(s)])];
    y[r] = acc;
  }
}

namespace {

// Rows at least this long take the vectorized gather path in
// load_multiply_add. Typical MNA rows hold 3–6 slots and stay scalar; the
// threshold targets the dense branch/fill rows where gathers amortize.
constexpr int kGatherRowThreshold = 8;

}  // namespace

void SparseMatrix::load_multiply_add(const std::vector<double>& src,
                                     const std::vector<double>& x,
                                     const std::vector<double>& c,
                                     std::vector<double>& y) noexcept {
  if (resolved_simd_kind() == SimdKind::Simd) {
    // SIMD row dots accumulate lane-wise and fold with hsum, which reorders
    // the summation relative to the scalar loop — a documented tolerance of
    // the Simd kind, runtime-selectable back to the scalar oracle.
    using V = simd::Vec;
    constexpr int W = static_cast<int>(simd::kNativeWidth);
    for (std::size_t r = 0; r < dim_; ++r) {
      double acc = c.empty() ? 0.0 : c[r];
      int s = row_ptr_[r];
      const int end = row_ptr_[r + 1];
      if (end - s >= kGatherRowThreshold) {
        V accv = V::zero();
        for (; s + W <= end; s += W) {
          const V v = V::load(&src[static_cast<std::size_t>(s)]);
          v.store(&values_[static_cast<std::size_t>(s)]);
          accv = accv + v * V::gather(x.data(),
                                      &cols_[static_cast<std::size_t>(s)]);
        }
        acc += V::hsum(accv);
      }
      for (; s < end; ++s) {
        const double v = src[static_cast<std::size_t>(s)];
        values_[static_cast<std::size_t>(s)] = v;
        acc +=
            v * x[static_cast<std::size_t>(cols_[static_cast<std::size_t>(s)])];
      }
      y[r] = acc;
    }
    return;
  }
  for (std::size_t r = 0; r < dim_; ++r) {
    double acc = c.empty() ? 0.0 : c[r];
    for (int s = row_ptr_[r]; s < row_ptr_[r + 1]; ++s) {
      const double v = src[static_cast<std::size_t>(s)];
      values_[static_cast<std::size_t>(s)] = v;
      acc += v * x[static_cast<std::size_t>(cols_[static_cast<std::size_t>(s)])];
    }
    y[r] = acc;
  }
}

bool SparseLu::pattern_matches(const SparseMatrix& a) const noexcept {
  return a.dimension() == n_ && a.row_ptr() == a_row_ptr_ &&
         a.cols() == a_cols_;
}

void SparseLu::factor(const SparseMatrix& a) {
  if (!analyzed() || !pattern_matches(a)) {
    analyze(a);
    if (!refactor(a, /*strict=*/false))
      throw ConvergenceError("SparseLu: singular matrix (refactor failed "
                             "immediately after analysis)");
    return;
  }
  if (refactor(a, /*strict=*/true)) return;
  // Pivot breakdown: a pivot either went singular or collapsed far below
  // its analysis-time magnitude (see kPivotDriftLimit) — the recorded order
  // lost stability for the current values. Re-pivot for them; the fresh
  // ordering is accepted leniently (only a true singular pivot fails) and
  // its pivot magnitudes become the new drift baselines, matching the dense
  // LuSolver contract, whose partial pivoting likewise takes whatever the
  // column offers.
  analyze(a);
  if (!refactor(a, /*strict=*/false))
    throw ConvergenceError("SparseLu: singular matrix (pivot breakdown "
                           "persists after re-analysis)");
}

void SparseLu::analyze(const SparseMatrix& a) {
  const std::size_t n = a.dimension();
  n_ = 0;  // invalidated until the analysis completes (it may throw)
  ++analyses_;
  a_row_ptr_ = a.row_ptr();
  a_cols_ = a.cols();

  // Dense numeric shadow (for pivot choice) plus a structural mask carried
  // through the same elimination. The mask is a superset of every numeric
  // nonzero any future value set can produce on this pattern, so the fill
  // pattern recorded from it is safe for all refactors. n is tens-to-low-
  // hundreds here, so the dense O(n^3) analysis is cheap and runs once per
  // topology epoch.
  std::vector<double> d(n * n, 0.0);
  std::vector<char> mask(n * n, 0);
  for (std::size_t r = 0; r < n; ++r) {
    for (int s = a.row_ptr()[r]; s < a.row_ptr()[r + 1]; ++s) {
      const std::size_t c =
          static_cast<std::size_t>(a.cols()[static_cast<std::size_t>(s)]);
      d[r * n + c] = a.values()[static_cast<std::size_t>(s)];
      mask[r * n + c] = 1;
    }
  }

  perm_.resize(n);
  std::iota(perm_.begin(), perm_.end(), std::size_t{0});
  cperm_.resize(n);
  std::iota(cperm_.begin(), cperm_.end(), std::size_t{0});

  double max_pivot = 0.0;
  double min_pivot = std::numeric_limits<double>::infinity();

  std::vector<std::size_t> row_count(n, 0);
  std::vector<std::size_t> col_count(n, 0);
  std::vector<double> col_max(n, 0.0);

  for (std::size_t k = 0; k < n; ++k) {
    // Full threshold-Markowitz pivot choice over the active submatrix:
    // among entries within kPivotThreshold of their column maximum, pick
    // the one minimizing (r_i - 1)(c_j - 1) — the classic bound on the
    // fill one elimination step can create. Permuting columns as well as
    // rows matters here: MNA branch rows pin large off-diagonal entries at
    // fixed column positions, and row pivoting alone turns those into
    // long fill-generating rows.
    std::fill(row_count.begin() + static_cast<std::ptrdiff_t>(k),
              row_count.end(), 0);
    std::fill(col_count.begin() + static_cast<std::ptrdiff_t>(k),
              col_count.end(), 0);
    std::fill(col_max.begin() + static_cast<std::ptrdiff_t>(k), col_max.end(),
              0.0);
    for (std::size_t i = k; i < n; ++i) {
      for (std::size_t j = k; j < n; ++j) {
        if (!mask[i * n + j]) continue;
        ++row_count[i];
        ++col_count[j];
        col_max[j] = std::max(col_max[j], std::fabs(d[i * n + j]));
      }
    }
    std::size_t pivot_row = n;
    std::size_t pivot_col = n;
    std::size_t best_cost = std::numeric_limits<std::size_t>::max();
    for (std::size_t j = k; j < n; ++j) {
      if (!(col_max[j] >= kSingularFloor)) continue;
      const double accept = kPivotThreshold * col_max[j];
      for (std::size_t i = k; i < n; ++i) {
        if (!mask[i * n + j]) continue;
        if (std::fabs(d[i * n + j]) < accept) continue;
        const std::size_t cost = (row_count[i] - 1) * (col_count[j] - 1);
        if (cost < best_cost) {
          best_cost = cost;
          pivot_row = i;
          pivot_col = j;
        }
      }
    }
    if (pivot_row == n)
      throw ConvergenceError("SparseLu: singular matrix at step " +
                             std::to_string(k));
    if (pivot_row != k) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(d[k * n + c], d[pivot_row * n + c]);
        std::swap(mask[k * n + c], mask[pivot_row * n + c]);
      }
      std::swap(perm_[k], perm_[pivot_row]);
    }
    if (pivot_col != k) {
      for (std::size_t r = 0; r < n; ++r) {
        std::swap(d[r * n + k], d[r * n + pivot_col]);
        std::swap(mask[r * n + k], mask[r * n + pivot_col]);
      }
      std::swap(cperm_[k], cperm_[pivot_col]);
    }
    const double pivot_mag = std::fabs(d[k * n + k]);
    max_pivot = std::max(max_pivot, pivot_mag);
    min_pivot = std::min(min_pivot, pivot_mag);

    const double inv_pivot = 1.0 / d[k * n + k];
    for (std::size_t i = k + 1; i < n; ++i) {
      // Elimination follows the *structural* mask, not the numeric value:
      // a slot that happens to hold zero now (say a device stamp that is
      // off at this operating point) can be nonzero at the next refactor,
      // and its fill must already be in the recorded pattern.
      if (!mask[i * n + k]) continue;
      const double factor = d[i * n + k] * inv_pivot;
      d[i * n + k] = factor;
      for (std::size_t c = k + 1; c < n; ++c) {
        if (!mask[k * n + c]) continue;
        d[i * n + c] -= factor * d[k * n + c];
        mask[i * n + c] = 1;
      }
    }
  }
  pivot_ratio_ = (max_pivot > 0.0) ? min_pivot / max_pivot : 0.0;

  // Record the combined L+U pattern row-major with ascending columns.
  lu_row_ptr_.assign(n + 1, 0);
  lu_cols_.clear();
  diag_slot_.assign(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    lu_row_ptr_[i] = static_cast<int>(lu_cols_.size());
    for (std::size_t c = 0; c < n; ++c) {
      if (!mask[i * n + c]) continue;
      if (c == i) diag_slot_[i] = static_cast<int>(lu_cols_.size());
      lu_cols_.push_back(static_cast<int>(c));
    }
    if (diag_slot_[i] < 0)
      throw ConvergenceError("SparseLu: structurally singular row " +
                             std::to_string(i));
  }
  lu_row_ptr_[n] = static_cast<int>(lu_cols_.size());

  // Compile the refactorization program (see the header). The pivot order
  // and fill pattern are now fixed, so every future numeric refactor runs
  // the exact same sequence of slot operations — record that sequence once
  // and the refactor becomes flat array walks with no scratch row, no
  // column searches and no per-entry branching.
  //
  // Load map: LU entry (i, j) holds A(perm_[i], cperm_[j]); pair each LU
  // slot with its A source slot via a per-row column lookup (fill slots,
  // absent from A, get -1 and load as zero).
  load_src_.assign(lu_cols_.size(), -1);
  {
    std::vector<int> slot_of_col(n, -1);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t src = perm_[i];
      for (int s = a_row_ptr_[src]; s < a_row_ptr_[src + 1]; ++s)
        slot_of_col[static_cast<std::size_t>(
            a_cols_[static_cast<std::size_t>(s)])] = s;
      for (int s = lu_row_ptr_[i]; s < lu_row_ptr_[i + 1]; ++s)
        load_src_[static_cast<std::size_t>(s)] = slot_of_col[cperm_[
            static_cast<std::size_t>(lu_cols_[static_cast<std::size_t>(s)])]];
      for (int s = a_row_ptr_[src]; s < a_row_ptr_[src + 1]; ++s)
        slot_of_col[static_cast<std::size_t>(
            a_cols_[static_cast<std::size_t>(s)])] = -1;
    }
  }
  // Collapse the load map into contiguous runs. CSR stores each row's
  // slots adjacently in both matrices, so a fill-free row is a single run;
  // genuine fill slots go on a (usually empty) zero list.
  load_run_dst_.clear();
  load_run_src_.clear();
  load_run_len_.clear();
  fill_slots_.clear();
  for (std::size_t s = 0; s < load_src_.size(); ++s) {
    const int src = load_src_[s];
    if (src < 0) {
      fill_slots_.push_back(static_cast<int>(s));
      continue;
    }
    if (!load_run_len_.empty() &&
        load_run_dst_.back() + load_run_len_.back() == static_cast<int>(s) &&
        load_run_src_.back() + load_run_len_.back() == src) {
      ++load_run_len_.back();
    } else {
      load_run_dst_.push_back(static_cast<int>(s));
      load_run_src_.push_back(src);
      load_run_len_.push_back(1);
    }
  }

  // Elimination ops: for each lower slot (row-major, columns ascending —
  // the order the up-looking elimination requires), the pivot-row U slots
  // it combines with and the row-i slots those updates land in. Every
  // target exists by construction: the symbolic elimination above already
  // put all fill in the pattern.
  row_elim_end_.assign(n, 0);
  elim_ls_.clear();
  elim_k_.clear();
  elim_mul_end_.clear();
  mul_dst_.clear();
  mul_src_.clear();
  {
    std::vector<int> slot_of(n, -1);  // column -> slot within the open row
    for (std::size_t i = 0; i < n; ++i) {
      for (int s = lu_row_ptr_[i]; s < lu_row_ptr_[i + 1]; ++s)
        slot_of[static_cast<std::size_t>(lu_cols_[static_cast<std::size_t>(s)])] =
            s;
      for (int s = lu_row_ptr_[i]; s < diag_slot_[i]; ++s) {
        const std::size_t k =
            static_cast<std::size_t>(lu_cols_[static_cast<std::size_t>(s)]);
        elim_ls_.push_back(s);
        elim_k_.push_back(static_cast<int>(k));
        for (int t = diag_slot_[k] + 1; t < lu_row_ptr_[k + 1]; ++t) {
          mul_dst_.push_back(
              slot_of[static_cast<std::size_t>(lu_cols_[static_cast<std::size_t>(t)])]);
          mul_src_.push_back(t);
        }
        elim_mul_end_.push_back(static_cast<int>(mul_dst_.size()));
      }
      row_elim_end_[i] = static_cast<int>(elim_ls_.size());
      for (int s = lu_row_ptr_[i]; s < lu_row_ptr_[i + 1]; ++s)
        slot_of[static_cast<std::size_t>(lu_cols_[static_cast<std::size_t>(s)])] =
            -1;
    }
  }

  // Collapse each elimination step's mul ops into contiguous (dst, src, len)
  // runs for the SIMD MAC. Rows whose trailing patterns match the pivot
  // row's (the common case after fill-in) become one long run; runs never
  // cross a step boundary because the factor changes.
  mul_run_dst_.clear();
  mul_run_src_.clear();
  mul_run_len_.clear();
  elim_run_end_.clear();
  {
    int m = 0;
    for (std::size_t e = 0; e < elim_ls_.size(); ++e) {
      const std::size_t step_first_run = mul_run_dst_.size();
      for (const int m_end = elim_mul_end_[e]; m < m_end; ++m) {
        const bool extends =
            mul_run_dst_.size() > step_first_run &&
            mul_run_dst_.back() + mul_run_len_.back() == mul_dst_[m] &&
            mul_run_src_.back() + mul_run_len_.back() == mul_src_[m];
        if (extends) {
          ++mul_run_len_.back();
        } else {
          mul_run_dst_.push_back(mul_dst_[m]);
          mul_run_src_.push_back(mul_src_[m]);
          mul_run_len_.push_back(1);
        }
      }
      elim_run_end_.push_back(static_cast<int>(mul_run_dst_.size()));
    }
  }

  // Decide once, per pattern, whether the vector MAC pays: count the mul ops
  // full vectors can cover and the mean run length. Narrow-band and
  // scattered MNA patterns collapse into short runs where the per-run
  // bookkeeping (unaligned loads, remainder loop, loop setup) costs more
  // than the lanes save — measured crossover on banded test patterns sits
  // near a mean run of ~3 vector widths — so those stay on the flat scalar
  // program even under SimdKind::Simd (both paths compute bit-identical
  // values; this is purely a speed decision).
  {
    std::size_t vectorized = 0;
    for (const int len : mul_run_len_)
      vectorized += static_cast<std::size_t>(len) -
                    static_cast<std::size_t>(len) % simd::kNativeWidth;
    const bool covered = 4 * vectorized >= 3 * mul_dst_.size();
    const bool long_runs =
        !mul_run_len_.empty() &&
        mul_dst_.size() >= 3 * simd::kNativeWidth * mul_run_len_.size();
    simd_runs_profitable_ = covered && long_runs;
  }

  lu_vals_.assign(lu_cols_.size(), 0.0);
  inv_diag_.assign(n, 0.0);
  analyzed_pivot_mag_.assign(n, 0.0);
  work_.assign(n, 0.0);
  refine_r_.assign(n, 0.0);
  refine_e_.assign(n, 0.0);
  n_ = n;  // analysis complete — factorization state is valid again
}

bool SparseLu::refactor(const SparseMatrix& a, bool strict) {
  const std::size_t n = n_;
  double max_pivot = 0.0;
  double min_pivot = std::numeric_limits<double>::infinity();

  // Run the compiled program (see analyze): load every LU slot straight
  // from its A source slot, then replay the recorded elimination sequence
  // in place. All updates land directly in lu_vals_, so the L part of each
  // row is exactly the running partially-eliminated value the up-looking
  // algorithm needs — no scratch row.
  const std::vector<double>& avals = a.values();
  for (std::size_t r = 0; r < load_run_dst_.size(); ++r)
    std::memcpy(&lu_vals_[static_cast<std::size_t>(load_run_dst_[r])],
                &avals[static_cast<std::size_t>(load_run_src_[r])],
                static_cast<std::size_t>(load_run_len_[r]) * sizeof(double));
  for (const int s : fill_slots_) lu_vals_[static_cast<std::size_t>(s)] = 0.0;

  // The MAC kernel dispatches per factor() call: the Simd path walks the
  // contiguous (dst, src, len) runs with vector multiply-then-subtract —
  // each element computes exactly the scalar `a -= f * b` (no fusion), and
  // within a step dst (row being eliminated) and src (pivot row) slots are
  // disjoint, so the in-place update is safe and the result is bit-identical
  // to the scalar program order.
  const bool use_simd =
      simd_runs_profitable_ && resolved_simd_kind() == SimdKind::Simd;
  int e = 0;
  int m = 0;
  int run = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (const int e_end = row_elim_end_[i]; e < e_end; ++e) {
      const std::size_t ls = static_cast<std::size_t>(elim_ls_[e]);
      const double factor =
          lu_vals_[ls] * inv_diag_[static_cast<std::size_t>(elim_k_[e])];
      lu_vals_[ls] = factor;
      if (use_simd) {
        using V = simd::Vec;
        constexpr int W = static_cast<int>(simd::kNativeWidth);
        const V fv = V::broadcast(factor);
        for (const int run_end = elim_run_end_[e]; run < run_end; ++run) {
          double* dst = &lu_vals_[static_cast<std::size_t>(mul_run_dst_[run])];
          const double* src =
              &lu_vals_[static_cast<std::size_t>(mul_run_src_[run])];
          const int len = mul_run_len_[run];
          int j = 0;
          for (; j + W <= len; j += W) {
            const V d = V::load(dst + j) - fv * V::load(src + j);
            d.store(dst + j);
          }
          for (; j < len; ++j) dst[j] -= factor * src[j];
        }
        m = elim_mul_end_[e];
      } else {
        for (const int m_end = elim_mul_end_[e]; m < m_end; ++m)
          lu_vals_[static_cast<std::size_t>(mul_dst_[m])] -=
              factor * lu_vals_[static_cast<std::size_t>(mul_src_[m])];
        run = elim_run_end_[e];
      }
    }

    const double pivot = lu_vals_[static_cast<std::size_t>(diag_slot_[i])];
    const double pivot_mag = std::fabs(pivot);
    if (!(pivot_mag >= kSingularFloor))
      return false;  // singular: caller re-analyzes, then gives up
    if (strict) {
      // Stale-ordering guard: the pivot collapsed by kPivotDriftLimit
      // relative to its magnitude when this order was chosen — the values
      // have left the ordering's stability region; ask the caller to
      // re-pivot. Pivots growing, or Newton's routine few-decade swings,
      // pass without forcing an O(n^3) re-analysis.
      if (pivot_mag * kPivotDriftLimit <
          analyzed_pivot_mag_[static_cast<std::size_t>(i)])
        return false;
    } else {
      // Fresh from analyze(): record the baseline the guard compares with.
      analyzed_pivot_mag_[static_cast<std::size_t>(i)] = pivot_mag;
    }
    inv_diag_[i] = 1.0 / pivot;
    max_pivot = std::max(max_pivot, pivot_mag);
    min_pivot = std::min(min_pivot, pivot_mag);
  }
  pivot_ratio_ = (max_pivot > 0.0) ? min_pivot / max_pivot : 0.0;
  return true;
}

void SparseLu::solve(const std::vector<double>& b,
                     std::vector<double>& x) const {
  const std::size_t n = n_;
  if (b.size() != n) throw InvalidArgument("SparseLu::solve: size mismatch");
  x.resize(n);
  // Substitute in the factor's (row- and column-) permuted space, then
  // scatter back through the column permutation.
  std::vector<double>& w = work_;
  for (std::size_t i = 0; i < n; ++i) w[i] = b[perm_[i]];

  for (std::size_t i = 1; i < n; ++i) {
    double acc = w[i];
    for (int s = lu_row_ptr_[i]; s < diag_slot_[i]; ++s)
      acc -= lu_vals_[static_cast<std::size_t>(s)] *
             w[static_cast<std::size_t>(lu_cols_[static_cast<std::size_t>(s)])];
    w[i] = acc;
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = w[ii];
    for (int s = diag_slot_[ii] + 1; s < lu_row_ptr_[ii + 1]; ++s)
      acc -= lu_vals_[static_cast<std::size_t>(s)] *
             w[static_cast<std::size_t>(lu_cols_[static_cast<std::size_t>(s)])];
    w[ii] = acc * inv_diag_[ii];
  }
  for (std::size_t j = 0; j < n; ++j) x[cperm_[j]] = w[j];
}

void SparseLu::solve_refined(const SparseMatrix& a,
                             const std::vector<double>& b,
                             std::vector<double>& x) const {
  solve(b, x);
  refine_step(a, b, x);
}

void SparseLu::refine_step(const SparseMatrix& a, const std::vector<double>& b,
                           std::vector<double>& x) const {
  const std::size_t n = n_;
  if (a.dimension() != n)
    throw InvalidArgument("SparseLu::refine_step: matrix size mismatch");
  // r = b - A x, against the exact (unfactored) matrix.
  const std::vector<int>& row_ptr = a.row_ptr();
  const std::vector<int>& cols = a.cols();
  const std::vector<double>& vals = a.values();
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (int s = row_ptr[i]; s < row_ptr[i + 1]; ++s)
      acc -= vals[static_cast<std::size_t>(s)] *
             x[static_cast<std::size_t>(cols[static_cast<std::size_t>(s)])];
    refine_r_[i] = acc;
  }
  solve(refine_r_, refine_e_);
  for (std::size_t i = 0; i < n; ++i) x[i] += refine_e_[i];
}

}  // namespace lpsram
