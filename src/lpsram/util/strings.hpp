// Small string helpers used by the March parser and report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace lpsram {

// Strips leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s) noexcept;

// Splits on a delimiter character; empty pieces are kept.
std::vector<std::string> split(std::string_view s, char delim);

// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix) noexcept;

// ASCII lowercase copy.
std::string to_lower(std::string_view s);

// Joins pieces with a separator.
std::string join(const std::vector<std::string>& pieces,
                 std::string_view separator);

}  // namespace lpsram
