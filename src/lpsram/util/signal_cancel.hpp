// Wires SIGINT/SIGTERM to a CancelToken so long-running campaign binaries
// (examples, the fabric daemon) turn Ctrl-C into a graceful drain: the token
// flips, in-flight tasks finish and journal, and the process exits with its
// journals intact and resumable. SA_RESETHAND restores the default
// disposition after the first signal — a second Ctrl-C kills outright, the
// escape hatch when a drain itself wedges.
#pragma once

#include "lpsram/util/cancel.hpp"

namespace lpsram {

// Installs handlers for SIGINT and SIGTERM that cancel `token`. The token
// must outlive the handlers (in practice: a main()-scope token installed
// once). Only one token can be armed per process; installing again rebinds.
// No-op (returns false) on platforms without sigaction.
bool install_cancel_on_signal(CancelToken& token);

}  // namespace lpsram
