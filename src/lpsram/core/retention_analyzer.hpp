// Facade over the cell-level analyses of Section III: SNM in deep-sleep,
// DRV per variation pattern, the Fig. 4 per-transistor sweep and the
// worst-case DRV_DS derivation.
#pragma once

#include <span>
#include <vector>

#include "lpsram/cell/snm.hpp"
#include "lpsram/runtime/campaign.hpp"
#include "lpsram/runtime/parallel.hpp"
#include "lpsram/runtime/quarantine.hpp"
#include "lpsram/testflow/report.hpp"
#include "lpsram/util/cancel.hpp"

namespace lpsram {

class RetentionAnalyzer {
 public:
  explicit RetentionAnalyzer(const Technology& tech) : tech_(tech) {}

  // Hold-mode SNM pair at a supply/corner/temperature.
  SnmPair snm(const CellVariation& variation, double vdd_cc, Corner corner,
              double temp_c) const;

  // DRV pair at one corner/temperature.
  DrvResult drv(const CellVariation& variation, Corner corner,
                double temp_c) const;

  // Worst-case DRV over the full corner x temperature grid (Table I row).
  PvtDrvResult drv_worst(const CellVariation& variation) const;

  // Fig. 4 sweep: for each of the six transistors and each sigma value,
  // the worst-case DRV_DS1 / DRV_DS0. `corners`/`temps` default to the
  // full grid when empty. With `report`, (transistor, sigma) points whose
  // DRV solve fails are quarantined and skipped instead of aborting the
  // sweep; without it the first failure propagates. Points run on the
  // parallel sweep executor (`threads` as in SweepExecutorOptions, 0 =
  // automatic); ordering and values are bit-identical at any thread count.
  // Aggregate sweep telemetry lands in `*telemetry` when given. With a
  // `campaign`, completed points are journaled as they finish and a resumed
  // sweep replays them (bit-identical to an uninterrupted run); `cancel` is
  // polled at each point's start (the cell-layer DRV search runs on scalar
  // root-finding, not the Newton solvers, so cancellation here is
  // per-point, not per-iteration) and cancelled points quarantine as
  // SolveTimeout.
  std::vector<Fig4Point> fig4_sweep(std::span<const double> sigmas,
                                    std::span<const Corner> corners = {},
                                    std::span<const double> temps = {},
                                    SweepReport* report = nullptr,
                                    SweepTelemetry* telemetry = nullptr,
                                    int threads = 0,
                                    Campaign* campaign = nullptr,
                                    const CancelToken* cancel = nullptr) const;

  // The worst-case DRV_DS of the SRAM: the CS1 pattern (all six transistors
  // at 6 sigma in the adverse direction) over the PVT grid.
  double worst_case_drv() const;

  const Technology& technology() const noexcept { return tech_; }

 private:
  Technology tech_;
};

}  // namespace lpsram
