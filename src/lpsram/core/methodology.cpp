#include "lpsram/core/methodology.hpp"

#include <algorithm>

namespace lpsram {

double MethodologyReport::validation_coverage() const noexcept {
  if (validations.empty()) return 1.0;
  std::size_t detected = 0;
  for (const DefectValidation& v : validations)
    if (v.detected) ++detected;
  return static_cast<double>(detected) /
         static_cast<double>(validations.size());
}

Methodology::Methodology(const Technology& tech, MethodologyOptions options)
    : tech_(tech), options_(options) {}

MethodologyReport Methodology::run(std::span<const DefectId> defects) const {
  MethodologyReport report;

  // Step 1: variation analysis (Table I) and worst-case DRV.
  for (const CaseStudy& cs : paper_case_studies())
    report.table1.push_back(characterize_case_study(tech_, cs));
  report.worst_drv = 0.0;
  for (const CaseStudyDrv& row : report.table1)
    report.worst_drv = std::max(report.worst_drv, row.drv_ds());

  // Steps 2+3: defect characterization and flow generation.
  FlowOptimizer::Options flow_options = options_.flow;
  flow_options.worst_drv = report.worst_drv;
  const TestFlowGenerator generator(tech_, flow_options);
  report.generated = generator.generate(defects);

  // Step 4: validation on a device instance. The device carries one
  // worst-case (CS1) weak cell and is tested at the flow's corner and
  // temperature.
  const CaseStudy cs1 = case_study(1, true);
  const CoreCell weak_cell(tech_, cs1.variation, flow_options.corner);
  const DrvResult weak_drv = drv_ds(weak_cell, flow_options.temp_c);

  auto make_sram = [&]() {
    SramConfig config;
    config.words = options_.validation_words;
    config.bits = options_.validation_bits;
    config.corner = flow_options.corner;
    config.vdd = tech_.vdd_nominal();
    config.temp_c = flow_options.temp_c;
    auto sram = std::make_unique<LowPowerSram>(config);
    sram->add_weak_cell(options_.validation_words / 2,
                        options_.validation_bits / 2, weak_drv);
    return sram;
  };

  {
    auto healthy = make_sram();
    const FlowRunResult run = run_flow(*healthy, report.generated);
    report.healthy_passes = !run.any_failure;
  }

  // Global best Rmin per defect from the matrix.
  for (std::size_t di = 0; di < report.generated.matrix.defects.size(); ++di) {
    const DefectId id = report.generated.matrix.defects[di];
    double best = report.generated.matrix.r_high * 2.0;
    for (const auto& row : report.generated.matrix.rmin)
      best = std::min(best, row[di]);
    if (best > report.generated.matrix.r_high) continue;  // undetectable

    DefectValidation validation;
    validation.id = id;
    validation.injected_resistance =
        best * options_.validation_resistance_factor;

    auto sram = make_sram();
    sram->inject_regulator_defect(id, validation.injected_resistance);
    const FlowRunResult run = run_flow(*sram, report.generated);
    validation.detected = run.any_failure;
    for (std::size_t i = 0; i < run.iterations.size(); ++i) {
      if (!run.iterations[i].passed) {
        validation.failing_iteration = static_cast<int>(i);
        break;
      }
    }
    report.validations.push_back(validation);
  }

  return report;
}

}  // namespace lpsram
