#include "lpsram/core/retention_analyzer.hpp"

#include <cstdio>

#include "lpsram/testflow/case_studies.hpp"
#include "lpsram/util/error.hpp"

namespace lpsram {

SnmPair RetentionAnalyzer::snm(const CellVariation& variation, double vdd_cc,
                               Corner corner, double temp_c) const {
  const CoreCell cell(tech_, variation, corner);
  return hold_snm_pair(cell, vdd_cc, temp_c);
}

DrvResult RetentionAnalyzer::drv(const CellVariation& variation, Corner corner,
                                 double temp_c) const {
  const CoreCell cell(tech_, variation, corner);
  return drv_ds(cell, temp_c);
}

PvtDrvResult RetentionAnalyzer::drv_worst(const CellVariation& variation) const {
  return drv_ds_worst(tech_, variation);
}

std::vector<Fig4Point> RetentionAnalyzer::fig4_sweep(
    std::span<const double> sigmas, std::span<const Corner> corners,
    std::span<const double> temps, SweepReport* report) const {
  const std::span<const Corner> corner_grid =
      corners.empty() ? std::span<const Corner>(kAllCorners) : corners;
  const std::span<const double> temp_grid =
      temps.empty() ? std::span<const double>(tech_.temperatures()) : temps;

  std::vector<Fig4Point> points;
  points.reserve(sigmas.size() * kAllCellTransistors.size());
  for (const CellTransistor t : kAllCellTransistors) {
    for (const double sigma : sigmas) {
      CellVariation variation;
      variation.set(t, sigma);
      const auto sweep_point = [&] {
        const PvtDrvResult worst =
            drv_ds_worst(tech_, variation, corner_grid, temp_grid);
        points.push_back(Fig4Point{t, sigma, worst.drv.drv1, worst.drv.drv0});
      };
      if (!report) {
        sweep_point();
        continue;
      }
      try {
        sweep_point();
        report->add_success();
      } catch (const Error& e) {
        char context[64];
        std::snprintf(context, sizeof(context), "%s @ %+.1f sigma",
                      cell_transistor_name(t).c_str(), sigma);
        report->quarantine(context, e);
      }
    }
  }
  return points;
}

double RetentionAnalyzer::worst_case_drv() const {
  return characterize_case_study(tech_, case_study(1, true)).drv_ds();
}

}  // namespace lpsram
