#include "lpsram/core/retention_analyzer.hpp"

#include <chrono>
#include <cstdio>

#include "lpsram/cell/batch_vtc.hpp"
#include "lpsram/spice/dc_solver.hpp"
#include "lpsram/spice/hooks.hpp"
#include "lpsram/testflow/case_studies.hpp"
#include "lpsram/util/error.hpp"

namespace lpsram {

SnmPair RetentionAnalyzer::snm(const CellVariation& variation, double vdd_cc,
                               Corner corner, double temp_c) const {
  const CoreCell cell(tech_, variation, corner);
  return hold_snm_pair(cell, vdd_cc, temp_c);
}

DrvResult RetentionAnalyzer::drv(const CellVariation& variation, Corner corner,
                                 double temp_c) const {
  const CoreCell cell(tech_, variation, corner);
  return drv_ds(cell, temp_c);
}

PvtDrvResult RetentionAnalyzer::drv_worst(const CellVariation& variation) const {
  return drv_ds_worst(tech_, variation);
}

std::vector<Fig4Point> RetentionAnalyzer::fig4_sweep(
    std::span<const double> sigmas, std::span<const Corner> corners,
    std::span<const double> temps, SweepReport* report,
    SweepTelemetry* telemetry, int threads, Campaign* campaign,
    const CancelToken* cancel) const {
  const std::span<const Corner> corner_grid =
      corners.empty() ? std::span<const Corner>(kAllCorners) : corners;
  const std::span<const double> temp_grid =
      temps.empty() ? std::span<const double>(tech_.temperatures()) : temps;

  // One executor task per (transistor, sigma) point, enumerated in the
  // serial order; quarantined points are skipped during the index-ordered
  // collection below, so the surviving points keep their relative order.
  struct Task {
    CellTransistor transistor;
    double sigma = 0.0;
  };
  std::vector<Task> tasks;
  tasks.reserve(sigmas.size() * kAllCellTransistors.size());
  for (const CellTransistor t : kAllCellTransistors)
    for (const double sigma : sigmas) tasks.push_back({t, sigma});

  struct Slot {
    Fig4Point point;
    bool ok = false;
    bool failed = false;  // quarantined (q holds the record)
    QuarantinedPoint q;
    double wall_s = 0.0;
  };
  std::vector<Slot> slots(tasks.size());

  // Stable task identity — also the campaign journal key for the point.
  const auto key_of = [&tasks](std::size_t i) {
    return fold_key(fold_key(0x66696734ULL,  // "fig4"
                             static_cast<std::uint64_t>(tasks[i].transistor)),
                    i);
  };

  // Campaign manifest: sigma list and the PVT grid the worst case is taken
  // over. Resuming a journal recorded for a different grid is refused.
  if (campaign) {
    std::uint64_t fp = fold_key(0x66696734ULL, tasks.size());
    for (const double sigma : sigmas) fp = fold_key(fp, key_bits(sigma));
    for (const Corner corner : corner_grid)
      fp = fold_key(fp, static_cast<std::uint64_t>(corner));
    for (const double temp : temp_grid) fp = fold_key(fp, key_bits(temp));
    // Cell-analysis kernel behind the journaled DRVs: the batched engine
    // agrees with the scalar oracle except within solver noise of the
    // retention fold, so a journal recorded under one kernel refuses to
    // resume under the other instead of silently blending kernels.
    fp = fold_key(fp, static_cast<std::uint64_t>(resolved_cell_kernel()));
    campaign->bind_sweep(0x66696734ULL, fp);
  }

  SweepExecutorOptions exec_options;
  exec_options.threads = threads;
  SweepExecutor executor(exec_options);

  const auto started = std::chrono::steady_clock::now();
  const auto body = [&](std::size_t i, int) {
    const Task& task = tasks[i];
    Slot& slot = slots[i];
    // The DRV search is observer-free cell-layer code, but scope the task
    // anyway: the contract is that no executor task ever shares a session
    // observer instance with a concurrent task.
    const ScopedTaskObserver task_scope(key_of(i));
    const auto task_started = std::chrono::steady_clock::now();
    CellVariation variation;
    variation.set(task.transistor, task.sigma);
    try {
      poll_cancel(cancel, "fig4_sweep", 0, 0.0);
      const PvtDrvResult worst =
          drv_ds_worst(tech_, variation, corner_grid, temp_grid);
      slot.point =
          Fig4Point{task.transistor, task.sigma, worst.drv.drv1, worst.drv.drv0};
      slot.ok = true;
    } catch (const Error& e) {
      if (!report) throw;
      char context[64];
      std::snprintf(context, sizeof(context), "%s @ %+.1f sigma",
                    cell_transistor_name(task.transistor).c_str(), task.sigma);
      slot.failed = true;
      slot.q = quarantined_point(context, e);
    }
    slot.wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - task_started)
                      .count();
  };

  // Journal payload: the DRV pair (transistor and sigma are re-derived from
  // the task index on decode) or the quarantine record.
  CampaignTaskCodec codec;
  codec.encode = [&slots](std::size_t i) {
    const Slot& slot = slots[i];
    PayloadWriter out;
    out.u8(slot.ok ? 1 : 0);
    if (slot.ok) {
      out.f64(slot.point.drv1);
      out.f64(slot.point.drv0);
    } else {
      encode_quarantine(out, slot.q);
    }
    return out.take();
  };
  codec.decode = [&slots, &tasks](std::size_t i, PayloadReader& in) {
    Slot& slot = slots[i];
    slot.ok = in.u8() != 0;
    if (slot.ok) {
      slot.point.transistor = tasks[i].transistor;
      slot.point.sigma = tasks[i].sigma;
      slot.point.drv1 = in.f64();
      slot.point.drv0 = in.f64();
    } else {
      slot.failed = true;
      slot.q = decode_quarantine(in);
    }
  };

  run_campaign(executor, campaign, /*cache=*/nullptr, tasks.size(), key_of,
               body, codec);

  // Index-ordered collection.
  std::vector<Fig4Point> points;
  points.reserve(tasks.size());
  SweepTelemetry sweep;
  sweep.tasks = tasks.size();
  sweep.threads = executor.threads();
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const Slot& slot = slots[i];
    sweep.cpu_s += slot.wall_s;
    if (slot.ok) {
      points.push_back(slot.point);
      if (report) report->add_success();
    } else if (report) {
      report->quarantine(slot.q);
    }
  }
  sweep.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  if (telemetry) *telemetry = sweep;
  return points;
}

double RetentionAnalyzer::worst_case_drv() const {
  return characterize_case_study(tech_, case_study(1, true)).drv_ds();
}

}  // namespace lpsram
