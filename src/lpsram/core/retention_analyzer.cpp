#include "lpsram/core/retention_analyzer.hpp"

#include <chrono>
#include <cstdio>
#include <exception>

#include "lpsram/spice/hooks.hpp"
#include "lpsram/testflow/case_studies.hpp"
#include "lpsram/util/error.hpp"

namespace lpsram {

SnmPair RetentionAnalyzer::snm(const CellVariation& variation, double vdd_cc,
                               Corner corner, double temp_c) const {
  const CoreCell cell(tech_, variation, corner);
  return hold_snm_pair(cell, vdd_cc, temp_c);
}

DrvResult RetentionAnalyzer::drv(const CellVariation& variation, Corner corner,
                                 double temp_c) const {
  const CoreCell cell(tech_, variation, corner);
  return drv_ds(cell, temp_c);
}

PvtDrvResult RetentionAnalyzer::drv_worst(const CellVariation& variation) const {
  return drv_ds_worst(tech_, variation);
}

std::vector<Fig4Point> RetentionAnalyzer::fig4_sweep(
    std::span<const double> sigmas, std::span<const Corner> corners,
    std::span<const double> temps, SweepReport* report,
    SweepTelemetry* telemetry, int threads) const {
  const std::span<const Corner> corner_grid =
      corners.empty() ? std::span<const Corner>(kAllCorners) : corners;
  const std::span<const double> temp_grid =
      temps.empty() ? std::span<const double>(tech_.temperatures()) : temps;

  // One executor task per (transistor, sigma) point, enumerated in the
  // serial order; quarantined points are skipped during the index-ordered
  // collection below, so the surviving points keep their relative order.
  struct Task {
    CellTransistor transistor;
    double sigma = 0.0;
  };
  std::vector<Task> tasks;
  tasks.reserve(sigmas.size() * kAllCellTransistors.size());
  for (const CellTransistor t : kAllCellTransistors)
    for (const double sigma : sigmas) tasks.push_back({t, sigma});

  struct Slot {
    Fig4Point point;
    bool ok = false;
    std::exception_ptr error;
    double wall_s = 0.0;
  };
  std::vector<Slot> slots(tasks.size());

  SweepExecutorOptions exec_options;
  exec_options.threads = threads;
  SweepExecutor executor(exec_options);

  const auto started = std::chrono::steady_clock::now();
  executor.run(tasks.size(), [&](std::size_t i, int) {
    const Task& task = tasks[i];
    Slot& slot = slots[i];
    // The DRV search is observer-free cell-layer code, but scope the task
    // anyway: the contract is that no executor task ever shares a session
    // observer instance with a concurrent task.
    const ScopedTaskObserver task_scope(
        fold_key(fold_key(0x66696734ULL,  // "fig4"
                          static_cast<std::uint64_t>(task.transistor)),
                 i));
    const auto task_started = std::chrono::steady_clock::now();
    CellVariation variation;
    variation.set(task.transistor, task.sigma);
    try {
      const PvtDrvResult worst =
          drv_ds_worst(tech_, variation, corner_grid, temp_grid);
      slot.point =
          Fig4Point{task.transistor, task.sigma, worst.drv.drv1, worst.drv.drv0};
      slot.ok = true;
    } catch (const Error&) {
      if (!report) throw;
      slot.error = std::current_exception();
    }
    slot.wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - task_started)
                      .count();
  });

  // Index-ordered collection.
  std::vector<Fig4Point> points;
  points.reserve(tasks.size());
  SweepTelemetry sweep;
  sweep.tasks = tasks.size();
  sweep.threads = executor.threads();
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const Slot& slot = slots[i];
    sweep.cpu_s += slot.wall_s;
    if (slot.ok) {
      points.push_back(slot.point);
      if (report) report->add_success();
    } else if (report) {
      try {
        std::rethrow_exception(slot.error);
      } catch (const Error& e) {
        char context[64];
        std::snprintf(context, sizeof(context), "%s @ %+.1f sigma",
                      cell_transistor_name(tasks[i].transistor).c_str(),
                      tasks[i].sigma);
        report->quarantine(context, e);
      }
    }
  }
  sweep.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  if (telemetry) *telemetry = sweep;
  return points;
}

double RetentionAnalyzer::worst_case_drv() const {
  return characterize_case_study(tech_, case_study(1, true)).drv_ds();
}

}  // namespace lpsram
