// The paper's final deliverable: March m-LZ plus the optimized 3-iteration
// test flow, generated from the electrical characterization, and a runner
// that applies the flow to an actual (possibly defective) SRAM instance.
#pragma once

#include "lpsram/faults/fault_sim.hpp"
#include "lpsram/march/library.hpp"
#include "lpsram/testflow/flow_optimizer.hpp"

namespace lpsram {

struct GeneratedTestFlow {
  MarchTest test;        // March m-LZ
  OptimizedFlow flow;    // optimized iterations
  DetectionMatrix matrix;  // raw characterization data behind the flow
  double worst_drv = 0.0;
};

class TestFlowGenerator {
 public:
  explicit TestFlowGenerator(const Technology& tech,
                             FlowOptimizer::Options options = {});

  // Characterizes the defects and produces the optimized flow.
  GeneratedTestFlow generate(
      std::span<const DefectId> defects = table2_defects()) const;

 private:
  Technology tech_;
  FlowOptimizer::Options options_;
};

// Result of applying a flow to one device.
struct FlowRunResult {
  bool any_failure = false;
  // Per-iteration March results, in flow order.
  std::vector<MarchRunResult> iterations;
  double total_test_time = 0.0;  // simulated tester time [s]
};

// Runs the March test at every iteration's condition against the SRAM
// (reconfiguring VDD / Vref between iterations) and aggregates the verdict.
FlowRunResult run_flow(LowPowerSram& sram, const GeneratedTestFlow& flow,
                       MarchExecutorOptions executor_options = {});

}  // namespace lpsram
