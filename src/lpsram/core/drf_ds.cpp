#include "lpsram/core/drf_ds.hpp"

#include <algorithm>

namespace lpsram {

std::string defect_impact_name(DefectImpact impact) {
  switch (impact) {
    case DefectImpact::Negligible: return "negligible";
    case DefectImpact::IncreasedPower: return "increased static power";
    case DefectImpact::RetentionFault: return "DRF";
    case DefectImpact::Both: return "power + DRF";
  }
  return "?";
}

bool DrfDsFaultModel::occurs(const RegulatorCharacterizer& characterizer,
                             const DsCondition& condition, DefectId id,
                             double ohms, double drv) {
  return characterizer.causes_drf(condition, id, ohms, drv);
}

std::vector<DefectClassification> DrfDsFaultModel::classify(
    const Technology& tech, const DsCondition& condition, double drv,
    const std::vector<double>& resistances) {
  ArrayLoadModel::Options load;
  load.total_cells = 256 * 1024;
  const RegulatorCharacterizer characterizer(tech, load);

  // Probe across the *valid* (VDD, Vref) grid — settings whose ideal Vreg
  // clears the DRV, the same rule the test flow applies (a healthy device
  // must pass every probe). Sweeping the tap selection is what surfaces the
  // dual-behaviour divider defects: an open raises the taps above it and
  // lowers those below.
  constexpr double kPowerBand = 0.020;  // Vreg this far above healthy => power
  constexpr double kDrvGuard = 0.01;

  std::vector<DsCondition> probes;
  for (const double vdd : tech.vdd_levels()) {
    for (const VrefLevel level : kAllVrefLevels) {
      DsCondition probe = condition;
      probe.vdd = vdd;
      probe.vref = level;
      if (probe.expected_vreg() >= drv + kDrvGuard) probes.push_back(probe);
    }
  }

  std::vector<DefectClassification> result;
  for (const DefectSite& site : defect_sites()) {
    DefectClassification c;
    c.id = site.id;
    c.vreg_min = 2.0;
    c.vreg_max = 0.0;
    bool any_drf = false;
    bool any_power = false;

    for (const DsCondition& probe : probes) {
      const double healthy = characterizer.vreg_healthy(probe);
      for (const double r : resistances) {
        // Power signature from the DC solve.
        const double v = characterizer.vreg(probe, site.id, r);
        c.vreg_min = std::min(c.vreg_min, v);
        c.vreg_max = std::max(c.vreg_max, v);
        if (v > healthy + kPowerBand) any_power = true;
        // Retention signature via the full (DC or transient) criterion.
        if (characterizer.causes_drf(probe, site.id, r, drv)) any_drf = true;
      }
    }

    if (any_drf && any_power)
      c.impact = DefectImpact::Both;
    else if (any_drf)
      c.impact = DefectImpact::RetentionFault;
    else if (any_power)
      c.impact = DefectImpact::IncreasedPower;
    else
      c.impact = DefectImpact::Negligible;
    result.push_back(c);
  }
  return result;
}

}  // namespace lpsram
