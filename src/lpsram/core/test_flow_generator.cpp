#include "lpsram/core/test_flow_generator.hpp"

namespace lpsram {

TestFlowGenerator::TestFlowGenerator(const Technology& tech,
                                     FlowOptimizer::Options options)
    : tech_(tech), options_(options) {}

GeneratedTestFlow TestFlowGenerator::generate(
    std::span<const DefectId> defects) const {
  const FlowOptimizer optimizer(tech_, options_);

  GeneratedTestFlow generated;
  generated.test = march::march_m_lz();
  generated.matrix = optimizer.build_matrix(defects);
  generated.flow = optimizer.optimize(generated.matrix);
  generated.worst_drv = optimizer.worst_drv();
  return generated;
}

FlowRunResult run_flow(LowPowerSram& sram, const GeneratedTestFlow& flow,
                       MarchExecutorOptions executor_options) {
  FlowRunResult result;
  for (const FlowIteration& iteration : flow.flow.iterations) {
    sram.set_vdd(iteration.condition.vdd);
    sram.select_vref(iteration.condition.vref);

    MarchExecutorOptions options = executor_options;
    options.ds_time = iteration.condition.ds_time;
    MarchExecutor executor(sram, options);
    MarchRunResult run = executor.run(flow.test);
    result.any_failure = result.any_failure || !run.passed;
    result.total_test_time +=
        march_test_time(flow.test, sram.words(), sram.config().cycle_time,
                        iteration.condition.ds_time);
    result.iterations.push_back(std::move(run));
  }
  return result;
}

}  // namespace lpsram
