// End-to-end runner of the paper's "complete methodology":
//   1. analyze the impact of Vth variation on DRV_DS (Table I) and derive
//      the worst case;
//   2. characterize the regulator's resistive-open defects (Table II data);
//   3. generate the optimized March m-LZ test flow (Table III);
//   4. validate the flow by injecting each DRF-causing defect into a full
//      SRAM instance with a worst-case weak cell and checking that the flow
//      actually fails the device.
#pragma once

#include "lpsram/core/test_flow_generator.hpp"
#include "lpsram/testflow/case_studies.hpp"

namespace lpsram {

struct MethodologyOptions {
  FlowOptimizer::Options flow{};
  // Validation SRAM size. The reference 4Kx64 block by default: the array
  // load is part of the defect physics (a light array masks series defects
  // the full array exposes), so validation uses the characterized size.
  std::size_t validation_words = 4096;
  int validation_bits = 64;
  // Defect resistance injected during validation, as a multiple of the
  // characterized minimal resistance of the flow's best condition.
  double validation_resistance_factor = 4.0;
  double ds_time = 1e-3;
};

struct DefectValidation {
  DefectId id = 0;
  double injected_resistance = 0.0;
  bool detected = false;         // flow failed the defective device
  int failing_iteration = -1;    // first iteration that caught it
};

struct MethodologyReport {
  std::vector<CaseStudyDrv> table1;
  double worst_drv = 0.0;
  GeneratedTestFlow generated;
  std::vector<DefectValidation> validations;
  bool healthy_passes = false;   // the flow passes a defect-free device

  // Fraction of injected (detectable) defects the flow caught.
  double validation_coverage() const noexcept;
};

class Methodology {
 public:
  explicit Methodology(const Technology& tech, MethodologyOptions options = {});

  MethodologyReport run(std::span<const DefectId> defects = table2_defects()) const;

 private:
  Technology tech_;
  MethodologyOptions options_;
};

}  // namespace lpsram
