// The paper's fault model (Section V):
//
//   Data retention fault in DS mode (DRF_DS): in DS mode, the regulated
//   voltage Vreg is reduced to a level such that the core-cell array supply
//   voltage is lower than DRV_DS of the SRAM. As a consequence, one or more
//   core-cells in the array lose the stored data.
//
// DRF_DS is a *dynamic* fault: sensitization takes three steps — switch
// ACT -> DS, switch back (wake-up), and read every cell. This header also
// implements the Section IV.B defect classification (negligible / increased
// static power / DRF / both).
#pragma once

#include <vector>

#include "lpsram/regulator/characterize.hpp"

namespace lpsram {

// Section IV.B's three categories plus "negligible".
enum class DefectImpact {
  Negligible,      // no observable static or retention effect
  IncreasedPower,  // Vreg higher than expected in DS mode
  RetentionFault,  // Vreg low enough to cause DRF_DS
  Both,            // either, depending on resistance / Vref setting
};

std::string defect_impact_name(DefectImpact impact);

struct DefectClassification {
  DefectId id = 0;
  DefectImpact impact = DefectImpact::Negligible;
  // Extremes of Vreg observed over the probed resistances [V].
  double vreg_min = 0.0;
  double vreg_max = 0.0;
};

// The sensitization recipe for DRF_DS, as operation counts: one DSM, one
// WUP, plus a read of every cell (complexity N + 2). March m-LZ applies it
// twice, once per data background.
struct DrfDsSensitization {
  int mode_switches = 2;  // DSM + WUP
  int reads_per_cell = 1;
};

class DrfDsFaultModel {
 public:
  // True if the condition/defect combination produces a DRF_DS for cells at
  // the given DRV (delegates to the electrical characterization).
  static bool occurs(const RegulatorCharacterizer& characterizer,
                     const DsCondition& condition, DefectId id, double ohms,
                     double drv);

  // Classifies every regulator defect by probing a resistance ladder under
  // the given DS condition *at every Vref setting*: any probed combination
  // causing a retention flip flags RetentionFault; any probed Vreg above the
  // healthy value flags IncreasedPower. The Vref sweep is what surfaces the
  // paper's dual-behaviour divider defects (Df2..Df5), whose sign depends on
  // where the open sits relative to the selected tap.
  static std::vector<DefectClassification> classify(
      const Technology& tech, const DsCondition& condition, double drv,
      const std::vector<double>& resistances = {10e3, 1e6, 100e6, 400e6});
};

}  // namespace lpsram
