#include "lpsram/runtime/fabric/fabric.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>
#include <unordered_map>

#include "lpsram/runtime/campaign.hpp"
#include "lpsram/runtime/parallel.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#define LPSRAM_HAVE_FABRIC 1
#endif

namespace lpsram::fabric {

namespace fs = std::filesystem;

std::string shard_journal_path(const std::string& dir, int worker_id) {
  return dir + "/shard-" + std::to_string(worker_id) + ".journal";
}
std::string coordinator_log_path(const std::string& dir) {
  return dir + "/coordinator.journal";
}
std::string worker_pid_path(const std::string& dir, int worker_id) {
  return dir + "/worker-" + std::to_string(worker_id) + ".pid";
}
std::string merged_journal_path(const std::string& dir) {
  return dir + "/merged.journal";
}

#ifdef LPSRAM_HAVE_FABRIC

namespace {

// Reaps `pid`, escalating to SIGKILL if it has not exited within
// `patience_s` (a worker can legitimately lag by one wedge/solve before it
// notices the closed channel).
void reap(long pid, double patience_s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(patience_s);
  for (;;) {
    int status = 0;
    const pid_t r = ::waitpid(static_cast<pid_t>(pid), &status, WNOHANG);
    if (r != 0) return;  // reaped, or ECHILD (someone else got it)
    if (std::chrono::steady_clock::now() >= deadline) {
      ::kill(static_cast<pid_t>(pid), SIGKILL);
      ::waitpid(static_cast<pid_t>(pid), &status, 0);
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

struct Fleet {
  std::vector<long> pids;
  std::string dir;
  bool killed = false;

  // Exception path: the run is being abandoned, take the workers with it.
  void kill_all() noexcept {
    if (killed) return;
    killed = true;
    for (const long pid : pids) ::kill(static_cast<pid_t>(pid), SIGKILL);
    for (const long pid : pids) {
      int status = 0;
      ::waitpid(static_cast<pid_t>(pid), &status, 0);
    }
    cleanup_pidfiles();
  }

  void cleanup_pidfiles() noexcept {
    std::error_code ec;
    for (std::size_t i = 0; i < pids.size(); ++i)
      fs::remove(worker_pid_path(dir, static_cast<int>(i)), ec);
  }

  ~Fleet() { kill_all(); }
};

}  // namespace

FabricReport run_fabric(const FabricOptions& options, std::uint64_t count,
                        const FabricKeyFn& key_of,
                        const FabricTaskFn& task_fn) {
  if (options.workers <= 0)
    throw InvalidArgument("fabric: need at least one worker");
  if (options.dir.empty())
    throw InvalidArgument("fabric: journal directory required");
  fs::create_directories(options.dir);

  // Recover whatever earlier incarnations already committed: scan every
  // shard journal and map committed task keys back to sweep indices. This is
  // what makes both halves of the crash envelope survivable — the shard
  // files, not any process, are the source of truth.
  std::unordered_map<std::uint64_t, std::uint64_t> index_of_key;
  std::vector<std::uint64_t> keys_in_index_order;
  keys_in_index_order.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t key = key_of(i);
    keys_in_index_order.push_back(key);
    index_of_key[key] = i;
  }
  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> recovered;
  std::vector<std::string> shard_paths;
  for (int w = 0; w < options.workers; ++w) {
    const std::string path = shard_journal_path(options.dir, w);
    shard_paths.push_back(path);
    if (!fs::exists(path)) continue;
    const ShardSnapshot snapshot = read_campaign_snapshot(path);
    const auto it = snapshot.manifests.find(options.salt);
    if (it != snapshot.manifests.end() && it->second != options.fingerprint)
      throw InvalidArgument(
          "fabric: shard journal " + path +
          " was recorded for a different sweep configuration");
    for (const auto& [key, task] : snapshot.tasks) {
      const auto idx = index_of_key.find(key);
      if (idx == index_of_key.end())
        throw InvalidArgument("fabric: shard journal " + path +
                              " holds a task key outside this sweep");
      recovered.emplace(idx->second, task.payload);
    }
  }

  const int threads = options.worker_threads > 0
                          ? options.worker_threads
                          : SweepExecutor::threads_per_process(options.workers);

  // All socketpairs before any fork, so each child can close every end that
  // is not its own — otherwise a sibling's inherited fd copy would keep a
  // dead peer's channel from ever reaching EOF.
  std::vector<std::pair<MessageChannel, MessageChannel>> channels;
  channels.reserve(static_cast<std::size_t>(options.workers));
  for (int w = 0; w < options.workers; ++w)
    channels.push_back(MessageChannel::make_pair());

  Fleet fleet;
  fleet.dir = options.dir;
  for (int w = 0; w < options.workers; ++w) {
    const pid_t pid = ::fork();
    if (pid < 0)
      throw Error(std::string("fabric: fork failed: ") + std::strerror(errno));
    if (pid == 0) {
      // Child: crash-injection state is process-global and inherited — a
      // coordinator-side ScopedJournalCrash must not fire on shard appends.
      disarm_journal_crash();
      for (int o = 0; o < options.workers; ++o) {
        channels[static_cast<std::size_t>(o)].first.close();
        if (o != w) channels[static_cast<std::size_t>(o)].second.close();
      }
      WorkerOptions wopt;
      wopt.worker_id = w;
      wopt.shard_journal = shard_journal_path(options.dir, w);
      wopt.heartbeat_interval_s = options.heartbeat_interval_s;
      wopt.salt = options.salt;
      wopt.fingerprint = options.fingerprint;
      wopt.threads = threads;
      if (static_cast<std::size_t>(w) < options.chaos.size())
        wopt.chaos = options.chaos[static_cast<std::size_t>(w)];
      try {
        run_fabric_worker(channels[static_cast<std::size_t>(w)].second, wopt,
                          key_of, task_fn);
      } catch (const JournalCrash&) {
        std::_Exit(10);  // injected shard-journal death
      } catch (...) {
        std::_Exit(11);
      }
      std::_Exit(0);
    }
    fleet.pids.push_back(pid);
    channels[static_cast<std::size_t>(w)].second.close();
    std::ofstream pidfile(worker_pid_path(options.dir, w), std::ios::trunc);
    pidfile << pid << "\n";
  }

  CoordinatorOptions copt;
  copt.lease_log = coordinator_log_path(options.dir);
  copt.salt = options.salt;
  copt.fingerprint = options.fingerprint;
  copt.task_count = count;
  copt.leases.span = options.lease_span;
  copt.leases.lease_timeout_s = options.lease_timeout_s;
  copt.leases.heartbeat_interval_s = options.heartbeat_interval_s;
  copt.leases.backoff_initial_s = options.backoff_initial_s;
  copt.leases.backoff_max_s = options.backoff_max_s;
  copt.drain = options.drain;

  std::vector<WorkerEndpoint> endpoints;
  endpoints.reserve(static_cast<std::size_t>(options.workers));
  for (int w = 0; w < options.workers; ++w) {
    WorkerEndpoint ep;
    ep.worker_id = w;
    ep.pid = fleet.pids[static_cast<std::size_t>(w)];
    ep.channel = std::move(channels[static_cast<std::size_t>(w)].first);
    endpoints.push_back(std::move(ep));
  }

  Coordinator coordinator(copt, std::move(endpoints), std::move(recovered));
  FabricReport report = coordinator.run();
  report.tasks_total = count;

  // Orderly teardown: the coordinator already broadcast kMsgShutdown; give
  // each worker a moment to exit on its own before escalating.
  for (const long pid : fleet.pids) reap(pid, /*patience_s=*/10.0);
  fleet.killed = true;  // all reaped; the guard has nothing left to do
  fleet.cleanup_pidfiles();

  if (report.complete) {
    std::vector<std::string> existing;
    for (const std::string& path : shard_paths)
      if (fs::exists(path)) existing.push_back(path);
    std::uint64_t merge_duplicates = 0;
    const std::size_t merged = merge_shard_journals(
        options.merged_path(), existing, keys_in_index_order,
        &merge_duplicates);
    // Wire-level and merge-level counts see the same re-commits from two
    // vantage points; report whichever saw more.
    report.duplicates = std::max(report.duplicates, merge_duplicates);
    coordinator.log_merged(merged, merge_duplicates);
  }
  return report;
}

int kill_all_workers(const std::string& dir) {
  int killed = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("worker-", 0) != 0 ||
        entry.path().extension() != ".pid")
      continue;
    std::ifstream in(entry.path());
    long pid = 0;
    if ((in >> pid) && pid > 1 && ::kill(static_cast<pid_t>(pid), SIGKILL) == 0)
      ++killed;
    fs::remove(entry.path(), ec);
  }
  return killed;
}

#else  // !LPSRAM_HAVE_FABRIC

FabricReport run_fabric(const FabricOptions&, std::uint64_t,
                        const FabricKeyFn&, const FabricTaskFn&) {
  throw Error("fabric: multi-process execution requires a POSIX platform");
}

int kill_all_workers(const std::string&) { return 0; }

#endif  // LPSRAM_HAVE_FABRIC

}  // namespace lpsram::fabric
