#include "lpsram/runtime/fabric/admission.hpp"

#include <chrono>

namespace lpsram::fabric {

Admission AdmissionQueue::try_submit(FabricJob job) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (closed_) return Admission::Closed;
  if (queue_.size() >= capacity_) {
    ++shed_;
    return Admission::Shed;
  }
  queue_.push_back(std::move(job));
  ++accepted_;
  lock.unlock();
  cv_.notify_one();
  return Admission::Accepted;
}

bool AdmissionQueue::pop_for(FabricJob* job, double timeout_s) {
  std::unique_lock<std::mutex> lock(mutex_);
  const bool got = cv_.wait_for(
      lock, std::chrono::duration<double>(timeout_s),
      [&] { return !queue_.empty() || closed_; });
  if (!got || queue_.empty()) return false;
  *job = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

void AdmissionQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool AdmissionQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t AdmissionQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::uint64_t AdmissionQueue::accepted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return accepted_;
}

std::uint64_t AdmissionQueue::shed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shed_;
}

}  // namespace lpsram::fabric
