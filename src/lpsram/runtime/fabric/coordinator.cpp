#include "lpsram/runtime/fabric/coordinator.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <poll.h>
#define LPSRAM_HAVE_FABRIC 1
#endif

namespace lpsram::fabric {

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Poll granularity: the loop wakes at least this often to re-check the drain
// token and lease deadlines even when no worker is talking.
constexpr int kMaxPollMs = 100;

}  // namespace

Coordinator::Coordinator(
    CoordinatorOptions options, std::vector<WorkerEndpoint> workers,
    std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> recovered)
    : core_(std::move(options), std::move(recovered)) {
  workers_.reserve(workers.size());
  for (WorkerEndpoint& ep : workers) {
    WorkerState w;
    w.worker_id = ep.worker_id;
    w.pid = ep.pid;
    w.channel = std::move(ep.channel);
    workers_.push_back(std::move(w));
  }
}

Coordinator::~Coordinator() = default;

std::size_t Coordinator::live_workers() const {
  return static_cast<std::size_t>(
      std::count_if(workers_.begin(), workers_.end(),
                    [](const WorkerState& w) { return w.alive; }));
}

void Coordinator::broadcast_shutdown() {
  for (WorkerState& w : workers_) {
    if (!w.alive) continue;
    w.channel.send(kMsgShutdown, {});  // best effort; EOF reaps them anyway
  }
}

void Coordinator::mark_worker_dead(WorkerState& w) {
  if (!w.alive) return;
  w.alive = false;
  w.channel.close();
  w.lease = -1;
  core_.release_worker(w.worker_id);
}

void Coordinator::try_grant(WorkerState& w, double now) {
  if (!w.alive || w.lease >= 0) return;
  std::vector<std::uint64_t> pending;
  const std::int64_t id = core_.grant(w.worker_id, now, &pending);
  if (id < 0) return;

  PayloadWriter grant;
  grant.u64(static_cast<std::uint64_t>(id));
  grant.u32(static_cast<std::uint32_t>(pending.size()));
  for (const std::uint64_t index : pending) grant.u64(index);
  if (!w.channel.send(kMsgGrant, grant.take())) {
    mark_worker_dead(w);
    return;
  }
  w.lease = id;
  ++core_.report().leases_issued;
}

void Coordinator::handle_message(WorkerState& w, const WireMessage& msg,
                                 double now) {
  switch (msg.type) {
    case kMsgHello:
      break;  // connection is implicit; the greeting is for inspectors
    case kMsgHeartbeat: {
      PayloadReader r(msg.payload);
      (void)r.u32();  // worker id (redundant with the channel)
      core_.note_liveness(w.worker_id, r.u64(), now);
      break;
    }
    case kMsgTaskDone: {
      PayloadReader r(msg.payload);
      const std::uint64_t lease = r.u64();
      const std::uint64_t index = r.u64();
      const std::uint64_t key = r.u64();
      std::vector<std::uint8_t> payload(msg.payload.begin() + 24,
                                        msg.payload.end());
      core_.commit(index, key, std::move(payload));
      // Progress is liveness.
      core_.note_liveness(w.worker_id, lease, now);
      break;
    }
    case kMsgLeaseDone: {
      PayloadReader r(msg.payload);
      const std::uint64_t lease = r.u64();
      if (w.lease >= 0 && static_cast<std::uint64_t>(w.lease) == lease)
        w.lease = -1;  // idle again — eligible for the next grant
      break;
    }
    default:
      throw Error("fabric: coordinator received unexpected message type " +
                  std::to_string(int(msg.type)));
  }
}

FabricReport Coordinator::run() {
#ifndef LPSRAM_HAVE_FABRIC
  throw Error("fabric: coordinator requires a POSIX platform");
#else
  for (;;) {
    if (core_.all_done()) {
      core_.report().complete = true;
      break;
    }
    if (core_.drain_requested() && !core_.any_leased()) {
      core_.report().drained = true;
      break;
    }
    if (live_workers() == 0)
      throw FabricWorkersLost(
          "fabric: all workers died with " +
          std::to_string(core_.tasks_remaining()) + " of " +
          std::to_string(core_.options().task_count) +
          " tasks uncommitted — shard journals retain every committed "
          "result; rerun to resume");

    double now = now_s();
    core_.expire(now);
    for (WorkerState& w : workers_) try_grant(w, now);

    // Sleep until the next deadline/backoff instant, capped so the drain
    // token stays responsive.
    int timeout_ms = kMaxPollMs;
    const double next = core_.next_event();
    if (next < now) timeout_ms = 0;
    else if (next - now < kMaxPollMs / 1000.0)
      timeout_ms = std::max(1, static_cast<int>((next - now) * 1000.0));

    std::vector<pollfd> fds;
    std::vector<WorkerState*> fd_owner;
    for (WorkerState& w : workers_) {
      if (!w.alive) continue;
      fds.push_back(pollfd{w.channel.fd(), POLLIN, 0});
      fd_owner.push_back(&w);
    }
    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("fabric: coordinator poll failed: ") +
                  std::strerror(errno));
    }

    now = now_s();
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      WorkerState& w = *fd_owner[i];
      const bool open = w.channel.pump();
      WireMessage msg;
      while (w.channel.next(&msg)) handle_message(w, msg, now);
      if (!open) mark_worker_dead(w);
    }
  }

  broadcast_shutdown();
  return core_.report();
#endif
}

}  // namespace lpsram::fabric
