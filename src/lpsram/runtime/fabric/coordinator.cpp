#include "lpsram/runtime/fabric/coordinator.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <poll.h>
#define LPSRAM_HAVE_FABRIC 1
#endif

namespace lpsram::fabric {

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Poll granularity: the loop wakes at least this often to re-check the drain
// token and lease deadlines even when no worker is talking.
constexpr int kMaxPollMs = 100;

}  // namespace

Coordinator::Coordinator(
    CoordinatorOptions options, std::vector<WorkerEndpoint> workers,
    std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> recovered)
    : options_(std::move(options)),
      table_(options_.task_count, options_.leases) {
  replay_lease_log();
  lease_completion_logged_.assign(table_.lease_count(), false);

  for (auto& [index, payload] : recovered) {
    if (index >= options_.task_count)
      throw InvalidArgument("fabric: recovered task index out of range");
    payloads_[index] = std::move(payload);
    const std::int64_t completed = table_.note_task_done(index);
    if (completed >= 0)
      lease_completion_logged_[static_cast<std::size_t>(completed)] = true;
    ++report_.tasks_recovered;
  }

  workers_.reserve(workers.size());
  for (WorkerEndpoint& ep : workers) {
    WorkerState w;
    w.worker_id = ep.worker_id;
    w.pid = ep.pid;
    w.channel = std::move(ep.channel);
    workers_.push_back(std::move(w));
  }
}

Coordinator::~Coordinator() = default;

void Coordinator::log_merged(std::uint64_t tasks, std::uint64_t duplicates) {
  PayloadWriter rec;
  rec.u64(tasks);
  rec.u64(duplicates);
  log(kFabLogMerged, rec.take());
}

void Coordinator::log(std::uint8_t type,
                      const std::vector<std::uint8_t>& payload) {
  log_.append(type, payload);
}

void Coordinator::replay_lease_log() {
  const JournalReplay replay = replay_journal(options_.lease_log);
  bool have_manifest = false;
  for (const JournalRecord& record : replay.records) {
    if (record.type != kFabLogManifest) continue;
    PayloadReader r(record.payload);
    const std::uint64_t salt = r.u64();
    const std::uint64_t fp = r.u64();
    const std::uint64_t tasks = r.u64();
    const std::uint64_t span = r.u64();
    if (salt != options_.salt || fp != options_.fingerprint ||
        tasks != options_.task_count || span != options_.leases.span)
      throw InvalidArgument(
          "fabric: lease log was recorded for a different sweep "
          "(manifest mismatch) — refusing to resume against it");
    have_manifest = true;
  }
  log_.open(options_.lease_log, replay.valid_bytes);
  if (!have_manifest) {
    PayloadWriter w;
    w.u64(options_.salt);
    w.u64(options_.fingerprint);
    w.u64(options_.task_count);
    w.u64(options_.leases.span);
    log(kFabLogManifest, w.take());
  }
}

std::size_t Coordinator::live_workers() const {
  return static_cast<std::size_t>(
      std::count_if(workers_.begin(), workers_.end(),
                    [](const WorkerState& w) { return w.alive; }));
}

void Coordinator::broadcast_shutdown() {
  for (WorkerState& w : workers_) {
    if (!w.alive) continue;
    w.channel.send(kMsgShutdown, {});  // best effort; EOF reaps them anyway
  }
}

void Coordinator::mark_worker_dead(WorkerState& w) {
  if (!w.alive) return;
  w.alive = false;
  w.channel.close();
  w.lease = -1;
  ++report_.workers_died;
  PayloadWriter rec;
  rec.u32(static_cast<std::uint32_t>(w.worker_id));
  log(kFabLogWorkerDead, rec.take());
  // Death is definitive: the lease re-queues immediately, no backoff.
  for (const std::uint64_t id : table_.release_worker(w.worker_id)) {
    PayloadWriter req;
    req.u64(id);
    log(kFabLogLeaseExpired, req.take());
  }
}

void Coordinator::try_grant(WorkerState& w, double now) {
  if (!w.alive || w.lease >= 0) return;
  if (options_.drain != nullptr && options_.drain->cancelled()) return;
  const std::int64_t id = table_.grant(w.worker_id, now);
  if (id < 0) return;
  const std::vector<std::uint64_t> pending =
      table_.pending_indices(static_cast<std::uint64_t>(id));

  PayloadWriter rec;
  rec.u64(static_cast<std::uint64_t>(id));
  rec.u32(static_cast<std::uint32_t>(w.worker_id));
  rec.u64(table_.lease(static_cast<std::uint64_t>(id)).grants);
  log(kFabLogLeaseIssued, rec.take());

  PayloadWriter grant;
  grant.u64(static_cast<std::uint64_t>(id));
  grant.u32(static_cast<std::uint32_t>(pending.size()));
  for (const std::uint64_t index : pending) grant.u64(index);
  if (!w.channel.send(kMsgGrant, grant.take())) {
    mark_worker_dead(w);
    return;
  }
  w.lease = id;
  ++report_.leases_issued;
}

void Coordinator::handle_message(WorkerState& w, const WireMessage& msg,
                                 double now) {
  switch (msg.type) {
    case kMsgHello:
      break;  // connection is implicit; the greeting is for inspectors
    case kMsgHeartbeat: {
      PayloadReader r(msg.payload);
      (void)r.u32();  // worker id (redundant with the channel)
      const std::uint64_t lease = r.u64();
      if (lease < table_.lease_count() &&
          table_.lease(lease).state == LeaseState::Leased &&
          table_.lease(lease).worker == w.worker_id)
        table_.refresh(lease, now);
      break;
    }
    case kMsgTaskDone: {
      PayloadReader r(msg.payload);
      const std::uint64_t lease = r.u64();
      const std::uint64_t index = r.u64();
      const std::uint64_t key = r.u64();
      std::vector<std::uint8_t> payload(msg.payload.begin() + 24,
                                        msg.payload.end());
      if (index >= options_.task_count)
        throw Error("fabric: TaskDone index out of range");

      if (table_.task_done(index)) {
        // Straggler re-commit. First commit won; this one must be
        // byte-identical or the determinism contract is broken and the
        // merged journal would depend on scheduling.
        const auto it = payloads_.find(index);
        if (it == payloads_.end() || it->second != payload)
          throw JournalCorrupt(
              "fabric: duplicate commit for task " + std::to_string(index) +
              " differs from the first — nondeterministic task execution");
        ++report_.duplicates;
      } else {
        payloads_[index] = std::move(payload);
        PayloadWriter rec;
        rec.u64(index);
        rec.u64(key);
        log(kFabLogTaskCommitted, rec.take());
        ++report_.tasks_executed;
        const std::int64_t completed = table_.note_task_done(index);
        if (completed >= 0 &&
            !lease_completion_logged_[static_cast<std::size_t>(completed)]) {
          lease_completion_logged_[static_cast<std::size_t>(completed)] = true;
          PayloadWriter done;
          done.u64(static_cast<std::uint64_t>(completed));
          log(kFabLogLeaseCompleted, done.take());
        }
      }
      // Progress is liveness.
      if (lease < table_.lease_count() &&
          table_.lease(lease).state == LeaseState::Leased &&
          table_.lease(lease).worker == w.worker_id)
        table_.refresh(lease, now);
      break;
    }
    case kMsgLeaseDone: {
      PayloadReader r(msg.payload);
      const std::uint64_t lease = r.u64();
      if (w.lease >= 0 && static_cast<std::uint64_t>(w.lease) == lease)
        w.lease = -1;  // idle again — eligible for the next grant
      break;
    }
    default:
      throw Error("fabric: coordinator received unexpected message type " +
                  std::to_string(int(msg.type)));
  }
}

FabricReport Coordinator::run() {
#ifndef LPSRAM_HAVE_FABRIC
  throw Error("fabric: coordinator requires a POSIX platform");
#else
  report_.tasks_total = options_.task_count;

  for (;;) {
    if (table_.all_done()) {
      report_.complete = true;
      break;
    }
    if (options_.drain != nullptr && options_.drain->cancelled() &&
        !table_.any_leased()) {
      report_.drained = true;
      break;
    }
    if (live_workers() == 0)
      throw FabricWorkersLost(
          "fabric: all workers died with " +
          std::to_string(options_.task_count - table_.tasks_done()) +
          " of " + std::to_string(options_.task_count) +
          " tasks uncommitted — shard journals retain every committed "
          "result; rerun to resume");

    double now = now_s();
    for (const std::uint64_t id : table_.expire(now)) {
      ++report_.leases_expired;
      PayloadWriter rec;
      rec.u64(id);
      log(kFabLogLeaseExpired, rec.take());
      // The silent holder keeps its busy mark: it gets no further grants
      // until it speaks again (LeaseDone) or its channel EOFs.
    }
    for (WorkerState& w : workers_) try_grant(w, now);

    // Sleep until the next deadline/backoff instant, capped so the drain
    // token stays responsive.
    int timeout_ms = kMaxPollMs;
    const double next = table_.next_event();
    if (next < now) timeout_ms = 0;
    else if (next - now < kMaxPollMs / 1000.0)
      timeout_ms = std::max(1, static_cast<int>((next - now) * 1000.0));

    std::vector<pollfd> fds;
    std::vector<WorkerState*> fd_owner;
    for (WorkerState& w : workers_) {
      if (!w.alive) continue;
      fds.push_back(pollfd{w.channel.fd(), POLLIN, 0});
      fd_owner.push_back(&w);
    }
    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("fabric: coordinator poll failed: ") +
                  std::strerror(errno));
    }

    now = now_s();
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      WorkerState& w = *fd_owner[i];
      const bool open = w.channel.pump();
      WireMessage msg;
      while (w.channel.next(&msg)) handle_message(w, msg, now);
      if (!open) mark_worker_dead(w);
    }
  }

  broadcast_shutdown();
  return report_;
#endif
}

}  // namespace lpsram::fabric
