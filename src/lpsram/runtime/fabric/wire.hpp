// Typed message channel between the fabric coordinator and its worker
// processes, carried over a POSIX stream socketpair. Every message is framed
// exactly like a journal record — [u32 length][u32 crc32][u8 type + payload]
// — so the wire shares the journal's codec (encode_record_frame /
// FrameParser) and tools/fabric_inspect.py can decode captures with the same
// logic it uses on journal files.
//
// Liveness semantics the coordinator relies on:
//   * recv() returning Eof means the peer's end is closed — for a worker
//     that is SIGKILL, OOM, or a clean exit; for the coordinator it means
//     the parent died and the worker should stop.
//   * send() returns false (instead of raising SIGPIPE) when the peer is
//     gone, so the coordinator can mark a worker dead mid-broadcast.
//   * A checksum or length violation on the stream throws JournalCorrupt:
//     unlike a journal file there is no "torn tail" on a reliable byte
//     stream — damage means a framing bug or a trashed peer.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "lpsram/runtime/journal.hpp"

namespace lpsram::fabric {

// Message types. Worker -> coordinator: Hello, Heartbeat, TaskDone,
// LeaseDone. Coordinator -> worker: Grant, Shutdown.
inline constexpr std::uint8_t kMsgHello = 1;      // [u32 worker]
inline constexpr std::uint8_t kMsgHeartbeat = 2;  // [u32 worker][u64 lease][u64 done]
inline constexpr std::uint8_t kMsgTaskDone = 3;   // [u64 lease][u64 index][u64 key][bytes]
inline constexpr std::uint8_t kMsgLeaseDone = 4;  // [u64 lease]
inline constexpr std::uint8_t kMsgGrant = 5;      // [u64 lease][u32 n][u64 index x n]
inline constexpr std::uint8_t kMsgShutdown = 6;   // []

// Multi-host transport messages (runtime/fabric/net/). Types 16+ so captures
// are unambiguous about which transport produced them. The handshake runs
// NetHello -> NetChallenge -> NetAuth -> NetWelcome | NetRefuse before any
// other message is accepted; ShardChunk/ShardAck implement resumable upload
// of the worker's fsync'd shard journal (see net/server.hpp).
inline constexpr std::uint8_t kMsgNetHello = 16;
//   [u32 proto][u32 worker][u64 salt][u64 fp][u8 reconnect][32B worker_nonce]
inline constexpr std::uint8_t kMsgNetChallenge = 17;
//   [32B server_nonce][32B server_mac]
inline constexpr std::uint8_t kMsgNetAuth = 18;   // [32B worker_mac]
inline constexpr std::uint8_t kMsgNetWelcome = 19;
//   [u64 resume_lease (u64::max = none)][u64 shard_bytes_have]
inline constexpr std::uint8_t kMsgNetRefuse = 20; // [u32 reason][str message]
inline constexpr std::uint8_t kMsgShardChunk = 21;// [u64 offset][raw bytes]
inline constexpr std::uint8_t kMsgShardAck = 22;  // [u64 bytes_have]

// Version of the net handshake + message grammar above. Bumped on any wire
// change; a mismatch is refused before authentication even starts.
inline constexpr std::uint32_t kNetProtocolVersion = 1;

// kMsgNetRefuse reason codes.
enum class NetRefusal : std::uint32_t {
  None = 0,
  Protocol = 1,  // peer speaks a different kNetProtocolVersion
  Manifest = 2,  // worker's sweep salt/fingerprint is not this campaign
  Auth = 3,      // HMAC handshake failed (wrong or missing token)
  Busy = 4,      // server-side limit (too many workers)
};

struct WireMessage {
  std::uint8_t type = 0;
  std::vector<std::uint8_t> payload;
};

enum class RecvStatus { Ok, Eof, Timeout };

// One end of a bidirectional channel. Move-only; owns its fd.
class MessageChannel {
 public:
  MessageChannel() = default;
  explicit MessageChannel(int fd) : fd_(fd) {}
  ~MessageChannel() { close(); }
  MessageChannel(MessageChannel&& other) noexcept { *this = std::move(other); }
  MessageChannel& operator=(MessageChannel&& other) noexcept;
  MessageChannel(const MessageChannel&) = delete;
  MessageChannel& operator=(const MessageChannel&) = delete;

  // A connected pair: first is conventionally the coordinator end, second
  // the worker end. After fork() each process closes the end it does not
  // own.
  static std::pair<MessageChannel, MessageChannel> make_pair();

  // Frames, checksums and writes one message. Returns false when the peer
  // end is closed (EPIPE/ECONNRESET); throws lpsram::Error on other I/O
  // failures.
  bool send(std::uint8_t type, const std::vector<std::uint8_t>& payload);

  // Blocking receive with timeout. Ok fills *out; Timeout means no complete
  // message within `timeout_ms` (negative = wait forever); Eof means the
  // peer is gone and no further messages will arrive (already-buffered
  // complete messages are drained first).
  RecvStatus recv(WireMessage* out, int timeout_ms);

  // Non-blocking: reads whatever bytes are available into the parser.
  // Returns false on EOF. The coordinator's poll loop calls this when the
  // fd is readable, then drains messages with next().
  bool pump();
  // Pops one buffered message; false when none is complete.
  bool next(WireMessage* out);

  int fd() const noexcept { return fd_; }
  bool is_open() const noexcept { return fd_ >= 0; }
  void close() noexcept;

 private:
  int fd_ = -1;
  FrameParser parser_;
};

}  // namespace lpsram::fabric
