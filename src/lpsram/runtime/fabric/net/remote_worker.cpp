#include "lpsram/runtime/fabric/net/remote_worker.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "lpsram/runtime/campaign.hpp"
#include "lpsram/runtime/fabric/net/auth.hpp"
#include "lpsram/runtime/fabric/net/net.hpp"
#include "lpsram/runtime/parallel.hpp"
#include "lpsram/util/error.hpp"

namespace lpsram::fabric {

namespace {

namespace fs = std::filesystem;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Upload granularity. Small enough that a connection cut mid-upload wastes
// little re-send, large enough that the wire framing overhead disappears.
constexpr std::size_t kShardChunkBytes = 56 * 1024;
constexpr std::uint64_t kNoLease = ~std::uint64_t(0);

class RemoteWorker {
 public:
  RemoteWorker(const RemoteWorkerOptions& options, const FabricKeyFn& key_of,
               const FabricTaskFn& task_fn)
      : options_(options),
        key_of_(key_of),
        task_fn_(task_fn),
        campaign_(options.shard_journal) {}

  RemoteWorkerReport run() {
    campaign_.bind_sweep(options_.salt, options_.fingerprint);

    std::unique_ptr<ScopedJournalCrash> shard_crash;
    if (options_.chaos.crash_shard_at_append > 0)
      shard_crash = std::make_unique<ScopedJournalCrash>(
          options_.chaos.crash_shard_at_append);
    wedge_pending_ = options_.chaos.wedge_after_results > 0;

    SweepExecutorOptions exec_options;
    exec_options.threads = options_.threads > 0 ? options_.threads : 1;
    executor_.emplace(exec_options);

    double last_handshake = now_s();
    double backoff = options_.reconnect_backoff_initial_s;
    for (;;) {
      MessageChannel channel;
      bool connected = false;
      try {
        channel = tcp_connect(options_.host, options_.port,
                              options_.connect_timeout_s,
                              options_.io_timeout_s);
        connected = handshake(channel);
      } catch (const Error&) {
        connected = false;
      }
      if (!connected) {
        if (report_.refused != NetRefusal::None) return report_;  // terminal
        if (now_s() - last_handshake > options_.give_up_after_s) {
          report_.gave_up = true;
          return report_;
        }
        std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
        backoff = std::min(backoff * 2.0, options_.reconnect_backoff_max_s);
        continue;
      }
      last_handshake = now_s();
      backoff = options_.reconnect_backoff_initial_s;

      // The server's replica cannot be ahead of our own fsync'd file — if it
      // is, this directory is not the shard that produced those bytes.
      const std::uint64_t local = shard_size();
      if (uploaded_to_ > local)
        throw Error(
            "fabric: server already holds " + std::to_string(uploaded_to_) +
            " bytes of shard " + options_.shard_journal +
            " but the local file has only " + std::to_string(local) +
            " — shard lineage diverged (was the worker directory recreated?)");
      if (!upload_tail(channel)) continue;  // connection died; reconnect
      if (serve(channel)) return report_;
    }
  }

 private:
  // --- handshake --------------------------------------------------------

  // False = retry through the backoff path, unless report_.refused was set
  // (a refusal — by the server, or by us of the server — is terminal).
  bool handshake(MessageChannel& channel) {
    NetHelloFields hello;
    hello.protocol = kNetProtocolVersion;
    hello.worker_id = static_cast<std::uint32_t>(options_.worker_id);
    hello.salt = options_.salt;
    hello.fingerprint = options_.fingerprint;
    hello.reconnect = sessions_ > 0 ? 1 : 0;
    std::uint8_t worker_nonce[kNetNonceBytes];
    fill_random_nonce(worker_nonce, kNetNonceBytes);

    PayloadWriter h;
    h.u32(hello.protocol);
    h.u32(hello.worker_id);
    h.u64(hello.salt);
    h.u64(hello.fingerprint);
    h.u8(hello.reconnect);
    std::vector<std::uint8_t> hello_bytes = h.take();
    hello_bytes.insert(hello_bytes.end(), worker_nonce,
                       worker_nonce + kNetNonceBytes);
    if (!channel.send(kMsgNetHello, hello_bytes)) return false;

    WireMessage msg;
    if (!recv_or_refusal(channel, &msg)) return false;
    if (msg.type != kMsgNetChallenge ||
        msg.payload.size() != kNetNonceBytes + kNetMacBytes)
      return false;
    std::uint8_t server_nonce[kNetNonceBytes];
    std::memcpy(server_nonce, msg.payload.data(), kNetNonceBytes);
    // Mutual authentication: the server must prove it holds our token
    // before we upload a byte or execute a task for it.
    const Sha256Digest expected = handshake_mac(options_.token, 'S', hello,
                                                worker_nonce, server_nonce);
    if (!constant_time_equal(msg.payload.data() + kNetNonceBytes,
                             expected.data(), kNetMacBytes)) {
      report_.refused = NetRefusal::Auth;
      report_.refuse_message =
          "fabric: server failed mutual authentication — it does not hold "
          "this worker's campaign token";
      return false;
    }

    const Sha256Digest mac = handshake_mac(options_.token, 'W', hello,
                                           worker_nonce, server_nonce);
    if (!channel.send(kMsgNetAuth,
                      std::vector<std::uint8_t>(mac.begin(), mac.end())))
      return false;

    if (!recv_or_refusal(channel, &msg)) return false;
    if (msg.type != kMsgNetWelcome || msg.payload.size() != 16) return false;
    PayloadReader r(msg.payload);
    const std::uint64_t resume = r.u64();
    uploaded_to_ = r.u64();
    acked_ = uploaded_to_;  // the Welcome is the server's cumulative ack
    if (sessions_++ > 0) ++report_.reconnects;
    if (resume != kNoLease) ++report_.lease_resumes;
    return true;
  }

  // Receives one handshake-stage message with the I/O deadline. A NetRefuse
  // is recorded (terminal) and reported as failure; so are EOF, timeout and
  // a trashed stream.
  bool recv_or_refusal(MessageChannel& channel, WireMessage* msg) {
    RecvStatus status = RecvStatus::Eof;
    try {
      status = channel.recv(
          msg, static_cast<int>(options_.io_timeout_s * 1000.0));
    } catch (const Error&) {
      // Framing damage or a connection-level read failure: either way the
      // stream is useless — reconnect through a clean one.
      return false;
    }
    if (status != RecvStatus::Ok) return false;
    if (msg->type == kMsgNetRefuse) {
      record_refusal(*msg);
      return false;
    }
    return true;
  }

  void record_refusal(const WireMessage& msg) {
    report_.refused = NetRefusal::Auth;  // safest default on a short payload
    report_.refuse_message = "fabric: server refused the connection";
    if (msg.payload.size() < 8) return;
    try {
      PayloadReader r(msg.payload);
      report_.refused = static_cast<NetRefusal>(r.u32());
      report_.refuse_message = r.str();
    } catch (const JournalCorrupt&) {
    }
  }

  // --- serving ----------------------------------------------------------

  // True = done for good (shutdown or terminal refusal); false = reconnect.
  bool serve(MessageChannel& channel) {
    for (;;) {
      if (pending_shutdown_) {  // a Shutdown swallowed by drain_acks()
        report_.shutdown = true;
        return true;
      }
      WireMessage msg;
      RecvStatus status = RecvStatus::Eof;
      try {
        status = channel.recv(
            &msg,
            static_cast<int>(options_.heartbeat_interval_s * 1000.0));
      } catch (const Error&) {
        return false;  // trashed or reset stream — reconnect through a clean one
      }
      if (status == RecvStatus::Eof) return false;
      if (status == RecvStatus::Timeout) {
        // Idle heartbeat: keeps the server's silence deadline at bay while
        // we wait for a grant.
        if (!send_heartbeat(channel, 0)) return false;
        continue;
      }
      switch (msg.type) {
        case kMsgShutdown:
          report_.shutdown = true;
          return true;
        case kMsgShardAck:
          handle_async(msg);  // tracks the server's cumulative offset
          break;
        case kMsgNetRefuse:
          record_refusal(msg);
          return true;
        case kMsgGrant: {
          if (msg.payload.size() < 12) return false;
          PayloadReader r(msg.payload);
          const std::uint64_t lease_id = r.u64();
          const std::uint32_t n = r.u32();
          if (msg.payload.size() < 12 + std::size_t(n) * 8) return false;
          std::vector<std::uint64_t> indices(n);
          for (std::uint32_t i = 0; i < n; ++i) indices[i] = r.u64();
          if (!execute_lease(channel, lease_id, indices)) return false;
          break;
        }
        default:
          return false;  // protocol violation — tear down and reconnect
      }
    }
  }

  bool send_heartbeat(MessageChannel& channel, std::uint64_t lease_id) {
    PayloadWriter hb;
    hb.u32(static_cast<std::uint32_t>(options_.worker_id));
    hb.u64(lease_id);
    hb.u64(results_sent_);
    return channel.send(kMsgHeartbeat, hb.take());
  }

  bool execute_lease(MessageChannel& channel, std::uint64_t lease_id,
                     const std::vector<std::uint64_t>& indices) {
    ++report_.leases_served;

    // Same precompute split as the forked worker: a thread pool overlaps the
    // whole batch up front, a single thread computes lazily so heartbeats
    // interleave with long solves.
    std::vector<std::vector<std::uint8_t>> computed(indices.size());
    std::vector<bool> precomputed(indices.size(), false);
    if (executor_->threads() > 1 && indices.size() > 1) {
      executor_->run(indices.size(), [&](std::size_t j, int slot) {
        if (campaign_.find_result(key_of_(indices[j])) != nullptr) return;
        computed[j] = task_fn_(indices[j], slot);
        precomputed[j] = true;
      });
    }

    double last_heartbeat = now_s();
    for (std::size_t j = 0; j < indices.size(); ++j) {
      if (wedge_pending_ &&
          results_sent_ == options_.chaos.wedge_after_results) {
        wedge_pending_ = false;
        std::this_thread::sleep_for(
            std::chrono::duration<double>(options_.chaos.wedge_s));
      }

      const std::uint64_t index = indices[j];
      const std::uint64_t key = key_of_(index);
      if (campaign_.find_result(key) != nullptr) {
        ++report_.tasks_skipped;
      } else {
        if (!precomputed[j]) computed[j] = task_fn_(index, 0);
        // Commit point: fsync'd into the local shard journal BEFORE any
        // byte of it goes on the wire.
        campaign_.record_result(key, computed[j]);
        ++report_.tasks_executed;
      }

      // The upload IS the acknowledgement: the server commits the task when
      // the record's bytes arrive in its replica.
      if (!upload_tail(channel)) return false;
      ++results_sent_;
      if (!drain_acks(channel)) return false;

      if (options_.chaos.exit_after_results > 0 &&
          results_sent_ == options_.chaos.exit_after_results) {
        // The chaos contract says the Nth result is committed AND
        // acknowledged when the worker dies: wait for the server's ack to
        // cover the upload, so the abrupt close cannot RST away bytes the
        // server's kernel buffered but its loop had not read yet.
        await_acked(channel);
        std::_Exit(9);
      }

      const double t = now_s();
      if (t - last_heartbeat >= options_.heartbeat_interval_s) {
        last_heartbeat = t;
        if (!send_heartbeat(channel, lease_id)) return false;
      }
    }

    PayloadWriter fin;
    fin.u64(lease_id);
    return channel.send(kMsgLeaseDone, fin.take());
  }

  // --- shard replication ------------------------------------------------

  std::uint64_t shard_size() const {
    std::error_code ec;
    const std::uint64_t size = fs::file_size(options_.shard_journal, ec);
    return ec ? 0 : size;
  }

  // Ships the shard journal's bytes in [uploaded_to_, size) as ShardChunk
  // frames. False when the connection died — the next handshake's Welcome
  // rewinds uploaded_to_ to what actually arrived.
  bool upload_tail(MessageChannel& channel) {
    const std::uint64_t size = shard_size();
    if (uploaded_to_ >= size) return true;
    std::ifstream in(options_.shard_journal, std::ios::binary);
    if (!in.is_open())
      throw Error("fabric: cannot reopen shard journal " +
                  options_.shard_journal + " for upload");
    in.seekg(static_cast<std::streamoff>(uploaded_to_));
    std::vector<std::uint8_t> chunk;
    while (uploaded_to_ < size) {
      const std::size_t n = static_cast<std::size_t>(
          std::min<std::uint64_t>(kShardChunkBytes, size - uploaded_to_));
      chunk.resize(8 + n);
      for (int i = 0; i < 8; ++i)
        chunk[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(uploaded_to_ >> (8 * i));
      in.read(reinterpret_cast<char*>(chunk.data() + 8),
              static_cast<std::streamsize>(n));
      if (in.gcount() != static_cast<std::streamsize>(n))
        throw Error("fabric: short read from shard journal " +
                    options_.shard_journal);
      if (!channel.send(kMsgShardChunk, chunk)) return false;
      uploaded_to_ += n;
      report_.bytes_uploaded += n;
    }
    return true;
  }

  // Opportunistically consumes whatever the server has queued — ShardAcks,
  // possibly a mid-lease Shutdown — without blocking. Leaving acks unread
  // would fill the receive buffer over a long campaign (stalling the
  // server's ack sends against its write deadline), and any unread byte at
  // process death turns the close into an RST that can discard chunks the
  // server's kernel buffered but never delivered to its loop.
  bool drain_acks(MessageChannel& channel) {
    bool open = true;
    try {
      open = channel.pump();
      WireMessage msg;
      while (channel.next(&msg)) handle_async(msg);
    } catch (const Error&) {
      return false;
    }
    return open;
  }

  void handle_async(const WireMessage& msg) {
    if (msg.type == kMsgShardAck && msg.payload.size() >= 8) {
      PayloadReader r(msg.payload);
      acked_ = std::max(acked_, r.u64());
    } else if (msg.type == kMsgShutdown) {
      pending_shutdown_ = true;
    }
  }

  // Blocks (bounded by the I/O deadline) until the server's cumulative ack
  // covers everything uploaded. Only the exit chaos needs this — a real
  // worker never waits on acks; Welcome rewinds the offset on reconnect.
  void await_acked(MessageChannel& channel) {
    const double deadline = now_s() + options_.io_timeout_s;
    while (acked_ < uploaded_to_ && now_s() < deadline) {
      WireMessage msg;
      RecvStatus status = RecvStatus::Eof;
      try {
        status = channel.recv(&msg, 50);
      } catch (const Error&) {
        return;
      }
      if (status == RecvStatus::Eof) return;
      if (status == RecvStatus::Ok) handle_async(msg);
    }
  }

  const RemoteWorkerOptions& options_;
  const FabricKeyFn& key_of_;
  const FabricTaskFn& task_fn_;
  Campaign campaign_;
  std::optional<SweepExecutor> executor_;
  RemoteWorkerReport report_;
  std::uint64_t sessions_ = 0;
  std::uint64_t results_sent_ = 0;
  std::uint64_t uploaded_to_ = 0;
  std::uint64_t acked_ = 0;
  bool wedge_pending_ = false;
  bool pending_shutdown_ = false;
};

}  // namespace

RemoteWorkerReport run_remote_worker(const RemoteWorkerOptions& options,
                                     const FabricKeyFn& key_of,
                                     const FabricTaskFn& task_fn) {
  RemoteWorker worker(options, key_of, task_fn);
  return worker.run();
}

}  // namespace lpsram::fabric
