// TCP plumbing for the multi-host fabric: a listener whose accepted sockets
// wrap straight into the existing MessageChannel (the wire codec is
// transport-agnostic — a channel is just an fd), a connecting side with a
// deadline, and the socket conditioning both ends share.
//
// What sockets need that socketpairs never did:
//   * write deadlines (SO_SNDTIMEO): a peer that stops reading but keeps the
//     connection open would otherwise block send() forever once the socket
//     buffer fills; with the deadline, send() returns false (EAGAIN is
//     treated like a gone peer in wire.cpp) and the caller tears the
//     connection down;
//   * TCP keepalive: the floor under the application heartbeats — a peer
//     that vanishes without a FIN (power loss, cable pull) is detected by
//     the kernel even when the application protocol is idle;
//   * TCP_NODELAY: fabric messages are small and latency-sensitive
//     (heartbeats, grants); Nagle would batch them against the lease clock.
//
// Read liveness deliberately stays at the application layer (poll loops +
// handshake/silence deadlines in server and worker): a read timeout belongs
// to protocol state, not to the socket.
#pragma once

#include <string>

#include "lpsram/runtime/fabric/wire.hpp"

namespace lpsram::fabric {

struct HostPort {
  std::string host;
  int port = 0;
};

// Parses "host:port" (the last ':' splits, so bare IPv6 works when bracketed
// or unambiguous). Throws InvalidArgument on a missing or non-numeric port
// or a port outside [0, 65535].
HostPort parse_hostport(const std::string& spec);

// Accepting side. Move-only; owns the listening fd.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();
  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  // Binds and listens. Port 0 picks an ephemeral port — port() reports the
  // real one afterwards (tests bind 127.0.0.1:0 before forking workers so
  // the children inherit a known port).
  void listen(const std::string& host, int port, int backlog = 16);

  // Accepts one pending connection and conditions it (keepalive, NODELAY,
  // `send_timeout_s` write deadline). Returns a closed channel when nothing
  // is pending (callers poll fd() for readability first). `peer`, when
  // given, receives "ip:port" of the remote end.
  MessageChannel accept(double send_timeout_s, std::string* peer = nullptr);

  int port() const noexcept { return port_; }
  int fd() const noexcept { return fd_; }
  bool is_open() const noexcept { return fd_ >= 0; }
  void close() noexcept;

 private:
  int fd_ = -1;
  int port_ = 0;
};

// Connects with a deadline and conditions the socket the same way. Throws
// lpsram::Error when the host is unresolvable or nothing accepted within
// `connect_timeout_s` (callers retry with backoff — a fabric worker outlives
// coordinator restarts).
MessageChannel tcp_connect(const std::string& host, int port,
                           double connect_timeout_s, double send_timeout_s);

// Applies the conditioning described above to an already-connected stream
// socket. Exposed for the chaos proxy, which forwards raw bytes over
// sockets it accepts/creates itself.
void configure_stream_socket(int fd, double send_timeout_s);

}  // namespace lpsram::fabric
