#include "lpsram/runtime/fabric/net/chaos.hpp"

#include <cerrno>
#include <chrono>
#include <thread>
#include <vector>

#include "lpsram/runtime/journal.hpp"
#include "lpsram/util/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#define LPSRAM_HAVE_FABRIC_NET 1
#endif

namespace lpsram::fabric {

#ifdef LPSRAM_HAVE_FABRIC_NET

namespace {

std::uint32_t read_le32(const std::uint8_t* p) {
  return std::uint32_t(p[0]) | (std::uint32_t(p[1]) << 8) |
         (std::uint32_t(p[2]) << 16) | (std::uint32_t(p[3]) << 24);
}

bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

// One direction of the relay. Counters and the wedge latch live outside so
// they persist across reconnects — "cut after the 7th frame" counts frames
// over the proxy's whole life, not per connection.
struct Flow {
  std::uint64_t frames = 0;
  bool wedged = false;
  std::vector<std::uint8_t> buf;

  std::uint64_t cut_after = 0;
  std::uint64_t corrupt_at = 0;
  std::uint64_t wedge_after = 0;
  double delay_s = 0.0;

  // Pumps `n` fresh bytes through the frame scanner into `dst`. Returns
  // false when the connection pair should be torn down (cut fired or the
  // write side failed).
  bool pump(const std::uint8_t* data, std::size_t n, int dst) {
    if (wedged) return true;  // swallow silently; the socket stays open
    buf.insert(buf.end(), data, data + n);
    for (;;) {
      if (buf.size() < 8) return true;
      const std::uint32_t len = read_le32(buf.data());
      if (len == 0 || len > kJournalMaxRecordBytes) {
        // Not wire framing (a garbage peer): fall back to raw passthrough
        // so the proxy never wedges on input it cannot frame.
        const bool ok = write_all(dst, buf.data(), buf.size());
        buf.clear();
        return ok;
      }
      const std::size_t frame_size = 8 + std::size_t(len);
      if (buf.size() < frame_size) return true;
      ++frames;
      if (frames == corrupt_at) buf[frame_size - 1] ^= 0xff;
      if (delay_s > 0.0)
        std::this_thread::sleep_for(std::chrono::duration<double>(delay_s));
      if (!write_all(dst, buf.data(), frame_size)) return false;
      buf.erase(buf.begin(),
                buf.begin() + static_cast<std::ptrdiff_t>(frame_size));
      if (frames == cut_after) return false;  // disconnect at the boundary
      if (frames == wedge_after) {
        wedged = true;
        buf.clear();
        return true;
      }
    }
  }
};

}  // namespace

void run_chaos_proxy(TcpListener& listener, const std::string& upstream_host,
                     int upstream_port, const NetChaos& chaos) {
  Flow up;  // worker -> coordinator
  up.cut_after = chaos.cut_after_frames_up;
  up.corrupt_at = chaos.corrupt_frame_up;
  up.wedge_after = chaos.wedge_after_frames_up;
  up.delay_s = chaos.delay_s;
  Flow down;  // coordinator -> worker
  down.cut_after = chaos.cut_after_frames_down;
  down.corrupt_at = chaos.corrupt_frame_down;
  down.wedge_after = chaos.wedge_after_frames_down;
  down.delay_s = chaos.delay_s;

  for (;;) {
    // Wait for the next downstream client.
    pollfd lp{listener.fd(), POLLIN, 0};
    const int lready = ::poll(&lp, 1, -1);
    if (lready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    MessageChannel client = listener.accept(/*send_timeout_s=*/10.0);
    if (!client.is_open()) continue;
    MessageChannel server;
    try {
      server = tcp_connect(upstream_host, upstream_port,
                           /*connect_timeout_s=*/5.0, /*send_timeout_s=*/10.0);
    } catch (const Error&) {
      continue;  // upstream gone; drop the client, keep accepting
    }
    up.buf.clear();
    down.buf.clear();

    for (;;) {
      pollfd fds[2] = {{client.fd(), POLLIN, 0}, {server.fd(), POLLIN, 0}};
      const int ready = ::poll(fds, 2, -1);
      if (ready < 0) {
        if (errno == EINTR) continue;
        break;
      }
      bool closed = false;
      std::uint8_t chunk[4096];
      for (int i = 0; i < 2; ++i) {
        if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        const int src = i == 0 ? client.fd() : server.fd();
        const int dst = i == 0 ? server.fd() : client.fd();
        Flow& flow = i == 0 ? up : down;
        const ssize_t n = ::read(src, chunk, sizeof(chunk));
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0 || !flow.pump(chunk, static_cast<std::size_t>(n), dst)) {
          closed = true;
          break;
        }
      }
      if (closed) break;
    }
    client.close();
    server.close();
    // A wedge lives exactly as long as the wedged connection: once the
    // peers' deadlines tear it down, the next connection flows clean (the
    // frame counters are already past the trigger, so it cannot re-fire).
    up.wedged = false;
    down.wedged = false;
  }
}

#else  // !LPSRAM_HAVE_FABRIC_NET

void run_chaos_proxy(TcpListener&, const std::string&, int, const NetChaos&) {
  throw Error("fabric: chaos proxy requires a POSIX platform");
}

#endif  // LPSRAM_HAVE_FABRIC_NET

}  // namespace lpsram::fabric
