// Remote fabric worker: the TCP counterpart of run_fabric_worker.
//
// A remote worker owns its shard journal exactly like a forked worker does —
// every result is committed and fsync'd locally before anything is said on
// the network — but its commit path to the coordinator is different: instead
// of kMsgTaskDone messages it replicates the shard journal's bytes to the
// server in kMsgShardChunk frames. After each commit it ships the file's new
// tail; the server parses records out of the replicated stream and commits
// them against the lease table. The NetWelcome's `shard_bytes_have` tells a
// (re)connecting worker where to resume the upload, so a connection cut
// mid-transfer re-sends only what the server never received.
//
// Connection loss is survivable in both directions:
//   * the worker reconnects with exponential backoff, re-handshakes
//     (reconnect=1) and either resumes its lease (NetWelcome names it and a
//     fresh kMsgGrant re-lists the still-pending indices) or is told there
//     is nothing to resume and waits for a fresh grant;
//   * tasks committed locally while disconnected are never recomputed — the
//     shard journal remembers, execution skips them, and the replicated
//     records reconcile server-side as verified duplicates.
//
// A refusal (wrong token, wrong manifest, protocol mismatch) is terminal:
// the worker reports it and returns instead of hammering the server. The
// handshake is mutual — a server that cannot MAC the transcript with our
// token is an impostor and is refused from this side the same way.
#pragma once

#include <cstdint>
#include <string>

#include "lpsram/runtime/fabric/worker.hpp"
#include "lpsram/runtime/fabric/wire.hpp"

namespace lpsram::fabric {

struct RemoteWorkerOptions {
  std::string host;
  int port = 0;
  std::string token;  // shared campaign secret (load_token_file)
  int worker_id = 0;
  std::string shard_journal;  // this worker's Campaign file (local disk)
  double heartbeat_interval_s = 0.5;
  std::uint64_t salt = 0;  // sweep manifest, must match the server
  std::uint64_t fingerprint = 0;
  int threads = 1;  // executor threads inside this worker
  double io_timeout_s = 10.0;       // write deadline on the socket
  double connect_timeout_s = 5.0;   // per connection attempt
  double reconnect_backoff_initial_s = 0.05;
  double reconnect_backoff_max_s = 1.0;
  // Give up (return, gave_up=true) after this long without a completed
  // handshake — a worker should not outlive a decommissioned server forever.
  double give_up_after_s = 30.0;
  WorkerChaos chaos;  // same deterministic kill matrix as forked workers
};

struct RemoteWorkerReport {
  std::uint64_t leases_served = 0;
  std::uint64_t tasks_executed = 0;
  std::uint64_t tasks_skipped = 0;  // found already committed in the shard
  std::uint64_t reconnects = 0;     // completed handshakes after the first
  std::uint64_t lease_resumes = 0;  // reconnects that kept their lease
  std::uint64_t bytes_uploaded = 0;
  NetRefusal refused = NetRefusal::None;  // set when the server refused us
  std::string refuse_message;
  bool shutdown = false;  // server said kMsgShutdown (sweep finished)
  bool gave_up = false;   // could not reach a server within give_up_after_s
};

// Runs the remote grant loop until shutdown, refusal, or reconnect give-up.
// Throws lpsram::Error on local failures (shard journal damage, a server
// whose shard replica claims more bytes than this worker ever wrote);
// JournalCrash propagates from shard-append chaos like the forked worker.
RemoteWorkerReport run_remote_worker(const RemoteWorkerOptions& options,
                                     const FabricKeyFn& key_of,
                                     const FabricTaskFn& task_fn);

}  // namespace lpsram::fabric
