#include "lpsram/runtime/fabric/net/net.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "lpsram/util/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>
#define LPSRAM_HAVE_FABRIC_NET 1
#endif

namespace lpsram::fabric {

HostPort parse_hostport(const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == spec.size())
    throw InvalidArgument("fabric: expected host:port, got '" + spec + "'");
  HostPort out;
  out.host = spec.substr(0, colon);
  const std::string port_str = spec.substr(colon + 1);
  char* end = nullptr;
  const long port = std::strtol(port_str.c_str(), &end, 10);
  if (end == port_str.c_str() || *end != '\0' || port < 0 || port > 65535)
    throw InvalidArgument("fabric: invalid port in '" + spec + "'");
  out.port = static_cast<int>(port);
  return out;
}

#ifdef LPSRAM_HAVE_FABRIC_NET

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error("fabric: " + what + ": " + std::strerror(errno));
}

struct AddrInfo {
  addrinfo* list = nullptr;
  ~AddrInfo() {
    if (list != nullptr) ::freeaddrinfo(list);
  }
};

void resolve(const std::string& host, int port, bool passive, AddrInfo* out) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = passive ? AI_PASSIVE : 0;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               service.c_str(), &hints, &out->list);
  if (rc != 0)
    throw Error("fabric: cannot resolve " + (host.empty() ? "*" : host) +
                ":" + service + ": " + ::gai_strerror(rc));
}

std::string describe_peer(const sockaddr* addr, socklen_t len) {
  char host[NI_MAXHOST] = {0};
  char port[NI_MAXSERV] = {0};
  if (::getnameinfo(addr, len, host, sizeof(host), port, sizeof(port),
                    NI_NUMERICHOST | NI_NUMERICSERV) != 0)
    return "?";
  return std::string(host) + ":" + port;
}

}  // namespace

void configure_stream_socket(int fd, double send_timeout_s) {
  int on = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_KEEPALIVE, &on, sizeof(on));
#ifdef TCP_NODELAY
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &on, sizeof(on));
#endif
  // Keepalive cadence under the application heartbeats: probe a silent
  // connection after 30 s, three probes 10 s apart — a vanished peer is
  // reset in about a minute even with no fabric traffic in flight.
#ifdef TCP_KEEPIDLE
  int idle = 30;
  ::setsockopt(fd, IPPROTO_TCP, TCP_KEEPIDLE, &idle, sizeof(idle));
#endif
#ifdef TCP_KEEPINTVL
  int intvl = 10;
  ::setsockopt(fd, IPPROTO_TCP, TCP_KEEPINTVL, &intvl, sizeof(intvl));
#endif
#ifdef TCP_KEEPCNT
  int cnt = 3;
  ::setsockopt(fd, IPPROTO_TCP, TCP_KEEPCNT, &cnt, sizeof(cnt));
#endif
  if (send_timeout_s > 0.0) {
    timeval tv;
    tv.tv_sec = static_cast<time_t>(send_timeout_s);
    tv.tv_usec = static_cast<suseconds_t>(
        (send_timeout_s - static_cast<double>(tv.tv_sec)) * 1e6);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
}

TcpListener::~TcpListener() { close(); }

TcpListener::TcpListener(TcpListener&& other) noexcept {
  *this = std::move(other);
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

void TcpListener::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void TcpListener::listen(const std::string& host, int port, int backlog) {
  close();
  AddrInfo ai;
  resolve(host, port, /*passive=*/true, &ai);
  int last_errno = 0;
  for (addrinfo* a = ai.list; a != nullptr; a = a->ai_next) {
    const int fd = ::socket(a->ai_family, a->ai_socktype, a->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    int on = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &on, sizeof(on));
    // Non-blocking listener: accept() is only called after poll() says
    // readable, but a peer that RSTs between poll and accept must yield an
    // empty channel, not a block.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    if (::bind(fd, a->ai_addr, a->ai_addrlen) != 0 ||
        ::listen(fd, backlog) != 0) {
      last_errno = errno;
      ::close(fd);
      continue;
    }
    sockaddr_storage bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
        0) {
      last_errno = errno;
      ::close(fd);
      continue;
    }
    fd_ = fd;
    if (bound.ss_family == AF_INET)
      port_ = ntohs(reinterpret_cast<sockaddr_in*>(&bound)->sin_port);
    else if (bound.ss_family == AF_INET6)
      port_ = ntohs(reinterpret_cast<sockaddr_in6*>(&bound)->sin6_port);
    else
      port_ = port;
    return;
  }
  errno = last_errno != 0 ? last_errno : EADDRNOTAVAIL;
  throw_errno("cannot listen on " + host + ":" + std::to_string(port));
}

MessageChannel TcpListener::accept(double send_timeout_s, std::string* peer) {
  if (fd_ < 0) return MessageChannel();
  sockaddr_storage addr{};
  socklen_t len = sizeof(addr);
  const int fd = ::accept(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNABORTED)
      return MessageChannel();  // nothing usable pending right now
    throw_errno("accept failed");
  }
  configure_stream_socket(fd, send_timeout_s);
  if (peer != nullptr)
    *peer = describe_peer(reinterpret_cast<sockaddr*>(&addr), len);
  return MessageChannel(fd);
}

MessageChannel tcp_connect(const std::string& host, int port,
                           double connect_timeout_s, double send_timeout_s) {
  AddrInfo ai;
  resolve(host, port, /*passive=*/false, &ai);
  int last_errno = 0;
  for (addrinfo* a = ai.list; a != nullptr; a = a->ai_next) {
    const int fd = ::socket(a->ai_family, a->ai_socktype, a->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    // Non-blocking connect + poll gives the deadline; the socket goes back
    // to blocking afterwards (MessageChannel's send/recv expect that).
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(fd, a->ai_addr, a->ai_addrlen);
    if (rc != 0 && errno == EINPROGRESS) {
      pollfd p{fd, POLLOUT, 0};
      const int ready =
          ::poll(&p, 1, static_cast<int>(connect_timeout_s * 1000.0));
      if (ready <= 0) {
        last_errno = ready == 0 ? ETIMEDOUT : errno;
        ::close(fd);
        continue;
      }
      int err = 0;
      socklen_t err_len = sizeof(err);
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len);
      if (err != 0) {
        last_errno = err;
        ::close(fd);
        continue;
      }
      rc = 0;
    }
    if (rc != 0) {
      last_errno = errno;
      ::close(fd);
      continue;
    }
    ::fcntl(fd, F_SETFL, flags);
    configure_stream_socket(fd, send_timeout_s);
    return MessageChannel(fd);
  }
  errno = last_errno != 0 ? last_errno : ECONNREFUSED;
  throw_errno("cannot connect to " + host + ":" + std::to_string(port));
}

#else  // !LPSRAM_HAVE_FABRIC_NET

void configure_stream_socket(int, double) {}
TcpListener::~TcpListener() = default;
TcpListener::TcpListener(TcpListener&&) noexcept {}
TcpListener& TcpListener::operator=(TcpListener&&) noexcept { return *this; }
void TcpListener::close() noexcept {}
void TcpListener::listen(const std::string&, int, int) {
  throw Error("fabric: TCP transport requires a POSIX platform");
}
MessageChannel TcpListener::accept(double, std::string*) {
  return MessageChannel();
}
MessageChannel tcp_connect(const std::string&, int, double, double) {
  throw Error("fabric: TCP transport requires a POSIX platform");
}

#endif  // LPSRAM_HAVE_FABRIC_NET

}  // namespace lpsram::fabric
