// Deterministic network fault injection for the multi-host fabric — the
// wire-level sibling of WorkerChaos (worker.hpp).
//
// run_chaos_proxy forwards bytes between one downstream client (the worker)
// and one upstream server, *frame-aware*: it buffers until it holds a
// complete wire frame ([u32 length][u32 crc32][body]), counts it, applies
// the configured fault, and only then forwards. Faults therefore land at
// exact message boundaries, which is what makes the kill/partition matrices
// deterministic — "cut the connection after the 3rd worker->coordinator
// frame" means the same thing on every run and every machine.
//
// Faults (all one-shot, 0 = disabled, counted per direction across the
// proxy's lifetime so they survive reconnects):
//   * cut_after_frames_*: forward the Nth frame, then close both sockets —
//     a disconnect at a message boundary. The proxy then accepts again, so
//     the worker's reconnect flows through the same (now clean) path.
//   * corrupt_frame_*: flip one byte in the Nth frame's body before
//     forwarding — the receiver's frame CRC must catch it and treat the
//     connection as trash, never act on the damaged message.
//   * wedge_after_frames_*: forward N frames, then swallow everything in
//     that direction while keeping both sockets open — the half-open /
//     wedged-peer case that only deadlines can unstick. The wedge lasts
//     until those deadlines tear the wedged connection down; the next
//     connection through the proxy flows clean.
//   * delay_s: sleep before forwarding every frame — reordering-free
//     delayed delivery, for exercising timeout margins.
//
// The proxy is a blocking single-threaded loop; tests run it in a forked
// child (fork with no threads anywhere keeps TSan/ASan happy) and SIGKILL it
// in teardown.
#pragma once

#include <cstdint>
#include <string>

#include "lpsram/runtime/fabric/net/net.hpp"

namespace lpsram::fabric {

struct NetChaos {
  // Worker -> coordinator direction ("up").
  std::uint64_t cut_after_frames_up = 0;
  std::uint64_t corrupt_frame_up = 0;
  std::uint64_t wedge_after_frames_up = 0;
  // Coordinator -> worker direction ("down").
  std::uint64_t cut_after_frames_down = 0;
  std::uint64_t corrupt_frame_down = 0;
  std::uint64_t wedge_after_frames_down = 0;
  // Fixed per-frame forwarding delay, both directions.
  double delay_s = 0.0;
};

// Serves `listener` (already listening), forwarding each accepted client to
// upstream_host:upstream_port under `chaos`. Returns only when accept fails
// hard (listener closed) — tests run it in a forked child and kill it.
void run_chaos_proxy(TcpListener& listener, const std::string& upstream_host,
                     int upstream_port, const NetChaos& chaos);

}  // namespace lpsram::fabric
