#include "lpsram/runtime/fabric/net/auth.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <random>
#include <vector>

#include "lpsram/util/error.hpp"

namespace lpsram::fabric {

namespace {

// SHA-256 (FIPS 180-4). Straightforward single-shot implementation; the
// fabric MACs are tiny (a few hundred bytes per handshake), so there is no
// need for streaming or vectorization.
constexpr std::uint32_t kSha256K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline std::uint32_t rotr(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

void sha256_block(std::uint32_t state[8], const std::uint8_t* block) {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i)
    w[i] = (std::uint32_t(block[4 * i]) << 24) |
           (std::uint32_t(block[4 * i + 1]) << 16) |
           (std::uint32_t(block[4 * i + 2]) << 8) |
           std::uint32_t(block[4 * i + 3]);
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 =
        rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 =
        rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
  std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = h + s1 + ch + kSha256K[i] + w[i];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  state[0] += a;
  state[1] += b;
  state[2] += c;
  state[3] += d;
  state[4] += e;
  state[5] += f;
  state[6] += g;
  state[7] += h;
}

}  // namespace

Sha256Digest sha256(const std::uint8_t* data, std::size_t size) {
  std::uint32_t state[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                            0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  std::size_t full = size / 64;
  for (std::size_t i = 0; i < full; ++i) sha256_block(state, data + 64 * i);

  // Final block(s): message tail, 0x80, zero pad, 64-bit big-endian length.
  std::uint8_t tail[128] = {0};
  const std::size_t rem = size - full * 64;
  std::memcpy(tail, data + full * 64, rem);
  tail[rem] = 0x80;
  const std::size_t tail_blocks = rem + 9 <= 64 ? 1 : 2;
  const std::uint64_t bits = std::uint64_t(size) * 8;
  for (int i = 0; i < 8; ++i)
    tail[tail_blocks * 64 - 1 - i] = std::uint8_t(bits >> (8 * i));
  for (std::size_t i = 0; i < tail_blocks; ++i)
    sha256_block(state, tail + 64 * i);

  Sha256Digest out;
  for (int i = 0; i < 8; ++i) {
    out[4 * i] = std::uint8_t(state[i] >> 24);
    out[4 * i + 1] = std::uint8_t(state[i] >> 16);
    out[4 * i + 2] = std::uint8_t(state[i] >> 8);
    out[4 * i + 3] = std::uint8_t(state[i]);
  }
  return out;
}

Sha256Digest hmac_sha256(const std::uint8_t* key, std::size_t key_size,
                         const std::uint8_t* msg, std::size_t msg_size) {
  std::uint8_t block_key[64] = {0};
  if (key_size > 64) {
    const Sha256Digest hashed = sha256(key, key_size);
    std::memcpy(block_key, hashed.data(), hashed.size());
  } else {
    std::memcpy(block_key, key, key_size);
  }

  std::vector<std::uint8_t> inner(64 + msg_size);
  for (int i = 0; i < 64; ++i) inner[std::size_t(i)] = block_key[i] ^ 0x36;
  std::memcpy(inner.data() + 64, msg, msg_size);
  const Sha256Digest inner_hash = sha256(inner.data(), inner.size());

  std::uint8_t outer[64 + 32];
  for (int i = 0; i < 64; ++i) outer[i] = block_key[i] ^ 0x5c;
  std::memcpy(outer + 64, inner_hash.data(), inner_hash.size());
  return sha256(outer, sizeof(outer));
}

bool constant_time_equal(const std::uint8_t* a, const std::uint8_t* b,
                         std::size_t size) noexcept {
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < size; ++i) diff |= std::uint8_t(a[i] ^ b[i]);
  return diff == 0;
}

std::string load_token_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr)
    throw InvalidArgument("fabric: cannot read token file " + path +
                          ": " + std::strerror(errno));
  std::string token;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) token.append(buf, n);
  std::fclose(f);
  while (!token.empty() &&
         (token.back() == '\n' || token.back() == '\r' ||
          token.back() == ' ' || token.back() == '\t'))
    token.pop_back();
  if (token.empty())
    throw InvalidArgument("fabric: token file " + path +
                          " is empty — refusing an unauthenticated fabric");
  return token;
}

void fill_random_nonce(std::uint8_t* out, std::size_t size) {
  std::FILE* f = std::fopen("/dev/urandom", "rb");
  if (f != nullptr) {
    const std::size_t n = std::fread(out, 1, size, f);
    std::fclose(f);
    if (n == size) return;
  }
  std::random_device rd;
  for (std::size_t i = 0; i < size; ++i)
    out[i] = std::uint8_t(rd() & 0xff);
}

Sha256Digest handshake_mac(const std::string& token, char direction,
                           const NetHelloFields& hello,
                           const std::uint8_t* worker_nonce,
                           const std::uint8_t* server_nonce) {
  std::vector<std::uint8_t> transcript;
  transcript.reserve(1 + 4 + 4 + 8 + 8 + 1 + 2 * kNetNonceBytes);
  transcript.push_back(std::uint8_t(direction));
  const auto le32 = [&](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) transcript.push_back(std::uint8_t(v >> (8 * i)));
  };
  const auto le64 = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) transcript.push_back(std::uint8_t(v >> (8 * i)));
  };
  le32(hello.protocol);
  le32(hello.worker_id);
  le64(hello.salt);
  le64(hello.fingerprint);
  transcript.push_back(hello.reconnect);
  transcript.insert(transcript.end(), worker_nonce,
                    worker_nonce + kNetNonceBytes);
  transcript.insert(transcript.end(), server_nonce,
                    server_nonce + kNetNonceBytes);
  return hmac_sha256(reinterpret_cast<const std::uint8_t*>(token.data()),
                     token.size(), transcript.data(), transcript.size());
}

}  // namespace lpsram::fabric
