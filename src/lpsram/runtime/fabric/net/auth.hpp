// Authentication primitives for the multi-host fabric transport.
//
// Threat model (see DESIGN.md §"multi-host transport"): the campaign token
// authenticates workers and coordinator to each other and binds the
// handshake to this sweep's manifest — it provides *integrity and
// authenticity on a trusted network*, not confidentiality. Payloads travel
// in the clear; anyone who can read the token file can join the fleet. The
// token is always loaded from a file (never argv, which `ps` would leak) and
// never sent on the wire: both sides prove possession via HMAC-SHA256 over
// the handshake transcript, with direction labels so a challenge can never
// be reflected back, and fresh nonces so a captured handshake cannot be
// replayed.
//
// SHA-256 is implemented here (FIPS 180-4, ~100 lines) rather than pulling
// in a TLS library: the fabric needs exactly one MAC, and the dependency
// budget of the tree is zero.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace lpsram::fabric {

inline constexpr std::size_t kNetNonceBytes = 32;
inline constexpr std::size_t kNetMacBytes = 32;

using Sha256Digest = std::array<std::uint8_t, 32>;

Sha256Digest sha256(const std::uint8_t* data, std::size_t size);

Sha256Digest hmac_sha256(const std::uint8_t* key, std::size_t key_size,
                         const std::uint8_t* msg, std::size_t msg_size);

// Timing-safe comparison: examines every byte regardless of where the first
// mismatch sits, so a byte-at-a-time MAC forgery gains nothing from timing.
bool constant_time_equal(const std::uint8_t* a, const std::uint8_t* b,
                         std::size_t size) noexcept;

// Reads the shared campaign token from `path`, trimming trailing whitespace
// (editors append newlines). Throws InvalidArgument when the file is
// missing, unreadable, or trims to empty — an empty token would turn the
// handshake into a formality.
std::string load_token_file(const std::string& path);

// Fills `out` with cryptographically random bytes (/dev/urandom, falling
// back to std::random_device where it is unavailable).
void fill_random_nonce(std::uint8_t* out, std::size_t size);

// The NetHello fields both MACs are bound to: tampering with any of them in
// flight (downgrading the protocol, redirecting a worker id, splicing a
// handshake onto a different sweep) breaks verification.
struct NetHelloFields {
  std::uint32_t protocol = 0;
  std::uint32_t worker_id = 0;
  std::uint64_t salt = 0;
  std::uint64_t fingerprint = 0;
  std::uint8_t reconnect = 0;
};

// MAC over the handshake transcript. `direction` is 'S' for the server's
// proof (sent in NetChallenge) and 'W' for the worker's (sent in NetAuth);
// the label makes the two MACs distinct for identical transcripts, so a
// peer's proof can never be echoed back at it. Both nonces are covered:
// worker_nonce gives the worker freshness of the server's proof,
// server_nonce gives the server freshness of the worker's.
Sha256Digest handshake_mac(const std::string& token, char direction,
                           const NetHelloFields& hello,
                           const std::uint8_t* worker_nonce,
                           const std::uint8_t* server_nonce);

}  // namespace lpsram::fabric
