#include "lpsram/runtime/fabric/net/server.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "lpsram/runtime/campaign.hpp"
#include "lpsram/runtime/fabric/fabric.hpp"
#include "lpsram/runtime/fabric/net/auth.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <poll.h>
#include <unistd.h>
#define LPSRAM_HAVE_FABRIC_NET 1
#endif

namespace lpsram::fabric {

#ifdef LPSRAM_HAVE_FABRIC_NET

namespace fs = std::filesystem;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double wall_s() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

// Poll granularity: the loop wakes at least this often to re-check lease
// deadlines, handshake timeouts and the drain token.
constexpr int kMaxPollMs = 100;
// connections.status rewrite cadence.
constexpr double kStatusIntervalS = 0.25;
// NetWelcome "no lease to resume" sentinel.
constexpr std::uint64_t kNoLease = ~std::uint64_t(0);

// The server-side replica of one worker's shard journal. Chunks append here
// verbatim; the stream past the 8-byte magic is simultaneously fed through a
// FrameParser so completed records commit as their bytes arrive.
struct ShardSink {
  std::FILE* file = nullptr;
  std::string path;
  std::uint64_t have = 0;       // replicated bytes (answers "how much?")
  std::uint64_t committed = 0;  // end of the last fully parsed record
  FrameParser parser;

  ShardSink() = default;
  ShardSink(const ShardSink&) = delete;
  ShardSink& operator=(const ShardSink&) = delete;
  ShardSink(ShardSink&& other) noexcept { *this = std::move(other); }
  ShardSink& operator=(ShardSink&& other) noexcept {
    if (this != &other) {
      close();
      file = other.file;
      path = std::move(other.path);
      have = other.have;
      committed = other.committed;
      parser = std::move(other.parser);
      other.file = nullptr;
      other.have = 0;
      other.committed = 0;
    }
    return *this;
  }
  ~ShardSink() { close(); }
  void close() noexcept {
    if (file != nullptr) {
      std::fclose(file);
      file = nullptr;
    }
  }
};

struct Conn {
  MessageChannel channel;
  std::string peer;
  enum class Stage { AwaitHello, AwaitAuth, Serving, Closed };
  Stage stage = Stage::AwaitHello;
  double opened_at = 0.0;
  double last_heard = 0.0;
  int worker_id = -1;  // -1 until the handshake completes
  std::int64_t lease = -1;
  NetHelloFields hello{};
  std::uint8_t worker_nonce[kNetNonceBytes] = {0};
  std::uint8_t server_nonce[kNetNonceBytes] = {0};
};

// Everything the server remembers about a worker id across connections —
// the sink survives disconnects, which is what makes upload resumable.
struct WorkerSlot {
  Conn* conn = nullptr;  // current connection, nullptr while disconnected
  ShardSink sink;
  double last_heartbeat = 0.0;
  double disconnected_at = 0.0;
  std::uint64_t sessions = 0;
  std::uint64_t reconnects = 0;

  WorkerSlot() = default;
  WorkerSlot(const WorkerSlot&) = delete;
  WorkerSlot& operator=(const WorkerSlot&) = delete;
  WorkerSlot(WorkerSlot&&) noexcept = default;
  WorkerSlot& operator=(WorkerSlot&&) noexcept = default;
};

class NetServer {
 public:
  NetServer(TcpListener& listener, const NetFabricOptions& options,
            std::uint64_t count, const FabricKeyFn& key_of)
      : listener_(listener),
        options_(options),
        count_(count),
        slots_(static_cast<std::size_t>(std::max(options.max_workers, 0))) {
    if (options_.token.empty())
      throw InvalidArgument("fabric: net server requires a campaign token");
    if (options_.dir.empty())
      throw InvalidArgument("fabric: journal directory required");
    if (options_.max_workers <= 0)
      throw InvalidArgument("fabric: max_workers must be positive");
    fs::create_directories(options_.dir);
    if (options_.conn_silence_timeout_s <= 0.0)
      silence_timeout_s_ = 4.0 * options_.heartbeat_interval_s;
    else
      silence_timeout_s_ = options_.conn_silence_timeout_s;

    keys_in_index_order_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t key = key_of(i);
      keys_in_index_order_.push_back(key);
      index_of_key_[key] = i;
    }

    // Recover whatever earlier incarnations (over either transport)
    // committed: the shard replicas in our directory are the source of
    // truth, exactly as in run_fabric.
    std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> recovered;
    for (const std::string& path : existing_shard_paths()) {
      const ShardSnapshot snapshot = read_campaign_snapshot(path);
      const auto it = snapshot.manifests.find(options_.salt);
      if (it != snapshot.manifests.end() && it->second != options_.fingerprint)
        throw InvalidArgument(
            "fabric: shard journal " + path +
            " was recorded for a different sweep configuration");
      for (const auto& [key, task] : snapshot.tasks) {
        const auto idx = index_of_key_.find(key);
        if (idx == index_of_key_.end())
          throw InvalidArgument("fabric: shard journal " + path +
                                " holds a task key outside this sweep");
        recovered.emplace(idx->second, task.payload);
      }
    }

    CoordinatorOptions copt;
    copt.lease_log = coordinator_log_path(options_.dir);
    copt.salt = options_.salt;
    copt.fingerprint = options_.fingerprint;
    copt.task_count = count;
    copt.leases.span = options_.lease_span;
    copt.leases.lease_timeout_s = options_.lease_timeout_s;
    copt.leases.heartbeat_interval_s = options_.heartbeat_interval_s;
    copt.leases.backoff_initial_s = options_.backoff_initial_s;
    copt.leases.backoff_max_s = options_.backoff_max_s;
    copt.drain = options_.drain;
    core_.emplace(std::move(copt), std::move(recovered));
  }

  NetFabricReport run() {
    const double start = now_s();
    no_worker_since_ = start;
    for (;;) {
      if (core_->all_done()) {
        core_->report().complete = true;
        break;
      }
      if (core_->drain_requested() && !core_->any_leased()) {
        core_->report().drained = true;
        break;
      }

      double now = now_s();
      core_->expire(now);
      enforce_deadlines(now);
      check_fleet_lost(now);
      for (Conn& c : conns_) try_grant(c, now);
      if (now - last_status_ >= kStatusIntervalS) write_status(now);
      reap_closed();

      // Sleep until the next lease deadline/backoff instant, capped so
      // handshake timeouts and the drain token stay responsive.
      int timeout_ms = kMaxPollMs;
      const double next = core_->next_event();
      if (next < now)
        timeout_ms = 0;
      else if (next - now < kMaxPollMs / 1000.0)
        timeout_ms = std::max(1, static_cast<int>((next - now) * 1000.0));

      std::vector<pollfd> fds;
      std::vector<Conn*> fd_owner;
      fds.push_back(pollfd{listener_.fd(), POLLIN, 0});
      fd_owner.push_back(nullptr);
      for (Conn& c : conns_) {
        if (c.stage == Conn::Stage::Closed) continue;
        fds.push_back(pollfd{c.channel.fd(), POLLIN, 0});
        fd_owner.push_back(&c);
      }
      const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
      if (ready < 0) {
        if (errno == EINTR) continue;
        throw Error(std::string("fabric: net server poll failed: ") +
                    std::strerror(errno));
      }

      now = now_s();
      if ((fds[0].revents & POLLIN) != 0) accept_pending(now);
      for (std::size_t i = 1; i < fds.size(); ++i) {
        if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        service(*fd_owner[i], now);
      }
    }

    const double now = now_s();
    for (Conn& c : conns_)
      if (c.stage == Conn::Stage::Serving)
        c.channel.send(kMsgShutdown, {});  // best effort
    write_status(now);
    for (WorkerSlot& slot : slots_) slot.sink.close();

    if (core_->report().complete) {
      std::vector<std::string> shards = existing_shard_paths();
      std::uint64_t merge_duplicates = 0;
      const std::size_t merged =
          merge_shard_journals(options_.merged_path(), shards,
                               keys_in_index_order_, &merge_duplicates);
      core_->report().duplicates =
          std::max(core_->report().duplicates, merge_duplicates);
      core_->log_merged(merged, merge_duplicates);
    }
    report_.fabric = core_->report();
    report_.fabric.tasks_total = count_;
    return report_;
  }

  // Snapshot of the counters so far — what run_net_fabric hands to
  // options.report_out when run() ends in an exception.
  NetFabricReport report() {
    NetFabricReport snapshot = report_;
    if (core_.has_value()) {
      snapshot.fabric = core_->report();
      snapshot.fabric.tasks_total = count_;
    }
    return snapshot;
  }

 private:
  // --- connection lifecycle --------------------------------------------

  void accept_pending(double now) {
    for (;;) {
      std::string peer;
      MessageChannel ch = listener_.accept(options_.io_timeout_s, &peer);
      if (!ch.is_open()) return;
      ++report_.connections_accepted;
      // Backstop against fd exhaustion from a connect flood: every worker
      // gets one live connection plus headroom for handshakes in flight.
      if (open_conns() >= static_cast<std::size_t>(options_.max_workers) + 8) {
        ++report_.connections_dropped;
        continue;  // ch closes on scope exit
      }
      Conn c;
      c.channel = std::move(ch);
      c.peer = peer;
      c.opened_at = now;
      c.last_heard = now;
      conns_.push_back(std::move(c));
    }
  }

  std::size_t open_conns() const {
    return static_cast<std::size_t>(
        std::count_if(conns_.begin(), conns_.end(), [](const Conn& c) {
          return c.stage != Conn::Stage::Closed;
        }));
  }

  void drop_conn(Conn& c, double now) {
    if (c.stage == Conn::Stage::Closed) return;
    c.channel.close();
    c.stage = Conn::Stage::Closed;
    ++report_.connections_dropped;
    if (c.worker_id >= 0) {
      WorkerSlot& slot = slots_[static_cast<std::size_t>(c.worker_id)];
      if (slot.conn == &c) {
        // The lease deliberately stays Leased: this is the reconnect
        // window. Expiry (or an explicit fresh hello) settles it.
        slot.conn = nullptr;
        slot.disconnected_at = now;
      }
    }
  }

  void reap_closed() {
    conns_.remove_if(
        [](const Conn& c) { return c.stage == Conn::Stage::Closed; });
  }

  void enforce_deadlines(double now) {
    for (Conn& c : conns_) {
      if (c.stage == Conn::Stage::AwaitHello ||
          c.stage == Conn::Stage::AwaitAuth) {
        if (now - c.opened_at > options_.handshake_timeout_s) drop_conn(c, now);
      } else if (c.stage == Conn::Stage::Serving) {
        if (now - c.last_heard > silence_timeout_s_) drop_conn(c, now);
      }
    }
  }

  void check_fleet_lost(double now) {
    bool serving = false;
    for (const Conn& c : conns_)
      if (c.stage == Conn::Stage::Serving) serving = true;
    if (serving) {
      no_worker_since_ = now;
      return;
    }
    if (core_->drain_requested()) return;
    const double grace =
        ever_served_ ? (options_.all_lost_grace_s > 0.0
                            ? options_.all_lost_grace_s
                            : options_.lease_timeout_s)
                     : options_.first_connect_timeout_s;
    if (now - no_worker_since_ <= grace) return;
    throw FabricWorkersLost(
        "fabric: no connected workers for " + std::to_string(grace) +
        "s with " + std::to_string(core_->tasks_remaining()) + " of " +
        std::to_string(count_) +
        " tasks uncommitted — shard journals retain every committed result; "
        "rerun (or point a fresh fleet at this server) to resume");
  }

  // --- protocol: handshake ---------------------------------------------

  void refuse(Conn& c, NetRefusal reason, const std::string& message,
              double now) {
    switch (reason) {
      case NetRefusal::Protocol: ++report_.refusals_protocol; break;
      case NetRefusal::Manifest: ++report_.refusals_manifest; break;
      case NetRefusal::Auth: ++report_.refusals_auth; break;
      case NetRefusal::Busy: ++report_.refusals_busy; break;
      case NetRefusal::None: break;
    }
    PayloadWriter out;
    out.u32(static_cast<std::uint32_t>(reason));
    out.str(message);
    c.channel.send(kMsgNetRefuse, out.take());  // best effort
    drop_conn(c, now);
  }

  void handle_hello(Conn& c, const WireMessage& msg, double now) {
    constexpr std::size_t kHelloBytes = 4 + 4 + 8 + 8 + 1 + kNetNonceBytes;
    if (msg.type != kMsgNetHello || msg.payload.size() != kHelloBytes) {
      drop_conn(c, now);
      return;
    }
    PayloadReader r(msg.payload);
    c.hello.protocol = r.u32();
    c.hello.worker_id = r.u32();
    c.hello.salt = r.u64();
    c.hello.fingerprint = r.u64();
    c.hello.reconnect = r.u8();
    std::memcpy(c.worker_nonce, msg.payload.data() + (kHelloBytes - kNetNonceBytes),
                kNetNonceBytes);

    if (c.hello.protocol != kNetProtocolVersion) {
      refuse(c, NetRefusal::Protocol,
             "fabric: protocol version mismatch (server speaks " +
                 std::to_string(kNetProtocolVersion) + ", worker speaks " +
                 std::to_string(c.hello.protocol) + ")",
             now);
      return;
    }
    if (c.hello.salt != options_.salt ||
        c.hello.fingerprint != options_.fingerprint) {
      refuse(c, NetRefusal::Manifest,
             "fabric: sweep manifest mismatch — this worker was launched for "
             "a different campaign configuration",
             now);
      return;
    }
    if (c.hello.worker_id >= static_cast<std::uint32_t>(options_.max_workers)) {
      refuse(c, NetRefusal::Busy,
             "fabric: worker id " + std::to_string(c.hello.worker_id) +
                 " is outside this server's slot range [0, " +
                 std::to_string(options_.max_workers) + ")",
             now);
      return;
    }

    fill_random_nonce(c.server_nonce, kNetNonceBytes);
    const Sha256Digest mac = handshake_mac(options_.token, 'S', c.hello,
                                           c.worker_nonce, c.server_nonce);
    std::vector<std::uint8_t> challenge;
    challenge.reserve(kNetNonceBytes + kNetMacBytes);
    challenge.insert(challenge.end(), c.server_nonce,
                     c.server_nonce + kNetNonceBytes);
    challenge.insert(challenge.end(), mac.begin(), mac.end());
    if (!c.channel.send(kMsgNetChallenge, challenge)) {
      drop_conn(c, now);
      return;
    }
    c.stage = Conn::Stage::AwaitAuth;
  }

  void handle_auth(Conn& c, const WireMessage& msg, double now) {
    if (msg.type != kMsgNetAuth || msg.payload.size() != kNetMacBytes) {
      drop_conn(c, now);
      return;
    }
    const Sha256Digest expected = handshake_mac(options_.token, 'W', c.hello,
                                                c.worker_nonce, c.server_nonce);
    if (!constant_time_equal(msg.payload.data(), expected.data(),
                             kNetMacBytes)) {
      refuse(c, NetRefusal::Auth,
             "fabric: handshake MAC mismatch — wrong campaign token", now);
      return;
    }
    complete_handshake(c, now);
  }

  void complete_handshake(Conn& c, double now) {
    ++report_.handshakes_completed;
    ever_served_ = true;
    c.worker_id = static_cast<int>(c.hello.worker_id);
    WorkerSlot& slot = slots_[static_cast<std::size_t>(c.worker_id)];
    // Adopt: a reconnect supersedes whatever connection the slot held (a
    // wedged socket the deadlines have not reaped yet).
    if (slot.conn != nullptr && slot.conn != &c) drop_conn(*slot.conn, now);
    slot.conn = &c;
    if (slot.sessions++ > 0) ++slot.reconnects;
    slot.last_heartbeat = now;
    open_sink(slot, c.worker_id);

    c.stage = Conn::Stage::Serving;
    c.last_heard = now;
    no_worker_since_ = now;

    // Lease resume: only meaningful for a reconnecting holder; a worker
    // whose lease expired (and was re-issued elsewhere) gets kNoLease and
    // discards its local lease state — late commits reconcile as
    // duplicates.
    std::vector<std::uint64_t> pending;
    const std::int64_t resume = core_->regrant_held(c.worker_id, now, &pending);

    PayloadWriter welcome;
    welcome.u64(resume >= 0 ? static_cast<std::uint64_t>(resume) : kNoLease);
    welcome.u64(slot.sink.have);
    if (!c.channel.send(kMsgNetWelcome, welcome.take())) {
      drop_conn(c, now);
      return;
    }
    if (resume >= 0) {
      PayloadWriter grant;
      grant.u64(static_cast<std::uint64_t>(resume));
      grant.u32(static_cast<std::uint32_t>(pending.size()));
      for (const std::uint64_t index : pending) grant.u64(index);
      if (!c.channel.send(kMsgGrant, grant.take())) {
        drop_conn(c, now);
        return;
      }
      c.lease = resume;
      ++report_.lease_resumes;
    }
  }

  // --- protocol: serving ------------------------------------------------

  void try_grant(Conn& c, double now) {
    if (c.stage != Conn::Stage::Serving || c.lease >= 0) return;
    std::vector<std::uint64_t> pending;
    const std::int64_t id = core_->grant(c.worker_id, now, &pending);
    if (id < 0) return;
    PayloadWriter grant;
    grant.u64(static_cast<std::uint64_t>(id));
    grant.u32(static_cast<std::uint32_t>(pending.size()));
    for (const std::uint64_t index : pending) grant.u64(index);
    if (!c.channel.send(kMsgGrant, grant.take())) {
      drop_conn(c, now);
      return;
    }
    c.lease = id;
    ++core_->report().leases_issued;
  }

  void service(Conn& c, double now) {
    if (c.stage == Conn::Stage::Closed) return;
    // Wire framing damage (bad CRC, impossible length — JournalCorrupt) and
    // connection-level read failures (ECONNRESET and friends — plain Error)
    // from pump()/next() mean a trashed or gone peer: never act on the
    // frame, drop the connection, let the worker reconnect cleanly. The
    // catches are deliberately narrow — a JournalCorrupt out of
    // handle_message (a commit byte mismatch, i.e. nondeterministic task
    // execution) must stay fatal to the whole run.
    bool open = false;
    try {
      open = c.channel.pump();
    } catch (const Error&) {
      drop_conn(c, now);
      return;
    }
    for (;;) {
      WireMessage msg;
      bool got = false;
      try {
        got = c.channel.next(&msg);
      } catch (const Error&) {
        drop_conn(c, now);
        return;
      }
      if (!got || c.stage == Conn::Stage::Closed) break;
      handle_message(c, msg, now);
    }
    if (!open) drop_conn(c, now);
  }

  void handle_message(Conn& c, const WireMessage& msg, double now) {
    c.last_heard = now;
    switch (c.stage) {
      case Conn::Stage::AwaitHello:
        handle_hello(c, msg, now);
        return;
      case Conn::Stage::AwaitAuth:
        handle_auth(c, msg, now);
        return;
      case Conn::Stage::Serving:
        break;
      case Conn::Stage::Closed:
        return;
    }
    WorkerSlot& slot = slots_[static_cast<std::size_t>(c.worker_id)];
    // Explicit size guards instead of PayloadReader's short-read exception:
    // an undersized payload from an authenticated-but-trashed peer drops
    // that connection, it does not abort the server.
    switch (msg.type) {
      case kMsgHeartbeat: {
        if (msg.payload.size() < 12) {
          drop_conn(c, now);
          break;
        }
        PayloadReader r(msg.payload);
        (void)r.u32();  // worker id, redundant with the authenticated conn
        core_->note_liveness(c.worker_id, r.u64(), now);
        slot.last_heartbeat = now;
        break;
      }
      case kMsgLeaseDone: {
        if (msg.payload.size() < 8) {
          drop_conn(c, now);
          break;
        }
        PayloadReader r(msg.payload);
        const std::uint64_t lease = r.u64();
        if (c.lease >= 0 && static_cast<std::uint64_t>(c.lease) == lease)
          c.lease = -1;
        break;
      }
      case kMsgShardChunk:
        handle_chunk(c, slot, msg, now);
        break;
      default:
        drop_conn(c, now);  // protocol violation
        break;
    }
  }

  // --- shard replication ------------------------------------------------

  void open_sink(WorkerSlot& slot, int worker_id) {
    ShardSink& sink = slot.sink;
    if (sink.file != nullptr) return;
    sink.path = shard_journal_path(options_.dir, worker_id);
    const JournalReplay replay = replay_journal(sink.path);
    std::error_code ec;
    if (fs::exists(sink.path, ec) &&
        fs::file_size(sink.path, ec) > replay.valid_bytes)
      fs::resize_file(sink.path, replay.valid_bytes, ec);  // torn tail
    sink.file = std::fopen(sink.path.c_str(), "ab");
    if (sink.file == nullptr)
      throw Error("fabric: cannot open shard sink " + sink.path + ": " +
                  std::strerror(errno));
    sink.have = replay.valid_bytes;
    sink.committed = replay.valid_bytes;
    sink.parser = FrameParser();
  }

  void handle_chunk(Conn& c, WorkerSlot& slot, const WireMessage& msg,
                    double now) {
    ShardSink& sink = slot.sink;
    if (msg.payload.size() < 8) {
      drop_conn(c, now);
      return;
    }
    PayloadReader r(msg.payload);
    const std::uint64_t offset = r.u64();
    const std::uint8_t* data = msg.payload.data() + 8;
    std::size_t n = msg.payload.size() - 8;

    if (offset > sink.have) {
      drop_conn(c, now);  // the worker skipped bytes we never received
      return;
    }
    const std::uint64_t skip = sink.have - offset;
    if (skip >= n) {  // pure resend of bytes we already hold
      ack(c, sink, now);
      return;
    }
    data += skip;
    n -= static_cast<std::size_t>(skip);

    if (std::fwrite(data, 1, n, sink.file) != n || std::fflush(sink.file) != 0)
      throw Error("fabric: cannot append to shard sink " + sink.path + ": " +
                  std::strerror(errno));
#if defined(__unix__) || defined(__APPLE__)
    ::fsync(::fileno(sink.file));
#endif
    report_.shard_bytes_received += n;

    // Verify the magic byte-for-byte, then stream everything after it
    // through the record parser.
    std::size_t consumed = 0;
    while (sink.have < sizeof(kJournalMagic) && consumed < n) {
      if (data[consumed] !=
          static_cast<std::uint8_t>(kJournalMagic[sink.have])) {
        recover_sink(sink);
        drop_conn(c, now);
        return;
      }
      ++sink.have;
      ++consumed;
      sink.committed = sink.have;
    }
    if (consumed < n) {
      sink.parser.feed(data + consumed, n - consumed);
      sink.have += n - consumed;
    }

    for (;;) {
      JournalRecord record;
      bool got = false;
      try {
        got = sink.parser.next(&record);
      } catch (const JournalCorrupt&) {
        // Damaged record bytes inside the replica. Roll the file back to
        // the last good boundary and make the worker re-upload from there.
        recover_sink(sink);
        drop_conn(c, now);
        return;
      }
      if (!got) break;
      sink.committed = sink.have - sink.parser.buffered();
      if (!handle_record(c, record, now)) {
        drop_conn(c, now);
        return;
      }
    }
    if (c.stage == Conn::Stage::Serving) ack(c, sink, now);
  }

  // Truncates the replica back to the last fully parsed record and resets
  // the stream state, so the next upload resumes from a clean boundary.
  void recover_sink(ShardSink& sink) {
    sink.close();
    std::error_code ec;
    fs::resize_file(sink.path, sink.committed, ec);
    sink.file = std::fopen(sink.path.c_str(), "ab");
    if (sink.file == nullptr)
      throw Error("fabric: cannot reopen shard sink " + sink.path + ": " +
                  std::strerror(errno));
    sink.have = sink.committed;
    sink.parser = FrameParser();
  }

  // Returns false when the record is a protocol/manifest violation and the
  // connection must go. Commit mismatches (JournalCorrupt) propagate — a
  // nondeterministic task result is fatal to the run, same as the
  // single-host path.
  bool handle_record(Conn& c, const JournalRecord& record, double now) {
    switch (record.type) {
      case kRecordManifest: {
        PayloadReader r(record.payload);
        const std::uint64_t salt = r.u64();
        const std::uint64_t fp = r.u64();
        return salt != options_.salt || fp == options_.fingerprint;
      }
      case kRecordTaskDone: {
        if (record.payload.size() < 8) return false;
        PayloadReader r(record.payload);
        const std::uint64_t key = r.u64();
        const auto idx = index_of_key_.find(key);
        if (idx == index_of_key_.end()) return false;  // foreign sweep key
        std::vector<std::uint8_t> payload(record.payload.begin() + 8,
                                          record.payload.end());
        core_->commit(idx->second, key, std::move(payload));
        // Progress is liveness, whatever lease it lands under.
        if (c.lease >= 0)
          core_->note_liveness(c.worker_id,
                               static_cast<std::uint64_t>(c.lease), now);
        return true;
      }
      default:
        return true;  // operating points etc. ride along in the bytes
    }
  }

  void ack(Conn& c, ShardSink& sink, double now) {
    PayloadWriter out;
    out.u64(sink.have);
    if (!c.channel.send(kMsgShardAck, out.take())) drop_conn(c, now);
  }

  // --- observability ----------------------------------------------------

  // Atomically rewrites dir/connections.status (tools/fabric_inspect.py
  // connections). Plain text, one worker per line.
  void write_status(double now) {
    last_status_ = now;
    const std::string path = options_.dir + "/connections.status";
    const std::string tmp = path + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr) return;  // observability never kills the run
    std::fprintf(f, "# lpsram fabric-net connections v1\n");
    std::fprintf(f, "epoch %.3f\n", wall_s());
    std::fprintf(f, "listen %d\n", listener_.port());
    for (std::size_t id = 0; id < slots_.size(); ++id) {
      const WorkerSlot& slot = slots_[id];
      if (slot.sessions == 0) continue;
      const Conn* c = slot.conn;
      std::fprintf(f, "worker %zu state=%s addr=%s lease=", id,
                   c != nullptr ? "serving" : "disconnected",
                   c != nullptr && !c->peer.empty() ? c->peer.c_str() : "-");
      if (c != nullptr && c->lease >= 0)
        std::fprintf(f, "%lld", static_cast<long long>(c->lease));
      else
        std::fprintf(f, "-");
      std::fprintf(f, " have=%llu",
                   static_cast<unsigned long long>(slot.sink.have));
      if (slot.last_heartbeat > 0.0)
        std::fprintf(f, " heartbeat_age=%.3f", now - slot.last_heartbeat);
      else
        std::fprintf(f, " heartbeat_age=-");
      std::fprintf(f, " reconnects=%llu\n",
                   static_cast<unsigned long long>(slot.reconnects));
    }
    std::fclose(f);
    std::error_code ec;
    fs::rename(tmp, path, ec);
  }

  std::vector<std::string> existing_shard_paths() const {
    std::vector<std::string> paths;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("shard-", 0) == 0 &&
          entry.path().extension() == ".journal")
        paths.push_back(entry.path().string());
    }
    std::sort(paths.begin(), paths.end());
    return paths;
  }

  TcpListener& listener_;
  NetFabricOptions options_;
  std::uint64_t count_;
  double silence_timeout_s_ = 2.0;
  std::unordered_map<std::uint64_t, std::uint64_t> index_of_key_;
  std::vector<std::uint64_t> keys_in_index_order_;
  std::optional<LeaseCore> core_;
  std::list<Conn> conns_;
  std::vector<WorkerSlot> slots_;
  NetFabricReport report_;
  bool ever_served_ = false;
  double no_worker_since_ = 0.0;
  double last_status_ = 0.0;
};

}  // namespace

NetFabricReport run_net_fabric(TcpListener& listener,
                               const NetFabricOptions& options,
                               std::uint64_t count,
                               const FabricKeyFn& key_of) {
  NetServer server(listener, options, count, key_of);
  try {
    const NetFabricReport report = server.run();
    if (options.report_out != nullptr) *options.report_out = report;
    return report;
  } catch (...) {
    if (options.report_out != nullptr) *options.report_out = server.report();
    throw;
  }
}

#else  // !LPSRAM_HAVE_FABRIC_NET

NetFabricReport run_net_fabric(TcpListener&, const NetFabricOptions&,
                               std::uint64_t, const FabricKeyFn&) {
  throw Error("fabric: the net server requires a POSIX platform");
}

#endif  // LPSRAM_HAVE_FABRIC_NET

}  // namespace lpsram::fabric
