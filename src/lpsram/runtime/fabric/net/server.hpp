// Multi-host fabric server: the TCP transport in front of LeaseCore.
//
// run_net_fabric listens for remote workers (fabric_worker processes on
// other hosts), authenticates each with a mutual HMAC handshake over the
// shared campaign token, and drives the same lease brain the single-host
// coordinator uses. What changes versus the socketpair transport:
//
//   * Handshake before anything. NetHello -> NetChallenge -> NetAuth ->
//     NetWelcome|NetRefuse. A protocol-version or manifest-fingerprint
//     mismatch is refused in the Hello stage, a bad MAC in the Auth stage —
//     in every case before a single lease is granted or a shard byte
//     accepted. The MAC is mutual: the server proves knowledge of the token
//     in its Challenge, so a worker never uploads results to an impostor.
//
//   * Disconnect is not death. A socketpair EOF means the worker process is
//     gone; a TCP drop may be a switch reboot. The server keeps the
//     worker's lease Leased until its deadline — the reconnect window. A
//     worker that re-handshakes (reconnect=1) inside the window has its
//     lease resumed (NetWelcome carries the lease id, a fresh kMsgGrant
//     carries the still-pending indices); past the window the lease was
//     re-issued elsewhere, the Welcome says "none", and the worker discards
//     local lease state. Late duplicate commits reconcile byte-identical,
//     exactly like straggler re-issues on the single-host path.
//
//   * The shard stream IS the commit path. Workers do not send kMsgTaskDone
//     over TCP; they upload their fsync'd shard journal verbatim in
//     kMsgShardChunk frames ([u64 offset][raw bytes]), and the server
//     appends them to its own copy of shard-<id>.journal, decoding records
//     out of the byte stream to commit tasks. Upload is resumable: the
//     NetWelcome's `shard_bytes_have` answers "how much do you have?", the
//     worker continues from that offset, and every chunk is acknowledged
//     with kMsgShardAck. Two checksum layers cover the transfer — the wire
//     frame CRC on each chunk message, and the journal record CRCs inside
//     the replicated bytes — and the server's copy is byte-identical to the
//     worker's file by construction, so the merge sees exactly what the
//     worker fsync'd.
//
// Threat model (deliberately narrow): the fabric runs on a trusted network
// segment. The handshake provides peer authentication and the CRCs provide
// integrity against accidents; nothing here encrypts — results and task
// indices travel in the clear. The token gates participation (a stray
// worker from another campaign, a mistyped port), it is not a defense
// against an on-path adversary. Tokens are loaded from files and never
// appear on argv or on the wire.
#pragma once

#include <cstdint>
#include <string>

#include "lpsram/runtime/fabric/lease_core.hpp"
#include "lpsram/runtime/fabric/net/net.hpp"
#include "lpsram/runtime/fabric/worker.hpp"

namespace lpsram::fabric {

struct NetFabricOptions {
  std::string dir;         // shard + lease-log directory, created if absent
  std::string merged_out;  // merged journal path; empty = dir/merged.journal
  std::string token;       // shared campaign secret (load_token_file)
  std::uint64_t lease_span = 4;
  double lease_timeout_s = 5.0;
  double heartbeat_interval_s = 0.5;
  double backoff_initial_s = 0.05;
  double backoff_max_s = 2.0;
  std::uint64_t salt = 0;  // sweep manifest — refused on mismatch
  std::uint64_t fingerprint = 0;
  const CancelToken* drain = nullptr;

  // A connection that has not completed its handshake within this window is
  // dropped (a silent port-scanner must not hold a slot).
  double handshake_timeout_s = 5.0;
  // A Serving connection silent this long is presumed wedged and dropped —
  // the worker reconnects through the normal path. 0 = 4x heartbeat.
  double conn_silence_timeout_s = 0.0;
  // How long to wait for the first worker ever before concluding the fleet
  // is not coming (FabricWorkersLost).
  double first_connect_timeout_s = 30.0;
  // Once workers have served, how long the server tolerates zero connected
  // workers (reconnect window for a partition) before FabricWorkersLost.
  // 0 = lease_timeout_s.
  double all_lost_grace_s = 0.0;
  double io_timeout_s = 10.0;  // per-connection write deadline (SO_SNDTIMEO)
  int max_workers = 64;        // worker ids must be in [0, max_workers)

  // When set, the transport counters are written here even if the run ends
  // in an exception (FabricWorkersLost, corrupt shard, ...) — the normal
  // return value is lost then, but "was anything refused / leased before
  // the failure?" is exactly what a resuming caller (or a test) wants.
  struct NetFabricReport* report_out = nullptr;

  std::string merged_path() const {
    return merged_out.empty() ? dir + "/merged.journal" : merged_out;
  }
};

struct NetFabricReport {
  FabricReport fabric;
  std::uint64_t connections_accepted = 0;
  std::uint64_t handshakes_completed = 0;
  std::uint64_t refusals_protocol = 0;
  std::uint64_t refusals_manifest = 0;
  std::uint64_t refusals_auth = 0;
  std::uint64_t refusals_busy = 0;
  // Connections torn down by the server: TCP drops, silence/handshake
  // deadlines, framing violations. Reconnects of the same worker count too.
  std::uint64_t connections_dropped = 0;
  std::uint64_t lease_resumes = 0;  // reconnects that kept their lease
  std::uint64_t shard_bytes_received = 0;
};

// Serves the sweep [0, count) over `listener` until every task is committed
// and merged, the drain token fires, or the fleet is lost past its grace
// window (FabricWorkersLost — rerun to resume from the shard journals).
// `key_of` maps sweep indices to task keys exactly as the workers do; tasks
// execute only on the workers, so no task function appears here. Alongside
// the lease log the server maintains `dir`/connections.status, an atomically
// rewritten snapshot of per-worker transport state for
// tools/fabric_inspect.py connections.
NetFabricReport run_net_fabric(TcpListener& listener,
                               const NetFabricOptions& options,
                               std::uint64_t count, const FabricKeyFn& key_of);

}  // namespace lpsram::fabric
