// Transport-agnostic heart of the fabric coordinator: the lease table, the
// durable lease log, duplicate-commit reconciliation and the run statistics,
// with no opinion about how worker messages arrive.
//
// Two transports drive a LeaseCore today:
//   * Coordinator (coordinator.hpp) — the single-host fork+socketpair fleet;
//   * NetServer (net/server.hpp) — remote TCP workers with authenticated
//     reconnects and resumable shard upload.
// Both see exactly the same semantics because both call the same methods:
// grant/regrant, commit (first-commit-wins, later commits verified
// byte-identical), liveness refresh, expiry with exponential backoff, and
// definitive release on worker death. The lease log written here is what a
// restarted coordinator — over either transport — replays for manifest
// verification before rescanning the shard journals.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "lpsram/runtime/fabric/lease.hpp"
#include "lpsram/runtime/journal.hpp"
#include "lpsram/util/cancel.hpp"
#include "lpsram/util/error.hpp"

namespace lpsram::fabric {

// Lease-log record types (journal framing, decoded by tools/fabric_inspect.py).
inline constexpr std::uint8_t kFabLogManifest = 1;        // [u64 salt][u64 fp][u64 tasks][u64 span]
inline constexpr std::uint8_t kFabLogLeaseIssued = 2;     // [u64 lease][u32 worker][u64 grants]
inline constexpr std::uint8_t kFabLogLeaseExpired = 3;    // [u64 lease]
inline constexpr std::uint8_t kFabLogLeaseCompleted = 4;  // [u64 lease]
inline constexpr std::uint8_t kFabLogTaskCommitted = 5;   // [u64 index][u64 key]
inline constexpr std::uint8_t kFabLogWorkerDead = 6;      // [u32 worker]
inline constexpr std::uint8_t kFabLogMerged = 7;          // [u64 tasks][u64 duplicates]

// Every worker died (or none were supplied) while tasks remain. The shard
// journals still hold everything committed so far — rerunning the fabric
// resumes from them; nothing is lost.
class FabricWorkersLost : public Error {
 public:
  explicit FabricWorkersLost(const std::string& what) : Error(what) {}
};

struct CoordinatorOptions {
  std::string lease_log;  // path of the coordinator's own journal
  std::uint64_t salt = 0;
  std::uint64_t fingerprint = 0;
  std::uint64_t task_count = 0;
  LeaseTableOptions leases;
  // Optional graceful drain: once cancelled, no new leases are issued,
  // in-flight leases finish, workers get kMsgShutdown, run() returns with
  // complete == false (unless the last lease happened to finish the sweep).
  const CancelToken* drain = nullptr;
};

struct FabricReport {
  std::uint64_t tasks_total = 0;
  std::uint64_t tasks_recovered = 0;  // committed before this run (shard scan)
  std::uint64_t tasks_executed = 0;   // first commits received this run
  std::uint64_t duplicates = 0;       // reconciled re-commits (verified equal)
  std::uint64_t leases_issued = 0;
  std::uint64_t leases_expired = 0;
  std::uint64_t workers_died = 0;
  bool drained = false;
  bool complete = false;  // every task committed
};

class LeaseCore {
 public:
  // `recovered` maps task index -> committed payload found in the shard
  // journals before this run (see read_campaign_snapshot); those indices are
  // marked done up front and only gaps are leased. Opens/replays the lease
  // log: a prior log whose manifest disagrees with `options` is refused
  // (InvalidArgument) instead of silently mixing sweeps.
  LeaseCore(CoordinatorOptions options,
            std::unordered_map<std::uint64_t, std::vector<std::uint8_t>>
                recovered);

  LeaseCore(const LeaseCore&) = delete;
  LeaseCore& operator=(const LeaseCore&) = delete;

  // Grants the next available lease to `worker` and logs the issue. Fills
  // *indices with the span's still-pending task indices (the grant message
  // carries exactly these). Returns the lease id, or -1 when nothing is
  // grantable right now. Does NOT bump report().leases_issued — the
  // transport does that once the grant actually reached the worker.
  std::int64_t grant(int worker, double now,
                     std::vector<std::uint64_t>* indices);

  // Reconnect resume: if `worker` still holds a Leased lease (its connection
  // dropped but the deadline has not passed and nobody re-issued it), push
  // the deadline out, log the re-issue and return the lease id + pending
  // indices. -1 when the worker holds nothing — it must discard and ask for
  // a fresh grant.
  std::int64_t regrant_held(int worker, double now,
                            std::vector<std::uint64_t>* indices);

  // Commits one task result, first-commit-wins. A first commit is logged
  // (TaskCommitted, plus LeaseCompleted when it closes its span) and
  // returns true; a duplicate is verified byte-identical against the first
  // and returns false; a byte mismatch throws JournalCorrupt (it means task
  // execution was nondeterministic, which the merge contract cannot
  // survive). An out-of-range index throws Error.
  bool commit(std::uint64_t index, std::uint64_t key,
              std::vector<std::uint8_t> payload);

  // Heartbeat or visible progress from `worker`: refreshes `lease`'s
  // deadline iff that worker currently holds it. Stale/foreign ids are
  // ignored — late heartbeats from a re-issued lease's original holder must
  // not keep the re-issue alive.
  void note_liveness(int worker, std::uint64_t lease, double now);

  // Drops over-deadline leases back to Pending behind their backoff gates,
  // logging each expiry.
  void expire(double now);

  // Definitive worker death (channel EOF on the socketpair transport,
  // explicit discard on the net transport): logs WorkerDead and requeues the
  // worker's held leases immediately, without backoff.
  void release_worker(int worker_id);

  // Appends the kFabLogMerged marker after the merged journal is published
  // (the log stays open for exactly this final record).
  void log_merged(std::uint64_t tasks, std::uint64_t duplicates);

  const LeaseTable& table() const noexcept { return table_; }
  bool task_done(std::uint64_t index) const { return table_.task_done(index); }
  bool all_done() const noexcept { return table_.all_done(); }
  bool any_leased() const noexcept { return table_.any_leased(); }
  double next_event() const noexcept { return table_.next_event(); }
  std::uint64_t tasks_remaining() const noexcept {
    return options_.task_count - table_.tasks_done();
  }
  bool drain_requested() const noexcept {
    return options_.drain != nullptr && options_.drain->cancelled();
  }

  // index -> committed payload, for every task committed so far (recovered
  // + this run). After a complete run this covers [0, task_count).
  const std::unordered_map<std::uint64_t, std::vector<std::uint8_t>>&
  payloads() const noexcept {
    return payloads_;
  }

  FabricReport& report() noexcept { return report_; }
  const CoordinatorOptions& options() const noexcept { return options_; }

 private:
  void log(std::uint8_t type, const std::vector<std::uint8_t>& payload);
  void log_lease_issued(std::uint64_t lease, int worker);
  void replay_lease_log();

  CoordinatorOptions options_;
  LeaseTable table_;
  JournalWriter log_;
  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> payloads_;
  std::vector<bool> lease_completion_logged_;
  FabricReport report_;
};

}  // namespace lpsram::fabric
