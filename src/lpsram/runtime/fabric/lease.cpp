#include "lpsram/runtime/fabric/lease.hpp"

#include <algorithm>
#include <limits>
#include <string>

#include "lpsram/util/error.hpp"

namespace lpsram::fabric {

LeaseTable::LeaseTable(std::uint64_t task_count, LeaseTableOptions options)
    : task_count_(task_count), options_(options) {
  if (options_.span == 0)
    throw InvalidArgument("fabric: lease span must be positive");
  if (options_.lease_timeout_s <= 0.0)
    throw InvalidArgument("fabric: lease timeout must be positive");
  if (options_.heartbeat_interval_s <= 0.0)
    throw InvalidArgument("fabric: heartbeat interval must be positive");
  if (options_.heartbeat_interval_s >= options_.lease_timeout_s)
    throw InvalidArgument(
        "fabric: heartbeat interval (" +
        std::to_string(options_.heartbeat_interval_s) +
        "s) must be below the lease timeout (" +
        std::to_string(options_.lease_timeout_s) +
        "s) — at or above it every lease would expire and be re-issued "
        "before its holder's next heartbeat could land");
  if (options_.backoff_initial_s <= 0.0)
    throw InvalidArgument("fabric: initial re-issue backoff must be positive");
  if (options_.backoff_max_s < options_.backoff_initial_s)
    throw InvalidArgument(
        "fabric: backoff cap must be >= the initial backoff");
  const std::uint64_t n = (task_count_ + options_.span - 1) / options_.span;
  leases_.reserve(n);
  for (std::uint64_t id = 0; id < n; ++id) {
    Lease lease;
    lease.id = id;
    lease.begin = id * options_.span;
    lease.end = std::min(task_count_, lease.begin + options_.span);
    leases_.push_back(lease);
  }
  done_.assign(task_count_, false);
}

std::int64_t LeaseTable::grant(int worker, double now) {
  for (Lease& lease : leases_) {
    if (lease.state != LeaseState::Pending) continue;
    if (lease.available_at > now) continue;
    lease.state = LeaseState::Leased;
    lease.worker = worker;
    ++lease.grants;
    lease.deadline = now + options_.lease_timeout_s;
    return static_cast<std::int64_t>(lease.id);
  }
  return -1;
}

std::int64_t LeaseTable::note_task_done(std::uint64_t index) {
  if (index >= task_count_)
    throw InvalidArgument("fabric: task index out of range");
  if (done_[index]) return -1;  // duplicate commit; coverage unchanged
  done_[index] = true;
  ++tasks_done_;
  Lease& lease = leases_[index / options_.span];
  for (std::uint64_t i = lease.begin; i < lease.end; ++i)
    if (!done_[i]) return -1;
  lease.state = LeaseState::Completed;
  return static_cast<std::int64_t>(lease.id);
}

void LeaseTable::refresh(std::uint64_t id, double now) {
  Lease& lease = leases_.at(id);
  if (lease.state != LeaseState::Leased) return;  // late heartbeat; ignore
  lease.deadline = now + options_.lease_timeout_s;
}

std::vector<std::uint64_t> LeaseTable::expire(double now) {
  std::vector<std::uint64_t> expired;
  for (Lease& lease : leases_) {
    if (lease.state != LeaseState::Leased) continue;
    if (lease.deadline > now) continue;
    lease.state = LeaseState::Pending;
    lease.available_at = now + backoff_for(lease.grants);
    expired.push_back(lease.id);
  }
  return expired;
}

std::vector<std::uint64_t> LeaseTable::release_worker(int worker) {
  std::vector<std::uint64_t> released;
  for (Lease& lease : leases_) {
    if (lease.state != LeaseState::Leased || lease.worker != worker) continue;
    lease.state = LeaseState::Pending;
    lease.available_at = 0.0;  // death is definitive: no backoff
    released.push_back(lease.id);
  }
  return released;
}

std::vector<std::uint64_t> LeaseTable::pending_indices(std::uint64_t id) const {
  const Lease& lease = leases_.at(id);
  std::vector<std::uint64_t> indices;
  for (std::uint64_t i = lease.begin; i < lease.end; ++i)
    if (!done_[i]) indices.push_back(i);
  return indices;
}

bool LeaseTable::any_leased() const noexcept {
  return std::any_of(leases_.begin(), leases_.end(), [](const Lease& l) {
    return l.state == LeaseState::Leased;
  });
}

bool LeaseTable::any_pending() const noexcept {
  return std::any_of(leases_.begin(), leases_.end(), [](const Lease& l) {
    return l.state == LeaseState::Pending;
  });
}

double LeaseTable::next_event() const noexcept {
  double soonest = std::numeric_limits<double>::infinity();
  for (const Lease& lease : leases_) {
    if (lease.state == LeaseState::Leased)
      soonest = std::min(soonest, lease.deadline);
    else if (lease.state == LeaseState::Pending && lease.available_at > 0.0)
      soonest = std::min(soonest, lease.available_at);
  }
  return soonest;
}

double LeaseTable::backoff_for(std::uint64_t grants) const noexcept {
  // grants counts issues so far; the first expiry (grants == 1) waits the
  // initial backoff, doubling per further expiry up to the cap.
  double delay = options_.backoff_initial_s;
  for (std::uint64_t i = 1; i < grants && delay < options_.backoff_max_s; ++i)
    delay *= 2.0;
  return std::min(delay, options_.backoff_max_s);
}

}  // namespace lpsram::fabric
