// Work-lease bookkeeping for the fabric coordinator. The sweep's task index
// range [0, count) is sharded into fixed-span leases; each lease moves
// through Pending -> Leased -> Completed, with two robustness edges:
//
//   * expiry: a Leased lease whose deadline passes (no heartbeat, TaskDone
//     or LeaseDone from its worker) drops back to Pending behind an
//     exponential-backoff gate, so a straggler is re-issued — but not
//     hot-looped — while the original worker may still be grinding;
//   * release: a worker that dies (channel EOF) returns its lease to
//     Pending immediately, without backoff — death is definitive in a way a
//     missed heartbeat is not.
//
// Completion is task-driven, not message-driven: a lease is Completed when
// every task index in its span has a committed result, regardless of which
// worker (original or re-issued) delivered each one. Duplicate commits are
// the coordinator's reconciliation problem; the table only tracks coverage.
//
// The table is plain single-threaded state owned by the coordinator's event
// loop. Time is passed in (monotonic seconds) so tests can drive expiry
// deterministically.
#pragma once

#include <cstdint>
#include <vector>

namespace lpsram::fabric {

enum class LeaseState : std::uint8_t { Pending, Leased, Completed };

struct Lease {
  std::uint64_t id = 0;  // == position of the span: [id*span, min((id+1)*span, count))
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  LeaseState state = LeaseState::Pending;
  int worker = -1;            // holder while Leased, last holder otherwise
  std::uint64_t grants = 0;   // times issued (1 = first grant, >1 = re-issue)
  double deadline = 0.0;      // expiry instant while Leased
  double available_at = 0.0;  // backoff gate while Pending
};

struct LeaseTableOptions {
  std::uint64_t span = 4;          // tasks per lease
  double lease_timeout_s = 5.0;    // deadline = grant/heartbeat + timeout
  // Interval at which holders promise to refresh their lease. The table
  // itself never ticks heartbeats; it is validated here because a heartbeat
  // interval at or above the lease deadline silently re-issues every lease
  // the moment the holder pauses between tasks.
  double heartbeat_interval_s = 0.5;
  double backoff_initial_s = 0.05; // first re-issue delay after expiry
  double backoff_max_s = 2.0;      // exponential backoff cap
};

class LeaseTable {
 public:
  // Validates the configuration: span and every timeout must be positive,
  // the heartbeat interval must be strictly below the lease deadline, and
  // the backoff cap must not undercut the initial backoff. Violations throw
  // InvalidArgument with a message naming the offending field.
  LeaseTable(std::uint64_t task_count, LeaseTableOptions options);

  std::uint64_t lease_count() const noexcept { return leases_.size(); }
  std::uint64_t task_count() const noexcept { return task_count_; }
  const Lease& lease(std::uint64_t id) const { return leases_.at(id); }

  // Grants the lowest-id Pending lease whose backoff gate has passed to
  // `worker`; returns its id or -1 when nothing is currently grantable.
  std::int64_t grant(int worker, double now);

  // Marks one task index committed. Returns the id of the lease that just
  // became Completed because of it, or -1.
  std::int64_t note_task_done(std::uint64_t index);
  bool task_done(std::uint64_t index) const { return done_.at(index); }

  // Heartbeat / progress from the lease's holder: pushes the deadline out.
  void refresh(std::uint64_t id, double now);

  // Drops every over-deadline Leased lease back to Pending behind its
  // backoff gate; returns their ids.
  std::vector<std::uint64_t> expire(double now);

  // Worker died: its Leased lease (if any) re-queues immediately.
  std::vector<std::uint64_t> release_worker(int worker);

  // Pending task indices of a lease span, in index order (the grant message
  // carries exactly these, so a re-issued lease never re-runs tasks a
  // straggler already committed).
  std::vector<std::uint64_t> pending_indices(std::uint64_t id) const;

  std::uint64_t tasks_done() const noexcept { return tasks_done_; }
  bool all_done() const noexcept { return tasks_done_ == task_count_; }
  // True while any lease is Leased (used by graceful drain).
  bool any_leased() const noexcept;
  // True when some Pending lease is merely waiting out its backoff.
  bool any_pending() const noexcept;

  // Earliest instant at which anything can change without a message: the
  // soonest Leased deadline or Pending backoff gate. +inf when neither.
  double next_event() const noexcept;

 private:
  double backoff_for(std::uint64_t grants) const noexcept;

  std::uint64_t task_count_ = 0;
  LeaseTableOptions options_;
  std::vector<Lease> leases_;
  std::vector<bool> done_;      // per task index
  std::uint64_t tasks_done_ = 0;
};

}  // namespace lpsram::fabric
