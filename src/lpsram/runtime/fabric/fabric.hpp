// Top-level fabric entry point: fork a worker fleet, coordinate leases,
// survive kills on either side, merge the shards.
//
// run_fabric(options, count, key_of, task_fn) executes the indexed sweep
// [0, count) across `options.workers` forked processes and, on completion,
// merges the per-worker shard journals into one campaign journal at
// options.merged_path() whose replay is bit-identical to an uninterrupted
// single-process run of the same sweep.
//
// Crash envelope:
//   * worker dies (SIGKILL, OOM, chaos _Exit, shard-journal crash): its
//     channel EOFs, its lease re-queues, the sweep finishes on the
//     survivors; if every worker dies, FabricWorkersLost is thrown — and a
//     rerun of run_fabric with the same options resumes from the shard
//     journals, re-executing only uncommitted tasks;
//   * coordinator dies (crash injection on its lease log, real kill): the
//     worker fleet sees EOF and exits; a rerun replays the lease log (for
//     manifest verification), rescans the shards, and leases only the gaps;
//   * a wedged worker goes silent past the lease timeout: its lease is
//     re-issued elsewhere with exponential backoff, and when the straggler
//     eventually commits the duplicate results are verified byte-identical
//     and dropped.
//
// On platforms without fork()/socketpair() run_fabric throws lpsram::Error.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lpsram/runtime/fabric/coordinator.hpp"
#include "lpsram/runtime/fabric/worker.hpp"

namespace lpsram::fabric {

// File layout inside a fabric directory.
std::string shard_journal_path(const std::string& dir, int worker_id);
std::string coordinator_log_path(const std::string& dir);
std::string worker_pid_path(const std::string& dir, int worker_id);
std::string merged_journal_path(const std::string& dir);

struct FabricOptions {
  std::string dir;          // journal directory, created if absent
  std::string merged_out;   // merged journal path; empty = dir/merged.journal
  int workers = 1;
  // Executor threads inside each worker; 0 = split the host budget evenly
  // (SweepExecutor::threads_per_process(workers)).
  int worker_threads = 1;
  std::uint64_t lease_span = 4;
  double lease_timeout_s = 5.0;      // must exceed the slowest single task
  double heartbeat_interval_s = 0.5;
  double backoff_initial_s = 0.05;
  double backoff_max_s = 2.0;
  std::uint64_t salt = 0;            // sweep manifest (same values the
  std::uint64_t fingerprint = 0;     // single-process campaign would bind)
  const CancelToken* drain = nullptr;
  // Per-worker-id fault injection for the kill matrices; entries beyond
  // workers are ignored, missing entries mean no chaos.
  std::vector<WorkerChaos> chaos;

  std::string merged_path() const {
    return merged_out.empty() ? merged_journal_path(dir) : merged_out;
  }
};

// Runs the sweep across a forked worker fleet; blocks until every task is
// committed and merged, the drain token fires, or FabricWorkersLost.
// `key_of` and `task_fn` are evaluated in the worker processes (and key_of
// additionally in the parent, for shard recovery and merge ordering) — they
// must be pure functions of the index and the process-wide sweep
// configuration.
FabricReport run_fabric(const FabricOptions& options, std::uint64_t count,
                        const FabricKeyFn& key_of, const FabricTaskFn& task_fn);

// SIGKILLs every worker whose pidfile is present under `dir` (best effort;
// already-dead pids are skipped) and removes the pidfiles. Returns the
// number of processes signalled. The operator's big red button, also exposed
// via tools/fabric_inspect.py killall.
int kill_all_workers(const std::string& dir);

}  // namespace lpsram::fabric
