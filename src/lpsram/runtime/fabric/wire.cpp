#include "lpsram/runtime/fabric/wire.hpp"

#include <cerrno>
#include <cstring>

#include "lpsram/util/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#define LPSRAM_HAVE_FABRIC 1
#endif

namespace lpsram::fabric {

#ifdef LPSRAM_HAVE_FABRIC

MessageChannel& MessageChannel::operator=(MessageChannel&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    parser_ = std::move(other.parser_);
    other.fd_ = -1;
  }
  return *this;
}

std::pair<MessageChannel, MessageChannel> MessageChannel::make_pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
    throw Error(std::string("fabric: socketpair failed: ") +
                std::strerror(errno));
  return {MessageChannel(fds[0]), MessageChannel(fds[1])};
}

void MessageChannel::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool MessageChannel::send(std::uint8_t type,
                          const std::vector<std::uint8_t>& payload) {
  if (fd_ < 0) return false;
  const std::vector<std::uint8_t> frame =
      encode_record_frame(type, payload.data(), payload.size());
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET || errno == ETIMEDOUT)
        return false;
      // A TCP channel with an SO_SNDTIMEO write deadline reports a wedged
      // peer (full socket buffer past the deadline) as EAGAIN. Treat it the
      // same as a gone peer: the caller tears the connection down and the
      // lease machinery recovers, instead of the sender blocking forever.
      if (errno == EAGAIN || errno == EWOULDBLOCK) return false;
      throw Error(std::string("fabric: channel send failed: ") +
                  std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool MessageChannel::next(WireMessage* out) {
  JournalRecord record;
  if (!parser_.next(&record)) return false;
  out->type = record.type;
  out->payload = std::move(record.payload);
  return true;
}

bool MessageChannel::pump() {
  std::uint8_t chunk[4096];
  for (;;) {
    pollfd p{fd_, POLLIN, 0};
    const int ready = ::poll(&p, 1, 0);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("fabric: channel poll failed: ") +
                  std::strerror(errno));
    }
    if (ready == 0) return true;  // drained everything currently available
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("fabric: channel read failed: ") +
                  std::strerror(errno));
    }
    if (n == 0) return false;  // EOF: peer closed (exit, SIGKILL, OOM, ...)
    parser_.feed(chunk, static_cast<std::size_t>(n));
  }
}

RecvStatus MessageChannel::recv(WireMessage* out, int timeout_ms) {
  for (;;) {
    if (next(out)) return RecvStatus::Ok;
    if (fd_ < 0) return RecvStatus::Eof;
    pollfd p{fd_, POLLIN, 0};
    const int ready = ::poll(&p, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("fabric: channel poll failed: ") +
                  std::strerror(errno));
    }
    if (ready == 0) return RecvStatus::Timeout;
    std::uint8_t chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("fabric: channel read failed: ") +
                  std::strerror(errno));
    }
    if (n == 0) return next(out) ? RecvStatus::Ok : RecvStatus::Eof;
    parser_.feed(chunk, static_cast<std::size_t>(n));
  }
}

#else  // !LPSRAM_HAVE_FABRIC

MessageChannel& MessageChannel::operator=(MessageChannel&&) noexcept = default;
std::pair<MessageChannel, MessageChannel> MessageChannel::make_pair() {
  throw Error("fabric: message channels require a POSIX platform");
}
void MessageChannel::close() noexcept {}
bool MessageChannel::send(std::uint8_t, const std::vector<std::uint8_t>&) {
  throw Error("fabric: message channels require a POSIX platform");
}
bool MessageChannel::next(WireMessage*) { return false; }
bool MessageChannel::pump() { return false; }
RecvStatus MessageChannel::recv(WireMessage*, int) { return RecvStatus::Eof; }

#endif  // LPSRAM_HAVE_FABRIC

}  // namespace lpsram::fabric
