// Fabric coordinator: single-threaded lease dispatcher over a fleet of
// worker channels.
//
// The coordinator owns two pieces of durable state:
//   * the workers' shard journals (indirectly) — authoritative for every
//     committed task payload, because workers fsync before acknowledging;
//   * its own lease log (a journal file of kFabLog* records) — written at
//     every lease-state transition, so a restarted coordinator replays the
//     log, rescans the shards, and re-issues exactly the gaps. The lease log
//     adds manifest verification, backoff continuity and statistics; task
//     payloads never live only in it.
//
// Liveness model: a worker proves liveness by sending anything (heartbeat,
// TaskDone, LeaseDone) — each refreshes its lease's deadline. Silence past
// the deadline expires the lease back into the pending queue behind an
// exponential backoff; channel EOF (exit/SIGKILL/OOM) releases it
// immediately. Both paths may produce duplicate commits when the original
// worker was merely slow — the coordinator reconciles first-commit-wins and
// verifies later commits byte-identical (a mismatch means task execution was
// nondeterministic, which the merge contract cannot survive, so it throws).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "lpsram/runtime/fabric/lease.hpp"
#include "lpsram/runtime/fabric/wire.hpp"
#include "lpsram/util/cancel.hpp"
#include "lpsram/util/error.hpp"

namespace lpsram::fabric {

// Lease-log record types (journal framing, decoded by tools/fabric_inspect.py).
inline constexpr std::uint8_t kFabLogManifest = 1;        // [u64 salt][u64 fp][u64 tasks][u64 span]
inline constexpr std::uint8_t kFabLogLeaseIssued = 2;     // [u64 lease][u32 worker][u64 grants]
inline constexpr std::uint8_t kFabLogLeaseExpired = 3;    // [u64 lease]
inline constexpr std::uint8_t kFabLogLeaseCompleted = 4;  // [u64 lease]
inline constexpr std::uint8_t kFabLogTaskCommitted = 5;   // [u64 index][u64 key]
inline constexpr std::uint8_t kFabLogWorkerDead = 6;      // [u32 worker]
inline constexpr std::uint8_t kFabLogMerged = 7;          // [u64 tasks][u64 duplicates]

// Every worker died (or none were supplied) while tasks remain. The shard
// journals still hold everything committed so far — rerunning the fabric
// resumes from them; nothing is lost.
class FabricWorkersLost : public Error {
 public:
  explicit FabricWorkersLost(const std::string& what) : Error(what) {}
};

struct CoordinatorOptions {
  std::string lease_log;  // path of the coordinator's own journal
  std::uint64_t salt = 0;
  std::uint64_t fingerprint = 0;
  std::uint64_t task_count = 0;
  LeaseTableOptions leases;
  // Optional graceful drain: once cancelled, no new leases are issued,
  // in-flight leases finish, workers get kMsgShutdown, run() returns with
  // complete == false (unless the last lease happened to finish the sweep).
  const CancelToken* drain = nullptr;
};

// One connected worker from the coordinator's point of view. `pid` is
// informational (0 for in-process test workers); death is detected by
// channel EOF, reaping is the forker's job.
struct WorkerEndpoint {
  int worker_id = 0;
  long pid = 0;
  MessageChannel channel;
};

struct FabricReport {
  std::uint64_t tasks_total = 0;
  std::uint64_t tasks_recovered = 0;  // committed before this run (shard scan)
  std::uint64_t tasks_executed = 0;   // first commits received this run
  std::uint64_t duplicates = 0;       // reconciled re-commits (verified equal)
  std::uint64_t leases_issued = 0;
  std::uint64_t leases_expired = 0;
  std::uint64_t workers_died = 0;
  bool drained = false;
  bool complete = false;  // every task committed
};

class Coordinator {
 public:
  // `recovered` maps task index -> committed payload found in the shard
  // journals before this run (see read_campaign_snapshot); those indices are
  // marked done up front and only gaps are leased. Opens/replays the lease
  // log: a prior log whose manifest disagrees with `options` is refused
  // (InvalidArgument) instead of silently mixing sweeps.
  Coordinator(CoordinatorOptions options, std::vector<WorkerEndpoint> workers,
              std::unordered_map<std::uint64_t, std::vector<std::uint8_t>>
                  recovered);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  // Runs the event loop to completion (all tasks committed), drain, or
  // FabricWorkersLost. Committed payloads are retained in memory for
  // duplicate verification and exposed afterwards via payloads().
  FabricReport run();

  // index -> committed payload, for every task committed so far (recovered
  // + this run). After a complete run this covers [0, task_count).
  const std::unordered_map<std::uint64_t, std::vector<std::uint8_t>>&
  payloads() const noexcept {
    return payloads_;
  }

  // Appends the kFabLogMerged marker after run_fabric has published the
  // merged journal (the log stays open for exactly this final record).
  void log_merged(std::uint64_t tasks, std::uint64_t duplicates);

 private:
  struct WorkerState {
    int worker_id = 0;
    long pid = 0;
    MessageChannel channel;
    std::int64_t lease = -1;  // currently granted lease, -1 when idle
    bool alive = true;
  };

  void log(std::uint8_t type, const std::vector<std::uint8_t>& payload);
  void replay_lease_log();
  void mark_worker_dead(WorkerState& w);
  void handle_message(WorkerState& w, const WireMessage& msg, double now);
  void try_grant(WorkerState& w, double now);
  void broadcast_shutdown();
  std::size_t live_workers() const;

  CoordinatorOptions options_;
  LeaseTable table_;
  JournalWriter log_;
  std::vector<WorkerState> workers_;
  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> payloads_;
  std::vector<bool> lease_completion_logged_;
  FabricReport report_;
};

}  // namespace lpsram::fabric
