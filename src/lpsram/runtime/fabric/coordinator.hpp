// Fabric coordinator: single-threaded lease dispatcher over a fleet of
// worker channels.
//
// The coordinator owns two pieces of durable state:
//   * the workers' shard journals (indirectly) — authoritative for every
//     committed task payload, because workers fsync before acknowledging;
//   * its own lease log (a journal file of kFabLog* records) — written at
//     every lease-state transition, so a restarted coordinator replays the
//     log, rescans the shards, and re-issues exactly the gaps. The lease log
//     adds manifest verification, backoff continuity and statistics; task
//     payloads never live only in it.
//
// Liveness model: a worker proves liveness by sending anything (heartbeat,
// TaskDone, LeaseDone) — each refreshes its lease's deadline. Silence past
// the deadline expires the lease back into the pending queue behind an
// exponential backoff; channel EOF (exit/SIGKILL/OOM) releases it
// immediately. Both paths may produce duplicate commits when the original
// worker was merely slow — the coordinator reconciles first-commit-wins and
// verifies later commits byte-identical (a mismatch means task execution was
// nondeterministic, which the merge contract cannot survive, so it throws).
//
// All of the lease/log/reconciliation state above lives in LeaseCore
// (lease_core.hpp); this class is the socketpair transport around it. The
// TCP transport (net/server.hpp) drives the same core with the same
// semantics, plus what real networks add: authentication, reconnects, and
// resumable shard upload.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "lpsram/runtime/fabric/lease_core.hpp"
#include "lpsram/runtime/fabric/wire.hpp"

namespace lpsram::fabric {

// One connected worker from the coordinator's point of view. `pid` is
// informational (0 for in-process test workers); death is detected by
// channel EOF, reaping is the forker's job.
struct WorkerEndpoint {
  int worker_id = 0;
  long pid = 0;
  MessageChannel channel;
};

class Coordinator {
 public:
  // `recovered` maps task index -> committed payload found in the shard
  // journals before this run (see read_campaign_snapshot); those indices are
  // marked done up front and only gaps are leased. Opens/replays the lease
  // log: a prior log whose manifest disagrees with `options` is refused
  // (InvalidArgument) instead of silently mixing sweeps.
  Coordinator(CoordinatorOptions options, std::vector<WorkerEndpoint> workers,
              std::unordered_map<std::uint64_t, std::vector<std::uint8_t>>
                  recovered);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  // Runs the event loop to completion (all tasks committed), drain, or
  // FabricWorkersLost. Committed payloads are retained in memory for
  // duplicate verification and exposed afterwards via payloads().
  FabricReport run();

  // index -> committed payload, for every task committed so far (recovered
  // + this run). After a complete run this covers [0, task_count).
  const std::unordered_map<std::uint64_t, std::vector<std::uint8_t>>&
  payloads() const noexcept {
    return core_.payloads();
  }

  // Appends the kFabLogMerged marker after run_fabric has published the
  // merged journal (the log stays open for exactly this final record).
  void log_merged(std::uint64_t tasks, std::uint64_t duplicates) {
    core_.log_merged(tasks, duplicates);
  }

 private:
  struct WorkerState {
    int worker_id = 0;
    long pid = 0;
    MessageChannel channel;
    std::int64_t lease = -1;  // currently granted lease, -1 when idle
    bool alive = true;
  };

  void mark_worker_dead(WorkerState& w);
  void handle_message(WorkerState& w, const WireMessage& msg, double now);
  void try_grant(WorkerState& w, double now);
  void broadcast_shutdown();
  std::size_t live_workers() const;

  LeaseCore core_;
  std::vector<WorkerState> workers_;
};

}  // namespace lpsram::fabric
