#include "lpsram/runtime/fabric/lease_core.hpp"

#include <string>
#include <utility>

namespace lpsram::fabric {

LeaseCore::LeaseCore(
    CoordinatorOptions options,
    std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> recovered)
    : options_(std::move(options)),
      table_(options_.task_count, options_.leases) {
  replay_lease_log();
  lease_completion_logged_.assign(table_.lease_count(), false);

  for (auto& [index, payload] : recovered) {
    if (index >= options_.task_count)
      throw InvalidArgument("fabric: recovered task index out of range");
    payloads_[index] = std::move(payload);
    const std::int64_t completed = table_.note_task_done(index);
    if (completed >= 0)
      lease_completion_logged_[static_cast<std::size_t>(completed)] = true;
    ++report_.tasks_recovered;
  }
  report_.tasks_total = options_.task_count;
}

void LeaseCore::log(std::uint8_t type,
                    const std::vector<std::uint8_t>& payload) {
  log_.append(type, payload);
}

void LeaseCore::replay_lease_log() {
  const JournalReplay replay = replay_journal(options_.lease_log);
  bool have_manifest = false;
  for (const JournalRecord& record : replay.records) {
    if (record.type != kFabLogManifest) continue;
    PayloadReader r(record.payload);
    const std::uint64_t salt = r.u64();
    const std::uint64_t fp = r.u64();
    const std::uint64_t tasks = r.u64();
    const std::uint64_t span = r.u64();
    if (salt != options_.salt || fp != options_.fingerprint ||
        tasks != options_.task_count || span != options_.leases.span)
      throw InvalidArgument(
          "fabric: lease log was recorded for a different sweep "
          "(manifest mismatch) — refusing to resume against it");
    have_manifest = true;
  }
  log_.open(options_.lease_log, replay.valid_bytes);
  if (!have_manifest) {
    PayloadWriter w;
    w.u64(options_.salt);
    w.u64(options_.fingerprint);
    w.u64(options_.task_count);
    w.u64(options_.leases.span);
    log(kFabLogManifest, w.take());
  }
}

void LeaseCore::log_lease_issued(std::uint64_t lease, int worker) {
  PayloadWriter rec;
  rec.u64(lease);
  rec.u32(static_cast<std::uint32_t>(worker));
  rec.u64(table_.lease(lease).grants);
  log(kFabLogLeaseIssued, rec.take());
}

std::int64_t LeaseCore::grant(int worker, double now,
                              std::vector<std::uint64_t>* indices) {
  if (drain_requested()) return -1;
  const std::int64_t id = table_.grant(worker, now);
  if (id < 0) return -1;
  *indices = table_.pending_indices(static_cast<std::uint64_t>(id));
  log_lease_issued(static_cast<std::uint64_t>(id), worker);
  return id;
}

std::int64_t LeaseCore::regrant_held(int worker, double now,
                                     std::vector<std::uint64_t>* indices) {
  for (std::uint64_t id = 0; id < table_.lease_count(); ++id) {
    const Lease& lease = table_.lease(id);
    if (lease.state != LeaseState::Leased || lease.worker != worker) continue;
    table_.refresh(id, now);
    *indices = table_.pending_indices(id);
    log_lease_issued(id, worker);
    return static_cast<std::int64_t>(id);
  }
  return -1;
}

bool LeaseCore::commit(std::uint64_t index, std::uint64_t key,
                       std::vector<std::uint8_t> payload) {
  if (index >= options_.task_count)
    throw Error("fabric: TaskDone index out of range");
  if (table_.task_done(index)) {
    // Straggler re-commit. First commit won; this one must be
    // byte-identical or the determinism contract is broken and the merged
    // journal would depend on scheduling.
    const auto it = payloads_.find(index);
    if (it == payloads_.end() || it->second != payload)
      throw JournalCorrupt(
          "fabric: duplicate commit for task " + std::to_string(index) +
          " differs from the first — nondeterministic task execution");
    ++report_.duplicates;
    return false;
  }
  payloads_[index] = std::move(payload);
  PayloadWriter rec;
  rec.u64(index);
  rec.u64(key);
  log(kFabLogTaskCommitted, rec.take());
  ++report_.tasks_executed;
  const std::int64_t completed = table_.note_task_done(index);
  if (completed >= 0 &&
      !lease_completion_logged_[static_cast<std::size_t>(completed)]) {
    lease_completion_logged_[static_cast<std::size_t>(completed)] = true;
    PayloadWriter done;
    done.u64(static_cast<std::uint64_t>(completed));
    log(kFabLogLeaseCompleted, done.take());
  }
  return true;
}

void LeaseCore::note_liveness(int worker, std::uint64_t lease, double now) {
  if (lease < table_.lease_count() &&
      table_.lease(lease).state == LeaseState::Leased &&
      table_.lease(lease).worker == worker)
    table_.refresh(lease, now);
}

void LeaseCore::expire(double now) {
  for (const std::uint64_t id : table_.expire(now)) {
    ++report_.leases_expired;
    PayloadWriter rec;
    rec.u64(id);
    log(kFabLogLeaseExpired, rec.take());
    // The silent holder keeps its busy mark with its transport: it gets no
    // further grants until it speaks again or its connection dies.
  }
}

void LeaseCore::release_worker(int worker_id) {
  ++report_.workers_died;
  PayloadWriter rec;
  rec.u32(static_cast<std::uint32_t>(worker_id));
  log(kFabLogWorkerDead, rec.take());
  // Death is definitive: the lease re-queues immediately, no backoff.
  for (const std::uint64_t id : table_.release_worker(worker_id)) {
    PayloadWriter req;
    req.u64(id);
    log(kFabLogLeaseExpired, req.take());
  }
}

void LeaseCore::log_merged(std::uint64_t tasks, std::uint64_t duplicates) {
  PayloadWriter rec;
  rec.u64(tasks);
  rec.u64(duplicates);
  log(kFabLogMerged, rec.take());
}

}  // namespace lpsram::fabric
