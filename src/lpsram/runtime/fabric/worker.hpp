// Fabric worker: the lease-executing side of the coordinator/worker pair.
//
// A worker owns one shard journal (a plain Campaign file) and runs the grant
// loop: wait for a kMsgGrant, execute the granted task indices, commit each
// result to the shard journal *before* reporting it, then kMsgLeaseDone. The
// commit-before-send order is the fabric's core durability invariant — any
// result the coordinator has seen is already fsync'd in a shard journal, so
// a crash of either process never loses an acknowledged task.
//
// Heartbeats (kMsgHeartbeat) are sent between tasks, never concurrently with
// one: a worker stuck inside a solve goes silent and its lease expires. The
// configured lease timeout must therefore exceed the slowest single task —
// that is the deal that lets the coordinator treat silence as death.
//
// run_fabric_worker is deliberately runnable in-process (tests drive it
// against a loopback channel) as well as inside a fork()ed child (the normal
// fabric deployment, see fabric.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "lpsram/runtime/fabric/wire.hpp"

namespace lpsram::fabric {

// Computes the stable task key for a sweep index (same key the single-process
// campaign would use, so merged journals replay interchangeably).
using FabricKeyFn = std::function<std::uint64_t(std::uint64_t index)>;

// Executes one task and returns its journal payload — byte-identical to what
// the single-process campaign codec would record for the same index. `slot`
// is the executor worker slot in [0, threads) for per-slot scratch state.
using FabricTaskFn =
    std::function<std::vector<std::uint8_t>(std::uint64_t index, int slot)>;

// Deterministic fault injection for the kill matrices. All hooks are
// one-shot and disabled at 0.
struct WorkerChaos {
  // _Exit(9) immediately after sending the Nth TaskDone of this worker's
  // life — death exactly at a lease boundary, with the Nth result already
  // committed and acknowledged.
  std::uint64_t exit_after_results = 0;
  // Before executing the (N+1)th task, go silent for `wedge_s` seconds
  // (no heartbeat): the straggler whose lease must expire and be re-issued
  // elsewhere while this worker eventually finishes and double-commits.
  std::uint64_t wedge_after_results = 0;
  double wedge_s = 0.0;
  // Arm ScopedJournalCrash(N) on this process: the Nth shard-journal append
  // tears mid-record and the worker dies — the torn tail must be truncated
  // away on resume, never merged.
  std::uint64_t crash_shard_at_append = 0;
};

struct WorkerOptions {
  int worker_id = 0;
  std::string shard_journal;     // this worker's Campaign file
  double heartbeat_interval_s = 0.5;
  std::uint64_t salt = 0;        // sweep manifest, must match coordinator
  std::uint64_t fingerprint = 0;
  int threads = 1;               // executor threads *inside* this worker
  WorkerChaos chaos;
};

struct WorkerReport {
  std::uint64_t leases_served = 0;
  std::uint64_t tasks_executed = 0;
  // Granted tasks whose key was already in the shard journal (a lease
  // re-granted to its original worker): re-acknowledged without re-running.
  std::uint64_t tasks_skipped = 0;
};

// Runs the grant loop until kMsgShutdown or channel EOF (coordinator death).
// Throws JournalCrash when shard-append chaos fires; other lpsram::Error
// conditions propagate too — the fork wrapper turns any escape into a
// nonzero _Exit.
WorkerReport run_fabric_worker(MessageChannel& channel,
                               const WorkerOptions& options,
                               const FabricKeyFn& key_of,
                               const FabricTaskFn& task_fn);

}  // namespace lpsram::fabric
