#include "lpsram/runtime/fabric/worker.hpp"

#include <chrono>
#include <cstdlib>
#include <memory>
#include <thread>

#include "lpsram/runtime/campaign.hpp"
#include "lpsram/runtime/parallel.hpp"
#include "lpsram/util/error.hpp"

namespace lpsram::fabric {

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<std::uint8_t> hello_payload(int worker_id) {
  PayloadWriter w;
  w.u32(static_cast<std::uint32_t>(worker_id));
  return w.take();
}

}  // namespace

WorkerReport run_fabric_worker(MessageChannel& channel,
                               const WorkerOptions& options,
                               const FabricKeyFn& key_of,
                               const FabricTaskFn& task_fn) {
  Campaign campaign(options.shard_journal);
  campaign.bind_sweep(options.salt, options.fingerprint);

  std::unique_ptr<ScopedJournalCrash> shard_crash;
  if (options.chaos.crash_shard_at_append > 0)
    shard_crash = std::make_unique<ScopedJournalCrash>(
        options.chaos.crash_shard_at_append);

  WorkerReport report;
  std::uint64_t results_sent = 0;
  bool wedge_pending = options.chaos.wedge_after_results > 0;

  if (!channel.send(kMsgHello, hello_payload(options.worker_id)))
    return report;  // coordinator already gone

  SweepExecutorOptions exec_options;
  exec_options.threads = options.threads > 0 ? options.threads : 1;
  SweepExecutor executor(exec_options);

  WireMessage msg;
  for (;;) {
    const RecvStatus status = channel.recv(&msg, /*timeout_ms=*/-1);
    if (status != RecvStatus::Ok) return report;  // EOF: coordinator died
    if (msg.type == kMsgShutdown) return report;
    if (msg.type != kMsgGrant)
      throw Error("fabric: worker received unexpected message type " +
                  std::to_string(int(msg.type)));

    PayloadReader grant(msg.payload);
    const std::uint64_t lease_id = grant.u64();
    const std::uint32_t n = grant.u32();
    std::vector<std::uint64_t> indices(n);
    for (std::uint32_t i = 0; i < n; ++i) indices[i] = grant.u64();
    ++report.leases_served;

    // With an intra-worker pool, execute the whole grant batch up front so
    // solves overlap; commits and acknowledgements stay sequential below
    // either way. (threads == 1 computes lazily in the commit loop instead,
    // so heartbeats interleave with long solves.)
    std::vector<std::vector<std::uint8_t>> computed(indices.size());
    std::vector<bool> precomputed(indices.size(), false);
    if (executor.threads() > 1 && indices.size() > 1) {
      executor.run(indices.size(), [&](std::size_t j, int slot) {
        if (campaign.find_result(key_of(indices[j])) != nullptr) return;
        computed[j] = task_fn(indices[j], slot);
        precomputed[j] = true;
      });
    }

    double last_heartbeat = now_s();
    for (std::size_t j = 0; j < indices.size(); ++j) {
      if (wedge_pending && results_sent == options.chaos.wedge_after_results) {
        wedge_pending = false;
        std::this_thread::sleep_for(
            std::chrono::duration<double>(options.chaos.wedge_s));
      }

      const std::uint64_t index = indices[j];
      const std::uint64_t key = key_of(index);
      const std::vector<std::uint8_t>* existing = campaign.find_result(key);
      std::vector<std::uint8_t> payload;
      if (existing != nullptr) {
        payload = *existing;
        ++report.tasks_skipped;
      } else {
        if (!precomputed[j]) computed[j] = task_fn(index, 0);
        payload = std::move(computed[j]);
        // Commit point: fsync'd into the shard journal BEFORE the
        // coordinator hears about it.
        campaign.record_result(key, payload);
        ++report.tasks_executed;
      }

      PayloadWriter done;
      done.u64(lease_id);
      done.u64(index);
      done.u64(key);
      std::vector<std::uint8_t> done_bytes = done.take();
      done_bytes.insert(done_bytes.end(), payload.begin(), payload.end());
      if (!channel.send(kMsgTaskDone, done_bytes)) return report;
      ++results_sent;

      if (options.chaos.exit_after_results > 0 &&
          results_sent == options.chaos.exit_after_results)
        std::_Exit(9);

      const double t = now_s();
      if (t - last_heartbeat >= options.heartbeat_interval_s) {
        last_heartbeat = t;
        PayloadWriter hb;
        hb.u32(static_cast<std::uint32_t>(options.worker_id));
        hb.u64(lease_id);
        hb.u64(results_sent);
        if (!channel.send(kMsgHeartbeat, hb.take())) return report;
      }
    }

    PayloadWriter fin;
    fin.u64(lease_id);
    if (!channel.send(kMsgLeaseDone, fin.take())) return report;
  }
}

}  // namespace lpsram::fabric
