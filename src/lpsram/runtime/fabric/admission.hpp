// Bounded admission queue for the campaign daemon (examples/campaign_fabricd).
//
// The daemon accepts sweep jobs from a producer (CLI, scripted load) and
// feeds them to the fabric one at a time. The queue is the back-pressure
// boundary: when full, try_submit refuses with Shed instead of buffering
// unboundedly — load-shedding at admission keeps the daemon's memory and
// latency bounded no matter how fast jobs arrive. close() starts a graceful
// drain: queued jobs still pop, new submissions get Closed.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>

namespace lpsram::fabric {

// One queued unit of daemon work: a named sweep of `tasks` indices whose
// payloads are derived from `seed` (the demo daemon runs synthetic sweeps;
// a real deployment would carry driver configuration here).
struct FabricJob {
  std::string name;
  std::uint64_t tasks = 0;
  std::uint64_t seed = 0;
};

enum class Admission { Accepted, Shed, Closed };

class AdmissionQueue {
 public:
  explicit AdmissionQueue(std::size_t capacity) : capacity_(capacity) {}

  // Non-blocking: enqueue or refuse. Shed when full, Closed after close().
  Admission try_submit(FabricJob job);

  // Blocks up to `timeout_s` for a job. False on timeout, and false
  // immediately once the queue is closed *and* empty (the drain is done).
  bool pop_for(FabricJob* job, double timeout_s);

  // Begins the drain: no new admissions, queued jobs still served.
  void close();

  bool closed() const;
  std::size_t depth() const;
  std::uint64_t accepted() const;
  std::uint64_t shed() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<FabricJob> queue_;
  bool closed_ = false;
  std::uint64_t accepted_ = 0;
  std::uint64_t shed_ = 0;
};

}  // namespace lpsram::fabric
