#include "lpsram/runtime/chaos.hpp"

#include <chrono>
#include <limits>
#include <thread>

namespace lpsram {
namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double uniform01(std::uint64_t hash) {
  return static_cast<double>(hash >> 11) * 0x1.0p-53;
}

}  // namespace

std::string chaos_fault_name(ChaosFault fault) {
  switch (fault) {
    case ChaosFault::NanResidual: return "nan-residual";
    case ChaosFault::SingularJacobian: return "singular-jacobian";
    case ChaosFault::IterationCap: return "iteration-cap";
    case ChaosFault::Stall: return "stall";
  }
  return "?";
}

ChaosEngine::ChaosEngine(ChaosPolicy policy)
    : policy_(std::move(policy)), injection_counts_(4, 0) {}

ChaosEngine::ChaosEngine(ChaosPolicy policy, ChaosEngine* parent)
    : policy_(std::move(policy)), parent_(parent), injection_counts_(4, 0) {}

ChaosEngine::~ChaosEngine() {
  if (parent_) parent_->absorb(*this);
}

std::unique_ptr<SolverObserver> ChaosEngine::fork_for_task(
    std::uint64_t task_key) {
  ChaosPolicy child = policy_;
  child.seed = splitmix64(policy_.seed ^ task_key);
  return std::unique_ptr<SolverObserver>(new ChaosEngine(std::move(child), this));
}

void ChaosEngine::absorb(const ChaosEngine& child) {
  const std::lock_guard<std::mutex> lock(merge_mutex_);
  solves_seen_ += child.solves_seen_;
  solves_sabotaged_ += child.solves_sabotaged_;
  first_attempts_seen_ += child.first_attempts_seen_;
  first_attempts_sabotaged_ += child.first_attempts_sabotaged_;
  for (std::size_t i = 0; i < injection_counts_.size(); ++i)
    injection_counts_[i] += child.injection_counts_[i];
}

std::uint64_t ChaosEngine::injections(ChaosFault fault) const {
  return injection_counts_[static_cast<std::size_t>(fault)];
}

void ChaosEngine::on_ladder_attempt(int attempt, const std::string&) {
  ladder_attempt_ = attempt;
}

void ChaosEngine::on_solve_begin() {
  const std::uint64_t index = solves_seen_++;
  const bool first_attempt = ladder_attempt_ == 0;
  if (first_attempt) ++first_attempts_seen_;
  sabotage_current_ = false;
  if (policy_.faults.empty()) return;

  const double rate = first_attempt ? policy_.first_attempt_failure_rate
                                    : policy_.retry_failure_rate;
  if (rate <= 0.0) return;

  const std::uint64_t h = splitmix64(policy_.seed ^ (index * 0x9e37ULL + 1));
  if (uniform01(h) >= rate) return;

  sabotage_current_ = true;
  ++solves_sabotaged_;
  if (first_attempt) ++first_attempts_sabotaged_;
  current_fault_ =
      policy_.faults[splitmix64(h) % policy_.faults.size()];
}

void ChaosEngine::on_newton_iteration(NewtonEvent& event) {
  if (!sabotage_current_) return;
  ++injection_counts_[static_cast<std::size_t>(current_fault_)];

  switch (current_fault_) {
    case ChaosFault::NanResidual:
      for (double& r : *event.residual)
        r = std::numeric_limits<double>::quiet_NaN();
      break;

    case ChaosFault::SingularJacobian: {
      // Zero an entire row through the representation-independent view:
      // LU pivoting (dense or sparse) finds no usable pivot and throws,
      // exactly like a genuinely singular operating point.
      JacobianView& j = *event.jacobian;
      const std::size_t row =
          splitmix64(policy_.seed ^ static_cast<std::uint64_t>(event.iteration)) %
          j.dimension();
      j.zero_row(row);
      break;
    }

    case ChaosFault::IterationCap:
      // Keep the residual large and finite: Newton keeps stepping without
      // converging until it breaches max_iterations.
      for (double& r : *event.residual) r = 1.0;
      break;

    case ChaosFault::Stall:
      if (policy_.stall_seconds > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(policy_.stall_seconds));
      }
      break;
  }
}

}  // namespace lpsram
