#include "lpsram/runtime/solve_outcome.hpp"

#include <cstdio>

namespace lpsram {

std::string strategy_name(SolveStrategy strategy) {
  switch (strategy) {
    case SolveStrategy::WarmStart: return "warm-start";
    case SolveStrategy::ColdStart: return "cold-start";
    case SolveStrategy::DenseGmin: return "dense-gmin";
    case SolveStrategy::RelaxedPolish: return "relaxed-polish";
    case SolveStrategy::PerturbedGuess: return "perturbed-guess";
  }
  return "?";
}

std::string status_name(SolveStatus status) {
  switch (status) {
    case SolveStatus::Converged: return "converged";
    case SolveStatus::Degraded: return "degraded";
    case SolveStatus::Failed: return "failed";
  }
  return "?";
}

std::string SolveOutcome::summary() const {
  char buf[192];
  if (status == SolveStatus::Failed) {
    std::snprintf(buf, sizeof(buf),
                  "failed after %d attempts (%.1f ms)%s: %s", attempts,
                  elapsed_s * 1e3, timed_out ? " [deadline]" : "",
                  error.c_str());
  } else {
    std::snprintf(buf, sizeof(buf),
                  "%s via %s: %d iters, %.2e A residual at '%s', %.1f ms",
                  status_name(status).c_str(), strategy_name(strategy).c_str(),
                  iterations, worst_residual, worst_node.c_str(),
                  elapsed_s * 1e3);
  }
  return buf;
}

void SolveTelemetry::record(const SolveOutcome& outcome) {
  ++solves;
  if (outcome.ok()) {
    if (outcome.strategy == SolveStrategy::WarmStart && outcome.attempts == 1) {
      ++warm_hits;
    } else if (!outcome.history.empty() &&
               outcome.history.front().strategy == SolveStrategy::WarmStart &&
               !outcome.history.front().converged) {
      ++fallbacks;
    }
    if (outcome.status == SolveStatus::Degraded) ++degraded;
  } else {
    ++failures;
    if (outcome.timed_out) ++timeouts;
  }
  last = outcome;
}

}  // namespace lpsram
