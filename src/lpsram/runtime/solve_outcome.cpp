#include "lpsram/runtime/solve_outcome.hpp"

#include <cstdio>

namespace lpsram {

std::string strategy_name(SolveStrategy strategy) {
  switch (strategy) {
    case SolveStrategy::WarmStart: return "warm-start";
    case SolveStrategy::ColdStart: return "cold-start";
    case SolveStrategy::DenseGmin: return "dense-gmin";
    case SolveStrategy::RelaxedPolish: return "relaxed-polish";
    case SolveStrategy::PerturbedGuess: return "perturbed-guess";
  }
  return "?";
}

std::string status_name(SolveStatus status) {
  switch (status) {
    case SolveStatus::Converged: return "converged";
    case SolveStatus::Degraded: return "degraded";
    case SolveStatus::Failed: return "failed";
  }
  return "?";
}

std::string SolveOutcome::summary() const {
  char buf[192];
  if (status == SolveStatus::Failed) {
    std::snprintf(buf, sizeof(buf),
                  "failed after %d attempts (%.1f ms)%s: %s", attempts,
                  elapsed_s * 1e3, timed_out ? " [deadline]" : "",
                  error.c_str());
  } else {
    std::snprintf(buf, sizeof(buf),
                  "%s via %s: %d iters, %.2e A residual at '%s', %.1f ms",
                  status_name(status).c_str(), strategy_name(strategy).c_str(),
                  iterations, worst_residual, worst_node.c_str(),
                  elapsed_s * 1e3);
  }
  return buf;
}

void SolveTelemetry::record(const SolveOutcome& outcome) {
  ++solves;
  if (outcome.ok()) {
    if (outcome.strategy == SolveStrategy::WarmStart && outcome.attempts == 1) {
      ++warm_hits;
    } else if (!outcome.history.empty() &&
               outcome.history.front().strategy == SolveStrategy::WarmStart &&
               !outcome.history.front().converged) {
      ++fallbacks;
    }
    if (outcome.status == SolveStatus::Degraded) ++degraded;
  } else {
    ++failures;
    if (outcome.timed_out || outcome.cancelled) ++timeouts;
    if (outcome.cancelled) ++cancels;
  }
  if (outcome.non_finite) ++non_finite;
  for (const AttemptRecord& attempt : outcome.history)
    ++rung_attempts[static_cast<std::size_t>(attempt.strategy)];
  last = outcome;
}

void SolveTelemetry::merge(const SolveTelemetry& other) {
  solves += other.solves;
  warm_hits += other.warm_hits;
  fallbacks += other.fallbacks;
  degraded += other.degraded;
  failures += other.failures;
  timeouts += other.timeouts;
  cancels += other.cancels;
  non_finite += other.non_finite;
  for (std::size_t i = 0; i < rung_attempts.size(); ++i)
    rung_attempts[i] += other.rung_attempts[i];
  cache_hits += other.cache_hits;
  cache_misses += other.cache_misses;
  cache_stores += other.cache_stores;
  if (other.solves > 0) last = other.last;
}

SolveTelemetry telemetry_delta(const SolveTelemetry& before,
                               const SolveTelemetry& after) {
  SolveTelemetry delta;
  delta.solves = after.solves - before.solves;
  delta.warm_hits = after.warm_hits - before.warm_hits;
  delta.fallbacks = after.fallbacks - before.fallbacks;
  delta.degraded = after.degraded - before.degraded;
  delta.failures = after.failures - before.failures;
  delta.timeouts = after.timeouts - before.timeouts;
  delta.cancels = after.cancels - before.cancels;
  delta.non_finite = after.non_finite - before.non_finite;
  for (std::size_t i = 0; i < delta.rung_attempts.size(); ++i)
    delta.rung_attempts[i] = after.rung_attempts[i] - before.rung_attempts[i];
  delta.cache_hits = after.cache_hits - before.cache_hits;
  delta.cache_misses = after.cache_misses - before.cache_misses;
  delta.cache_stores = after.cache_stores - before.cache_stores;
  delta.last = after.last;
  return delta;
}

}  // namespace lpsram
