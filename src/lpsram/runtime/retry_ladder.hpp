// Resilient solve-execution layer: wraps DcSolver in a configurable retry
// ladder of escalating strategies, with per-attempt iteration budgets,
// wall-clock deadline enforcement and exponential backoff between
// escalations. Near-DRV operating points sit on the edge of bistability
// where Newton is most fragile; this layer turns "one ConvergenceError
// aborts the sweep" into a structured SolveOutcome the sweep drivers can
// quarantine and account for.
#pragma once

#include <functional>
#include <vector>

#include "lpsram/runtime/solve_outcome.hpp"
#include "lpsram/spice/netlist.hpp"

namespace lpsram {

struct RetryLadderOptions {
  // Escalation order. WarmStart rungs are skipped when the caller provides
  // no warm start.
  std::vector<SolveStrategy> ladder = {
      SolveStrategy::WarmStart, SolveStrategy::ColdStart,
      SolveStrategy::DenseGmin, SolveStrategy::RelaxedPolish,
      SolveStrategy::PerturbedGuess};

  // Per-attempt Newton iteration cap (0 = keep the DcOptions value).
  int iteration_budget = 0;

  // Wall-clock budget for the whole ladder [s]; 0 = no deadline. Enforced
  // between rungs and, via the solver's progress callback, inside every
  // Newton iteration — a stalled solve is cut off mid-attempt.
  double deadline_s = 0.0;

  // Exponential backoff slept before escalation k (k >= 1):
  // min(backoff_base_s * backoff_factor^(k-1), backoff_cap_s). The default
  // base of 0 disables sleeping — in-process numerical retries rarely
  // benefit from waiting, but sweep drivers pacing a shared backend can
  // turn it on.
  double backoff_base_s = 0.0;
  double backoff_factor = 2.0;
  double backoff_cap_s = 0.1;

  // RelaxedPolish: multiply v/residual tolerances by this for the relaxed
  // pass; a tight warm-started polish follows. If only the relaxed pass
  // converges the outcome is Degraded (usable, flagged).
  double relax_factor = 1e4;

  // PerturbedGuess: number of deterministic randomized guesses and the
  // perturbation amplitude applied to node voltages [V].
  int perturb_attempts = 3;
  double perturb_magnitude = 0.05;
  std::uint64_t seed = 0x5eedf00dULL;

  // Injectable monotonic clock [s] and backoff sleeper — tests and the
  // chaos harness substitute fakes so deadline paths are deterministic.
  std::function<double()> clock;          // default: steady_clock
  std::function<void(double)> sleeper;    // default: this_thread::sleep_for

  // Cooperative cancellation: checked between rungs AND propagated into
  // every DcSolver/TransientSolver attempt, where the Newton loops poll it
  // per iteration. A trip surfaces as SolveTimeout with
  // SolveFailureInfo::cancelled set; the point is quarantined, not lost.
  // Non-owning; must outlive the solve.
  const CancelToken* cancel = nullptr;
};

class ResilientDcSolver {
 public:
  ResilientDcSolver(const Netlist& netlist, double temp_c,
                    DcOptions dc_options = {}, RetryLadderOptions options = {});

  // Runs the ladder; never throws for convergence trouble — inspect
  // outcome.status. (InvalidArgument still propagates: a malformed warm
  // start is a programming error, not numerical fragility.)
  SolveOutcome solve(const std::vector<double>* warm_start = nullptr) const;

  // Legacy-compatible wrapper: returns the DcResult or throws
  // RetryExhausted / SolveTimeout with full diagnostic context.
  DcResult solve_or_throw(const std::vector<double>* warm_start = nullptr) const;

  // Builds the typed error for a failed outcome and throws it.
  [[noreturn]] void throw_outcome(const SolveOutcome& outcome) const;

  const RetryLadderOptions& options() const noexcept { return options_; }

 private:
  double now() const;
  void sleep_backoff(double seconds) const;

  // One ladder rung. Fills `record`; returns true when `outcome` is final.
  bool run_strategy(SolveStrategy strategy,
                    const std::vector<double>* warm_start,
                    AttemptRecord& record, SolveOutcome& outcome) const;

  void finish_success(SolveOutcome& outcome, SolveStrategy strategy,
                      DcResult result) const;

  const Netlist& netlist_;
  double temp_c_;
  DcOptions dc_options_;
  RetryLadderOptions options_;
  mutable double start_time_ = 0.0;  // ladder start, for deadline math
};

}  // namespace lpsram
