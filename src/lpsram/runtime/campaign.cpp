#include "lpsram/runtime/campaign.hpp"

#include <algorithm>
#include <filesystem>

#include "lpsram/util/error.hpp"

namespace lpsram {
namespace {

// Manifest payload: [u64 salt][u64 fingerprint].
// TaskDone payload: [u64 task_key][driver bytes...].
// OpPoint payload:  [u64 circuit][u64 task][u32 defect][f64 r][vec x].

std::vector<std::uint8_t> encode_manifest(std::uint64_t salt,
                                          std::uint64_t fingerprint) {
  PayloadWriter out;
  out.u64(salt);
  out.u64(fingerprint);
  return out.take();
}

}  // namespace

Campaign::Campaign(std::string path) {
  const JournalReplay replay = replay_journal(path);
  torn_tail_ = replay.torn_tail;

  for (const JournalRecord& record : replay.records) {
    PayloadReader in(record.payload);
    switch (record.type) {
      case kRecordManifest: {
        const std::uint64_t salt = in.u64();
        manifests_[salt] = in.u64();
        break;
      }
      case kRecordTaskDone: {
        const std::uint64_t key = in.u64();
        std::vector<std::uint8_t> payload(record.payload.begin() + 8,
                                          record.payload.end());
        results_[key] = std::move(payload);
        break;
      }
      case kRecordOpPoint: {
        OpPoint op;
        op.key.circuit = in.u64();
        op.key.task = in.u64();
        op.key.defect = static_cast<std::int32_t>(in.u32());
        op.r = in.f64();
        op.x = in.vec_f64();
        replayed_ops_[op.key.task].push_back(std::move(op));
        break;
      }
      default:
        // Unknown record types are forward-compatibility, not corruption:
        // the checksum proved the bytes intact; a newer writer just knows
        // record kinds this reader does not. Skip.
        break;
    }
  }

  // Drop operating points whose task never completed (a crash landed between
  // the op-point records and the TaskDone record). Seeding them would change
  // the re-run task's solve sequence and break resume determinism.
  for (auto it = replayed_ops_.begin(); it != replayed_ops_.end();) {
    it = results_.count(it->first) ? std::next(it) : replayed_ops_.erase(it);
  }

  writer_.open(path, replay.valid_bytes);
}

Campaign::~Campaign() = default;

void Campaign::bind_sweep(std::uint64_t salt, std::uint64_t fingerprint) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = manifests_.find(salt);
  if (it != manifests_.end()) {
    if (it->second != fingerprint)
      throw InvalidArgument(
          "Campaign: journal '" + writer_.path() +
          "' was recorded with a different sweep configuration (manifest "
          "fingerprint mismatch) — resume with the original options or use a "
          "fresh journal");
    return;
  }
  manifests_[salt] = fingerprint;
  writer_.append(kRecordManifest, encode_manifest(salt, fingerprint));
}

const std::vector<std::uint8_t>* Campaign::find_result(
    std::uint64_t task_key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = results_.find(task_key);
  return it == results_.end() ? nullptr : &it->second;
}

void Campaign::record_result(std::uint64_t task_key,
                             const std::vector<std::uint8_t>& payload) {
  const std::lock_guard<std::mutex> lock(mutex_);

  // Operating points first, TaskDone last: replay treats the TaskDone
  // record as the commit point, so a crash anywhere in this sequence just
  // re-runs the task.
  const auto ops = pending_ops_.find(task_key);
  if (ops != pending_ops_.end()) {
    for (const OpPoint& op : ops->second) {
      PayloadWriter out;
      out.u64(op.key.circuit);
      out.u64(op.key.task);
      out.u32(static_cast<std::uint32_t>(op.key.defect));
      out.f64(op.r);
      out.vec_f64(op.x);
      writer_.append(kRecordOpPoint, out.bytes());
    }
  }

  PayloadWriter done;
  done.u64(task_key);
  std::vector<std::uint8_t> bytes = done.take();
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  writer_.append(kRecordTaskDone, bytes);

  results_[task_key] = payload;
  if (ops != pending_ops_.end()) {
    replayed_ops_[task_key] = std::move(ops->second);
    pending_ops_.erase(ops);
  }
}

void Campaign::seed_cache(SolveCache& cache) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [task, ops] : replayed_ops_)
    for (const OpPoint& op : ops) cache.store(op.key, op.r, op.x);
}

void Campaign::note_op_point(const SolveCacheKey& key, double r,
                             const std::vector<double>& x) {
  const std::lock_guard<std::mutex> lock(mutex_);
  pending_ops_[key.task].push_back(OpPoint{key, r, x});
}

void Campaign::compact() {
  const std::lock_guard<std::mutex> lock(mutex_);

  std::vector<JournalRecord> records;
  std::vector<std::uint64_t> salts;
  for (const auto& [salt, fp] : manifests_) salts.push_back(salt);
  std::sort(salts.begin(), salts.end());
  for (const std::uint64_t salt : salts)
    records.push_back(
        JournalRecord{kRecordManifest, encode_manifest(salt, manifests_.at(salt))});

  std::vector<std::uint64_t> keys;
  for (const auto& [key, payload] : results_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  for (const std::uint64_t key : keys) {
    const auto ops = replayed_ops_.find(key);
    if (ops != replayed_ops_.end()) {
      for (const OpPoint& op : ops->second) {
        PayloadWriter out;
        out.u64(op.key.circuit);
        out.u64(op.key.task);
        out.u32(static_cast<std::uint32_t>(op.key.defect));
        out.f64(op.r);
        out.vec_f64(op.x);
        records.push_back(JournalRecord{kRecordOpPoint, out.take()});
      }
    }
    PayloadWriter done;
    done.u64(key);
    std::vector<std::uint8_t> bytes = done.take();
    const std::vector<std::uint8_t>& payload = results_.at(key);
    bytes.insert(bytes.end(), payload.begin(), payload.end());
    records.push_back(JournalRecord{kRecordTaskDone, std::move(bytes)});
  }

  writer_.compact(records);
}

std::size_t Campaign::completed_tasks() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return results_.size();
}

std::vector<std::uint64_t> Campaign::task_keys() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::uint64_t> keys;
  keys.reserve(results_.size());
  for (const auto& [key, payload] : results_) keys.push_back(key);
  return keys;
}

// --- Shard snapshots and journal merge --------------------------------------

ShardSnapshot read_campaign_snapshot(const std::string& path) {
  const JournalReplay replay = replay_journal(path);
  ShardSnapshot snapshot;
  snapshot.torn_tail = replay.torn_tail;

  // Mirror of the Campaign constructor's replay, minus the writer: op points
  // buffer until their task's TaskDone commit record arrives; points whose
  // commit was lost to a torn tail are dropped with the task.
  std::unordered_map<std::uint64_t, std::vector<ShardOpPoint>> pending_ops;
  for (const JournalRecord& record : replay.records) {
    PayloadReader in(record.payload);
    switch (record.type) {
      case kRecordManifest: {
        const std::uint64_t salt = in.u64();
        snapshot.manifests[salt] = in.u64();
        break;
      }
      case kRecordTaskDone: {
        const std::uint64_t key = in.u64();
        ShardTask& task = snapshot.tasks[key];
        task.payload.assign(record.payload.begin() + 8, record.payload.end());
        const auto ops = pending_ops.find(key);
        if (ops != pending_ops.end()) {
          task.ops = std::move(ops->second);
          pending_ops.erase(ops);
        }
        break;
      }
      case kRecordOpPoint: {
        ShardOpPoint op;
        op.key.circuit = in.u64();
        op.key.task = in.u64();
        op.key.defect = static_cast<std::int32_t>(in.u32());
        op.r = in.f64();
        op.x = in.vec_f64();
        pending_ops[op.key.task].push_back(std::move(op));
        break;
      }
      default:
        break;  // forward compatibility, as in Campaign::Campaign
    }
  }
  return snapshot;
}

std::size_t merge_shard_journals(
    const std::string& out_path, const std::vector<std::string>& shard_paths,
    const std::vector<std::uint64_t>& keys_in_index_order,
    std::uint64_t* duplicates) {
  std::unordered_map<std::uint64_t, std::uint64_t> manifests;
  std::unordered_map<std::uint64_t, const ShardTask*> winners;
  std::uint64_t extra_commits = 0;

  std::vector<ShardSnapshot> snapshots;
  snapshots.reserve(shard_paths.size());
  for (const std::string& shard : shard_paths)
    snapshots.push_back(read_campaign_snapshot(shard));

  for (std::size_t s = 0; s < snapshots.size(); ++s) {
    for (const auto& [salt, fp] : snapshots[s].manifests) {
      const auto it = manifests.find(salt);
      if (it == manifests.end()) {
        manifests[salt] = fp;
      } else if (it->second != fp) {
        throw InvalidArgument("merge: shard '" + shard_paths[s] +
                              "' carries a different manifest fingerprint — "
                              "shards from different sweep configurations "
                              "cannot be merged");
      }
    }
    for (const auto& [key, task] : snapshots[s].tasks) {
      const auto it = winners.find(key);
      if (it == winners.end()) {
        winners[key] = &task;
        continue;
      }
      // Straggler re-issue: a later shard recomputed the task. Determinism
      // demands the payload match bit for bit; first shard wins.
      ++extra_commits;
      if (it->second->payload != task.payload)
        throw JournalCorrupt(
            "merge: task key " + std::to_string(key) + " in shard '" +
            shard_paths[s] +
            "' disagrees with an earlier shard's payload — duplicate commits "
            "must be bit-identical");
    }
  }

  std::vector<JournalRecord> records;
  {
    std::vector<std::uint64_t> salts;
    for (const auto& [salt, fp] : manifests) salts.push_back(salt);
    std::sort(salts.begin(), salts.end());
    for (const std::uint64_t salt : salts)
      records.push_back(
          JournalRecord{kRecordManifest, encode_manifest(salt, manifests.at(salt))});
  }
  for (const std::uint64_t key : keys_in_index_order) {
    const auto it = winners.find(key);
    if (it == winners.end())
      throw InvalidArgument("merge: task key " + std::to_string(key) +
                            " is in no shard journal — the campaign is not "
                            "complete, merge refused");
    for (const ShardOpPoint& op : it->second->ops) {
      PayloadWriter out;
      out.u64(op.key.circuit);
      out.u64(op.key.task);
      out.u32(static_cast<std::uint32_t>(op.key.defect));
      out.f64(op.r);
      out.vec_f64(op.x);
      records.push_back(JournalRecord{kRecordOpPoint, out.take()});
    }
    PayloadWriter done;
    done.u64(key);
    std::vector<std::uint8_t> bytes = done.take();
    bytes.insert(bytes.end(), it->second->payload.begin(),
                 it->second->payload.end());
    records.push_back(JournalRecord{kRecordTaskDone, std::move(bytes)});
  }

  // Atomic publication: the merged journal appears all at once or not at
  // all, and the rename is made durable by the directory fsync.
  const std::string staging = out_path + ".merging";
  {
    JournalWriter writer;
    writer.open(staging, 0);
    for (const JournalRecord& record : records)
      writer.append(record.type, record.payload);
  }
  std::error_code ec;
  std::filesystem::rename(staging, out_path, ec);
  if (ec)
    throw JournalCorrupt("merge: rename of '" + staging + "' failed: " +
                         ec.message());
  fsync_parent_dir(out_path);

  if (duplicates) *duplicates = extra_commits;
  return keys_in_index_order.size();
}

// --- run_campaign ----------------------------------------------------------

namespace {

// Detaches the cache's store listener even if the sweep throws (including
// an injected JournalCrash), so a later sweep never journals into a dead
// campaign.
class ListenerGuard {
 public:
  ListenerGuard(Campaign* campaign, SolveCache* cache) : cache_(cache) {
    if (cache_ && campaign) {
      cache_->set_store_listener(
          [campaign](const SolveCacheKey& key, double r,
                     const std::vector<double>& x) {
            campaign->note_op_point(key, r, x);
          });
      attached_ = true;
    }
  }
  ~ListenerGuard() {
    if (attached_) cache_->set_store_listener(nullptr);
  }

 private:
  SolveCache* cache_;
  bool attached_ = false;
};

}  // namespace

std::size_t run_campaign(
    SweepExecutor& executor, Campaign* campaign, SolveCache* cache,
    std::size_t count, const std::function<std::uint64_t(std::size_t)>& key_of,
    const std::function<void(std::size_t index, int worker)>& body,
    const CampaignTaskCodec& codec) {
  if (!campaign) {
    executor.run(count, body);
    return 0;
  }

  // Replay pass: index order, calling thread — the same order the reduction
  // will read the slots in.
  std::vector<std::size_t> pending;
  std::size_t replayed = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (const std::vector<std::uint8_t>* payload =
            campaign->find_result(key_of(i))) {
      PayloadReader reader(*payload);
      codec.decode(i, reader);
      ++replayed;
    } else {
      pending.push_back(i);
    }
  }

  // Warm starts for surviving tasks come back before any new store can be
  // confused with a replayed one: seed first, then attach the listener.
  if (cache) campaign->seed_cache(*cache);
  const ListenerGuard guard(campaign, cache);

  executor.run(pending.size(), [&](std::size_t j, int worker) {
    const std::size_t index = pending[j];
    body(index, worker);
    campaign->record_result(key_of(index), codec.encode(index));
  });
  return replayed;
}

// --- Shared slot-payload helpers -------------------------------------------

void encode_quarantine(PayloadWriter& out, const QuarantinedPoint& point) {
  out.str(point.context);
  out.str(point.error_type);
  out.str(point.reason);
  out.u8(point.non_finite ? 1 : 0);
}

QuarantinedPoint decode_quarantine(PayloadReader& in) {
  QuarantinedPoint point;
  point.context = in.str();
  point.error_type = in.str();
  point.reason = in.str();
  point.non_finite = in.u8() != 0;
  return point;
}

void encode_telemetry(PayloadWriter& out, const SolveTelemetry& t) {
  out.u64(t.solves);
  out.u64(t.warm_hits);
  out.u64(t.fallbacks);
  out.u64(t.degraded);
  out.u64(t.failures);
  out.u64(t.timeouts);
  out.u64(t.cancels);
  out.u64(t.non_finite);
  for (const std::uint64_t rung : t.rung_attempts) out.u64(rung);
  out.u64(t.cache_hits);
  out.u64(t.cache_misses);
  out.u64(t.cache_stores);
}

SolveTelemetry decode_telemetry(PayloadReader& in) {
  // Deterministic counters only: the `last` outcome snapshot and all
  // timings are excluded from the resume determinism contract.
  SolveTelemetry t;
  t.solves = in.u64();
  t.warm_hits = in.u64();
  t.fallbacks = in.u64();
  t.degraded = in.u64();
  t.failures = in.u64();
  t.timeouts = in.u64();
  t.cancels = in.u64();
  t.non_finite = in.u64();
  for (std::uint64_t& rung : t.rung_attempts) rung = in.u64();
  t.cache_hits = in.u64();
  t.cache_misses = in.u64();
  t.cache_stores = in.u64();
  return t;
}

}  // namespace lpsram
