// Crash-resumable campaign layer over SweepExecutor + the journal.
//
// A Campaign owns one journal file and exposes three things to a sweep
// driver:
//   * bind_sweep(salt, fingerprint) — registers the driver's configuration
//     under its task-key salt; resuming against a journal recorded with a
//     different configuration (different PVT grid, tolerances, ...) is
//     refused instead of silently mixing results.
//   * run_campaign(...) — the executor wrapper: replays finished tasks into
//     their result slots from the journal (in index order, on the calling
//     thread), runs only the pending indices through the executor, and
//     journals each task's encoded slot as it finishes.
//   * seed_cache(...) / operating-point journaling — completed tasks'
//     DC operating points are journaled with them, and on resume they are
//     seeded back into the SolveCache so surviving tasks keep their warm
//     starts.
//
// Resume determinism contract: because SolveCache keys are task-scoped and
// operating points are only journaled together with their task's completion
// record, a resumed run re-executes pending tasks with exactly the solve
// sequence they would have seen in the uninterrupted run — final tables and
// deterministic telemetry counters are bit-identical. (Timings, and the
// `last` outcome snapshot, are excluded from the contract; replayed tasks
// report zero wall-clock.)
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "lpsram/runtime/journal.hpp"
#include "lpsram/runtime/parallel.hpp"
#include "lpsram/runtime/quarantine.hpp"

namespace lpsram {

// Journal record types used by the campaign layer.
inline constexpr std::uint8_t kRecordManifest = 1;   // salt + config fingerprint
inline constexpr std::uint8_t kRecordTaskDone = 2;   // task key + driver payload
inline constexpr std::uint8_t kRecordOpPoint = 3;    // cached operating point

class Campaign {
 public:
  // Opens (creating if absent) and replays the journal at `path`. Throws
  // JournalCorrupt on interior damage; a torn tail is truncated and the
  // campaign resumes after the last intact record.
  explicit Campaign(std::string path);
  ~Campaign();

  Campaign(const Campaign&) = delete;
  Campaign& operator=(const Campaign&) = delete;

  // Registers a sweep's configuration fingerprint under its task-key salt.
  // Appends a manifest record the first time; on resume, throws
  // InvalidArgument if the journal was recorded with a different
  // fingerprint for the same salt.
  void bind_sweep(std::uint64_t salt, std::uint64_t fingerprint);

  // Journaled result payload for a task, or nullptr if the task has not
  // completed. The last record wins if a task was somehow journaled twice.
  const std::vector<std::uint8_t>* find_result(std::uint64_t task_key) const;

  // Appends a task's result: first any operating points buffered for it via
  // the store listener, then the TaskDone record. Thread-safe.
  void record_result(std::uint64_t task_key,
                     const std::vector<std::uint8_t>& payload);

  // Seeds replayed operating points into `cache`. Only points belonging to
  // a *completed* task are seeded (points whose TaskDone record was lost to
  // a torn tail are dropped — their task re-runs from scratch, preserving
  // determinism).
  void seed_cache(SolveCache& cache) const;

  // Buffers an operating point for journaling with its task's completion
  // record (wired to SolveCache::set_store_listener by run_campaign).
  void note_op_point(const SolveCacheKey& key, double r,
                     const std::vector<double>& x);

  // Rewrites the journal as a compact snapshot: manifests, then each
  // completed task's operating points followed by its TaskDone record, in
  // sorted task-key order. Atomic (write-temp + flush + rename).
  void compact();

  const std::string& path() const noexcept { return writer_.path(); }
  std::size_t completed_tasks() const;
  // Keys of every completed task, unordered. The fabric worker uses this to
  // skip tasks its shard journal already holds when a lease is re-granted.
  std::vector<std::uint64_t> task_keys() const;
  bool resumed_from_torn_tail() const noexcept { return torn_tail_; }

 private:
  struct OpPoint {
    SolveCacheKey key;
    double r = 0.0;
    std::vector<double> x;
  };

  mutable std::mutex mutex_;
  JournalWriter writer_;
  bool torn_tail_ = false;
  std::unordered_map<std::uint64_t, std::uint64_t> manifests_;  // salt -> fp
  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> results_;
  // Operating points replayed from the journal, grouped by task key.
  std::unordered_map<std::uint64_t, std::vector<OpPoint>> replayed_ops_;
  // Points buffered by note_op_point for tasks still in flight.
  std::unordered_map<std::uint64_t, std::vector<OpPoint>> pending_ops_;
};

// Encodes a finished slot i into its journal payload / decodes a journaled
// payload back into slot i. Both run on the coordinating thread except
// encode, which runs on the worker that finished the task.
struct CampaignTaskCodec {
  std::function<std::vector<std::uint8_t>(std::size_t index)> encode;
  std::function<void(std::size_t index, PayloadReader& reader)> decode;
};

// Runs an indexed sweep through `executor` with optional campaign
// durability. With campaign == nullptr this is exactly executor.run(). With
// a campaign: journaled tasks are decoded into their slots (index order,
// calling thread) and skipped; pending tasks run through the executor and
// are journaled via codec.encode as each finishes; `cache` (optional) is
// seeded from the journal and its store listener attached for the duration
// of the run. Returns the number of replayed (skipped) tasks.
std::size_t run_campaign(
    SweepExecutor& executor, Campaign* campaign, SolveCache* cache,
    std::size_t count, const std::function<std::uint64_t(std::size_t)>& key_of,
    const std::function<void(std::size_t index, int worker)>& body,
    const CampaignTaskCodec& codec);

// ---------------------------------------------------------------------------
// Shard snapshots and journal merge (the fabric's durability substrate).

// One operating point replayed from a shard journal, verbatim.
struct ShardOpPoint {
  SolveCacheKey key;
  double r = 0.0;
  std::vector<double> x;
};

// One completed task recovered from a shard journal: the journaled result
// payload plus the operating points committed with it.
struct ShardTask {
  std::vector<std::uint8_t> payload;
  std::vector<ShardOpPoint> ops;
};

// Read-only replay of a campaign/shard journal: no writer is opened, no torn
// tail is truncated on disk — safe to call on files another process may still
// be appending to (records past the snapshot are simply not seen yet).
struct ShardSnapshot {
  std::unordered_map<std::uint64_t, std::uint64_t> manifests;  // salt -> fp
  std::unordered_map<std::uint64_t, ShardTask> tasks;          // by task key
  bool torn_tail = false;
};
ShardSnapshot read_campaign_snapshot(const std::string& path);

// Merges worker shard journals into one campaign journal at `out_path`,
// records ordered by `keys_in_index_order` (the sweep's task-index order, so
// replaying the merged journal through run_campaign yields tables
// bit-identical to an uninterrupted single-process run). Rules:
//   * every key must be present in at least one shard — a gap throws
//     InvalidArgument (the coordinator only merges once all leases closed);
//   * a key present in several shards (straggler re-issue) must carry
//     byte-identical payloads in all of them — a mismatch throws
//     JournalCorrupt (it would mean task execution was nondeterministic);
//     the first shard in `shard_paths` order wins, and `*duplicates` (when
//     given) counts the extra commits;
//   * shard manifests must agree per salt across shards and are carried
//     into the merged journal.
// The merge is atomic: write-temp + rename + directory fsync, so a crash
// mid-merge never leaves a partial merged journal behind. Returns the number
// of tasks merged.
std::size_t merge_shard_journals(
    const std::string& out_path, const std::vector<std::string>& shard_paths,
    const std::vector<std::uint64_t>& keys_in_index_order,
    std::uint64_t* duplicates = nullptr);

// Shared slot-payload helpers so every driver serializes quarantine records
// and telemetry counters identically.
void encode_quarantine(PayloadWriter& out, const QuarantinedPoint& point);
QuarantinedPoint decode_quarantine(PayloadReader& in);
void encode_telemetry(PayloadWriter& out, const SolveTelemetry& t);
SolveTelemetry decode_telemetry(PayloadReader& in);

}  // namespace lpsram
