#include "lpsram/runtime/retry_ladder.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>

#include "lpsram/spice/hooks.hpp"
#include "lpsram/util/error.hpp"

namespace lpsram {
namespace {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// SplitMix64: deterministic, seed-driven perturbation stream.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double uniform_pm1(std::uint64_t hash) {
  // [-1, 1) from the top 53 bits.
  return 2.0 * (static_cast<double>(hash >> 11) * 0x1.0p-53) - 1.0;
}

}  // namespace

ResilientDcSolver::ResilientDcSolver(const Netlist& netlist, double temp_c,
                                     DcOptions dc_options,
                                     RetryLadderOptions options)
    : netlist_(netlist),
      temp_c_(temp_c),
      dc_options_(std::move(dc_options)),
      options_(std::move(options)) {}

double ResilientDcSolver::now() const {
  return options_.clock ? options_.clock() : steady_seconds();
}

void ResilientDcSolver::sleep_backoff(double seconds) const {
  if (seconds <= 0.0) return;
  if (options_.sleeper) {
    options_.sleeper(seconds);
  } else {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
}

void ResilientDcSolver::finish_success(SolveOutcome& outcome,
                                       SolveStrategy strategy,
                                       DcResult result) const {
  outcome.strategy = strategy;
  outcome.iterations = result.iterations;
  const DcSolver reporter(netlist_, temp_c_, dc_options_);
  const ResidualReport report = reporter.residual_report(result.x);
  outcome.worst_residual = report.worst;
  outcome.worst_node = report.node;
  outcome.result = std::move(result);
  if (outcome.status != SolveStatus::Degraded)
    outcome.status = SolveStatus::Converged;
}

bool ResilientDcSolver::run_strategy(SolveStrategy strategy,
                                     const std::vector<double>* warm_start,
                                     AttemptRecord& record,
                                     SolveOutcome& outcome) const {
  // Effective options for this attempt: per-attempt iteration budget plus a
  // progress callback that counts every Newton iteration into the attempt
  // record (so failed attempts report their real cost) and enforces the
  // deadline inside Newton, so a stalled solve cannot outlive its budget.
  DcOptions opts = dc_options_;
  if (options_.iteration_budget > 0)
    opts.max_iterations = options_.iteration_budget;
  // Ladder-level cancel token reaches every Newton iteration of every rung
  // (a caller-provided DcOptions::cancel takes precedence).
  if (options_.cancel && !opts.cancel) opts.cancel = options_.cancel;
  {
    auto base_progress = dc_options_.progress;
    int* counter = &record.iterations;
    opts.progress = [counter, base_progress](const NewtonProgress& p) {
      ++*counter;
      if (base_progress) base_progress(p);
    };
  }
  if (options_.deadline_s > 0.0) {
    const double deadline = start_time_ + options_.deadline_s;
    auto base_progress = opts.progress;
    opts.progress = [this, deadline, base_progress](const NewtonProgress& p) {
      if (base_progress) base_progress(p);
      if (now() > deadline) {
        SolveFailureInfo info;
        info.deadline_s = options_.deadline_s;
        info.elapsed_s = now() - start_time_;
        info.iterations = p.iteration;
        info.worst_residual = p.max_residual;
        throw SolveTimeout("resilient solve: deadline exceeded mid-Newton",
                           std::move(info));
      }
    };
  }

  switch (strategy) {
    case SolveStrategy::WarmStart: {
      // Pure Newton from the neighboring sweep point — cheap, no internal
      // cascade; if the neighborhood assumption is wrong, escalate fast.
      DcOptions warm = opts;
      warm.allow_gmin_stepping = false;
      warm.allow_source_stepping = false;
      DcResult result = DcSolver(netlist_, temp_c_, warm).solve(warm_start);
      finish_success(outcome, strategy, std::move(result));
      return true;
    }

    case SolveStrategy::ColdStart: {
      DcResult result = DcSolver(netlist_, temp_c_, opts).solve();
      finish_success(outcome, strategy, std::move(result));
      return true;
    }

    case SolveStrategy::DenseGmin: {
      // Half-decade gmin continuation driven from this layer: each step is
      // warm-started from the previous one, denser than the solver's own
      // decade schedule.
      DcOptions step = opts;
      step.allow_gmin_stepping = false;
      step.allow_source_stepping = false;
      std::vector<double> x;
      const std::vector<double>* guess = warm_start;
      for (double g = 1e-2; g > dc_options_.gmin; g *= 0.3162) {
        step.gmin = g;
        DcResult stage = DcSolver(netlist_, temp_c_, step).solve(guess);
        x = std::move(stage.x);
        guess = &x;
      }
      step.gmin = dc_options_.gmin;
      DcResult result = DcSolver(netlist_, temp_c_, step).solve(guess);
      finish_success(outcome, strategy, std::move(result));
      return true;
    }

    case SolveStrategy::RelaxedPolish: {
      DcOptions relaxed = opts;
      relaxed.v_tolerance = dc_options_.v_tolerance * options_.relax_factor;
      relaxed.residual_tolerance =
          dc_options_.residual_tolerance * options_.relax_factor;
      DcResult coarse = DcSolver(netlist_, temp_c_, relaxed).solve(warm_start);
      // Polish at full tolerance, warm-started from the relaxed point.
      DcOptions tight = opts;
      tight.allow_gmin_stepping = false;
      tight.allow_source_stepping = false;
      try {
        DcResult polished = DcSolver(netlist_, temp_c_, tight).solve(&coarse.x);
        finish_success(outcome, strategy, std::move(polished));
      } catch (const ConvergenceError&) {
        // The relaxed point is usable but below full tolerance: degrade
        // gracefully rather than discarding it.
        outcome.status = SolveStatus::Degraded;
        finish_success(outcome, strategy, std::move(coarse));
      }
      return true;
    }

    case SolveStrategy::PerturbedGuess: {
      const std::size_t dim = SystemAssembler(netlist_, temp_c_).dimension();
      std::vector<double> base(dim, 0.0);
      if (warm_start && warm_start->size() == dim) base = *warm_start;
      std::string last_error;
      for (int k = 0; k < options_.perturb_attempts; ++k) {
        std::vector<double> guess = base;
        for (std::size_t i = 0; i < guess.size(); ++i) {
          const std::uint64_t h = splitmix64(
              options_.seed ^ (static_cast<std::uint64_t>(k) << 32) ^ i);
          guess[i] += options_.perturb_magnitude * uniform_pm1(h);
        }
        try {
          DcResult result = DcSolver(netlist_, temp_c_, opts).solve(&guess);
          finish_success(outcome, strategy, std::move(result));
          return true;
        } catch (const SolveTimeout&) {
          throw;
        } catch (const ConvergenceError& e) {
          if (const auto* nd = dynamic_cast<const NewtonDivergence*>(&e))
            outcome.non_finite = outcome.non_finite || nd->info().non_finite;
          last_error = e.what();
        }
      }
      throw ConvergenceError("perturbed-guess: all " +
                             std::to_string(options_.perturb_attempts) +
                             " perturbations diverged (last: " + last_error +
                             ")");
    }
  }
  throw ConvergenceError("unknown solve strategy");
}

SolveOutcome ResilientDcSolver::solve(
    const std::vector<double>* warm_start) const {
  SolveOutcome outcome;
  start_time_ = now();

  int escalation = 0;
  for (const SolveStrategy strategy : options_.ladder) {
    if (strategy == SolveStrategy::WarmStart &&
        (warm_start == nullptr || warm_start->empty()))
      continue;  // nothing to warm-start from

    // Cancellation check between rungs (the token is also polled inside
    // every Newton iteration via DcOptions::cancel).
    const CancelToken* cancel =
        options_.cancel ? options_.cancel : dc_options_.cancel;
    if (cancel && cancel->cancelled()) {
      outcome.cancelled = true;
      outcome.error = "cancelled before strategy " + strategy_name(strategy);
      break;
    }

    // Deadline check between rungs.
    if (options_.deadline_s > 0.0 &&
        now() - start_time_ > options_.deadline_s) {
      outcome.timed_out = true;
      outcome.error = "deadline exceeded before strategy " +
                      strategy_name(strategy);
      break;
    }

    AttemptRecord record;
    record.strategy = strategy;
    if (escalation > 0 && options_.backoff_base_s > 0.0) {
      record.backoff_s = std::min(
          options_.backoff_base_s *
              std::pow(options_.backoff_factor, escalation - 1),
          options_.backoff_cap_s);
      sleep_backoff(record.backoff_s);
    }

    if (SolverObserver* observer = solver_observer())
      observer->on_ladder_attempt(escalation, strategy_name(strategy));

    const double attempt_start = now();
    ++outcome.attempts;
    ++escalation;
    try {
      const bool final = run_strategy(strategy, warm_start, record, outcome);
      record.elapsed_s = now() - attempt_start;
      record.converged = final;
      outcome.history.push_back(std::move(record));
      if (final) break;
    } catch (const SolveTimeout& e) {
      record.elapsed_s = now() - attempt_start;
      record.error = e.what();
      outcome.history.push_back(std::move(record));
      // A cancel trip and a deadline trip share the SolveTimeout channel;
      // the info flag tells them apart.
      if (e.info().cancelled)
        outcome.cancelled = true;
      else
        outcome.timed_out = true;
      outcome.non_finite = outcome.non_finite || e.info().non_finite;
      outcome.error = e.what();
      break;
    } catch (const ConvergenceError& e) {
      record.elapsed_s = now() - attempt_start;
      record.error = e.what();
      outcome.history.push_back(std::move(record));
      if (const auto* nd = dynamic_cast<const NewtonDivergence*>(&e))
        outcome.non_finite = outcome.non_finite || nd->info().non_finite;
      outcome.error = e.what();  // escalate to the next rung
    }
  }

  outcome.elapsed_s = now() - start_time_;
  if (outcome.ok()) outcome.error.clear();
  if (!outcome.ok() && outcome.error.empty())
    outcome.error = "retry ladder empty or every rung skipped";
  return outcome;
}

void ResilientDcSolver::throw_outcome(const SolveOutcome& outcome) const {
  SolveFailureInfo info;
  info.attempts = outcome.attempts;
  for (const AttemptRecord& a : outcome.history) info.iterations += a.iterations;
  info.elapsed_s = outcome.elapsed_s;
  info.deadline_s = options_.deadline_s;
  info.worst_residual = outcome.worst_residual;
  info.worst_node = outcome.worst_node;
  info.non_finite = outcome.non_finite;
  info.cancelled = outcome.cancelled;
  for (const AttemptRecord& a : outcome.history) {
    if (!info.strategies.empty()) info.strategies += ",";
    info.strategies += strategy_name(a.strategy);
  }

  char buf[256];
  if (outcome.cancelled) {
    std::snprintf(buf, sizeof(buf),
                  "SolveTimeout: cancelled by CancelToken after %d attempts "
                  "(%.3f s elapsed; strategies: %s)",
                  outcome.attempts, outcome.elapsed_s, info.strategies.c_str());
    throw SolveTimeout(buf, std::move(info));
  }
  if (outcome.timed_out) {
    std::snprintf(buf, sizeof(buf),
                  "SolveTimeout: deadline of %.3f s exceeded after %d "
                  "attempts (%.3f s elapsed; strategies: %s)",
                  options_.deadline_s, outcome.attempts, outcome.elapsed_s,
                  info.strategies.c_str());
    throw SolveTimeout(buf, std::move(info));
  }
  std::snprintf(buf, sizeof(buf),
                "RetryExhausted: %d attempts failed in %.3f s (strategies: "
                "%s; last error: %s)",
                outcome.attempts, outcome.elapsed_s, info.strategies.c_str(),
                outcome.error.c_str());
  throw RetryExhausted(buf, std::move(info));
}

DcResult ResilientDcSolver::solve_or_throw(
    const std::vector<double>* warm_start) const {
  SolveOutcome outcome = solve(warm_start);
  if (!outcome.ok()) throw_outcome(outcome);
  return std::move(outcome.result);
}

}  // namespace lpsram
