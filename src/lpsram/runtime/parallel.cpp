#include "lpsram/runtime/parallel.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <exception>

#include "lpsram/util/error.hpp"

namespace lpsram {

std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// ---------------------------------------------------------------------------
// SweepExecutor

namespace {

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  if (requested < 0)
    throw InvalidArgument("SweepExecutor: thread count must be >= 0");
  return SweepExecutor::default_threads();
}

}  // namespace

int SweepExecutor::default_threads() {
  if (const char* env = std::getenv("LPSRAM_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

int SweepExecutor::threads_per_process(int processes) {
  if (processes <= 0)
    throw InvalidArgument("SweepExecutor: process count must be >= 1");
  const int total = default_threads();
  return total / processes > 0 ? total / processes : 1;
}

// Shared state of one run() invocation. Workers claim chunks off `cursor`;
// exceptions land in per-index slots so run() can rethrow the lowest-index
// one after the pool drains. `active` counts slots currently draining the
// batch (guarded by the executor mutex): a pool worker joins only while the
// batch is still published, and run() returns only once active hits zero —
// so a worker that sleeps through a short batch simply never joins it.
struct SweepExecutor::Batch {
  std::size_t count = 0;
  const std::function<void(std::size_t, int)>* body = nullptr;
  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> cancelled{false};
  std::size_t active = 0;  // guarded by the executor mutex
  std::vector<std::exception_ptr> errors;  // per index; written by the slot
                                           // that ran the index, read by
                                           // run() after the active==0
                                           // barrier publishes them
};

SweepExecutor::SweepExecutor(SweepExecutorOptions options)
    : threads_(resolve_threads(options.threads)),
      chunk_(options.chunk > 0 ? options.chunk : 1),
      fail_fast_(options.fail_fast) {
  // The calling thread is worker slot 0; only extra slots need real threads.
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int w = 1; w < threads_; ++w)
    workers_.emplace_back([this, w] { worker_loop(w); });
}

SweepExecutor::~SweepExecutor() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void SweepExecutor::run(
    std::size_t count,
    const std::function<void(std::size_t index, int worker)>& body) {
  if (count == 0) return;

  if (threads_ == 1) {
    // Serial degenerate case: inline loop, immediate propagation. The
    // exception that escapes is the lowest-index one by construction.
    for (std::size_t i = 0; i < count; ++i) body(i, 0);
    return;
  }

  Batch batch;
  batch.count = count;
  batch.body = &body;
  batch.errors.assign(count, nullptr);

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    batch_ = &batch;
    batch.active = 1;  // the calling thread, worker slot 0
    ++batch_id_;
  }
  cv_.notify_all();

  // Participate as worker slot 0.
  const std::size_t chunk = static_cast<std::size_t>(chunk_);
  while (!batch.cancelled.load(std::memory_order_relaxed)) {
    const std::size_t begin =
        batch.cursor.fetch_add(chunk, std::memory_order_relaxed);
    if (begin >= count) break;
    const std::size_t end = std::min(begin + chunk, count);
    for (std::size_t i = begin; i < end; ++i) {
      try {
        body(i, 0);
      } catch (...) {
        batch.errors[i] = std::current_exception();
        if (fail_fast_) batch.cancelled.store(true, std::memory_order_relaxed);
      }
    }
  }

  // Unpublish the batch (no late joiners) and wait until every joined
  // worker has left it. This barrier also publishes the error slots the
  // workers wrote.
  {
    std::unique_lock<std::mutex> lock(mutex_);
    batch_ = nullptr;
    --batch.active;
    if (batch.active > 0)
      done_cv_.wait(lock, [&batch] { return batch.active == 0; });
  }

  for (std::size_t i = 0; i < count; ++i)
    if (batch.errors[i]) std::rethrow_exception(batch.errors[i]);
}

void SweepExecutor::worker_loop(int worker) {
  std::uint64_t seen_batch = 0;
  for (;;) {
    Batch* batch = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this, seen_batch] {
        return shutdown_ || (batch_ != nullptr && batch_id_ != seen_batch);
      });
      if (shutdown_) return;
      batch = batch_;
      seen_batch = batch_id_;
      ++batch->active;  // joined while the batch is still published
    }

    const std::size_t chunk = static_cast<std::size_t>(chunk_);
    while (!batch->cancelled.load(std::memory_order_relaxed)) {
      const std::size_t begin =
          batch->cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= batch->count) break;
      const std::size_t end = std::min(begin + chunk, batch->count);
      for (std::size_t i = begin; i < end; ++i) {
        try {
          (*batch->body)(i, worker);
        } catch (...) {
          batch->errors[i] = std::current_exception();
          if (fail_fast_)
            batch->cancelled.store(true, std::memory_order_relaxed);
        }
      }
    }

    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --batch->active;
    }
    done_cv_.notify_all();
  }
}

// ---------------------------------------------------------------------------
// SolveCache

SolveCache::SolveCache() : shards_(kShards) {}

SolveCache::Shard& SolveCache::shard_for(const SolveCacheKey& key) const noexcept {
  return shards_[SolveCacheKeyHash{}(key) % kShards];
}

bool SolveCache::lookup_nearest(const SolveCacheKey& key, double r,
                                std::vector<double>* x) const {
  const double log_r = std::log(r);
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.map.find(key);
  if (it == shard.map.end() || it->second.empty()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const std::vector<Entry>& entries = it->second;
  // Entries are sorted by log_r: the nearest neighbour brackets the
  // insertion point.
  auto lb = std::lower_bound(
      entries.begin(), entries.end(), log_r,
      [](const Entry& e, double v) { return e.log_r < v; });
  const Entry* best = nullptr;
  if (lb != entries.end()) best = &*lb;
  if (lb != entries.begin()) {
    const Entry* prev = &*(lb - 1);
    if (!best || std::abs(prev->log_r - log_r) <= std::abs(best->log_r - log_r))
      best = prev;
  }
  *x = best->x;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void SolveCache::store(const SolveCacheKey& key, double r,
                       const std::vector<double>& x) {
  const double log_r = std::log(r);
  {
    Shard& shard = shard_for(key);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    std::vector<Entry>& entries = shard.map[key];
    auto lb = std::lower_bound(
        entries.begin(), entries.end(), log_r,
        [](const Entry& e, double v) { return e.log_r < v; });
    if (lb != entries.end() && lb->log_r == log_r) {
      lb->x = x;
    } else {
      entries.insert(lb, Entry{log_r, x});
      stores_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // Notify outside the shard lock so a journaling listener never serializes
  // unrelated shards behind file I/O.
  StoreListener listener;
  {
    const std::lock_guard<std::mutex> lock(listener_mutex_);
    listener = listener_;
  }
  if (listener) listener(key, r, x);
}

void SolveCache::set_store_listener(StoreListener listener) {
  const std::lock_guard<std::mutex> lock(listener_mutex_);
  listener_ = std::move(listener);
}

void SolveCache::clear() {
  for (Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.map.clear();
  }
}

std::size_t SolveCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [key, entries] : shard.map) total += entries.size();
  }
  return total;
}

// ---------------------------------------------------------------------------
// SweepTelemetry

void SweepTelemetry::merge(const SweepTelemetry& other) {
  tasks += other.tasks;
  threads = std::max(threads, other.threads);
  wall_s += other.wall_s;
  cpu_s += other.cpu_s;
  solves.merge(other.solves);
}

std::string SweepTelemetry::summary() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "%zu tasks on %d threads: %llu solves, %.1f%% cache hits, "
                "%.2f s wall (%.2f s cpu)",
                tasks, threads,
                static_cast<unsigned long long>(solves.solves),
                cache_hit_rate() * 100.0, wall_s, cpu_s);
  return buf;
}

}  // namespace lpsram
