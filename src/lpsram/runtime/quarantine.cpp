#include "lpsram/runtime/quarantine.hpp"

#include <algorithm>
#include <cstdio>

#include "lpsram/util/error.hpp"

namespace lpsram {

std::string error_type_name(const std::exception& error) {
  if (dynamic_cast<const SolveTimeout*>(&error)) return "SolveTimeout";
  if (dynamic_cast<const RetryExhausted*>(&error)) return "RetryExhausted";
  if (dynamic_cast<const NewtonDivergence*>(&error)) return "NewtonDivergence";
  if (dynamic_cast<const ConvergenceError*>(&error)) return "ConvergenceError";
  if (dynamic_cast<const InvalidArgument*>(&error)) return "InvalidArgument";
  if (dynamic_cast<const ParseError*>(&error)) return "ParseError";
  if (dynamic_cast<const JournalCorrupt*>(&error)) return "JournalCorrupt";
  if (dynamic_cast<const Error*>(&error)) return "Error";
  return "std::exception";
}

QuarantinedPoint quarantined_point(std::string context,
                                   const std::exception& error) {
  QuarantinedPoint point;
  point.context = std::move(context);
  point.error_type = error_type_name(error);
  point.reason = error.what();
  if (const auto* e = dynamic_cast<const SolveTimeout*>(&error))
    point.non_finite = e->info().non_finite;
  else if (const auto* e = dynamic_cast<const RetryExhausted*>(&error))
    point.non_finite = e->info().non_finite;
  else if (const auto* e = dynamic_cast<const NewtonDivergence*>(&error))
    point.non_finite = e->info().non_finite;
  return point;
}

void SweepReport::quarantine(std::string context, const std::exception& error) {
  quarantine(quarantined_point(std::move(context), error));
}

void SweepReport::quarantine(QuarantinedPoint point) {
  ++attempted_;
  quarantined_.push_back(std::move(point));
}

void SweepReport::merge(const SweepReport& other) {
  attempted_ += other.attempted_;
  completed_ += other.completed_;
  quarantined_.insert(quarantined_.end(), other.quarantined_.begin(),
                      other.quarantined_.end());
}

std::string SweepReport::summary() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%zu/%zu points solved (%.1f%% coverage)",
                completed_, attempted_, coverage() * 100.0);
  std::string text = buf;
  if (!quarantined_.empty()) {
    text += "; quarantined:";
    const std::size_t shown = std::min(quarantined_.size(), kSummaryQuarantineCap);
    for (std::size_t i = 0; i < shown; ++i) {
      const QuarantinedPoint& q = quarantined_[i];
      text += "\n  [" + q.error_type + (q.non_finite ? ", non-finite" : "") +
              "] " + q.context + ": " + q.reason;
    }
    if (quarantined_.size() > shown) {
      std::snprintf(buf, sizeof(buf), "\n  ... and %zu more (see journal)",
                    quarantined_.size() - shown);
      text += buf;
    }
  }
  return text;
}

}  // namespace lpsram
