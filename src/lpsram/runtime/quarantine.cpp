#include "lpsram/runtime/quarantine.hpp"

#include <cstdio>

#include "lpsram/util/error.hpp"

namespace lpsram {

std::string error_type_name(const std::exception& error) {
  if (dynamic_cast<const SolveTimeout*>(&error)) return "SolveTimeout";
  if (dynamic_cast<const RetryExhausted*>(&error)) return "RetryExhausted";
  if (dynamic_cast<const ConvergenceError*>(&error)) return "ConvergenceError";
  if (dynamic_cast<const InvalidArgument*>(&error)) return "InvalidArgument";
  if (dynamic_cast<const ParseError*>(&error)) return "ParseError";
  if (dynamic_cast<const Error*>(&error)) return "Error";
  return "std::exception";
}

void SweepReport::quarantine(std::string context, const std::exception& error) {
  ++attempted_;
  quarantined_.push_back(QuarantinedPoint{std::move(context),
                                          error_type_name(error),
                                          error.what()});
}

void SweepReport::merge(const SweepReport& other) {
  attempted_ += other.attempted_;
  completed_ += other.completed_;
  quarantined_.insert(quarantined_.end(), other.quarantined_.begin(),
                      other.quarantined_.end());
}

std::string SweepReport::summary() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%zu/%zu points solved (%.1f%% coverage)",
                completed_, attempted_, coverage() * 100.0);
  std::string text = buf;
  if (!quarantined_.empty()) {
    text += "; quarantined:";
    for (const QuarantinedPoint& q : quarantined_) {
      text += "\n  [" + q.error_type + "] " + q.context + ": " + q.reason;
    }
  }
  return text;
}

}  // namespace lpsram
