#include "lpsram/runtime/journal.hpp"

#include <array>
#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "lpsram/util/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define LPSRAM_HAVE_FSYNC 1
#endif

namespace lpsram {
namespace {

// Table-driven CRC-32, generated once at first use (thread-safe via static
// initialization).
const std::uint32_t* crc32_table() {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table.data();
}

std::uint32_t read_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void write_le32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

// Crash-injection state (see ScopedJournalCrash). 0 = disarmed. A positive
// value counts down per append; the append that decrements it to zero tears
// and throws; once `dead` is set every append throws.
std::atomic<std::uint64_t> g_crash_countdown{0};
std::atomic<bool> g_crash_dead{false};
// Compaction kill point (see ScopedCompactionCrash). 0 = disarmed.
std::atomic<int> g_compaction_crash{0};

void maybe_compaction_crash(CompactionCrashPoint point) {
  if (g_compaction_crash.load(std::memory_order_relaxed) ==
      static_cast<int>(point))
    throw JournalCrash("journal: compaction crash injected at stage " +
                       std::to_string(static_cast<int>(point)));
}

}  // namespace

void fsync_parent_dir(const std::string& path) noexcept {
#ifdef LPSRAM_HAVE_FSYNC
  std::filesystem::path dir = std::filesystem::path(path).parent_path();
  if (dir.empty()) dir = ".";
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return;  // best effort: an unreadable dir just skips the sync
  ::fsync(fd);
  ::close(fd);
#else
  (void)path;
#endif
}

std::uint32_t crc32_ieee(const std::uint8_t* data, std::size_t size) noexcept {
  const std::uint32_t* table = crc32_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i)
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

// --- PayloadWriter / PayloadReader -----------------------------------------

void PayloadWriter::u32(std::uint32_t v) {
  std::uint8_t b[4];
  write_le32(b, v);
  bytes_.insert(bytes_.end(), b, b + 4);
}

void PayloadWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void PayloadWriter::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void PayloadWriter::str(const std::string& v) {
  u32(static_cast<std::uint32_t>(v.size()));
  bytes_.insert(bytes_.end(), v.begin(), v.end());
}

void PayloadWriter::vec_f64(const std::vector<double>& v) {
  u32(static_cast<std::uint32_t>(v.size()));
  for (const double e : v) f64(e);
}

void PayloadReader::need(std::size_t n) const {
  if (size_ - pos_ < n)
    throw JournalCorrupt("journal payload: short read (need " +
                         std::to_string(n) + " bytes, have " +
                         std::to_string(size_ - pos_) + ")");
}

std::uint8_t PayloadReader::u8() {
  need(1);
  return bytes_[pos_++];
}

std::uint32_t PayloadReader::u32() {
  need(4);
  const std::uint32_t v = read_le32(bytes_ + pos_);
  pos_ += 4;
  return v;
}

std::uint64_t PayloadReader::u64() {
  const std::uint64_t lo = u32();
  const std::uint64_t hi = u32();
  return lo | (hi << 32);
}

double PayloadReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string PayloadReader::str() {
  const std::uint32_t n = u32();
  need(n);
  std::string v(reinterpret_cast<const char*>(bytes_ + pos_), n);
  pos_ += n;
  return v;
}

std::vector<double> PayloadReader::vec_f64() {
  const std::uint32_t n = u32();
  need(static_cast<std::size_t>(n) * 8);
  std::vector<double> v(n);
  for (std::uint32_t i = 0; i < n; ++i) v[i] = f64();
  return v;
}

// --- Frame codec (shared by the on-disk journal and the fabric wire) -------

std::vector<std::uint8_t> encode_record_frame(std::uint8_t type,
                                              const std::uint8_t* payload,
                                              std::size_t size) {
  std::vector<std::uint8_t> frame(8 + 1 + size);
  const std::uint32_t length = static_cast<std::uint32_t>(1 + size);
  frame[8] = type;
  if (size != 0) std::memcpy(frame.data() + 9, payload, size);
  write_le32(frame.data(), length);
  write_le32(frame.data() + 4, crc32_ieee(frame.data() + 8, length));
  return frame;
}

void FrameParser::feed(const std::uint8_t* data, std::size_t size) {
  // Reclaim the consumed prefix once it dominates the buffer.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + size);
}

bool FrameParser::next(JournalRecord* out) {
  const std::size_t have = buf_.size() - pos_;
  if (have < 8) return false;
  const std::uint8_t* frame = buf_.data() + pos_;
  const std::uint32_t length = read_le32(frame);
  const std::uint32_t crc = read_le32(frame + 4);
  if (length == 0 || length > kJournalMaxRecordBytes)
    throw JournalCorrupt("frame stream: impossible record length " +
                         std::to_string(length));
  if (have - 8 < length) return false;
  const std::uint8_t* body = frame + 8;
  if (crc32_ieee(body, length) != crc)
    throw JournalCorrupt("frame stream: checksum mismatch");
  out->type = body[0];
  out->payload.assign(body + 1, body + length);
  pos_ += 8 + length;
  return true;
}

// --- Replay ----------------------------------------------------------------

JournalReplay replay_journal(const std::string& path) {
  JournalReplay replay;

  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return replay;  // missing file: fresh campaign
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  if (bytes.empty()) return replay;

  // Magic. A file shorter than the magic can only be a torn creation —
  // accept it if it is a prefix of the magic, reject otherwise.
  if (bytes.size() < sizeof(kJournalMagic)) {
    if (std::memcmp(bytes.data(), kJournalMagic, bytes.size()) != 0)
      throw JournalCorrupt("journal '" + path + "': bad magic");
    replay.torn_tail = true;
    return replay;  // valid_bytes = 0: rewrite from scratch
  }
  if (std::memcmp(bytes.data(), kJournalMagic, sizeof(kJournalMagic)) != 0)
    throw JournalCorrupt("journal '" + path + "': bad magic");

  std::size_t pos = sizeof(kJournalMagic);
  replay.valid_bytes = pos;
  while (pos < bytes.size()) {
    const std::size_t remaining = bytes.size() - pos;
    if (remaining < 8) {  // torn header
      replay.torn_tail = true;
      break;
    }
    const std::uint32_t length = read_le32(bytes.data() + pos);
    const std::uint32_t crc = read_le32(bytes.data() + pos + 4);
    if (length == 0 || length > kJournalMaxRecordBytes)
      throw JournalCorrupt("journal '" + path +
                           "': impossible record length " +
                           std::to_string(length) + " at offset " +
                           std::to_string(pos));
    if (remaining - 8 < length) {  // torn body
      replay.torn_tail = true;
      break;
    }
    const std::uint8_t* body = bytes.data() + pos + 8;
    if (crc32_ieee(body, length) != crc)
      throw JournalCorrupt("journal '" + path +
                           "': checksum mismatch at offset " +
                           std::to_string(pos));
    JournalRecord record;
    record.type = body[0];
    record.payload.assign(body + 1, body + length);
    replay.records.push_back(std::move(record));
    pos += 8 + length;
    replay.valid_bytes = pos;
  }
  return replay;
}

// --- JournalWriter ---------------------------------------------------------

void JournalWriter::flush_hard() {
  if (std::fflush(file_) != 0)
    throw JournalCorrupt("journal '" + path_ + "': flush failed");
#ifdef LPSRAM_HAVE_FSYNC
  ::fsync(::fileno(file_));
#endif
}

void JournalWriter::open(const std::string& path, std::uint64_t valid_bytes) {
  close();
  path_ = path;

  namespace fs = std::filesystem;
  std::error_code ec;
  // A stale compaction temp can only be the leftover of a crash between
  // write-temp and rename: the rename never happened, so it belongs to no
  // generation and is dead weight. Remove it before touching the journal.
  fs::remove(path + ".tmp", ec);
  const bool exists = fs::exists(path, ec);
  if (exists && valid_bytes > sizeof(kJournalMagic)) {
    // Resume: drop the torn tail (if any), append after the last intact
    // record.
    fs::resize_file(path, valid_bytes, ec);
    if (ec)
      throw JournalCorrupt("journal '" + path + "': truncate failed: " +
                           ec.message());
    file_ = std::fopen(path.c_str(), "ab");
    if (!file_)
      throw JournalCorrupt("journal '" + path + "': open for append failed");
    return;
  }
  // Fresh file (or a file torn inside the magic): rewrite from scratch.
  file_ = std::fopen(path.c_str(), "wb");
  if (!file_)
    throw JournalCorrupt("journal '" + path + "': create failed");
  if (std::fwrite(kJournalMagic, 1, sizeof(kJournalMagic), file_) !=
      sizeof(kJournalMagic))
    throw JournalCorrupt("journal '" + path + "': magic write failed");
  flush_hard();
  // Make the file's directory entry durable too: without this a crash right
  // after creation can lose the whole journal even though its first appends
  // were fsync'd.
  fsync_parent_dir(path);
}

void JournalWriter::append(std::uint8_t type,
                           const std::vector<std::uint8_t>& payload) {
  if (!file_) throw JournalCorrupt("journal: append on closed writer");

  const std::vector<std::uint8_t> frame =
      encode_record_frame(type, payload.data(), payload.size());

  // Crash injection (kill-replay harness): the armed append writes a torn
  // half-record — exercising the torn-tail replay path end to end — then
  // "kills the process"; later appends find the writer dead.
  if (g_crash_dead.load(std::memory_order_relaxed))
    throw JournalCrash("journal: process killed by ScopedJournalCrash");
  std::uint64_t count = g_crash_countdown.load(std::memory_order_relaxed);
  while (count > 0 && !g_crash_countdown.compare_exchange_weak(
                          count, count - 1, std::memory_order_relaxed)) {
  }
  if (count == 1) {
    g_crash_dead.store(true, std::memory_order_relaxed);
    const std::size_t torn = frame.size() / 2;
    std::fwrite(frame.data(), 1, torn, file_);
    flush_hard();
    throw JournalCrash("journal: crash injected at append (torn record)");
  }

  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size())
    throw JournalCorrupt("journal '" + path_ + "': append failed");
  flush_hard();
}

void JournalWriter::compact(const std::vector<JournalRecord>& records) {
  if (!file_) throw JournalCorrupt("journal: compact on closed writer");
  const std::string tmp = path_ + ".tmp";
  {
    JournalWriter snapshot;
    snapshot.open(tmp, 0);
    for (const JournalRecord& record : records)
      snapshot.append(record.type, record.payload);
    snapshot.close();
  }
  maybe_compaction_crash(CompactionCrashPoint::AfterTempWrite);
  close();
  std::error_code ec;
  std::filesystem::rename(tmp, path_, ec);
  if (ec)
    throw JournalCorrupt("journal '" + path_ + "': compaction rename failed: " +
                         ec.message());
  maybe_compaction_crash(CompactionCrashPoint::AfterRename);
  // The renamed directory entry must reach disk before anyone relies on the
  // compacted generation: without this fsync a crash after the rename could
  // roll the directory back and lose the journal entirely (the temp is gone,
  // the old inode unlinked).
  fsync_parent_dir(path_);
  maybe_compaction_crash(CompactionCrashPoint::AfterDirFsync);
  file_ = std::fopen(path_.c_str(), "ab");
  if (!file_)
    throw JournalCorrupt("journal '" + path_ + "': reopen after compact failed");
}

void JournalWriter::close() {
  if (file_) {
    std::fflush(file_);
    std::fclose(file_);
    file_ = nullptr;
  }
}

// --- Crash injection -------------------------------------------------------

ScopedJournalCrash::ScopedJournalCrash(std::uint64_t nth_append) {
  g_crash_dead.store(false, std::memory_order_relaxed);
  g_crash_countdown.store(nth_append, std::memory_order_relaxed);
}

ScopedJournalCrash::~ScopedJournalCrash() {
  g_crash_countdown.store(0, std::memory_order_relaxed);
  g_crash_dead.store(false, std::memory_order_relaxed);
}

void disarm_journal_crash() noexcept {
  g_crash_countdown.store(0, std::memory_order_relaxed);
  g_crash_dead.store(false, std::memory_order_relaxed);
  g_compaction_crash.store(0, std::memory_order_relaxed);
}

ScopedCompactionCrash::ScopedCompactionCrash(CompactionCrashPoint point) {
  g_compaction_crash.store(static_cast<int>(point), std::memory_order_relaxed);
}

ScopedCompactionCrash::~ScopedCompactionCrash() {
  g_compaction_crash.store(0, std::memory_order_relaxed);
}

}  // namespace lpsram
