// Parallel sweep execution for the resilient runtime.
//
// Three pieces, designed together so parallel sweeps stay bit-identical to
// serial ones:
//
//  - SweepExecutor: a fixed-size thread pool running an indexed task list.
//    Tasks are claimed in chunks off an atomic cursor; results (and
//    exceptions) land in per-index slots, and every *reduction* the sweep
//    drivers perform happens afterwards in index order on the calling
//    thread. The parallel schedule therefore affects wall-clock only, never
//    results. With threads == 1 the executor degenerates to a plain serial
//    loop (no pool, immediate exception propagation).
//
//  - SolveCache: a sharded, thread-safe memo of DC operating points keyed by
//    (netlist signature, sweep-task key, defect id) with entries sorted by
//    defect resistance. Sweep drivers hand it to the VoltageRegulator, whose
//    warm-start rung then seeds from the nearest cached neighbour during
//    bisection instead of cold-starting every point. Keys carry the task key
//    so lookups never cross task boundaries — a task's solve sequence is
//    identical whether other tasks run before, after, or concurrently.
//
//  - SweepTelemetry: per-sweep aggregate (task count, thread count, wall/CPU
//    time, merged SolveTelemetry with per-rung attempt and cache counters)
//    surfaced on every sweep result.
//
// Determinism contract (relied on by tests/test_parallel.cpp): for a fixed
// input and cache mode, every sweep driver built on this executor produces
// bit-identical results and identical quarantine sets at any thread count,
// including under chaos fault injection (tasks scope their chaos via
// ScopedTaskObserver, see spice/hooks.hpp).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "lpsram/runtime/solve_outcome.hpp"

namespace lpsram {

// splitmix64 finalizer — the runtime's standard mixing function (shared with
// the chaos harness). Exposed so sweep drivers derive task keys uniformly.
std::uint64_t mix64(std::uint64_t x) noexcept;

// Order-sensitive key fold: task_key(a, b, c) != task_key(b, a, c) etc.
inline std::uint64_t fold_key(std::uint64_t h, std::uint64_t v) noexcept {
  return mix64(h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2)));
}

// Raw IEEE-754 bits of a double — how real-valued configuration (tolerances,
// grid values) folds into task keys and campaign manifest fingerprints
// without rounding ambiguity.
inline std::uint64_t key_bits(double v) noexcept {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

// ---------------------------------------------------------------------------
// SweepExecutor

struct SweepExecutorOptions {
  // Worker count. 0 = automatic: the LPSRAM_THREADS environment variable if
  // set, else std::thread::hardware_concurrency(). Clamped to >= 1.
  int threads = 0;
  // Indices claimed per cursor fetch. 0 = automatic (1: sweep tasks are
  // seconds-long solve chains, so fine-grained claiming balances best).
  int chunk = 0;
  // Stop claiming new work once a task throws. The first-by-index exception
  // is rethrown either way; fail_fast only controls how much of the
  // remaining work still runs before the rethrow.
  bool fail_fast = true;
};

class SweepExecutor {
 public:
  explicit SweepExecutor(SweepExecutorOptions options = {});
  ~SweepExecutor();

  SweepExecutor(const SweepExecutor&) = delete;
  SweepExecutor& operator=(const SweepExecutor&) = delete;

  // Runs body(i) for every i in [0, count) and returns when all claimed
  // work has finished. The calling thread participates as worker slot 0;
  // body receives (index, worker) where worker in [0, threads()) identifies
  // the executing slot (for per-worker scratch state such as characterizer
  // instances — a slot runs at most one task at a time). If any body threw,
  // the exception with the lowest index is rethrown after the pool drains;
  // with threads() == 1 tasks run inline in index order, so the first throw
  // propagates immediately (same exception choice, less work executed).
  void run(std::size_t count,
           const std::function<void(std::size_t index, int worker)>& body);

  // Resolved worker count (>= 1).
  int threads() const noexcept { return threads_; }

  // The automatic thread count used when options.threads == 0.
  static int default_threads();

  // Per-process executor budget for a fleet of `processes` cooperating
  // worker processes (the campaign fabric forks one executor per worker):
  // splits default_threads() evenly so the fleet as a whole does not
  // oversubscribe the host. Always >= 1.
  static int threads_per_process(int processes);

 private:
  struct Batch;  // one run() invocation's shared state

  void worker_loop(int worker);

  int threads_ = 1;
  int chunk_ = 1;
  bool fail_fast_ = true;

  // Pool state (only initialised when threads_ > 1).
  std::mutex mutex_;
  std::condition_variable cv_;       // workers wait for a batch or shutdown
  std::condition_variable done_cv_;  // run() waits for batch completion
  Batch* batch_ = nullptr;           // current batch, guarded by mutex_
  std::uint64_t batch_id_ = 0;       // bumped per run() so workers re-wake
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

// ---------------------------------------------------------------------------
// SolveCache

// Key of one cached operating-point family. `circuit` fingerprints the
// netlist state *excluding* the swept defect resistance (plus ambient
// conditions the netlist does not capture, e.g. temperature and test load);
// `task` scopes entries to one sweep task so lookups are deterministic under
// parallel execution; `defect` is the injected defect id (0 = none).
struct SolveCacheKey {
  std::uint64_t circuit = 0;
  std::uint64_t task = 0;
  std::int32_t defect = 0;

  bool operator==(const SolveCacheKey&) const noexcept = default;
};

struct SolveCacheKeyHash {
  std::size_t operator()(const SolveCacheKey& k) const noexcept {
    return static_cast<std::size_t>(
        mix64(k.circuit ^ mix64(k.task ^ static_cast<std::uint64_t>(
                                             static_cast<std::uint32_t>(k.defect)))));
  }
};

// Thread-safe memo of DC operating points, sharded by key hash so concurrent
// tasks rarely contend. Within a key, entries are kept sorted by
// log(defect resistance) and lookup returns the nearest stored neighbour —
// the natural warm start while a bisection closes in on a threshold.
class SolveCache {
 public:
  SolveCache();

  // Nearest stored operating point for `key` by |log r - log entry.r|.
  // Returns false (and leaves *x alone) when the key has no entries.
  bool lookup_nearest(const SolveCacheKey& key, double r,
                      std::vector<double>* x) const;

  // Stores (r, x) under `key`; replaces the entry if this exact r is already
  // present.
  void store(const SolveCacheKey& key, double r, const std::vector<double>& x);

  // Observer invoked after every store() (outside the shard lock). The
  // campaign runtime uses it to journal operating points as tasks solve
  // them; seeding (Campaign::seed_cache) happens before a listener is
  // attached, so replayed points are never re-journaled. Must be
  // thread-safe: stores happen concurrently from sweep workers. Pass
  // nullptr to detach.
  using StoreListener = std::function<void(
      const SolveCacheKey& key, double r, const std::vector<double>& x)>;
  void set_store_listener(StoreListener listener);

  void clear();
  std::size_t size() const;  // total entries across all keys

  // Process-lifetime counters (atomic; monotonically increasing across
  // clear()). For deterministic per-sweep accounting use the cache_* fields
  // of SolveTelemetry, which the solve owner counts locally.
  std::uint64_t hits() const noexcept { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const noexcept { return misses_.load(std::memory_order_relaxed); }
  std::uint64_t stores() const noexcept { return stores_.load(std::memory_order_relaxed); }

 private:
  struct Entry {
    double log_r = 0.0;
    std::vector<double> x;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<SolveCacheKey, std::vector<Entry>, SolveCacheKeyHash> map;
  };

  static constexpr std::size_t kShards = 16;

  Shard& shard_for(const SolveCacheKey& key) const noexcept;

  mutable std::vector<Shard> shards_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> stores_{0};
  mutable std::mutex listener_mutex_;
  StoreListener listener_;
};

// ---------------------------------------------------------------------------
// SweepTelemetry

// Aggregate telemetry of one sweep run, surfaced on every sweep result.
// The `solves` sub-telemetry (solve counts, per-rung attempts, cache
// counters) is deterministic for a fixed input + cache mode; the wall/CPU
// timings are not.
struct SweepTelemetry {
  std::size_t tasks = 0;   // executor tasks run (attempted + quarantined)
  int threads = 1;         // worker count the sweep ran with
  double wall_s = 0.0;     // wall-clock of the sweep [s]
  double cpu_s = 0.0;      // sum of per-task wall-clock [s] (~CPU time)
  SolveTelemetry solves;   // merged per-task solve telemetry, in task order

  double cache_hit_rate() const noexcept {
    const std::uint64_t total = solves.cache_hits + solves.cache_misses;
    return total ? static_cast<double>(solves.cache_hits) /
                       static_cast<double>(total)
                 : 0.0;
  }

  // Folds another sweep's telemetry into this one (tasks/timings add,
  // threads takes the max, solves merge).
  void merge(const SweepTelemetry& other);

  // "12 tasks on 4 threads: 312 solves, 58.3% cache hits, 1.9 s wall
  //  (7.1 s cpu)"
  std::string summary() const;
};

}  // namespace lpsram
