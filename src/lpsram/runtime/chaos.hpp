// Numerical fault-injection harness ("chaos") for the DC solve path.
//
// A ChaosEngine is a SolverObserver that deterministically sabotages solves
// according to a seed-driven policy: NaN residuals, singular-Jacobian
// perturbations, iteration-cap breaches and artificial stalls. Installed
// via ChaosScope (RAII over the global solver-observer registry), it lets
// tests prove that the retry ladder and sweep quarantine paths actually
// engage — the solver under test cannot tell injected faults from real
// numerical fragility.
//
// Determinism: the decision to sabotage solve #k is a pure function of
// (seed, k, ladder attempt index), so a chaos run is exactly reproducible
// and a clean run can be compared point-for-point against it.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "lpsram/spice/hooks.hpp"

namespace lpsram {

enum class ChaosFault {
  NanResidual,      // poisons the assembled residual with NaN
  SingularJacobian, // zeroes a Jacobian row so LU factorization fails
  IterationCap,     // keeps the residual huge so Newton burns its budget
  Stall,            // sleeps every iteration (does not corrupt the system)
};

std::string chaos_fault_name(ChaosFault fault);

struct ChaosPolicy {
  std::uint64_t seed = 1;

  // Probability that a solve starting a retry ladder (attempt 0, or any
  // plain DcSolver::solve outside a ladder) is sabotaged.
  double first_attempt_failure_rate = 0.0;

  // Probability that a solve issued by escalation rungs (attempt >= 1) is
  // sabotaged. Keep 0 to prove "first attempt fails, retry recovers".
  double retry_failure_rate = 0.0;

  // Fault kinds rotated through deterministically per sabotaged solve.
  std::vector<ChaosFault> faults = {ChaosFault::NanResidual,
                                    ChaosFault::SingularJacobian,
                                    ChaosFault::IterationCap};

  // Stall: sleep this long per Newton iteration [s].
  double stall_seconds = 0.0;
};

class ChaosEngine : public SolverObserver {
 public:
  explicit ChaosEngine(ChaosPolicy policy);

  ~ChaosEngine() override;

  // SolverObserver
  void on_solve_begin() override;
  void on_newton_iteration(NewtonEvent& event) override;
  void on_ladder_attempt(int attempt, const std::string& strategy) override;

  // Task-scoped fork for parallel sweeps: the child runs the same policy
  // reseeded as a pure function of (parent seed, task_key), so the sabotage
  // pattern a task sees depends only on the task's identity — never on how
  // tasks interleave across threads. On destruction the child folds its
  // counters back into this engine under a mutex, so parent-side telemetry
  // totals are exact (though only stable once all forks are gone).
  std::unique_ptr<SolverObserver> fork_for_task(std::uint64_t task_key) override;

  const ChaosPolicy& policy() const noexcept { return policy_; }

  // Telemetry for assertions and reports.
  std::uint64_t solves_seen() const noexcept { return solves_seen_; }
  std::uint64_t solves_sabotaged() const noexcept { return solves_sabotaged_; }
  std::uint64_t injections(ChaosFault fault) const;
  double sabotage_fraction() const noexcept {
    return solves_seen_ ? static_cast<double>(solves_sabotaged_) /
                              static_cast<double>(solves_seen_)
                        : 0.0;
  }
  // First-attempt view: solves_seen() is diluted by the retry solves each
  // sabotage provokes, so "what fraction of solves failed on the first
  // attempt" must be measured over first attempts only.
  std::uint64_t first_attempts_seen() const noexcept {
    return first_attempts_seen_;
  }
  std::uint64_t first_attempts_sabotaged() const noexcept {
    return first_attempts_sabotaged_;
  }
  double first_attempt_sabotage_fraction() const noexcept {
    return first_attempts_seen_
               ? static_cast<double>(first_attempts_sabotaged_) /
                     static_cast<double>(first_attempts_seen_)
               : 0.0;
  }

 private:
  // Fork constructor: same policy with a task-derived seed, counters folded
  // into `parent` on destruction.
  ChaosEngine(ChaosPolicy policy, ChaosEngine* parent);

  // Adds `child`'s counters into this engine (under merge_mutex_).
  void absorb(const ChaosEngine& child);

  ChaosPolicy policy_;
  ChaosEngine* parent_ = nullptr;  // set on forks only
  std::mutex merge_mutex_;         // guards counter absorption from forks
  std::uint64_t solves_seen_ = 0;
  std::uint64_t solves_sabotaged_ = 0;
  std::uint64_t first_attempts_seen_ = 0;
  std::uint64_t first_attempts_sabotaged_ = 0;
  int ladder_attempt_ = 0;         // last attempt index announced by the ladder
  bool sabotage_current_ = false;  // current solve is under attack
  ChaosFault current_fault_ = ChaosFault::NanResidual;
  std::vector<std::uint64_t> injection_counts_;  // indexed by ChaosFault
};

// RAII installation of a ChaosEngine as the process-wide solver observer.
class ChaosScope {
 public:
  explicit ChaosScope(ChaosEngine& engine) : scoped_(&engine) {}

 private:
  ScopedSolverObserver scoped_;
};

}  // namespace lpsram
