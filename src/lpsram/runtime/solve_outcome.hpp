// Structured result of a resilient DC solve: replaces throw-or-succeed with
// a typed outcome carrying status, the strategy that produced the result,
// iteration/residual/timing telemetry, and the full attempt history.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "lpsram/spice/dc_solver.hpp"

namespace lpsram {

// The escalation rungs of the retry ladder, in their default order.
enum class SolveStrategy {
  WarmStart,      // caller-provided guess (neighboring sweep point)
  ColdStart,      // zero guess, stock solver fallbacks
  DenseGmin,      // runtime-level gmin continuation, half-decade schedule
  RelaxedPolish,  // loose tolerances first, then warm-started tight polish
  PerturbedGuess, // seed-driven randomized initial-guess perturbation
};

std::string strategy_name(SolveStrategy strategy);

// Number of ladder rungs (size of per-strategy counter arrays).
inline constexpr std::size_t kSolveStrategyCount = 5;

enum class SolveStatus {
  Converged,  // full-tolerance operating point
  Degraded,   // relaxed-tolerance point accepted after polish failed
  Failed,     // every rung exhausted (or deadline hit)
};

std::string status_name(SolveStatus status);

// One retry-ladder attempt, recorded whether it succeeded or not.
struct AttemptRecord {
  SolveStrategy strategy = SolveStrategy::ColdStart;
  bool converged = false;
  int iterations = 0;      // Newton iterations consumed by the attempt
  double elapsed_s = 0.0;  // wall-clock spent in the attempt [s]
  double backoff_s = 0.0;  // backoff slept before the attempt [s]
  std::string error;       // failure message (empty on success)
};

struct SolveOutcome {
  SolveStatus status = SolveStatus::Failed;
  SolveStrategy strategy = SolveStrategy::ColdStart;  // rung that produced `result`
  int attempts = 0;             // ladder rungs tried
  int iterations = 0;           // Newton iterations of the winning attempt
  double worst_residual = 0.0;  // max |KCL residual| of the final estimate [A]
  std::string worst_node;       // node carrying the worst residual
  double elapsed_s = 0.0;       // total wall-clock across all attempts [s]
  bool timed_out = false;       // deadline cut the solve off
  bool cancelled = false;       // a CancelToken cut the solve off
  bool non_finite = false;      // some attempt saw a NaN/Inf residual or step
  std::string error;            // failure description (empty unless Failed)
  DcResult result;              // valid when status != Failed
  std::vector<AttemptRecord> history;

  bool ok() const noexcept { return status != SolveStatus::Failed; }

  // "converged via cold-start: 12 iters, 3.1e-13 A residual, 0.8 ms"
  std::string summary() const;
};

// Running counters a solve-owning component (e.g. VoltageRegulator) keeps so
// silent fallbacks become visible telemetry instead of swallowed exceptions.
// Not thread-safe: one instance belongs to one solve owner on one thread at
// a time; parallel sweeps keep per-task deltas and merge() them in task-index
// order (see SweepTelemetry in runtime/parallel.hpp).
struct SolveTelemetry {
  std::uint64_t solves = 0;
  std::uint64_t warm_hits = 0;   // first-rung warm start succeeded
  std::uint64_t fallbacks = 0;   // warm start failed but a later rung recovered
  std::uint64_t degraded = 0;    // accepted a relaxed-tolerance solution
  std::uint64_t failures = 0;    // retry ladder exhausted
  std::uint64_t timeouts = 0;    // deadline or cancellation enforced
  std::uint64_t cancels = 0;     // subset of timeouts cut off by a CancelToken
  std::uint64_t non_finite = 0;  // solves that saw a NaN/Inf residual or step
  // Ladder attempts per strategy, indexed by SolveStrategy: every entry of
  // every outcome's history counts, converged or not.
  std::array<std::uint64_t, kSolveStrategyCount> rung_attempts{};
  // Operating-point cache traffic (counted by the solve owner when a
  // SolveCache is attached; zero otherwise).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_stores = 0;
  SolveOutcome last;             // most recent outcome, for inspection

  void record(const SolveOutcome& outcome);
  // Adds `other`'s counters into this one. `last` becomes other.last when
  // `other` saw any solve — merging per-task deltas in task-index order
  // therefore reproduces the serial "most recent outcome" exactly.
  void merge(const SolveTelemetry& other);
  void reset() { *this = SolveTelemetry{}; }
};

// Counter-wise difference (after - before) of two snapshots of the same
// telemetry instance; `last` is taken from `after`. Used by sweep drivers to
// attribute solves to individual tasks.
SolveTelemetry telemetry_delta(const SolveTelemetry& before,
                               const SolveTelemetry& after);

}  // namespace lpsram
