// Partial-results accounting for PVT/defect sweeps: instead of aborting a
// 45-corner characterization on the first ConvergenceError, sweep drivers
// quarantine the failing point with its diagnostic and keep going. A
// SweepReport states exactly what fraction of the grid the surviving
// numbers trust.
#pragma once

#include <cstddef>
#include <exception>
#include <string>
#include <vector>

namespace lpsram {

// One sweep point that failed to solve and was excluded from the results.
struct QuarantinedPoint {
  std::string context;     // human-readable point id, e.g. "Df16 x CS1 @ fs, 1.0V, 125C"
  std::string error_type;  // "SolveTimeout", "RetryExhausted", "ConvergenceError", ...
  std::string reason;      // the error's what()
  // True when the failure involved a NaN/Inf residual or Newton step (see
  // SolveFailureInfo::non_finite) — tells an injected/genuine NaN fault from
  // an ordinary diverged-but-finite solve.
  bool non_finite = false;
};

// Taxonomy name of an lpsram error (most-derived first), for quarantine
// records and telemetry.
std::string error_type_name(const std::exception& error);

// Builds the quarantine record for an error, extracting the non_finite flag
// from the typed solve-failure family. Sweep drivers use this both to fill
// SweepReport and to journal quarantined points in campaign mode.
QuarantinedPoint quarantined_point(std::string context,
                                   const std::exception& error);

class SweepReport {
 public:
  // Every sweep point passes through exactly one of these two.
  void add_success() { ++attempted_; ++completed_; }
  void quarantine(std::string context, const std::exception& error);
  // Records an already-materialized quarantine (campaign journal replay).
  void quarantine(QuarantinedPoint point);

  std::size_t attempted() const noexcept { return attempted_; }
  std::size_t completed() const noexcept { return completed_; }
  std::size_t quarantined_count() const noexcept { return quarantined_.size(); }
  const std::vector<QuarantinedPoint>& quarantined() const noexcept {
    return quarantined_;
  }

  // Fraction of attempted points that completed (1.0 for an empty sweep).
  double coverage() const noexcept {
    return attempted_ == 0 ? 1.0
                           : static_cast<double>(completed_) /
                                 static_cast<double>(attempted_);
  }
  bool complete() const noexcept { return completed_ == attempted_; }

  // Folds another report into this one (per-cell reports into a table-wide
  // one).
  void merge(const SweepReport& other);

  // "43/45 points solved (95.6% coverage); quarantined: ..." — one line per
  // quarantined point, capped at the first kSummaryQuarantineCap with an
  // "... and N more" tail so a mostly-failed campaign stays readable.
  std::string summary() const;

  static constexpr std::size_t kSummaryQuarantineCap = 10;

 private:
  std::size_t attempted_ = 0;
  std::size_t completed_ = 0;
  std::vector<QuarantinedPoint> quarantined_;
};

}  // namespace lpsram
