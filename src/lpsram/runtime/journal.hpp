// Append-only, checksummed record log backing the durable campaign runtime.
//
// File layout:
//   [8-byte magic "LPSJRNL1"]
//   repeated records: [u32 length][u32 crc32][u8 type + payload bytes]
// where `length` counts the type byte plus the payload and `crc32` (IEEE,
// reflected — the same polynomial as zlib) covers those `length` bytes.
// All integers are little-endian; doubles are stored as their raw IEEE-754
// bit pattern, so replayed values are bit-identical to what was recorded.
//
// Durability contract:
//   * Every append is flushed (and fsync'd where available) before the
//     call returns — after a crash the file contains every record whose
//     append completed, plus at most one torn (partially written) record.
//   * Replay truncates a torn tail silently: a crash mid-append loses only
//     the record being written, never a completed one.
//   * Any damage BEFORE the tail — a bad checksum, an impossible length, a
//     short payload — throws JournalCorrupt. Completed records are never
//     silently dropped.
//   * Compaction rewrites the log via write-temp + flush + rename + parent
//     directory fsync, so a crash mid-compaction leaves either the old file
//     or the new one, never a hybrid and never neither: the directory fsync
//     makes the rename itself durable, and a stale `.tmp` left by a crash
//     between write-temp and rename is cleaned up on the next open().
//
// The record framing ([u32 length][u32 crc32][u8 type + payload]) is shared
// with the fabric message channel (runtime/fabric/wire.hpp): a message on the
// wire is framed byte-for-byte like a record on disk, so one codec — and one
// inspection tool — covers both.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

namespace lpsram {

// CRC-32 (IEEE 802.3, reflected, init/final 0xFFFFFFFF) — matches zlib's
// crc32(), which tools/journal_inspect.py uses to cross-check journals.
std::uint32_t crc32_ieee(const std::uint8_t* data, std::size_t size) noexcept;

// Journal file magic: 8 bytes at offset 0.
inline constexpr char kJournalMagic[8] = {'L', 'P', 'S', 'J',
                                          'R', 'N', 'L', '1'};
// Sanity cap on a single record's length field. A real record is a few KB;
// a length above this can only come from interior corruption, letting replay
// distinguish a damaged length prefix (JournalCorrupt) from a genuinely
// torn tail (silent truncation).
inline constexpr std::uint32_t kJournalMaxRecordBytes = 16u << 20;

// One replayed record: leading type byte stripped off, payload verbatim.
struct JournalRecord {
  std::uint8_t type = 0;
  std::vector<std::uint8_t> payload;
};

// Outcome of replaying a journal file.
struct JournalReplay {
  std::vector<JournalRecord> records;
  // Byte offset of the end of the last intact record (== file size when the
  // file is clean). JournalWriter::open() resumes appending here, truncating
  // any torn tail first.
  std::uint64_t valid_bytes = 0;
  bool torn_tail = false;  // a partial final record was dropped
};

// Reads and validates a journal. A missing file replays as empty (a fresh
// campaign). Throws JournalCorrupt on interior damage per the contract above.
JournalReplay replay_journal(const std::string& path);

// Best-effort fsync of the directory containing `path`, making a just-created
// or just-renamed directory entry durable. No-op where fsync is unavailable.
void fsync_parent_dir(const std::string& path) noexcept;

// Frames one record exactly as it is laid out on disk and on the fabric
// wire: [u32 length][u32 crc32][u8 type + payload].
std::vector<std::uint8_t> encode_record_frame(std::uint8_t type,
                                              const std::uint8_t* payload,
                                              std::size_t size);

// Incremental decoder for the same framing over a byte stream (the fabric
// message channel reads sockets in arbitrary-sized chunks). feed() appends
// raw bytes; next() pops one complete record at a time. A bad length or
// checksum throws JournalCorrupt — on a reliable stream that means a framing
// bug or a trashed peer, not a torn write, so there is no silent truncation.
class FrameParser {
 public:
  void feed(const std::uint8_t* data, std::size_t size);
  // Decodes the next complete frame into *out; false when the buffered bytes
  // do not yet hold a full frame.
  bool next(JournalRecord* out);
  std::size_t buffered() const noexcept { return buf_.size() - pos_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  // consumed prefix, reclaimed lazily
};

// Little-endian payload serializer. Append-only; the buffer becomes the
// record payload (after the type byte) handed to JournalWriter::append.
class PayloadWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);  // raw IEEE-754 bits — bit-identical round trip
  void str(const std::string& v);         // u32 length + bytes
  void vec_f64(const std::vector<double>& v);  // u32 count + raw bits

  const std::vector<std::uint8_t>& bytes() const noexcept { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

// Mirror of PayloadWriter. Any short read throws JournalCorrupt — a record
// that passed its checksum but decodes short means a serializer bug or
// version mismatch, both corruption from the reader's point of view.
class PayloadReader {
 public:
  explicit PayloadReader(const std::vector<std::uint8_t>& bytes)
      : bytes_(bytes.data()), size_(bytes.size()) {}
  PayloadReader(const std::uint8_t* bytes, std::size_t size)
      : bytes_(bytes), size_(size) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::string str();
  std::vector<double> vec_f64();

  bool done() const noexcept { return pos_ == size_; }
  std::size_t remaining() const noexcept { return size_ - pos_; }

 private:
  void need(std::size_t n) const;

  const std::uint8_t* bytes_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// Appender. open() replays nothing itself — callers replay first, then open
// the writer with the replay's valid_bytes so a torn tail is truncated away
// before the first new append lands.
class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter() { close(); }
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  // Opens `path` for appending at `valid_bytes` (from replay_journal),
  // truncating anything after it. Creates the file (and writes the magic)
  // when valid_bytes == 0 and the file is absent or was fully torn.
  void open(const std::string& path, std::uint64_t valid_bytes);

  // Frames, checksums, appends and flushes one record. Thread-compatible
  // only — the owning Campaign serializes appends under its own mutex.
  void append(std::uint8_t type, const std::vector<std::uint8_t>& payload);

  // Atomically replaces the journal with the given records: writes
  // `path.tmp`, flushes it, then renames over `path` and reopens for append.
  void compact(const std::vector<JournalRecord>& records);

  void close();
  bool is_open() const noexcept { return file_ != nullptr; }
  const std::string& path() const noexcept { return path_; }

 private:
  void flush_hard();

  std::FILE* file_ = nullptr;
  std::string path_;
};

// --- Test hook: deterministic journal crash injection (chaos layer). -------
// Arms a countdown: the Nth append after arming (1-based) writes a torn
// half-record, flushes it, and throws JournalCrash; every later append
// throws immediately (a dead process writes nothing). This simulates a hard
// kill at a record boundary for the kill-replay harness.
//
// JournalCrash deliberately derives from std::runtime_error but NOT
// lpsram::Error: sweep drivers quarantine `catch (const Error&)`, and an
// injected crash must blow through that and abort the whole run the way a
// real SIGKILL would.
class JournalCrash : public std::runtime_error {
 public:
  explicit JournalCrash(const std::string& what) : std::runtime_error(what) {}
};

class ScopedJournalCrash {
 public:
  explicit ScopedJournalCrash(std::uint64_t nth_append);
  ~ScopedJournalCrash();
  ScopedJournalCrash(const ScopedJournalCrash&) = delete;
  ScopedJournalCrash& operator=(const ScopedJournalCrash&) = delete;
};

// Clears any armed append/compaction crash. Forked fabric workers call this
// first thing in the child: the injection state is process-global and a
// coordinator-side ScopedJournalCrash must not leak into the children's
// shard journals across fork().
void disarm_journal_crash() noexcept;

// Compaction-specific kill points, between the three durability boundaries
// the rewrite crosses. At each point the on-disk state differs:
//   AfterTempWrite — `.tmp` holds the flushed snapshot, `path` still holds
//     the old generation (recovery replays the old file; open() removes the
//     stale `.tmp`).
//   AfterRename — `path` holds the new generation but the directory entry is
//     not yet fsync'd (recovery replays the new file — or, on a journaling
//     filesystem that lost the rename, the old one; never neither).
//   AfterDirFsync — fully durable, the writer just never reopened.
enum class CompactionCrashPoint : int {
  AfterTempWrite = 1,
  AfterRename = 2,
  AfterDirFsync = 3,
};

class ScopedCompactionCrash {
 public:
  explicit ScopedCompactionCrash(CompactionCrashPoint point);
  ~ScopedCompactionCrash();
  ScopedCompactionCrash(const ScopedCompactionCrash&) = delete;
  ScopedCompactionCrash& operator=(const ScopedCompactionCrash&) = delete;
};

}  // namespace lpsram
