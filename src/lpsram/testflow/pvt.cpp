#include "lpsram/testflow/pvt.hpp"

#include <cstdio>

namespace lpsram {

std::vector<PvtPoint> full_pvt_grid(const Technology& tech) {
  std::vector<PvtPoint> grid;
  grid.reserve(45);
  for (const Corner corner : kAllCorners) {
    for (const double vdd : tech.vdd_levels()) {
      for (const double temp : tech.temperatures()) {
        grid.push_back(PvtPoint{corner, vdd, temp});
      }
    }
  }
  return grid;
}

std::vector<PvtPoint> reduced_pvt_grid(const Technology& tech) {
  const double vdd = tech.vdd_nominal();
  return {
      PvtPoint{Corner::Typical, vdd, 25.0},
      PvtPoint{Corner::Typical, vdd, 125.0},
      PvtPoint{Corner::FastNSlowP, vdd, 25.0},
      PvtPoint{Corner::FastNSlowP, vdd, 125.0},
  };
}

std::string pvt_name(const PvtPoint& point) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s, %.1fV, %.0fC",
                corner_name(point.corner).c_str(), point.vdd, point.temp_c);
  return buf;
}

}  // namespace lpsram
