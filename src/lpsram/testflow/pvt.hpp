// PVT grid helpers for the paper's sweeps: 5 process corners x 3 supply
// voltages x 3 temperatures = 45 combinations per experiment point.
#pragma once

#include <string>
#include <vector>

#include "lpsram/device/technology.hpp"

namespace lpsram {

// The full 45-point grid, ordered corner-major.
std::vector<PvtPoint> full_pvt_grid(const Technology& tech);

// A 4-point grid (typical/fs x 25/125 C at nominal VDD) for fast tests.
std::vector<PvtPoint> reduced_pvt_grid(const Technology& tech);

// "fs, 1.0V, 125C" — the format Table II uses.
std::string pvt_name(const PvtPoint& point);

}  // namespace lpsram
