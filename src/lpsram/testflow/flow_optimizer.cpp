#include "lpsram/testflow/flow_optimizer.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>

#include "lpsram/spice/dc_solver.hpp"
#include "lpsram/spice/hooks.hpp"
#include "lpsram/util/error.hpp"
#include "lpsram/util/rootfind.hpp"

namespace lpsram {

std::string TestCondition::str() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "VDD=%.1fV, Vref=%s (Vreg=%.3fV)", vdd,
                vref_name(vref).c_str(), expected_vreg());
  return buf;
}

std::vector<TestCondition> all_test_conditions(const Technology& tech) {
  std::vector<TestCondition> conditions;
  for (const double vdd : tech.vdd_levels()) {
    for (const VrefLevel level : kAllVrefLevels) {
      conditions.push_back(TestCondition{vdd, level, 1e-3});
    }
  }
  return conditions;
}

double OptimizedFlow::time_reduction(const MarchTest& test, std::size_t words,
                                     double cycle_time) const {
  const double per_run =
      march_test_time(test, words, cycle_time, iterations.empty()
                                                   ? 1e-3
                                                   : iterations[0].condition.ds_time);
  const double optimized =
      per_run * static_cast<double>(iterations.size());
  const double naive = per_run * static_cast<double>(naive_iterations);
  return naive > 0.0 ? 1.0 - optimized / naive : 0.0;
}

FlowOptimizer::FlowOptimizer(const Technology& tech, Options options)
    : tech_(tech), options_(options) {
  worst_drv_ = options_.worst_drv;
  if (worst_drv_ <= 0.0)
    worst_drv_ = characterize_case_study(tech_, case_study(1, true)).drv_ds();
}

bool FlowOptimizer::condition_valid(const TestCondition& condition) const noexcept {
  // A healthy SRAM must pass: the regulated voltage may not sit below the
  // worst-case DRV.
  return condition.expected_vreg() >= worst_drv_ + options_.guard;
}

DetectionMatrix FlowOptimizer::build_matrix(
    std::span<const DefectId> defects) const {
  DetectionMatrix matrix;
  matrix.conditions = all_test_conditions(tech_);
  matrix.defects.assign(defects.begin(), defects.end());
  matrix.r_high = options_.r_high;

  // Retention is judged on the CS1 worst-case cell at the matrix corner.
  const CaseStudy cs1 = case_study(1, true);
  const CoreCell cell(tech_, cs1.variation, options_.corner);
  const double drv = drv_hold(cell, cs1.attacked_bit(), options_.temp_c);

  // One executor task per valid (condition, defect) entry; invalid
  // conditions are never probed (a healthy SRAM would fail there) and keep
  // the "not detectable" sentinel.
  struct Task {
    std::size_t ci = 0;
    std::size_t di = 0;
  };
  std::vector<Task> tasks;
  matrix.rmin.resize(matrix.conditions.size());
  for (std::size_t ci = 0; ci < matrix.conditions.size(); ++ci) {
    matrix.rmin[ci].assign(matrix.defects.size(), options_.r_high * 2.0);
    if (!condition_valid(matrix.conditions[ci])) continue;
    for (std::size_t di = 0; di < matrix.defects.size(); ++di)
      tasks.push_back({ci, di});
  }

  struct Slot {
    double rmin = 0.0;
    bool ok = false;
    bool failed = false;  // quarantined (q holds the record)
    QuarantinedPoint q;
    SolveTelemetry solves;
    double wall_s = 0.0;
  };
  std::vector<Slot> slots(tasks.size());

  // Stable task identity (condition index x defect) — also the campaign
  // journal key for the entry.
  const auto key_of = [&](std::size_t t) {
    return fold_key(fold_key(0x7461626c653349ULL,  // "table3I"
                             tasks[t].ci),
                    static_cast<std::uint64_t>(matrix.defects[tasks[t].di]));
  };

  // Campaign manifest: the condition grid, defect list and every knob that
  // shapes an entry. A journal recorded under different options is refused.
  if (options_.campaign) {
    std::uint64_t fp = fold_key(0x7461626c653349ULL, tasks.size());
    for (const TestCondition& tc : matrix.conditions) {
      fp = fold_key(fp, key_bits(tc.vdd));
      fp = fold_key(fp, static_cast<std::uint64_t>(tc.vref));
      fp = fold_key(fp, key_bits(tc.ds_time));
    }
    for (const DefectId id : matrix.defects)
      fp = fold_key(fp, static_cast<std::uint64_t>(id));
    fp = fold_key(fp, static_cast<std::uint64_t>(options_.corner));
    for (const double v : {options_.temp_c, options_.r_low, options_.r_high,
                           options_.rel_tolerance, worst_drv_, options_.guard,
                           drv})
      fp = fold_key(fp, key_bits(v));
    options_.campaign->bind_sweep(0x7461626c653349ULL, fp);
  }

  SolveCache cache;
  SweepExecutorOptions exec_options;
  exec_options.threads = options_.threads;
  SweepExecutor executor(exec_options);

  // One characterizer per worker slot: instances carry mutable solve state
  // and must not be shared across concurrent tasks.
  std::vector<std::unique_ptr<RegulatorCharacterizer>> workers(
      static_cast<std::size_t>(executor.threads()));
  ArrayLoadModel::Options load;
  load.total_cells = 256 * 1024;

  const auto started = std::chrono::steady_clock::now();
  const auto body = [&](std::size_t t, int worker) {
    const Task& task = tasks[t];
    const TestCondition& tc = matrix.conditions[task.ci];
    const DefectId id = matrix.defects[task.di];
    Slot& slot = slots[t];

    const std::uint64_t task_key = key_of(t);
    const ScopedTaskObserver task_scope(task_key);
    const auto task_started = std::chrono::steady_clock::now();

    auto& characterizer = workers[static_cast<std::size_t>(worker)];
    if (!characterizer) {
      characterizer =
          std::make_unique<RegulatorCharacterizer>(tech_, load, options_.flip);
      if (options_.cancel) {
        // Cancel token reaches every Newton iteration of every probe solve.
        RetryLadderOptions policy;
        policy.cancel = options_.cancel;
        characterizer->set_solve_policy(policy);
      }
    }
    characterizer->set_solve_cache(options_.solve_cache ? &cache : nullptr,
                                   task_key);
    const SolveTelemetry before = characterizer->solve_telemetry();

    try {
      poll_cancel(options_.cancel, "FlowOptimizer", 0, 0.0);

      DsCondition condition;
      condition.corner = options_.corner;
      condition.vdd = tc.vdd;
      condition.vref = tc.vref;
      condition.temp_c = options_.temp_c;
      condition.ds_time = tc.ds_time;
      slot.rmin = monotone_threshold_log(
          [&](double ohms) {
            return characterizer->causes_drf(condition, id, ohms, drv);
          },
          options_.r_low, options_.r_high, options_.rel_tolerance);
      slot.ok = true;
    } catch (const Error& e) {
      if (!options_.quarantine) throw;
      slot.failed = true;
      slot.q = quarantined_point(tc.str() + " x Df" + std::to_string(id), e);
    }

    slot.solves = telemetry_delta(before, characterizer->solve_telemetry());
    slot.wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - task_started)
                      .count();
  };

  // Journal payload per entry: outcome + deterministic solve counters.
  CampaignTaskCodec codec;
  codec.encode = [&slots](std::size_t t) {
    const Slot& slot = slots[t];
    PayloadWriter out;
    out.u8(slot.ok ? 1 : 0);
    if (slot.ok)
      out.f64(slot.rmin);
    else
      encode_quarantine(out, slot.q);
    encode_telemetry(out, slot.solves);
    return out.take();
  };
  codec.decode = [&slots](std::size_t t, PayloadReader& in) {
    Slot& slot = slots[t];
    slot.ok = in.u8() != 0;
    if (slot.ok) {
      slot.rmin = in.f64();
    } else {
      slot.failed = true;
      slot.q = decode_quarantine(in);
    }
    slot.solves = decode_telemetry(in);
  };

  run_campaign(executor, options_.campaign,
               options_.solve_cache ? &cache : nullptr, tasks.size(), key_of,
               body, codec);

  // (condition, defect)-ordered reduction, matching the serial loop.
  matrix.telemetry.tasks = tasks.size();
  matrix.telemetry.threads = executor.threads();
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    const Task& task = tasks[t];
    const Slot& slot = slots[t];
    matrix.telemetry.solves.merge(slot.solves);
    matrix.telemetry.cpu_s += slot.wall_s;
    if (slot.ok) {
      matrix.rmin[task.ci][task.di] = slot.rmin;
      matrix.sweep.add_success();
    } else {
      // Leave the "not detectable" sentinel in place and record the entry
      // so coverage accounting stays honest.
      matrix.sweep.quarantine(slot.q);
    }
  }
  matrix.telemetry.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  return matrix;
}

OptimizedFlow FlowOptimizer::optimize(const DetectionMatrix& matrix) const {
  return options_.strategy == FlowStrategy::PaperPerVddLevel
             ? optimize_paper(matrix)
             : optimize_greedy(matrix);
}

namespace {

// Per-defect global best Rmin over all conditions of the matrix.
std::vector<double> global_best(const DetectionMatrix& matrix) {
  std::vector<double> best(matrix.defects.size(), matrix.r_high * 2.0);
  for (const auto& row : matrix.rmin)
    for (std::size_t di = 0; di < best.size(); ++di)
      best[di] = std::min(best[di], row[di]);
  return best;
}

}  // namespace

OptimizedFlow FlowOptimizer::optimize_paper(const DetectionMatrix& matrix) const {
  OptimizedFlow flow;
  flow.naive_iterations = matrix.conditions.size();

  const std::vector<double> best = global_best(matrix);
  for (std::size_t di = 0; di < matrix.defects.size(); ++di)
    if (best[di] > matrix.r_high)
      flow.undetectable.push_back(matrix.defects[di]);

  // Collect the distinct VDD levels present in the matrix, ascending.
  std::vector<double> vdds;
  for (const TestCondition& tc : matrix.conditions)
    if (std::find(vdds.begin(), vdds.end(), tc.vdd) == vdds.end())
      vdds.push_back(tc.vdd);
  std::sort(vdds.begin(), vdds.end());

  for (const double vdd : vdds) {
    // The paper's setup rule: for this supply, the valid condition whose
    // expected Vreg sits closest above the worst-case DRV.
    std::size_t chosen = matrix.conditions.size();
    double chosen_vreg = 1e9;
    for (std::size_t ci = 0; ci < matrix.conditions.size(); ++ci) {
      const TestCondition& tc = matrix.conditions[ci];
      if (tc.vdd != vdd || !condition_valid(tc)) continue;
      if (tc.expected_vreg() < chosen_vreg) {
        chosen_vreg = tc.expected_vreg();
        chosen = ci;
      }
    }
    if (chosen == matrix.conditions.size()) continue;  // no valid Vref here

    FlowIteration iteration;
    iteration.condition = matrix.conditions[chosen];
    for (std::size_t di = 0; di < matrix.defects.size(); ++di) {
      const double r = matrix.rmin[chosen][di];
      if (r <= matrix.r_high) iteration.detected.push_back(matrix.defects[di]);
      if (r <= matrix.r_high && r <= options_.best_margin * best[di])
        iteration.maximized.push_back(matrix.defects[di]);
    }
    flow.iterations.push_back(std::move(iteration));
  }

  if (flow.iterations.empty())
    throw Error("FlowOptimizer: no valid test condition at any VDD level");
  return flow;
}

OptimizedFlow FlowOptimizer::optimize_greedy(const DetectionMatrix& matrix) const {
  OptimizedFlow flow;

  const std::size_t n_cond = matrix.conditions.size();
  const std::size_t n_def = matrix.defects.size();

  // Global best Rmin per defect over valid conditions.
  std::vector<double> best(n_def, matrix.r_high * 2.0);
  for (std::size_t ci = 0; ci < n_cond; ++ci)
    for (std::size_t di = 0; di < n_def; ++di)
      best[di] = std::min(best[di], matrix.rmin[ci][di]);

  // Coverage sets: condition ci covers defect di if it detects it near its
  // global best.
  std::vector<std::vector<bool>> covers(n_cond, std::vector<bool>(n_def));
  for (std::size_t ci = 0; ci < n_cond; ++ci)
    for (std::size_t di = 0; di < n_def; ++di)
      covers[ci][di] = matrix.rmin[ci][di] <= matrix.r_high &&
                       matrix.rmin[ci][di] <= options_.best_margin * best[di];

  std::vector<bool> needed(n_def, true);
  for (std::size_t di = 0; di < n_def; ++di) {
    if (best[di] > matrix.r_high) {
      needed[di] = false;  // undetectable everywhere
      flow.undetectable.push_back(matrix.defects[di]);
    }
  }

  // Greedy set cover; ties broken toward the condition with the lowest
  // expected Vreg (closest to the worst-case DRV — most sensitive).
  std::vector<bool> used(n_cond, false);
  while (true) {
    std::size_t remaining = 0;
    for (std::size_t di = 0; di < n_def; ++di)
      if (needed[di]) ++remaining;
    if (remaining == 0) break;

    std::size_t best_ci = n_cond;
    std::size_t best_gain = 0;
    double best_vreg = 1e9;
    for (std::size_t ci = 0; ci < n_cond; ++ci) {
      if (used[ci]) continue;
      std::size_t gain = 0;
      for (std::size_t di = 0; di < n_def; ++di)
        if (needed[di] && covers[ci][di]) ++gain;
      const double vreg = matrix.conditions[ci].expected_vreg();
      if (gain > best_gain || (gain == best_gain && gain > 0 && vreg < best_vreg)) {
        best_gain = gain;
        best_ci = ci;
        best_vreg = vreg;
      }
    }
    if (best_ci == n_cond || best_gain == 0)
      throw Error("FlowOptimizer: cannot cover all detectable defects");

    used[best_ci] = true;
    FlowIteration iteration;
    iteration.condition = matrix.conditions[best_ci];
    for (std::size_t di = 0; di < n_def; ++di) {
      if (covers[best_ci][di]) {
        iteration.maximized.push_back(matrix.defects[di]);
        needed[di] = false;
      }
      if (matrix.rmin[best_ci][di] <= matrix.r_high)
        iteration.detected.push_back(matrix.defects[di]);
    }
    flow.iterations.push_back(std::move(iteration));
  }

  flow.naive_iterations = n_cond;
  return flow;
}

}  // namespace lpsram
