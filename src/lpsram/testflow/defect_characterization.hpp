// Table II engine: for each regulator defect and each case study, find the
// minimal resistive-open value that causes a data retention fault in DS
// mode, together with the PVT condition that requires it.
#pragma once

#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "lpsram/regulator/characterize.hpp"
#include "lpsram/runtime/campaign.hpp"
#include "lpsram/runtime/quarantine.hpp"
#include "lpsram/testflow/case_studies.hpp"
#include "lpsram/testflow/pvt.hpp"

namespace lpsram {

// The paper's regulator setup rule (Section IV.A): pick the Vref level that
// puts the expected Vreg as close as possible to — but not lower than — the
// worst-case DRV_DS (so 1.2V -> 0.64*VDD, 1.1V -> 0.70*VDD, 1.0V -> 0.74*VDD
// for a ~730 mV worst-case DRV).
VrefLevel vref_for_vdd(double vdd, double worst_drv);

struct DefectCharacterizationOptions {
  std::vector<PvtPoint> pvt;        // empty = full 45-point grid
  double r_low = 1.0;               // search range [ohm]
  double r_high = 500e6;            // paper's "actual open" threshold
  double rel_tolerance = 1.05;      // bracket ratio of the bisection
  double ds_time = 1e-3;            // DS dwell per test (Table II setup)
  double worst_drv = 0.0;           // 0 = computed from CS1 internally
  FlipTimeModel flip{};
  // Graceful degradation: quarantine PVT points whose solves fail (after
  // the retry ladder) instead of aborting the sweep. The per-cell
  // DefectCsResult::sweep states the surviving coverage. Set false to make
  // the first failure propagate (fail-fast).
  bool quarantine = true;
  // Executor worker count for the (defect x case study x PVT) task grid:
  // 0 = automatic (LPSRAM_THREADS env, else hardware concurrency). Results
  // are bit-identical at any thread count.
  int threads = 0;
  // Warm-start each task's bisection probes from the task-scoped
  // operating-point SolveCache. Task scoping keeps parallel runs
  // deterministic; cache on/off may differ within solver tolerance.
  bool solve_cache = true;
  // Durable campaign (non-owning, may be null): completed (defect x CS x
  // PVT) tasks are journaled as they finish, and a resumed run replays
  // them from the journal — skipping the solves — with final tables
  // bit-identical to an uninterrupted run. The journal must have been
  // recorded with the same options (manifest fingerprint check).
  Campaign* campaign = nullptr;
  // Cooperative cancellation for every solve of the sweep (non-owning, may
  // be null): polled per Newton iteration; cancelled points quarantine as
  // SolveTimeout.
  const CancelToken* cancel = nullptr;
};

// One Table II cell: defect x case study.
struct DefectCsResult {
  DefectId id = 0;
  std::string cs_name;
  double min_resistance = 0.0;  // smallest R causing a DRF
  bool open_only = false;       // true = "> 500M" (no finite R below the cap)
  PvtPoint worst_pvt;           // the PVT needing the minimal resistance
  VrefLevel vref_at_worst = VrefLevel::V070;
  // Per-PVT-point solve accounting: which of the grid points this cell's
  // numbers actually cover, and which were quarantined with what error.
  SweepReport sweep;
  // Executor/cache/solve telemetry of this cell's PVT tasks. Inside table()
  // the per-cell wall_s is 0 (wall-clock is only meaningful per sweep and
  // lands in the table-wide total); characterize() fills it in.
  SweepTelemetry telemetry;

  // True when every PVT point of the grid was characterized.
  bool trusted() const noexcept { return sweep.complete(); }
};

class DefectCharacterizer {
 public:
  DefectCharacterizer(const Technology& tech,
                      DefectCharacterizationOptions options = {});

  // Min resistance for one defect under one case study (the -1 variant is
  // simulated; mirrors are symmetric). Every PVT point of the grid is an
  // independent executor task; the reduction over points runs afterwards in
  // grid order, so the result is bit-identical to a serial run.
  DefectCsResult characterize(DefectId id, const CaseStudy& cs) const;

  // Full Table II: rows = defects, columns = case studies. The whole
  // (defect x case study x PVT) grid is flattened into one executor run;
  // each cell's result is bit-identical to characterize(id, cs) called
  // alone. The table-wide telemetry (including wall-clock) lands in
  // `*total` when given.
  std::vector<std::vector<DefectCsResult>> table(
      std::span<const DefectId> defects,
      std::span<const CaseStudy> case_studies,
      SweepTelemetry* total = nullptr) const;

  const DefectCharacterizationOptions& options() const noexcept {
    return options_;
  }
  double worst_drv() const noexcept { return worst_drv_; }

 private:
  // DRV of the case-study cell at a given corner/temperature. Memoized
  // under a mutex: the cell-layer DRV search never touches the DC-solver
  // observer hooks, so its values are deterministic even under chaos and
  // safe to share across tasks.
  double cs_drv(const CaseStudy& cs, Corner corner, double temp_c) const;

  // Shared engine of characterize()/table(): runs the flattened task grid
  // and reduces each cell in PVT order. Cells are row-major over
  // (defects x case_studies); `total` (optional) receives the sweep-wide
  // telemetry including wall-clock.
  std::vector<std::vector<DefectCsResult>> run_cells(
      std::span<const DefectId> defects,
      std::span<const CaseStudy> case_studies, SweepTelemetry* total) const;

  Technology tech_;
  DefectCharacterizationOptions options_;
  double worst_drv_ = 0.0;
  // Per-CS DRV memo keyed by (cs index, corner, raw temp bits); guarded by
  // drv_mutex_ because executor tasks populate it concurrently. The
  // temperature keys on key_bits() like every campaign fingerprint — an
  // integer quantization (the old static_cast<int>(temp_c * 4)) truncates
  // toward zero and collides nearby temperatures (e.g. -0.1 C with +0.1 C).
  mutable std::mutex drv_mutex_;
  mutable std::map<std::tuple<int, int, std::uint64_t>, double> drv_cache_;
};

}  // namespace lpsram
