#include "lpsram/testflow/case_studies.hpp"

#include "lpsram/util/error.hpp"

namespace lpsram {

std::string CaseStudy::name() const {
  return "CS" + std::to_string(index) + (degrades_one ? "-1" : "-0");
}

CaseStudy case_study(int index, bool degrades_one) {
  CaseStudy cs;
  cs.index = index;
  cs.degrades_one = true;  // build the -1 pattern first, mirror at the end

  // Patterns from Table I (sigma units, signed-Vth convention).
  switch (index) {
    case 1:
      cs.variation.mpcc1 = -6;
      cs.variation.mncc1 = -6;
      cs.variation.mpcc2 = +6;
      cs.variation.mncc2 = +6;
      cs.variation.mncc3 = -6;
      cs.variation.mncc4 = +6;
      break;
    case 2:
      cs.variation.mpcc1 = -3;
      cs.variation.mncc1 = -3;
      break;
    case 3:
      cs.variation.mpcc2 = +3;
      cs.variation.mncc2 = +3;
      break;
    case 4:
      cs.variation.mpcc2 = +0.1;
      cs.variation.mncc2 = +0.1;
      break;
    case 5:
      cs.variation.mpcc1 = -3;
      cs.variation.mncc1 = -3;
      cs.cell_count = 64;  // one weak cell per 8 bit lines (out of 256K)
      break;
    default:
      throw InvalidArgument("case_study: index must be 1..5");
  }

  if (!degrades_one) {
    cs.degrades_one = false;
    cs.variation = cs.variation.mirrored();
  }
  return cs;
}

std::vector<CaseStudy> paper_case_studies() {
  std::vector<CaseStudy> all;
  for (int i = 1; i <= 5; ++i) {
    all.push_back(case_study(i, true));
    all.push_back(case_study(i, false));
  }
  return all;
}

std::vector<CaseStudy> table2_case_studies() {
  std::vector<CaseStudy> list;
  for (int i = 1; i <= 5; ++i) list.push_back(case_study(i, true));
  return list;
}

CaseStudyDrv characterize_case_study(const Technology& tech,
                                     const CaseStudy& cs) {
  CaseStudyDrv row;
  row.cs = cs;
  row.worst = drv_ds_worst(tech, cs.variation);
  return row;
}

}  // namespace lpsram
