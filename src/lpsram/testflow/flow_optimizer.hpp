// Test-flow optimization (paper Section V, Table III).
//
// The naive flow runs March m-LZ at all 12 combinations of VDD (1.0/1.1/1.2)
// and Vref (4 levels). The optimizer builds a detection matrix — minimal
// DRF-causing resistance per defect under each *valid* condition (expected
// Vreg not below the worst-case DRV, otherwise a healthy SRAM would fail) —
// and greedily picks the smallest set of conditions such that every defect
// is exercised at (or near) its most detectable condition. The paper's
// result: 3 iterations, a 75% test-time reduction.
#pragma once

#include <span>
#include <vector>

#include "lpsram/march/executor.hpp"
#include "lpsram/testflow/defect_characterization.hpp"

namespace lpsram {

// One candidate test condition = one potential iteration of the flow.
struct TestCondition {
  double vdd = 1.1;
  VrefLevel vref = VrefLevel::V070;
  double ds_time = 1e-3;

  double expected_vreg() const noexcept { return vdd * vref_fraction(vref); }
  std::string str() const;
};

// All 12 VDD x Vref combinations.
std::vector<TestCondition> all_test_conditions(const Technology& tech);

// Minimal DRF-causing resistance per (condition, defect).
struct DetectionMatrix {
  std::vector<TestCondition> conditions;
  std::vector<DefectId> defects;
  // rmin[c][d]; values > r_high mean "not detectable under this condition".
  std::vector<std::vector<double>> rmin;
  double r_high = 500e6;
  // Solve accounting for the probed (condition, defect) entries: quarantined
  // entries read as "not detectable" in rmin and are listed here so the
  // optimized flow states what fraction of the matrix it trusts.
  SweepReport sweep;
  // Executor/cache/solve telemetry of the matrix build.
  SweepTelemetry telemetry;
};

struct FlowIteration {
  TestCondition condition;
  // Defects whose detection this iteration maximizes (within margin of the
  // globally smallest Rmin).
  std::vector<DefectId> maximized;
  // Every defect this iteration can detect at all.
  std::vector<DefectId> detected;
};

struct OptimizedFlow {
  std::vector<FlowIteration> iterations;
  std::size_t naive_iterations = 12;
  // Defects undetectable under every valid condition (e.g. pure gate
  // defects) — excluded from the coverage requirement.
  std::vector<DefectId> undetectable;

  // Test-time reduction vs the naive flow, e.g. 0.75 for 3 of 12.
  double time_reduction(const MarchTest& test, std::size_t words,
                        double cycle_time) const;
};

// How to turn the detection matrix into a flow.
enum class FlowStrategy {
  // The paper's Table III construction: one iteration per VDD level, each
  // using the lowest Vref whose expected Vreg still clears the worst-case
  // DRV — the supply itself is a test condition, so every VDD corner is
  // exercised once. Yields 3 iterations (75% reduction vs 12).
  PaperPerVddLevel,
  // Unconstrained greedy set cover: the smallest set of conditions such
  // that every detectable defect is exercised at (or near) its most
  // detectable condition. May beat the paper's iteration count when defect
  // optima coincide.
  GreedyMinimal,
};

struct FlowOptimizerOptions {
  double worst_drv = 0.0;    // 0 = computed from CS1
  double guard = 0.0;        // extra margin above worst_drv for validity
  double best_margin = 2.0;  // "maximized" = rmin <= margin * global best
  Corner corner = Corner::FastNSlowP;  // matrix characterization corner
  double temp_c = 125.0;               // paper: test at high temperature
  double ds_time = 1e-3;
  double r_low = 1.0;
  double r_high = 500e6;
  double rel_tolerance = 1.05;
  FlowStrategy strategy = FlowStrategy::PaperPerVddLevel;
  FlipTimeModel flip{};
  // Quarantine failing matrix entries instead of aborting the build (the
  // entry then reads "not detectable"); false = fail-fast.
  bool quarantine = true;
  // Executor worker count for the (condition x defect) probe grid: 0 =
  // automatic. Results are bit-identical at any thread count.
  int threads = 0;
  // Warm-start each probe's bisection from the task-scoped SolveCache.
  bool solve_cache = true;
  // Durable campaign (non-owning, may be null): completed (condition x
  // defect) entries are journaled as they finish; a resumed build_matrix
  // replays them and produces a matrix bit-identical to an uninterrupted
  // run. The journal must carry the same options (manifest fingerprint).
  Campaign* campaign = nullptr;
  // Cooperative cancellation for every probe solve (non-owning, may be
  // null): polled per Newton iteration; cancelled entries quarantine as
  // SolveTimeout.
  const CancelToken* cancel = nullptr;
};

class FlowOptimizer {
 public:
  using Options = FlowOptimizerOptions;

  explicit FlowOptimizer(const Technology& tech, Options options = {});

  // Builds the detection matrix for the given defects, judging retention of
  // the CS1 worst-case cell. Each valid (condition, defect) entry is an
  // independent executor task; the reduction runs in (condition, defect)
  // order, so the matrix is bit-identical at any thread count.
  DetectionMatrix build_matrix(std::span<const DefectId> defects) const;

  // Builds the flow per the configured strategy.
  OptimizedFlow optimize(const DetectionMatrix& matrix) const;
  // The two strategies, invokable directly.
  OptimizedFlow optimize_paper(const DetectionMatrix& matrix) const;
  OptimizedFlow optimize_greedy(const DetectionMatrix& matrix) const;

  double worst_drv() const noexcept { return worst_drv_; }
  const Options& options() const noexcept { return options_; }

 private:
  bool condition_valid(const TestCondition& condition) const noexcept;

  Technology tech_;
  Options options_;
  double worst_drv_ = 0.0;
};

}  // namespace lpsram
