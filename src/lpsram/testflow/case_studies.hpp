// The paper's five case studies of Vth variation inside core-cells
// (Table I). CSx-1 degrades SNM_DS1 (retention of '1'); CSx-0 is the exact
// mirror pattern degrading SNM_DS0. CS5 applies the CS2 pattern to 64 cells
// (one per 8 bit lines) to expose the load-interaction effect on the
// regulator.
#pragma once

#include <string>
#include <vector>

#include "lpsram/cell/drv.hpp"

namespace lpsram {

struct CaseStudy {
  int index = 1;            // 1..5
  bool degrades_one = true; // true = CSx-1, false = CSx-0
  std::size_t cell_count = 1;
  CellVariation variation;

  std::string name() const;  // "CS1-1"
  // The stored value whose retention the case study attacks.
  StoredBit attacked_bit() const noexcept {
    return degrades_one ? StoredBit::One : StoredBit::Zero;
  }
};

// A single case study by index/variant (throws for index outside 1..5).
CaseStudy case_study(int index, bool degrades_one);

// All ten rows of Table I, in paper order.
std::vector<CaseStudy> paper_case_studies();

// The five CSx-1 variants (what Table II simulates; the CSx-0 mirrors give
// identical numbers by symmetry).
std::vector<CaseStudy> table2_case_studies();

// Characterized case study: the Table I row.
struct CaseStudyDrv {
  CaseStudy cs;
  PvtDrvResult worst;  // max over the PVT grid with argmax conditions
  double drv_ds() const noexcept { return worst.drv.drv(); }
};

// Computes the DRV row for one case study over the full corner/temperature
// grid (supply scaling is what the DRV search itself does).
CaseStudyDrv characterize_case_study(const Technology& tech,
                                     const CaseStudy& cs);

}  // namespace lpsram
