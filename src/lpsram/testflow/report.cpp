#include "lpsram/testflow/report.hpp"

#include <cstdio>

#include "lpsram/util/table.hpp"
#include "lpsram/util/units.hpp"

namespace lpsram {

std::string fig4_report(std::span<const Fig4Point> points) {
  AsciiTable table({"Transistor", "Vth var (sigma)", "DRV_DS1 (mV)",
                    "DRV_DS0 (mV)"});
  CellTransistor last = CellTransistor::MPcc1;
  bool first = true;
  for (const Fig4Point& p : points) {
    if (!first && p.transistor != last) table.add_separator();
    first = false;
    last = p.transistor;
    char sigma[32];
    std::snprintf(sigma, sizeof(sigma), "%+.1f", p.sigma);
    table.add_row({cell_transistor_name(p.transistor), sigma,
                   millivolt_format(p.drv1), millivolt_format(p.drv0)});
  }
  return table.str();
}

std::string table1_report(std::span<const CaseStudyDrv> rows) {
  AsciiTable table({"Case study", "#cells", "MPcc1", "MNcc1", "MPcc2", "MNcc2",
                    "MNcc3", "MNcc4", "DRV_DS0 (mV)", "DRV_DS1 (mV)",
                    "DRV_DS (mV)"});
  auto sig = [](double s) {
    if (s == 0.0) return std::string("0");
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%+gs", s);
    return std::string(buf);
  };
  for (const CaseStudyDrv& row : rows) {
    const CellVariation& v = row.cs.variation;
    table.add_row({row.cs.name(), std::to_string(row.cs.cell_count),
                   sig(v.mpcc1), sig(v.mncc1), sig(v.mpcc2), sig(v.mncc2),
                   sig(v.mncc3), sig(v.mncc4),
                   millivolt_format(row.worst.drv.drv0),
                   millivolt_format(row.worst.drv.drv1),
                   millivolt_format(row.drv_ds())});
  }
  return table.str();
}

std::string table2_report(
    const std::vector<std::vector<DefectCsResult>>& rows,
    std::span<const CaseStudy> case_studies, double open_threshold) {
  std::vector<std::string> header = {"Def."};
  for (const CaseStudy& cs : case_studies) {
    header.push_back(cs.name() + " MinRes");
    header.push_back(cs.name() + " PVT");
  }
  AsciiTable table(std::move(header));
  for (const auto& row : rows) {
    if (row.empty()) continue;
    std::vector<std::string> cells = {defect_name(row.front().id)};
    for (const DefectCsResult& r : row) {
      if (r.open_only) {
        cells.push_back("> " + eng_format(open_threshold, 0));
        cells.push_back("-");
      } else {
        cells.push_back(eng_format(r.min_resistance, 2));
        cells.push_back(pvt_name(r.worst_pvt));
      }
    }
    table.add_row(std::move(cells));
  }
  return table.str();
}

SweepReport table2_coverage(
    const std::vector<std::vector<DefectCsResult>>& rows) {
  SweepReport total;
  for (const auto& row : rows)
    for (const DefectCsResult& r : row) total.merge(r.sweep);
  return total;
}

std::string coverage_report(
    const std::vector<std::vector<DefectCsResult>>& rows) {
  AsciiTable table({"Def.", "CS", "Coverage", "Status"});
  for (const auto& row : rows) {
    for (const DefectCsResult& r : row) {
      char coverage[32];
      std::snprintf(coverage, sizeof(coverage), "%zu/%zu",
                    r.sweep.completed(), r.sweep.attempted());
      table.add_row({defect_name(r.id), r.cs_name, coverage,
                     r.trusted() ? "ok" : "PARTIAL"});
    }
  }
  std::string out = table.str();
  const SweepReport total = table2_coverage(rows);
  out += total.summary();
  out += "\n";
  return out;
}

std::string table3_report(const OptimizedFlow& flow, const MarchTest& test,
                          std::size_t words, double cycle_time) {
  AsciiTable table({"Iter.", "VDD", "Vref", "Vreg", "DS time",
                    "Detection maximized for"});
  for (std::size_t i = 0; i < flow.iterations.size(); ++i) {
    const FlowIteration& it = flow.iterations[i];
    char vdd[16], vreg[16], ds[16];
    std::snprintf(vdd, sizeof(vdd), "%.1fV", it.condition.vdd);
    std::snprintf(vreg, sizeof(vreg), "%.3fV", it.condition.expected_vreg());
    std::snprintf(ds, sizeof(ds), "%.0fms", it.condition.ds_time * 1e3);
    std::string defects;
    for (std::size_t d = 0; d < it.maximized.size(); ++d) {
      if (d) defects += ",";
      defects += defect_name(it.maximized[d]);
    }
    table.add_row({std::to_string(i + 1), vdd, vref_name(it.condition.vref),
                   vreg, ds, defects});
  }
  std::string out = table.str();
  char summary[256];
  std::snprintf(summary, sizeof(summary),
                "%s (%s) x %zu iterations vs %zu naive: %.0f%% test time "
                "reduction\n",
                test.name.c_str(), test.complexity().c_str(),
                flow.iterations.size(), flow.naive_iterations,
                100.0 * flow.time_reduction(test, words, cycle_time));
  out += summary;
  if (!flow.undetectable.empty()) {
    out += "undetectable (negligible) defects:";
    for (const DefectId id : flow.undetectable) out += " " + defect_name(id);
    out += "\n";
  }
  return out;
}

}  // namespace lpsram
