#include "lpsram/testflow/defect_characterization.hpp"

#include <algorithm>
#include <chrono>

#include "lpsram/cell/batch_vtc.hpp"
#include "lpsram/spice/batch_transient.hpp"
#include "lpsram/spice/dc_solver.hpp"
#include "lpsram/spice/hooks.hpp"
#include "lpsram/util/error.hpp"
#include "lpsram/util/rootfind.hpp"
#include "lpsram/util/simd.hpp"

namespace lpsram {

VrefLevel vref_for_vdd(double vdd, double worst_drv) {
  // Lowest Vref whose expected Vreg still clears the worst-case DRV.
  VrefLevel best = VrefLevel::V078;
  double best_vreg = vdd * vref_fraction(best);
  for (const VrefLevel level : kAllVrefLevels) {
    const double vreg = vdd * vref_fraction(level);
    if (vreg >= worst_drv && vreg < best_vreg) {
      best = level;
      best_vreg = vreg;
    }
  }
  return best;
}

DefectCharacterizer::DefectCharacterizer(const Technology& tech,
                                         DefectCharacterizationOptions options)
    : tech_(tech), options_(std::move(options)) {
  if (options_.pvt.empty()) options_.pvt = full_pvt_grid(tech_);
  worst_drv_ = options_.worst_drv;
  if (worst_drv_ <= 0.0) {
    const CaseStudyDrv cs1 = characterize_case_study(tech_, case_study(1, true));
    worst_drv_ = cs1.drv_ds();
  }
}

double DefectCharacterizer::cs_drv(const CaseStudy& cs, Corner corner,
                                   double temp_c) const {
  const auto key =
      std::make_tuple(cs.index, static_cast<int>(corner), key_bits(temp_c));
  // Computed under the lock: the DRV search is deterministic and observer-
  // free, and holding the lock avoids duplicate work when two tasks race to
  // the same (cs, corner, temp) entry.
  const std::lock_guard<std::mutex> lock(drv_mutex_);
  const auto found = drv_cache_.find(key);
  if (found != drv_cache_.end()) return found->second;

  const CoreCell cell(tech_, cs.variation, corner);
  const double drv = drv_hold(cell, cs.attacked_bit(), temp_c);
  drv_cache_.emplace(key, drv);
  return drv;
}

std::vector<std::vector<DefectCsResult>> DefectCharacterizer::run_cells(
    std::span<const DefectId> defects, std::span<const CaseStudy> case_studies,
    SweepTelemetry* total) const {
  // One task per (defect, case study, PVT point); each task bisects the
  // whole resistance range independently. (PR 1's early-skip against the
  // running minimum was inherently order-dependent and is gone: tasks must
  // not observe each other's results for the parallel reduction to be
  // bit-identical to the serial one.)
  struct Task {
    std::size_t cell = 0;       // row-major index into (defects x cs)
    DefectId id = 0;
    const CaseStudy* cs = nullptr;
    std::size_t pvt_index = 0;
  };
  const std::size_t grid = options_.pvt.size();
  std::vector<Task> tasks;
  tasks.reserve(defects.size() * case_studies.size() * grid);
  for (std::size_t d = 0; d < defects.size(); ++d)
    for (std::size_t c = 0; c < case_studies.size(); ++c)
      for (std::size_t p = 0; p < grid; ++p)
        tasks.push_back(
            {d * case_studies.size() + c, defects[d], &case_studies[c], p});

  struct Slot {
    bool detectable = false;   // threshold found below r_high
    double threshold = 0.0;
    VrefLevel vref = VrefLevel::V070;
    bool failed = false;       // quarantined failure (q holds the record)
    QuarantinedPoint q;
    SolveTelemetry solves;
    double wall_s = 0.0;
  };
  std::vector<Slot> slots(tasks.size());

  // Task identity: a pure function of what the task computes, shared by
  // characterize() and table() so both produce identical cells — and stable
  // across runs, which is what lets a campaign journal replay it.
  const auto key_of = [&tasks](std::size_t t) {
    const Task& task = tasks[t];
    return fold_key(
        fold_key(fold_key(fold_key(0x7461626c653249ULL,  // "table2I"
                                   static_cast<std::uint64_t>(task.id)),
                          static_cast<std::uint64_t>(task.cs->index)),
                 task.cs->degrades_one ? 1u : 0u),
        task.pvt_index);
  };

  // Campaign manifest: everything that shapes a task's result. Resuming a
  // journal recorded with a different grid or tolerance must be refused,
  // not silently mixed.
  if (options_.campaign) {
    std::uint64_t fp = fold_key(0x7461626c653249ULL, tasks.size());
    for (const DefectId id : defects)
      fp = fold_key(fp, static_cast<std::uint64_t>(id));
    for (const CaseStudy& cs : case_studies)
      fp = fold_key(fold_key(fp, static_cast<std::uint64_t>(cs.index)),
                    cs.degrades_one ? 1u : 0u);
    for (const PvtPoint& pvt : options_.pvt) {
      fp = fold_key(fp, static_cast<std::uint64_t>(pvt.corner));
      fp = fold_key(fp, key_bits(pvt.vdd));
      fp = fold_key(fp, key_bits(pvt.temp_c));
    }
    for (const double v :
         {options_.r_low, options_.r_high, options_.rel_tolerance,
          options_.ds_time, worst_drv_})
      fp = fold_key(fp, key_bits(v));
    // The cell-analysis kernel feeding the cached DRVs: batched DRV
    // extraction agrees with the scalar oracle except within solver noise
    // of the retention fold, so mixing kernels across a resume is refused
    // outright rather than silently blending near-identical tables.
    fp = fold_key(fp,
                  static_cast<std::uint64_t>(resolved_cell_kernel()));
    // Likewise the SIMD backend kind and the transient batching kind: both
    // perturb thresholds within solver noise, so a resume must not mix
    // journals recorded under different kernels.
    fp = fold_key(fp, static_cast<std::uint64_t>(resolved_simd_kind()));
    fp = fold_key(fp,
                  static_cast<std::uint64_t>(resolved_transient_batch_kind()));
    options_.campaign->bind_sweep(0x7461626c653249ULL, fp);
  }

  SolveCache cache;
  SweepExecutorOptions exec_options;
  exec_options.threads = options_.threads;
  SweepExecutor executor(exec_options);

  // Worker-slot-private characterizers, one per case study actually touched
  // (the weak cells of the case study load the regulator, so instances
  // cannot be shared across case studies — nor across workers, as they
  // carry mutable solve state).
  struct WorkerState {
    std::map<int, std::unique_ptr<RegulatorCharacterizer>> chars;
  };
  std::vector<WorkerState> workers(
      static_cast<std::size_t>(executor.threads()));

  const auto characterizer_for = [&](int worker,
                                     const CaseStudy& cs) -> RegulatorCharacterizer& {
    auto& chars = workers[static_cast<std::size_t>(worker)].chars;
    auto found = chars.find(cs.index);
    if (found == chars.end()) {
      ArrayLoadModel::Options load;
      load.total_cells = 256 * 1024;
      load.weak_cells = cs.cell_count > 1 ? cs.cell_count : 0;
      if (load.weak_cells > 0) {
        // Weak-cell DRV for the load model: typical-corner hot value.
        load.weak_drv = cs_drv(cs, Corner::Typical, 125.0);
      }
      found = chars
                  .emplace(cs.index, std::make_unique<RegulatorCharacterizer>(
                                         tech_, load, options_.flip))
                  .first;
      if (options_.cancel) {
        // Thread the campaign's cancel token into every retry-ladder solve
        // of this characterizer (polled per Newton iteration).
        RetryLadderOptions policy;
        policy.cancel = options_.cancel;
        found->second->set_solve_policy(policy);
      }
    }
    return *found->second;
  };

  const auto started = std::chrono::steady_clock::now();
  const auto body = [&](std::size_t t, int worker) {
    const Task& task = tasks[t];
    const CaseStudy& cs = *task.cs;
    const PvtPoint& pvt = options_.pvt[task.pvt_index];
    Slot& slot = slots[t];

    const std::uint64_t task_key = key_of(t);
    const ScopedTaskObserver task_scope(task_key);
    const auto task_started = std::chrono::steady_clock::now();

    RegulatorCharacterizer& characterizer = characterizer_for(worker, cs);
    characterizer.set_solve_cache(options_.solve_cache ? &cache : nullptr,
                                  task_key);
    const SolveTelemetry before = characterizer.solve_telemetry();

    try {
      // A cancel that lands between tasks skips the whole point up front
      // (the per-iteration polls inside the Newton loops handle mid-solve).
      poll_cancel(options_.cancel, "DefectCharacterizer", 0, 0.0);

      DsCondition condition;
      condition.corner = pvt.corner;
      condition.vdd = pvt.vdd;
      condition.vref = vref_for_vdd(pvt.vdd, worst_drv_);
      condition.temp_c = pvt.temp_c;
      condition.ds_time = options_.ds_time;
      slot.vref = condition.vref;

      const double drv = cs_drv(cs, pvt.corner, pvt.temp_c);
      // Gate-site defects batch each bisection round's speculative probes
      // into one lockstep transient run (characterize.hpp); everything else
      // is the scalar monotone_threshold_log over causes_drf.
      const double r = characterizer.drf_threshold(
          condition, task.id, options_.r_low, options_.r_high,
          options_.rel_tolerance, drv);
      if (r <= options_.r_high) {
        slot.detectable = true;
        slot.threshold = r;
      }
    } catch (const Error& e) {
      if (!options_.quarantine) throw;  // executor: fail fast, rethrow first
      slot.failed = true;
      slot.q = quarantined_point("Df" + std::to_string(task.id) + " x " +
                                     cs.name() + " @ " + pvt_name(pvt),
                                 e);
    }

    slot.solves = telemetry_delta(before, characterizer.solve_telemetry());
    slot.wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - task_started)
                      .count();
  };

  // Slot payload for the campaign journal: outcome + deterministic solve
  // counters (timings are outside the resume determinism contract).
  CampaignTaskCodec codec;
  codec.encode = [&slots](std::size_t t) {
    const Slot& slot = slots[t];
    PayloadWriter out;
    out.u8(slot.failed ? 2 : slot.detectable ? 1 : 0);
    if (slot.failed) {
      encode_quarantine(out, slot.q);
    } else if (slot.detectable) {
      out.f64(slot.threshold);
      out.u8(static_cast<std::uint8_t>(slot.vref));
    }
    encode_telemetry(out, slot.solves);
    return out.take();
  };
  codec.decode = [&slots](std::size_t t, PayloadReader& in) {
    Slot& slot = slots[t];
    switch (in.u8()) {
      case 2:
        slot.failed = true;
        slot.q = decode_quarantine(in);
        break;
      case 1:
        slot.detectable = true;
        slot.threshold = in.f64();
        slot.vref = static_cast<VrefLevel>(in.u8());
        break;
      default:
        break;  // ran clean, threshold above r_high
    }
    slot.solves = decode_telemetry(in);
  };

  run_campaign(executor, options_.campaign,
               options_.solve_cache ? &cache : nullptr, tasks.size(), key_of,
               body, codec);

  // Index-ordered reduction: PVT-grid order within each cell, exactly the
  // order the serial loop used.
  std::vector<std::vector<DefectCsResult>> rows(defects.size());
  for (std::size_t d = 0; d < defects.size(); ++d) {
    rows[d].resize(case_studies.size());
    for (std::size_t c = 0; c < case_studies.size(); ++c) {
      DefectCsResult& result = rows[d][c];
      result.id = defects[d];
      result.cs_name = case_studies[c].name();
      result.min_resistance = options_.r_high * 2.0;
      result.open_only = true;
      result.telemetry.tasks = grid;
      result.telemetry.threads = executor.threads();
    }
  }
  SweepTelemetry sweep;
  sweep.tasks = tasks.size();
  sweep.threads = executor.threads();
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    const Task& task = tasks[t];
    const Slot& slot = slots[t];
    DefectCsResult& result = rows[task.cell / case_studies.size()]
                                 [task.cell % case_studies.size()];
    const PvtPoint& pvt = options_.pvt[task.pvt_index];

    result.telemetry.solves.merge(slot.solves);
    result.telemetry.cpu_s += slot.wall_s;
    sweep.solves.merge(slot.solves);
    sweep.cpu_s += slot.wall_s;

    if (slot.failed) {
      // Partial results beat none: record the point as untrusted and keep
      // the rest of the grid.
      result.sweep.quarantine(slot.q);
      continue;
    }
    result.sweep.add_success();
    if (slot.detectable && slot.threshold < result.min_resistance) {
      result.min_resistance = slot.threshold;
      result.open_only = false;
      result.worst_pvt = pvt;
      result.vref_at_worst = slot.vref;
    }
  }
  for (auto& row : rows)
    for (DefectCsResult& result : row)
      if (result.open_only) result.min_resistance = options_.r_high;

  sweep.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  if (total) *total = sweep;
  return rows;
}

DefectCsResult DefectCharacterizer::characterize(DefectId id,
                                                 const CaseStudy& cs) const {
  SweepTelemetry total;
  std::vector<std::vector<DefectCsResult>> rows =
      run_cells({&id, 1}, {&cs, 1}, &total);
  DefectCsResult result = std::move(rows[0][0]);
  result.telemetry.wall_s = total.wall_s;  // single cell: sweep == cell
  return result;
}

std::vector<std::vector<DefectCsResult>> DefectCharacterizer::table(
    std::span<const DefectId> defects, std::span<const CaseStudy> case_studies,
    SweepTelemetry* total) const {
  return run_cells(defects, case_studies, total);
}

}  // namespace lpsram
