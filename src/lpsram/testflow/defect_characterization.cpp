#include "lpsram/testflow/defect_characterization.hpp"

#include <algorithm>

#include "lpsram/util/error.hpp"
#include "lpsram/util/rootfind.hpp"

namespace lpsram {

VrefLevel vref_for_vdd(double vdd, double worst_drv) {
  // Lowest Vref whose expected Vreg still clears the worst-case DRV.
  VrefLevel best = VrefLevel::V078;
  double best_vreg = vdd * vref_fraction(best);
  for (const VrefLevel level : kAllVrefLevels) {
    const double vreg = vdd * vref_fraction(level);
    if (vreg >= worst_drv && vreg < best_vreg) {
      best = level;
      best_vreg = vreg;
    }
  }
  return best;
}

DefectCharacterizer::DefectCharacterizer(const Technology& tech,
                                         DefectCharacterizationOptions options)
    : tech_(tech), options_(std::move(options)) {
  if (options_.pvt.empty()) options_.pvt = full_pvt_grid(tech_);
  worst_drv_ = options_.worst_drv;
  if (worst_drv_ <= 0.0) {
    const CaseStudyDrv cs1 = characterize_case_study(tech_, case_study(1, true));
    worst_drv_ = cs1.drv_ds();
  }
}

double DefectCharacterizer::cs_drv(const CaseStudy& cs, Corner corner,
                                   double temp_c) const {
  const auto key = std::make_tuple(cs.index, static_cast<int>(corner),
                                   static_cast<int>(temp_c * 4));
  const auto found = drv_cache_.find(key);
  if (found != drv_cache_.end()) return found->second;

  const CoreCell cell(tech_, cs.variation, corner);
  const double drv = drv_hold(cell, cs.attacked_bit(), temp_c);
  drv_cache_.emplace(key, drv);
  return drv;
}

DefectCsResult DefectCharacterizer::characterize(DefectId id,
                                                 const CaseStudy& cs) const {
  // Per-case-study characterizer: the weak cells load the regulator (CS5).
  auto found = chars_.find(cs.index);
  if (found == chars_.end()) {
    ArrayLoadModel::Options load;
    load.total_cells = 256 * 1024;
    load.weak_cells = cs.cell_count > 1 ? cs.cell_count : 0;
    if (load.weak_cells > 0) {
      // Weak-cell DRV for the load model: typical-corner hot value.
      load.weak_drv = cs_drv(cs, Corner::Typical, 125.0);
    }
    found = chars_
                .emplace(cs.index, std::make_unique<RegulatorCharacterizer>(
                                       tech_, load, options_.flip))
                .first;
  }
  const RegulatorCharacterizer& characterizer = *found->second;

  DefectCsResult result;
  result.id = id;
  result.cs_name = cs.name();
  result.min_resistance = options_.r_high * 2.0;
  result.open_only = true;

  for (const PvtPoint& pvt : options_.pvt) {
    const auto characterize_point = [&] {
      DsCondition condition;
      condition.corner = pvt.corner;
      condition.vdd = pvt.vdd;
      condition.vref = vref_for_vdd(pvt.vdd, worst_drv_);
      condition.temp_c = pvt.temp_c;
      condition.ds_time = options_.ds_time;

      const double drv = cs_drv(cs, pvt.corner, pvt.temp_c);

      auto drf_at = [&](double ohms) {
        return characterizer.causes_drf(condition, id, ohms, drv);
      };

      // Early skip: if the current best resistance does not cause a DRF at
      // this PVT point, its own minimum lies above the best — monotonicity
      // lets us skip the whole search.
      if (!result.open_only && !drf_at(result.min_resistance)) return;

      const double r = monotone_threshold_log(drf_at, options_.r_low,
                                              options_.r_high,
                                              options_.rel_tolerance);
      if (r > options_.r_high) return;  // undetectable at this PVT

      if (r < result.min_resistance) {
        result.min_resistance = r;
        result.open_only = false;
        result.worst_pvt = pvt;
        result.vref_at_worst = condition.vref;
      }
    };

    if (!options_.quarantine) {
      characterize_point();
      result.sweep.add_success();
      continue;
    }
    try {
      characterize_point();
      result.sweep.add_success();
    } catch (const Error& e) {
      // Partial results beat none: record the point as untrusted and keep
      // sweeping the rest of the grid.
      result.sweep.quarantine(
          "Df" + std::to_string(id) + " x " + cs.name() + " @ " + pvt_name(pvt),
          e);
    }
  }

  if (result.open_only) result.min_resistance = options_.r_high;
  return result;
}

std::vector<std::vector<DefectCsResult>> DefectCharacterizer::table(
    std::span<const DefectId> defects,
    std::span<const CaseStudy> case_studies) const {
  std::vector<std::vector<DefectCsResult>> rows;
  rows.reserve(defects.size());
  for (const DefectId id : defects) {
    std::vector<DefectCsResult> row;
    row.reserve(case_studies.size());
    for (const CaseStudy& cs : case_studies) row.push_back(characterize(id, cs));
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace lpsram
