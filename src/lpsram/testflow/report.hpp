// Rendering of the reproduced paper artifacts (Table I/II/III, Fig. 4) as
// ASCII tables, shared by the bench harnesses and examples.
#pragma once

#include <span>
#include <string>

#include "lpsram/testflow/flow_optimizer.hpp"

namespace lpsram {

// Fig. 4: DRV vs per-transistor Vth variation.
struct Fig4Point {
  CellTransistor transistor = CellTransistor::MPcc1;
  double sigma = 0.0;  // variation in sigma units
  double drv1 = 0.0;   // worst-case DRV_DS1 over corners x temps [V]
  double drv0 = 0.0;   // worst-case DRV_DS0 [V]
};

std::string fig4_report(std::span<const Fig4Point> points);

// Table I: case studies with their DRV_DS0 / DRV_DS1 / DRV_DS.
std::string table1_report(std::span<const CaseStudyDrv> rows);

// Table II: min defect resistance per defect x case study with worst PVT.
std::string table2_report(
    const std::vector<std::vector<DefectCsResult>>& rows,
    std::span<const CaseStudy> case_studies, double open_threshold = 500e6);

// Table III: the optimized flow.
std::string table3_report(const OptimizedFlow& flow, const MarchTest& test,
                          std::size_t words, double cycle_time);

// Aggregated solve coverage of a Table II run (folds every cell's per-point
// SweepReport into one).
SweepReport table2_coverage(const std::vector<std::vector<DefectCsResult>>& rows);

// Per-cell quarantine status of a Table II run: coverage per defect x case
// study plus the quarantined-point details — the partial-results contract
// made visible. Cells with full coverage print "ok".
std::string coverage_report(const std::vector<std::vector<DefectCsResult>>& rows);

}  // namespace lpsram
