#include "lpsram/spice/dc_solver.hpp"

#include <algorithm>
#include <cmath>

#include "lpsram/util/error.hpp"

namespace lpsram {

DcSolver::DcSolver(const Netlist& netlist, double temp_c, DcOptions options)
    : netlist_(netlist), assembler_(netlist, temp_c), options_(options) {}

bool DcSolver::newton(std::vector<double>& x, double gmin,
                      int* iterations_out) const {
  Matrix jacobian(assembler_.dimension(), assembler_.dimension());
  std::vector<double> residual;

  for (int it = 0; it < options_.max_iterations; ++it) {
    assembler_.assemble(x, jacobian, residual, gmin);

    // Solve J * dx = -F.
    std::vector<double> rhs(residual.size());
    for (std::size_t i = 0; i < residual.size(); ++i) rhs[i] = -residual[i];
    std::vector<double> dx;
    try {
      dx = solve_linear_system(jacobian, rhs);
    } catch (const ConvergenceError&) {
      return false;  // singular system at this point; let caller escalate
    }

    // Damped update: limit voltage steps to keep the exponential device
    // models inside their sane range.
    double max_dv = 0.0;
    const std::size_t n_nodes = netlist_.node_count() - 1;
    for (std::size_t i = 0; i < n_nodes; ++i)
      max_dv = std::max(max_dv, std::fabs(dx[i]));
    const double scale =
        max_dv > options_.step_limit ? options_.step_limit / max_dv : 1.0;
    for (std::size_t i = 0; i < dx.size(); ++i) x[i] += scale * dx[i];
    for (std::size_t i = 0; i < n_nodes; ++i)
      x[i] = std::clamp(x[i], options_.v_min, options_.v_max);

    if (iterations_out) *iterations_out = it + 1;

    // Converged when the full (unscaled) Newton step is tiny — at that point
    // the residual is quadratically small as well.
    if (max_dv < options_.v_tolerance) return true;
  }
  return false;
}

DcResult DcSolver::solve(const std::vector<double>* initial_guess) const {
  std::vector<double> x(assembler_.dimension(), 0.0);
  if (initial_guess) {
    if (initial_guess->size() != x.size())
      throw InvalidArgument("DcSolver: initial guess size mismatch");
    x = *initial_guess;
  }

  DcResult result;

  // Strategy 1: plain Newton from the given guess.
  int iters = 0;
  if (newton(x, options_.gmin, &iters)) {
    result.converged = true;
    result.iterations = iters;
    result.x = std::move(x);
    result.node_v = assembler_.node_voltages(result.x);
    return result;
  }

  // Strategy 2: gmin stepping — start heavily damped toward ground and relax.
  if (options_.allow_gmin_stepping) {
    std::vector<double> xg(assembler_.dimension(), 0.0);
    bool ok = true;
    for (double g = 1e-3; g >= options_.gmin; g *= 0.1) {
      if (!newton(xg, g, &iters)) {
        ok = false;
        break;
      }
    }
    if (ok && newton(xg, options_.gmin, &iters)) {
      result.converged = true;
      result.iterations = iters;
      result.x = std::move(xg);
      result.node_v = assembler_.node_voltages(result.x);
      return result;
    }
  }

  // Strategy 3: source stepping — ramp all sources from zero.
  if (options_.allow_source_stepping) {
    std::vector<std::pair<ElementId, double>> vsources;
    std::vector<std::pair<ElementId, double>> isources;
    for (std::size_t ei = 0; ei < netlist_.element_count(); ++ei) {
      const Element& el = netlist_.element(static_cast<ElementId>(ei));
      if (const auto* v = std::get_if<VSource>(&el.body))
        vsources.push_back({static_cast<ElementId>(ei), v->volts});
      else if (const auto* i = std::get_if<ISource>(&el.body))
        isources.push_back({static_cast<ElementId>(ei), i->amps});
    }
    // We need mutability: const_cast is confined here and values are restored
    // before returning (the netlist is observably unchanged).
    Netlist& mutable_netlist = const_cast<Netlist&>(netlist_);
    std::vector<double> xs(assembler_.dimension(), 0.0);
    bool ok = true;
    for (double scale : {0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
      for (const auto& [id, volts] : vsources)
        mutable_netlist.set_source_voltage(id, volts * scale);
      for (const auto& [id, amps] : isources)
        mutable_netlist.set_source_current(id, amps * scale);
      if (!newton(xs, options_.gmin, &iters)) {
        ok = false;
        break;
      }
    }
    // Restore original source values.
    for (const auto& [id, volts] : vsources)
      mutable_netlist.set_source_voltage(id, volts);
    for (const auto& [id, amps] : isources)
      mutable_netlist.set_source_current(id, amps);

    if (ok) {
      result.converged = true;
      result.iterations = iters;
      result.x = std::move(xs);
      result.node_v = assembler_.node_voltages(result.x);
      return result;
    }
  }

  // Strategy 4: heavily damped Newton — slow but settles limit cycles caused
  // by sharp nonlinearities (e.g. a regulator driven deep into collapse).
  {
    DcOptions damped = options_;
    damped.step_limit = 0.02;
    damped.max_iterations = 2000;
    DcSolver damped_solver(netlist_, assembler_.temperature(), damped);
    std::vector<double> xd(assembler_.dimension(), 0.0);
    if (initial_guess) xd = *initial_guess;
    int iters = 0;
    if (damped_solver.newton(xd, options_.gmin, &iters)) {
      result.converged = true;
      result.iterations = iters;
      result.x = std::move(xd);
      result.node_v = assembler_.node_voltages(result.x);
      return result;
    }
  }

  throw ConvergenceError(
      "DcSolver: failed to find a DC operating point (plain Newton, gmin "
      "stepping, source stepping and damped Newton all diverged)");
}

double DcSolver::voltage(const DcResult& result, NodeId node) const {
  return assembler_.node_voltage(result.x, node);
}

double DcSolver::source_current(const DcResult& result, ElementId vsrc) const {
  return assembler_.vsource_current(result.x, vsrc);
}

DcResult solve_dc(const Netlist& netlist, double temp_c,
                  const DcOptions& options,
                  const std::vector<double>* initial_guess) {
  return DcSolver(netlist, temp_c, options).solve(initial_guess);
}

}  // namespace lpsram
