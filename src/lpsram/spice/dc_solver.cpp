#include "lpsram/spice/dc_solver.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "lpsram/spice/hooks.hpp"
#include "lpsram/util/error.hpp"

namespace lpsram {
namespace {

// Restores source values if a solve strategy exits early (including by an
// exception thrown from a progress callback or observer).
class SourceRestorer {
 public:
  SourceRestorer(Netlist& netlist,
                 const std::vector<std::pair<ElementId, double>>& vsources,
                 const std::vector<std::pair<ElementId, double>>& isources)
      : netlist_(netlist), vsources_(vsources), isources_(isources) {}
  ~SourceRestorer() {
    for (const auto& [id, volts] : vsources_) netlist_.set_source_voltage(id, volts);
    for (const auto& [id, amps] : isources_) netlist_.set_source_current(id, amps);
  }

 private:
  Netlist& netlist_;
  const std::vector<std::pair<ElementId, double>>& vsources_;
  const std::vector<std::pair<ElementId, double>>& isources_;
};

bool all_finite(const std::vector<double>& values) {
  for (const double v : values)
    if (!std::isfinite(v)) return false;
  return true;
}

}  // namespace

DcSolver::DcSolver(const Netlist& netlist, double temp_c, DcOptions options)
    : netlist_(netlist), assembler_(netlist, temp_c), options_(std::move(options)) {}

bool DcSolver::newton(std::vector<double>& x, double gmin,
                      NewtonStats* stats) const {
  Matrix jacobian(assembler_.dimension(), assembler_.dimension());
  std::vector<double> residual;

  for (int it = 0; it < options_.max_iterations; ++it) {
    assembler_.assemble(x, jacobian, residual, gmin);

    if (SolverObserver* observer = solver_observer()) {
      NewtonEvent event;
      event.iteration = it;
      event.gmin = gmin;
      event.jacobian = &jacobian;
      event.residual = &residual;
      observer->on_newton_iteration(event);
    }

    double max_residual = 0.0;
    const std::size_t n_nodes = netlist_.node_count() - 1;
    for (std::size_t i = 0; i < n_nodes; ++i)
      max_residual = std::max(max_residual, std::fabs(residual[i]));
    if (stats) {
      stats->iterations = it + 1;
      stats->max_residual = max_residual;
    }

    // A non-finite residual (device model blow-up or injected fault) can
    // never converge — bail out so the caller escalates instead of burning
    // the whole iteration budget on NaN arithmetic.
    if (!all_finite(residual)) return false;

    // Solve J * dx = -F.
    std::vector<double> rhs(residual.size());
    for (std::size_t i = 0; i < residual.size(); ++i) rhs[i] = -residual[i];
    std::vector<double> dx;
    try {
      dx = solve_linear_system(jacobian, rhs);
    } catch (const ConvergenceError&) {
      return false;  // singular system at this point; let caller escalate
    }

    // Damped update: limit voltage steps to keep the exponential device
    // models inside their sane range.
    double max_dv = 0.0;
    for (std::size_t i = 0; i < n_nodes; ++i)
      max_dv = std::max(max_dv, std::fabs(dx[i]));
    if (!std::isfinite(max_dv)) return false;
    const double scale =
        max_dv > options_.step_limit ? options_.step_limit / max_dv : 1.0;
    for (std::size_t i = 0; i < dx.size(); ++i) x[i] += scale * dx[i];
    for (std::size_t i = 0; i < n_nodes; ++i)
      x[i] = std::clamp(x[i], options_.v_min, options_.v_max);

    if (options_.progress) {
      NewtonProgress progress;
      progress.iteration = it + 1;
      progress.max_dv = max_dv;
      progress.max_residual = max_residual;
      options_.progress(progress);  // may throw (deadline enforcement)
    }

    // Converged when the full (unscaled) Newton step is tiny — at that point
    // the residual is quadratically small as well.
    if (max_dv < options_.v_tolerance) return true;
  }
  return false;
}

ResidualReport DcSolver::residual_report(const std::vector<double>& x) const {
  Matrix jacobian(assembler_.dimension(), assembler_.dimension());
  std::vector<double> residual;
  assembler_.assemble(x, jacobian, residual, options_.gmin);

  ResidualReport report;
  std::size_t worst_row = 0;
  const std::size_t n_nodes = netlist_.node_count() - 1;
  for (std::size_t i = 0; i < n_nodes; ++i) {
    const double magnitude =
        std::isfinite(residual[i]) ? std::fabs(residual[i]) : HUGE_VAL;
    if (magnitude >= report.worst) {
      report.worst = magnitude;
      worst_row = i;
    }
  }
  // Node row i corresponds to node id i+1 (ground is eliminated).
  report.node = netlist_.node_name(static_cast<NodeId>(worst_row + 1));
  return report;
}

DcResult DcSolver::solve(const std::vector<double>* initial_guess) const {
  if (SolverObserver* observer = solver_observer()) observer->on_solve_begin();

  std::vector<double> x(assembler_.dimension(), 0.0);
  if (initial_guess) {
    if (initial_guess->size() != x.size())
      throw InvalidArgument("DcSolver: initial guess size mismatch");
    x = *initial_guess;
  }

  DcResult result;
  int total_iterations = 0;

  // Strategy 1: plain Newton from the given guess.
  NewtonStats stats;
  if (newton(x, options_.gmin, &stats)) {
    result.converged = true;
    result.iterations = stats.iterations;
    result.x = std::move(x);
    result.node_v = assembler_.node_voltages(result.x);
    return result;
  }
  total_iterations += stats.iterations;
  std::vector<double> best = x;  // best-effort estimate for diagnostics

  // Strategy 2: gmin stepping — start heavily damped toward ground and relax.
  if (options_.allow_gmin_stepping) {
    std::vector<double> xg(assembler_.dimension(), 0.0);
    bool ok = true;
    for (double g = 1e-3; g >= options_.gmin; g *= 0.1) {
      if (!newton(xg, g, &stats)) {
        ok = false;
        break;
      }
    }
    total_iterations += stats.iterations;
    if (ok && newton(xg, options_.gmin, &stats)) {
      result.converged = true;
      result.iterations = stats.iterations;
      result.x = std::move(xg);
      result.node_v = assembler_.node_voltages(result.x);
      return result;
    }
    total_iterations += ok ? stats.iterations : 0;
  }

  // Strategy 3: source stepping — ramp all sources from zero.
  if (options_.allow_source_stepping) {
    std::vector<std::pair<ElementId, double>> vsources;
    std::vector<std::pair<ElementId, double>> isources;
    for (std::size_t ei = 0; ei < netlist_.element_count(); ++ei) {
      const Element& el = netlist_.element(static_cast<ElementId>(ei));
      if (const auto* v = std::get_if<VSource>(&el.body))
        vsources.push_back({static_cast<ElementId>(ei), v->volts});
      else if (const auto* i = std::get_if<ISource>(&el.body))
        isources.push_back({static_cast<ElementId>(ei), i->amps});
    }
    // We need mutability: const_cast is confined here and values are restored
    // before returning (the netlist is observably unchanged). The RAII guard
    // also restores if a progress callback or observer throws mid-ramp.
    Netlist& mutable_netlist = const_cast<Netlist&>(netlist_);
    const SourceRestorer restore(mutable_netlist, vsources, isources);
    std::vector<double> xs(assembler_.dimension(), 0.0);
    bool ok = true;
    for (double scale : {0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
      for (const auto& [id, volts] : vsources)
        mutable_netlist.set_source_voltage(id, volts * scale);
      for (const auto& [id, amps] : isources)
        mutable_netlist.set_source_current(id, amps * scale);
      if (!newton(xs, options_.gmin, &stats)) {
        ok = false;
        break;
      }
    }
    total_iterations += stats.iterations;

    if (ok) {
      result.converged = true;
      result.iterations = stats.iterations;
      result.x = std::move(xs);
      result.node_v = assembler_.node_voltages(result.x);
      return result;
    }
  }

  // Strategy 4: heavily damped Newton — slow but settles limit cycles caused
  // by sharp nonlinearities (e.g. a regulator driven deep into collapse).
  // A fallback like the others: skipped when the caller disabled them (the
  // retry ladder's pure-Newton rungs must stay cheap and predictable).
  if (options_.allow_gmin_stepping || options_.allow_source_stepping) {
    DcOptions damped = options_;
    damped.step_limit = 0.02;
    // Small steps need proportionally more iterations; scale the configured
    // budget instead of overriding it so per-attempt caps stay meaningful.
    damped.max_iterations = options_.max_iterations * 20;
    DcSolver damped_solver(netlist_, assembler_.temperature(), damped);
    std::vector<double> xd(assembler_.dimension(), 0.0);
    if (initial_guess) xd = *initial_guess;
    if (damped_solver.newton(xd, options_.gmin, &stats)) {
      result.converged = true;
      result.iterations = stats.iterations;
      result.x = std::move(xd);
      result.node_v = assembler_.node_voltages(result.x);
      return result;
    }
    total_iterations += stats.iterations;
    best = std::move(xd);
  }

  const ResidualReport report = residual_report(best);
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "DcSolver: failed to find a DC operating point (plain Newton, "
                "gmin stepping, source stepping and damped Newton all "
                "diverged after %d iterations; worst residual %.3e A at node "
                "'%s')",
                total_iterations, report.worst, report.node.c_str());
  throw ConvergenceError(buf);
}

double DcSolver::voltage(const DcResult& result, NodeId node) const {
  return assembler_.node_voltage(result.x, node);
}

double DcSolver::source_current(const DcResult& result, ElementId vsrc) const {
  return assembler_.vsource_current(result.x, vsrc);
}

DcResult solve_dc(const Netlist& netlist, double temp_c,
                  const DcOptions& options,
                  const std::vector<double>* initial_guess) {
  return DcSolver(netlist, temp_c, options).solve(initial_guess);
}

}  // namespace lpsram
