#include "lpsram/spice/dc_solver.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>

#include "lpsram/spice/hooks.hpp"
#include "lpsram/util/error.hpp"

namespace lpsram {

namespace {
std::atomic<LinearSolverKind> g_default_linear_solver{LinearSolverKind::Sparse};
}  // namespace

LinearSolverKind default_linear_solver() noexcept {
  return g_default_linear_solver.load(std::memory_order_relaxed);
}

LinearSolverKind set_default_linear_solver(LinearSolverKind kind) noexcept {
  if (kind == LinearSolverKind::Auto) kind = LinearSolverKind::Sparse;
  return g_default_linear_solver.exchange(kind, std::memory_order_relaxed);
}

namespace {

// Restores source values if a solve strategy exits early (including by an
// exception thrown from a progress callback or observer).
class SourceRestorer {
 public:
  SourceRestorer(Netlist& netlist,
                 const std::vector<std::pair<ElementId, double>>& vsources,
                 const std::vector<std::pair<ElementId, double>>& isources)
      : netlist_(netlist), vsources_(vsources), isources_(isources) {}
  ~SourceRestorer() {
    for (const auto& [id, volts] : vsources_) netlist_.set_source_voltage(id, volts);
    for (const auto& [id, amps] : isources_) netlist_.set_source_current(id, amps);
  }

 private:
  Netlist& netlist_;
  const std::vector<std::pair<ElementId, double>>& vsources_;
  const std::vector<std::pair<ElementId, double>>& isources_;
};

bool all_finite(const std::vector<double>& values) {
  for (const double v : values)
    if (!std::isfinite(v)) return false;
  return true;
}

enum class StepOutcome { Continue, Converged, Abort };

// Shared tail of a Newton iteration, identical for the sparse and dense
// kernels: damp the step, clamp node voltages, report progress, test
// convergence. Keeping this in one place is what guarantees the two kernels
// walk the same iterate sequence whenever their linear solves agree.
// `residual_converged` is the secondary (SPICE ABSTOL-style) acceptance:
// every KCL/branch residual is already below residual_tolerance, so the
// system is solved even if dv cannot show it. On a high-impedance node (a
// near-open defect in series with gmin) the voltage is only determined to
// ~|Z|*eps*I — the Newton step there is pure rounding noise that can sit
// above v_tolerance forever. The sparse kernel passes the real test; the
// dense kernel passes `false` to keep its iterate sequence bit-identical
// to the original implementation.
StepOutcome apply_damped_step(const DcOptions& options, std::size_t n_nodes,
                              const std::vector<double>& dx,
                              std::vector<double>& x, int it,
                              double max_residual,
                              bool residual_converged) {
  // Damped update: limit voltage steps to keep the exponential device
  // models inside their sane range.
  double max_dv = 0.0;
  for (std::size_t i = 0; i < n_nodes; ++i)
    max_dv = std::max(max_dv, std::fabs(dx[i]));
  if (!std::isfinite(max_dv)) return StepOutcome::Abort;
  const double scale =
      max_dv > options.step_limit ? options.step_limit / max_dv : 1.0;
  for (std::size_t i = 0; i < dx.size(); ++i) x[i] += scale * dx[i];
  for (std::size_t i = 0; i < n_nodes; ++i)
    x[i] = std::clamp(x[i], options.v_min, options.v_max);

  if (options.progress) {
    NewtonProgress progress;
    progress.iteration = it + 1;
    progress.max_dv = max_dv;
    progress.max_residual = max_residual;
    options.progress(progress);  // may throw (deadline enforcement)
  }

  // Converged when the full (unscaled) Newton step is tiny — at that point
  // the residual is quadratically small as well — or when the residual test
  // already passed.
  return (max_dv < options.v_tolerance || residual_converged)
             ? StepOutcome::Converged
             : StepOutcome::Continue;
}

// Max |residual| over every row (KCL rows in amps, branch rows in volts).
double max_abs(const std::vector<double>& v) {
  double m = 0.0;
  for (const double e : v) m = std::max(m, std::fabs(e));
  return m;
}

// Cooperative cancellation poll, shared by the DC and transient Newton
// kernels. Cancellation surfaces through the same SolveTimeout channel as
// deadline expiry so every quarantine/retry path already handles it; the
// `cancelled` flag in the info tells the two apart.
[[noreturn]] void throw_cancelled(const char* where, int iterations,
                                  double worst_residual) {
  SolveFailureInfo info;
  info.cancelled = true;
  info.iterations = iterations;
  info.worst_residual = worst_residual;
  throw SolveTimeout(std::string(where) +
                         ": solve cancelled by CancelToken mid-Newton",
                     info);
}

}  // namespace

void poll_cancel(const CancelToken* cancel, const char* where, int iterations,
                 double worst_residual) {
  if (cancel && cancel->cancelled())
    throw_cancelled(where, iterations, worst_residual);
}

DcSolver::DcSolver(const Netlist& netlist, double temp_c, DcOptions options)
    : netlist_(netlist), assembler_(netlist, temp_c), options_(std::move(options)) {}

LinearSolverKind DcSolver::resolved_solver() const noexcept {
  return options_.linear_solver == LinearSolverKind::Auto
             ? default_linear_solver()
             : options_.linear_solver;
}

bool DcSolver::newton(std::vector<double>& x, double gmin,
                      NewtonStats* stats) const {
  return resolved_solver() == LinearSolverKind::Dense
             ? newton_dense(x, gmin, stats)
             : newton_sparse(x, gmin, stats);
}

// Structure-aware kernel: symbolic stamp plan + frozen linear base + numeric
// LU refactor, all in preallocated workspace storage — the steady-state
// iteration performs zero heap allocations.
bool DcSolver::newton_sparse(std::vector<double>& x, double gmin,
                             NewtonStats* stats) const {
  const std::size_t n_nodes = netlist_.node_count() - 1;
  // A caller-provided workspace carries the symbolic analysis (plan binding,
  // LU pivot order and fill) across DcSolver instances; otherwise use the
  // per-solver scratch.
  NewtonWorkspace& ws =
      options_.shared_workspace ? *options_.shared_workspace : ws_;

  for (int it = 0; it < options_.max_iterations; ++it) {
    poll_cancel(options_.cancel, "DcSolver", it,
                stats ? stats->max_residual : 0.0);
    assembler_.assemble_sparse(x, gmin, ws);

    if (SolverObserver* observer = solver_observer()) {
      SparseJacobianView view(ws.jacobian);
      NewtonEvent event;
      event.iteration = it;
      event.gmin = gmin;
      event.jacobian = &view;
      event.residual = &ws.residual;
      observer->on_newton_iteration(event);
    }

    // One fused pass over the residual: the node-row maximum (stats and
    // progress contract), the all-row maximum (convergence criterion), the
    // finiteness check and the RHS negation all touch the same vector.
    double max_residual = 0.0;    // node rows only
    double worst_residual = 0.0;  // every row, branch equations included
    bool finite = true;
    const std::size_t dim = ws.residual.size();
    for (std::size_t i = 0; i < dim; ++i) {
      const double r = ws.residual[i];
      const double mag = std::fabs(r);
      if (!std::isfinite(mag)) finite = false;
      if (mag > worst_residual) worst_residual = mag;
      if (i < n_nodes && mag > max_residual) max_residual = mag;
      ws.rhs[i] = -r;
    }
    if (stats) {
      stats->iterations = it + 1;
      stats->max_residual = max_residual;
    }

    // A non-finite residual (device model blow-up or injected fault) can
    // never converge — bail out so the caller escalates instead of burning
    // the whole iteration budget on NaN arithmetic.
    if (!finite) {
      if (stats) stats->non_finite = true;
      return false;
    }

    // Solve J * dx = -F, refining only in the endgame (see
    // kSparseRefineDvThreshold): the plain solve runs first, and only a
    // step already small enough to be near the convergence tolerance is
    // worth polishing.
    try {
      ws.lu.factor(ws.jacobian);
      ws.lu.solve(ws.rhs, ws.dx);
      double max_step = 0.0;
      for (std::size_t i = 0; i < n_nodes; ++i)
        max_step = std::max(max_step, std::fabs(ws.dx[i]));
      if (max_step < kSparseRefineDvThreshold)
        ws.lu.refine_step(ws.jacobian, ws.rhs, ws.dx);
    } catch (const ConvergenceError&) {
      return false;  // singular system at this point; let caller escalate
    }

    const bool residual_ok = worst_residual < options_.residual_tolerance;
    switch (apply_damped_step(options_, n_nodes, ws.dx, x, it, max_residual,
                              residual_ok)) {
      case StepOutcome::Converged: return true;
      case StepOutcome::Abort:
        // Abort means a non-finite Newton step (see apply_damped_step).
        if (stats) stats->non_finite = true;
        return false;
      case StepOutcome::Continue: break;
    }
  }
  return false;
}

// Dense fallback kernel (and test oracle): original dense assembly + LU,
// minus the former per-iteration Jacobian copy (in-place factorization).
bool DcSolver::newton_dense(std::vector<double>& x, double gmin,
                            NewtonStats* stats) const {
  Matrix jacobian(assembler_.dimension(), assembler_.dimension());
  std::vector<double> residual;
  const std::size_t n_nodes = netlist_.node_count() - 1;

  for (int it = 0; it < options_.max_iterations; ++it) {
    poll_cancel(options_.cancel, "DcSolver", it,
                stats ? stats->max_residual : 0.0);
    assembler_.assemble(x, jacobian, residual, gmin);

    if (SolverObserver* observer = solver_observer()) {
      DenseJacobianView view(jacobian);
      NewtonEvent event;
      event.iteration = it;
      event.gmin = gmin;
      event.jacobian = &view;
      event.residual = &residual;
      observer->on_newton_iteration(event);
    }

    double max_residual = 0.0;
    for (std::size_t i = 0; i < n_nodes; ++i)
      max_residual = std::max(max_residual, std::fabs(residual[i]));
    if (stats) {
      stats->iterations = it + 1;
      stats->max_residual = max_residual;
    }

    if (!all_finite(residual)) {
      if (stats) stats->non_finite = true;
      return false;
    }

    // Solve J * dx = -F, factoring the Jacobian in place (it is rebuilt by
    // the next assemble anyway).
    std::vector<double> rhs(residual.size());
    for (std::size_t i = 0; i < residual.size(); ++i) rhs[i] = -residual[i];
    std::vector<double> dx;
    try {
      dx = solve_linear_system_in_place(jacobian, rhs);
    } catch (const ConvergenceError&) {
      return false;  // singular system at this point; let caller escalate
    }

    switch (apply_damped_step(options_, n_nodes, dx, x, it, max_residual,
                              /*residual_converged=*/false)) {
      case StepOutcome::Converged: return true;
      case StepOutcome::Abort:
        if (stats) stats->non_finite = true;
        return false;
      case StepOutcome::Continue: break;
    }
  }
  return false;
}

ResidualReport DcSolver::residual_report(const std::vector<double>& x) const {
  std::vector<double> residual;
  assembler_.assemble_residual(x, residual, options_.gmin);

  ResidualReport report;
  std::size_t worst_row = 0;
  const std::size_t n_nodes = netlist_.node_count() - 1;
  for (std::size_t i = 0; i < n_nodes; ++i) {
    if (!std::isfinite(residual[i])) report.non_finite = true;
    const double magnitude =
        std::isfinite(residual[i]) ? std::fabs(residual[i]) : HUGE_VAL;
    if (magnitude >= report.worst) {
      report.worst = magnitude;
      worst_row = i;
    }
  }
  // Node row i corresponds to node id i+1 (ground is eliminated).
  report.node = netlist_.node_name(static_cast<NodeId>(worst_row + 1));
  return report;
}

DcResult DcSolver::solve(const std::vector<double>* initial_guess) const {
  if (SolverObserver* observer = solver_observer()) observer->on_solve_begin();

  std::vector<double> x(assembler_.dimension(), 0.0);
  if (initial_guess) {
    if (initial_guess->size() != x.size())
      throw InvalidArgument("DcSolver: initial guess size mismatch");
    x = *initial_guess;
  }

  DcResult result;
  // Newton iterations summed across every attempt, successful or not. Each
  // newton() call's stats are folded in exactly once, immediately after the
  // call — the pre-fix code overwrote `stats` across the gmin ladder and
  // source ramp and only added the last attempt, so the ConvergenceError
  // message and DcResult::total_iterations under-counted the real work.
  int total_iterations = 0;
  bool any_non_finite = false;  // any attempt hit a NaN/Inf residual or step
  NewtonStats stats;
  const auto attempt = [&](DcSolver const& solver, std::vector<double>& xv,
                           double g) {
    stats.non_finite = false;
    const bool ok = solver.newton(xv, g, &stats);
    total_iterations += stats.iterations;
    any_non_finite = any_non_finite || stats.non_finite;
    return ok;
  };
  const auto finish = [&](std::vector<double>&& xv) {
    result.converged = true;
    result.iterations = stats.iterations;
    result.total_iterations = total_iterations;
    result.x = std::move(xv);
    result.node_v = assembler_.node_voltages(result.x);
    return result;
  };

  // Strategy 1: plain Newton from the given guess.
  if (attempt(*this, x, options_.gmin)) return finish(std::move(x));
  std::vector<double> best = x;  // best-effort estimate for diagnostics

  // Strategy 2: gmin stepping — start heavily damped toward ground and relax.
  if (options_.allow_gmin_stepping) {
    std::vector<double> xg(assembler_.dimension(), 0.0);
    bool ok = true;
    for (double g = 1e-3; g >= options_.gmin; g *= 0.1) {
      if (!attempt(*this, xg, g)) {
        ok = false;
        break;
      }
    }
    if (ok && attempt(*this, xg, options_.gmin)) return finish(std::move(xg));
  }

  // Strategy 3: source stepping — ramp all sources from zero.
  if (options_.allow_source_stepping) {
    std::vector<std::pair<ElementId, double>> vsources;
    std::vector<std::pair<ElementId, double>> isources;
    for (std::size_t ei = 0; ei < netlist_.element_count(); ++ei) {
      const Element& el = netlist_.element(static_cast<ElementId>(ei));
      if (const auto* v = std::get_if<VSource>(&el.body))
        vsources.push_back({static_cast<ElementId>(ei), v->volts});
      else if (const auto* i = std::get_if<ISource>(&el.body))
        isources.push_back({static_cast<ElementId>(ei), i->amps});
    }
    // We need mutability: const_cast is confined here and values are restored
    // before returning (the netlist is observably unchanged). The RAII guard
    // also restores if a progress callback or observer throws mid-ramp.
    Netlist& mutable_netlist = const_cast<Netlist&>(netlist_);
    const SourceRestorer restore(mutable_netlist, vsources, isources);
    std::vector<double> xs(assembler_.dimension(), 0.0);
    bool ok = true;
    for (double scale : {0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
      for (const auto& [id, volts] : vsources)
        mutable_netlist.set_source_voltage(id, volts * scale);
      for (const auto& [id, amps] : isources)
        mutable_netlist.set_source_current(id, amps * scale);
      if (!attempt(*this, xs, options_.gmin)) {
        ok = false;
        break;
      }
    }
    if (ok) return finish(std::move(xs));
  }

  // Strategy 4: heavily damped Newton — slow but settles limit cycles caused
  // by sharp nonlinearities (e.g. a regulator driven deep into collapse).
  // A fallback like the others: skipped when the caller disabled them (the
  // retry ladder's pure-Newton rungs must stay cheap and predictable).
  if (options_.allow_gmin_stepping || options_.allow_source_stepping) {
    DcOptions damped = options_;
    damped.step_limit = 0.02;
    // Small steps need proportionally more iterations; scale the configured
    // budget instead of overriding it so per-attempt caps stay meaningful.
    damped.max_iterations = options_.max_iterations * 20;
    DcSolver damped_solver(netlist_, assembler_.temperature(), damped);
    std::vector<double> xd(assembler_.dimension(), 0.0);
    if (initial_guess) xd = *initial_guess;
    if (attempt(damped_solver, xd, options_.gmin)) return finish(std::move(xd));
    best = std::move(xd);
  }

  const ResidualReport report = residual_report(best);
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "DcSolver: failed to find a DC operating point (plain Newton, "
                "gmin stepping, source stepping and damped Newton all "
                "diverged after %d iterations; worst residual %.3e A at node "
                "'%s'%s)",
                total_iterations, report.worst, report.node.c_str(),
                any_non_finite || report.non_finite ? "; non-finite residual"
                                                    : "");
  SolveFailureInfo info;
  info.iterations = total_iterations;
  info.worst_residual = report.worst;
  info.worst_node = report.node;
  info.non_finite = any_non_finite || report.non_finite;
  throw NewtonDivergence(buf, std::move(info));
}

double DcSolver::voltage(const DcResult& result, NodeId node) const {
  return assembler_.node_voltage(result.x, node);
}

double DcSolver::source_current(const DcResult& result, ElementId vsrc) const {
  return assembler_.vsource_current(result.x, vsrc);
}

DcResult solve_dc(const Netlist& netlist, double temp_c,
                  const DcOptions& options,
                  const std::vector<double>* initial_guess) {
  return DcSolver(netlist, temp_c, options).solve(initial_guess);
}

}  // namespace lpsram
