// Instrumentation hooks for the Newton DC solver.
//
// A single process-wide SolverObserver can be installed (RAII via
// ScopedSolverObserver); the DC solver reports every solve attempt and every
// Newton iteration to it. Observers may *mutate* the assembled system —
// that is the mechanism the runtime chaos harness uses to inject numerical
// faults (NaN residuals, singular Jacobians, iteration-cap breaches,
// artificial stalls) deterministically, without the solver knowing it is
// under test. Observers may also throw to abort a solve (the resilient
// runtime layer uses a per-options progress callback for its deadline, but
// an observer throw propagates identically).
//
// Threading model (PR 2): the global registry slot is atomic, so installing
// or removing an observer is race-free even while sweeps run. Observer
// *callbacks*, however, are not required to be thread-safe — a parallel
// sweep must not invoke one observer instance from many workers. The sweep
// executor therefore scopes every task with ScopedTaskObserver, which asks
// the installed session observer to fork_for_task() a task-private child
// (installed as a thread-local override) and merges it back when the task
// ends. An observer that does not implement fork_for_task() simply observes
// nothing inside executor tasks (the thread-local override is null); it
// still sees every solve issued outside of executor tasks.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lpsram/util/matrix.hpp"
#include "lpsram/util/sparse.hpp"

namespace lpsram {

// Representation-independent handle to the live Jacobian of a Newton
// iteration. Observers (chaos fault injection, TSan-exercised telemetry)
// mutate the system through this view so they behave identically whether the
// solver assembled a dense Matrix or the sparse CSR workspace — no dense
// copy is ever materialized for the hook's benefit. Mutations a view cannot
// express on a sparse pattern (writes to structurally absent entries) are
// deliberately not offered: fault injection targets what the solver will
// actually factor.
class JacobianView {
 public:
  virtual ~JacobianView() = default;
  virtual std::size_t dimension() const noexcept = 0;
  // Makes row r numerically zero (a structurally singular system for the
  // factorization that follows).
  virtual void zero_row(std::size_t r) noexcept = 0;
};

class DenseJacobianView final : public JacobianView {
 public:
  explicit DenseJacobianView(Matrix& m) noexcept : m_(&m) {}
  std::size_t dimension() const noexcept override { return m_->rows(); }
  void zero_row(std::size_t r) noexcept override {
    for (std::size_t c = 0; c < m_->cols(); ++c) (*m_)(r, c) = 0.0;
  }

 private:
  Matrix* m_;
};

class SparseJacobianView final : public JacobianView {
 public:
  explicit SparseJacobianView(SparseMatrix& m) noexcept : m_(&m) {}
  std::size_t dimension() const noexcept override { return m_->dimension(); }
  void zero_row(std::size_t r) noexcept override { m_->zero_row(r); }

 private:
  SparseMatrix* m_;
};

// One Newton iteration, observed after system assembly and before the linear
// solve. `jacobian` and `residual` are live and mutable.
struct NewtonEvent {
  int iteration = 0;  // 0-based within the current Newton attempt
  double gmin = 0.0;  // gmin in force for this attempt
  JacobianView* jacobian = nullptr;
  std::vector<double>* residual = nullptr;
};

class SolverObserver {
 public:
  virtual ~SolverObserver() = default;

  // Called once at the top of every DcSolver::solve call.
  virtual void on_solve_begin() {}

  // Called each Newton iteration after assembly; may mutate the system or
  // throw to abort the attempt.
  virtual void on_newton_iteration(NewtonEvent& event) { (void)event; }

  // Called by the resilient runtime layer before each retry-ladder attempt
  // (attempt 0 = first rung). Plain DcSolver use never emits this.
  virtual void on_ladder_attempt(int attempt, const std::string& strategy) {
    (void)attempt;
    (void)strategy;
  }

  // Parallel-sweep support: returns a task-private child observer for the
  // sweep task identified by `task_key`, or nullptr when the observer does
  // not support task scoping (the default). The child is driven by exactly
  // one worker thread for the task's lifetime and destroyed at task end —
  // its destructor is where counters merge back into the parent. The child's
  // behaviour must be a pure function of (parent state at fork, task_key) so
  // a sweep is bit-reproducible regardless of how tasks map onto threads.
  virtual std::unique_ptr<SolverObserver> fork_for_task(std::uint64_t task_key) {
    (void)task_key;
    return nullptr;
  }
};

// Observer visible to the calling thread: the thread-local task override
// when one is active (see ScopedTaskObserver), else the global session
// observer. The solvers consult this on every solve/iteration.
SolverObserver* solver_observer() noexcept;

// The globally installed session observer, ignoring any thread-local task
// override. This is what ScopedTaskObserver forks from.
SolverObserver* session_solver_observer() noexcept;

// Atomically installs `observer` (may be nullptr) as the session observer
// and returns the previous one. Safe to call while other threads solve.
SolverObserver* exchange_solver_observer(SolverObserver* observer) noexcept;

// RAII installation: restores the previous observer on destruction.
class ScopedSolverObserver {
 public:
  explicit ScopedSolverObserver(SolverObserver* observer)
      : previous_(exchange_solver_observer(observer)) {}
  ~ScopedSolverObserver() { exchange_solver_observer(previous_); }

  ScopedSolverObserver(const ScopedSolverObserver&) = delete;
  ScopedSolverObserver& operator=(const ScopedSolverObserver&) = delete;

 private:
  SolverObserver* previous_;
};

// RAII task scope for parallel sweeps: forks the session observer for
// `task_key` and installs the fork as this thread's observer override for
// the scope's lifetime (a null fork suppresses the session observer inside
// the scope — observer instances are not thread-safe and must not be shared
// across concurrently running tasks). Destroying the scope destroys the
// fork, which merges its telemetry back into the parent.
class ScopedTaskObserver {
 public:
  explicit ScopedTaskObserver(std::uint64_t task_key);
  ~ScopedTaskObserver();

  ScopedTaskObserver(const ScopedTaskObserver&) = delete;
  ScopedTaskObserver& operator=(const ScopedTaskObserver&) = delete;

  // The task-private fork (nullptr when the session observer is absent or
  // does not support forking).
  SolverObserver* fork() const noexcept { return fork_.get(); }

 private:
  std::unique_ptr<SolverObserver> fork_;
  SolverObserver* saved_observer_ = nullptr;
  bool saved_active_ = false;
};

}  // namespace lpsram
