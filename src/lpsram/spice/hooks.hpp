// Instrumentation hooks for the Newton DC solver.
//
// A single process-wide SolverObserver can be installed (RAII via
// ScopedSolverObserver); the DC solver reports every solve attempt and every
// Newton iteration to it. Observers may *mutate* the assembled system —
// that is the mechanism the runtime chaos harness uses to inject numerical
// faults (NaN residuals, singular Jacobians, iteration-cap breaches,
// artificial stalls) deterministically, without the solver knowing it is
// under test. Observers may also throw to abort a solve (the resilient
// runtime layer uses a per-options progress callback for its deadline, but
// an observer throw propagates identically).
//
// The registry is intentionally process-global and NOT thread-safe: sweeps
// in this project are single-threaded, and a global hook reaches solver
// instances created many layers deep (e.g. inside VoltageRegulator) that no
// options plumbing could reach without threading chaos state through every
// constructor in between.
#pragma once

#include <string>
#include <vector>

#include "lpsram/util/matrix.hpp"

namespace lpsram {

// One Newton iteration, observed after system assembly and before the linear
// solve. `jacobian` and `residual` are live and mutable.
struct NewtonEvent {
  int iteration = 0;  // 0-based within the current Newton attempt
  double gmin = 0.0;  // gmin in force for this attempt
  Matrix* jacobian = nullptr;
  std::vector<double>* residual = nullptr;
};

class SolverObserver {
 public:
  virtual ~SolverObserver() = default;

  // Called once at the top of every DcSolver::solve call.
  virtual void on_solve_begin() {}

  // Called each Newton iteration after assembly; may mutate the system or
  // throw to abort the attempt.
  virtual void on_newton_iteration(NewtonEvent& event) { (void)event; }

  // Called by the resilient runtime layer before each retry-ladder attempt
  // (attempt 0 = first rung). Plain DcSolver use never emits this.
  virtual void on_ladder_attempt(int attempt, const std::string& strategy) {
    (void)attempt;
    (void)strategy;
  }
};

// Currently installed observer (nullptr when none).
SolverObserver* solver_observer() noexcept;

// Installs `observer` (may be nullptr) and returns the previous one.
SolverObserver* exchange_solver_observer(SolverObserver* observer) noexcept;

// RAII installation: restores the previous observer on destruction.
class ScopedSolverObserver {
 public:
  explicit ScopedSolverObserver(SolverObserver* observer)
      : previous_(exchange_solver_observer(observer)) {}
  ~ScopedSolverObserver() { exchange_solver_observer(previous_); }

  ScopedSolverObserver(const ScopedSolverObserver&) = delete;
  ScopedSolverObserver& operator=(const ScopedSolverObserver&) = delete;

 private:
  SolverObserver* previous_;
};

}  // namespace lpsram
