#include "lpsram/spice/batch_transient.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>

#include "lpsram/device/mosfet_lanes.hpp"
#include "lpsram/util/error.hpp"
#include "lpsram/util/simd.hpp"
#include "lpsram/util/sparse_lanes.hpp"

namespace lpsram {
namespace {

std::atomic<TransientBatchKind> g_default_transient_batch_kind{
    TransientBatchKind::Lockstep};

}  // namespace

TransientBatchKind default_transient_batch_kind() noexcept {
  return g_default_transient_batch_kind.load(std::memory_order_relaxed);
}

TransientBatchKind set_default_transient_batch_kind(
    TransientBatchKind kind) noexcept {
  if (kind == TransientBatchKind::Auto) kind = TransientBatchKind::Lockstep;
  return g_default_transient_batch_kind.exchange(kind,
                                                 std::memory_order_relaxed);
}

TransientBatchKind resolved_transient_batch_kind() noexcept {
  const TransientBatchKind kind = default_transient_batch_kind();
  return kind == TransientBatchKind::Auto ? TransientBatchKind::Lockstep
                                          : kind;
}

BatchTransientSolver::BatchTransientSolver(Netlist& netlist, double temp_c,
                                           TransientOptions options)
    : netlist_(netlist),
      temp_c_(temp_c),
      options_(options),
      assembler_(netlist, temp_c) {}

std::vector<Waveform> BatchTransientSolver::run(
    const std::vector<TransientLane>& lanes, const std::vector<NodeId>& probes,
    const Stimulus& stimulus) {
  evictions_ = 0;
  if (lanes.empty()) return {};
  for (const TransientLane& lane : lanes)
    if (lane.initial_x.size() != assembler_.dimension())
      throw InvalidArgument("BatchTransientSolver: initial state size mismatch");

  return resolved_transient_batch_kind() == TransientBatchKind::Serial
             ? run_serial(lanes, probes, stimulus)
             : run_lockstep(lanes, probes, stimulus);
}

namespace {

// Original values of every distinct override element, for restoring the
// shared netlist between per-lane contexts. apply() tracks what the netlist
// currently holds and writes only the elements whose desired value differs,
// so switching between lanes of the same defect site (the common Df sweep
// shape) costs one set_resistance instead of a full restore-then-set.
struct OverrideSet {
  std::vector<std::pair<ElementId, double>> originals;
  std::vector<double> current;

  explicit OverrideSet(const Netlist& netlist,
                       const std::vector<TransientLane>& lanes) {
    for (const TransientLane& lane : lanes) {
      if (lane.element < 0) continue;
      bool seen = false;
      for (const auto& [el, ohms] : originals) seen = seen || el == lane.element;
      if (!seen)
        originals.emplace_back(lane.element, netlist.resistance(lane.element));
    }
    current.reserve(originals.size());
    for (const auto& [el, ohms] : originals) current.push_back(ohms);
  }

  void restore(Netlist& netlist) {
    for (std::size_t i = 0; i < originals.size(); ++i) {
      if (current[i] != originals[i].second)
        netlist.set_resistance(originals[i].first, originals[i].second);
      current[i] = originals[i].second;
    }
  }

  void apply(Netlist& netlist, const TransientLane& lane) {
    for (std::size_t i = 0; i < originals.size(); ++i) {
      const double want =
          originals[i].first == lane.element ? lane.ohms : originals[i].second;
      if (current[i] != want) {
        netlist.set_resistance(originals[i].first, want);
        current[i] = want;
      }
    }
  }
};

}  // namespace

std::vector<Waveform> BatchTransientSolver::run_serial(
    const std::vector<TransientLane>& lanes, const std::vector<NodeId>& probes,
    const Stimulus& stimulus) {
  OverrideSet overrides(netlist_, lanes);
  std::vector<Waveform> waves;
  waves.reserve(lanes.size());
  try {
    for (const TransientLane& lane : lanes) {
      overrides.apply(netlist_, lane);
      TransientSolver solver(netlist_, temp_c_, options_);
      waves.push_back(solver.run(probes, stimulus, &lane.initial_x));
    }
  } catch (...) {
    overrides.restore(netlist_);
    throw;
  }
  overrides.restore(netlist_);
  return waves;
}

std::vector<Waveform> BatchTransientSolver::run_lockstep(
    const std::vector<TransientLane>& lanes, const std::vector<NodeId>& probes,
    const Stimulus& stimulus) {
  using V = simd::Vec;
  constexpr std::size_t W = simd::kNativeWidth;

  const std::size_t K = lanes.size();
  const std::size_t st = simd::round_up_lanes(K);
  const StampPlan& p = *assembler_.plan();
  const std::size_t dim = p.dim;
  const std::size_t n_nodes = p.n_nodes;
  const std::size_t nnz = p.cols.size();
  const std::vector<Element>& elements = netlist_.elements();
  const bool use_simd_mos = resolved_simd_kind() == SimdKind::Simd;

  // Per-device constants, hoisted once (lane-invariant; see header contract).
  std::vector<MosfetLaneConsts> mos_consts;
  mos_consts.reserve(p.mosfets.size());
  for (const MosStamp& s : p.mosfets)
    mos_consts.push_back(mosfet_lane_consts(
        std::get<MosElement>(elements[static_cast<std::size_t>(s.el)].body)
            .device,
        temp_c_));

  // Loads and capacitances are immutable during the run (no netlist setter
  // exists for either), so the variant resolutions hoist out of the rounds.
  std::vector<const CurrentLoad*> load_models;
  load_models.reserve(p.loads.size());
  for (const LoadStamp& s : p.loads)
    load_models.push_back(
        std::get_if<CurrentLoad>(&elements[static_cast<std::size_t>(s.el)].body));
  std::vector<double> cap_farads;
  cap_farads.reserve(p.capacitors.size());
  for (const CapacitorStamp& s : p.capacitors)
    cap_farads.push_back(
        std::get<Capacitor>(elements[static_cast<std::size_t>(s.el)].body)
            .farads);

  // Lane-innermost SoA state: value[slot_or_row * st + lane].
  std::vector<double> base_vals(nnz * st, 0.0);
  std::vector<double> base_rhs(dim * st, 0.0);
  std::vector<double> jvals(nnz * st, 0.0);
  std::vector<double> resid(dim * st, 0.0);
  std::vector<double> rhs(dim * st, 0.0);
  std::vector<double> dx(dim * st, 0.0);
  std::vector<double> refine_r(dim * st, 0.0);
  std::vector<double> refine_e(dim * st, 0.0);
  std::vector<double> xcur(dim * st, 0.0);
  std::vector<double> xnext(dim * st, 0.0);
  std::vector<double> dt_lane(st, 1.0);  // padding stays 1.0 (finite g = C/dt)

  enum class LaneState : unsigned char { kStart, kNewton };
  std::vector<double> t(K, 0.0);
  std::vector<double> dt(K, options_.dt_initial);
  std::vector<int> iters(K, 0);
  std::vector<LaneState> state(K, LaneState::kStart);
  std::vector<unsigned char> done(K, 0);
  std::vector<unsigned char> evicted(K, 0);
  std::vector<unsigned char> active(st, 0);
  std::vector<unsigned char> group_active(st / W, 0);
  std::vector<unsigned char> lu_ok(st, 0);
  std::vector<unsigned char> residual_ok(K, 0);
  std::vector<unsigned char> refine(K, 0);
  std::vector<unsigned char> refine_group(st / W, 0);
  bool active_dirty = true;
  // Lane-indexed reduction scratch for the vectorized max-|dx| / max-|r|
  // passes and the per-lane Newton step scale (0.0 parks a lane: its xnext
  // is either dead or rebuilt from xcur at the next attempt start).
  std::vector<double> maxdv(st, 0.0);
  std::vector<double> maxres(st, 0.0);
  std::vector<double> scale_arr(st, 0.0);

  std::vector<Waveform> waves(K);
  const auto record = [&](std::size_t l) {
    waves[l].time.push_back(t[l]);
    for (std::size_t pi = 0; pi < probes.size(); ++pi) {
      const NodeId node = probes[pi];
      waves[l].values[pi].push_back(
          node == kGround ? 0.0
                          : xcur[static_cast<std::size_t>(node - 1) * st + l]);
    }
  };
  for (std::size_t l = 0; l < K; ++l) {
    waves[l].values.resize(probes.size());
    for (std::size_t i = 0; i < dim; ++i) xcur[i * st + l] = lanes[l].initial_x[i];
    record(l);
    if (!(t[l] < options_.t_stop)) done[l] = 1;
  }

  OverrideSet overrides(netlist_, lanes);

  // Replicates assemble_sparse's linear base freeze (elements.cpp) for the
  // netlist state currently applied, into lane l's base columns.
  const auto freeze_base_lane = [&](std::size_t l) {
    for (std::size_t s = 0; s < nnz; ++s) base_vals[s * st + l] = 0.0;
    for (std::size_t r = 0; r < dim; ++r) base_rhs[r * st + l] = 0.0;
    const auto add_slot = [&](int slot, double v) {
      if (slot >= 0) base_vals[static_cast<std::size_t>(slot) * st + l] += v;
    };
    for (const ResistorStamp& s : p.resistors) {
      const auto& r =
          std::get<Resistor>(elements[static_cast<std::size_t>(s.el)].body);
      const double g = 1.0 / r.ohms;
      add_slot(s.saa, g);
      add_slot(s.sab, -g);
      add_slot(s.sba, -g);
      add_slot(s.sbb, g);
    }
    for (const VSourceStamp& s : p.vsources) {
      const auto& v =
          std::get<VSource>(elements[static_cast<std::size_t>(s.el)].body);
      add_slot(s.s_p_br, 1.0);
      add_slot(s.s_br_p, 1.0);
      add_slot(s.s_n_br, -1.0);
      add_slot(s.s_br_n, -1.0);
      base_rhs[static_cast<std::size_t>(s.branch_row) * st + l] -= v.volts;
    }
    for (const ISourceStamp& s : p.isources) {
      const auto& i =
          std::get<ISource>(elements[static_cast<std::size_t>(s.el)].body);
      if (s.uf >= 0) base_rhs[static_cast<std::size_t>(s.uf) * st + l] += i.amps;
      if (s.ut >= 0) base_rhs[static_cast<std::size_t>(s.ut) * st + l] -= i.amps;
    }
    if (options_.dc.gmin > 0.0)
      for (std::size_t u = 0; u < n_nodes; ++u)
        base_vals[static_cast<std::size_t>(p.gmin_slots[u]) * st + l] +=
            options_.dc.gmin;
  };

  // ---- incremental refreeze machinery --------------------------------------
  // A lane's base changes between attempts only through the elements the
  // override and the stimulus mutate — typically one resistor and one
  // source out of the whole netlist. Rebuilding the full base per attempt
  // (freeze_base_lane) is the dominant per-attempt cost, so after the first
  // freeze each attempt only *diffs* the linear element values against the
  // lane's frozen copies and recomputes the touched slots/rows. A touched
  // slot is rebuilt by replaying just its own contributions in the same
  // global order the full freeze accumulates them (resistors, vsources,
  // gmin), so the recomputed value is bit-identical to a full refreeze.
  enum : unsigned char { kCbResistor, kCbUnit, kCbGmin, kCbVsVolt, kCbIsAmp };
  struct BaseContrib {
    unsigned char kind;
    int idx;      // index into p.resistors / p.vsources / p.isources
    double sign;  // +1.0 or -1.0
  };
  const std::size_t n_res = p.resistors.size();
  const std::size_t n_vs = p.vsources.size();
  const std::size_t n_is = p.isources.size();
  std::vector<std::vector<BaseContrib>> slot_contrib(nnz);
  std::vector<std::vector<BaseContrib>> rhs_contrib(dim);
  {
    const auto add_contrib = [&](int slot, unsigned char kind, int idx,
                                 double sign) {
      if (slot >= 0)
        slot_contrib[static_cast<std::size_t>(slot)].push_back(
            {kind, idx, sign});
    };
    for (std::size_t ri = 0; ri < n_res; ++ri) {
      const ResistorStamp& s = p.resistors[ri];
      add_contrib(s.saa, kCbResistor, static_cast<int>(ri), 1.0);
      add_contrib(s.sab, kCbResistor, static_cast<int>(ri), -1.0);
      add_contrib(s.sba, kCbResistor, static_cast<int>(ri), -1.0);
      add_contrib(s.sbb, kCbResistor, static_cast<int>(ri), 1.0);
    }
    for (std::size_t vi = 0; vi < n_vs; ++vi) {
      const VSourceStamp& s = p.vsources[vi];
      add_contrib(s.s_p_br, kCbUnit, static_cast<int>(vi), 1.0);
      add_contrib(s.s_br_p, kCbUnit, static_cast<int>(vi), 1.0);
      add_contrib(s.s_n_br, kCbUnit, static_cast<int>(vi), -1.0);
      add_contrib(s.s_br_n, kCbUnit, static_cast<int>(vi), -1.0);
      rhs_contrib[static_cast<std::size_t>(s.branch_row)].push_back(
          {kCbVsVolt, static_cast<int>(vi), -1.0});
    }
    for (std::size_t ii = 0; ii < n_is; ++ii) {
      const ISourceStamp& s = p.isources[ii];
      if (s.uf >= 0)
        rhs_contrib[static_cast<std::size_t>(s.uf)].push_back(
            {kCbIsAmp, static_cast<int>(ii), 1.0});
      if (s.ut >= 0)
        rhs_contrib[static_cast<std::size_t>(s.ut)].push_back(
            {kCbIsAmp, static_cast<int>(ii), -1.0});
    }
    if (options_.dc.gmin > 0.0)
      for (std::size_t u = 0; u < n_nodes; ++u)
        slot_contrib[static_cast<std::size_t>(p.gmin_slots[u])].push_back(
            {kCbGmin, 0, 1.0});
  }

  // Per-lane frozen copies of every linear element value the base was last
  // built from, plus diff scratch.
  std::vector<double> frozen_res(K * n_res, 0.0);
  std::vector<double> frozen_vs(K * n_vs, 0.0);
  std::vector<double> frozen_is(K * n_is, 0.0);
  std::vector<unsigned char> base_frozen(K, 0);
  std::vector<int> slot_epoch(nnz, -1);
  std::vector<int> row_epoch(dim, -1);
  std::vector<int> touched_slots;
  std::vector<int> touched_rows;
  int freeze_epoch = 0;

  // Direct pointers to every mutable linear element value. The element
  // vector is stable for the whole run (the topology is frozen under the
  // stamp plan; set_resistance / set_source_voltage / set_source_current
  // mutate in place), and these reads sit on the per-attempt hot path where
  // a variant access per element per attempt is measurable.
  std::vector<const double*> res_ohms_ptr(n_res);
  std::vector<const double*> vs_volts_ptr(n_vs);
  std::vector<const double*> is_amps_ptr(n_is);
  for (std::size_t ri = 0; ri < n_res; ++ri)
    res_ohms_ptr[ri] =
        &std::get<Resistor>(
             elements[static_cast<std::size_t>(p.resistors[ri].el)].body)
             .ohms;
  for (std::size_t vi = 0; vi < n_vs; ++vi)
    vs_volts_ptr[vi] =
        &std::get<VSource>(
             elements[static_cast<std::size_t>(p.vsources[vi].el)].body)
             .volts;
  for (std::size_t ii = 0; ii < n_is; ++ii)
    is_amps_ptr[ii] =
        &std::get<ISource>(
             elements[static_cast<std::size_t>(p.isources[ii].el)].body)
             .amps;
  const auto res_ohms = [&](std::size_t ri) { return *res_ohms_ptr[ri]; };
  const auto vs_volts = [&](std::size_t vi) { return *vs_volts_ptr[vi]; };
  const auto is_amps = [&](std::size_t ii) { return *is_amps_ptr[ii]; };

  const auto record_frozen = [&](std::size_t l) {
    for (std::size_t ri = 0; ri < n_res; ++ri)
      frozen_res[l * n_res + ri] = res_ohms(ri);
    for (std::size_t vi = 0; vi < n_vs; ++vi)
      frozen_vs[l * n_vs + vi] = vs_volts(vi);
    for (std::size_t ii = 0; ii < n_is; ++ii)
      frozen_is[l * n_is + ii] = is_amps(ii);
    base_frozen[l] = 1;
  };

  const auto delta_refreeze_lane = [&](std::size_t l) {
    ++freeze_epoch;
    touched_slots.clear();
    touched_rows.clear();
    const auto mark_slot = [&](int slot) {
      if (slot < 0) return;
      const std::size_t s = static_cast<std::size_t>(slot);
      if (slot_epoch[s] == freeze_epoch) return;
      slot_epoch[s] = freeze_epoch;
      touched_slots.push_back(slot);
    };
    const auto mark_row = [&](int row) {
      if (row < 0) return;
      const std::size_t r = static_cast<std::size_t>(row);
      if (row_epoch[r] == freeze_epoch) return;
      row_epoch[r] = freeze_epoch;
      touched_rows.push_back(row);
    };
    for (std::size_t ri = 0; ri < n_res; ++ri) {
      const double ohms = res_ohms(ri);
      double& frozen = frozen_res[l * n_res + ri];
      if (ohms == frozen) continue;
      frozen = ohms;
      const ResistorStamp& s = p.resistors[ri];
      mark_slot(s.saa);
      mark_slot(s.sab);
      mark_slot(s.sba);
      mark_slot(s.sbb);
    }
    for (std::size_t vi = 0; vi < n_vs; ++vi) {
      const double volts = vs_volts(vi);
      double& frozen = frozen_vs[l * n_vs + vi];
      if (volts == frozen) continue;
      frozen = volts;
      mark_row(p.vsources[vi].branch_row);  // the unit slots never change
    }
    for (std::size_t ii = 0; ii < n_is; ++ii) {
      const double amps = is_amps(ii);
      double& frozen = frozen_is[l * n_is + ii];
      if (amps == frozen) continue;
      frozen = amps;
      mark_row(p.isources[ii].uf);
      mark_row(p.isources[ii].ut);
    }
    for (const int slot : touched_slots) {
      double v = 0.0;
      for (const BaseContrib& cb :
           slot_contrib[static_cast<std::size_t>(slot)]) {
        if (cb.kind == kCbResistor) {
          const double g = 1.0 / res_ohms(static_cast<std::size_t>(cb.idx));
          v = cb.sign > 0.0 ? v + g : v - g;
        } else if (cb.kind == kCbUnit) {
          v += cb.sign;
        } else {  // kCbGmin
          v += options_.dc.gmin;
        }
      }
      base_vals[static_cast<std::size_t>(slot) * st + l] = v;
    }
    for (const int row : touched_rows) {
      double v = 0.0;
      for (const BaseContrib& cb :
           rhs_contrib[static_cast<std::size_t>(row)]) {
        const double val = cb.kind == kCbVsVolt
                               ? vs_volts(static_cast<std::size_t>(cb.idx))
                               : is_amps(static_cast<std::size_t>(cb.idx));
        v = cb.sign > 0.0 ? v + val : v - val;
      }
      base_rhs[static_cast<std::size_t>(row) * st + l] = v;
    }
  };

  SparseMatrix jac0(dim, p.row_ptr, p.cols);
  SparseLu lu0;
  SparseLuLanes llu;
  bool lu_bound = false;

  const auto evict = [&](std::size_t l) {
    evicted[l] = 1;
    active[l] = 0;
    active_dirty = true;
  };

  try {
    int round = 0;
    for (;;) {
      bool any_in_flight = false;
      for (std::size_t l = 0; l < K; ++l)
        any_in_flight = any_in_flight || (!done[l] && !evicted[l]);
      if (!any_in_flight) break;
      poll_cancel(options_.dc.cancel, "BatchTransientSolver", round++, 0.0);

      // --- start fresh step attempts: per-lane netlist context + base -----
      for (std::size_t l = 0; l < K; ++l) {
        if (done[l] || evicted[l] || state[l] != LaneState::kStart) continue;
        dt[l] = std::min(dt[l], options_.t_stop - t[l]);
        dt_lane[l] = dt[l];
        overrides.apply(netlist_, lanes[l]);
        if (stimulus) stimulus(t[l] + dt[l], netlist_);
        if (base_frozen[l]) {
          delta_refreeze_lane(l);
        } else {
          freeze_base_lane(l);
          record_frozen(l);
        }
        iters[l] = 0;
        for (std::size_t i = 0; i < dim; ++i)
          xnext[i * st + l] = xcur[i * st + l];
        state[l] = LaneState::kNewton;
      }
      // Whole vector groups with no in-flight lane are skipped by every
      // batched stage below: as heterogeneous lanes finish at different
      // rounds, the tail otherwise pays full-stride work for dead lanes.
      // The masks only change when a lane retires (done/evicted), so they
      // are rebuilt on that event rather than every round.
      if (active_dirty) {
        std::fill(active.begin(), active.end(), 0);
        for (std::size_t l = 0; l < K; ++l)
          if (!done[l] && !evicted[l]) active[l] = 1;
        for (std::size_t g = 0; g < st / W; ++g) {
          unsigned char any = 0;
          for (std::size_t l = g * W; l < g * W + W && l < K; ++l)
            any |= active[l];
          group_active[g] = any;
        }
        active_dirty = false;
      }

      // --- batched assembly: one Newton iteration's system per lane -------
      // Linear part: jvals = base, residual = A_base x + base_rhs, vector
      // over lanes in the serial slot order (elementwise per lane, so the
      // scalar arithmetic is reproduced bit for bit).
      for (std::size_t r = 0; r < dim; ++r) {
        const int s0 = p.row_ptr[r];
        const int s1 = p.row_ptr[r + 1];
        for (std::size_t l = 0; l < st; l += W) {
          if (!group_active[l / W]) continue;
          V acc = V::load(&base_rhs[r * st + l]);
          for (int s = s0; s < s1; ++s) {
            const std::size_t ss = static_cast<std::size_t>(s);
            const V v = V::load(&base_vals[ss * st + l]);
            v.store(&jvals[ss * st + l]);
            acc = acc +
                  v * V::load(&xnext[static_cast<std::size_t>(p.cols[ss]) * st +
                                     l]);
          }
          acc.store(&resid[r * st + l]);
        }
      }

      // MOSFET restamps: the only kind-dependent stage. Scalar runs the
      // hoisted-constant scalar model per lane (bit-identical to
      // Mosfet::eval); Simd evaluates W lanes per instruction with the
      // vectorized model (documented ulp tolerance).
      if (use_simd_mos) {
        const V vzero = V::zero();
        const auto xat_v = [&](int u, std::size_t l) {
          return u < 0 ? vzero
                       : V::load(&xnext[static_cast<std::size_t>(u) * st + l]);
        };
        const auto add_slot_v = [&](int slot, std::size_t l, V v) {
          if (slot < 0) return;
          double* dst = &jvals[static_cast<std::size_t>(slot) * st + l];
          (V::load(dst) + v).store(dst);
        };
        for (std::size_t mi = 0; mi < p.mosfets.size(); ++mi) {
          const MosStamp& s = p.mosfets[mi];
          const MosfetLaneConsts& c = mos_consts[mi];
          for (std::size_t l = 0; l < st; l += W) {
            if (!group_active[l / W]) continue;
            const MosEvalV<V> e =
                lane_eval_v(c, xat_v(s.ug, l), xat_v(s.ud, l), xat_v(s.us, l));
            if (s.ud >= 0) {
              double* dst = &resid[static_cast<std::size_t>(s.ud) * st + l];
              (V::load(dst) + e.id).store(dst);
            }
            if (s.us >= 0) {
              double* dst = &resid[static_cast<std::size_t>(s.us) * st + l];
              (V::load(dst) - e.id).store(dst);
            }
            add_slot_v(s.s_dg, l, e.gm);
            add_slot_v(s.s_dd, l, e.gds);
            add_slot_v(s.s_ds, l, e.gms);
            add_slot_v(s.s_sg, l, vzero - e.gm);
            add_slot_v(s.s_sd, l, vzero - e.gds);
            add_slot_v(s.s_ss, l, vzero - e.gms);
          }
        }
      } else {
        const auto xat = [&](int u, std::size_t l) {
          return u < 0 ? 0.0 : xnext[static_cast<std::size_t>(u) * st + l];
        };
        for (std::size_t l = 0; l < K; ++l) {
          if (!active[l]) continue;
          const auto add_slot = [&](int slot, double v) {
            if (slot >= 0) jvals[static_cast<std::size_t>(slot) * st + l] += v;
          };
          for (std::size_t mi = 0; mi < p.mosfets.size(); ++mi) {
            const MosStamp& s = p.mosfets[mi];
            const MosEval e = lane_eval(mos_consts[mi], xat(s.ug, l),
                                        xat(s.ud, l), xat(s.us, l));
            if (s.ud >= 0) resid[static_cast<std::size_t>(s.ud) * st + l] += e.id;
            if (s.us >= 0) resid[static_cast<std::size_t>(s.us) * st + l] -= e.id;
            add_slot(s.s_dg, e.gm);
            add_slot(s.s_dd, e.gds);
            add_slot(s.s_ds, e.gms);
            add_slot(s.s_sg, -e.gm);
            add_slot(s.s_sd, -e.gds);
            add_slot(s.s_ss, -e.gms);
          }
        }
      }

      // Current loads: scalar closures, evaluated per in-flight lane.
      for (std::size_t l = 0; l < K; ++l) {
        if (!active[l]) continue;
        for (std::size_t li = 0; li < p.loads.size(); ++li) {
          const LoadStamp& s = p.loads[li];
          const CurrentLoad& load = *load_models[li];
          const double v =
              s.u < 0 ? 0.0 : xnext[static_cast<std::size_t>(s.u) * st + l];
          const auto [i, didv] = load.iv(v, temp_c_);
          if (s.u >= 0) resid[static_cast<std::size_t>(s.u) * st + l] += i;
          if (s.slot >= 0)
            jvals[static_cast<std::size_t>(s.slot) * st + l] += didv;
        }
      }

      // Capacitors (backward-Euler companions) with per-lane dt; vector ops
      // are elementwise, so each lane matches the serial arithmetic.
      {
        const V vzero = V::zero();
        const auto col_v = [&](const std::vector<double>& x, int u,
                               std::size_t l) {
          return u < 0 ? vzero
                       : V::load(&x[static_cast<std::size_t>(u) * st + l]);
        };
        for (std::size_t ci = 0; ci < p.capacitors.size(); ++ci) {
          const CapacitorStamp& s = p.capacitors[ci];
          if (cap_farads[ci] <= 0.0) continue;
          const V farads = V::broadcast(cap_farads[ci]);
          for (std::size_t l = 0; l < st; l += W) {
            if (!group_active[l / W]) continue;
            const V g = farads / V::load(&dt_lane[l]);
            const V vab = col_v(xnext, s.ua, l) - col_v(xnext, s.ub, l);
            const V vab_prev = col_v(xcur, s.ua, l) - col_v(xcur, s.ub, l);
            const V i = g * (vab - vab_prev);
            if (s.ua >= 0) {
              double* dst = &resid[static_cast<std::size_t>(s.ua) * st + l];
              (V::load(dst) + i).store(dst);
            }
            if (s.ub >= 0) {
              double* dst = &resid[static_cast<std::size_t>(s.ub) * st + l];
              (V::load(dst) - i).store(dst);
            }
            const auto add_slot_v = [&](int slot, V v) {
              if (slot < 0) return;
              double* dst = &jvals[static_cast<std::size_t>(slot) * st + l];
              (V::load(dst) + v).store(dst);
            };
            add_slot_v(s.saa, g);
            add_slot_v(s.sab, vzero - g);
            add_slot_v(s.sba, vzero - g);
            add_slot_v(s.sbb, g);
          }
        }
      }

      // Residual acceptance + Newton right-hand side (unary minus, exactly
      // as step_sparse writes it). The max reduction runs lanes-inner with
      // blend(acc < x) rather than V::max so each lane reproduces
      // std::max's operand ordering (a NaN never displaces the
      // accumulator), exactly like the scalar loop it replaces.
      // The rhs negation rides in the same pass (V::neg is an exact
      // sign-bit flip, so rhs matches the scalar `-resid` to the bit) and
      // inherits the group mask, instead of a second full-stride sweep.
      for (std::size_t l = 0; l < st; l += W) {
        if (!group_active[l / W]) continue;
        V acc = V::zero();
        for (std::size_t r = 0; r < dim; ++r) {
          const V v = V::load(&resid[r * st + l]);
          const V x = V::abs(v);
          acc = V::blend(V::cmp_lt(acc, x), x, acc);
          V::neg(v).store(&rhs[r * st + l]);
        }
        acc.store(&maxres[l]);
      }
      for (std::size_t l = 0; l < K; ++l)
        if (active[l])
          residual_ok[l] = maxres[l] < options_.dc.residual_tolerance ? 1 : 0;

      // --- lane-batched LU -----------------------------------------------
      if (!lu_bound) {
        std::size_t repr = 0;
        while (repr < K && !active[repr]) ++repr;
        for (std::size_t s = 0; s < nnz; ++s)
          jac0.values()[s] = jvals[s * st + repr];
        try {
          lu0.factor(jac0);
        } catch (const ConvergenceError&) {
          // Representative Jacobian singular: no shared pivot order exists;
          // let the serial fallback reproduce the per-lane behaviour.
          for (std::size_t l = 0; l < K; ++l)
            if (active[l]) evict(l);
          continue;
        }
        llu.bind(lu0, K);
        lu_bound = true;
      }
      // Refactor fused with the forward substitution (the rhs is already
      // final from the residual stage): one pass over L instead of two,
      // bit-identical to refactor() followed by solve().
      llu.refactor_fused_forward(jvals.data(), rhs.data(), active.data(),
                                 lu_ok.data());
      for (std::size_t l = 0; l < K; ++l)
        if (active[l] && !lu_ok[l]) evict(l);
      bool any_active = false;
      for (std::size_t l = 0; l < K; ++l) any_active = any_active || active[l];
      if (!any_active) continue;
      llu.solve_fused_back(dx.data());

      // Vectorized max-|dx| over the node rows, shared by the refine gate
      // and the Newton step control below. blend(acc < x) instead of V::max
      // reproduces std::max's operand ordering per lane (a NaN operand
      // never displaces the accumulator), so maxdv[l] is bit-identical to
      // the scalar reduction.
      const auto reduce_maxdv = [&](const std::vector<unsigned char>& groups) {
        for (std::size_t l = 0; l < st; l += W) {
          if (!groups[l / W]) continue;
          V acc = V::zero();
          for (std::size_t i = 0; i < n_nodes; ++i) {
            const V x = V::abs(V::load(&dx[i * st + l]));
            acc = V::blend(V::cmp_lt(acc, x), x, acc);
          }
          acc.store(&maxdv[l]);
        }
      };
      reduce_maxdv(group_active);

      // Endgame refinement (transient.cpp applies refine_step when the
      // plain step is already small): every follow-up stage — residual
      // matvec, second substitution, correction — runs only over the vector
      // groups that hold a refining lane, which keeps the endgame of a few
      // straggler lanes from paying full-batch work each round.
      bool any_refine = false;
      std::fill(refine.begin(), refine.end(), 0);
      std::fill(refine_group.begin(), refine_group.end(), 0);
      for (std::size_t l = 0; l < K; ++l) {
        if (!active[l]) continue;
        if (maxdv[l] < kSparseRefineDvThreshold) {
          refine[l] = 1;
          refine_group[l / W] = 1;
          any_refine = true;
        }
      }
      if (any_refine) {
        // r = b - A x in the serial slot order; the correction is applied
        // only where the serial path would refine.
        for (std::size_t r = 0; r < dim; ++r) {
          const int s0 = p.row_ptr[r];
          const int s1 = p.row_ptr[r + 1];
          for (std::size_t l = 0; l < st; l += W) {
            if (!refine_group[l / W]) continue;
            V acc = V::load(&rhs[r * st + l]);
            for (int s = s0; s < s1; ++s) {
              const std::size_t ss = static_cast<std::size_t>(s);
              acc = acc -
                    V::load(&jvals[ss * st + l]) *
                        V::load(&dx[static_cast<std::size_t>(p.cols[ss]) * st +
                                    l]);
            }
            acc.store(&refine_r[r * st + l]);
          }
        }
        llu.solve(refine_r.data(), refine_e.data(), refine_group.data());
        for (std::size_t l = 0; l < K; ++l)
          if (refine[l])
            for (std::size_t i = 0; i < dim; ++i)
              dx[i * st + l] += refine_e[i * st + l];
        // The correction moved dx in the refining groups; their step
        // heights are re-reduced (non-refining lanes in those groups have
        // unchanged dx, so recomputing the whole group is a no-op for
        // them).
        reduce_maxdv(refine_group);
      }

      // --- per-lane Newton update and step control ------------------------
      // The Newton step xnext += scale * dx runs lanes-inner with a
      // per-lane scale: 0.0 parks inactive and failed-step lanes (their
      // xnext is dead, or rebuilt from xcur at the next attempt start, so a
      // parked lane's 0 * dx never becomes observable even when dx is
      // non-finite); active lanes see exactly the scalar multiply-add.
      for (std::size_t l = 0; l < K; ++l) {
        scale_arr[l] = 0.0;
        if (!active[l]) continue;
        const double max_dv = maxdv[l];
        if (std::isfinite(max_dv))
          scale_arr[l] = max_dv > options_.dc.step_limit
                             ? options_.dc.step_limit / max_dv
                             : 1.0;
      }
      for (std::size_t i = 0; i < dim; ++i) {
        for (std::size_t l = 0; l < st; l += W) {
          if (!group_active[l / W]) continue;
          double* xp = &xnext[i * st + l];
          (V::load(xp) + V::load(&scale_arr[l]) * V::load(&dx[i * st + l]))
              .store(xp);
        }
      }
      for (std::size_t l = 0; l < K; ++l) {
        if (!active[l]) continue;
        const bool step_failed = !std::isfinite(maxdv[l]);
        bool converged = false;
        if (!step_failed) {
          converged =
              maxdv[l] < options_.dc.v_tolerance || residual_ok[l] != 0;
          ++iters[l];
        }

        if (converged) {
          for (std::size_t i = 0; i < dim; ++i)
            xcur[i * st + l] = xnext[i * st + l];
          t[l] += dt[l];
          record(l);
          dt[l] = std::min(dt[l] * 1.5, options_.dt_max);
          if (!(t[l] < options_.t_stop)) {
            done[l] = 1;
            active_dirty = true;
          } else {
            state[l] = LaneState::kStart;
          }
        } else if (step_failed || iters[l] >= options_.dc.max_iterations) {
          dt[l] *= 0.25;
          if (dt[l] < options_.dt_min)
            evict(l);  // serial fallback reproduces the underflow throw
          else
            state[l] = LaneState::kStart;
        }
        // else: keep iterating this attempt next round.
      }
    }

    // --- serial fallback for evicted lanes -------------------------------
    for (std::size_t l = 0; l < K; ++l) {
      if (!evicted[l]) continue;
      ++evictions_;
      overrides.apply(netlist_, lanes[l]);
      TransientSolver solver(netlist_, temp_c_, options_);
      waves[l] = solver.run(probes, stimulus, &lanes[l].initial_x);
    }
  } catch (...) {
    overrides.restore(netlist_);
    throw;
  }
  overrides.restore(netlist_);
  return waves;
}

}  // namespace lpsram
