#include "lpsram/spice/transient.hpp"

#include <algorithm>
#include <cmath>

#include "lpsram/util/error.hpp"

namespace lpsram {

double Waveform::min_value(std::size_t p) const {
  if (p >= values.size() || values[p].empty())
    throw InvalidArgument("Waveform: bad probe index");
  return *std::min_element(values[p].begin(), values[p].end());
}

double Waveform::at(std::size_t p, double t) const {
  if (p >= values.size() || values[p].empty())
    throw InvalidArgument("Waveform: bad probe index");
  const auto& ts = time;
  const auto& vs = values[p];
  if (t <= ts.front()) return vs.front();
  if (t >= ts.back()) return vs.back();
  const auto it = std::lower_bound(ts.begin(), ts.end(), t);
  const std::size_t hi = static_cast<std::size_t>(it - ts.begin());
  const std::size_t lo = hi - 1;
  const double frac = (t - ts[lo]) / (ts[hi] - ts[lo]);
  return vs[lo] + frac * (vs[hi] - vs[lo]);
}

double Waveform::deficit_integral(std::size_t p, double threshold) const {
  if (p >= values.size())
    throw InvalidArgument("Waveform: bad probe index");
  const auto& vs = values[p];
  double integral = 0.0;
  for (std::size_t k = 1; k < time.size(); ++k) {
    const double d0 = std::max(0.0, threshold - vs[k - 1]);
    const double d1 = std::max(0.0, threshold - vs[k]);
    integral += 0.5 * (d0 + d1) * (time[k] - time[k - 1]);
  }
  return integral;
}

TransientSolver::TransientSolver(Netlist& netlist, double temp_c,
                                 TransientOptions options)
    : netlist_(netlist),
      temp_c_(temp_c),
      options_(options),
      assembler_(netlist, temp_c) {}

bool TransientSolver::step(double dt, std::vector<double>& x_next) {
  const LinearSolverKind kind =
      options_.dc.linear_solver == LinearSolverKind::Auto
          ? default_linear_solver()
          : options_.dc.linear_solver;
  return kind == LinearSolverKind::Dense ? step_dense(dt, x_next)
                                         : step_sparse(dt, x_next);
}

bool TransientSolver::step_sparse(double dt, std::vector<double>& x_next) {
  x_next = x_;
  const std::size_t n_nodes = netlist_.node_count() - 1;

  for (int it = 0; it < options_.dc.max_iterations; ++it) {
    poll_cancel(options_.dc.cancel, "TransientSolver", it, 0.0);
    assembler_.assemble_sparse(x_next, options_.dc.gmin, ws_, &x_, dt);
    // Secondary (ABSTOL-style) acceptance, sparse kernel only — see the
    // matching note in dc_solver.cpp: on a high-impedance node dv is
    // rounding noise that may never drop under v_tolerance even though
    // every KCL residual is at machine precision.
    double max_res = 0.0;
    for (std::size_t i = 0; i < ws_.residual.size(); ++i)
      max_res = std::max(max_res, std::fabs(ws_.residual[i]));
    const bool residual_ok = max_res < options_.dc.residual_tolerance;
    for (std::size_t i = 0; i < ws_.residual.size(); ++i)
      ws_.rhs[i] = -ws_.residual[i];
    try {
      ws_.lu.factor(ws_.jacobian);
      // Refine only in the endgame (see kSparseRefineDvThreshold): early
      // step-limited iterations just need a direction.
      ws_.lu.solve(ws_.rhs, ws_.dx);
      double max_step = 0.0;
      for (std::size_t i = 0; i < n_nodes; ++i)
        max_step = std::max(max_step, std::fabs(ws_.dx[i]));
      if (max_step < kSparseRefineDvThreshold)
        ws_.lu.refine_step(ws_.jacobian, ws_.rhs, ws_.dx);
    } catch (const ConvergenceError&) {
      return false;
    }
    double max_dv = 0.0;
    for (std::size_t i = 0; i < n_nodes; ++i)
      max_dv = std::max(max_dv, std::fabs(ws_.dx[i]));
    if (!std::isfinite(max_dv)) return false;
    const double scale = max_dv > options_.dc.step_limit
                             ? options_.dc.step_limit / max_dv
                             : 1.0;
    for (std::size_t i = 0; i < ws_.dx.size(); ++i)
      x_next[i] += scale * ws_.dx[i];
    if (max_dv < options_.dc.v_tolerance || residual_ok) return true;
  }
  return false;
}

bool TransientSolver::step_dense(double dt, std::vector<double>& x_next) {
  Matrix jacobian(assembler_.dimension(), assembler_.dimension());
  std::vector<double> residual;
  x_next = x_;

  for (int it = 0; it < options_.dc.max_iterations; ++it) {
    poll_cancel(options_.dc.cancel, "TransientSolver", it, 0.0);
    assembler_.assemble(x_next, jacobian, residual, options_.dc.gmin, &x_,
                        dt);
    std::vector<double> rhs(residual.size());
    for (std::size_t i = 0; i < residual.size(); ++i) rhs[i] = -residual[i];
    std::vector<double> dx;
    try {
      dx = solve_linear_system_in_place(jacobian, rhs);
    } catch (const ConvergenceError&) {
      return false;
    }
    double max_dv = 0.0;
    const std::size_t n_nodes = netlist_.node_count() - 1;
    for (std::size_t i = 0; i < n_nodes; ++i)
      max_dv = std::max(max_dv, std::fabs(dx[i]));
    const double scale = max_dv > options_.dc.step_limit
                             ? options_.dc.step_limit / max_dv
                             : 1.0;
    for (std::size_t i = 0; i < dx.size(); ++i) x_next[i] += scale * dx[i];
    if (max_dv < options_.dc.v_tolerance) return true;
  }
  return false;
}

Waveform TransientSolver::run(const std::vector<NodeId>& probes,
                              const Stimulus& stimulus,
                              const std::vector<double>* initial_x) {
  if (stimulus) stimulus(0.0, netlist_);

  if (initial_x) {
    if (initial_x->size() != assembler_.dimension())
      throw InvalidArgument("TransientSolver: initial state size mismatch");
    x_ = *initial_x;
  } else {
    DcResult dc = DcSolver(netlist_, temp_c_, options_.dc).solve();
    x_ = std::move(dc.x);
  }

  Waveform wave;
  wave.values.resize(probes.size());
  auto record = [&](double t) {
    wave.time.push_back(t);
    for (std::size_t p = 0; p < probes.size(); ++p)
      wave.values[p].push_back(assembler_.node_voltage(x_, probes[p]));
  };
  record(0.0);

  double t = 0.0;
  double dt = options_.dt_initial;
  std::vector<double> x_next;

  while (t < options_.t_stop) {
    // Poll between accepted steps too: a cancel that lands while the step
    // loop is not in Newton (e.g. during waveform recording) still cuts the
    // simulation off at the next boundary.
    poll_cancel(options_.dc.cancel, "TransientSolver", 0, 0.0);
    dt = std::min(dt, options_.t_stop - t);
    if (stimulus) stimulus(t + dt, netlist_);

    if (step(dt, x_next)) {
      x_ = x_next;
      t += dt;
      record(t);
      dt = std::min(dt * 1.5, options_.dt_max);  // accepted: grow the step
    } else {
      dt *= 0.25;  // rejected: shrink and retry
      if (dt < options_.dt_min)
        throw ConvergenceError(
            "TransientSolver: step size underflow at t = " + std::to_string(t));
    }
  }
  return wave;
}

}  // namespace lpsram
