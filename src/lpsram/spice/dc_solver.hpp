// Newton-Raphson DC operating-point solver with gmin stepping and source
// stepping fallbacks — the workhorse behind every Vreg / DRV / leakage number
// in the reproduction.
#pragma once

#include <vector>

#include "lpsram/spice/elements.hpp"
#include "lpsram/spice/netlist.hpp"

namespace lpsram {

struct DcOptions {
  int max_iterations = 150;
  double v_tolerance = 1e-9;       // convergence: max |delta V| [V]
  double residual_tolerance = 1e-12;  // convergence: max |KCL residual| [A]
  double gmin = 1e-12;             // permanent floor conductance [S]
  double step_limit = 0.4;         // max Newton voltage step per iteration [V]
  // Node-voltage limiting (classic SPICE robustness): solutions are clamped
  // to this window, preventing runaway excursions when a current source
  // momentarily sees no conducting path.
  double v_min = -2.0;
  double v_max = 4.0;
  bool allow_gmin_stepping = true;
  bool allow_source_stepping = true;
};

struct DcResult {
  bool converged = false;
  int iterations = 0;        // Newton iterations of the final (successful) solve
  std::vector<double> x;     // raw unknown vector (see SystemAssembler layout)
  std::vector<double> node_v;  // per-node voltages including ground
};

class DcSolver {
 public:
  DcSolver(const Netlist& netlist, double temp_c, DcOptions options = {});

  // Solves for the DC operating point. If `initial_guess` (raw unknown
  // vector) is given it seeds Newton — warm starts make parameter sweeps
  // nearly free. Throws ConvergenceError if every strategy fails.
  DcResult solve(const std::vector<double>* initial_guess = nullptr) const;

  const SystemAssembler& assembler() const noexcept { return assembler_; }

  // Voltage of a node in a result.
  double voltage(const DcResult& result, NodeId node) const;
  // Current through a voltage source in a result (positive = current flows
  // into the positive terminal from the external circuit).
  double source_current(const DcResult& result, ElementId vsrc) const;

 private:
  // One Newton solve at fixed gmin and source scale; returns converged flag.
  bool newton(std::vector<double>& x, double gmin, int* iterations_out) const;

  const Netlist& netlist_;
  SystemAssembler assembler_;
  DcOptions options_;
};

// Convenience one-shot solve.
DcResult solve_dc(const Netlist& netlist, double temp_c,
                  const DcOptions& options = {},
                  const std::vector<double>* initial_guess = nullptr);

}  // namespace lpsram
