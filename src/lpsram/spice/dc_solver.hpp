// Newton-Raphson DC operating-point solver with gmin stepping and source
// stepping fallbacks — the workhorse behind every Vreg / DRV / leakage number
// in the reproduction.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "lpsram/spice/elements.hpp"
#include "lpsram/spice/netlist.hpp"

namespace lpsram {

// Per-iteration progress snapshot delivered to DcOptions::progress. The
// resilient runtime layer uses it to enforce wall-clock deadlines: the
// callback may throw (e.g. SolveTimeout) to abort the solve mid-Newton.
struct NewtonProgress {
  int iteration = 0;       // 1-based within the current Newton attempt
  double max_dv = 0.0;     // largest node-voltage step this iteration [V]
  double max_residual = 0.0;  // largest |KCL residual| at entry [A]
};

struct DcOptions {
  int max_iterations = 150;
  double v_tolerance = 1e-9;       // convergence: max |delta V| [V]
  double residual_tolerance = 1e-12;  // convergence: max |KCL residual| [A]
  double gmin = 1e-12;             // permanent floor conductance [S]
  double step_limit = 0.4;         // max Newton voltage step per iteration [V]
  // Node-voltage limiting (classic SPICE robustness): solutions are clamped
  // to this window, preventing runaway excursions when a current source
  // momentarily sees no conducting path.
  double v_min = -2.0;
  double v_max = 4.0;
  bool allow_gmin_stepping = true;
  bool allow_source_stepping = true;
  // Invoked once per Newton iteration; may throw to abort the solve (the
  // exception propagates out of solve()).
  std::function<void(const NewtonProgress&)> progress;
};

struct DcResult {
  bool converged = false;
  int iterations = 0;        // Newton iterations of the final (successful) solve
  std::vector<double> x;     // raw unknown vector (see SystemAssembler layout)
  std::vector<double> node_v;  // per-node voltages including ground
};

// Worst KCL residual of a candidate solution, with the offending node named —
// what makes a non-convergence report actionable without a debugger.
struct ResidualReport {
  double worst = 0.0;      // max |KCL residual| over node rows [A]
  std::string node;        // name of the node carrying it
};

class DcSolver {
 public:
  DcSolver(const Netlist& netlist, double temp_c, DcOptions options = {});

  // Solves for the DC operating point. If `initial_guess` (raw unknown
  // vector) is given it seeds Newton — warm starts make parameter sweeps
  // nearly free. Throws ConvergenceError (with iteration count, worst-node
  // name and final residual in the message) if every strategy fails.
  DcResult solve(const std::vector<double>* initial_guess = nullptr) const;

  const SystemAssembler& assembler() const noexcept { return assembler_; }

  // Voltage of a node in a result.
  double voltage(const DcResult& result, NodeId node) const;
  // Current through a voltage source in a result (positive = current flows
  // into the positive terminal from the external circuit).
  double source_current(const DcResult& result, ElementId vsrc) const;

  // Assembles the residual at `x` and reports the worst KCL row (diagnostic;
  // used for enriched failure messages and SolveOutcome telemetry).
  ResidualReport residual_report(const std::vector<double>& x) const;

 private:
  struct NewtonStats {
    int iterations = 0;      // iterations consumed by this attempt
    double max_residual = 0.0;  // residual at the last assembled point
  };

  // One Newton solve at fixed gmin and source scale; returns converged flag.
  bool newton(std::vector<double>& x, double gmin, NewtonStats* stats) const;

  const Netlist& netlist_;
  SystemAssembler assembler_;
  DcOptions options_;
};

// Convenience one-shot solve.
DcResult solve_dc(const Netlist& netlist, double temp_c,
                  const DcOptions& options = {},
                  const std::vector<double>* initial_guess = nullptr);

}  // namespace lpsram
