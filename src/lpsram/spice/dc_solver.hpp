// Newton-Raphson DC operating-point solver with gmin stepping and source
// stepping fallbacks — the workhorse behind every Vreg / DRV / leakage number
// in the reproduction.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "lpsram/spice/elements.hpp"
#include "lpsram/spice/netlist.hpp"
#include "lpsram/util/cancel.hpp"

namespace lpsram {

// Per-iteration progress snapshot delivered to DcOptions::progress. The
// resilient runtime layer uses it to enforce wall-clock deadlines: the
// callback may throw (e.g. SolveTimeout) to abort the solve mid-Newton.
struct NewtonProgress {
  int iteration = 0;       // 1-based within the current Newton attempt
  double max_dv = 0.0;     // largest node-voltage step this iteration [V]
  double max_residual = 0.0;  // largest |KCL residual| at entry [A]
};

// Which linear-solve kernel Newton runs on. `Sparse` is the structure-aware
// CSR path (symbolic stamp plan + reusable sparse LU, zero allocations per
// iteration); `Dense` is the original dense-LU path, kept as the fallback
// and as the cross-check oracle in tests. `Auto` defers to the process-wide
// default (see default_linear_solver), which starts as Sparse.
enum class LinearSolverKind { Auto, Sparse, Dense };

// Process-wide default used when DcOptions::linear_solver is Auto. Atomic:
// safe to flip while sweeps run (each Newton attempt reads it once).
LinearSolverKind default_linear_solver() noexcept;
// Sets the process default; Auto is normalized to Sparse. Returns previous.
LinearSolverKind set_default_linear_solver(LinearSolverKind kind) noexcept;

// RAII override of the process default — how tests and benches flip the
// whole stack (regulator, DRV, march flows) onto one kernel without
// threading an option through every call site.
class ScopedLinearSolverDefault {
 public:
  explicit ScopedLinearSolverDefault(LinearSolverKind kind)
      : previous_(set_default_linear_solver(kind)) {}
  ~ScopedLinearSolverDefault() { set_default_linear_solver(previous_); }

  ScopedLinearSolverDefault(const ScopedLinearSolverDefault&) = delete;
  ScopedLinearSolverDefault& operator=(const ScopedLinearSolverDefault&) = delete;

 private:
  LinearSolverKind previous_;
};

struct DcOptions {
  int max_iterations = 150;
  double v_tolerance = 1e-9;       // convergence: max |delta V| [V]
  double residual_tolerance = 1e-12;  // convergence: max |KCL residual| [A]
  double gmin = 1e-12;             // permanent floor conductance [S]
  double step_limit = 0.4;         // max Newton voltage step per iteration [V]
  // Node-voltage limiting (classic SPICE robustness): solutions are clamped
  // to this window, preventing runaway excursions when a current source
  // momentarily sees no conducting path.
  double v_min = -2.0;
  double v_max = 4.0;
  bool allow_gmin_stepping = true;
  bool allow_source_stepping = true;
  // Invoked once per Newton iteration; may throw to abort the solve (the
  // exception propagates out of solve()).
  std::function<void(const NewtonProgress&)> progress;
  // Linear-solve kernel; Auto follows the process-wide default (Sparse).
  LinearSolverKind linear_solver = LinearSolverKind::Auto;
  // Cooperative cancellation: when set, every Newton iteration (DC and
  // transient) polls the token and aborts the solve with SolveTimeout
  // (SolveFailureInfo::cancelled = true) as soon as it trips. Non-owning;
  // the token must outlive the solve.
  const CancelToken* cancel = nullptr;
  // Optional long-lived workspace for the sparse kernel (non-owning; may be
  // null). A caller that solves the same netlist repeatedly — e.g. a
  // VoltageRegulator across a defect/PVT sweep — passes its own workspace so
  // the symbolic work (stamp-plan binding, the sparse LU's pivot order and
  // fill pattern) is amortized across solves instead of being redone by
  // every DcSolver. The workspace must outlive every solver using it and is
  // bound by the same single-thread contract as the solver itself.
  NewtonWorkspace* shared_workspace = nullptr;
};

// Newton-step size below which the sparse kernel adds one step of iterative
// refinement to its linear solve. The plain solve runs first; only when the
// resulting |dx| is already this small is Newton in its endgame, where
// factor rounding noise on ill-conditioned MNA systems (kappa ~ 1e12)
// competes with v_tolerance and refinement buys the digits back. Gating on
// the computed step rather than on the residual keeps refinement off the
// step-limited opening iterations (where dx only needs a direction) and off
// mid-solve residual dips that still take large steps. Shared by DcSolver
// and TransientSolver.
inline constexpr double kSparseRefineDvThreshold = 1e-5;

struct DcResult {
  bool converged = false;
  int iterations = 0;        // Newton iterations of the final (successful) solve
  // Newton iterations summed over *every* attempt of the solve, including
  // failed strategies (plain Newton, each gmin-stepping rung, each
  // source-stepping ramp point, damped fallback). This is what telemetry
  // and cost accounting should use; `iterations` only describes the attempt
  // that produced `x`.
  int total_iterations = 0;
  std::vector<double> x;     // raw unknown vector (see SystemAssembler layout)
  std::vector<double> node_v;  // per-node voltages including ground
};

// Worst KCL residual of a candidate solution, with the offending node named —
// what makes a non-convergence report actionable without a debugger.
struct ResidualReport {
  double worst = 0.0;      // max |KCL residual| over node rows [A]
  std::string node;        // name of the node carrying it
  // True when any node residual was NaN/Inf before being collapsed to
  // HUGE_VAL for the `worst` magnitude — lets quarantine records tell an
  // injected/genuine NaN from an ordinary huge-but-finite divergence.
  bool non_finite = false;
};

// Polls a cancel token (null-safe) and throws SolveTimeout with
// SolveFailureInfo::cancelled set when it has tripped. Shared by the DC and
// transient Newton kernels so both report cancellation identically.
void poll_cancel(const CancelToken* cancel, const char* where, int iterations,
                 double worst_residual);

class DcSolver {
 public:
  DcSolver(const Netlist& netlist, double temp_c, DcOptions options = {});

  // Solves for the DC operating point. If `initial_guess` (raw unknown
  // vector) is given it seeds Newton — warm starts make parameter sweeps
  // nearly free. Throws ConvergenceError (with iteration count, worst-node
  // name and final residual in the message) if every strategy fails.
  DcResult solve(const std::vector<double>* initial_guess = nullptr) const;

  const SystemAssembler& assembler() const noexcept { return assembler_; }

  // Voltage of a node in a result.
  double voltage(const DcResult& result, NodeId node) const;
  // Current through a voltage source in a result (positive = current flows
  // into the positive terminal from the external circuit).
  double source_current(const DcResult& result, ElementId vsrc) const;

  // Assembles the residual at `x` and reports the worst KCL row (diagnostic;
  // used for enriched failure messages and SolveOutcome telemetry).
  ResidualReport residual_report(const std::vector<double>& x) const;

 private:
  struct NewtonStats {
    int iterations = 0;      // iterations consumed by this attempt
    double max_residual = 0.0;  // residual at the last assembled point
    bool non_finite = false;    // attempt saw a NaN/Inf residual or step
  };

  // One Newton solve at fixed gmin and source scale; returns converged flag.
  // Dispatches to the sparse or dense kernel per options/process default.
  bool newton(std::vector<double>& x, double gmin, NewtonStats* stats) const;
  bool newton_sparse(std::vector<double>& x, double gmin,
                     NewtonStats* stats) const;
  bool newton_dense(std::vector<double>& x, double gmin,
                    NewtonStats* stats) const;
  LinearSolverKind resolved_solver() const noexcept;

  const Netlist& netlist_;
  SystemAssembler assembler_;
  DcOptions options_;
  // Per-solver scratch for the sparse path: CSR values, frozen linear base,
  // residual/rhs/dx and the analyze-once sparse LU. Mutable because solve()
  // is const; a DcSolver is single-threaded by contract (parallel sweeps
  // construct one solver per task), so this is not a race.
  mutable NewtonWorkspace ws_;
};

// Convenience one-shot solve.
DcResult solve_dc(const Netlist& netlist, double temp_c,
                  const DcOptions& options = {},
                  const std::vector<double>* initial_guess = nullptr);

}  // namespace lpsram
