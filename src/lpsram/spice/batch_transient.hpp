// Lane-batched backward-Euler transient engine for defect sweeps.
//
// The Df1..Df32 characterization transients (regulator deep-sleep entry with
// an injected defect resistance) share one topology: lanes differ only in
// the value of one resistor and in their initial operating point. This
// engine marches K such transients together. Each lane keeps its own
// adaptive time step, Newton iterate and waveform — the lockstep is over
// *work*, not over simulated time: every round performs one Newton
// iteration for every in-flight lane, so system assembly runs once per
// round with the MOSFET model evaluated across lanes and the shared-pattern
// LU factored by SparseLuLanes (util/sparse_lanes.hpp).
//
// Numerics contract: because every lane replays the serial TransientSolver
// recipe — same stimulus schedule, same per-attempt base freeze, same
// Newton update, residual test, conditional refinement and step control —
// a lane's waveform under SimdKind::Scalar is bit-identical to running
// TransientSolver on that lane alone, with one caveat: the LU pivot order
// is analyzed once from the first lane's first Jacobian and shared, where
// standalone solves analyze their own values (identical values, identical
// order). Under SimdKind::Simd the MOSFET restamps use the vectorized
// model (device/mosfet_lanes.hpp), which agrees with the scalar model to
// the documented ulp level. Lanes that leave the shared pivot order's
// stability region, or whose step size underflows, are *evicted*: they are
// re-run from scratch through the serial TransientSolver, so their results
// (including any ConvergenceError) are exactly the serial ones.
//
// Kind selection follows the ScopedCellKernelDefault pattern
// (cell/batch_vtc.hpp): a process-wide default, resolvable to a concrete
// kind, with an RAII override for tests and benchmarks.
#pragma once

#include <cstdint>
#include <vector>

#include "lpsram/spice/elements.hpp"
#include "lpsram/spice/transient.hpp"

namespace lpsram {

enum class TransientBatchKind : std::uint8_t {
  Auto = 0,     // resolve to the library default
  Serial = 1,   // one TransientSolver per lane — the equivalence oracle
  Lockstep = 2  // lane-batched engine
};

// Process-wide default; Auto resolves to Lockstep.
TransientBatchKind default_transient_batch_kind() noexcept;
TransientBatchKind set_default_transient_batch_kind(
    TransientBatchKind kind) noexcept;
TransientBatchKind resolved_transient_batch_kind() noexcept;

class ScopedTransientBatchDefault {
 public:
  explicit ScopedTransientBatchDefault(TransientBatchKind kind) noexcept
      : previous_(set_default_transient_batch_kind(kind)) {}
  ~ScopedTransientBatchDefault() {
    set_default_transient_batch_kind(previous_);
  }
  ScopedTransientBatchDefault(const ScopedTransientBatchDefault&) = delete;
  ScopedTransientBatchDefault& operator=(const ScopedTransientBatchDefault&) =
      delete;

 private:
  TransientBatchKind previous_;
};

// One lane of a batched run: the defect override applied to the shared
// netlist plus the lane's initial state.
struct TransientLane {
  // Resistor element whose value this lane overrides; -1 for no override
  // (the lane runs the netlist as-is). Override elements must be disjoint
  // from anything the stimulus mutates, and the stimulus itself may only
  // mutate *linear base* elements (resistors, sources) — those are captured
  // per lane at base-freeze time, while capacitances, MOSFET parameters and
  // current loads are read lane-invariantly by the batched assembly.
  ElementId element = -1;
  double ohms = 0.0;
  // Initial unknown vector (the lane's DC operating point, typically solved
  // with the override applied and the stimulus at t = 0). Required.
  std::vector<double> initial_x;
};

class BatchTransientSolver {
 public:
  // `netlist` must outlive the solver and is treated as scratch during
  // run(): lane overrides and the stimulus mutate element values (topology
  // fixed). Override elements are restored to their entry values before
  // run() returns; stimulus-touched elements follow the TransientSolver
  // convention (left at their last value).
  BatchTransientSolver(Netlist& netlist, double temp_c,
                       TransientOptions options = {});

  // Runs every lane from t = 0 to t_stop and returns one waveform per lane,
  // in lane order. Dispatches on resolved_transient_batch_kind(): Serial
  // runs each lane through a plain TransientSolver, Lockstep batches them.
  // Throws ConvergenceError exactly where the serial path would (a lane
  // whose step size underflows).
  std::vector<Waveform> run(const std::vector<TransientLane>& lanes,
                            const std::vector<NodeId>& probes,
                            const Stimulus& stimulus = {});

  // Lanes the last run() evicted from the lockstep to the serial fallback
  // (0 on the happy path; diagnostics and tests).
  std::size_t evictions() const noexcept { return evictions_; }

 private:
  std::vector<Waveform> run_serial(const std::vector<TransientLane>& lanes,
                                   const std::vector<NodeId>& probes,
                                   const Stimulus& stimulus);
  std::vector<Waveform> run_lockstep(const std::vector<TransientLane>& lanes,
                                     const std::vector<NodeId>& probes,
                                     const Stimulus& stimulus);

  Netlist& netlist_;
  double temp_c_;
  TransientOptions options_;
  SystemAssembler assembler_;
  std::size_t evictions_ = 0;
};

}  // namespace lpsram
