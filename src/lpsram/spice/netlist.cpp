#include "lpsram/spice/netlist.hpp"

#include <algorithm>
#include <utility>

#include <atomic>

#include "lpsram/util/error.hpp"

namespace lpsram {
namespace {

// Process-wide monotonic stamp source: every mutation of any netlist draws a
// unique value, so equal version() stamps imply identical electrical state
// even across copies (a copy keeps its source's stamp — and its values —
// until its own first mutation).
std::atomic<std::uint64_t> g_netlist_version{0};

}  // namespace

void Netlist::touch() noexcept {
  version_ = g_netlist_version.fetch_add(1, std::memory_order_relaxed) + 1;
}

Netlist::Netlist() { node_names_.push_back("0"); }

NodeId Netlist::add_node(const std::string& name) {
  if (has_node(name))
    throw InvalidArgument("Netlist: duplicate node name '" + name + "'");
  node_names_.push_back(name);
  return static_cast<NodeId>(node_names_.size() - 1);
}

NodeId Netlist::node(const std::string& name) const {
  const auto it = std::find(node_names_.begin(), node_names_.end(), name);
  if (it == node_names_.end())
    throw InvalidArgument("Netlist: unknown node '" + name + "'");
  return static_cast<NodeId>(it - node_names_.begin());
}

bool Netlist::has_node(const std::string& name) const noexcept {
  return std::find(node_names_.begin(), node_names_.end(), name) !=
         node_names_.end();
}

const std::string& Netlist::node_name(NodeId id) const {
  check_node(id);
  return node_names_[static_cast<std::size_t>(id)];
}

void Netlist::check_node(NodeId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= node_names_.size())
    throw InvalidArgument("Netlist: node id out of range");
}

ElementId Netlist::add_resistor(const std::string& name, NodeId a, NodeId b,
                                double ohms) {
  check_node(a);
  check_node(b);
  if (!(ohms > 0.0)) throw InvalidArgument("Netlist: resistance must be > 0");
  elements_.push_back({name, Resistor{a, b, ohms}});
  vsource_branches_.push_back(-1);
  touch();
  return static_cast<ElementId>(elements_.size() - 1);
}

ElementId Netlist::add_capacitor(const std::string& name, NodeId a, NodeId b,
                                 double farads) {
  check_node(a);
  check_node(b);
  if (!(farads >= 0.0))
    throw InvalidArgument("Netlist: capacitance must be >= 0");
  elements_.push_back({name, Capacitor{a, b, farads}});
  vsource_branches_.push_back(-1);
  touch();
  return static_cast<ElementId>(elements_.size() - 1);
}

ElementId Netlist::add_vsource(const std::string& name, NodeId pos, NodeId neg,
                               double volts) {
  check_node(pos);
  check_node(neg);
  elements_.push_back({name, VSource{pos, neg, volts}});
  vsource_branches_.push_back(static_cast<int>(vsource_count_++));
  touch();
  return static_cast<ElementId>(elements_.size() - 1);
}

ElementId Netlist::add_isource(const std::string& name, NodeId from, NodeId to,
                               double amps) {
  check_node(from);
  check_node(to);
  elements_.push_back({name, ISource{from, to, amps}});
  vsource_branches_.push_back(-1);
  touch();
  return static_cast<ElementId>(elements_.size() - 1);
}

ElementId Netlist::add_mosfet(const std::string& name,
                              const MosfetParams& params, NodeId g, NodeId d,
                              NodeId s) {
  check_node(g);
  check_node(d);
  check_node(s);
  MosfetParams named = params;
  if (named.name.empty()) named.name = name;
  elements_.push_back({name, MosElement{Mosfet{named}, g, d, s}});
  vsource_branches_.push_back(-1);
  touch();
  return static_cast<ElementId>(elements_.size() - 1);
}

ElementId Netlist::add_current_load(const std::string& name, NodeId node,
                                    CurrentLoadFn iv) {
  check_node(node);
  if (!iv) throw InvalidArgument("Netlist: null current-load function");
  elements_.push_back({name, CurrentLoad{node, std::move(iv)}});
  vsource_branches_.push_back(-1);
  touch();
  return static_cast<ElementId>(elements_.size() - 1);
}

const Element& Netlist::element(ElementId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= elements_.size())
    throw InvalidArgument("Netlist: element id out of range");
  return elements_[static_cast<std::size_t>(id)];
}

Element& Netlist::element(ElementId id) {
  touch();  // a mutable reference escapes: assume the caller writes through it
  return const_cast<Element&>(std::as_const(*this).element(id));
}

ElementId Netlist::find(const std::string& name) const {
  for (std::size_t i = 0; i < elements_.size(); ++i) {
    if (elements_[i].name == name) return static_cast<ElementId>(i);
  }
  throw InvalidArgument("Netlist: unknown element '" + name + "'");
}

bool Netlist::has_element(const std::string& name) const noexcept {
  for (const Element& e : elements_) {
    if (e.name == name) return true;
  }
  return false;
}

double Netlist::resistance(ElementId id) const {
  const auto* r = std::get_if<Resistor>(&element(id).body);
  if (!r) throw InvalidArgument("Netlist: element is not a resistor");
  return r->ohms;
}

void Netlist::set_resistance(ElementId id, double ohms) {
  auto* r = std::get_if<Resistor>(&element(id).body);
  if (!r) throw InvalidArgument("Netlist: element is not a resistor");
  if (!(ohms > 0.0)) throw InvalidArgument("Netlist: resistance must be > 0");
  r->ohms = ohms;
  touch();
}

double Netlist::source_voltage(ElementId id) const {
  const auto* v = std::get_if<VSource>(&element(id).body);
  if (!v) throw InvalidArgument("Netlist: element is not a voltage source");
  return v->volts;
}

void Netlist::set_source_voltage(ElementId id, double volts) {
  auto* v = std::get_if<VSource>(&element(id).body);
  if (!v) throw InvalidArgument("Netlist: element is not a voltage source");
  v->volts = volts;
  touch();
}

void Netlist::set_source_current(ElementId id, double amps) {
  auto* i = std::get_if<ISource>(&element(id).body);
  if (!i) throw InvalidArgument("Netlist: element is not a current source");
  i->amps = amps;
  touch();
}

MosfetParams& Netlist::mosfet_params(ElementId id) {
  auto* m = std::get_if<MosElement>(&element(id).body);
  if (!m) throw InvalidArgument("Netlist: element is not a MOSFET");
  touch();  // mutable parameter reference escapes (corner application etc.)
  return m->device.params();
}

int Netlist::vsource_branch(ElementId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= vsource_branches_.size() ||
      vsource_branches_[static_cast<std::size_t>(id)] < 0)
    throw InvalidArgument("Netlist: element is not a voltage source");
  return vsource_branches_[static_cast<std::size_t>(id)];
}

namespace {

// FNV-1a style folding; doubles hash by bit pattern so the signature is an
// exact-value fingerprint, not a tolerance-based one.
inline std::uint64_t fold(std::uint64_t h, std::uint64_t v) noexcept {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

inline std::uint64_t bits(double v) noexcept {
  std::uint64_t out;
  static_assert(sizeof(out) == sizeof(v));
  __builtin_memcpy(&out, &v, sizeof(out));
  return out;
}

}  // namespace

std::uint64_t Netlist::state_signature(ElementId exclude) const noexcept {
  std::uint64_t h = 0x6c707372616d5f6eULL;  // "lpsram_n"
  for (std::size_t i = 0; i < elements_.size(); ++i) {
    h = fold(h, i);
    if (static_cast<ElementId>(i) == exclude) continue;
    const Element& e = elements_[i];
    if (const auto* r = std::get_if<Resistor>(&e.body)) {
      h = fold(h, bits(r->ohms));
    } else if (const auto* c = std::get_if<Capacitor>(&e.body)) {
      h = fold(h, bits(c->farads));
    } else if (const auto* v = std::get_if<VSource>(&e.body)) {
      h = fold(h, bits(v->volts));
    } else if (const auto* s = std::get_if<ISource>(&e.body)) {
      h = fold(h, bits(s->amps));
    } else if (const auto* m = std::get_if<MosElement>(&e.body)) {
      const MosfetParams& p = m->device.params();
      h = fold(h, static_cast<std::uint64_t>(p.type));
      h = fold(h, bits(p.vth0));
      h = fold(h, bits(p.kp));
      h = fold(h, bits(p.w));
      h = fold(h, bits(p.l));
      h = fold(h, bits(p.dvth));
      h = fold(h, bits(p.mob_factor));
    }
    // CurrentLoad: position folded above, behaviour invisible (see header).
  }
  return h;
}

}  // namespace lpsram
