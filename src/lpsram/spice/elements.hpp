// MNA system assembly: turns a Netlist plus a candidate solution vector into
// a Jacobian matrix and KCL residual vector. Shared by the DC and transient
// solvers.
//
// Unknown vector layout: [ v(1) .. v(N-1) | i(vsrc 0) .. i(vsrc M-1) ]
// where node 0 (ground) is eliminated. Residual rows follow the same layout:
// KCL (current leaving each node) for node rows, and v(pos)-v(neg)-V for
// voltage-source branch rows.
#pragma once

#include <memory>
#include <vector>

#include "lpsram/spice/netlist.hpp"
#include "lpsram/spice/stamp_plan.hpp"
#include "lpsram/util/matrix.hpp"

namespace lpsram {

class SystemAssembler {
 public:
  // The assembler keeps a reference to the netlist; element *values* are read
  // live at each assemble() call, so stimulus code may mutate the netlist
  // between calls. Topology (nodes/elements) must not change afterwards.
  SystemAssembler(const Netlist& netlist, double temp_c);

  // Total unknown count: (node_count - 1) + vsource_count.
  std::size_t dimension() const noexcept { return dim_; }

  double temperature() const noexcept { return temp_c_; }
  void set_temperature(double temp_c) noexcept { temp_c_ = temp_c; }

  // Assembles Jacobian and residual at solution estimate `x`.
  //  * `gmin`: conductance added from every node to ground (convergence aid
  //    and floating-node regularizer).
  //  * If `dt > 0`, capacitors are stamped with the backward-Euler companion
  //    model using the previous-step solution `x_prev` (must be non-null);
  //    if `dt <= 0`, capacitors are open (DC).
  void assemble(const std::vector<double>& x, Matrix& jacobian,
                std::vector<double>& residual, double gmin,
                const std::vector<double>* x_prev = nullptr,
                double dt = 0.0) const;

  // Sparse structure-aware assembly into a NewtonWorkspace (see
  // stamp_plan.hpp). Binds the workspace to this topology's stamp plan on
  // first use; freezes the linear stamps (resistors, sources, gmin) into the
  // workspace base whenever the (netlist values, gmin) epoch changes; then
  // per call copies the base and restamps only nonlinear devices — MOSFETs,
  // current loads, and capacitors when dt > 0. After the call, ws.jacobian
  // and ws.residual hold the same system assemble() would produce (up to
  // floating-point addition order). Allocation-free once ws is bound and the
  // base is frozen.
  void assemble_sparse(const std::vector<double>& x, double gmin,
                       NewtonWorkspace& ws,
                       const std::vector<double>* x_prev = nullptr,
                       double dt = 0.0) const;

  // Residual-only evaluation: same values as the residual produced by
  // assemble(), with no Jacobian work at all. Used by convergence
  // diagnostics (DcSolver::residual_report).
  void assemble_residual(const std::vector<double>& x,
                         std::vector<double>& residual, double gmin,
                         const std::vector<double>* x_prev = nullptr,
                         double dt = 0.0) const;

  // This topology's symbolic stamp plan (built lazily, shared process-wide
  // across assemblers of identical topology).
  const std::shared_ptr<const StampPlan>& plan() const;

  // Node voltage from a solution vector (ground reads as 0).
  double node_voltage(const std::vector<double>& x, NodeId node) const;

  // Branch current through a voltage source, flowing from its `pos` terminal
  // through the source to `neg` (positive when the source delivers current
  // out of its positive terminal into the circuit ... i.e. standard MNA sign:
  // current entering the positive node from the source is -i_branch).
  double vsource_current(const std::vector<double>& x, ElementId vsrc) const;

  // Expands the solution vector to per-node voltages including ground.
  std::vector<double> node_voltages(const std::vector<double>& x) const;

 private:
  int unknown_of_node(NodeId node) const noexcept {
    return node == kGround ? -1 : node - 1;
  }

  const Netlist& netlist_;
  double temp_c_;
  std::size_t n_nodes_;  // excluding ground
  std::size_t dim_;
  // Lazily fetched stamp plan (assemble_sparse / plan()).
  mutable std::shared_ptr<const StampPlan> plan_;
};

}  // namespace lpsram
