// Backward-Euler transient solver with adaptive step control.
//
// Used for the defect behaviours that have no DC signature: Df8 (series
// resistance on the biasing transistor's gate delays regulator activation)
// and Df11 (undershoot on the reference input of the error amplifier), plus
// the deep-sleep entry droop of VDD_CC in general.
#pragma once

#include <functional>
#include <vector>

#include "lpsram/spice/dc_solver.hpp"

namespace lpsram {

// Stimulus callback: invoked before each accepted step with the time of the
// step being computed; may mutate source values in the netlist (topology must
// stay fixed).
using Stimulus = std::function<void(double t, Netlist& netlist)>;

struct TransientOptions {
  double t_stop = 1e-3;    // [s]
  double dt_initial = 1e-8;
  double dt_min = 1e-12;
  double dt_max = 1e-5;
  DcOptions dc;            // Newton settings reused per step
};

// Recorded waveform of selected probe nodes.
struct Waveform {
  std::vector<double> time;                 // [s], one entry per accepted step
  std::vector<std::vector<double>> values;  // values[p][k] = probe p at time k

  // Minimum recorded value of probe p.
  double min_value(std::size_t p) const;
  // Value of probe p at (or interpolated around) time t.
  double at(std::size_t p, double t) const;
  // Time integral of max(0, threshold - v_p(t)) over the record — the
  // "retention deficit" used by the flip model.
  double deficit_integral(std::size_t p, double threshold) const;
};

class TransientSolver {
 public:
  // `netlist` must outlive the solver. Probes are node ids whose voltages get
  // recorded at every accepted step.
  TransientSolver(Netlist& netlist, double temp_c,
                  TransientOptions options = {});

  // Runs from t=0 to t_stop. The initial state is the DC operating point of
  // the netlist as configured after `stimulus(0, netlist)` has been applied,
  // unless `initial_x` (raw unknown vector) is provided.
  Waveform run(const std::vector<NodeId>& probes, const Stimulus& stimulus = {},
               const std::vector<double>* initial_x = nullptr);

  // Raw final solution vector of the last run (usable as a warm start).
  const std::vector<double>& final_state() const noexcept { return x_; }

 private:
  // One backward-Euler step of size dt from state x_; returns success.
  // Dispatches to the sparse or dense Newton kernel per options_.dc.
  bool step(double dt, std::vector<double>& x_next);
  bool step_sparse(double dt, std::vector<double>& x_next);
  bool step_dense(double dt, std::vector<double>& x_next);

  Netlist& netlist_;
  double temp_c_;
  TransientOptions options_;
  SystemAssembler assembler_;
  std::vector<double> x_;
  // Sparse-path scratch, reused across all steps of a run (the stamp plan
  // and LU pattern are per-topology, so nothing is rebuilt between steps).
  NewtonWorkspace ws_;
};

}  // namespace lpsram
