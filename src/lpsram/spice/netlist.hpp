// Circuit netlist: named nodes plus resistors, capacitors, independent
// sources, MOSFETs and nonlinear current loads.
//
// This is the substrate that replaces the proprietary SPICE deck the paper
// used: the voltage regulator of Fig. 5 is built as one of these netlists,
// defect injection mutates element values in place, and the solvers in
// dc_solver.hpp / transient.hpp evaluate it.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <variant>
#include <vector>

#include "lpsram/device/mosfet.hpp"

namespace lpsram {

// Node handle; node 0 is always ground.
using NodeId = int;
// Element handle: index into the netlist's element list.
using ElementId = int;

inline constexpr NodeId kGround = 0;

// Two-terminal linear resistor.
struct Resistor {
  NodeId a = kGround;
  NodeId b = kGround;
  double ohms = 0.0;
};

// Two-terminal linear capacitor (open in DC, companion model in transient).
struct Capacitor {
  NodeId a = kGround;
  NodeId b = kGround;
  double farads = 0.0;
};

// Independent voltage source; contributes one branch-current unknown.
struct VSource {
  NodeId pos = kGround;
  NodeId neg = kGround;
  double volts = 0.0;
};

// Independent current source pushing `amps` from node `from` to node `to`.
struct ISource {
  NodeId from = kGround;
  NodeId to = kGround;
  double amps = 0.0;
};

// Three-terminal MOSFET (bulk implicit; see mosfet.hpp).
struct MosElement {
  Mosfet device;
  NodeId g = kGround;
  NodeId d = kGround;
  NodeId s = kGround;
};

// Evaluation of a nonlinear grounded load: returns {current leaving the node,
// d(current)/d(voltage)} at node voltage `v` and temperature `temp_c`.
using CurrentLoadFn =
    std::function<std::pair<double, double>(double v, double temp_c)>;

// Nonlinear current load from `node` to ground (e.g. aggregated core-cell
// array leakage hanging off the VDD_CC line).
struct CurrentLoad {
  NodeId node = kGround;
  CurrentLoadFn iv;
};

// One netlist element: a name plus one of the element bodies above.
struct Element {
  std::string name;
  std::variant<Resistor, Capacitor, VSource, ISource, MosElement, CurrentLoad>
      body;
};

class Netlist {
 public:
  Netlist();

  // --- topology ----------------------------------------------------------
  // Creates a named node and returns its id. Names must be unique.
  NodeId add_node(const std::string& name);
  // Looks up a node by name; throws InvalidArgument if absent.
  NodeId node(const std::string& name) const;
  // True if a node with this name exists.
  bool has_node(const std::string& name) const noexcept;
  // Number of nodes including ground.
  std::size_t node_count() const noexcept { return node_names_.size(); }
  const std::string& node_name(NodeId id) const;

  // --- element creation ---------------------------------------------------
  ElementId add_resistor(const std::string& name, NodeId a, NodeId b,
                         double ohms);
  ElementId add_capacitor(const std::string& name, NodeId a, NodeId b,
                          double farads);
  ElementId add_vsource(const std::string& name, NodeId pos, NodeId neg,
                        double volts);
  ElementId add_isource(const std::string& name, NodeId from, NodeId to,
                        double amps);
  ElementId add_mosfet(const std::string& name, const MosfetParams& params,
                       NodeId g, NodeId d, NodeId s);
  ElementId add_current_load(const std::string& name, NodeId node,
                             CurrentLoadFn iv);

  // --- element access / mutation ------------------------------------------
  std::size_t element_count() const noexcept { return elements_.size(); }
  const Element& element(ElementId id) const;
  Element& element(ElementId id);
  // Finds an element by name; throws InvalidArgument if absent.
  ElementId find(const std::string& name) const;
  bool has_element(const std::string& name) const noexcept;

  double resistance(ElementId id) const;
  void set_resistance(ElementId id, double ohms);
  double source_voltage(ElementId id) const;
  void set_source_voltage(ElementId id, double volts);
  void set_source_current(ElementId id, double amps);
  // Mutable access to a MOSFET's parameters (e.g. corner application).
  MosfetParams& mosfet_params(ElementId id);

  // Number of voltage sources (each adds one MNA branch unknown).
  std::size_t vsource_count() const noexcept { return vsource_count_; }
  // Branch index (0-based among voltage sources) of a VSource element.
  int vsource_branch(ElementId id) const;

  const std::vector<Element>& elements() const noexcept { return elements_; }

  // Order-sensitive hash of the netlist's mutable electrical state: every
  // element's value (resistance, capacitance, source level, MOSFET
  // parameters) folded in element order. Two netlists built by the same code
  // path have equal signatures iff their element values match, which is what
  // the runtime SolveCache keys operating points on. `exclude` names one
  // element (typically the swept defect resistor) whose value is left out of
  // the hash so a resistance sweep shares a single cache bucket; -1 excludes
  // nothing. CurrentLoad elements hash as position-only (their behaviour is
  // a closure this function cannot see) — callers whose loads carry mutable
  // state must fold that state into the key themselves.
  std::uint64_t state_signature(ElementId exclude = -1) const noexcept;

  // Monotonic mutation stamp, drawn from a process-wide counter: every
  // mutation (element creation, value change, or handing out a mutable
  // element/parameter reference) assigns a globally fresh value. Equal
  // stamps therefore guarantee identical electrical state — copies share
  // the stamp of their source until first mutation — which is what the
  // sparse assembler's frozen-base epoch check keys on. O(1), unlike
  // state_signature(), so it is safe to read every Newton iteration.
  std::uint64_t version() const noexcept { return version_; }

 private:
  void check_node(NodeId id) const;
  // Assigns a fresh process-unique version stamp; called by every mutator.
  void touch() noexcept;

  std::vector<std::string> node_names_;
  std::vector<Element> elements_;
  std::vector<int> vsource_branches_;  // per element; -1 if not a VSource
  std::size_t vsource_count_ = 0;
  std::uint64_t version_ = 0;
};

}  // namespace lpsram
