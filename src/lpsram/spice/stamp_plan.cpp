#include "lpsram/spice/stamp_plan.hpp"

#include <algorithm>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "lpsram/util/error.hpp"

namespace lpsram {
namespace {

// Appends `v` to the descriptor and folds it into the running FNV-1a hash.
void fold(std::vector<std::int64_t>& descriptor, std::uint64_t& hash,
          std::int64_t v) {
  descriptor.push_back(v);
  hash ^= static_cast<std::uint64_t>(v);
  hash *= 0x100000001b3ULL;
}

// Full structural identity of a netlist: node/vsource counts plus every
// element's variant index and terminal nodes, in element order. Element
// *values* are deliberately absent — the plan is purely topological.
std::pair<std::uint64_t, std::vector<std::int64_t>> topology_of(
    const Netlist& netlist) {
  std::vector<std::int64_t> d;
  d.reserve(2 + netlist.element_count() * 4);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  fold(d, h, static_cast<std::int64_t>(netlist.node_count()));
  fold(d, h, static_cast<std::int64_t>(netlist.vsource_count()));
  for (std::size_t ei = 0; ei < netlist.element_count(); ++ei) {
    const Element& el = netlist.element(static_cast<ElementId>(ei));
    fold(d, h, static_cast<std::int64_t>(el.body.index()));
    if (const auto* r = std::get_if<Resistor>(&el.body)) {
      fold(d, h, r->a);
      fold(d, h, r->b);
    } else if (const auto* c = std::get_if<Capacitor>(&el.body)) {
      fold(d, h, c->a);
      fold(d, h, c->b);
    } else if (const auto* v = std::get_if<VSource>(&el.body)) {
      fold(d, h, v->pos);
      fold(d, h, v->neg);
      fold(d, h, netlist.vsource_branch(static_cast<ElementId>(ei)));
    } else if (const auto* i = std::get_if<ISource>(&el.body)) {
      fold(d, h, i->from);
      fold(d, h, i->to);
    } else if (const auto* m = std::get_if<MosElement>(&el.body)) {
      fold(d, h, m->g);
      fold(d, h, m->d);
      fold(d, h, m->s);
    } else if (const auto* l = std::get_if<CurrentLoad>(&el.body)) {
      fold(d, h, l->node);
    }
  }
  return {h, std::move(d)};
}

int unknown_of(NodeId node) noexcept {
  return node == kGround ? -1 : node - 1;
}

// Pattern under construction: per-row column lists, deduplicated at the end.
struct PatternBuilder {
  explicit PatternBuilder(std::size_t dim) : rows(dim) {}

  void add(int r, int c) {
    if (r >= 0 && c >= 0) rows[static_cast<std::size_t>(r)].push_back(c);
  }

  void finalize(StampPlan& plan) {
    plan.row_ptr.assign(rows.size() + 1, 0);
    plan.cols.clear();
    for (std::size_t r = 0; r < rows.size(); ++r) {
      plan.row_ptr[r] = static_cast<int>(plan.cols.size());
      auto& row = rows[r];
      std::sort(row.begin(), row.end());
      row.erase(std::unique(row.begin(), row.end()), row.end());
      plan.cols.insert(plan.cols.end(), row.begin(), row.end());
    }
    plan.row_ptr[rows.size()] = static_cast<int>(plan.cols.size());
  }

  std::vector<std::vector<int>> rows;
};

// Flat slot of (r, c) in the finalized pattern; -1 when r or c is ground.
int slot_of(const StampPlan& plan, int r, int c) {
  if (r < 0 || c < 0) return -1;
  const auto begin = plan.cols.begin() + plan.row_ptr[static_cast<std::size_t>(r)];
  const auto end = plan.cols.begin() + plan.row_ptr[static_cast<std::size_t>(r) + 1];
  const auto it = std::lower_bound(begin, end, c);
  if (it == end || *it != c)
    throw InvalidArgument("StampPlan: slot missing from own pattern");
  return static_cast<int>(it - plan.cols.begin());
}

std::shared_ptr<const StampPlan> build_plan(const Netlist& netlist,
                                            std::uint64_t signature,
                                            std::vector<std::int64_t> descriptor) {
  auto plan = std::make_shared<StampPlan>();
  plan->n_nodes = netlist.node_count() - 1;
  plan->dim = plan->n_nodes + netlist.vsource_count();
  plan->topology_signature = signature;
  plan->topology_descriptor = std::move(descriptor);

  // Pass 1: collect the structural footprint of every element, plus the
  // node-row diagonal so gmin always has a slot.
  PatternBuilder pattern(plan->dim);
  for (std::size_t u = 0; u < plan->n_nodes; ++u)
    pattern.add(static_cast<int>(u), static_cast<int>(u));

  for (std::size_t ei = 0; ei < netlist.element_count(); ++ei) {
    const Element& el = netlist.element(static_cast<ElementId>(ei));
    if (const auto* r = std::get_if<Resistor>(&el.body)) {
      const int ua = unknown_of(r->a), ub = unknown_of(r->b);
      pattern.add(ua, ua);
      pattern.add(ua, ub);
      pattern.add(ub, ua);
      pattern.add(ub, ub);
    } else if (const auto* c = std::get_if<Capacitor>(&el.body)) {
      const int ua = unknown_of(c->a), ub = unknown_of(c->b);
      pattern.add(ua, ua);
      pattern.add(ua, ub);
      pattern.add(ub, ua);
      pattern.add(ub, ub);
    } else if (const auto* v = std::get_if<VSource>(&el.body)) {
      const int up = unknown_of(v->pos), un = unknown_of(v->neg);
      const int br = static_cast<int>(plan->n_nodes) +
                     netlist.vsource_branch(static_cast<ElementId>(ei));
      pattern.add(up, br);
      pattern.add(br, up);
      pattern.add(un, br);
      pattern.add(br, un);
    } else if (const auto* m = std::get_if<MosElement>(&el.body)) {
      const int ug = unknown_of(m->g), ud = unknown_of(m->d),
                us = unknown_of(m->s);
      pattern.add(ud, ug);
      pattern.add(ud, ud);
      pattern.add(ud, us);
      pattern.add(us, ug);
      pattern.add(us, ud);
      pattern.add(us, us);
    } else if (const auto* l = std::get_if<CurrentLoad>(&el.body)) {
      const int u = unknown_of(l->node);
      pattern.add(u, u);
    }
    // ISource: residual-only, no Jacobian footprint.
  }
  pattern.finalize(*plan);

  // Pass 2: resolve every element's slots against the finalized pattern.
  plan->gmin_slots.resize(plan->n_nodes);
  for (std::size_t u = 0; u < plan->n_nodes; ++u)
    plan->gmin_slots[u] =
        slot_of(*plan, static_cast<int>(u), static_cast<int>(u));

  for (std::size_t ei = 0; ei < netlist.element_count(); ++ei) {
    const Element& el = netlist.element(static_cast<ElementId>(ei));
    const ElementId id = static_cast<ElementId>(ei);
    if (const auto* r = std::get_if<Resistor>(&el.body)) {
      ResistorStamp s;
      s.el = id;
      s.ua = unknown_of(r->a);
      s.ub = unknown_of(r->b);
      if (s.ua >= 0) s.saa = slot_of(*plan, s.ua, s.ua);
      if (s.ua >= 0 && s.ub >= 0) {
        s.sab = slot_of(*plan, s.ua, s.ub);
        s.sba = slot_of(*plan, s.ub, s.ua);
      }
      if (s.ub >= 0) s.sbb = slot_of(*plan, s.ub, s.ub);
      plan->resistors.push_back(s);
    } else if (const auto* c = std::get_if<Capacitor>(&el.body)) {
      CapacitorStamp s;
      s.el = id;
      s.ua = unknown_of(c->a);
      s.ub = unknown_of(c->b);
      if (s.ua >= 0) s.saa = slot_of(*plan, s.ua, s.ua);
      if (s.ua >= 0 && s.ub >= 0) {
        s.sab = slot_of(*plan, s.ua, s.ub);
        s.sba = slot_of(*plan, s.ub, s.ua);
      }
      if (s.ub >= 0) s.sbb = slot_of(*plan, s.ub, s.ub);
      plan->capacitors.push_back(s);
    } else if (const auto* v = std::get_if<VSource>(&el.body)) {
      VSourceStamp s;
      s.el = id;
      s.up = unknown_of(v->pos);
      s.un = unknown_of(v->neg);
      s.branch_row =
          static_cast<int>(plan->n_nodes) + netlist.vsource_branch(id);
      if (s.up >= 0) {
        s.s_p_br = slot_of(*plan, s.up, s.branch_row);
        s.s_br_p = slot_of(*plan, s.branch_row, s.up);
      }
      if (s.un >= 0) {
        s.s_n_br = slot_of(*plan, s.un, s.branch_row);
        s.s_br_n = slot_of(*plan, s.branch_row, s.un);
      }
      plan->vsources.push_back(s);
    } else if (const auto* i = std::get_if<ISource>(&el.body)) {
      ISourceStamp s;
      s.el = id;
      s.uf = unknown_of(i->from);
      s.ut = unknown_of(i->to);
      plan->isources.push_back(s);
    } else if (const auto* m = std::get_if<MosElement>(&el.body)) {
      MosStamp s;
      s.el = id;
      s.ug = unknown_of(m->g);
      s.ud = unknown_of(m->d);
      s.us = unknown_of(m->s);
      if (s.ud >= 0) {
        if (s.ug >= 0) s.s_dg = slot_of(*plan, s.ud, s.ug);
        s.s_dd = slot_of(*plan, s.ud, s.ud);
        if (s.us >= 0) s.s_ds = slot_of(*plan, s.ud, s.us);
      }
      if (s.us >= 0) {
        if (s.ug >= 0) s.s_sg = slot_of(*plan, s.us, s.ug);
        if (s.ud >= 0) s.s_sd = slot_of(*plan, s.us, s.ud);
        s.s_ss = slot_of(*plan, s.us, s.us);
      }
      plan->mosfets.push_back(s);
    } else if (const auto* l = std::get_if<CurrentLoad>(&el.body)) {
      LoadStamp s;
      s.el = id;
      s.u = unknown_of(l->node);
      if (s.u >= 0) s.slot = slot_of(*plan, s.u, s.u);
      plan->loads.push_back(s);
    }
  }
  return plan;
}

// Process-wide plan cache. Keyed by the topology hash; descriptors are
// compared on hit so a 64-bit collision can never hand back a wrong plan.
struct PlanCache {
  std::mutex mutex;
  std::unordered_map<std::uint64_t,
                     std::vector<std::shared_ptr<const StampPlan>>>
      by_signature;
};

PlanCache& plan_cache() {
  static PlanCache cache;
  return cache;
}

}  // namespace

std::shared_ptr<const StampPlan> stamp_plan_for(const Netlist& netlist) {
  auto [signature, descriptor] = topology_of(netlist);

  PlanCache& cache = plan_cache();
  {
    const std::lock_guard<std::mutex> lock(cache.mutex);
    const auto it = cache.by_signature.find(signature);
    if (it != cache.by_signature.end()) {
      for (const auto& plan : it->second)
        if (plan->topology_descriptor == descriptor) return plan;
    }
  }

  // Build outside the lock (plan construction touches only the netlist);
  // a racing builder of the same topology just means one redundant build,
  // first insert wins.
  auto plan = build_plan(netlist, signature, std::move(descriptor));

  const std::lock_guard<std::mutex> lock(cache.mutex);
  auto& bucket = cache.by_signature[signature];
  for (const auto& existing : bucket)
    if (existing->topology_descriptor == plan->topology_descriptor)
      return existing;
  bucket.push_back(plan);
  return plan;
}

std::size_t stamp_plan_cache_size() noexcept {
  PlanCache& cache = plan_cache();
  const std::lock_guard<std::mutex> lock(cache.mutex);
  std::size_t n = 0;
  for (const auto& [sig, bucket] : cache.by_signature) n += bucket.size();
  return n;
}

void NewtonWorkspace::bind(std::shared_ptr<const StampPlan> p) {
  if (plan == p) return;
  plan = std::move(p);
  jacobian = SparseMatrix(plan->dim, plan->row_ptr, plan->cols);
  base_values.assign(jacobian.nnz(), 0.0);
  base_rhs.assign(plan->dim, 0.0);
  base_valid = false;
  residual.assign(plan->dim, 0.0);
  dx.assign(plan->dim, 0.0);
  rhs.assign(plan->dim, 0.0);
}

}  // namespace lpsram
