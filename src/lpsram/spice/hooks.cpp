#include "lpsram/spice/hooks.hpp"

#include <atomic>

namespace lpsram {
namespace {

// Session-wide observer slot. Atomic so installation (test setup on the main
// thread) is race-free against solver threads reading it mid-sweep.
std::atomic<SolverObserver*> g_observer{nullptr};

// Per-thread task override (see ScopedTaskObserver). `active` distinguishes
// "no override in force" from "override in force, suppressing the session
// observer" (observer == nullptr).
thread_local SolverObserver* t_task_observer = nullptr;
thread_local bool t_task_override_active = false;

}  // namespace

SolverObserver* solver_observer() noexcept {
  if (t_task_override_active) return t_task_observer;
  return g_observer.load(std::memory_order_acquire);
}

SolverObserver* session_solver_observer() noexcept {
  return g_observer.load(std::memory_order_acquire);
}

SolverObserver* exchange_solver_observer(SolverObserver* observer) noexcept {
  return g_observer.exchange(observer, std::memory_order_acq_rel);
}

ScopedTaskObserver::ScopedTaskObserver(std::uint64_t task_key) {
  if (SolverObserver* session = session_solver_observer())
    fork_ = session->fork_for_task(task_key);
  saved_observer_ = t_task_observer;
  saved_active_ = t_task_override_active;
  t_task_observer = fork_.get();
  t_task_override_active = true;
}

ScopedTaskObserver::~ScopedTaskObserver() {
  t_task_observer = saved_observer_;
  t_task_override_active = saved_active_;
  // fork_ destruction (and its merge into the parent) happens after the
  // override is lifted, so the merge itself is never observed.
}

}  // namespace lpsram
