#include "lpsram/spice/hooks.hpp"

namespace lpsram {
namespace {

SolverObserver* g_observer = nullptr;

}  // namespace

SolverObserver* solver_observer() noexcept { return g_observer; }

SolverObserver* exchange_solver_observer(SolverObserver* observer) noexcept {
  SolverObserver* previous = g_observer;
  g_observer = observer;
  return previous;
}

}  // namespace lpsram
