// Symbolic stamp plans for the sparse MNA solve path.
//
// Circuit topology is fixed once a netlist is built, so where every element
// stamps — which CSR slots its Jacobian entries hit, which residual rows its
// currents land in — can be computed once and replayed without per-iteration
// `unknown_of_node` branching or variant re-dispatch. A StampPlan holds that
// schedule: the Jacobian's CSR pattern plus, per element, the resolved
// unknown indices and flat slot numbers.
//
// Plans are immutable and shared: `stamp_plan_for()` caches them keyed by a
// topology signature, so the thousands of sweep tasks that all solve the
// Fig. 5 regulator (32 defects x PVT points x resistance ladder) build the
// plan once and share one instance across threads.
//
// NewtonWorkspace is the per-solver mutable counterpart: the CSR value
// array, the frozen linear base (see below), residual/rhs/dx vectors and the
// reusable sparse LU — everything a Newton iteration touches, preallocated
// so the steady-state iteration performs zero heap allocations. A workspace
// is owned by exactly one solver and is not thread-safe; parallel sweeps get
// one per task-owning solver instance.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "lpsram/spice/netlist.hpp"
#include "lpsram/util/sparse.hpp"

namespace lpsram {

// Per-element stamp schedules. Unknown indices (`u*`) are -1 for ground;
// slot indices (`s*`) are -1 when the corresponding row or column is ground
// (the stamp helper skips negative slots).

struct ResistorStamp {
  ElementId el = -1;
  int ua = -1, ub = -1;                        // unknowns of terminals a, b
  int saa = -1, sab = -1, sba = -1, sbb = -1;  // slots (a,a) (a,b) (b,a) (b,b)
};

// Same footprint as a resistor: the backward-Euler companion is a
// conductance C/dt between the terminals. The capacitance itself is read
// live from the netlist at stamp time (plans are shared across netlists
// whose topologies match but whose values differ).
struct CapacitorStamp {
  ElementId el = -1;
  int ua = -1, ub = -1;
  int saa = -1, sab = -1, sba = -1, sbb = -1;
};

struct VSourceStamp {
  ElementId el = -1;
  int up = -1, un = -1;  // unknowns of pos, neg
  int branch_row = -1;   // row/col of the branch-current unknown
  int s_p_br = -1, s_br_p = -1;  // slots (pos,branch) and (branch,pos)
  int s_n_br = -1, s_br_n = -1;  // slots (neg,branch) and (branch,neg)
};

struct ISourceStamp {
  ElementId el = -1;
  int uf = -1, ut = -1;  // unknowns of from, to
};

struct MosStamp {
  ElementId el = -1;
  int ug = -1, ud = -1, us = -1;  // unknowns of gate, drain, source
  // Slots for the 2x3 conductance block: rows {d, s} x cols {g, d, s}.
  int s_dg = -1, s_dd = -1, s_ds = -1;
  int s_sg = -1, s_sd = -1, s_ss = -1;
};

struct LoadStamp {
  ElementId el = -1;
  int u = -1;     // unknown of the load node
  int slot = -1;  // diagonal slot (node,node)
};

struct StampPlan {
  std::size_t n_nodes = 0;  // non-ground node count
  std::size_t dim = 0;      // n_nodes + vsource count

  // CSR pattern of the Jacobian (columns ascending within each row). The
  // pattern is the union of every element's stamp footprint plus the node-row
  // diagonal (gmin), so it is valid for every operating point on this
  // topology.
  std::vector<int> row_ptr;
  std::vector<int> cols;

  // Diagonal slot of each node row (gmin stamping), index 0..n_nodes-1.
  std::vector<int> gmin_slots;

  std::vector<ResistorStamp> resistors;
  std::vector<CapacitorStamp> capacitors;
  std::vector<VSourceStamp> vsources;
  std::vector<ISourceStamp> isources;
  std::vector<MosStamp> mosfets;
  std::vector<LoadStamp> loads;

  // Hash + full descriptor of the topology this plan was built from. The
  // descriptor makes cache hits exact (no 64-bit collision risk).
  std::uint64_t topology_signature = 0;
  std::vector<std::int64_t> topology_descriptor;
};

// Builds (or fetches from the process-wide cache) the stamp plan for this
// netlist's topology. Thread-safe; the returned plan is immutable and shared.
std::shared_ptr<const StampPlan> stamp_plan_for(const Netlist& netlist);

// Cache statistics for tests/benchmarks: plans currently cached.
std::size_t stamp_plan_cache_size() noexcept;

// Per-solver scratch for the sparse Newton path. bind() attaches a plan and
// sizes all storage; after that, a Newton iteration allocates nothing.
//
// The "linear base" is the split-stamping state: the Jacobian values and
// residual constant contributed by resistors, voltage/current sources and
// gmin. Those change only when netlist element values or gmin change — the
// epoch key below — so per iteration the assembler copies the base and
// restamps only the nonlinear devices (MOSFETs, current loads, and
// capacitors when in transient).
struct NewtonWorkspace {
  std::shared_ptr<const StampPlan> plan;
  SparseMatrix jacobian;  // live values; pattern owned by the plan

  // Frozen linear part: Jacobian values with only linear stamps applied, and
  // the constant term of the linear residual (ISource amps, -V of sources).
  // Linear residual at x is  A_base * x + base_rhs.
  std::vector<double> base_values;
  std::vector<double> base_rhs;
  std::uint64_t base_version = 0;   // Netlist::version() at freeze
  double base_gmin = -1.0;
  bool base_valid = false;

  std::vector<double> residual;
  std::vector<double> dx;
  std::vector<double> rhs;

  SparseLu lu;

  // Attaches `p` (no-op when already bound to the same plan) and sizes all
  // storage. Invalidates the frozen base when the plan changes.
  void bind(std::shared_ptr<const StampPlan> p);

  // Forces the next assemble to re-freeze the linear base (e.g. after an
  // external netlist mutation the state signature cannot see).
  void invalidate_base() noexcept { base_valid = false; }
};

}  // namespace lpsram
