#include "lpsram/spice/elements.hpp"

#include <algorithm>

#include "lpsram/util/error.hpp"

namespace lpsram {

SystemAssembler::SystemAssembler(const Netlist& netlist, double temp_c)
    : netlist_(netlist),
      temp_c_(temp_c),
      n_nodes_(netlist.node_count() - 1),
      dim_(n_nodes_ + netlist.vsource_count()) {}

double SystemAssembler::node_voltage(const std::vector<double>& x,
                                     NodeId node) const {
  const int u = unknown_of_node(node);
  return u < 0 ? 0.0 : x[static_cast<std::size_t>(u)];
}

double SystemAssembler::vsource_current(const std::vector<double>& x,
                                        ElementId vsrc) const {
  const int branch = netlist_.vsource_branch(vsrc);
  return x[n_nodes_ + static_cast<std::size_t>(branch)];
}

std::vector<double> SystemAssembler::node_voltages(
    const std::vector<double>& x) const {
  std::vector<double> v(netlist_.node_count(), 0.0);
  for (std::size_t i = 0; i < n_nodes_; ++i) v[i + 1] = x[i];
  return v;
}

void SystemAssembler::assemble(const std::vector<double>& x, Matrix& jacobian,
                               std::vector<double>& residual, double gmin,
                               const std::vector<double>* x_prev,
                               double dt) const {
  if (x.size() != dim_)
    throw InvalidArgument("SystemAssembler: solution vector size mismatch");
  if (jacobian.rows() != dim_ || jacobian.cols() != dim_)
    jacobian = Matrix(dim_, dim_);
  else
    jacobian.set_zero();
  residual.assign(dim_, 0.0);

  // Adds `value` to residual row of node (skipping ground).
  auto res_node = [&](NodeId node, double value) {
    const int u = unknown_of_node(node);
    if (u >= 0) residual[static_cast<std::size_t>(u)] += value;
  };
  // Adds `value` to Jacobian entry (row = KCL of node r, col = unknown of
  // node c), skipping ground rows/cols.
  auto jac_node = [&](NodeId r, NodeId c, double value) {
    const int ur = unknown_of_node(r);
    const int uc = unknown_of_node(c);
    if (ur >= 0 && uc >= 0)
      jacobian(static_cast<std::size_t>(ur), static_cast<std::size_t>(uc)) +=
          value;
  };
  auto v_of = [&](NodeId node) { return node_voltage(x, node); };

  for (std::size_t ei = 0; ei < netlist_.element_count(); ++ei) {
    const Element& el = netlist_.element(static_cast<ElementId>(ei));

    if (const auto* r = std::get_if<Resistor>(&el.body)) {
      const double g = 1.0 / r->ohms;
      const double i = g * (v_of(r->a) - v_of(r->b));
      res_node(r->a, i);
      res_node(r->b, -i);
      jac_node(r->a, r->a, g);
      jac_node(r->a, r->b, -g);
      jac_node(r->b, r->a, -g);
      jac_node(r->b, r->b, g);

    } else if (const auto* c = std::get_if<Capacitor>(&el.body)) {
      if (dt > 0.0 && c->farads > 0.0) {
        if (!x_prev)
          throw InvalidArgument("SystemAssembler: transient needs x_prev");
        // Backward Euler companion: i = C/dt * (v_ab - v_ab_prev).
        const double g = c->farads / dt;
        const double vab = v_of(c->a) - v_of(c->b);
        const double vab_prev = [&] {
          const int ua = unknown_of_node(c->a);
          const int ub = unknown_of_node(c->b);
          const double va = ua < 0 ? 0.0 : (*x_prev)[static_cast<std::size_t>(ua)];
          const double vb = ub < 0 ? 0.0 : (*x_prev)[static_cast<std::size_t>(ub)];
          return va - vb;
        }();
        const double i = g * (vab - vab_prev);
        res_node(c->a, i);
        res_node(c->b, -i);
        jac_node(c->a, c->a, g);
        jac_node(c->a, c->b, -g);
        jac_node(c->b, c->a, -g);
        jac_node(c->b, c->b, g);
      }
      // DC: capacitor is an open circuit; nothing to stamp.

    } else if (const auto* v = std::get_if<VSource>(&el.body)) {
      const std::size_t branch_row =
          n_nodes_ + static_cast<std::size_t>(
                         netlist_.vsource_branch(static_cast<ElementId>(ei)));
      const double i_branch = x[branch_row];
      // Branch current leaves the positive node into the source.
      res_node(v->pos, i_branch);
      res_node(v->neg, -i_branch);
      const int up = unknown_of_node(v->pos);
      const int un = unknown_of_node(v->neg);
      if (up >= 0) {
        jacobian(static_cast<std::size_t>(up), branch_row) += 1.0;
        jacobian(branch_row, static_cast<std::size_t>(up)) += 1.0;
      }
      if (un >= 0) {
        jacobian(static_cast<std::size_t>(un), branch_row) -= 1.0;
        jacobian(branch_row, static_cast<std::size_t>(un)) -= 1.0;
      }
      residual[branch_row] += v_of(v->pos) - v_of(v->neg) - v->volts;

    } else if (const auto* isrc = std::get_if<ISource>(&el.body)) {
      res_node(isrc->from, isrc->amps);
      res_node(isrc->to, -isrc->amps);

    } else if (const auto* m = std::get_if<MosElement>(&el.body)) {
      const MosEval e =
          m->device.eval(v_of(m->g), v_of(m->d), v_of(m->s), temp_c_);
      res_node(m->d, e.id);
      res_node(m->s, -e.id);
      jac_node(m->d, m->g, e.gm);
      jac_node(m->d, m->d, e.gds);
      jac_node(m->d, m->s, e.gms);
      jac_node(m->s, m->g, -e.gm);
      jac_node(m->s, m->d, -e.gds);
      jac_node(m->s, m->s, -e.gms);

    } else if (const auto* load = std::get_if<CurrentLoad>(&el.body)) {
      const auto [i, didv] = load->iv(v_of(load->node), temp_c_);
      res_node(load->node, i);
      jac_node(load->node, load->node, didv);
    }
  }

  // gmin from every non-ground node to ground.
  if (gmin > 0.0) {
    for (std::size_t u = 0; u < n_nodes_; ++u) {
      residual[u] += gmin * x[u];
      jacobian(u, u) += gmin;
    }
  }
}

const std::shared_ptr<const StampPlan>& SystemAssembler::plan() const {
  if (!plan_) plan_ = stamp_plan_for(netlist_);
  return plan_;
}

namespace {

// Adds `v` into a planned slot; negative slots are ground rows/cols.
inline void add_slot(std::vector<double>& values, int slot, double v) {
  if (slot >= 0) values[static_cast<std::size_t>(slot)] += v;
}

inline double x_at(const std::vector<double>& x, int u) {
  return u < 0 ? 0.0 : x[static_cast<std::size_t>(u)];
}

}  // namespace

void SystemAssembler::assemble_sparse(const std::vector<double>& x,
                                      double gmin, NewtonWorkspace& ws,
                                      const std::vector<double>* x_prev,
                                      double dt) const {
  if (x.size() != dim_)
    throw InvalidArgument("SystemAssembler: solution vector size mismatch");
  ws.bind(plan());
  const StampPlan& p = *ws.plan;

  // --- linear base: refreeze when the (values, gmin) epoch moved ----------
  // Keyed on the O(1) mutation stamp, not state_signature(): hashing every
  // element value per Newton iteration would cost more than the restamp it
  // is trying to avoid.
  const std::uint64_t sig = netlist_.version();
  if (!ws.base_valid || ws.base_version != sig || ws.base_gmin != gmin) {
    std::fill(ws.base_values.begin(), ws.base_values.end(), 0.0);
    std::fill(ws.base_rhs.begin(), ws.base_rhs.end(), 0.0);

    for (const ResistorStamp& s : p.resistors) {
      const auto& r = std::get<Resistor>(netlist_.element(s.el).body);
      const double g = 1.0 / r.ohms;
      add_slot(ws.base_values, s.saa, g);
      add_slot(ws.base_values, s.sab, -g);
      add_slot(ws.base_values, s.sba, -g);
      add_slot(ws.base_values, s.sbb, g);
    }
    for (const VSourceStamp& s : p.vsources) {
      const auto& v = std::get<VSource>(netlist_.element(s.el).body);
      add_slot(ws.base_values, s.s_p_br, 1.0);
      add_slot(ws.base_values, s.s_br_p, 1.0);
      add_slot(ws.base_values, s.s_n_br, -1.0);
      add_slot(ws.base_values, s.s_br_n, -1.0);
      ws.base_rhs[static_cast<std::size_t>(s.branch_row)] -= v.volts;
    }
    for (const ISourceStamp& s : p.isources) {
      const auto& i = std::get<ISource>(netlist_.element(s.el).body);
      if (s.uf >= 0) ws.base_rhs[static_cast<std::size_t>(s.uf)] += i.amps;
      if (s.ut >= 0) ws.base_rhs[static_cast<std::size_t>(s.ut)] -= i.amps;
    }
    if (gmin > 0.0)
      for (std::size_t u = 0; u < p.n_nodes; ++u)
        ws.base_values[static_cast<std::size_t>(p.gmin_slots[u])] += gmin;

    ws.base_version = sig;
    ws.base_gmin = gmin;
    ws.base_valid = true;
  }

  // --- per-iteration: reload base, linear residual = A_base x + base_rhs --
  // (single fused pass over the pattern; see SparseMatrix::load_multiply_add)
  std::vector<double>& values = ws.jacobian.values();
  ws.jacobian.load_multiply_add(ws.base_values, x, ws.base_rhs, ws.residual);

  // --- restamp nonlinear devices only -------------------------------------
  const std::vector<Element>& elements = netlist_.elements();
  for (const MosStamp& s : p.mosfets) {
    const auto& m =
        *std::get_if<MosElement>(&elements[static_cast<std::size_t>(s.el)].body);
    const MosEval e = m.device.eval(x_at(x, s.ug), x_at(x, s.ud),
                                    x_at(x, s.us), temp_c_);
    if (s.ud >= 0) ws.residual[static_cast<std::size_t>(s.ud)] += e.id;
    if (s.us >= 0) ws.residual[static_cast<std::size_t>(s.us)] -= e.id;
    add_slot(values, s.s_dg, e.gm);
    add_slot(values, s.s_dd, e.gds);
    add_slot(values, s.s_ds, e.gms);
    add_slot(values, s.s_sg, -e.gm);
    add_slot(values, s.s_sd, -e.gds);
    add_slot(values, s.s_ss, -e.gms);
  }
  for (const LoadStamp& s : p.loads) {
    const auto& load =
        *std::get_if<CurrentLoad>(&elements[static_cast<std::size_t>(s.el)].body);
    const auto [i, didv] = load.iv(x_at(x, s.u), temp_c_);
    if (s.u >= 0) ws.residual[static_cast<std::size_t>(s.u)] += i;
    add_slot(values, s.slot, didv);
  }
  if (dt > 0.0) {
    if (!x_prev)
      throw InvalidArgument("SystemAssembler: transient needs x_prev");
    for (const CapacitorStamp& s : p.capacitors) {
      const auto& c =
          *std::get_if<Capacitor>(&elements[static_cast<std::size_t>(s.el)].body);
      if (c.farads <= 0.0) continue;
      const double g = c.farads / dt;
      const double vab = x_at(x, s.ua) - x_at(x, s.ub);
      const double vab_prev = x_at(*x_prev, s.ua) - x_at(*x_prev, s.ub);
      const double i = g * (vab - vab_prev);
      if (s.ua >= 0) ws.residual[static_cast<std::size_t>(s.ua)] += i;
      if (s.ub >= 0) ws.residual[static_cast<std::size_t>(s.ub)] -= i;
      add_slot(values, s.saa, g);
      add_slot(values, s.sab, -g);
      add_slot(values, s.sba, -g);
      add_slot(values, s.sbb, g);
    }
  }
}

void SystemAssembler::assemble_residual(const std::vector<double>& x,
                                        std::vector<double>& residual,
                                        double gmin,
                                        const std::vector<double>* x_prev,
                                        double dt) const {
  if (x.size() != dim_)
    throw InvalidArgument("SystemAssembler: solution vector size mismatch");
  residual.assign(dim_, 0.0);

  auto res_node = [&](NodeId node, double value) {
    const int u = unknown_of_node(node);
    if (u >= 0) residual[static_cast<std::size_t>(u)] += value;
  };
  auto v_of = [&](NodeId node) { return node_voltage(x, node); };

  for (std::size_t ei = 0; ei < netlist_.element_count(); ++ei) {
    const Element& el = netlist_.element(static_cast<ElementId>(ei));

    if (const auto* r = std::get_if<Resistor>(&el.body)) {
      // Same arithmetic as assemble() (g = 1/R, then g * dv) so the two
      // residuals agree bit-for-bit, not merely to rounding.
      const double g = 1.0 / r->ohms;
      const double i = g * (v_of(r->a) - v_of(r->b));
      res_node(r->a, i);
      res_node(r->b, -i);

    } else if (const auto* c = std::get_if<Capacitor>(&el.body)) {
      if (dt > 0.0 && c->farads > 0.0) {
        if (!x_prev)
          throw InvalidArgument("SystemAssembler: transient needs x_prev");
        const int ua = unknown_of_node(c->a);
        const int ub = unknown_of_node(c->b);
        const double g = c->farads / dt;
        const double vab = v_of(c->a) - v_of(c->b);
        const double vab_prev = x_at(*x_prev, ua) - x_at(*x_prev, ub);
        const double i = g * (vab - vab_prev);
        res_node(c->a, i);
        res_node(c->b, -i);
      }

    } else if (const auto* v = std::get_if<VSource>(&el.body)) {
      const std::size_t branch_row =
          n_nodes_ + static_cast<std::size_t>(
                         netlist_.vsource_branch(static_cast<ElementId>(ei)));
      const double i_branch = x[branch_row];
      res_node(v->pos, i_branch);
      res_node(v->neg, -i_branch);
      residual[branch_row] += v_of(v->pos) - v_of(v->neg) - v->volts;

    } else if (const auto* isrc = std::get_if<ISource>(&el.body)) {
      res_node(isrc->from, isrc->amps);
      res_node(isrc->to, -isrc->amps);

    } else if (const auto* m = std::get_if<MosElement>(&el.body)) {
      const MosEval e =
          m->device.eval(v_of(m->g), v_of(m->d), v_of(m->s), temp_c_);
      res_node(m->d, e.id);
      res_node(m->s, -e.id);

    } else if (const auto* load = std::get_if<CurrentLoad>(&el.body)) {
      const auto [i, didv] = load->iv(v_of(load->node), temp_c_);
      (void)didv;
      res_node(load->node, i);
    }
  }

  if (gmin > 0.0)
    for (std::size_t u = 0; u < n_nodes_; ++u) residual[u] += gmin * x[u];
}

}  // namespace lpsram
