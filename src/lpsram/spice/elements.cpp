#include "lpsram/spice/elements.hpp"

#include "lpsram/util/error.hpp"

namespace lpsram {

SystemAssembler::SystemAssembler(const Netlist& netlist, double temp_c)
    : netlist_(netlist),
      temp_c_(temp_c),
      n_nodes_(netlist.node_count() - 1),
      dim_(n_nodes_ + netlist.vsource_count()) {}

double SystemAssembler::node_voltage(const std::vector<double>& x,
                                     NodeId node) const {
  const int u = unknown_of_node(node);
  return u < 0 ? 0.0 : x[static_cast<std::size_t>(u)];
}

double SystemAssembler::vsource_current(const std::vector<double>& x,
                                        ElementId vsrc) const {
  const int branch = netlist_.vsource_branch(vsrc);
  return x[n_nodes_ + static_cast<std::size_t>(branch)];
}

std::vector<double> SystemAssembler::node_voltages(
    const std::vector<double>& x) const {
  std::vector<double> v(netlist_.node_count(), 0.0);
  for (std::size_t i = 0; i < n_nodes_; ++i) v[i + 1] = x[i];
  return v;
}

void SystemAssembler::assemble(const std::vector<double>& x, Matrix& jacobian,
                               std::vector<double>& residual, double gmin,
                               const std::vector<double>* x_prev,
                               double dt) const {
  if (x.size() != dim_)
    throw InvalidArgument("SystemAssembler: solution vector size mismatch");
  if (jacobian.rows() != dim_ || jacobian.cols() != dim_)
    jacobian = Matrix(dim_, dim_);
  else
    jacobian.set_zero();
  residual.assign(dim_, 0.0);

  // Adds `value` to residual row of node (skipping ground).
  auto res_node = [&](NodeId node, double value) {
    const int u = unknown_of_node(node);
    if (u >= 0) residual[static_cast<std::size_t>(u)] += value;
  };
  // Adds `value` to Jacobian entry (row = KCL of node r, col = unknown of
  // node c), skipping ground rows/cols.
  auto jac_node = [&](NodeId r, NodeId c, double value) {
    const int ur = unknown_of_node(r);
    const int uc = unknown_of_node(c);
    if (ur >= 0 && uc >= 0)
      jacobian(static_cast<std::size_t>(ur), static_cast<std::size_t>(uc)) +=
          value;
  };
  auto v_of = [&](NodeId node) { return node_voltage(x, node); };

  for (std::size_t ei = 0; ei < netlist_.element_count(); ++ei) {
    const Element& el = netlist_.element(static_cast<ElementId>(ei));

    if (const auto* r = std::get_if<Resistor>(&el.body)) {
      const double g = 1.0 / r->ohms;
      const double i = g * (v_of(r->a) - v_of(r->b));
      res_node(r->a, i);
      res_node(r->b, -i);
      jac_node(r->a, r->a, g);
      jac_node(r->a, r->b, -g);
      jac_node(r->b, r->a, -g);
      jac_node(r->b, r->b, g);

    } else if (const auto* c = std::get_if<Capacitor>(&el.body)) {
      if (dt > 0.0 && c->farads > 0.0) {
        if (!x_prev)
          throw InvalidArgument("SystemAssembler: transient needs x_prev");
        // Backward Euler companion: i = C/dt * (v_ab - v_ab_prev).
        const double g = c->farads / dt;
        const double vab = v_of(c->a) - v_of(c->b);
        const double vab_prev = [&] {
          const int ua = unknown_of_node(c->a);
          const int ub = unknown_of_node(c->b);
          const double va = ua < 0 ? 0.0 : (*x_prev)[static_cast<std::size_t>(ua)];
          const double vb = ub < 0 ? 0.0 : (*x_prev)[static_cast<std::size_t>(ub)];
          return va - vb;
        }();
        const double i = g * (vab - vab_prev);
        res_node(c->a, i);
        res_node(c->b, -i);
        jac_node(c->a, c->a, g);
        jac_node(c->a, c->b, -g);
        jac_node(c->b, c->a, -g);
        jac_node(c->b, c->b, g);
      }
      // DC: capacitor is an open circuit; nothing to stamp.

    } else if (const auto* v = std::get_if<VSource>(&el.body)) {
      const std::size_t branch_row =
          n_nodes_ + static_cast<std::size_t>(
                         netlist_.vsource_branch(static_cast<ElementId>(ei)));
      const double i_branch = x[branch_row];
      // Branch current leaves the positive node into the source.
      res_node(v->pos, i_branch);
      res_node(v->neg, -i_branch);
      const int up = unknown_of_node(v->pos);
      const int un = unknown_of_node(v->neg);
      if (up >= 0) {
        jacobian(static_cast<std::size_t>(up), branch_row) += 1.0;
        jacobian(branch_row, static_cast<std::size_t>(up)) += 1.0;
      }
      if (un >= 0) {
        jacobian(static_cast<std::size_t>(un), branch_row) -= 1.0;
        jacobian(branch_row, static_cast<std::size_t>(un)) -= 1.0;
      }
      residual[branch_row] += v_of(v->pos) - v_of(v->neg) - v->volts;

    } else if (const auto* isrc = std::get_if<ISource>(&el.body)) {
      res_node(isrc->from, isrc->amps);
      res_node(isrc->to, -isrc->amps);

    } else if (const auto* m = std::get_if<MosElement>(&el.body)) {
      const MosEval e =
          m->device.eval(v_of(m->g), v_of(m->d), v_of(m->s), temp_c_);
      res_node(m->d, e.id);
      res_node(m->s, -e.id);
      jac_node(m->d, m->g, e.gm);
      jac_node(m->d, m->d, e.gds);
      jac_node(m->d, m->s, e.gms);
      jac_node(m->s, m->g, -e.gm);
      jac_node(m->s, m->d, -e.gds);
      jac_node(m->s, m->s, -e.gms);

    } else if (const auto* load = std::get_if<CurrentLoad>(&el.body)) {
      const auto [i, didv] = load->iv(v_of(load->node), temp_c_);
      res_node(load->node, i);
      jac_node(load->node, load->node, didv);
    }
  }

  // gmin from every non-ground node to ground.
  if (gmin > 0.0) {
    for (std::size_t u = 0; u < n_nodes_; ++u) {
      residual[u] += gmin * x[u];
      jacobian(u, u) += gmin;
    }
  }
}

}  // namespace lpsram
