// Process corners, matching the paper's five-corner PVT sweep:
// slow, typical, fast, fast-NMOS/slow-PMOS (fs), slow-NMOS/fast-PMOS (sf).
#pragma once

#include <array>
#include <string>

namespace lpsram {

enum class Corner {
  Typical,
  Slow,
  Fast,
  FastNSlowP,  // paper notation: "fs"
  SlowNFastP,  // paper notation: "sf"
};

// Threshold-voltage and mobility offsets a corner applies per polarity.
struct CornerShift {
  double dvth_n = 0.0;  // added to NMOS Vth [V]
  double dvth_p = 0.0;  // added to PMOS Vth magnitude [V]
  double mob_n = 1.0;   // NMOS mobility multiplier
  double mob_p = 1.0;   // PMOS mobility multiplier
};

// Returns the parameter shifts for a corner.
CornerShift corner_shift(Corner corner) noexcept;

// Paper-style short name: "typical", "slow", "fast", "fs", "sf".
std::string corner_name(Corner corner);

// All five corners, in the order the paper enumerates them.
inline constexpr std::array<Corner, 5> kAllCorners = {
    Corner::Slow, Corner::Typical, Corner::Fast, Corner::FastNSlowP,
    Corner::SlowNFastP};

}  // namespace lpsram
