#include "lpsram/device/mosfet_lanes.hpp"

#include "lpsram/util/units.hpp"

namespace lpsram {

MosfetLaneConsts mosfet_lane_consts(const Mosfet& fet, double temp_c) noexcept {
  const double vt = thermal_voltage(temp_c);
  MosfetLaneConsts c;
  c.pmos = fet.params().type == MosType::Pmos;
  c.vth = fet.vth_effective(temp_c);
  c.n = fet.params().n_slope;
  // Stored exactly as eval_core spells them so every downstream division and
  // multiplication rounds identically to the scalar path.
  c.two_vt = 2.0 * vt;
  c.inv2vt = 1.0 / (2.0 * vt);
  c.inv2vt_over_n = c.inv2vt / c.n;
  c.i0 = 2.0 * c.n * fet.beta(temp_c) * vt * vt;
  c.lambda = fet.params().lambda;
  return c;
}

void Mosfet::eval_lanes(const double* vg, const double* vd, const double* vs,
                        std::size_t n, double temp_c, double* id, double* gm,
                        double* gds, double* gms) const noexcept {
  const MosfetLaneConsts c = mosfet_lane_consts(*this, temp_c);
  for (std::size_t i = 0; i < n; ++i) {
    const MosEval e = lane_eval(c, vg[i], vd[i], vs[i]);
    if (id) id[i] = e.id;
    if (gm) gm[i] = e.gm;
    if (gds) gds[i] = e.gds;
    if (gms) gms[i] = e.gms;
  }
}

}  // namespace lpsram
