#include "lpsram/device/mosfet_lanes.hpp"

#include "lpsram/util/units.hpp"

namespace lpsram {

MosfetLaneConsts mosfet_lane_consts(const Mosfet& fet, double temp_c) noexcept {
  const double vt = thermal_voltage(temp_c);
  MosfetLaneConsts c;
  c.pmos = fet.params().type == MosType::Pmos;
  c.vth = fet.vth_effective(temp_c);
  c.n = fet.params().n_slope;
  // Stored exactly as eval_core spells them so every downstream division and
  // multiplication rounds identically to the scalar path.
  c.two_vt = 2.0 * vt;
  c.inv2vt = 1.0 / (2.0 * vt);
  c.inv2vt_over_n = c.inv2vt / c.n;
  c.i0 = 2.0 * c.n * fet.beta(temp_c) * vt * vt;
  c.lambda = fet.params().lambda;
  return c;
}

void Mosfet::eval_lanes(const double* vg, const double* vd, const double* vs,
                        std::size_t n, double temp_c, double* id, double* gm,
                        double* gds, double* gms) const noexcept {
  const MosfetLaneConsts c = mosfet_lane_consts(*this, temp_c);
  if (resolved_simd_kind() == SimdKind::Simd) {
    using V = simd::Vec;
    constexpr std::size_t W = simd::kNativeWidth;
    std::size_t i = 0;
    for (; i + W <= n; i += W) {
      const MosEvalV<V> e =
          lane_eval_v(c, V::load(vg + i), V::load(vd + i), V::load(vs + i));
      if (id) e.id.store(id + i);
      if (gm) e.gm.store(gm + i);
      if (gds) e.gds.store(gds + i);
      if (gms) e.gms.store(gms + i);
    }
    if (i < n) {
      // Remainder block: pad with the last lane so every lane — regardless
      // of its position relative to the vector width — goes through the
      // identical vectorized expression tree.
      const std::size_t r = n - i;
      double bg[W], bd[W], bs[W];
      for (std::size_t j = 0; j < W; ++j) {
        const std::size_t k = i + (j < r ? j : r - 1);
        bg[j] = vg[k];
        bd[j] = vd[k];
        bs[j] = vs[k];
      }
      const MosEvalV<V> e =
          lane_eval_v(c, V::load(bg), V::load(bd), V::load(bs));
      double tid[W], tgm[W], tgds[W], tgms[W];
      e.id.store(tid);
      e.gm.store(tgm);
      e.gds.store(tgds);
      e.gms.store(tgms);
      for (std::size_t j = 0; j < r; ++j) {
        if (id) id[i + j] = tid[j];
        if (gm) gm[i + j] = tgm[j];
        if (gds) gds[i + j] = tgds[j];
        if (gms) gms[i + j] = tgms[j];
      }
    }
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const MosEval e = lane_eval(c, vg[i], vd[i], vs[i]);
    if (id) id[i] = e.id;
    if (gm) gm[i] = e.gm;
    if (gds) gds[i] = e.gds;
    if (gms) gms[i] = e.gms;
  }
}

}  // namespace lpsram
