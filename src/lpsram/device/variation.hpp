// Within-die threshold-voltage variation model.
//
// The paper expresses all mismatch in units of sigma of the local Vth
// distribution (Pelgrom mismatch). We keep the same convention: a case study
// assigns each of the six core-cell transistors a shift in sigma units, and
// this model converts sigma units to volts.
#pragma once

#include <cstdint>
#include <random>

#include "lpsram/device/mosfet.hpp"

namespace lpsram {

// Local (within-die) Vth variation model.
struct VariationModel {
  // One-sigma local Vth spread for a minimum-size device [V]. The value is
  // calibrated so that the paper's +-6 sigma worst-case pattern (Table I,
  // CS1) lands near its 730 mV DRV while the cell remains functional at
  // nominal supply.
  double sigma_vth_n = 0.043;
  double sigma_vth_p = 0.043;

  // Converts a shift in sigma units to a shift of the Vth *magnitude* used by
  // MosfetParams::dvth. The paper's Table I uses the signed-Vth convention:
  // a negative variation makes an NMOS stronger (lower Vth) but makes a PMOS
  // *weaker* (Vth more negative, larger magnitude). Hence the sign flip for
  // PMOS here.
  double shift_volts(double n_sigma, MosType type) const noexcept {
    return type == MosType::Nmos ? n_sigma * sigma_vth_n
                                 : -n_sigma * sigma_vth_p;
  }
};

// Deterministic Gaussian sampler for Monte-Carlo population studies
// (seeded => reproducible experiments).
class VthSampler {
 public:
  explicit VthSampler(std::uint64_t seed) : engine_(seed) {}

  // Draws a shift in sigma units from N(0, 1).
  double sample_sigma() { return normal_(engine_); }

 private:
  std::mt19937_64 engine_;
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace lpsram
