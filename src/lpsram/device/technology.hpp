// Technology description ("PDK"): nominal supplies, PVT grids, and factory
// functions for every transistor flavour used by the reproduction — the 6T
// core-cell devices, the voltage-regulator devices and the power switches.
//
// This is the substitution for the Intel 40nm low-power SPICE models the
// paper used: parameter values are literature-typical for a 40nm LP node and
// calibrated (see DESIGN.md section 5) so that the reproduced DRV and defect
// tables land in the paper's bands.
#pragma once

#include <array>

#include "lpsram/device/corners.hpp"
#include "lpsram/device/mosfet.hpp"
#include "lpsram/device/variation.hpp"

namespace lpsram {

// Full PVT point: process corner, supply voltage, temperature.
struct PvtPoint {
  Corner corner = Corner::Typical;
  double vdd = 1.1;      // [V]
  double temp_c = 25.0;  // [deg C]
};

class Technology {
 public:
  // The studied process: Intel-like 40nm low power.
  static Technology lp40nm();

  // Supply grid used by the paper (1.0, 1.1 nominal, 1.2 V).
  const std::array<double, 3>& vdd_levels() const noexcept { return vdd_levels_; }
  double vdd_nominal() const noexcept { return vdd_levels_[1]; }

  // Temperature grid used by the paper (-30, 25, 125 C).
  const std::array<double, 3>& temperatures() const noexcept { return temps_; }

  // Local-mismatch model.
  const VariationModel& variation() const noexcept { return variation_; }

  // --- Core-cell devices (6T) -------------------------------------------
  MosfetParams cell_pullup() const;    // MPcc1 / MPcc2
  MosfetParams cell_pulldown() const;  // MNcc1 / MNcc2
  MosfetParams cell_pass() const;      // MNcc3 / MNcc4

  // --- Voltage-regulator devices (paper Fig. 5) --------------------------
  MosfetParams reg_mirror_pmos() const;    // MPreg3 / MPreg4
  MosfetParams reg_diffpair_nmos() const;  // MNreg2 / MNreg3
  MosfetParams reg_tail_nmos() const;      // MNreg1
  MosfetParams reg_output_pmos() const;    // MPreg1
  MosfetParams reg_pullup_pmos() const;    // MPreg2

  // --- Power switch segment (PMOS header) --------------------------------
  MosfetParams power_switch_pmos() const;

  // Voltage-divider total resistance [ohm] (R1..R6 in series). Polysilicon
  // divider sized for a sub-microamp reference-chain current.
  double divider_total_resistance() const noexcept { return divider_total_r_; }

  // Lumped capacitance on the VDD_CC line (core-cell array + wiring) [F].
  double vddcc_capacitance() const noexcept { return vddcc_cap_; }

  // Applies a process corner to a device's parameters (threshold shift and
  // mobility factor on top of whatever variation is already present).
  static MosfetParams apply_corner(MosfetParams params, Corner corner);

 private:
  Technology() = default;

  std::array<double, 3> vdd_levels_{1.0, 1.1, 1.2};
  std::array<double, 3> temps_{-30.0, 25.0, 125.0};
  VariationModel variation_{};
  double divider_total_r_ = 8.0e6;
  double vddcc_cap_ = 40e-12;
};

}  // namespace lpsram
