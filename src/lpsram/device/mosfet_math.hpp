// Scalar numerics shared by Mosfet::eval (mosfet.cpp) and the lane-parallel
// evaluation paths (mosfet_lanes.cpp, cell/batch_vtc.cpp).
//
// The batched cell kernel promises *bit-identical* per-lane arithmetic with
// the scalar oracle; keeping softplus/sigmoid and the smooth-|v| pair in one
// inline header is what makes that promise auditable — both kernels compile
// the same expression tree instead of hand-copied near-duplicates.
#pragma once

#include <cmath>

namespace lpsram::mosfet_math {

// Numerically stable softplus ln(1 + e^u) together with its derivative, the
// logistic sigmoid — both from a single exponential, since every Newton
// stamp needs the pair and exp dominates the evaluation cost.
struct SoftplusEval {
  double f;  // softplus(u)
  double d;  // sigmoid(u) = softplus'(u)
};

inline SoftplusEval softplus_eval(double u) noexcept {
  if (u > 35.0) return {u, 1.0};
  if (u < -35.0) {
    const double e = std::exp(u);
    return {e, e};
  }
  const double e = std::exp(u);
  return {std::log1p(e), e / (1.0 + e)};
}

// Smooth |v| used so channel-length modulation keeps C1 continuity at Vds=0.
inline constexpr double kAbsEps = 1e-3;
inline double smooth_abs(double v) noexcept {
  return std::sqrt(v * v + kAbsEps * kAbsEps);
}
inline double smooth_abs_d(double v) noexcept { return v / smooth_abs(v); }

}  // namespace lpsram::mosfet_math
