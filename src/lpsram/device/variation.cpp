#include "lpsram/device/variation.hpp"

// VariationModel and VthSampler are header-only; this translation unit exists
// so the module has a home for future out-of-line additions and to anchor the
// library target.

namespace lpsram {}  // namespace lpsram
