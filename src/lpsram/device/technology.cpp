#include "lpsram/device/technology.hpp"

namespace lpsram {
namespace {

// Shared baseline numbers for the 40nm-class low-power flavour.
constexpr double kVthN = 0.45;     // [V]
constexpr double kVthP = 0.45;    // magnitude [V]
constexpr double kKpN = 260e-6;    // [A/V^2]
constexpr double kKpP = 230e-6;    // [A/V^2]
constexpr double kSlopeN = 1.45;
constexpr double kSlopeP = 1.18;
constexpr double kLMin = 40e-9;    // [m]

MosfetParams base_nmos(double w, double l, const char* name) {
  MosfetParams p;
  p.type = MosType::Nmos;
  p.vth0 = kVthN;
  p.kp = kKpN;
  p.w = w;
  p.l = l;
  p.n_slope = kSlopeN;
  p.name = name;
  return p;
}

MosfetParams base_pmos(double w, double l, const char* name) {
  MosfetParams p;
  p.type = MosType::Pmos;
  p.vth0 = kVthP;
  p.kp = kKpP;
  p.w = w;
  p.l = l;
  p.n_slope = kSlopeP;
  p.name = name;
  return p;
}

}  // namespace

Technology Technology::lp40nm() { return Technology{}; }

// 6T cell sizing follows the classic beta-ratio discipline: pull-down
// strongest, pass intermediate, pull-up weakest.
MosfetParams Technology::cell_pullup() const {
  MosfetParams p = base_pmos(80e-9, kLMin, "MPcc");
  p.lambda = 0.03;
  p.cgate = 0.05e-15;
  return p;
}

MosfetParams Technology::cell_pulldown() const {
  MosfetParams p = base_nmos(200e-9, kLMin, "MNcc_pd");
  p.lambda = 0.03;
  p.cgate = 0.09e-15;
  return p;
}

MosfetParams Technology::cell_pass() const {
  MosfetParams p = base_nmos(180e-9, kLMin, "MNcc_pg");
  // Pass gates use the high-Vt flavour (standard for LP retention cells), so
  // their off-state leakage perturbs the storage nodes less than the
  // inverter devices do — the paper's Fig. 4 shows exactly this second-order
  // but non-negligible pass-gate influence.
  p.vth0 = kVthN + 0.15;
  p.cgate = 0.06e-15;
  return p;
}

// Regulator devices are analog-sized: longer channels for matching and
// output resistance, wide output stage to source the array leakage.
MosfetParams Technology::reg_mirror_pmos() const {
  MosfetParams p = base_pmos(2e-6, 200e-9, "MPreg_mirror");
  p.lambda = 0.02;
  p.cgate = 4e-15;
  return p;
}

MosfetParams Technology::reg_diffpair_nmos() const {
  MosfetParams p = base_nmos(2e-6, 200e-9, "MNreg_pair");
  p.lambda = 0.02;
  p.cgate = 4e-15;
  return p;
}

MosfetParams Technology::reg_tail_nmos() const {
  MosfetParams p = base_nmos(600e-9, 800e-9, "MNreg1");
  p.lambda = 0.02;
  p.cgate = 3e-15;
  return p;
}

MosfetParams Technology::reg_output_pmos() const {
  MosfetParams p = base_pmos(60e-6, 100e-9, "MPreg1");
  p.lambda = 0.05;
  p.cgate = 60e-15;
  return p;
}

MosfetParams Technology::reg_pullup_pmos() const {
  MosfetParams p = base_pmos(400e-9, 100e-9, "MPreg2");
  p.cgate = 0.5e-15;
  return p;
}

MosfetParams Technology::power_switch_pmos() const {
  MosfetParams p = base_pmos(100e-6, 60e-9, "MPS");
  p.lambda = 0.05;
  p.cgate = 100e-15;
  return p;
}

MosfetParams Technology::apply_corner(MosfetParams params, Corner corner) {
  const CornerShift shift = corner_shift(corner);
  if (params.type == MosType::Nmos) {
    params.dvth += shift.dvth_n;
    params.mob_factor *= shift.mob_n;
  } else {
    params.dvth += shift.dvth_p;
    params.mob_factor *= shift.mob_p;
  }
  return params;
}

}  // namespace lpsram
