// Lane-parallel EKV evaluation: per-(device, temperature) constants hoisted
// once per batch, then a tight per-lane loop over contiguous arrays with no
// std::function and no per-call parameter lookups.
//
// Contract: every arithmetic expression here replicates Mosfet::eval /
// Mosfet::eval_core (mosfet.cpp) term for term — same operations, same
// association order, same shared softplus/sigmoid pair — so a lane result is
// bit-identical to the scalar call with the same operands. The batched cell
// kernel (cell/batch_vtc) builds on that identity to keep the scalar path a
// usable equivalence oracle; tests/test_cell_lanes.cpp pins it to ≤ 1 ulp
// (observed: exactly equal).
#pragma once

#include "lpsram/device/mosfet.hpp"
#include "lpsram/device/mosfet_math.hpp"
#include "lpsram/util/simd.hpp"

namespace lpsram {

// Everything Mosfet::eval_core recomputes per call that only depends on the
// device and the temperature. two_vt/inv2vt/inv2vt_over_n are stored exactly
// as the scalar expressions compute them (2.0*vt, 1.0/(2.0*vt), inv2vt/n) so
// downstream divisions/multiplications round identically.
struct MosfetLaneConsts {
  bool pmos = false;
  double vth = 0.0;            // vth_effective(temp_c)
  double n = 1.0;              // subthreshold slope factor
  double two_vt = 0.0;         // 2.0 * thermal_voltage(temp_c)
  double inv2vt = 0.0;         // 1.0 / (2.0 * vt)
  double inv2vt_over_n = 0.0;  // inv2vt / n
  double i0 = 0.0;             // 2.0 * n * beta(temp_c) * vt * vt
  double lambda = 0.0;         // channel-length modulation
};

// Hoists the per-batch constants for one device at one temperature.
MosfetLaneConsts mosfet_lane_consts(const Mosfet& fet, double temp_c) noexcept;

// NMOS-convention core evaluation from hoisted constants; the expression
// tree of Mosfet::eval_core with (vt, vth, n, i0, inv2vt) precomputed.
inline MosEval lane_eval_core(const MosfetLaneConsts& c, double vg, double vd,
                              double vs) noexcept {
  using mosfet_math::SoftplusEval;
  const double vp = (vg - c.vth) / c.n;
  const double us = (vp - vs) / c.two_vt;
  const double ud = (vp - vd) / c.two_vt;

  const SoftplusEval ss = mosfet_math::softplus_eval(us);
  const SoftplusEval sd = mosfet_math::softplus_eval(ud);
  const double i_forward = ss.f * ss.f;
  const double i_reverse = sd.f * sd.f;

  const double vds = vd - vs;
  const double clm = 1.0 + c.lambda * mosfet_math::smooth_abs(vds);
  const double core = c.i0 * (i_forward - i_reverse);

  const double dfs = 2.0 * ss.f * ss.d;
  const double dfd = 2.0 * sd.f * sd.d;

  MosEval e;
  e.id = core * clm;
  e.gm = c.i0 * (dfs - dfd) * c.inv2vt_over_n * clm;
  e.gds = c.i0 * dfd * c.inv2vt * clm +
          core * c.lambda * mosfet_math::smooth_abs_d(vds);
  e.gms = -c.i0 * dfs * c.inv2vt * clm -
          core * c.lambda * mosfet_math::smooth_abs_d(vds);
  return e;
}

// Full evaluation from hoisted constants, including the mirrored-terminal
// PMOS branch of Mosfet::eval (well reference = smooth max of drain/source).
inline MosEval lane_eval(const MosfetLaneConsts& c, double vg, double vd,
                         double vs) noexcept {
  if (c.pmos) {
    const double ref = 0.5 * (vd + vs + mosfet_math::smooth_abs(vd - vs));
    const double rd = 0.5 * (1.0 + mosfet_math::smooth_abs_d(vd - vs));
    const double rs = 0.5 * (1.0 - mosfet_math::smooth_abs_d(vd - vs));

    const MosEval n = lane_eval_core(c, ref - vg, ref - vd, ref - vs);
    MosEval e;
    e.id = -n.id;
    e.gm = n.gm;
    e.gds = -(n.gm * rd + n.gds * (rd - 1.0) + n.gms * rd);
    e.gms = -(n.gm * rs + n.gds * rs + n.gms * (rs - 1.0));
    return e;
  }
  return lane_eval_core(c, vg, vd, vs);
}

// Source-side softplus terms of an NMOS whose gate and source are fixed
// while its drain sweeps — the common shape of every cell node solve (the
// solved node is the drain of all three attached devices). Caching these
// halves the exponentials per Newton probe: only the drain-side softplus
// varies.
struct NmosSourceCache {
  double vp = 0.0;         // (vg - vth) / n
  double i_forward = 0.0;  // softplus(us)^2
  double dfs = 0.0;        // 2 * softplus(us) * sigmoid(us)
};

inline NmosSourceCache nmos_source_cache(const MosfetLaneConsts& c, double vg,
                                         double vs) noexcept {
  NmosSourceCache cache;
  cache.vp = (vg - c.vth) / c.n;
  const double us = (cache.vp - vs) / c.two_vt;
  const mosfet_math::SoftplusEval ss = mosfet_math::softplus_eval(us);
  cache.i_forward = ss.f * ss.f;
  cache.dfs = 2.0 * ss.f * ss.d;
  return cache;
}

// Drain-swept NMOS evaluation from a source cache: bit-identical to
// lane_eval_core(c, vg, vd, vs) given cache = nmos_source_cache(c, vg, vs),
// at one exponential instead of two.
inline MosEval lane_eval_nmos_cached(const MosfetLaneConsts& c,
                                     const NmosSourceCache& cache, double vd,
                                     double vs) noexcept {
  const double ud = (cache.vp - vd) / c.two_vt;
  const mosfet_math::SoftplusEval sd = mosfet_math::softplus_eval(ud);
  const double i_reverse = sd.f * sd.f;

  const double vds = vd - vs;
  const double clm = 1.0 + c.lambda * mosfet_math::smooth_abs(vds);
  const double core = c.i0 * (cache.i_forward - i_reverse);
  const double dfd = 2.0 * sd.f * sd.d;

  MosEval e;
  e.id = core * clm;
  e.gm = c.i0 * (cache.dfs - dfd) * c.inv2vt_over_n * clm;
  e.gds = c.i0 * dfd * c.inv2vt * clm +
          core * c.lambda * mosfet_math::smooth_abs_d(vds);
  e.gms = -c.i0 * cache.dfs * c.inv2vt * clm -
          core * c.lambda * mosfet_math::smooth_abs_d(vds);
  return e;
}

// ---------------------------------------------------------------------------
// Vectorized variants: W lanes per instruction on top of util/simd.hpp.
//
// These mirror the scalar expression trees above term for term, but the
// transcendental pair comes from simd::vexp / simd::vlog1p instead of libm,
// so results agree with the scalar lanes only to the documented ulp level
// (tests/test_cell_lanes.cpp pins the tolerance). Kernels consult
// resolved_simd_kind() to choose between the scalar-oracle loop and these.

template <class V>
struct MosEvalV {
  V id, gm, gds, gms;
};

// Per-lane device constants as vector operands: the cross-cell DRV batch
// (cell/batch_vtc drv_hold_cross_batched) marches *different cells* through
// one lane block, so vth/n/i0/... vary lane to lane instead of being one
// broadcast scalar. The pmos flag stays a per-call scalar — a lane block
// always evaluates one device *role* (all pull-ups, or all pull-downs), so
// polarity is uniform even when the devices themselves differ.
template <class V>
struct MosfetLaneConstsV {
  V vth, n, two_vt, inv2vt, inv2vt_over_n, i0, lambda;
};

// Broadcast one device's constants across every lane (the single-cell path).
template <class V>
inline MosfetLaneConstsV<V> broadcast_lane_consts(
    const MosfetLaneConsts& c) noexcept {
  return {V::broadcast(c.vth),          V::broadcast(c.n),
          V::broadcast(c.two_vt),       V::broadcast(c.inv2vt),
          V::broadcast(c.inv2vt_over_n), V::broadcast(c.i0),
          V::broadcast(c.lambda)};
}

// Gather per-lane constants for a block: consts[idx[j]] fills lane j of each
// field, j in [0, V::kWidth).
template <class V>
inline MosfetLaneConstsV<V> gather_lane_consts(const MosfetLaneConsts* consts,
                                               const std::size_t* idx) noexcept {
  constexpr std::size_t W = V::kWidth;
  double vth[W], n[W], two_vt[W], inv2vt[W], inv2vt_over_n[W], i0[W],
      lambda[W];
  for (std::size_t j = 0; j < W; ++j) {
    const MosfetLaneConsts& c = consts[idx[j]];
    vth[j] = c.vth;
    n[j] = c.n;
    two_vt[j] = c.two_vt;
    inv2vt[j] = c.inv2vt;
    inv2vt_over_n[j] = c.inv2vt_over_n;
    i0[j] = c.i0;
    lambda[j] = c.lambda;
  }
  return {V::load(vth),          V::load(n),  V::load(two_vt),
          V::load(inv2vt),       V::load(inv2vt_over_n),
          V::load(i0),           V::load(lambda)};
}

template <class V>
inline MosEvalV<V> lane_eval_core_cv(const MosfetLaneConstsV<V>& c, V vg, V vd,
                                     V vs) noexcept {
  const V vp = (vg - c.vth) / c.n;
  const V us = (vp - vs) / c.two_vt;
  const V ud = (vp - vd) / c.two_vt;

  const simd::SoftplusEvalV<V> ss = simd::softplus_eval_v(us);
  const simd::SoftplusEvalV<V> sd = simd::softplus_eval_v(ud);
  const V i_forward = ss.f * ss.f;
  const V i_reverse = sd.f * sd.f;

  const V vds = vd - vs;
  const V clm = V::broadcast(1.0) + c.lambda * simd::smooth_abs_v(vds);
  const V core = c.i0 * (i_forward - i_reverse);

  const V two = V::broadcast(2.0);
  const V dfs = two * ss.f * ss.d;
  const V dfd = two * sd.f * sd.d;
  const V sad = simd::smooth_abs_d_v(vds);

  MosEvalV<V> e;
  e.id = core * clm;
  e.gm = c.i0 * (dfs - dfd) * c.inv2vt_over_n * clm;
  e.gds = c.i0 * dfd * c.inv2vt * clm + core * c.lambda * sad;
  e.gms = V::zero() - c.i0 * dfs * c.inv2vt * clm - core * c.lambda * sad;
  return e;
}

template <class V>
inline MosEvalV<V> lane_eval_cv(bool pmos, const MosfetLaneConstsV<V>& c, V vg,
                                V vd, V vs) noexcept {
  if (pmos) {
    const V half = V::broadcast(0.5);
    const V one = V::broadcast(1.0);
    const V diff = vd - vs;
    const V sad = simd::smooth_abs_d_v(diff);
    const V ref = half * (vd + vs + simd::smooth_abs_v(diff));
    const V rd = half * (one + sad);
    const V rs = half * (one - sad);

    const MosEvalV<V> n = lane_eval_core_cv(c, ref - vg, ref - vd, ref - vs);
    MosEvalV<V> e;
    e.id = V::zero() - n.id;
    e.gm = n.gm;
    e.gds = V::zero() - (n.gm * rd + n.gds * (rd - one) + n.gms * rd);
    e.gms = V::zero() - (n.gm * rs + n.gds * rs + n.gms * (rs - one));
    return e;
  }
  return lane_eval_core_cv(c, vg, vd, vs);
}

// Drain-swept cached NMOS evaluation over lanes with per-lane constants; the
// cache fields are vector operands so callers can either broadcast one
// shared NmosSourceCache or gather per-lane caches.
template <class V>
inline MosEvalV<V> lane_eval_nmos_cached_cv(const MosfetLaneConstsV<V>& c,
                                            V vp, V i_forward, V dfs, V vd,
                                            V vs) noexcept {
  const V ud = (vp - vd) / c.two_vt;
  const simd::SoftplusEvalV<V> sd = simd::softplus_eval_v(ud);
  const V i_reverse = sd.f * sd.f;

  const V vds = vd - vs;
  const V clm = V::broadcast(1.0) + c.lambda * simd::smooth_abs_v(vds);
  const V core = c.i0 * (i_forward - i_reverse);
  const V dfd = V::broadcast(2.0) * sd.f * sd.d;
  const V sad = simd::smooth_abs_d_v(vds);

  MosEvalV<V> e;
  e.id = core * clm;
  e.gm = c.i0 * (dfs - dfd) * c.inv2vt_over_n * clm;
  e.gds = c.i0 * dfd * c.inv2vt * clm + core * c.lambda * sad;
  e.gms = V::zero() - c.i0 * dfs * c.inv2vt * clm - core * c.lambda * sad;
  return e;
}

// Broadcast-constant wrappers (one device, many operating points): the
// single-cell inversion kernels call these; lanewise they compute exactly
// the per-lane-constant trees above with every constant replicated.
template <class V>
inline MosEvalV<V> lane_eval_core_v(const MosfetLaneConsts& c, V vg, V vd,
                                    V vs) noexcept {
  return lane_eval_core_cv(broadcast_lane_consts<V>(c), vg, vd, vs);
}

template <class V>
inline MosEvalV<V> lane_eval_v(const MosfetLaneConsts& c, V vg, V vd,
                               V vs) noexcept {
  return lane_eval_cv(c.pmos, broadcast_lane_consts<V>(c), vg, vd, vs);
}

template <class V>
inline MosEvalV<V> lane_eval_nmos_cached_v(const MosfetLaneConsts& c, V vp,
                                           V i_forward, V dfs, V vd,
                                           V vs) noexcept {
  return lane_eval_nmos_cached_cv(broadcast_lane_consts<V>(c), vp, i_forward,
                                  dfs, vd, vs);
}

}  // namespace lpsram
