// EKV-style MOSFET compact model.
//
// The paper's entire evidence chain (DRV in deep-sleep, regulator defect
// impact) lives in the weak/moderate-inversion regime: core cells are held at
// 60..730 mV while leakage currents decide retention. A square-law (SPICE
// level-1) model is useless there, so we implement the EKV interpolation
//
//   Id = 2 n beta VT^2 [ ln^2(1+e^((Vp-Vs)/2VT)) - ln^2(1+e^((Vp-Vd)/2VT)) ]
//   Vp = (Vg - Vth)/n
//
// which is smooth and accurate from deep subthreshold through strong
// inversion, with analytic derivatives for Newton-Raphson stamping.
//
// Conventions:
//  * all terminal voltages are absolute node voltages [V];
//  * NMOS bulk is assumed at 0 V and PMOS bulk at the device's positive rail
//    (body effect is not modeled);
//  * `id` is the current flowing into the drain pin and out of the source pin
//    (negative for a conducting PMOS pulling its drain node up);
//  * gate current is identically zero, which matches the paper's observation
//    that series defects on transistor gates have negligible static effect.
#pragma once

#include <cstddef>
#include <string>

namespace lpsram {

enum class MosType { Nmos, Pmos };

// Compact-model parameters for one transistor.
struct MosfetParams {
  MosType type = MosType::Nmos;
  double vth0 = 0.45;       // zero-bias threshold magnitude [V]
  double kp = 250e-6;       // process transconductance [A/V^2] at 25 C
  double w = 120e-9;        // channel width [m]
  double l = 40e-9;         // channel length [m]
  double n_slope = 1.35;    // subthreshold slope factor
  double lambda = 0.08;     // channel-length modulation [1/V]
  double vth_tc = -0.8e-3;  // dVth/dT [V/K] (threshold drops when hot)
  double mob_exp = 1.5;     // mobility ~ (T/T0)^-mob_exp
  double cgate = 0.0;       // lumped gate capacitance [F] (transient only)
  std::string name;         // instance name, e.g. "MPcc1"

  // Extra threshold shift [V], e.g. process-variation or corner offset.
  double dvth = 0.0;
  // Extra multiplicative mobility factor, e.g. corner fast/slow.
  double mob_factor = 1.0;
};

// Drain current and its partial derivatives w.r.t. the terminal voltages.
struct MosEval {
  double id = 0.0;   // current into drain pin [A]
  double gm = 0.0;   // d id / d vg
  double gds = 0.0;  // d id / d vd
  double gms = 0.0;  // d id / d vs
};

// A single MOSFET instance.
class Mosfet {
 public:
  Mosfet() = default;
  explicit Mosfet(MosfetParams params);

  const MosfetParams& params() const noexcept { return params_; }
  MosfetParams& params() noexcept { return params_; }

  // Drain current only (no derivatives).
  double ids(double vg, double vd, double vs, double temp_c) const noexcept;

  // Drain current with analytic derivatives for Newton stamping.
  MosEval eval(double vg, double vd, double vs, double temp_c) const noexcept;

  // N-lane structure-of-arrays evaluation (device/mosfet_lanes.cpp): one
  // eval() per lane over contiguous terminal-voltage arrays, with the
  // temperature-dependent constants (Vth, beta, thermal voltage) hoisted out
  // of the lane loop and the PMOS terminal mirroring applied per lane inside
  // it. Per-lane results are bit-identical to eval() — the batched cell
  // kernel relies on that to keep the scalar path a true oracle. Output
  // arrays may be null to skip a component (id is required).
  void eval_lanes(const double* vg, const double* vd, const double* vs,
                  std::size_t n, double temp_c, double* id, double* gm,
                  double* gds, double* gms) const noexcept;

  // Effective threshold voltage at the given temperature (magnitude,
  // including variation/corner shift) [V].
  double vth_effective(double temp_c) const noexcept;

  // beta = kp * (W/L) * mobility factor(temp) [A/V^2].
  double beta(double temp_c) const noexcept;

 private:
  // The NMOS-convention EKV evaluation, shared by both device types: the
  // PMOS branch of eval() mirrors its terminal voltages and calls this
  // directly instead of materializing a mirrored device (copying params —
  // including the instance-name string — per Newton iteration was a
  // measurable slice of assembly time).
  MosEval eval_core(double vg, double vd, double vs, double temp_c) const noexcept;

  MosfetParams params_;
};

}  // namespace lpsram
