#include "lpsram/device/mosfet.hpp"

#include <cmath>

#include "lpsram/device/mosfet_math.hpp"
#include "lpsram/util/units.hpp"

namespace lpsram {

// softplus_eval / smooth_abs live in device/mosfet_math.hpp, shared verbatim
// with the lane-parallel evaluation (mosfet_lanes.cpp, cell/batch_vtc.cpp)
// so the batched kernel stays bit-identical to this scalar oracle.
using mosfet_math::SoftplusEval;
using mosfet_math::smooth_abs;
using mosfet_math::smooth_abs_d;
using mosfet_math::softplus_eval;

Mosfet::Mosfet(MosfetParams params) : params_(std::move(params)) {}

double Mosfet::vth_effective(double temp_c) const noexcept {
  return params_.vth0 + params_.dvth +
         params_.vth_tc * (temp_c - kReferenceTempC);
}

double Mosfet::beta(double temp_c) const noexcept {
  const double t_ratio =
      celsius_to_kelvin(temp_c) / celsius_to_kelvin(kReferenceTempC);
  // mob_exp is 1.5 for every device in the kit; t^-1.5 via sqrt skips the
  // much slower generic pow on the Newton hot path.
  const double mob = params_.mob_exp == 1.5
                         ? 1.0 / (t_ratio * std::sqrt(t_ratio))
                         : std::pow(t_ratio, -params_.mob_exp);
  return params_.kp * (params_.w / params_.l) * params_.mob_factor * mob;
}

MosEval Mosfet::eval(double vg, double vd, double vs,
                     double temp_c) const noexcept {
  // PMOS is evaluated as a mirrored NMOS *referenced to its own well*: the
  // n-well of a PMOS is tied to the local positive rail, i.e. the higher of
  // its source/drain potentials (smooth max keeps C1 continuity for Newton).
  // Referencing to ground instead would forward-bias the mirrored body and
  // overestimate off-state leakage by orders of magnitude.
  if (params_.type == MosType::Pmos) {
    const double ref = 0.5 * (vd + vs + smooth_abs(vd - vs));
    const double rd = 0.5 * (1.0 + smooth_abs_d(vd - vs));  // d(ref)/d(vd)
    const double rs = 0.5 * (1.0 - smooth_abs_d(vd - vs));  // d(ref)/d(vs)

    const MosEval n = eval_core(ref - vg, ref - vd, ref - vs, temp_c);
    MosEval e;
    e.id = -n.id;
    e.gm = n.gm;  // d(ref-vg)/dvg = -1, current negated: signs cancel
    e.gds = -(n.gm * rd + n.gds * (rd - 1.0) + n.gms * rd);
    e.gms = -(n.gm * rs + n.gds * rs + n.gms * (rs - 1.0));
    return e;
  }

  return eval_core(vg, vd, vs, temp_c);
}

MosEval Mosfet::eval_core(double vg, double vd, double vs,
                          double temp_c) const noexcept {
  const double vt = thermal_voltage(temp_c);
  const double vth = vth_effective(temp_c);
  const double n = params_.n_slope;
  const double i0 = 2.0 * n * beta(temp_c) * vt * vt;

  const double vp = (vg - vth) / n;
  const double us = (vp - vs) / (2.0 * vt);
  const double ud = (vp - vd) / (2.0 * vt);

  const SoftplusEval ss = softplus_eval(us);
  const SoftplusEval sd = softplus_eval(ud);
  const double i_forward = ss.f * ss.f;
  const double i_reverse = sd.f * sd.f;

  const double vds = vd - vs;
  const double clm = 1.0 + params_.lambda * smooth_abs(vds);
  const double core = i0 * (i_forward - i_reverse);

  // d(F^2)/du = 2 F(u) sigma(u); chain through u = (vp - v)/2VT.
  const double dfs = 2.0 * ss.f * ss.d;
  const double dfd = 2.0 * sd.f * sd.d;
  const double inv2vt = 1.0 / (2.0 * vt);

  MosEval e;
  e.id = core * clm;
  e.gm = i0 * (dfs - dfd) * (inv2vt / n) * clm;
  e.gds = i0 * dfd * inv2vt * clm +
          core * params_.lambda * smooth_abs_d(vds);
  e.gms = -i0 * dfs * inv2vt * clm -
          core * params_.lambda * smooth_abs_d(vds);
  return e;
}

double Mosfet::ids(double vg, double vd, double vs,
                   double temp_c) const noexcept {
  return eval(vg, vd, vs, temp_c).id;
}

}  // namespace lpsram
