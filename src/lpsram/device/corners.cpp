#include "lpsram/device/corners.hpp"

namespace lpsram {

CornerShift corner_shift(Corner corner) noexcept {
  // +-40 mV threshold and -+8% mobility per polarity is a typical global
  // corner spread for a 40nm-class low-power process.
  constexpr double kVthShift = 0.040;
  constexpr double kMobFast = 1.08;
  constexpr double kMobSlow = 0.92;
  switch (corner) {
    case Corner::Typical:
      return {};
    case Corner::Slow:
      return {+kVthShift, +kVthShift, kMobSlow, kMobSlow};
    case Corner::Fast:
      return {-kVthShift, -kVthShift, kMobFast, kMobFast};
    case Corner::FastNSlowP:
      return {-kVthShift, +kVthShift, kMobFast, kMobSlow};
    case Corner::SlowNFastP:
      return {+kVthShift, -kVthShift, kMobSlow, kMobFast};
  }
  return {};
}

std::string corner_name(Corner corner) {
  switch (corner) {
    case Corner::Typical: return "typical";
    case Corner::Slow: return "slow";
    case Corner::Fast: return "fast";
    case Corner::FastNSlowP: return "fs";
    case Corner::SlowNFastP: return "sf";
  }
  return "?";
}

}  // namespace lpsram
