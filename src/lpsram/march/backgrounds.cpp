#include "lpsram/march/backgrounds.hpp"

#include "lpsram/util/error.hpp"

namespace lpsram {
namespace {

std::uint64_t word_mask(int bits) {
  return bits >= 64 ? ~0ull : ((1ull << bits) - 1);
}

std::uint64_t stripe_pattern(int stripe_width, int bits, bool inverted) {
  std::uint64_t pattern = 0;
  for (int b = 0; b < bits; ++b) {
    const bool high = ((b / stripe_width) % 2 == 1) != inverted;
    if (high) pattern |= (1ull << b);
  }
  return pattern;
}

}  // namespace

DataBackground::DataBackground()
    : name_("solid"),
      pattern_([](std::size_t, int) { return 0ull; }) {}

DataBackground::DataBackground(std::string name, PatternFn pattern)
    : name_(std::move(name)), pattern_(std::move(pattern)) {
  if (!pattern_) throw InvalidArgument("DataBackground: null pattern");
}

std::uint64_t DataBackground::zero_pattern(std::size_t address,
                                           int bits) const {
  return pattern_(address, bits) & word_mask(bits);
}

std::uint64_t DataBackground::one_pattern(std::size_t address,
                                          int bits) const {
  return ~zero_pattern(address, bits) & word_mask(bits);
}

DataBackground DataBackground::solid() { return DataBackground(); }

DataBackground DataBackground::bit_stripe(int stripe_width) {
  if (stripe_width < 1)
    throw InvalidArgument("DataBackground: stripe width must be >= 1");
  return DataBackground(
      "stripe" + std::to_string(stripe_width),
      [stripe_width](std::size_t, int bits) {
        return stripe_pattern(stripe_width, bits, false);
      });
}

DataBackground DataBackground::checkerboard() {
  return DataBackground("checkerboard", [](std::size_t address, int bits) {
    return stripe_pattern(1, bits, address % 2 == 1);
  });
}

DataBackground DataBackground::row_stripe() {
  return DataBackground("rowstripe", [](std::size_t address, int bits) {
    return address % 2 == 1 ? word_mask(bits) : 0ull;
  });
}

std::vector<DataBackground> standard_backgrounds(int bits) {
  if (bits < 1 || bits > 64)
    throw InvalidArgument("standard_backgrounds: bits must be 1..64");
  std::vector<DataBackground> set;
  set.push_back(DataBackground::solid());
  for (int width = 1; width < bits; width *= 2)
    set.push_back(DataBackground::bit_stripe(width));
  return set;
}

}  // namespace lpsram
