#include "lpsram/march/executor.hpp"

namespace lpsram {

MarchExecutor::MarchExecutor(MemoryTarget& target,
                             MarchExecutorOptions options)
    : target_(target), options_(std::move(options)) {}

MarchRunResult MarchExecutor::run(const MarchTest& test) {
  test.validate();
  MarchRunResult result;

  const std::size_t n = target_.words();
  const int bits = target_.bits_per_word();

  for (std::size_t ei = 0; ei < test.elements.size(); ++ei) {
    const MarchElement& element = test.elements[ei];

    if (element.kind == MarchElement::Kind::DeepSleep) {
      target_.deep_sleep(options_.ds_time);
      continue;
    }
    if (element.kind == MarchElement::Kind::WakeUp) {
      target_.wake_up();
      continue;
    }

    const bool descending = element.order == AddressOrder::Descending;
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t address = descending ? n - 1 - k : k;
      for (std::size_t oi = 0; oi < element.ops.size(); ++oi) {
        const MarchOp& op = element.ops[oi];
        const std::uint64_t pattern =
            op.value == 0 ? options_.background.zero_pattern(address, bits)
                          : options_.background.one_pattern(address, bits);
        ++result.operations;
        if (op.type == MarchOp::Type::Write) {
          target_.write_word(address, pattern);
        } else {
          const std::uint64_t actual = target_.read_word(address);
          if (actual != pattern) {
            ++result.total_failures;
            result.passed = false;
            if (result.failures.size() < options_.max_failures)
              result.failures.push_back(
                  MarchFailure{ei, oi, address, pattern, actual});
            if (options_.stop_on_first_failure) return result;
          }
        }
      }
    }
  }
  return result;
}

MultiBackgroundResult run_with_backgrounds(
    MemoryTarget& target, const MarchTest& test,
    const std::vector<DataBackground>& backgrounds,
    MarchExecutorOptions options) {
  MultiBackgroundResult result;
  for (const DataBackground& background : backgrounds) {
    options.background = background;
    MarchExecutor executor(target, options);
    MarchRunResult run = executor.run(test);
    result.passed = result.passed && run.passed;
    result.total_failures += run.total_failures;
    result.runs.emplace_back(background.name(), std::move(run));
    if (!result.passed && options.stop_on_first_failure) break;
  }
  return result;
}

double march_test_time(const MarchTest& test, std::size_t words,
                       double cycle_time, double ds_time,
                       double transition_time) {
  const double op_time = static_cast<double>(test.ops_per_cell()) *
                         static_cast<double>(words) * cycle_time;
  const double dsm_time =
      static_cast<double>(test.deep_sleep_phases()) * ds_time;
  const double transitions =
      static_cast<double>(test.constant_ops()) * transition_time;
  return op_time + dsm_time + transitions;
}

}  // namespace lpsram
