#include "lpsram/march/parser.hpp"

#include <cctype>

#include "lpsram/util/error.hpp"

namespace lpsram {
namespace {

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  void skip_space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool eof() {
    skip_space();
    return pos_ >= text_.size();
  }

  char peek() {
    skip_space();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  char take() {
    skip_space();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void expect(char c) {
    const char got = take();
    if (got != c)
      fail(std::string("expected '") + c + "', got '" + got + "'");
  }

  // Reads a run of letters.
  std::string word() {
    skip_space();
    std::string out;
    while (pos_ < text_.size() &&
           std::isalpha(static_cast<unsigned char>(text_[pos_])))
      out += text_[pos_++];
    return out;
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError("march parse error at position " + std::to_string(pos_) +
                     ": " + message);
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

MarchOp parse_op(Lexer& lex) {
  const char kind = lex.take();
  if (kind != 'r' && kind != 'w') lex.fail("expected 'r' or 'w'");
  const char value = lex.take();
  if (value != '0' && value != '1') lex.fail("expected '0' or '1'");
  MarchOp op;
  op.type = kind == 'r' ? MarchOp::Type::Read : MarchOp::Type::Write;
  op.value = value - '0';
  return op;
}

MarchElement parse_element(Lexer& lex) {
  const char c = lex.peek();
  if (c == '^' || c == 'v' || c == '*') {
    lex.take();
    AddressOrder order = c == '^'   ? AddressOrder::Ascending
                         : c == 'v' ? AddressOrder::Descending
                                    : AddressOrder::Any;
    lex.expect('(');
    std::vector<MarchOp> ops;
    ops.push_back(parse_op(lex));
    while (lex.peek() == ',') {
      lex.take();
      ops.push_back(parse_op(lex));
    }
    lex.expect(')');
    return MarchElement::make(order, std::move(ops));
  }

  const std::string word = lex.word();
  if (word == "DSM") return MarchElement::deep_sleep();
  if (word == "WUP") return MarchElement::wake_up();

  AddressOrder order;
  if (word == "up")
    order = AddressOrder::Ascending;
  else if (word == "down")
    order = AddressOrder::Descending;
  else if (word == "any")
    order = AddressOrder::Any;
  else
    lex.fail("unknown element '" + word + "'");

  lex.expect('(');
  std::vector<MarchOp> ops;
  ops.push_back(parse_op(lex));
  while (lex.peek() == ',') {
    lex.take();
    ops.push_back(parse_op(lex));
  }
  lex.expect(')');
  return MarchElement::make(order, std::move(ops));
}

}  // namespace

MarchTest parse_march(std::string_view text, std::string name) {
  Lexer lex(text);
  MarchTest test;
  test.name = std::move(name);

  lex.expect('{');
  if (lex.peek() != '}') {
    test.elements.push_back(parse_element(lex));
    while (lex.peek() == ';') {
      lex.take();
      test.elements.push_back(parse_element(lex));
    }
  }
  lex.expect('}');
  if (!lex.eof()) lex.fail("trailing characters after '}'");

  test.validate();
  return test;
}

}  // namespace lpsram
