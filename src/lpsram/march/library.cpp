#include "lpsram/march/library.hpp"

#include "lpsram/march/parser.hpp"

namespace lpsram {
namespace march {

MarchTest mats_plus() {
  return parse_march("{ any(w0); up(r0,w1); down(r1,w0) }", "MATS+");
}

MarchTest march_x() {
  return parse_march("{ any(w0); up(r0,w1); down(r1,w0); any(r0) }",
                     "March X");
}

MarchTest march_y() {
  return parse_march("{ any(w0); up(r0,w1,r1); down(r1,w0,r0); any(r0) }",
                     "March Y");
}

MarchTest march_c_minus() {
  return parse_march(
      "{ any(w0); up(r0,w1); up(r1,w0); down(r0,w1); down(r1,w0); any(r0) }",
      "March C-");
}

MarchTest march_a() {
  return parse_march(
      "{ any(w0); up(r0,w1,w0,w1); up(r1,w0,w1); down(r1,w0,w1,w0); "
      "down(r0,w1,w0) }",
      "March A");
}

MarchTest march_b() {
  return parse_march(
      "{ any(w0); up(r0,w1,r1,w0,r0,w1); up(r1,w0,w1); down(r1,w0,w1,w0); "
      "down(r0,w1,w0) }",
      "March B");
}

MarchTest pmovi() {
  return parse_march(
      "{ v(w0); up(r0,w1,r1); up(r1,w0,r0); down(r0,w1,r1); down(r1,w0,r0) }",
      "PMOVI");
}

MarchTest march_ss() {
  return parse_march(
      "{ any(w0); up(r0,r0,w0,r0,w1); up(r1,r1,w1,r1,w0); "
      "down(r0,r0,w0,r0,w1); down(r1,r1,w1,r1,w0); any(r0) }",
      "March SS");
}

MarchTest march_lz() {
  return parse_march("{ any(w1); DSM; WUP; up(r1,w0,r0) }", "March LZ");
}

MarchTest march_m_lz() {
  return parse_march(
      "{ any(w1); DSM; WUP; up(r1,w0,r0); DSM; WUP; up(r0) }", "March m-LZ");
}

std::vector<MarchTest> all_tests() {
  return {mats_plus(), march_x(), march_y(), march_a(),
          march_b(),   pmovi(),   march_c_minus(), march_ss(),
          march_lz(),  march_m_lz()};
}

}  // namespace march
}  // namespace lpsram
