// March test notation (van de Goor [10]), extended with the paper's two
// power-mode pseudo-operations:
//   DSM — switch from ACT to deep-sleep mode and dwell there,
//   WUP — wake-up phase back to ACT.
//
// A march element is either an address-ordered operation list, e.g.
// up(r1,w0,r0), or one of the pseudo-operations. March m-LZ is written
//
//   { any(w1); DSM; WUP; up(r1,w0,r0); DSM; WUP; up(r0) }
//
// and has length 5N+4 counting DSM/WUP as operations of complexity 1
// (paper Section V).
#pragma once

#include <string>
#include <vector>

namespace lpsram {

// Address orders: up = ascending, down = descending, any = either order
// (executed ascending by convention, as allowed by the notation).
enum class AddressOrder { Ascending, Descending, Any };

std::string address_order_symbol(AddressOrder order);

// A read or write of a data background value (0 or 1 across the word).
struct MarchOp {
  enum class Type { Read, Write };
  Type type = Type::Read;
  int value = 0;  // 0 or 1

  std::string str() const;  // "r0", "w1", ...
  bool operator==(const MarchOp&) const = default;
};

// One element of a march test.
struct MarchElement {
  enum class Kind { Ops, DeepSleep, WakeUp };
  Kind kind = Kind::Ops;
  AddressOrder order = AddressOrder::Any;
  std::vector<MarchOp> ops;  // empty for DeepSleep / WakeUp

  static MarchElement deep_sleep();
  static MarchElement wake_up();
  static MarchElement make(AddressOrder order, std::vector<MarchOp> ops);

  std::string str() const;
  bool operator==(const MarchElement&) const = default;
};

// A complete march test.
struct MarchTest {
  std::string name;
  std::vector<MarchElement> elements;

  // Canonical string form: "{ any(w1); DSM; WUP; ... }".
  std::string notation() const;

  // Per-cell operation count (the factor of N in the complexity).
  int ops_per_cell() const;
  // Constant-complexity operations (DSM/WUP count).
  int constant_ops() const;
  // Complexity string, e.g. "5N+4" or "10N".
  std::string complexity() const;
  // Number of DSM (deep-sleep) phases.
  int deep_sleep_phases() const;

  // Structural sanity: every DSM is eventually followed by a WUP, reads and
  // writes only appear in Ops elements, values are 0/1. Throws
  // InvalidArgument when violated.
  void validate() const;
};

// Convenience builders used by the library and tests.
MarchOp r0();
MarchOp r1();
MarchOp w0();
MarchOp w1();

}  // namespace lpsram
