// Library of standard March tests plus the paper's March LZ / March m-LZ.
#pragma once

#include <vector>

#include "lpsram/march/notation.hpp"

namespace lpsram {
namespace march {

// MATS+ (5N): {any(w0); up(r0,w1); down(r1,w0)} — detects SAFs and AFs.
MarchTest mats_plus();

// March X (6N): {any(w0); up(r0,w1); down(r1,w0); any(r0)}.
MarchTest march_x();

// March Y (8N): {any(w0); up(r0,w1,r1); down(r1,w0,r0); any(r0)}.
MarchTest march_y();

// March C- (10N): the classic coupling-fault test.
MarchTest march_c_minus();

// March A (15N): linked coupling faults without reads-after-writes.
MarchTest march_a();

// March B (17N): March A plus linked transition/coupling combinations.
MarchTest march_b();

// PMOVI (13N): the classic production test with read-after-write pairs.
MarchTest pmovi();

// March SS (22N, Hamdioui [11]): all static simple faults.
MarchTest march_ss();

// March LZ (4N+2): the authors' earlier test for faulty behaviours induced
// by peripheral power-gating malfunction [13] — reconstructed here from the
// description in Section V: initialization with '1', one deep-sleep pass,
// then r1,w0,r0 which both checks '1' retention and exercises the
// power-gating sensitization.
MarchTest march_lz();

// March m-LZ (5N+4): the paper's proposed test,
// { any(w1); DSM; WUP; up(r1,w0,r0); DSM; WUP; up(r0) }.
// ME1 initializes with '1'; ME2/ME3 sensitize retention of '1'; ME4 detects
// it (r1) and flips the array to '0' (w0,r0 also target peripheral
// power-gating faults); ME5/ME6 sensitize retention of '0'; ME7 detects it.
MarchTest march_m_lz();

// Every test in the library (for sweep benches).
std::vector<MarchTest> all_tests();

}  // namespace march
}  // namespace lpsram
