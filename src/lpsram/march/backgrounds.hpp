// Data backgrounds for word-oriented memory testing.
//
// A March test on a word-oriented SRAM writes whole words, so a "w0" writes
// the background pattern and "w1" its complement. With the solid background
// (all zeros), coupling between two cells of the same word can never be
// sensitized — both bits always transition in the same direction. The
// standard remedy (van de Goor) is to repeat the test under log2(bits)+1
// backgrounds: solid, then stripes of width 1, 2, 4, ... so every intra-word
// cell pair sees opposite values at least once.
//
// This module generalizes the March executor's data generation: a background
// maps (address, word width) to the pattern a "0" denotes; "1" is its
// complement.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace lpsram {

class DataBackground {
 public:
  // Pattern function: word address -> the "logic 0" pattern.
  using PatternFn = std::function<std::uint64_t(std::size_t address, int bits)>;

  DataBackground();  // solid zeros
  DataBackground(std::string name, PatternFn pattern);

  const std::string& name() const noexcept { return name_; }

  // The word pattern a "0" op denotes at this address.
  std::uint64_t zero_pattern(std::size_t address, int bits) const;
  // The word pattern a "1" op denotes (bit-complement within the word).
  std::uint64_t one_pattern(std::size_t address, int bits) const;

  // --- standard backgrounds -------------------------------------------------
  static DataBackground solid();
  // Bit stripes of the given width inside each word: width 1 = 0101...,
  // width 2 = 0011..., etc.
  static DataBackground bit_stripe(int stripe_width);
  // Checkerboard: bit stripes of width 1 whose phase alternates with the
  // word address (physically adjacent cells differ in both directions).
  static DataBackground checkerboard();
  // Row stripe: solid per word, alternating with the address.
  static DataBackground row_stripe();

 private:
  std::string name_;
  PatternFn pattern_;
};

// The canonical background set for a word width: solid plus bit stripes of
// width 1, 2, 4, ..., bits/2 — log2(bits)+1 entries. Guarantees every
// intra-word cell pair holds opposite values under at least one background.
std::vector<DataBackground> standard_backgrounds(int bits);

}  // namespace lpsram
