#include "lpsram/march/notation.hpp"

#include "lpsram/util/error.hpp"

namespace lpsram {

std::string address_order_symbol(AddressOrder order) {
  switch (order) {
    case AddressOrder::Ascending: return "up";
    case AddressOrder::Descending: return "down";
    case AddressOrder::Any: return "any";
  }
  return "?";
}

std::string MarchOp::str() const {
  return (type == Type::Read ? "r" : "w") + std::to_string(value);
}

MarchElement MarchElement::deep_sleep() {
  MarchElement e;
  e.kind = Kind::DeepSleep;
  return e;
}

MarchElement MarchElement::wake_up() {
  MarchElement e;
  e.kind = Kind::WakeUp;
  return e;
}

MarchElement MarchElement::make(AddressOrder order, std::vector<MarchOp> ops) {
  MarchElement e;
  e.kind = Kind::Ops;
  e.order = order;
  e.ops = std::move(ops);
  return e;
}

std::string MarchElement::str() const {
  switch (kind) {
    case Kind::DeepSleep: return "DSM";
    case Kind::WakeUp: return "WUP";
    case Kind::Ops: {
      std::string out = address_order_symbol(order) + "(";
      for (std::size_t i = 0; i < ops.size(); ++i) {
        if (i) out += ",";
        out += ops[i].str();
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

std::string MarchTest::notation() const {
  std::string out = "{ ";
  for (std::size_t i = 0; i < elements.size(); ++i) {
    if (i) out += "; ";
    out += elements[i].str();
  }
  out += " }";
  return out;
}

int MarchTest::ops_per_cell() const {
  int n = 0;
  for (const MarchElement& e : elements)
    if (e.kind == MarchElement::Kind::Ops)
      n += static_cast<int>(e.ops.size());
  return n;
}

int MarchTest::constant_ops() const {
  int n = 0;
  for (const MarchElement& e : elements)
    if (e.kind != MarchElement::Kind::Ops) ++n;
  return n;
}

std::string MarchTest::complexity() const {
  std::string out = std::to_string(ops_per_cell()) + "N";
  const int c = constant_ops();
  if (c > 0) out += "+" + std::to_string(c);
  return out;
}

int MarchTest::deep_sleep_phases() const {
  int n = 0;
  for (const MarchElement& e : elements)
    if (e.kind == MarchElement::Kind::DeepSleep) ++n;
  return n;
}

void MarchTest::validate() const {
  if (elements.empty())
    throw InvalidArgument("MarchTest '" + name + "': no elements");
  int pending_dsm = 0;
  for (const MarchElement& e : elements) {
    switch (e.kind) {
      case MarchElement::Kind::DeepSleep:
        if (pending_dsm > 0)
          throw InvalidArgument("MarchTest '" + name +
                                "': DSM while already in deep-sleep");
        ++pending_dsm;
        break;
      case MarchElement::Kind::WakeUp:
        if (pending_dsm == 0)
          throw InvalidArgument("MarchTest '" + name +
                                "': WUP without preceding DSM");
        --pending_dsm;
        break;
      case MarchElement::Kind::Ops:
        if (pending_dsm > 0)
          throw InvalidArgument("MarchTest '" + name +
                                "': operations while in deep-sleep");
        if (e.ops.empty())
          throw InvalidArgument("MarchTest '" + name + "': empty element");
        for (const MarchOp& op : e.ops)
          if (op.value != 0 && op.value != 1)
            throw InvalidArgument("MarchTest '" + name +
                                  "': op value must be 0 or 1");
        break;
    }
  }
  if (pending_dsm != 0)
    throw InvalidArgument("MarchTest '" + name + "': test ends in deep-sleep");
}

MarchOp r0() { return {MarchOp::Type::Read, 0}; }
MarchOp r1() { return {MarchOp::Type::Read, 1}; }
MarchOp w0() { return {MarchOp::Type::Write, 0}; }
MarchOp w1() { return {MarchOp::Type::Write, 1}; }

}  // namespace lpsram
