// March test executor: drives a MemoryTarget through a MarchTest, comparing
// every read against the expected data background and logging mismatches —
// the same observation a production memory tester makes.
#pragma once

#include <cstdint>
#include <vector>

#include "lpsram/march/backgrounds.hpp"
#include "lpsram/march/notation.hpp"
#include "lpsram/sram/sram.hpp"

namespace lpsram {

// One observed mismatch.
struct MarchFailure {
  std::size_t element = 0;  // index into MarchTest::elements
  std::size_t op = 0;       // index into the element's ops
  std::size_t address = 0;
  std::uint64_t expected = 0;
  std::uint64_t actual = 0;
};

struct MarchRunResult {
  bool passed = true;
  std::vector<MarchFailure> failures;  // capped at options.max_failures
  std::uint64_t total_failures = 0;    // uncapped count
  std::uint64_t operations = 0;        // word operations issued
  double test_time = 0.0;              // simulated tester time [s]
};

struct MarchExecutorOptions {
  double ds_time = 1e-3;          // dwell per DSM element [s]
  std::size_t max_failures = 64;  // failures recorded in detail
  bool stop_on_first_failure = false;
  // Data background: what a "0" op writes/expects per word. Solid by
  // default; intra-word coupling needs the standard_backgrounds() set.
  DataBackground background = DataBackground::solid();
};

class MarchExecutor {
 public:
  explicit MarchExecutor(MemoryTarget& target,
                         MarchExecutorOptions options = {});

  // Runs the test (validated first). The target is assumed to be in ACT mode.
  MarchRunResult run(const MarchTest& test);

  const MarchExecutorOptions& options() const noexcept { return options_; }

 private:
  MemoryTarget& target_;
  MarchExecutorOptions options_;
};

// Estimated tester time of a test on an N-word memory: N-linear operations at
// `cycle_time` plus per-DSM dwell and wake-up overhead. Matches the cost
// model behind the paper's "75% test time reduction" claim.
double march_test_time(const MarchTest& test, std::size_t words,
                       double cycle_time, double ds_time,
                       double transition_time = 1e-6);

// Result of a multi-background run.
struct MultiBackgroundResult {
  bool passed = true;
  // One entry per background, in the order given.
  std::vector<std::pair<std::string, MarchRunResult>> runs;
  std::uint64_t total_failures = 0;
};

// Runs the test once per background (the word-oriented testing recipe for
// intra-word faults) and aggregates the verdicts.
MultiBackgroundResult run_with_backgrounds(
    MemoryTarget& target, const MarchTest& test,
    const std::vector<DataBackground>& backgrounds,
    MarchExecutorOptions options = {});

}  // namespace lpsram
