// Text form of march tests.
//
// Grammar (whitespace-insensitive):
//   test     := '{' element (';' element)* '}'
//   element  := 'DSM' | 'WUP' | order '(' op (',' op)* ')'
//   order    := 'up' | '^' | 'down' | 'v' | 'any' | '*'
//   op       := ('r' | 'w') ('0' | '1')
//
// Example: "{ any(w1); DSM; WUP; up(r1,w0,r0); DSM; WUP; up(r0) }"
#pragma once

#include <string_view>

#include "lpsram/march/notation.hpp"

namespace lpsram {

// Parses the notation; throws ParseError with a position hint on bad input.
MarchTest parse_march(std::string_view text, std::string name = "");

}  // namespace lpsram
