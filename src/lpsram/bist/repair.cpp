#include "lpsram/bist/repair.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "lpsram/util/error.hpp"

namespace lpsram {
namespace {
constexpr int kColumnMux = 8;  // words per physical row (array geometry)
}

std::vector<FailCell> fail_cells(const BistResponse& response) {
  // Every recorded failure must be in the log; a truncated log cannot drive
  // repair (unknown failures would escape the allocation).
  std::uint64_t logged_cells = 0;
  for (const BistFailure& f : response.log()) {
    (void)f;
    ++logged_cells;
  }
  if (logged_cells < response.fail_count())
    throw InvalidArgument(
        "fail_cells: fail log truncated; rerun BIST with a larger "
        "max_fail_log");

  std::set<std::pair<int, int>> distinct;
  for (const BistFailure& f : response.log()) {
    const int row = static_cast<int>(f.address) / kColumnMux;
    for (int bit = 0; bit < 64; ++bit) {
      if ((f.syndrome >> bit) & 1u) distinct.insert({row, bit});
    }
  }
  std::vector<FailCell> cells;
  cells.reserve(distinct.size());
  for (const auto& [row, col] : distinct) cells.push_back(FailCell{row, col});
  return cells;
}

RepairSolution allocate_repair(const std::vector<FailCell>& cells,
                               const RepairResources& resources) {
  RepairSolution solution;
  std::vector<FailCell> remaining = cells;
  int rows_left = resources.spare_rows;
  int cols_left = resources.spare_cols;

  auto remove_row = [&](int row) {
    solution.rows.push_back(row);
    --rows_left;
    remaining.erase(std::remove_if(remaining.begin(), remaining.end(),
                                   [row](const FailCell& c) {
                                     return c.row == row;
                                   }),
                    remaining.end());
  };
  auto remove_col = [&](int col) {
    solution.cols.push_back(col);
    --cols_left;
    remaining.erase(std::remove_if(remaining.begin(), remaining.end(),
                                   [col](const FailCell& c) {
                                     return c.col == col;
                                   }),
                    remaining.end());
  };

  // --- 1. must-repair fixed point -----------------------------------------
  bool changed = true;
  while (changed && !remaining.empty()) {
    changed = false;
    std::map<int, std::set<int>> cols_per_row;
    std::map<int, std::set<int>> rows_per_col;
    for (const FailCell& c : remaining) {
      cols_per_row[c.row].insert(c.col);
      rows_per_col[c.col].insert(c.row);
    }
    for (const auto& [row, cols] : cols_per_row) {
      if (static_cast<int>(cols.size()) > cols_left) {
        if (rows_left == 0) {
          solution.feasible = false;
          return solution;  // a must-repair row with no row spare left
        }
        remove_row(row);
        changed = true;
        break;  // histograms are stale; recompute
      }
    }
    if (changed) continue;
    for (const auto& [col, rows] : rows_per_col) {
      if (static_cast<int>(rows.size()) > rows_left) {
        if (cols_left == 0) {
          solution.feasible = false;
          return solution;
        }
        remove_col(col);
        changed = true;
        break;
      }
    }
  }

  // --- 2. greedy cover of the leftovers -------------------------------------
  while (!remaining.empty()) {
    if (rows_left == 0 && cols_left == 0) {
      solution.feasible = false;
      return solution;
    }
    std::map<int, int> row_counts;
    std::map<int, int> col_counts;
    for (const FailCell& c : remaining) {
      ++row_counts[c.row];
      ++col_counts[c.col];
    }
    int best_row = -1, best_row_count = 0;
    for (const auto& [row, n] : row_counts) {
      if (n > best_row_count) {
        best_row = row;
        best_row_count = n;
      }
    }
    int best_col = -1, best_col_count = 0;
    for (const auto& [col, n] : col_counts) {
      if (n > best_col_count) {
        best_col = col;
        best_col_count = n;
      }
    }
    const bool pick_row =
        rows_left > 0 &&
        (cols_left == 0 || best_row_count > best_col_count ||
         (best_row_count == best_col_count && rows_left >= cols_left));
    if (pick_row) {
      remove_row(best_row);
    } else {
      remove_col(best_col);
    }
  }

  solution.feasible = true;
  std::sort(solution.rows.begin(), solution.rows.end());
  std::sort(solution.cols.begin(), solution.cols.end());
  return solution;
}

RepairSolution allocate_repair(const BistResponse& response,
                               const RepairResources& resources) {
  return allocate_repair(fail_cells(response), resources);
}

}  // namespace lpsram
