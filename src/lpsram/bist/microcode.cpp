#include "lpsram/bist/microcode.hpp"

#include "lpsram/util/error.hpp"

namespace lpsram {

std::string BistInstruction::str() const {
  switch (op) {
    case Op::LoopStart:
      return descending ? "LOOP down" : "LOOP up";
    case Op::ReadCompare:
      return "RDC " + std::to_string(data);
    case Op::WriteData:
      return "WRD " + std::to_string(data);
    case Op::LoopEnd:
      return "ENDL";
    case Op::DeepSleep:
      return "DSM";
    case Op::WakeUp:
      return "WUP";
    case Op::Halt:
      return "HALT";
  }
  return "?";
}

std::vector<BistInstruction> assemble(const MarchTest& test) {
  test.validate();
  std::vector<BistInstruction> program;
  for (const MarchElement& element : test.elements) {
    switch (element.kind) {
      case MarchElement::Kind::DeepSleep:
        program.push_back({BistInstruction::Op::DeepSleep, false, 0});
        break;
      case MarchElement::Kind::WakeUp:
        program.push_back({BistInstruction::Op::WakeUp, false, 0});
        break;
      case MarchElement::Kind::Ops: {
        const bool descending = element.order == AddressOrder::Descending;
        program.push_back({BistInstruction::Op::LoopStart, descending, 0});
        for (const MarchOp& op : element.ops) {
          program.push_back({op.type == MarchOp::Type::Read
                                 ? BistInstruction::Op::ReadCompare
                                 : BistInstruction::Op::WriteData,
                             false, op.value});
        }
        program.push_back({BistInstruction::Op::LoopEnd, false, 0});
        break;
      }
    }
  }
  program.push_back({BistInstruction::Op::Halt, false, 0});
  return program;
}

void validate_program(const std::vector<BistInstruction>& program) {
  if (program.empty() || program.back().op != BistInstruction::Op::Halt)
    throw InvalidArgument("BIST program must end with Halt");
  bool in_loop = false;
  bool loop_has_op = false;
  for (std::size_t pc = 0; pc < program.size(); ++pc) {
    const BistInstruction& inst = program[pc];
    switch (inst.op) {
      case BistInstruction::Op::LoopStart:
        if (in_loop)
          throw InvalidArgument("BIST program: nested LoopStart at pc " +
                                std::to_string(pc));
        in_loop = true;
        loop_has_op = false;
        break;
      case BistInstruction::Op::LoopEnd:
        if (!in_loop)
          throw InvalidArgument("BIST program: LoopEnd without LoopStart");
        if (!loop_has_op)
          throw InvalidArgument("BIST program: empty loop");
        in_loop = false;
        break;
      case BistInstruction::Op::ReadCompare:
      case BistInstruction::Op::WriteData:
        if (!in_loop)
          throw InvalidArgument("BIST program: memory op outside a loop");
        if (inst.data != 0 && inst.data != 1)
          throw InvalidArgument("BIST program: data must be 0/1");
        loop_has_op = true;
        break;
      case BistInstruction::Op::DeepSleep:
      case BistInstruction::Op::WakeUp:
        if (in_loop)
          throw InvalidArgument("BIST program: power op inside a loop");
        break;
      case BistInstruction::Op::Halt:
        if (pc + 1 != program.size())
          throw InvalidArgument("BIST program: Halt before the end");
        if (in_loop) throw InvalidArgument("BIST program: Halt inside a loop");
        break;
    }
  }
}

MarchTest disassemble(const std::vector<BistInstruction>& program,
                      std::string name) {
  validate_program(program);
  MarchTest test;
  test.name = std::move(name);

  std::vector<MarchOp> ops;
  bool descending = false;
  for (const BistInstruction& inst : program) {
    switch (inst.op) {
      case BistInstruction::Op::LoopStart:
        ops.clear();
        descending = inst.descending;
        break;
      case BistInstruction::Op::ReadCompare:
        ops.push_back({MarchOp::Type::Read, inst.data});
        break;
      case BistInstruction::Op::WriteData:
        ops.push_back({MarchOp::Type::Write, inst.data});
        break;
      case BistInstruction::Op::LoopEnd:
        test.elements.push_back(MarchElement::make(
            descending ? AddressOrder::Descending : AddressOrder::Ascending,
            ops));
        break;
      case BistInstruction::Op::DeepSleep:
        test.elements.push_back(MarchElement::deep_sleep());
        break;
      case BistInstruction::Op::WakeUp:
        test.elements.push_back(MarchElement::wake_up());
        break;
      case BistInstruction::Op::Halt:
        break;
    }
  }
  test.validate();
  return test;
}

}  // namespace lpsram
