#include "lpsram/bist/diagnosis.hpp"

namespace lpsram {

std::string spatial_signature_name(SpatialSignature signature) {
  switch (signature) {
    case SpatialSignature::Clean: return "clean";
    case SpatialSignature::SingleCell: return "single cell";
    case SpatialSignature::SingleRow: return "single row";
    case SpatialSignature::SingleColumn: return "single column";
    case SpatialSignature::Scattered: return "scattered";
    case SpatialSignature::WholeArray: return "whole array";
  }
  return "?";
}

SpatialSignature classify_spatial(const BistResponse& response,
                                  std::size_t words, int bits) {
  if (response.pass()) return SpatialSignature::Clean;

  std::size_t failing_rows = 0;
  for (const std::uint32_t n : response.row_fails())
    if (n > 0) ++failing_rows;
  std::size_t failing_bits = 0;
  for (const std::uint32_t n : response.bit_fails())
    if (n > 0) ++failing_bits;

  if (failing_rows == 1 && failing_bits == 1 && response.fail_count() <= 2)
    return SpatialSignature::SingleCell;  // <= 2: the same cell can fail in
                                          // both backgrounds/elements
  if (failing_rows == 1 && failing_bits > 1) return SpatialSignature::SingleRow;
  if (failing_bits == 1 && failing_rows > 1)
    return SpatialSignature::SingleColumn;

  // Whole-array: at least half the words logged a failing read.
  (void)bits;
  if (response.fail_count() >= words / 2) return SpatialSignature::WholeArray;
  return SpatialSignature::Scattered;
}

namespace {

// For each ReadCompare pc: is it inside the first ops-loop following a
// WakeUp (i.e. a retention check), and what data does it expect?
struct ReadInfo {
  bool retention_check = false;
  int data = 0;
};

std::vector<ReadInfo> annotate_reads(
    const std::vector<BistInstruction>& program) {
  std::vector<ReadInfo> info(program.size());
  bool after_wakeup = false;   // saw WUP, no ops-loop completed yet
  bool first_read_done = false;  // the first read op of that loop was seen
  for (std::size_t pc = 0; pc < program.size(); ++pc) {
    switch (program[pc].op) {
      case BistInstruction::Op::WakeUp:
        after_wakeup = true;
        first_read_done = false;
        break;
      case BistInstruction::Op::ReadCompare:
        if (after_wakeup && !first_read_done) {
          info[pc] = {true, program[pc].data};
          first_read_done = true;  // only the first read checks retention;
                                   // later ops in the element target other
                                   // mechanisms (w0,r0 in March m-LZ's ME4)
        }
        break;
      case BistInstruction::Op::WriteData:
        // A write refreshes the cells: subsequent reads in this element are
        // no longer retention checks.
        if (after_wakeup) first_read_done = true;
        break;
      case BistInstruction::Op::LoopEnd:
        // handled per-instruction; the flag resets at the next element
        break;
      case BistInstruction::Op::LoopStart:
        if (after_wakeup && first_read_done) after_wakeup = false;
        break;
      default:
        break;
    }
  }
  return info;
}

}  // namespace

std::string RetentionDiagnosis::str() const {
  if (spatial == SpatialSignature::Clean) return "clean";
  std::string out = retention_related ? "retention-related (DRF_DS pattern)"
                                      : "not retention-specific";
  if (lost_value) {
    out += lost_value == StoredBit::One ? ", stored '1' lost (DRV_DS1)"
                                        : ", stored '0' lost (DRV_DS0)";
  }
  out += ", " + spatial_signature_name(spatial);
  return out;
}

RetentionDiagnosis diagnose_retention(
    const std::vector<BistInstruction>& program, const BistResponse& response,
    std::size_t words, int bits) {
  RetentionDiagnosis diagnosis;
  diagnosis.spatial = classify_spatial(response, words, bits);
  if (response.pass()) return diagnosis;

  const std::vector<ReadInfo> reads = annotate_reads(program);
  bool all_retention = true;
  bool lost_one = false;
  bool lost_zero = false;
  for (const std::size_t pc : response.failing_pcs()) {
    if (pc >= reads.size() || !reads[pc].retention_check) {
      all_retention = false;
      continue;
    }
    if (reads[pc].data == 1)
      lost_one = true;
    else
      lost_zero = true;
  }
  diagnosis.retention_related = all_retention;
  if (lost_one != lost_zero)
    diagnosis.lost_value = lost_one ? StoredBit::One : StoredBit::Zero;
  return diagnosis;
}

}  // namespace lpsram
