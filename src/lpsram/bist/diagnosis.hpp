// Failure-signature diagnosis from a compressed BIST response.
//
// Two layers, mirroring how a test engineer reads Table-II-style silicon
// data:
//  * a spatial signature (single cell / row / column / scattered / whole
//    array) from the row/bit fail histograms, and
//  * a retention signature: a DRF_DS (the paper's fault model) fails
//    exclusively on the first read element after a wake-up, with the data
//    value revealing which state was lost (r1 fails -> stored '1' lost
//    -> DRV_DS1 violated). A whole-array retention failure points at a
//    collapsed regulator (e.g. Df16/Df19/Df29/Df32 fully open); a
//    single-cell retention failure points at a marginal Vreg interacting
//    with the array's weakest cell.
#pragma once

#include <optional>
#include <string>

#include "lpsram/bist/controller.hpp"

namespace lpsram {

enum class SpatialSignature {
  Clean,       // no failures
  SingleCell,  // one cell fails
  SingleRow,   // all failures share one word line
  SingleColumn,  // all failures share one bit position
  Scattered,   // multiple rows and columns, small fraction of the array
  WholeArray,  // a large fraction of the array fails
};

std::string spatial_signature_name(SpatialSignature signature);

// Classifies the spatial distribution of failures.
SpatialSignature classify_spatial(const BistResponse& response,
                                  std::size_t words, int bits);

struct RetentionDiagnosis {
  // True if every failing read is the first read element following a
  // wake-up — the DRF_DS sensitization pattern.
  bool retention_related = false;
  // Which stored value was lost (from the failing reads' expected data);
  // unset when both or neither.
  std::optional<StoredBit> lost_value;
  // Spatial extent of the retention loss.
  SpatialSignature spatial = SpatialSignature::Clean;

  std::string str() const;
};

// Diagnoses a response against the program that produced it.
RetentionDiagnosis diagnose_retention(
    const std::vector<BistInstruction>& program, const BistResponse& response,
    std::size_t words, int bits);

}  // namespace lpsram
