// March-to-BIST microcode assembler.
//
// A production deployment of the paper's flow runs March m-LZ from an
// on-chip BIST controller, not from a tester: the power-mode transitions
// (DSM/WUP) become controller states that drive the SLEEP pin and wait out
// the dwell. This module compiles a MarchTest into a compact instruction
// list a synthesizable controller FSM could execute, and disassembles it
// back (round-trip tested).
//
// Encoding of one march element `up(r1,w0,r0)`:
//   LoopStart(ascending)
//   ReadCompare(1)
//   WriteData(0)
//   ReadCompare(0)
//   LoopEnd
// DSM / WUP become DeepSleep / WakeUp instructions; the program ends with
// Halt.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lpsram/march/notation.hpp"

namespace lpsram {

struct BistInstruction {
  enum class Op : std::uint8_t {
    LoopStart,    // begin an address loop; `descending` picks the direction
    ReadCompare,  // read current address, compare against data generator
    WriteData,    // write data-generator output at current address
    LoopEnd,      // advance the address; jump back to LoopStart if not done
    DeepSleep,    // drive SLEEP=1 and wait the configured dwell
    WakeUp,       // drive SLEEP=0 and wait the wake-up latency
    Halt,         // done
  };

  Op op = Op::Halt;
  bool descending = false;  // LoopStart only
  int data = 0;             // ReadCompare/WriteData: background-relative 0/1

  std::string str() const;
  bool operator==(const BistInstruction&) const = default;
};

// Compiles a (validated) March test into microcode.
std::vector<BistInstruction> assemble(const MarchTest& test);

// Reconstructs the March test from microcode (element order Ascending for
// non-descending loops; `Any` order information is not preserved).
// Throws InvalidArgument on malformed programs.
MarchTest disassemble(const std::vector<BistInstruction>& program,
                      std::string name = "disassembled");

// Structural check: loops properly nested/closed, ops only inside loops,
// program Halt-terminated. Throws InvalidArgument when violated.
void validate_program(const std::vector<BistInstruction>& program);

}  // namespace lpsram
