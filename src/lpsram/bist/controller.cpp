#include "lpsram/bist/controller.hpp"

#include <algorithm>

#include "lpsram/util/error.hpp"

namespace lpsram {
namespace {
constexpr int kColumnMux = 8;  // words per physical row (array.cpp)
}

BistResponse::BistResponse(std::size_t words, int bits, std::size_t max_log)
    : max_log_(max_log),
      row_fails_((words + kColumnMux - 1) / kColumnMux, 0),
      bit_fails_(static_cast<std::size_t>(bits), 0) {}

void BistResponse::record(std::size_t pc, std::size_t address,
                          std::uint64_t syndrome) {
  if (syndrome == 0) return;
  ++fail_count_;
  if (log_.size() < max_log_) log_.push_back({pc, address, syndrome});
  ++row_fails_[address / kColumnMux];
  for (std::size_t b = 0; b < bit_fails_.size(); ++b)
    if ((syndrome >> b) & 1u) ++bit_fails_[b];
  if (std::find(failing_pcs_.begin(), failing_pcs_.end(), pc) ==
      failing_pcs_.end())
    failing_pcs_.push_back(pc);
}

void BistResponse::clear() {
  fail_count_ = 0;
  log_.clear();
  failing_pcs_.clear();
  std::fill(row_fails_.begin(), row_fails_.end(), 0u);
  std::fill(bit_fails_.begin(), bit_fails_.end(), 0u);
}

BistController::BistController(MemoryTarget& target, Config config)
    : target_(target),
      config_(std::move(config)),
      response_(target.words(), target.bits_per_word(),
                config_.max_fail_log) {}

void BistController::load(const std::vector<BistInstruction>& program) {
  validate_program(program);
  program_ = program;
  state_ = State::Idle;
  pc_ = 0;
  response_.clear();
  elapsed_ = 0.0;
  memory_ops_ = 0;
}

void BistController::load(const MarchTest& test) { load(assemble(test)); }

void BistController::start() {
  if (program_.empty()) throw Error("BistController: no program loaded");
  pc_ = 0;
  state_ = State::Running;
  response_.clear();
  elapsed_ = 0.0;
  memory_ops_ = 0;
}

const BistInstruction& BistController::fetch() const {
  if (pc_ >= program_.size())
    throw Error("BistController: program counter out of range");
  return program_[pc_];
}

void BistController::execute_memory_op(const BistInstruction& inst) {
  const int bits = target_.bits_per_word();
  const std::uint64_t pattern =
      inst.data == 0 ? config_.background.zero_pattern(address_, bits)
                     : config_.background.one_pattern(address_, bits);
  if (inst.op == BistInstruction::Op::WriteData) {
    target_.write_word(address_, pattern);
  } else {
    const std::uint64_t actual = target_.read_word(address_);
    response_.record(pc_, address_, actual ^ pattern);
  }
  ++memory_ops_;
  elapsed_ += config_.clock_period;
}

void BistController::advance_address() {
  if (descending_) {
    if (address_ == 0) {
      pc_ += 1;  // loop complete: fall through LoopEnd
      return;
    }
    --address_;
  } else {
    if (address_ + 1 >= target_.words()) {
      pc_ += 1;
      return;
    }
    ++address_;
  }
  pc_ = loop_start_pc_ + 1;  // back to the first op of the loop body
}

bool BistController::step() {
  if (state_ == State::Idle) throw Error("BistController: not started");
  if (state_ == State::Done) return false;

  const BistInstruction inst = fetch();
  switch (inst.op) {
    case BistInstruction::Op::LoopStart:
      loop_start_pc_ = pc_;
      descending_ = inst.descending;
      address_ = descending_ ? target_.words() - 1 : 0;
      ++pc_;
      break;
    case BistInstruction::Op::ReadCompare:
    case BistInstruction::Op::WriteData:
      execute_memory_op(inst);
      ++pc_;
      break;
    case BistInstruction::Op::LoopEnd:
      advance_address();
      break;
    case BistInstruction::Op::DeepSleep:
      target_.deep_sleep(config_.ds_time);
      elapsed_ += config_.ds_time;
      state_ = State::Sleeping;
      ++pc_;
      break;
    case BistInstruction::Op::WakeUp:
      target_.wake_up();
      elapsed_ += config_.wakeup_time;
      state_ = State::Running;
      ++pc_;
      break;
    case BistInstruction::Op::Halt:
      state_ = State::Done;
      return false;
  }
  return true;
}

std::uint64_t BistController::run(std::uint64_t max_steps) {
  if (state_ == State::Idle) start();
  std::uint64_t steps = 0;
  while (step()) {
    if (++steps > max_steps)
      throw Error("BistController: step budget exceeded (runaway program?)");
  }
  return steps;
}

}  // namespace lpsram
