// Redundancy repair allocation from a BIST fail log.
//
// Production SRAMs ship spare rows and spare columns; after BIST, a repair
// allocator decides which spares replace which failing lines. The problem is
// NP-hard in general; the standard industrial approach implemented here is
//   1. must-repair analysis: a row with more distinct failing columns than
//      there are spare columns can only be fixed by a row spare (and
//      symmetrically for columns) — iterate to a fixed point;
//   2. greedy cover for the leftover sparse failures (pick the line covering
//      the most remaining fail cells; ties prefer the resource with more
//      spares left);
//   3. feasibility check.
//
// Rows here are physical word lines (address / 8, the 8:1 column-mux
// geometry of the reference block) and columns are bit positions, matching
// the histograms BistResponse keeps.
#pragma once

#include <vector>

#include "lpsram/bist/controller.hpp"

namespace lpsram {

struct RepairResources {
  int spare_rows = 0;
  int spare_cols = 0;
};

struct RepairSolution {
  bool feasible = false;
  std::vector<int> rows;  // word-line indices replaced by row spares
  std::vector<int> cols;  // bit positions replaced by column spares

  int spares_used() const noexcept {
    return static_cast<int>(rows.size() + cols.size());
  }
};

// One failing cell in physical coordinates.
struct FailCell {
  int row = 0;
  int col = 0;
  bool operator==(const FailCell&) const = default;
};

// Extracts the distinct failing cells from a complete fail log. Throws
// InvalidArgument if the log was truncated (fail_count exceeds what the log
// can attribute) — repair needs full information.
std::vector<FailCell> fail_cells(const BistResponse& response);

// Allocates spares for an explicit fail-cell list.
RepairSolution allocate_repair(const std::vector<FailCell>& cells,
                               const RepairResources& resources);

// Convenience: straight from the BIST response.
RepairSolution allocate_repair(const BistResponse& response,
                               const RepairResources& resources);

}  // namespace lpsram
