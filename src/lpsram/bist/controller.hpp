// Cycle-stepped BIST controller.
//
// Executes a microcode program (see microcode.hpp) against a MemoryTarget
// the way an on-chip controller would: one memory operation per clock, an
// up/down address generator, a background-aware data generator, a
// comparator, and a response analyzer with a bounded fail log plus row- and
// column-fail counters (the compressed signature real BIST engines export
// for diagnosis).
#pragma once

#include <cstdint>
#include <vector>

#include "lpsram/bist/microcode.hpp"
#include "lpsram/march/backgrounds.hpp"
#include "lpsram/sram/sram.hpp"

namespace lpsram {

// One logged mismatch.
struct BistFailure {
  std::size_t pc = 0;        // program counter of the ReadCompare
  std::size_t address = 0;
  std::uint64_t syndrome = 0;  // expected XOR actual (failing bit mask)
};

// Compressed test response.
class BistResponse {
 public:
  BistResponse(std::size_t words, int bits, std::size_t max_log = 256);

  void record(std::size_t pc, std::size_t address, std::uint64_t syndrome);
  void clear();

  bool pass() const noexcept { return fail_count_ == 0; }
  std::uint64_t fail_count() const noexcept { return fail_count_; }
  const std::vector<BistFailure>& log() const noexcept { return log_; }

  // Fail counters per word line (row) and bit position, for signature
  // classification. Row index = address / column_mux (8), matching the
  // physical array organisation.
  const std::vector<std::uint32_t>& row_fails() const noexcept {
    return row_fails_;
  }
  const std::vector<std::uint32_t>& bit_fails() const noexcept {
    return bit_fails_;
  }
  // Distinct failing program counters (which reads of the test failed).
  const std::vector<std::size_t>& failing_pcs() const noexcept {
    return failing_pcs_;
  }

 private:
  std::size_t max_log_;
  std::uint64_t fail_count_ = 0;
  std::vector<BistFailure> log_;
  std::vector<std::uint32_t> row_fails_;
  std::vector<std::uint32_t> bit_fails_;
  std::vector<std::size_t> failing_pcs_;
};

struct BistConfig {
  double clock_period = 10e-9;  // one memory op per clock [s]
  double ds_time = 1e-3;        // DeepSleep dwell [s]
  double wakeup_time = 1e-6;    // WakeUp latency [s]
  DataBackground background = DataBackground::solid();
  std::size_t max_fail_log = 256;
};

class BistController {
 public:
  using Config = BistConfig;

  BistController(MemoryTarget& target, Config config = {});

  // Loads (and validates) a program; resets state to Idle.
  void load(const std::vector<BistInstruction>& program);
  // Convenience: assemble + load a March test.
  void load(const MarchTest& test);

  enum class State { Idle, Running, Sleeping, Done };
  State state() const noexcept { return state_; }

  // Starts execution from the first instruction.
  void start();
  // Advances one controller step (one memory op, one power transition, or
  // one control instruction). Returns false once Done.
  bool step();
  // Runs to completion; throws Error if `max_steps` is exceeded (runaway
  // program guard). Returns the number of steps consumed.
  std::uint64_t run(std::uint64_t max_steps = 100'000'000);

  const BistResponse& response() const noexcept { return response_; }
  // Elapsed tester time: clocks + dwell/wake latencies [s].
  double elapsed() const noexcept { return elapsed_; }
  std::uint64_t memory_ops() const noexcept { return memory_ops_; }

 private:
  const BistInstruction& fetch() const;
  void execute_memory_op(const BistInstruction& inst);
  void advance_address();

  MemoryTarget& target_;
  Config config_;
  std::vector<BistInstruction> program_;
  BistResponse response_;

  State state_ = State::Idle;
  std::size_t pc_ = 0;
  std::size_t loop_start_pc_ = 0;
  std::size_t address_ = 0;
  bool descending_ = false;
  double elapsed_ = 0.0;
  std::uint64_t memory_ops_ = 0;
};

}  // namespace lpsram
