#include "lpsram/faults/fault_model.hpp"

#include <cstdio>

namespace lpsram {

std::string fault_class_name(FaultClass cls) {
  switch (cls) {
    case FaultClass::StuckAt0: return "SA0";
    case FaultClass::StuckAt1: return "SA1";
    case FaultClass::TransitionUp: return "TF<0->1>";
    case FaultClass::TransitionDown: return "TF<1->0>";
    case FaultClass::CouplingInversion: return "CFin";
    case FaultClass::CouplingIdempotent: return "CFid";
    case FaultClass::CouplingState: return "CFst";
    case FaultClass::RetentionDecay: return "DRF";
    case FaultClass::ReadDisturb: return "RDF";
    case FaultClass::DeceptiveReadDisturb: return "DRDF";
    case FaultClass::IncorrectRead: return "IRF";
    case FaultClass::WriteDisturb: return "WDF";
  }
  return "?";
}

std::string FaultDescriptor::str() const {
  char buf[160];
  switch (cls) {
    case FaultClass::StuckAt0:
    case FaultClass::StuckAt1:
    case FaultClass::TransitionUp:
    case FaultClass::TransitionDown:
      std::snprintf(buf, sizeof(buf), "%s @(%zu,%d)",
                    fault_class_name(cls).c_str(), address, bit);
      break;
    case FaultClass::CouplingInversion:
      std::snprintf(buf, sizeof(buf), "CFin<%s;inv> agg(%zu,%d) vic(%zu,%d)",
                    aggressor_up ? "up" : "down", aggressor_address,
                    aggressor_bit, address, bit);
      break;
    case FaultClass::CouplingIdempotent:
      std::snprintf(buf, sizeof(buf), "CFid<%s;%d> agg(%zu,%d) vic(%zu,%d)",
                    aggressor_up ? "up" : "down", forced_value,
                    aggressor_address, aggressor_bit, address, bit);
      break;
    case FaultClass::CouplingState:
      std::snprintf(buf, sizeof(buf), "CFst<%d;%d> agg(%zu,%d) vic(%zu,%d)",
                    aggressor_state, forced_value, aggressor_address,
                    aggressor_bit, address, bit);
      break;
    case FaultClass::RetentionDecay:
      std::snprintf(buf, sizeof(buf), "DRF<%d, %.1es> @(%zu,%d)",
                    forced_value, retention_time, address, bit);
      break;
    case FaultClass::ReadDisturb:
    case FaultClass::DeceptiveReadDisturb:
    case FaultClass::IncorrectRead:
    case FaultClass::WriteDisturb:
      std::snprintf(buf, sizeof(buf), "%s<%d> @(%zu,%d)",
                    fault_class_name(cls).c_str(), sensitizing_state, address,
                    bit);
      break;
  }
  return buf;
}

}  // namespace lpsram
