#include "lpsram/faults/injector.hpp"

#include "lpsram/util/error.hpp"

namespace lpsram {
namespace {

bool bit_of(std::uint64_t word, int bit) { return (word >> bit) & 1u; }

std::uint64_t with_bit(std::uint64_t word, int bit, bool value) {
  return value ? (word | (1ull << bit)) : (word & ~(1ull << bit));
}

}  // namespace

FaultyMemory::FaultyMemory(MemoryTarget& base, double cycle_time)
    : base_(base), cycle_time_(cycle_time) {}

void FaultyMemory::add_fault(const FaultDescriptor& fault) {
  if (fault.bit < 0 || fault.bit >= base_.bits_per_word() ||
      fault.address >= base_.words())
    throw InvalidArgument("FaultyMemory: victim out of range");
  faults_.push_back(fault);

  // Stuck-at cells hold their stuck value from the moment of injection.
  if (fault.cls == FaultClass::StuckAt0 || fault.cls == FaultClass::StuckAt1) {
    const bool v = fault.cls == FaultClass::StuckAt1;
    base_.poke(fault.address,
               with_bit(base_.peek(fault.address), fault.bit, v));
  }
  if (fault.cls == FaultClass::RetentionDecay) {
    last_write_[cell_key(fault.address, fault.bit)] = clock_;
  }
}

void FaultyMemory::clear_faults() {
  faults_.clear();
  last_write_.clear();
}

void FaultyMemory::apply_write_effects(std::size_t address,
                                       std::uint64_t old_value,
                                       std::uint64_t& new_value) {
  for (const FaultDescriptor& f : faults_) {
    if (f.address != address) continue;
    const bool old_bit = bit_of(old_value, f.bit);
    const bool new_bit = bit_of(new_value, f.bit);
    switch (f.cls) {
      case FaultClass::StuckAt0:
        new_value = with_bit(new_value, f.bit, false);
        break;
      case FaultClass::StuckAt1:
        new_value = with_bit(new_value, f.bit, true);
        break;
      case FaultClass::TransitionUp:
        if (!old_bit && new_bit) new_value = with_bit(new_value, f.bit, false);
        break;
      case FaultClass::TransitionDown:
        if (old_bit && !new_bit) new_value = with_bit(new_value, f.bit, true);
        break;
      case FaultClass::WriteDisturb:
        // A non-transition write in the sensitizing state flips the cell.
        if (old_bit == new_bit &&
            static_cast<int>(new_bit) == f.sensitizing_state)
          new_value = with_bit(new_value, f.bit, !new_bit);
        break;
      default:
        break;  // coupling handled from the aggressor side; decay at read
    }
  }
}

void FaultyMemory::write_word(std::size_t address, std::uint64_t value) {
  clock_ += cycle_time_;
  const std::uint64_t old_value = base_.peek(address);
  std::uint64_t new_value = value;
  apply_write_effects(address, old_value, new_value);
  base_.write_word(address, new_value);

  // Retention bookkeeping for decaying victims in this word.
  for (const FaultDescriptor& f : faults_) {
    if (f.cls == FaultClass::RetentionDecay && f.address == address)
      note_write(address, f.bit);
  }

  // Coupling effects triggered by aggressor activity in this word.
  for (const FaultDescriptor& f : faults_) {
    if (f.aggressor_address != address) continue;
    const bool agg_old = bit_of(old_value, f.aggressor_bit);
    const bool agg_new = bit_of(new_value, f.aggressor_bit);
    if (agg_old == agg_new) continue;  // no transition
    const bool transition_up = !agg_old && agg_new;

    if (f.cls == FaultClass::CouplingInversion &&
        transition_up == f.aggressor_up) {
      const std::uint64_t victim = base_.peek(f.address);
      base_.poke(f.address,
                 with_bit(victim, f.bit, !bit_of(victim, f.bit)));
    } else if (f.cls == FaultClass::CouplingIdempotent &&
               transition_up == f.aggressor_up) {
      const std::uint64_t victim = base_.peek(f.address);
      base_.poke(f.address, with_bit(victim, f.bit, f.forced_value != 0));
    }
  }
}

std::uint64_t FaultyMemory::apply_read_effects(std::size_t address,
                                               std::uint64_t value) {
  for (const FaultDescriptor& f : faults_) {
    if (f.address != address) continue;
    switch (f.cls) {
      case FaultClass::StuckAt0:
        value = with_bit(value, f.bit, false);
        break;
      case FaultClass::StuckAt1:
        value = with_bit(value, f.bit, true);
        break;
      case FaultClass::CouplingState: {
        const bool agg =
            bit_of(base_.peek(f.aggressor_address), f.aggressor_bit);
        if (static_cast<int>(agg) == f.aggressor_state) {
          value = with_bit(value, f.bit, f.forced_value != 0);
          base_.poke(address, value);  // state coupling forces the storage
        }
        break;
      }
      case FaultClass::RetentionDecay: {
        const auto it = last_write_.find(cell_key(address, f.bit));
        const double since = it == last_write_.end()
                                 ? f.retention_time * 2.0
                                 : clock_ - it->second;
        if (since > f.retention_time) {
          value = with_bit(value, f.bit, f.forced_value != 0);
          base_.poke(address, value);
        }
        break;
      }
      case FaultClass::ReadDisturb: {
        // Cell flips under the read and the flipped value is returned.
        const bool stored = bit_of(base_.peek(address), f.bit);
        if (static_cast<int>(stored) == f.sensitizing_state) {
          base_.poke(address,
                     with_bit(base_.peek(address), f.bit, !stored));
          value = with_bit(value, f.bit, !stored);
        }
        break;
      }
      case FaultClass::DeceptiveReadDisturb: {
        // The read returns the correct value; the cell flips afterwards.
        const bool stored = bit_of(base_.peek(address), f.bit);
        if (static_cast<int>(stored) == f.sensitizing_state) {
          base_.poke(address,
                     with_bit(base_.peek(address), f.bit, !stored));
          value = with_bit(value, f.bit, stored);
        }
        break;
      }
      case FaultClass::IncorrectRead: {
        // Wrong value on the bus; storage intact.
        const bool stored = bit_of(base_.peek(address), f.bit);
        if (static_cast<int>(stored) == f.sensitizing_state)
          value = with_bit(value, f.bit, !stored);
        break;
      }
      default:
        break;
    }
  }
  return value;
}

std::uint64_t FaultyMemory::read_word(std::size_t address) {
  clock_ += cycle_time_;
  return apply_read_effects(address, base_.read_word(address));
}

void FaultyMemory::deep_sleep(double duration) {
  clock_ += duration;
  base_.deep_sleep(duration);
}

void FaultyMemory::wake_up() { base_.wake_up(); }

}  // namespace lpsram
