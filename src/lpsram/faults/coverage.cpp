#include "lpsram/faults/coverage.hpp"

#include <cstdio>

#include "lpsram/util/table.hpp"

namespace lpsram {
namespace {

struct Cell {
  std::size_t address;
  int bit;
};

// Deterministic sample of distinct cells spread over the array.
std::vector<Cell> sample_cells(const MemoryTarget& memory,
                               const FaultListOptions& options) {
  std::vector<Cell> cells;
  const std::size_t total =
      memory.words() * static_cast<std::size_t>(memory.bits_per_word());
  const std::size_t count = options.max_cells < total ? options.max_cells : total;
  if (count == 0) return cells;
  // Stride sampling with a seed-derived offset keeps cells spread across
  // rows and columns while staying reproducible.
  const std::size_t stride = total / count;
  std::size_t index = options.seed % (stride ? stride : 1);
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t cell = index + k * stride;
    cells.push_back(Cell{cell / static_cast<std::size_t>(memory.bits_per_word()),
                         static_cast<int>(cell % static_cast<std::size_t>(
                                              memory.bits_per_word()))});
  }
  return cells;
}

// The aggressor is the same bit of the next word: with 8:1 column muxing
// those two cells sit on adjacent bit lines of the same physical row. Using
// an inter-word pair (rather than two bits of one word) also keeps the
// coupling observable by solid-background March tests; intra-word coupling
// requires data-background variants, a separate concern.
Cell neighbour_of(const MemoryTarget& memory, const Cell& c) {
  return Cell{(c.address + 1) % memory.words(), c.bit};
}

}  // namespace

std::vector<FaultDescriptor> generate_stuck_at(const MemoryTarget& memory,
                                               const FaultListOptions& options) {
  std::vector<FaultDescriptor> faults;
  for (const Cell& c : sample_cells(memory, options)) {
    for (const FaultClass cls : {FaultClass::StuckAt0, FaultClass::StuckAt1}) {
      FaultDescriptor f;
      f.cls = cls;
      f.address = c.address;
      f.bit = c.bit;
      faults.push_back(f);
    }
  }
  return faults;
}

std::vector<FaultDescriptor> generate_transition(
    const MemoryTarget& memory, const FaultListOptions& options) {
  std::vector<FaultDescriptor> faults;
  for (const Cell& c : sample_cells(memory, options)) {
    for (const FaultClass cls :
         {FaultClass::TransitionUp, FaultClass::TransitionDown}) {
      FaultDescriptor f;
      f.cls = cls;
      f.address = c.address;
      f.bit = c.bit;
      faults.push_back(f);
    }
  }
  return faults;
}

namespace {

std::vector<FaultDescriptor> coupling_for_pairs(
    const MemoryTarget& memory, const FaultListOptions& options,
    const std::function<Cell(const Cell&)>& neighbour);

}  // namespace

std::vector<FaultDescriptor> generate_coupling(
    const MemoryTarget& memory, const FaultListOptions& options) {
  return coupling_for_pairs(memory, options, [&memory](const Cell& victim) {
    return neighbour_of(memory, victim);
  });
}

std::vector<FaultDescriptor> generate_coupling(
    const MemoryTarget& memory, const AddressScrambler& scrambler,
    const FaultListOptions& options) {
  return coupling_for_pairs(
      memory, options, [&scrambler](const Cell& victim) {
        return Cell{scrambler.physical_neighbour(victim.address), victim.bit};
      });
}

namespace {

std::vector<FaultDescriptor> coupling_for_pairs(
    const MemoryTarget& memory, const FaultListOptions& options,
    const std::function<Cell(const Cell&)>& neighbour) {
  std::vector<FaultDescriptor> faults;
  for (const Cell& victim : sample_cells(memory, options)) {
    const Cell aggressor = neighbour(victim);

    for (const bool up : {true, false}) {
      FaultDescriptor inv;
      inv.cls = FaultClass::CouplingInversion;
      inv.address = victim.address;
      inv.bit = victim.bit;
      inv.aggressor_address = aggressor.address;
      inv.aggressor_bit = aggressor.bit;
      inv.aggressor_up = up;
      faults.push_back(inv);

      for (const int value : {0, 1}) {
        FaultDescriptor id;
        id.cls = FaultClass::CouplingIdempotent;
        id.address = victim.address;
        id.bit = victim.bit;
        id.aggressor_address = aggressor.address;
        id.aggressor_bit = aggressor.bit;
        id.aggressor_up = up;
        id.forced_value = value;
        faults.push_back(id);
      }
    }
    for (const int state : {0, 1}) {
      for (const int value : {0, 1}) {
        FaultDescriptor st;
        st.cls = FaultClass::CouplingState;
        st.address = victim.address;
        st.bit = victim.bit;
        st.aggressor_address = aggressor.address;
        st.aggressor_bit = aggressor.bit;
        st.aggressor_state = state;
        st.forced_value = value;
        faults.push_back(st);
      }
    }
  }
  return faults;
}

}  // namespace

std::vector<FaultDescriptor> generate_retention(
    const MemoryTarget& memory, const FaultListOptions& options) {
  std::vector<FaultDescriptor> faults;
  for (const Cell& c : sample_cells(memory, options)) {
    for (const int value : {0, 1}) {
      FaultDescriptor f;
      f.cls = FaultClass::RetentionDecay;
      f.address = c.address;
      f.bit = c.bit;
      f.forced_value = value;
      f.retention_time = options.retention_time;
      faults.push_back(f);
    }
  }
  return faults;
}

std::vector<FaultDescriptor> generate_disturb(
    const MemoryTarget& memory, const FaultListOptions& options) {
  std::vector<FaultDescriptor> faults;
  for (const Cell& c : sample_cells(memory, options)) {
    for (const FaultClass cls :
         {FaultClass::ReadDisturb, FaultClass::DeceptiveReadDisturb,
          FaultClass::IncorrectRead, FaultClass::WriteDisturb}) {
      for (const int state : {0, 1}) {
        FaultDescriptor f;
        f.cls = cls;
        f.address = c.address;
        f.bit = c.bit;
        f.sensitizing_state = state;
        faults.push_back(f);
      }
    }
  }
  return faults;
}

std::vector<FaultDescriptor> generate_intra_word_coupling(
    const MemoryTarget& memory, const FaultListOptions& options) {
  std::vector<FaultDescriptor> faults;
  for (const Cell& victim : sample_cells(memory, options)) {
    const Cell aggressor{victim.address,
                         (victim.bit + 1) % memory.bits_per_word()};
    if (aggressor.bit == victim.bit) continue;  // 1-bit words: no pair
    for (const int state : {0, 1}) {
      for (const int value : {0, 1}) {
        FaultDescriptor st;
        st.cls = FaultClass::CouplingState;
        st.address = victim.address;
        st.bit = victim.bit;
        st.aggressor_address = aggressor.address;
        st.aggressor_bit = aggressor.bit;
        st.aggressor_state = state;
        st.forced_value = value;
        faults.push_back(st);
      }
    }
  }
  return faults;
}

std::vector<FaultDescriptor> generate_all(const MemoryTarget& memory,
                                          const FaultListOptions& options) {
  std::vector<FaultDescriptor> all = generate_stuck_at(memory, options);
  for (auto gen : {generate_transition, generate_coupling, generate_retention,
                   generate_disturb}) {
    const std::vector<FaultDescriptor> part = gen(memory, options);
    all.insert(all.end(), part.begin(), part.end());
  }
  return all;
}

CoverageByClass summarize(const FaultSimResult& result) {
  CoverageByClass summary;
  for (const FaultDetection& d : result.details) {
    auto& [detected, total] = summary.counts[d.fault.cls];
    ++total;
    if (d.detected) ++detected;
  }
  summary.overall = result.coverage();
  return summary;
}

std::string coverage_table(const CoverageByClass& summary) {
  AsciiTable table({"Fault class", "Detected", "Total", "Coverage"});
  for (const auto& [cls, counts] : summary.counts) {
    char pct[32];
    std::snprintf(pct, sizeof(pct), "%.1f%%",
                  counts.second
                      ? 100.0 * static_cast<double>(counts.first) /
                            static_cast<double>(counts.second)
                      : 100.0);
    table.add_row({fault_class_name(cls), std::to_string(counts.first),
                   std::to_string(counts.second), pct});
  }
  char overall[32];
  std::snprintf(overall, sizeof(overall), "%.1f%%", 100.0 * summary.overall);
  table.add_separator();
  table.add_row({"overall", "", "", overall});
  return table.str();
}

}  // namespace lpsram
