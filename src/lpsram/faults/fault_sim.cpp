#include "lpsram/faults/fault_sim.hpp"

namespace lpsram {

std::size_t FaultSimResult::detected_count() const noexcept {
  std::size_t n = 0;
  for (const FaultDetection& d : details)
    if (d.detected) ++n;
  return n;
}

double FaultSimResult::coverage() const noexcept {
  if (details.empty()) return 1.0;
  return static_cast<double>(detected_count()) /
         static_cast<double>(details.size());
}

FaultSimulator::FaultSimulator(MemoryTarget& base,
                               MarchExecutorOptions options)
    : base_(base), options_(options) {}

void FaultSimulator::reset_memory() {
  for (std::size_t a = 0; a < base_.words(); ++a) base_.poke(a, 0);
}

FaultSimResult FaultSimulator::simulate(
    const MarchTest& test, const std::vector<FaultDescriptor>& faults) {
  FaultSimResult result;
  result.details.reserve(faults.size());

  for (const FaultDescriptor& fault : faults) {
    reset_memory();
    FaultyMemory faulty(base_);
    faulty.add_fault(fault);
    MarchExecutorOptions fast = options_;
    fast.stop_on_first_failure = true;  // detection is all we need
    MarchExecutor executor(faulty, fast);
    const MarchRunResult run = executor.run(test);
    result.details.push_back(FaultDetection{fault, !run.passed});
  }
  return result;
}

}  // namespace lpsram
